package leodivide

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

// scenarioKeyGoldenV3 is the exact byte layout of the default table2
// scenario's canonical key under the current schema; changing it
// invalidates every cached result and requires a schema bump.
const scenarioKeyGoldenV3 = "leodivide-serve/v3|afford_share=0.02|calibrated=false" +
	"|constellation=starlink|cost_life_years=5|cost_sat_usd=1.5e+06|cost_terminal_usd=300" +
	"|experiment=table2|max_oversub=20|plans=|region=us|scale=1|seed=1|spreads=1,2,5,10,15"

// scenarioKeyGoldenV2 is the same scenario's key as committed under
// schema v2 (the layout every pre-v3 cache and client minted).
const scenarioKeyGoldenV2 = "leodivide-serve/v2|afford_share=0.02|calibrated=false" +
	"|constellation=starlink|cost_life_years=5|cost_sat_usd=1.5e+06|cost_terminal_usd=300" +
	"|experiment=table2|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15"

// scenarioKeyGoldenV1 is the same scenario's key as committed under
// schema v1 (the layout every pre-v2 cache and client minted).
const scenarioKeyGoldenV1 = "leodivide-serve/v1|afford_share=0.02|calibrated=false|experiment=table2" +
	"|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15"

// TestScenarioCanonicalKeyGolden pins the exact byte layout of the
// canonical key. This string is a wire and cache contract.
func TestScenarioCanonicalKeyGolden(t *testing.T) {
	key, err := DefaultScenarioConfig("table2").CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != scenarioKeyGoldenV3 {
		t.Errorf("canonical key:\n got %q\nwant %q", key, scenarioKeyGoldenV3)
	}
}

// TestScenarioKeyCompatV1 is the v1→current migration table: every
// committed v1 key layout decodes, maps to the Starlink default on the
// "us" region, and lands on the same current-schema identity a fresh
// encoding of that scenario produces — cached identities stay stable
// across the schema bumps.
func TestScenarioKeyCompatV1(t *testing.T) {
	v1Keys := []string{
		scenarioKeyGoldenV1,
		// Knob variants in the exact layout the v1 encoder produced.
		"leodivide-serve/v1|afford_share=0.025|calibrated=false|experiment=table2" +
			"|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15",
		"leodivide-serve/v1|afford_share=0.02|calibrated=true|experiment=fig3" +
			"|max_oversub=25|plans=|scale=0.05|seed=2|spreads=2,4",
		"leodivide-serve/v1|afford_share=0.02|calibrated=false|experiment=fig4" +
			"|max_oversub=20|plans=Starlink Residential,Xfinity 300|scale=0.02|seed=1|spreads=1,2,5,10,15",
	}
	for _, v1 := range v1Keys {
		cfg, err := ParseScenarioKey(v1)
		if err != nil {
			t.Errorf("v1 key %q did not decode: %v", v1, err)
			continue
		}
		// v1 predates both selectors: it must map to the Starlink
		// default on the "us" region.
		if got := cfg.Normalized().Constellation; got != "starlink" {
			t.Errorf("v1 key %q mapped to constellation %q, want starlink", v1, got)
		}
		if got := cfg.Normalized().Region; got != "us" {
			t.Errorf("v1 key %q mapped to region %q, want us", v1, got)
		}
		up, err := UpgradeScenarioKey(v1)
		if err != nil {
			t.Errorf("v1 key %q did not upgrade: %v", v1, err)
			continue
		}
		want, err := cfg.CanonicalKey()
		if err != nil || up != want {
			t.Errorf("v1 key %q upgraded to %q, want %q (err %v)", v1, up, want, err)
		}
		if !strings.HasPrefix(up, ScenarioSchema+"|") {
			t.Errorf("upgraded key %q is not under schema %s", up, ScenarioSchema)
		}
		// Upgrading is idempotent: the current-schema key is a fixpoint.
		again, err := UpgradeScenarioKey(up)
		if err != nil || again != up {
			t.Errorf("upgrade not a fixpoint: %q -> %q (err %v)", up, again, err)
		}
	}

	// The golden v1 key lands exactly on the golden v3 key.
	if up, err := UpgradeScenarioKey(scenarioKeyGoldenV1); err != nil || up != scenarioKeyGoldenV3 {
		t.Errorf("golden v1 upgrade:\n got %q\nwant %q (err %v)", up, scenarioKeyGoldenV3, err)
	}
}

// TestScenarioKeyCompatV2 is the v2→v3 migration table, mirroring the
// v1 table: every committed v2 key layout decodes, maps to the default
// "us" region, and lands on the same v3 identity a fresh v3 encoding
// of that scenario produces — v2 cache entries stay reachable after
// the region bump.
func TestScenarioKeyCompatV2(t *testing.T) {
	v2Keys := []string{
		scenarioKeyGoldenV2,
		// Knob variants in the exact layout the v2 encoder produced.
		"leodivide-serve/v2|afford_share=0.02|calibrated=false|constellation=kuiper" +
			"|cost_life_years=7|cost_sat_usd=1e+06|cost_terminal_usd=600|experiment=xconst" +
			"|max_oversub=25|plans=|scale=0.05|seed=2|spreads=1,2,5,10,15",
		"leodivide-serve/v2|afford_share=0.03|calibrated=true|constellation=oneweb" +
			"|cost_life_years=5|cost_sat_usd=1.5e+06|cost_terminal_usd=300|experiment=fig3" +
			"|max_oversub=20|plans=|scale=0.02|seed=1|spreads=2,4",
		"leodivide-serve/v2|afford_share=0.02|calibrated=false|constellation=starlink" +
			"|cost_life_years=5|cost_sat_usd=1.5e+06|cost_terminal_usd=300|experiment=fig4" +
			"|max_oversub=20|plans=Starlink Residential,Xfinity 300|scale=0.02|seed=1|spreads=1,2,5,10,15",
	}
	for _, v2 := range v2Keys {
		cfg, err := ParseScenarioKey(v2)
		if err != nil {
			t.Errorf("v2 key %q did not decode: %v", v2, err)
			continue
		}
		// v2 predates the region selector: it must map to "us".
		if got := cfg.Normalized().Region; got != "us" {
			t.Errorf("v2 key %q mapped to region %q, want us", v2, got)
		}
		up, err := UpgradeScenarioKey(v2)
		if err != nil {
			t.Errorf("v2 key %q did not upgrade: %v", v2, err)
			continue
		}
		want, err := cfg.CanonicalKey()
		if err != nil || up != want {
			t.Errorf("v2 key %q upgraded to %q, want %q (err %v)", v2, up, want, err)
		}
		if !strings.HasPrefix(up, ScenarioSchema+"|") {
			t.Errorf("upgraded key %q is not under schema %s", up, ScenarioSchema)
		}
		// Upgrading is idempotent: the v3 key is a fixpoint.
		again, err := UpgradeScenarioKey(up)
		if err != nil || again != up {
			t.Errorf("upgrade not a fixpoint: %q -> %q (err %v)", up, again, err)
		}
		// The upgraded key differs from the v2 key only by schema prefix
		// and the inserted region field: the same cache-entry identity a
		// fresh "us"-region scenario mints.
		stripped := strings.Replace(up, "|region=us", "", 1)
		stripped = strings.Replace(stripped, ScenarioSchema, ScenarioSchemaV2, 1)
		if stripped != v2 {
			t.Errorf("upgrade changed more than schema+region:\n v2  %q\n got %q", v2, up)
		}
	}

	// The golden v2 key lands exactly on the golden v3 key.
	if up, err := UpgradeScenarioKey(scenarioKeyGoldenV2); err != nil || up != scenarioKeyGoldenV3 {
		t.Errorf("golden v2 upgrade:\n got %q\nwant %q (err %v)", up, scenarioKeyGoldenV3, err)
	}

	// A v3 scenario that selects a non-default region has no v2
	// spelling: its key must differ from every upgraded v2 key.
	br := DefaultScenarioConfig("table2")
	br.Region = "brazil-rural"
	brKey, err := br.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if brKey == scenarioKeyGoldenV3 {
		t.Error("a non-default region must change the canonical key")
	}
	if !strings.Contains(brKey, "|region=brazil-rural|") {
		t.Errorf("key %q does not carry the region field", brKey)
	}
}

// TestScenarioKeyParseRejects: unknown fields, missing fields, foreign
// schemas and out-of-order layouts are decode errors, never silently
// defaulted scenarios.
func TestScenarioKeyParseRejects(t *testing.T) {
	cases := []struct {
		name, key string
	}{
		{"unknown schema", "leodivide-serve/v9|afford_share=0.02"},
		{"empty schema", "|afford_share=0.02"},
		{"unknown field", scenarioKeyGoldenV1 + "|zz_custom=1"},
		{"missing fields", "leodivide-serve/v1|afford_share=0.02|calibrated=false"},
		{"v2 missing constellation", "leodivide-serve/v2" + scenarioKeyGoldenV1[len("leodivide-serve/v1"):]},
		{"v3 missing region", "leodivide-serve/v3" + scenarioKeyGoldenV2[len("leodivide-serve/v2"):]},
		{"v2 carrying region", strings.Replace(scenarioKeyGoldenV3, "leodivide-serve/v3", "leodivide-serve/v2", 1)},
		{"unknown region", strings.Replace(scenarioKeyGoldenV3, "region=us", "region=atlantis", 1)},
		{"out of order", "leodivide-serve/v1|calibrated=false|afford_share=0.02|experiment=table2" +
			"|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15"},
		{"duplicate field", "leodivide-serve/v1|afford_share=0.02|afford_share=0.02|calibrated=false|experiment=table2" +
			"|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15"},
		{"bad float", "leodivide-serve/v1|afford_share=abc|calibrated=false|experiment=table2" +
			"|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15"},
		{"unknown experiment", "leodivide-serve/v1|afford_share=0.02|calibrated=false|experiment=warpdrive" +
			"|max_oversub=20|plans=|scale=1|seed=1|spreads=1,2,5,10,15"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScenarioKey(tc.key); err == nil {
				t.Errorf("ParseScenarioKey accepted %q", tc.key)
			}
		})
	}
}

// TestScenarioKeyRoundTrip: ParseScenarioKey inverts CanonicalKey for
// non-default scenarios too, including constellation and cost
// overrides.
func TestScenarioKeyRoundTrip(t *testing.T) {
	cfg, err := NewScenarioConfig("xconst",
		WithConstellation("kuiper"),
		WithOversub(25),
		WithSatelliteCostUSD(3e6),
		WithDesignLifeYears(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	key, err := cfg.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenarioKey(key)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := back.CanonicalKey()
	if err != nil || key2 != key {
		t.Errorf("round trip changed the key:\n got %q\nwant %q (err %v)", key2, key, err)
	}
	if back.Constellation != "kuiper" || back.CostSatelliteUSD != 3e6 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestScenarioCanonicalKeyIdentity(t *testing.T) {
	base := DefaultScenarioConfig("fig4")
	baseKey, err := base.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}

	// Parallelism never changes experiment output, so it must not
	// change the key: two servers at different worker counts share
	// cache entries.
	par := base
	par.Parallelism = 8
	if k, err := par.CanonicalKey(); err != nil || k != baseKey {
		t.Errorf("parallelism changed the key: %q vs %q (err %v)", k, baseKey, err)
	}

	// Spelling out the paper defaults is the same scenario as leaving
	// the knobs zero.
	explicit := base
	explicit.MaxOversub = 20
	explicit.AffordShare = 0.02
	explicit.Spreads = []float64{1, 2, 5, 10, 15}
	if k, err := explicit.CanonicalKey(); err != nil || k != baseKey {
		t.Errorf("explicit paper defaults changed the key: %q vs %q (err %v)", k, baseKey, err)
	}

	// Plans normalize to sorted order: request order is presentation,
	// not identity.
	p1, p2 := base, base
	p1.Plans = []string{"Xfinity 300", "Starlink Residential"}
	p2.Plans = []string{"Starlink Residential", "Xfinity 300"}
	k1, err1 := p1.CanonicalKey()
	k2, err2 := p2.CanonicalKey()
	if err1 != nil || err2 != nil || k1 != k2 {
		t.Errorf("plan order changed the key: %q vs %q (errs %v, %v)", k1, k2, err1, err2)
	}
	if k1 == baseKey {
		t.Error("a plan filter must change the key")
	}

	// Every real knob is identity-bearing.
	knobs := []func(*ScenarioConfig){
		func(c *ScenarioConfig) { c.MaxOversub = 35 },
		func(c *ScenarioConfig) { c.AffordShare = 0.05 },
		func(c *ScenarioConfig) { c.Spreads = []float64{2, 4} },
		func(c *ScenarioConfig) { c.Calibrated = true },
		func(c *ScenarioConfig) { c.Seed = 2 },
		func(c *ScenarioConfig) { c.Scale = 0.5 },
		func(c *ScenarioConfig) { c.Experiment = "fig3" },
		func(c *ScenarioConfig) { c.Region = "taipei-dense" },
	}
	for i, mutate := range knobs {
		c := base
		mutate(&c)
		k, err := c.CanonicalKey()
		if err != nil {
			t.Errorf("knob %d: %v", i, err)
			continue
		}
		if k == baseKey {
			t.Errorf("knob %d did not change the key %q", i, k)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := DefaultScenarioConfig("table1").Validate(); err != nil {
		t.Errorf("default scenario invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ScenarioConfig)
		want   string
	}{
		{"no experiment", func(c *ScenarioConfig) { c.Experiment = "" }, "names no experiment"},
		{"unknown experiment", func(c *ScenarioConfig) { c.Experiment = "warpdrive" }, "unknown experiment"},
		{"bad scale", func(c *ScenarioConfig) { c.Scale = 0 }, "scale"},
		{"NaN oversub", func(c *ScenarioConfig) { c.MaxOversub = math.NaN() }, "oversubscription"},
		{"oversub below 1", func(c *ScenarioConfig) { c.MaxOversub = 0.5 }, "oversubscription"},
		{"oversub huge", func(c *ScenarioConfig) { c.MaxOversub = 1e6 }, "oversubscription"},
		{"share above 1", func(c *ScenarioConfig) { c.AffordShare = 2 }, "share"},
		{"share NaN", func(c *ScenarioConfig) { c.AffordShare = math.NaN() }, "share"},
		{"spread out of range", func(c *ScenarioConfig) { c.Spreads = []float64{0.5} }, "beamspread"},
		{"spreads descending", func(c *ScenarioConfig) { c.Spreads = []float64{5, 2} }, "ascending"},
		{"spreads duplicate", func(c *ScenarioConfig) { c.Spreads = []float64{2, 2} }, "ascending"},
		{"empty plan label", func(c *ScenarioConfig) { c.Plans = []string{""} }, "plan label"},
		{"padded plan label", func(c *ScenarioConfig) { c.Plans = []string{" Xfinity 300"} }, "plan label"},
		{"duplicate plan", func(c *ScenarioConfig) { c.Plans = []string{"Xfinity 300", "Xfinity 300"} }, "duplicate"},
		{"unknown region", func(c *ScenarioConfig) { c.Region = "atlantis" }, "unknown region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultScenarioConfig("table1")
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, err := c.CanonicalKey(); err == nil {
				t.Error("CanonicalKey must refuse what Validate refuses")
			}
		})
	}
}

// TestScenarioBuildModel: the promoted knobs land on the Model, and a
// default scenario builds exactly what RunConfig alone builds — the
// scenario layer adds nothing when nothing is asked for.
func TestScenarioBuildModel(t *testing.T) {
	def := DefaultScenarioConfig("table2")
	if got, want := def.BuildModel(), def.RunConfig.BuildModel(); !reflect.DeepEqual(got, want) {
		t.Errorf("default scenario model %+v differs from plain RunConfig model %+v", got, want)
	}

	c := def
	c.MaxOversub = 35
	c.AffordShare = 0.05
	c.Spreads = []float64{2, 4}
	c.Plans = []string{"Starlink Residential"}
	m := c.BuildModel()
	if m.MaxOversub != 35 || m.AffordShare != 0.05 {
		t.Errorf("knobs not applied: MaxOversub=%v AffordShare=%v", m.MaxOversub, m.AffordShare)
	}
	if !reflect.DeepEqual(m.Fig3Spreads, []float64{2, 4}) {
		t.Errorf("Fig3Spreads = %v, want [2 4]", m.Fig3Spreads)
	}
	if !reflect.DeepEqual(m.PlanFilter, []string{"Starlink Residential"}) {
		t.Errorf("PlanFilter = %v", m.PlanFilter)
	}

	// Explicit paper spreads leave Fig3Spreads nil — the same model as
	// the default, so DeepEqual-based equivalence keeps holding.
	paper := def
	paper.Spreads = []float64{1, 2, 5, 10, 15}
	if m := paper.BuildModel(); m.Fig3Spreads != nil {
		t.Errorf("paper spreads should normalize to nil Fig3Spreads, got %v", m.Fig3Spreads)
	}
}

// TestFig3SpreadOverridePaths pins the resolution contract between
// Fig3's two override paths — the variadic argument and the
// Model.Fig3Spreads field (the ScenarioConfig knob): either alone wins,
// both empty selects the paper spreads, agreement is accepted, and a
// genuine conflict is a hard error rather than a silent preference.
func TestFig3SpreadOverridePaths(t *testing.T) {
	cases := []struct {
		name     string
		field    []float64
		variadic []float64
		want     []float64
		wantErr  bool
	}{
		{name: "both empty -> paper spreads", want: PaperTable2Spreads},
		{name: "field only wins", field: []float64{3, 7}, want: []float64{3, 7}},
		{name: "variadic only wins", variadic: []float64{4}, want: []float64{4}},
		{name: "agreement accepted", field: []float64{5, 10}, variadic: []float64{5, 10}, want: []float64{5, 10}},
		{name: "conflict is an error", field: []float64{5, 10}, variadic: []float64{2}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewModel()
			m.Fig3Spreads = tc.field
			got, err := m.resolveFig3Spreads(tc.variadic)
			if tc.wantErr {
				if err == nil || !strings.Contains(err.Error(), "conflicting Fig3 spread overrides") {
					t.Fatalf("err = %v, want a conflict error", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("resolved %v, want %v", got, tc.want)
			}
		})
	}
}

// TestFig3OverridesEndToEnd runs both override paths through Fig3
// itself on the real dataset: the scenario-knob path and the variadic
// path must produce identical results at the same spread, and the
// conflict error must surface from Fig3, not just the resolver.
func TestFig3OverridesEndToEnd(t *testing.T) {
	ctx := context.Background()
	ds := fullDataset(t)

	viaKnob := NewModel()
	viaKnob.Fig3Spreads = []float64{10}
	knobRes, err := viaKnob.Fig3(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	argRes, err := NewModel().Fig3(ctx, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(knobRes, argRes) {
		t.Error("Fig3 via Fig3Spreads knob differs from Fig3 via variadic argument at spread 10")
	}
	if len(knobRes) != 1 || knobRes[0].Spread != 10 {
		t.Fatalf("override produced %d results (spread %v), want one at spread 10", len(knobRes), knobRes)
	}

	if _, err := viaKnob.Fig3(ctx, ds, 2); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("conflicting overrides through Fig3: err = %v, want conflict error", err)
	}

	// The registry's fig3 entry honors the knob — the experiment and
	// the direct call are the same computation.
	exp, ok := viaKnob.ExperimentByName("fig3")
	if !ok {
		t.Fatal("fig3 experiment missing")
	}
	v, err := exp.Run(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, knobRes) {
		t.Error("registry fig3 run differs from direct Fig3 call with the same Fig3Spreads")
	}
}

// TestFig4PlanFilter drives the promoted plan/subsidy selection end to
// end on the real dataset.
func TestFig4PlanFilter(t *testing.T) {
	ctx := context.Background()
	ds := fullDataset(t)

	m := NewModel()
	m.PlanFilter = []string{"Starlink Residential"}
	r, err := m.Fig4(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 1 || r.Results[0].Plan.Name != "Starlink Residential" {
		t.Fatalf("filtered Fig4 returned %d results, want exactly Starlink Residential", len(r.Results))
	}

	unknown := NewModel()
	unknown.PlanFilter = []string{"Dialup Deluxe"}
	if _, err := unknown.Fig4(ctx, ds); err == nil || !strings.Contains(err.Error(), "Dialup Deluxe") {
		t.Errorf("unknown plan label: err = %v, want the label named", err)
	}

	// Findings needs the unsubsidized Starlink row; a filter that
	// excludes it must fail loudly, not report a wrong F4.
	noStarlink := NewModel()
	noStarlink.PlanFilter = []string{"Xfinity 300"}
	exp, ok := noStarlink.ExperimentByName("findings")
	if !ok {
		t.Fatal("findings experiment missing")
	}
	if _, err := exp.Run(ctx, ds); err == nil || !strings.Contains(err.Error(), "PlanFilter") {
		t.Errorf("findings without Starlink: err = %v, want a PlanFilter error", err)
	}
}
