package leodivide

// Region metamorphic oracles: relations the pluggable-region layer
// must satisfy regardless of calibration. Three families:
//
//  1. Identity — routing the US geography through the Region interface
//     must be indistinguishable from the legacy direct path (the golden
//     corpus pins the absolute bytes; this pins the dispatch).
//  2. Demand doubling — synthetic regions pin cell *sites* by seed
//     alone, so doubling the scale must reproduce the same geography
//     with per-cell counts doubled up to largest-remainder rounding.
//  3. Latitude shift — moving an otherwise identical demand band
//     poleward (within the constellation's inclination) must never
//     increase the required fleet, and the equator-to-mid-latitude
//     satellite premium must be strictly steeper for an inclined fleet
//     (Starlink, 53°) than for a near-polar one (OneWeb, 87.9°) —
//     the paper's latitude-density machinery, asked as an inequality.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"leodivide/internal/census"
	"leodivide/internal/constellation"
	"leodivide/internal/core"
	"leodivide/internal/region"
	"leodivide/internal/testutil"
)

// TestRegionUSIdentity: an explicit -region us is byte-identical to the
// default. If dispatch ever forked the US path, caches keyed on the
// default region would silently diverge from explicit requests.
func TestRegionUSIdentity(t *testing.T) {
	ctx := context.Background()
	def, err := GenerateDataset(ctx, WithSeed(1), WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := GenerateDataset(ctx, WithSeed(1), WithScale(0.02), WithRegion("us"))
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireEqual(t, "cells via explicit us region", def.Cells, explicit.Cells)
	testutil.RequireEqual(t, "incomes via explicit us region", def.Incomes.Counties(), explicit.Incomes.Counties())
	if def.Resolution != explicit.Resolution || def.Region != explicit.Region {
		t.Errorf("dataset identity drifted: default (%v, %q) vs explicit (%v, %q)",
			def.Resolution, def.Region, explicit.Resolution, explicit.Region)
	}
}

// TestRegionDemandDoubling: synthetic cell sites are a function of the
// seed alone, so doubling the scale keeps the geography fixed — same
// cell IDs, same district codes, in the same order — while the total
// doubles exactly and every per-cell count doubles up to the
// largest-remainder rounding bound.
func TestRegionDemandDoubling(t *testing.T) {
	ctx := context.Background()
	for _, key := range []string{"brazil-rural", "taipei-dense"} {
		r, ok := region.ByName(key)
		if !ok {
			t.Fatalf("region %q not registered", key)
		}
		lo, err := r.Generate(ctx, region.GenConfig{Seed: 1, Scale: 0.02})
		if err != nil {
			t.Fatalf("%s at 0.02: %v", key, err)
		}
		hi, err := r.Generate(ctx, region.GenConfig{Seed: 1, Scale: 0.04})
		if err != nil {
			t.Fatalf("%s at 0.04: %v", key, err)
		}
		if len(lo.Cells) != len(hi.Cells) {
			t.Fatalf("%s: cell count changed with scale: %d vs %d", key, len(lo.Cells), len(hi.Cells))
		}
		if got, want := hi.Dist.TotalLocations(), 2*lo.Dist.TotalLocations(); got != want {
			t.Errorf("%s: total at 0.04 is %d, want exactly %d", key, got, want)
		}
		for i := range lo.Cells {
			a, b := lo.Cells[i], hi.Cells[i]
			if a.ID != b.ID {
				t.Fatalf("%s: cell %d site moved with scale: %v vs %v", key, i, a.ID, b.ID)
			}
			if a.CountyFIPS != b.CountyFIPS {
				t.Fatalf("%s: cell %d district moved with scale: %s vs %s", key, i, a.CountyFIPS, b.CountyFIPS)
			}
			// Largest-remainder rounding moves at most 1 location per
			// split, but counts are assigned by sorted rank, and ±1
			// rounding can swap adjacent ranks — shifting a cell by the
			// gap between neighboring shape weights (largest near the
			// steep top of the brazil profile, measured ≤ 7 across
			// seeds). The window is 8: rank-local jitter, nowhere near
			// the ~60-location spacing of distinct shape tiers.
			testutil.RequireWithinAbs(t, fmt.Sprintf("%s cell %d count doubling", key, i),
				float64(b.Locations), 2*float64(a.Locations), 8)
		}
	}
}

// latitudeBand declares a synthetic demand band identical in every
// respect — total, cells, shape, footprint width — except its
// latitude. Identical demand makes the required fleet a pure probe of
// the constellation's latitude-density profile.
func latitudeBand(t *testing.T, centerLatDeg float64) region.Region {
	t.Helper()
	r, err := region.NewSynthetic(region.SyntheticSpec{
		Key:            fmt.Sprintf("band-%02.0f", centerLatDeg),
		Name:           fmt.Sprintf("Probe band at %.0f°", centerLatDeg),
		Description:    "latitude-shift oracle probe",
		Resolution:     5,
		LatMinDeg:      centerLatDeg - 4,
		LatMaxDeg:      centerLatDeg + 4,
		LngMinDeg:      -60,
		LngMaxDeg:      -44,
		TotalLocations: 200_000,
		Cells:          120,
		DensityAnchors: []region.DensityAnchor{{Q: 0, Weight: 1}, {Q: 1, Weight: 50}},
		Districts:      10,
		DistrictPrefix: "90",
		RegionAbbr:     "ZZ",
		IncomeAnchors: []census.QuantileAnchor{
			{Q: 0, Income: 8000}, {Q: 0.5, Income: 30000}, {Q: 1, Income: 120000},
		},
	})
	if err != nil {
		t.Fatalf("band at %v°: %v", centerLatDeg, err)
	}
	return r
}

// requiredSatellitesAt sizes a fleet for one band under one system,
// using the same capped sizing rule and single-shell-equivalent
// conversion as the xregion experiment.
func requiredSatellitesAt(t *testing.T, m Model, band region.Region) float64 {
	t.Helper()
	out, err := band.Generate(context.Background(), region.GenConfig{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatalf("%s: %v", band.Key(), err)
	}
	sizing := m.Capacity.Size(out.Dist, core.CappedOversub, 1, m.MaxOversub)
	lat := sizing.BindingCell.Center.Lat
	equiv := m.System.EquivalentSingleShellSatellites(m.System.SizingShell(), lat)
	if equiv < 1 {
		equiv = 1
	}
	total := m.System.TotalSatellites()
	return math.Ceil(float64(sizing.Satellites) * float64(total) / float64(equiv))
}

// TestRegionLatitudeShiftMonotonicity: as the same demand band shifts
// poleward within the constellation's inclination, the satellite
// density over it grows, so the required fleet must never grow — under
// an inclined and a near-polar fleet alike. And the inclined fleet's
// equator-to-mid-latitude premium must be strictly steeper: an
// inclined shell concentrates toward its inclination latitude, a
// near-polar one is closer to uniform. This is the geometry that makes
// equatorial geographies pay more satellites per served cell.
func TestRegionLatitudeShiftMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("generates ten synthetic bands")
	}
	centers := []float64{4, 14, 24, 34, 44}
	systems := []struct {
		name string
		sys  constellation.System
	}{
		{"starlink", constellation.StarlinkSystem()},
		{"oneweb", constellation.OneWebSystem()},
	}
	premiums := make([]float64, len(systems))
	for si, s := range systems {
		m := NewModelFor(s.sys)
		required := make([]float64, len(centers))
		for i, c := range centers {
			required[i] = requiredSatellitesAt(t, m, latitudeBand(t, c))
		}
		testutil.RequireMonotone(t, s.name+" required satellites poleward", required, testutil.NonIncreasing)
		if required[len(required)-1] <= 0 {
			t.Fatalf("%s: degenerate mid-latitude requirement %v", s.name, required[len(required)-1])
		}
		premiums[si] = required[0] / required[len(required)-1]
	}
	if premiums[0] <= premiums[1] {
		t.Errorf("inclined equatorial premium %.3f not above the near-polar premium %.3f",
			premiums[0], premiums[1])
	}
}
