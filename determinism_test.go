package leodivide

// The determinism suite: the contract of the parallel engine is that
// every artifact is byte-identical at every worker count. These tests
// pin that contract by generating datasets and running the headline
// experiments at Parallelism(1) (exact serial) and Parallelism(8) and
// requiring deep equality, across several seeds.

import (
	"context"
	"reflect"
	"testing"
)

// TestGenerateDatasetDeterministicAcrossParallelism proves dataset
// synthesis is worker-count independent: identical cells (IDs,
// locations, county assignment, centers) and identical county income
// tables at 1 vs 8 workers, for several seeds.
func TestGenerateDatasetDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} {
		serial, err := GenerateDataset(ctx, WithSeed(seed), WithScale(0.05), WithParallelism(1))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := GenerateDataset(ctx, WithSeed(seed), WithScale(0.05), WithParallelism(8))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if len(serial.Cells) != len(par.Cells) {
			t.Fatalf("seed %d: cell count %d (serial) != %d (parallel)",
				seed, len(serial.Cells), len(par.Cells))
		}
		for i := range serial.Cells {
			if !reflect.DeepEqual(serial.Cells[i], par.Cells[i]) {
				t.Fatalf("seed %d: cell %d differs: serial %+v parallel %+v",
					seed, i, serial.Cells[i], par.Cells[i])
			}
		}
		if !reflect.DeepEqual(serial.Incomes.Counties(), par.Incomes.Counties()) {
			t.Fatalf("seed %d: county income tables differ", seed)
		}
	}
}

// TestExperimentsDeterministicAcrossParallelism proves the analysis
// pipeline is worker-count independent: Fig2, Table2 and Fig3 results
// are deeply equal at 1 vs 8 workers over the same dataset.
func TestExperimentsDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} {
		ds, err := GenerateDataset(ctx, WithSeed(seed), WithScale(0.05))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serial := NewModel().Parallelism(1)
		par := NewModel().Parallelism(8)

		f2s, err := serial.Fig2(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		f2p, err := par.Fig2(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(f2s, f2p) {
			t.Fatalf("seed %d: Fig2 differs between worker counts", seed)
		}

		t2s, err := serial.Table2(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		t2p, err := par.Table2(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t2s, t2p) {
			t.Fatalf("seed %d: Table2 differs between worker counts", seed)
		}

		f3s, err := serial.Fig3(ctx, ds, 5, 10)
		if err != nil {
			t.Fatal(err)
		}
		f3p, err := par.Fig3(ctx, ds, 5, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(f3s, f3p) {
			t.Fatalf("seed %d: Fig3 differs between worker counts", seed)
		}
	}
}

// TestFig4DeterministicAcrossParallelism pins the affordability curves
// (the remaining parallelized experiment) the same way.
func TestFig4DeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	ds, err := GenerateDataset(ctx, WithSeed(2), WithScale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewModel().Parallelism(1).Fig4(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel().Parallelism(8).Fig4(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig4 differs between worker counts")
	}
}

// TestGenerateDatasetCancellation: a pre-cancelled context aborts
// generation with context.Canceled instead of returning a dataset.
func TestGenerateDatasetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateDataset(ctx, WithSeed(1), WithScale(0.05)); err == nil {
		t.Fatal("expected error from cancelled context")
	}
}
