package leodivide

// The determinism suite: the contract of the parallel engine is that
// every artifact is byte-identical at every worker count. The
// experiment half of the suite is the serial ≡ parallel differential
// oracle (testutil.RequireDeterministic): every registry experiment is
// replayed at a seed × parallelism matrix, with Parallelism(1) (exact
// serial) as the reference semantics and byte equality of the canonical
// golden encoding as the comparison — stronger than reflect.DeepEqual,
// because it also pins the serialized form the golden corpus and the
// observability layer see.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"leodivide/internal/testutil"
)

// determinismCounts is the worker-count matrix: 1 is the serial
// reference; 2 and 3 exercise partial pools (work split unevenly across
// workers); 8 oversubscribes the CI container's CPUs so queue-order
// effects would surface if any reduction depended on completion order.
var determinismCounts = []int{1, 2, 3, 8}

// TestRegistryDeterminismMatrix replays every registry experiment at
// every seed × parallelism combination and requires byte-identical
// results against the serial reference.
func TestRegistryDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry matrix is not a -short test")
	}
	ctx := context.Background()
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// One dataset per (seed, parallelism): the dataset build is
			// itself part of the differential, so each worker count
			// generates its own copy rather than sharing the reference's.
			datasets := make(map[int]*Dataset, len(determinismCounts))
			for _, n := range determinismCounts {
				ds, err := GenerateDataset(ctx, WithSeed(seed), WithScale(0.05), WithParallelism(n))
				if err != nil {
					t.Fatalf("generate parallelism=%d: %v", n, err)
				}
				datasets[n] = ds
			}
			for _, exp := range NewModel().Experiments() {
				exp := exp
				t.Run(exp.Name, func(t *testing.T) {
					testutil.RequireDeterministic(t, exp.Name, determinismCounts,
						func(parallelism int) (any, error) {
							m := NewModel().Parallelism(parallelism)
							e, ok := m.ExperimentByName(exp.Name)
							if !ok {
								return nil, fmt.Errorf("experiment %q not in registry", exp.Name)
							}
							return e.Run(ctx, datasets[parallelism])
						})
				})
			}
		})
	}
}

// TestGenerateDatasetDeterministicAcrossParallelism proves dataset
// synthesis is worker-count independent for every declared region:
// identical cells (IDs, locations, county assignment, centers) and
// identical county income tables at every worker count, for several
// seeds. The US path fans out over BDC faces, the synthetic path over
// footprint-box enumeration — both must collect in canonical order.
func TestGenerateDatasetDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	for _, regionKey := range []string{"us", "brazil-rural", "taipei-dense"} {
		regionKey := regionKey
		t.Run(regionKey, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 3} {
				serial, err := GenerateDataset(ctx, WithSeed(seed), WithScale(0.05),
					WithRegion(regionKey), WithParallelism(1))
				if err != nil {
					t.Fatalf("seed %d serial: %v", seed, err)
				}
				for _, n := range determinismCounts[1:] {
					par, err := GenerateDataset(ctx, WithSeed(seed), WithScale(0.05),
						WithRegion(regionKey), WithParallelism(n))
					if err != nil {
						t.Fatalf("seed %d parallelism %d: %v", seed, n, err)
					}
					if len(serial.Cells) != len(par.Cells) {
						t.Fatalf("seed %d parallelism %d: cell count %d (serial) != %d (parallel)",
							seed, n, len(serial.Cells), len(par.Cells))
					}
					for i := range serial.Cells {
						if !reflect.DeepEqual(serial.Cells[i], par.Cells[i]) {
							t.Fatalf("seed %d parallelism %d: cell %d differs: serial %+v parallel %+v",
								seed, n, i, serial.Cells[i], par.Cells[i])
						}
					}
					if !reflect.DeepEqual(serial.Incomes.Counties(), par.Incomes.Counties()) {
						t.Fatalf("seed %d parallelism %d: county income tables differ", seed, n)
					}
				}
			}
		})
	}
}

// TestGenerateDatasetCancellation: a pre-cancelled context aborts
// generation with context.Canceled instead of returning a dataset.
func TestGenerateDatasetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateDataset(ctx, WithSeed(1), WithScale(0.05)); err == nil {
		t.Fatal("expected error from cancelled context")
	}
}
