package leodivide

// Extension experiments beyond the paper's published artifacts: fleet
// assessments against the real Gen1/Gen2 shell tables, and the
// dispersion-refined affordability analysis. DESIGN.md §4 indexes them
// as FLEET and REFINED.

import (
	"context"

	"leodivide/internal/afford"
	"leodivide/internal/constellation"
	"leodivide/internal/core"
	"leodivide/internal/econ"
	"leodivide/internal/traffic"
)

// FleetsResult compares the authorized Starlink generations against
// the sizing requirement.
type FleetsResult struct {
	Gen1, Gen2 core.FleetAssessment
}

// AssessFleets evaluates Starlink Gen1 (4,408 satellites) and Gen2
// (29,988) against the capped-oversubscription sizing requirement at
// the paper's beamspread factors: an extension answering "does the
// full Gen2 authorization reach the >40,000-satellite bar?"
func (m Model) AssessFleets(ctx context.Context, d *Dataset) (FleetsResult, error) {
	dist := d.Distribution()
	gen1, err := m.Capacity.AssessFleet(ctx, dist, constellation.StarlinkGen1(), PaperTable2Spreads, m.MaxOversub)
	if err != nil {
		return FleetsResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return FleetsResult{}, err
	}
	gen2, err := m.Capacity.AssessFleet(ctx, dist, constellation.StarlinkGen2(), PaperTable2Spreads, m.MaxOversub)
	if err != nil {
		return FleetsResult{}, err
	}
	return FleetsResult{Gen1: gen1, Gen2: gen2}, nil
}

// RefinedFig4Result carries the dispersion-refined affordability
// analysis alongside the paper's median-only numbers.
type RefinedFig4Result struct {
	// SigmaLog is the within-county lognormal shape used.
	SigmaLog float64
	// HouseholdSize parameterizes the Lifeline eligibility cutoff.
	HouseholdSize int
	// MedianOnly is the paper's assumption (every household at the
	// county median).
	MedianOnly afford.Result
	// Dispersed spreads household incomes lognormally within counties.
	Dispersed afford.Result
	// LifelineAware additionally restricts the subsidy to eligible
	// households (income ≤ 135% FPL).
	LifelineAware afford.LifelineAwareResult
	// TotalLocations is the dataset total.
	TotalLocations float64
}

// Fig4Refined runs the affordability analysis with within-county
// income dispersion and eligibility-aware Lifeline. sigmaLog <= 0
// selects the default (0.55); householdSize <= 0 selects 3.
func (m Model) Fig4Refined(ctx context.Context, d *Dataset, sigmaLog float64, householdSize int) (RefinedFig4Result, error) {
	if err := ctx.Err(); err != nil {
		return RefinedFig4Result{}, err
	}
	if householdSize <= 0 {
		householdSize = 3
	}
	in, err := d.affordInput()
	if err != nil {
		return RefinedFig4Result{}, err
	}
	din, err := d.dispersedInput(sigmaLog)
	if err != nil {
		return RefinedFig4Result{}, err
	}
	plan := afford.StarlinkResidential()
	return RefinedFig4Result{
		SigmaLog:       dinSigma(sigmaLog),
		HouseholdSize:  householdSize,
		MedianOnly:     in.Evaluate(plan, nil, m.AffordShare),
		Dispersed:      din.Evaluate(plan, nil, m.AffordShare),
		LifelineAware:  din.EvaluateLifelineAware(plan, m.AffordShare, householdSize),
		TotalLocations: din.TotalLocations(),
	}, nil
}

func dinSigma(sigma float64) float64 {
	if sigma <= 0 {
		return afford.DefaultIncomeSigmaLog
	}
	return sigma
}

// BusyHourResult extends the capacity analysis into the time domain.
type BusyHourResult struct {
	// Profile facts.
	PeakHourLocal int
	PeakFactor    float64
	// Stagger is the time-zone staggering analysis: cell vs satellite
	// footprint vs national peak-to-mean ratios.
	Stagger traffic.StaggerAnalysis
	// PerUserBusyHourMbps is the average throughput a location in the
	// median / p90 / peak cell sees at the busy hour when its cell
	// shares one spread beam (beamspread from the model's Table 2
	// break-even for the current constellation, ≈10).
	MedianCellMbps, P90CellMbps, PeakCellMbps float64
	// Spread is the beamspread factor the per-user rates assume.
	Spread float64
}

// BusyHour analyses the diurnal dimension of P2: how much (little)
// time-zone staggering relieves a LEO constellation, and what per-user
// throughput the busy hour leaves in dense cells.
func (m Model) BusyHour(ctx context.Context, d *Dataset) (BusyHourResult, error) {
	if err := ctx.Err(); err != nil {
		return BusyHourResult{}, err
	}
	profile := traffic.DefaultProfile()
	stagger, err := traffic.AnalyzeStagger(profile, d.Cells, 8.5)
	if err != nil {
		return BusyHourResult{}, err
	}
	dist := d.Distribution()
	const spread = 10 // ≈ today's constellation at 20:1 (Table 2)
	perBeamGbps := m.Capacity.Beams.SpreadCellCapacityGbps(spread)
	rate := func(locations int) float64 {
		if locations <= 0 {
			return 0
		}
		// All of a cell's locations share the spread beam at the busy
		// hour; the diurnal peak concentrates usage by PeakFactor
		// relative to the daily mean.
		return perBeamGbps * 1000 / float64(locations)
	}
	return BusyHourResult{
		PeakHourLocal:  profile.PeakHour(),
		PeakFactor:     profile.PeakFactor(),
		Stagger:        stagger,
		MedianCellMbps: rate(dist.Quantile(0.5)),
		P90CellMbps:    rate(dist.Quantile(0.9)),
		PeakCellMbps:   rate(dist.Peak().Locations),
		Spread:         spread,
	}, nil
}

// EconomicsResult prices the paper's capacity findings.
type EconomicsResult struct {
	Model econ.CostModel
	// Scenarios prices the Table 2 sizing results (capped 20:1).
	Scenarios []econ.ScenarioCost
	// Tail prices the Figure 3 steps at beamspread 10.
	Tail []econ.TailCost
}

// Economics converts satellite counts into dollars: constellation
// capex, sustaining cost per served location, and the per-location
// price of the diminishing-returns tail.
func (m Model) Economics(ctx context.Context, d *Dataset) (EconomicsResult, error) {
	cost := econ.DefaultCostModel()
	dist := d.Distribution()
	served := dist.TotalLocations() -
		dist.ExcessAbove(m.Capacity.Beams.MaxServableLocations(m.MaxOversub))
	out := EconomicsResult{Model: cost}
	for _, spread := range PaperTable2Spreads {
		if err := ctx.Err(); err != nil {
			return EconomicsResult{}, err
		}
		res := m.Capacity.Size(dist, core.CappedOversub, spread, m.MaxOversub)
		sc, err := cost.PriceScenario(res.Satellites, served)
		if err != nil {
			return EconomicsResult{}, err
		}
		out.Scenarios = append(out.Scenarios, sc)
	}
	fig3, err := m.fig3At(ctx, d, []float64{10})
	if err != nil {
		return EconomicsResult{}, err
	}
	if len(fig3) > 0 {
		tail, err := cost.PriceSteps(fig3[0].Steps)
		if err != nil {
			return EconomicsResult{}, err
		}
		out.Tail = tail
	}
	return out, nil
}
