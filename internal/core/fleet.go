package core

import (
	"context"
	"fmt"

	"leodivide/internal/constellation"
	"leodivide/internal/demand"
	"leodivide/internal/orbit"
	"leodivide/internal/par"
)

// FleetAssessment compares a real multi-shell fleet against the
// sizing requirement the demand distribution imposes.
type FleetAssessment struct {
	FleetName string
	// TotalSatellites is the fleet's raw satellite count.
	TotalSatellites int
	// EquivalentSatellites is the fleet's density at the binding
	// latitude expressed as the size of a single reference shell with
	// the model's inclination — the unit the sizing requirement is
	// stated in.
	EquivalentSatellites int
	// BindingLatDeg is the latitude of the binding demand cell.
	BindingLatDeg float64
	// Rows give, per beamspread factor, the required constellation and
	// the fleet's shortfall ratio.
	Rows []FleetRow
}

// FleetRow is one beamspread point of a fleet assessment.
type FleetRow struct {
	Spread float64
	// RequiredSatellites is the capped-oversubscription sizing result.
	RequiredSatellites int
	// CoverageRatio is equivalent/required: ≥1 means the fleet's
	// density at the binding latitude suffices at this beamspread.
	CoverageRatio float64
}

// AssessFleet evaluates whether a fleet's satellite density at the
// binding demand cell meets the capped-oversubscription sizing
// requirement across beamspread factors.
func (m Model) AssessFleet(ctx context.Context, d *demand.Distribution, fleet constellation.Fleet,
	spreads []float64, maxOversub float64) (FleetAssessment, error) {
	if err := fleet.Validate(); err != nil {
		return FleetAssessment{}, err
	}
	if len(spreads) == 0 {
		return FleetAssessment{}, fmt.Errorf("core: assess fleet %q: no beamspread factors", fleet.Name)
	}
	ref := orbit.Walker{
		AltitudeKm:     orbit.StarlinkAltitudeKm,
		InclinationDeg: m.InclinationDeg,
		Total:          1, // density factor is per satellite
		Planes:         1,
	}
	// Binding latitude from the capped scenario at the first spread
	// (the binding cell is spread-independent in peak-only mode).
	first := m.Size(d, CappedOversub, spreads[0], maxOversub)
	lat := first.BindingCell.Center.Lat
	equiv := fleet.EquivalentSingleShellSatellites(ref, lat)
	out := FleetAssessment{
		FleetName:            fleet.Name,
		TotalSatellites:      fleet.TotalSatellites(),
		EquivalentSatellites: equiv,
		BindingLatDeg:        lat,
	}
	rows, err := par.Map(ctx, m.Parallelism, len(spreads), func(i int) (FleetRow, error) {
		s := spreads[i]
		req := m.Size(d, CappedOversub, s, maxOversub).Satellites
		return FleetRow{
			Spread:             s,
			RequiredSatellites: req,
			CoverageRatio:      float64(equiv) / float64(req),
		}, nil
	})
	if err != nil {
		return FleetAssessment{}, err
	}
	out.Rows = rows
	return out, nil
}
