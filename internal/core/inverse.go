package core

import (
	"math"

	"leodivide/internal/demand"
)

// The inverse question of Table 2: given a constellation of N
// satellites (e.g. today's ~8,000), what beamspread factor must the
// operator adopt to cover every US cell — and what does that spread do
// to per-cell capacity? This is the paper's F2 read backwards: "to
// stay within acceptable oversubscription Starlink must adopt a
// beamspread factor less than 2", which today's fleet cannot.

// InverseSizing is the break-even analysis for a fixed fleet size.
type InverseSizing struct {
	// Satellites is the fleet size analysed.
	Satellites int
	// RequiredSpread is the minimum beamspread at which the fleet
	// covers all cells (peak cell fully beamed), from the sizing
	// equation solved for s.
	RequiredSpread float64
	// PerCellCapacityGbps is the capacity a single-beam cell receives
	// at that spread.
	PerCellCapacityGbps float64
	// MaxServableLocations is the largest cell servable at the
	// oversubscription cap under that spread with a single beam.
	MaxServableLocations int
	// ServedCellFraction is the fraction of demand cells within that
	// single-beam limit.
	ServedCellFraction float64
}

// InverseSize solves the sizing equation N = G/(1+(B−b)·s) for the
// spread s a fleet of n satellites needs, then reports what that
// spread costs in per-cell capacity.
func (m Model) InverseSize(d *demand.Distribution, satellites int, maxOversub float64) InverseSizing {
	capped := m.Size(d, CappedOversub, 1, maxOversub) // binding cell & beams at any spread
	lat := capped.BindingCell.Center.Lat
	b := capped.PeakBeams
	g := m.EffectiveCells(lat)
	// N = G / (1 + (B−b)·s)  ⇒  s = (G/N − 1) / (B−b).
	denom := float64(m.Beams.BeamsPerSatellite - b)
	spread := (g/float64(satellites) - 1) / denom
	if spread < 1 {
		spread = 1
	}
	perCell := m.Beams.SpreadCellCapacityGbps(spread)
	maxLoc := m.Beams.MaxLocationsUnderSpread(maxOversub, spread)
	return InverseSizing{
		Satellites:           satellites,
		RequiredSpread:       spread,
		PerCellCapacityGbps:  perCell,
		MaxServableLocations: maxLoc,
		ServedCellFraction:   d.FractionOfCellsAtMost(maxLoc),
	}
}

// SpreadForFraction returns the largest beamspread at which at least
// the target fraction of demand cells remains single-beam servable at
// the oversubscription cap, and the constellation size that spread
// requires. It answers "how small could the fleet get while serving
// fraction f of cells properly?".
func (m Model) SpreadForFraction(d *demand.Distribution, targetFraction, maxOversub float64) (spread float64, satellites int) {
	lo, hi := 1.0, 64.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		maxLoc := m.Beams.MaxLocationsUnderSpread(maxOversub, mid)
		if d.FractionOfCellsAtMost(maxLoc) >= targetFraction {
			lo = mid
		} else {
			hi = mid
		}
	}
	spread = math.Floor(lo*100) / 100
	capped := m.Size(d, CappedOversub, spread, maxOversub)
	return spread, capped.Satellites
}
