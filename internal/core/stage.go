package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"leodivide/internal/beams"
	"leodivide/internal/demand"
	"leodivide/internal/orbit"
	"leodivide/internal/par"
)

// This file holds core's compute stages: the spread-invariant pieces of
// the sizing sweeps, memoized per dataset in the Distribution's stage
// memo (see internal/stage). Two facts make the staging sound:
//
//   - The binding scan of sizeWithCap depends on the beam config, the
//     shell inclination, the oversubscription and the per-cell cap —
//     but not on the beamspread factor, which only enters afterwards
//     via ConstellationSize. One scan therefore serves every spread of
//     a Table-2 row, every Figure-3 curve and every fleet row.
//   - The diminishing-returns sweep's per-cap (unserved, beams) profile
//     depends on the beam config and oversubscription only; the spread
//     maps it through a per-band satellite table afterwards.
//
// Calibration knobs (CalibratedEffectiveCells, CalibrationLatDeg,
// CellAreaKm2) are deliberately outside both stages: they only affect
// ConstellationSize, which is always evaluated fresh. Parallelism never
// keys a stage — results are identical at every worker count.

// scanKey identifies one binding scan. All fields are comparable; the
// struct is usable as a map key with zero-allocation lookups.
type scanKey struct {
	beams   beams.Config
	incDeg  float64
	oversub float64
	capLoc  int
}

// peakScan is the spread-invariant result of the binding scan: the
// maximum per-cell beam requirement and the index (into the
// distribution's descending cell order) of the binding cell — the
// least-dense-latitude cell among those needing maxBeams.
type peakScan struct {
	maxBeams int
	bindIdx  int
}

// profileKey identifies one diminishing-returns profile.
type profileKey struct {
	beams   beams.Config
	oversub float64
}

// profilePoint is one cap value of the diminishing-returns sweep:
// locations unserved at the cap and the binding cell's beam count.
type profilePoint struct {
	unserved int
	beams    int
}

// modelCache is core's single anchor entry in a dataset's stage memo:
// typed maps behind one mutex, so the hot sizing path pays a constant
// string-key lookup for the anchor plus struct-key map lookups — no
// per-call key formatting, no allocations on hit.
type modelCache struct {
	mu       sync.Mutex
	scans    map[scanKey]peakScan
	profiles map[profileKey][]profilePoint
}

// modelCacheEntries bounds each typed map: past this many distinct
// (config, oversub, cap) combinations the map is flushed wholesale.
// Scenario sweeps use a handful of combinations; only an adversarial
// caller cycling knobs ever hits the bound, and recomputing is cheap.
const modelCacheEntries = 256

const modelCacheKey = "core.model-cache"

// newModelCache is package-level so the anchor lookup passes a static
// function value instead of allocating a closure per call.
var newModelCache = func() (any, error) {
	return &modelCache{
		scans:    make(map[scanKey]peakScan),
		profiles: make(map[profileKey][]profilePoint),
	}, nil
}

// modelCacheOf returns the dataset's model cache, creating it on first
// use. With a nil stage memo (zero-value Distribution) every call
// returns a fresh cache: correct, just unmemoized. newModelCache is
// infallible, so the only error Do can surface is a coalesced leader's
// panic — re-panicking is the honest translation of that state.
func modelCacheOf(d *demand.Distribution) *modelCache {
	v, err := d.Stages().Do(modelCacheKey, newModelCache)
	if err != nil {
		panic(fmt.Sprintf("core: model-cache stage failed: %v", err))
	}
	return v.(*modelCache)
}

// peakScan returns the memoized binding scan for (oversub, capLoc),
// computing it on first use. Concurrent first uses may compute
// duplicates; the insert is idempotent.
func (m Model) peakScan(d *demand.Distribution, oversub float64, capLoc int) peakScan {
	key := scanKey{beams: m.Beams, incDeg: m.InclinationDeg, oversub: oversub, capLoc: capLoc}
	mc := modelCacheOf(d)
	mc.mu.Lock()
	s, ok := mc.scans[key]
	mc.mu.Unlock()
	if ok {
		return s
	}
	s = m.computePeakScan(d, oversub, capLoc)
	mc.mu.Lock()
	if len(mc.scans) >= modelCacheEntries {
		clear(mc.scans)
	}
	mc.scans[key] = s
	mc.mu.Unlock()
	return s
}

// computePeakScan runs the binding scan over the columnar cell data.
// Cells are sorted descending by location count, so the capped served
// count — and with it the beam requirement — is non-increasing along
// the scan. The cells that can bind (beam count equal to the maximum,
// which the first cell fixes) therefore form a prefix, found by binary
// search; only that prefix needs latitude density evaluation. The
// min-density selection keeps the original first-wins strict-< order,
// so the result is identical to the full scan.
func (m Model) computePeakScan(d *demand.Distribution, oversub float64, capLoc int) peakScan {
	locs := d.Locs()
	lats := d.Lats()
	served := int(locs[0])
	if served > capLoc {
		served = capLoc
	}
	b0, _ := m.Beams.BeamsForCell(served, oversub)
	end := sort.Search(len(locs), func(i int) bool {
		s := int(locs[i])
		if s > capLoc {
			s = capLoc
		}
		b, _ := m.Beams.BeamsForCell(s, oversub)
		return b < b0
	})
	bestF := math.Inf(1)
	bestIdx := 0
	for i := 0; i < end; i++ {
		f := orbit.DensityFactor(m.InclinationDeg, lats[i])
		if f < bestF {
			bestF = f
			bestIdx = i
		}
	}
	return peakScan{maxBeams: b0, bindIdx: bestIdx}
}

// sizeAllCells is the BindAllCells sizing loop over the columnar data:
// every cell imposes a density constraint and the largest requirement
// wins (strict >, first wins — same selection as the struct scan).
func (m Model) sizeAllCells(d *demand.Distribution, spread, oversub float64, capLoc int) SizingResult {
	locs := d.Locs()
	lats := d.Lats()
	bestN, bestIdx, bestBeams := 0, 0, 0
	for i := range locs {
		served := int(locs[i])
		if served > capLoc {
			served = capLoc
		}
		b, _ := m.Beams.BeamsForCell(served, oversub)
		n := m.ConstellationSize(spread, b, lats[i])
		if n > bestN {
			bestN, bestIdx, bestBeams = n, i, b
		}
	}
	return SizingResult{
		Spread:      spread,
		Oversub:     oversub,
		PeakBeams:   bestBeams,
		BindingCell: d.Cells()[bestIdx],
		Satellites:  bestN,
	}
}

// returnsProfile returns the memoized diminishing-returns profile for
// oversub: for each cap t in [perBeam, hardCap], the unserved-location
// count and the binding beam requirement. Errors (cancellation) are
// returned, never cached.
func (m Model) returnsProfile(ctx context.Context, d *demand.Distribution, oversub float64) ([]profilePoint, error) {
	key := profileKey{beams: m.Beams, oversub: oversub}
	mc := modelCacheOf(d)
	mc.mu.Lock()
	prof, ok := mc.profiles[key]
	mc.mu.Unlock()
	if ok {
		return prof, nil
	}
	hardCap := m.Beams.MaxServableLocations(oversub)
	perBeam := m.Beams.LocationsPerBeam(oversub)
	prof, err := par.Map(ctx, m.Parallelism, hardCap-perBeam+1, func(i int) (profilePoint, error) {
		t := perBeam + i
		b, _ := m.Beams.BeamsForCell(t, oversub)
		return profilePoint{unserved: d.ExcessAbove(t), beams: b}, nil
	})
	if err != nil {
		return nil, err
	}
	mc.mu.Lock()
	if len(mc.profiles) >= modelCacheEntries {
		clear(mc.profiles)
	}
	mc.profiles[key] = prof
	mc.mu.Unlock()
	return prof, nil
}
