package core

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/orbit"
)

// paperDist builds a small distribution with the paper's five dense
// cells plus a body, at controlled latitudes.
func paperDist(t *testing.T) *demand.Distribution {
	t.Helper()
	cells := []demand.Cell{
		{ID: 1, Locations: 5998, Center: geo.LatLng{Lat: 35.5, Lng: -106.3}},
		{ID: 2, Locations: 4700, Center: geo.LatLng{Lat: 34.8, Lng: -87.2}},
		{ID: 3, Locations: 4300, Center: geo.LatLng{Lat: 34.3, Lng: -89.9}},
		{ID: 4, Locations: 3800, Center: geo.LatLng{Lat: 36.9, Lng: -83.1}},
		{ID: 5, Locations: 3630, Center: geo.LatLng{Lat: 34.9, Lng: -111.5}},
	}
	// A body of cells well below the 4-beam threshold.
	for i := 0; i < 100; i++ {
		cells = append(cells, demand.Cell{
			ID:        hexgrid.CellID(100 + i),
			Locations: 10 + i*20,
			Center:    geo.LatLng{Lat: 30 + float64(i%15), Lng: -120 + float64(i)},
		})
	}
	d, err := demand.NewDistribution(cells)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCapacityTable(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	c := m.Capacity(d)
	if c.UTDownlinkMHz != 3850 {
		t.Errorf("UTDownlinkMHz = %v", c.UTDownlinkMHz)
	}
	if c.PeakCellLocations != 5998 {
		t.Errorf("PeakCellLocations = %d", c.PeakCellLocations)
	}
	if math.Abs(c.PeakCellDemandGbps-599.8) > 1e-9 {
		t.Errorf("PeakCellDemandGbps = %v", c.PeakCellDemandGbps)
	}
	if math.Abs(c.MaxOversubscription-599.8/17.3) > 1e-9 {
		t.Errorf("MaxOversubscription = %v", c.MaxOversubscription)
	}
}

func TestOversubscription(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	o := m.Oversubscription(d, 20)
	if o.CapLocations != 3460 {
		t.Errorf("CapLocations = %d, want 3460", o.CapLocations)
	}
	if o.CellsAboveCap != 5 {
		t.Errorf("CellsAboveCap = %d, want 5", o.CellsAboveCap)
	}
	if o.LocationsInCellsAboveCap != 22428 {
		t.Errorf("LocationsInCellsAboveCap = %d, want 22428", o.LocationsInCellsAboveCap)
	}
	if o.ExcessLocations != 5128 {
		t.Errorf("ExcessLocations = %d, want 5128", o.ExcessLocations)
	}
	if o.ServedFractionAtCap <= 0.9 || o.ServedFractionAtCap >= 1 {
		t.Errorf("ServedFractionAtCap = %v", o.ServedFractionAtCap)
	}
}

func TestEffectiveCellsCalibrated(t *testing.T) {
	m := NewModel().Calibrated()
	// At the calibration latitude the effective cell count equals the
	// paper's fitted constant.
	if got := m.EffectiveCells(m.CalibrationLatDeg); math.Abs(got-PaperEffectiveCells) > 1 {
		t.Errorf("EffectiveCells(ref) = %v, want %v", got, float64(PaperEffectiveCells))
	}
	// Lower latitude (lower density) needs more effective cells.
	if m.EffectiveCells(25) <= m.EffectiveCells(m.CalibrationLatDeg) {
		t.Error("effective cells should grow toward the equator")
	}
}

func TestConstellationSizePaperScaling(t *testing.T) {
	m := NewModel().Calibrated()
	// N(s)·(1+20s) is constant: the paper's Table 2 invariant.
	lat := m.CalibrationLatDeg
	base := float64(m.ConstellationSize(1, 4, lat)) * 21
	for _, s := range []float64{2, 5, 10, 15} {
		n := m.ConstellationSize(s, 4, lat)
		product := float64(n) * (1 + 20*s)
		if math.Abs(product-base)/base > 0.001 {
			t.Errorf("spread %v: N·(1+20s) = %v, want %v", s, product, base)
		}
	}
	// And the absolute sizes match the paper's full-service column
	// within rounding.
	want := map[float64]int{1: 79287, 2: 40611, 5: 16486, 10: 8284, 15: 5532}
	for s, w := range want {
		got := m.ConstellationSize(s, 4, lat)
		if math.Abs(float64(got-w))/float64(w) > 0.002 {
			t.Errorf("spread %v: N = %d, paper %d", s, got, w)
		}
	}
}

func TestSizeScenarios(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	full := m.Size(d, FullService, 2, 0)
	capped := m.Size(d, CappedOversub, 2, 20)
	if full.PeakBeams != 4 || capped.PeakBeams != 4 {
		t.Errorf("peak beams = %d/%d, want 4/4", full.PeakBeams, capped.PeakBeams)
	}
	// Full service binds at the 4-beam cells under ~34.7:1 (the 5998
	// and 4700 cells); capped at 20:1 binds among all five dense cells,
	// whose lowest latitude (34.3) is south of the full-service binding
	// (34.8) — so the capped deployment needs slightly more satellites.
	if full.BindingCell.Center.Lat != 34.8 {
		t.Errorf("full-service binding lat = %v, want 34.8", full.BindingCell.Center.Lat)
	}
	if capped.BindingCell.Center.Lat != 34.3 {
		t.Errorf("capped binding lat = %v, want 34.3", capped.BindingCell.Center.Lat)
	}
	if capped.Satellites <= full.Satellites {
		t.Errorf("capped (%d) should exceed full service (%d)", capped.Satellites, full.Satellites)
	}
	ratio := float64(capped.Satellites) / float64(full.Satellites)
	if ratio > 1.05 {
		t.Errorf("scenario ratio = %v, want small (~1.01)", ratio)
	}
	if full.UnservedLocations != 0 {
		t.Errorf("full service leaves %d unserved", full.UnservedLocations)
	}
	if capped.UnservedLocations != 5128 {
		t.Errorf("capped leaves %d unserved, want 5128", capped.UnservedLocations)
	}
}

// Property: constellation size shrinks with beamspread and grows with
// peak beams.
func TestSizeMonotonicityProperty(t *testing.T) {
	m := NewModel()
	f := func(spreadRaw, beamsRaw uint8) bool {
		spread := 1 + float64(spreadRaw%15)
		beams := 1 + int(beamsRaw%4)
		n1 := m.ConstellationSize(spread, beams, 35)
		n2 := m.ConstellationSize(spread+1, beams, 35)
		n3 := m.ConstellationSize(spread, beams, 45) // denser latitude
		ok := n2 <= n1 && n3 <= n1
		if beams < 4 {
			n4 := m.ConstellationSize(spread, beams+1, 35)
			ok = ok && n4 >= n1
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeTable(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	rows, err := m.SizeTable(context.Background(), d, []float64{1, 2, 5, 10, 15}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FullServiceSats >= rows[i-1].FullServiceSats {
			t.Error("full-service sizes not decreasing in spread")
		}
		if rows[i].CappedOversubSats >= rows[i-1].CappedOversubSats {
			t.Error("capped sizes not decreasing in spread")
		}
	}
}

func TestServedFractionGrid(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	spreads := []float64{2, 8, 14}
	oversubs := []float64{5, 15, 30}
	grid, err := m.ServedFractionGrid(context.Background(), d, spreads, oversubs, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spreads {
		for j := range oversubs {
			v := grid[i][j]
			if v < 0 || v > 1 {
				t.Fatalf("fraction out of range: %v", v)
			}
			// Monotone: more oversubscription serves more.
			if j > 0 && grid[i][j] < grid[i][j-1] {
				t.Error("fraction not monotone in oversubscription")
			}
			// Anti-monotone: more spreading serves less.
			if i > 0 && grid[i][j] > grid[i-1][j] {
				t.Error("fraction not anti-monotone in spread")
			}
		}
	}
	// Multi-beam serving strictly dominates single-beam.
	multi, err := m.ServedFractionGrid(context.Background(), d, spreads, oversubs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spreads {
		for j := range oversubs {
			if multi[i][j] < grid[i][j] {
				t.Error("multi-beam fraction below single-beam")
			}
		}
	}
}

func TestDiminishingReturns(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	pts, err := m.DiminishingReturns(context.Background(), d, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CapLocations <= pts[i-1].CapLocations {
			t.Fatal("caps not increasing")
		}
		if pts[i].UnservedLocations > pts[i-1].UnservedLocations {
			t.Fatal("unserved not decreasing as cap rises")
		}
		if pts[i].Satellites < pts[i-1].Satellites {
			t.Fatal("satellites not nondecreasing as service grows")
		}
		if pts[i].PeakBeams < pts[i-1].PeakBeams {
			t.Fatal("peak beams not nondecreasing")
		}
	}
	// The endpoint matches the capped sizing.
	last := pts[len(pts)-1]
	capped := m.Size(d, CappedOversub, 10, 20)
	if last.Satellites != capped.Satellites {
		t.Errorf("final point %d satellites, capped sizing %d", last.Satellites, capped.Satellites)
	}
	if last.UnservedLocations != 5128 {
		t.Errorf("final unserved = %d, want the 5128 floor", last.UnservedLocations)
	}
	// Step extraction: all steps positive in both axes.
	steps := StepCosts(pts)
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	for _, s := range steps {
		if s.AdditionalSatellites <= 0 || s.LocationsGained <= 0 {
			t.Errorf("non-positive step: %+v", s)
		}
	}
}

func TestBindAllCellsTightens(t *testing.T) {
	d := paperDist(t)
	peak := NewModel()
	all := NewModel()
	all.Binding = BindAllCells
	for _, spread := range []float64{1, 5, 15} {
		np := peak.Size(d, CappedOversub, spread, 20).Satellites
		na := all.Size(d, CappedOversub, spread, 20).Satellites
		if na < np {
			t.Errorf("spread %v: all-cells bound %d below peak-only %d", spread, na, np)
		}
	}
}

func TestDensityFactorConsistency(t *testing.T) {
	// EffectiveCells must equal A_earth/(A_cell·f) in geometric mode.
	m := NewModel()
	lat := 40.0
	f := orbit.DensityFactor(m.InclinationDeg, lat)
	want := geo.EarthAreaKm2 / (m.CellAreaKm2 * f)
	if got := m.EffectiveCells(lat); math.Abs(got-want) > 1e-6 {
		t.Errorf("EffectiveCells = %v, want %v", got, want)
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []Scenario{FullService, CappedOversub, Scenario(9)} {
		if s.String() == "" {
			t.Error("empty scenario string")
		}
	}
	for _, b := range []BindingMode{BindPeakOnly, BindAllCells, BindingMode(9)} {
		if b.String() == "" {
			t.Error("empty binding string")
		}
	}
}
