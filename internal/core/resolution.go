package core

import (
	"fmt"
	"sort"

	"leodivide/internal/demand"
	"leodivide/internal/hexgrid"
)

// The paper notes (§2.1) that "the 'peak demand' of a constellation's
// user base varies depending on the size of the geographical area into
// which users are grouped". This file quantifies that: re-aggregate
// the demand cells at a coarser grid resolution and watch the peak
// cell, the required oversubscription and the unservable tail move.

// ResolutionPoint is the capacity picture at one grid resolution.
type ResolutionPoint struct {
	Resolution hexgrid.Resolution
	// AvgCellAreaKm2 is the cell size at this resolution.
	AvgCellAreaKm2 float64
	// Cells is the demand-cell count after re-aggregation.
	Cells int
	// PeakLocations is the densest cell.
	PeakLocations int
	// RequiredOversub is the full-service oversubscription the peak
	// forces (per-cell capacity is resolution-independent: it is set by
	// spectrum, not geography).
	RequiredOversub float64
	// ExcessAt20 is the unservable location count at the 20:1 cap.
	ExcessAt20 int
}

// ResolutionSensitivity re-aggregates cells at each requested coarser
// resolution (via geometric parents) and reports the capacity picture.
// The input cells' own resolution is included as the first point.
func (m Model) ResolutionSensitivity(cells []demand.Cell, coarser ...hexgrid.Resolution) ([]ResolutionPoint, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: no cells")
	}
	baseRes := cells[0].ID.Resolution()
	evaluate := func(cs []demand.Cell, res hexgrid.Resolution) (ResolutionPoint, error) {
		dist, err := demand.NewDistribution(cs)
		if err != nil {
			return ResolutionPoint{}, err
		}
		return ResolutionPoint{
			Resolution:      res,
			AvgCellAreaKm2:  res.AvgCellAreaKm2(),
			Cells:           dist.NumCells(),
			PeakLocations:   dist.Peak().Locations,
			RequiredOversub: m.Beams.RequiredOversubscription(dist.Peak().Locations),
			ExcessAt20:      dist.ExcessAbove(m.Beams.MaxServableLocations(20)),
		}, nil
	}
	base, err := evaluate(cells, baseRes)
	if err != nil {
		return nil, err
	}
	out := []ResolutionPoint{base}
	for _, res := range coarser {
		if !res.Valid() || res > baseRes {
			return nil, fmt.Errorf("core: resolution %d not coarser than base %d", res, baseRes)
		}
		if res == baseRes {
			continue
		}
		merged := make(map[hexgrid.CellID]*demand.Cell)
		for _, c := range cells {
			parent, err := c.ID.ParentAt(res)
			if err != nil {
				return nil, err
			}
			if agg, ok := merged[parent]; ok {
				agg.Locations += c.Locations
			} else {
				merged[parent] = &demand.Cell{
					ID:         parent,
					Locations:  c.Locations,
					CountyFIPS: c.CountyFIPS,
					Center:     parent.LatLng(),
				}
			}
		}
		// Emit the merged cells in sorted ID order: ranging over the
		// map directly would hand evaluate a randomly ordered slice,
		// making any order-sensitive aggregate drift run to run
		// (caught by the maporder lint).
		coarse := make([]demand.Cell, 0, len(merged))
		for _, c := range merged {
			coarse = append(coarse, *c)
		}
		sort.Slice(coarse, func(i, j int) bool { return coarse[i].ID < coarse[j].ID })
		point, err := evaluate(coarse, res)
		if err != nil {
			return nil, err
		}
		out = append(out, point)
	}
	return out, nil
}
