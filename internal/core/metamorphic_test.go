package core

// Metamorphic oracles for the sizing model: the relations behind the
// paper's tables and figures, checked against the synthetic paper
// distribution for every axis the experiments sweep. A recalibration
// may move the corpus; it may not break these.

import (
	"context"
	"testing"

	"leodivide/internal/demand"
	"leodivide/internal/hexgrid"
	"leodivide/internal/testutil"
)

func TestSizeMonotoneInSpread(t *testing.T) {
	// Table 2's central relation: spreading beams wider covers more
	// cells per satellite, so required constellations shrink.
	m := NewModel()
	d := paperDist(t)
	for _, sc := range []Scenario{FullService, CappedOversub} {
		var sats []float64
		for _, spread := range []float64{1, 2, 5, 10, 15} {
			sats = append(sats, float64(m.Size(d, sc, spread, 20).Satellites))
		}
		testutil.RequireMonotone(t, sc.String()+" satellites vs beamspread", sats, testutil.StrictlyDecreasing)
	}
}

func TestSizeOrderingBetweenScenarios(t *testing.T) {
	// Capping oversubscription abandons the hardest locations, so the
	// capped constellation is never larger than full service... per the
	// sizing rule, it is never smaller either at equal spread unless the
	// peak beam requirement drops. The invariant the paper states:
	// capped ≥ full-service (Table 2's capped column is slightly larger
	// — the capped scenario runs at 20:1 while full service floats to
	// ~35:1, so the capped peak cell needs its beams for longer).
	m := NewModel()
	d := paperDist(t)
	for _, spread := range []float64{1, 2, 5, 10, 15} {
		full := m.Size(d, FullService, spread, 0)
		capped := m.Size(d, CappedOversub, spread, 20)
		if capped.Satellites < full.Satellites {
			t.Errorf("spread %g: capped %d < full %d", spread, capped.Satellites, full.Satellites)
		}
		if full.UnservedLocations != 0 {
			t.Errorf("spread %g: full service left %d unserved", spread, full.UnservedLocations)
		}
		if capped.UnservedLocations < 0 {
			t.Errorf("spread %g: negative unserved %d", spread, capped.UnservedLocations)
		}
	}
}

func TestServedFractionGridAxisMonotonicity(t *testing.T) {
	// Figure 2's surface: more oversubscription serves more cells
	// (rightward along a row), more spreading serves fewer (downward
	// along a column).
	m := NewModel()
	d := paperDist(t)
	spreads := []float64{2, 4, 6, 8, 10, 12, 14}
	oversubs := []float64{5, 10, 15, 20, 25, 30}
	grid, err := m.ServedFractionGrid(context.Background(), d, spreads, oversubs, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range grid {
		testutil.RequireMonotone(t, "served fraction vs oversub", row, testutil.NonDecreasing)
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Errorf("spread %g: fraction %v out of [0,1]", spreads[i], v)
			}
		}
	}
	for j := range oversubs {
		col := make([]float64, len(spreads))
		for i := range spreads {
			col[i] = grid[i][j]
		}
		testutil.RequireMonotone(t, "served fraction vs spread", col, testutil.NonIncreasing)
	}
}

func TestDiminishingReturnsOrdering(t *testing.T) {
	// Figure 3's curve sweeps toward serving more locations: unserved
	// falls, constellation size never falls, and the satellite count
	// only jumps at per-beam boundaries (PeakBeams non-decreasing).
	m := NewModel()
	d := paperDist(t)
	points, err := m.DiminishingReturns(context.Background(), d, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("curve has %d points, want several", len(points))
	}
	unserved := make([]float64, len(points))
	sats := make([]float64, len(points))
	beams := make([]float64, len(points))
	caps := make([]float64, len(points))
	for i, p := range points {
		unserved[i] = float64(p.UnservedLocations)
		sats[i] = float64(p.Satellites)
		beams[i] = float64(p.PeakBeams)
		caps[i] = float64(p.CapLocations)
	}
	testutil.RequireMonotone(t, "cap", caps, testutil.StrictlyIncreasing)
	testutil.RequireMonotone(t, "unserved", unserved, testutil.NonIncreasing)
	testutil.RequireMonotone(t, "satellites", sats, testutil.NonDecreasing)
	testutil.RequireMonotone(t, "peak beams", beams, testutil.NonDecreasing)
}

func TestOversubscriptionScaleInvariance(t *testing.T) {
	// The required oversubscription depends only on the peak cell, so
	// replicating the cell body (same shape, more cells) must not move
	// it, and the served fraction at the cap is preserved exactly when
	// every cell is duplicated (the ratio is per-location).
	m := NewModel()
	d := paperDist(t)
	a := m.Oversubscription(d, 20)

	cells := append([]demand.Cell(nil), d.Cells()...)
	double := make([]demand.Cell, 0, 2*len(cells))
	for i, c := range cells {
		double = append(double, c)
		c2 := c
		c2.ID = c.ID + hexgrid.CellID(1_000_000+i)
		double = append(double, c2)
	}
	d2, err := demand.NewDistribution(double)
	if err != nil {
		t.Fatal(err)
	}
	b := m.Oversubscription(d2, 20)
	if a.RequiredOversub != b.RequiredOversub {
		t.Errorf("required oversub moved under duplication: %v -> %v", a.RequiredOversub, b.RequiredOversub)
	}
	testutil.RequireWithinRel(t, "served fraction under duplication",
		b.ServedFractionAtCap, a.ServedFractionAtCap, 1e-12)
	if b.TotalLocations != 2*a.TotalLocations {
		t.Errorf("total locations %d != 2×%d", b.TotalLocations, a.TotalLocations)
	}
	if b.ExcessLocations != 2*a.ExcessLocations {
		t.Errorf("excess locations %d != 2×%d", b.ExcessLocations, a.ExcessLocations)
	}
}
