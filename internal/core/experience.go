package core

import (
	"fmt"

	"leodivide/internal/demand"
	"leodivide/internal/stats"
)

// The user-experience view of a deployment: if every cell gets one
// s-way-spread beam (the regime a fixed-size constellation forces, per
// InverseSize), what throughput does each *location* see when its cell
// shares the beam? Weighting by locations rather than cells shifts the
// distribution sharply downward — most cells are sparse, but most
// locations live in dense cells.

// Experience summarizes per-location throughput under a spread-beam
// deployment.
type Experience struct {
	// Spread is the beamspread factor in force.
	Spread float64
	// P10, Median, P90 are location-weighted throughput quantiles in
	// Mbps (P10 = the rate the luckiest decile beats... the lowest
	// decile of locations exceeds P10).
	P10Mbps, MedianMbps, P90Mbps float64
	// FractionAtLeast maps benchmark rates (Mbps) to the fraction of
	// locations at or above them.
	FractionAtLeast map[float64]float64
}

// ExperienceUnderSpread computes the location-weighted throughput
// distribution when every cell is served by a single beam spread over
// spreadFactor cells.
func (m Model) ExperienceUnderSpread(d *demand.Distribution, spreadFactor float64, benchmarksMbps ...float64) (Experience, error) {
	if spreadFactor < 1 {
		spreadFactor = 1
	}
	perCellMbps := m.Beams.SpreadCellCapacityGbps(spreadFactor) * 1000
	cells := d.Cells()
	samples := make([]stats.WeightedSample, 0, len(cells))
	for _, c := range cells {
		if c.Locations <= 0 {
			continue
		}
		samples = append(samples, stats.WeightedSample{
			Value:  perCellMbps / float64(c.Locations),
			Weight: float64(c.Locations),
		})
	}
	w, err := stats.NewWeightedCDF(samples)
	if err != nil {
		return Experience{}, fmt.Errorf("core: %w", err)
	}
	out := Experience{
		Spread:          spreadFactor,
		P10Mbps:         w.Quantile(0.10),
		MedianMbps:      w.Quantile(0.50),
		P90Mbps:         w.Quantile(0.90),
		FractionAtLeast: make(map[float64]float64, len(benchmarksMbps)),
	}
	if len(benchmarksMbps) == 0 {
		benchmarksMbps = []float64{25, 100}
	}
	for _, b := range benchmarksMbps {
		// Fraction with rate >= b.
		out.FractionAtLeast[b] = w.WeightGT(b-1e-9) / w.TotalWeight()
	}
	return out, nil
}
