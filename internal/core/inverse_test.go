package core

import (
	"context"

	"testing"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/traffic"
)

func TestInverseSize(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	inv := m.InverseSize(d, 8000, 20)
	if inv.Satellites != 8000 {
		t.Errorf("satellites = %d", inv.Satellites)
	}
	// ~8,000 satellites force a beamspread near the Table 2 break-even
	// (between 10 and 13 in geometric mode).
	if inv.RequiredSpread < 8 || inv.RequiredSpread > 14 {
		t.Errorf("required spread = %v, want ≈11", inv.RequiredSpread)
	}
	// At that spread, single-beam capacity collapses below 0.5 Gbps.
	if inv.PerCellCapacityGbps > 0.6 {
		t.Errorf("per-cell capacity = %v Gbps, want well below a dedicated beam", inv.PerCellCapacityGbps)
	}
	if inv.ServedCellFraction <= 0 || inv.ServedCellFraction >= 1 {
		t.Errorf("served fraction = %v", inv.ServedCellFraction)
	}
	// Consistency: plugging the required spread back into Size gives
	// roughly the fleet size.
	res := m.Size(d, CappedOversub, inv.RequiredSpread, 20)
	if rel := float64(res.Satellites-8000) / 8000; rel > 0.02 || rel < -0.02 {
		t.Errorf("round trip fleet = %d, want ≈8000", res.Satellites)
	}
}

func TestInverseSizeMonotone(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	// More satellites ⇒ less spreading needed ⇒ more capacity per cell.
	small := m.InverseSize(d, 4000, 20)
	big := m.InverseSize(d, 40000, 20)
	if big.RequiredSpread >= small.RequiredSpread {
		t.Errorf("spread not shrinking with fleet size: %v vs %v",
			big.RequiredSpread, small.RequiredSpread)
	}
	if big.PerCellCapacityGbps <= small.PerCellCapacityGbps {
		t.Error("capacity not growing with fleet size")
	}
	if big.ServedCellFraction < small.ServedCellFraction {
		t.Error("served fraction not growing with fleet size")
	}
	// A huge fleet needs no spreading at all.
	huge := m.InverseSize(d, 10_000_000, 20)
	if huge.RequiredSpread != 1 {
		t.Errorf("huge fleet spread = %v, want clamp to 1", huge.RequiredSpread)
	}
}

func TestSpreadForFraction(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	// paperDist's cells run 10..2000 locations, so single-beam service
	// at spread 1 reaches ~41% of cells; test feasible targets below
	// that.
	spreadHigh, satsHigh := m.SpreadForFraction(d, 0.35, 20)
	spreadLow, satsLow := m.SpreadForFraction(d, 0.15, 20)
	if spreadHigh >= spreadLow {
		t.Errorf("higher target should force lower spread: %v vs %v", spreadHigh, spreadLow)
	}
	if satsHigh <= satsLow {
		t.Errorf("higher target should cost more satellites: %d vs %d", satsHigh, satsLow)
	}
	// The target is actually met at the returned spread.
	maxLoc := m.Beams.MaxLocationsUnderSpread(20, spreadHigh)
	if d.FractionOfCellsAtMost(maxLoc) < 0.35 {
		t.Errorf("returned spread misses the 35%% target")
	}
	// An infeasible target clamps to spread 1.
	if s, _ := m.SpreadForFraction(d, 0.99, 20); s != 1 {
		t.Errorf("infeasible target spread = %v, want 1", s)
	}
}

func TestResolutionSensitivity(t *testing.T) {
	m := NewModel()
	// Build cells at resolution 5 from scattered points.
	var cells []demand.Cell
	for i := 0; i < 200; i++ {
		lat := 30 + float64(i%17)
		lng := -120 + float64(i%40)*1.3
		id := hexgrid.LatLngToCell(geo.LatLng{Lat: lat, Lng: lng}, 5)
		cells = append(cells, demand.Cell{ID: id, Locations: 50 + i*13%900, Center: id.LatLng()})
	}
	points, err := m.ResolutionSensitivity(cells, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	base := points[0]
	if base.Resolution != 5 {
		t.Errorf("base resolution = %d", base.Resolution)
	}
	for i := 1; i < len(points); i++ {
		p := points[i]
		// Coarser cells: fewer of them, bigger peaks, higher required
		// oversubscription (per-cell capacity does not grow with area).
		if p.Cells > points[i-1].Cells {
			t.Errorf("res %d: cell count grew when coarsening", p.Resolution)
		}
		if p.PeakLocations < points[i-1].PeakLocations {
			t.Errorf("res %d: peak shrank when coarsening", p.Resolution)
		}
		if p.RequiredOversub < points[i-1].RequiredOversub {
			t.Errorf("res %d: oversubscription shrank when coarsening", p.Resolution)
		}
	}
	// Errors.
	if _, err := m.ResolutionSensitivity(cells, 6); err == nil {
		t.Error("finer resolution should fail")
	}
	if _, err := m.ResolutionSensitivity(nil, 4); err == nil {
		t.Error("no cells should fail")
	}
}

func TestExperienceUnderSpread(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	exp, err := m.ExperienceUnderSpread(d, 10, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Spread != 10 {
		t.Errorf("spread = %v", exp.Spread)
	}
	// Quantiles are ordered.
	if !(exp.P10Mbps <= exp.MedianMbps && exp.MedianMbps <= exp.P90Mbps) {
		t.Errorf("quantiles disordered: %v %v %v", exp.P10Mbps, exp.MedianMbps, exp.P90Mbps)
	}
	// More locations clear 25 Mbps than 100 Mbps.
	if exp.FractionAtLeast[25] < exp.FractionAtLeast[100] {
		t.Error("benchmark fractions disordered")
	}
	// Less spreading gives everyone more throughput.
	tight, err := m.ExperienceUnderSpread(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tight.MedianMbps <= exp.MedianMbps {
		t.Errorf("spread 2 median %v not above spread 10 median %v",
			tight.MedianMbps, exp.MedianMbps)
	}
	// Location weighting pulls the median below the cell-count median:
	// the median cell in paperDist has ~1,000 locations but the median
	// *location* lives in a denser cell.
	cellMedianRate := m.Beams.SpreadCellCapacityGbps(10) * 1000 / float64(d.Quantile(0.5))
	if exp.MedianMbps > cellMedianRate+1e-9 {
		t.Errorf("location-weighted median %v should not exceed cell-median rate %v",
			exp.MedianMbps, cellMedianRate)
	}
}

func TestServedFractionOverDay(t *testing.T) {
	m := NewModel()
	profile := traffic.DefaultProfile()
	// CONUS-spanning cells sized near the single-beam limit so the
	// diurnal swing moves them across it.
	limit := m.Beams.MaxLocationsUnderSpread(20, 10) // 86 at spread 10
	var cells []demand.Cell
	id := 1
	for lng := -120.0; lng <= -75; lng += 3 {
		for k := 0; k < 4; k++ {
			cells = append(cells, demand.Cell{
				ID:        hexgrid.CellID(id),
				Locations: limit/2 + k*limit/3,
				Center:    geo.LatLng{Lat: 38, Lng: lng},
			})
			id++
		}
	}
	points, err := m.ServedFractionOverDay(context.Background(), profile, cells, 10, 20, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 48 {
		t.Fatalf("got %d points", len(points))
	}
	sum := SummarizeDaily(points)
	if sum.WorstFraction >= sum.BestFraction {
		t.Errorf("no diurnal variation: %+v", sum)
	}
	// The worst hour lands when the evening peak covers the cells:
	// 21:00 local at -75..-120 is 02:00-05:00 UTC.
	if !(sum.WorstUTCHour >= 0 && sum.WorstUTCHour <= 9) {
		t.Errorf("worst UTC hour = %v, want late-night UTC (US evening)", sum.WorstUTCHour)
	}
	for _, pt := range points {
		if pt.ServedCellFraction < 0 || pt.ServedCellFraction > 1 {
			t.Fatalf("fraction out of range at %v", pt.UTCHour)
		}
	}
	// Errors.
	if _, err := m.ServedFractionOverDay(context.Background(), profile, nil, 10, 20, 24); err == nil {
		t.Error("no cells should fail")
	}
	var zero traffic.DiurnalProfile
	if _, err := m.ServedFractionOverDay(context.Background(), zero, cells, 10, 20, 24); err == nil {
		t.Error("invalid profile should fail")
	}
}
