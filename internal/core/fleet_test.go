package core

import (
	"context"
	"strings"
	"testing"

	"leodivide/internal/constellation"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
)

func TestAssessFleet(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	spreads := []float64{2, 10, 15}

	gen1, err := m.AssessFleet(context.Background(), d, constellation.StarlinkGen1(), spreads, 20)
	if err != nil {
		t.Fatal(err)
	}
	if gen1.TotalSatellites != 4408 {
		t.Errorf("Gen1 total = %d", gen1.TotalSatellites)
	}
	if gen1.EquivalentSatellites <= 0 {
		t.Errorf("Gen1 equivalent = %d", gen1.EquivalentSatellites)
	}
	if len(gen1.Rows) != 3 {
		t.Fatalf("got %d rows", len(gen1.Rows))
	}
	// Gen1 cannot meet the requirement at low beamspread.
	if gen1.Rows[0].CoverageRatio >= 1 {
		t.Errorf("Gen1 covers beamspread 2?! ratio=%v", gen1.Rows[0].CoverageRatio)
	}
	// Coverage ratio improves with beamspread.
	for i := 1; i < len(gen1.Rows); i++ {
		if gen1.Rows[i].CoverageRatio <= gen1.Rows[i-1].CoverageRatio {
			t.Error("coverage ratio not improving with beamspread")
		}
	}

	gen2, err := m.AssessFleet(context.Background(), d, constellation.StarlinkGen2(), spreads, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Gen2's density at the binding latitude far exceeds Gen1's.
	if gen2.EquivalentSatellites <= gen1.EquivalentSatellites {
		t.Errorf("Gen2 equivalent (%d) should exceed Gen1 (%d)",
			gen2.EquivalentSatellites, gen1.EquivalentSatellites)
	}
}

// singleCellDist is the degenerate demand geography: the whole nation's
// unserved demand in one cell.
func singleCellDist(t *testing.T, locations int) *demand.Distribution {
	t.Helper()
	d, err := demand.NewDistribution([]demand.Cell{
		{ID: 1, Locations: locations, Center: geo.LatLng{Lat: 35.5, Lng: -106.3}, CountyFIPS: "35049"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAssessFleetErrorPaths(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	ctx := context.Background()

	cases := []struct {
		name    string
		fleet   constellation.Fleet
		spreads []float64
		wantErr string
	}{
		{"empty fleet", constellation.Fleet{}, []float64{2}, "no shells"},
		{"named fleet without shells", constellation.Fleet{Name: "x"}, []float64{2}, "no shells"},
		{"no spreads", constellation.StarlinkGen1(), nil, "no beamspread factors"},
		{"empty spreads", constellation.StarlinkGen1(), []float64{}, "no beamspread factors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := m.AssessFleet(ctx, d, tc.fleet, tc.spreads, 20)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}

	// A cancelled context aborts the sweep.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.AssessFleet(cancelled, d, constellation.StarlinkGen1(), []float64{2, 10}, 20); err == nil {
		t.Error("cancelled context should abort the assessment")
	}
}

func TestAssessFleetSingleCellDemand(t *testing.T) {
	// One dense cell: the assessment still works, the binding cell is
	// that cell, and the requirement is positive at every spread.
	m := NewModel()
	d := singleCellDist(t, 3000)
	a, err := m.AssessFleet(context.Background(), d, constellation.StarlinkGen1(), []float64{1, 2, 5}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.BindingLatDeg != 35.5 {
		t.Errorf("binding latitude = %v, want the single cell's 35.5", a.BindingLatDeg)
	}
	for _, row := range a.Rows {
		if row.RequiredSatellites <= 0 {
			t.Errorf("spread %g: nonpositive requirement %d", row.Spread, row.RequiredSatellites)
		}
		if row.CoverageRatio <= 0 {
			t.Errorf("spread %g: nonpositive coverage ratio %v", row.Spread, row.CoverageRatio)
		}
	}
}

func TestAssessFleetSingleSpread(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	a, err := m.AssessFleet(context.Background(), d, constellation.StarlinkGen2(), []float64{2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(a.Rows))
	}
	// The row must agree exactly with a direct sizing call.
	want := m.Size(d, CappedOversub, 2, 20).Satellites
	if a.Rows[0].RequiredSatellites != want {
		t.Errorf("row requirement %d != direct Size %d", a.Rows[0].RequiredSatellites, want)
	}
}
