package core

import (
	"context"

	"testing"

	"leodivide/internal/constellation"
)

func TestAssessFleet(t *testing.T) {
	m := NewModel()
	d := paperDist(t)
	spreads := []float64{2, 10, 15}

	gen1, err := m.AssessFleet(context.Background(), d, constellation.StarlinkGen1(), spreads, 20)
	if err != nil {
		t.Fatal(err)
	}
	if gen1.TotalSatellites != 4408 {
		t.Errorf("Gen1 total = %d", gen1.TotalSatellites)
	}
	if gen1.EquivalentSatellites <= 0 {
		t.Errorf("Gen1 equivalent = %d", gen1.EquivalentSatellites)
	}
	if len(gen1.Rows) != 3 {
		t.Fatalf("got %d rows", len(gen1.Rows))
	}
	// Gen1 cannot meet the requirement at low beamspread.
	if gen1.Rows[0].CoverageRatio >= 1 {
		t.Errorf("Gen1 covers beamspread 2?! ratio=%v", gen1.Rows[0].CoverageRatio)
	}
	// Coverage ratio improves with beamspread.
	for i := 1; i < len(gen1.Rows); i++ {
		if gen1.Rows[i].CoverageRatio <= gen1.Rows[i-1].CoverageRatio {
			t.Error("coverage ratio not improving with beamspread")
		}
	}

	gen2, err := m.AssessFleet(context.Background(), d, constellation.StarlinkGen2(), spreads, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Gen2's density at the binding latitude far exceeds Gen1's.
	if gen2.EquivalentSatellites <= gen1.EquivalentSatellites {
		t.Errorf("Gen2 equivalent (%d) should exceed Gen1 (%d)",
			gen2.EquivalentSatellites, gen1.EquivalentSatellites)
	}

	// Invalid fleet errors.
	if _, err := m.AssessFleet(context.Background(), d, constellation.Fleet{Name: "x"}, spreads, 20); err == nil {
		t.Error("invalid fleet should fail")
	}
}
