// Package core implements the paper's analytical capacity model: the
// single-satellite capacity budget (Table 1), the peak-demand-driven
// constellation sizing rule (P2, Table 2), the beamspread ×
// oversubscription service-fraction surface (Figure 2), and the
// diminishing-returns sweep over the demand long tail (Figure 3).
//
// The model's chain of reasoning:
//
//  1. Spectrum fixes a maximum per-cell capacity (≈17.3 Gbps via 4
//     beams); the FCC benchmark fixes per-location demand (100 Mbps).
//  2. The densest cell therefore fixes the minimum oversubscription for
//     full service, and — via the number of beams the satellite above
//     it must dedicate — how many cells that satellite can still cover.
//  3. Continuous coverage converts the required satellite density at the
//     peak cell's latitude into a total constellation size using the
//     Walker-shell latitude density profile.
package core

import (
	"context"
	"fmt"
	"math"

	"leodivide/internal/beams"
	"leodivide/internal/constellation"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/orbit"
	"leodivide/internal/par"
	"leodivide/internal/spectrum"
)

// BindingMode selects which cells may determine the constellation size.
type BindingMode int

const (
	// BindPeakOnly reproduces the paper's lower bound: only the cells
	// requiring the maximum beam count bind, and among them the one at
	// the least-dense latitude.
	BindPeakOnly BindingMode = iota
	// BindAllCells is the tighter extension: every demand cell imposes
	// a density constraint (a 1-beam cell at a sparse low latitude can
	// out-bind a 4-beam cell at a dense mid latitude).
	BindAllCells
)

// String names the binding mode.
func (b BindingMode) String() string {
	switch b {
	case BindPeakOnly:
		return "peak-only"
	case BindAllCells:
		return "all-cells"
	default:
		return fmt.Sprintf("BindingMode(%d)", int(b))
	}
}

// Model carries the fixed parameters of a capacity analysis. Obtain a
// paper-default instance from NewModel and adjust fields for ablations.
type Model struct {
	// Beams is the satellite beam/spectrum configuration.
	Beams beams.Config
	// InclinationDeg is the shell inclination used for the latitude
	// density profile.
	InclinationDeg float64
	// CellAreaKm2 is the service-cell area.
	CellAreaKm2 float64
	// Binding selects the sizing constraint set.
	Binding BindingMode
	// CalibratedEffectiveCells, when positive, pins the effective
	// global cell count at CalibrationLatDeg to the paper's fitted
	// value (≈1.665e6) instead of deriving it from CellAreaKm2 and the
	// shell geometry. Other latitudes scale by the density profile.
	CalibratedEffectiveCells float64
	// CalibrationLatDeg is the reference latitude for the calibrated
	// effective cell count.
	CalibrationLatDeg float64
	// UTDownlinkMHz and SpectralEfficiencyBpsPerHz describe the
	// spectrum behind Beams, reported by Capacity (Table 1). Zero
	// values fall back to the Starlink Schedule S constants so
	// hand-built models keep working.
	UTDownlinkMHz              float64
	SpectralEfficiencyBpsPerHz float64
	// Parallelism bounds the worker count for the sweep methods
	// (SizeTable, ServedFractionGrid, DiminishingReturns, AssessFleet,
	// ServedFractionOverDay). 0 means one worker per CPU; 1 is the exact
	// serial path. Every sweep point is an independent pure function of
	// the model and dataset and lands in an index-ordered slot, so
	// results are identical at every setting.
	//
	// Through the facade, set this via leodivide's Model.Parallelism
	// (or RunConfig), which keeps it in lockstep with the facade's own
	// worker bound; writing the field directly risks running the two
	// layers at different counts and is unsupported there.
	Parallelism int
}

// PaperEffectiveCells is the effective global cell count implied by the
// paper's Table 2 (N·(1+20s) is constant at ≈1,665,027 across all five
// beamspread rows of the full-service column).
const PaperEffectiveCells = 1665027

// NewModel returns the model with the paper's parameters: Starlink beam
// budget, 53° shell, resolution-5 cell area, geometric effective cells,
// peak-only binding. It is NewModelFor applied to the Starlink spec.
func NewModel() Model {
	return NewModelFor(constellation.StarlinkSystem())
}

// NewModelFor returns the capacity model a constellation spec implies:
// the system's beam configuration, its sizing-shell inclination for the
// latitude density profile, and its spectrum figures for Table 1
// reporting. Cell area, binding mode and calibration latitude are
// properties of the demand grid and the paper's fit, not of the
// system, and stay at their paper defaults.
func NewModelFor(sys constellation.System) Model {
	return Model{
		Beams:                      beams.ForSystem(sys),
		InclinationDeg:             sys.SizingInclinationDeg,
		CellAreaKm2:                hexgrid.Resolution(5).AvgCellAreaKm2(),
		Binding:                    BindPeakOnly,
		CalibrationLatDeg:          34.8,
		UTDownlinkMHz:              spectrum.UTDownlinkMHzOf(sys.Bands),
		SpectralEfficiencyBpsPerHz: sys.SpectralEfficiencyBpsPerHz,
	}
}

// Calibrated returns a copy of the model with the effective cell count
// pinned to the paper's fitted value.
func (m Model) Calibrated() Model {
	m.CalibratedEffectiveCells = PaperEffectiveCells
	return m
}

// EffectiveCells returns the effective number of cells the constellation
// must cover, given that the binding constraint sits at latDeg: the
// Earth's cell count divided by the shell's density enhancement there.
func (m Model) EffectiveCells(latDeg float64) float64 {
	f := orbit.DensityFactor(m.InclinationDeg, latDeg)
	if m.CalibratedEffectiveCells > 0 {
		fRef := orbit.DensityFactor(m.InclinationDeg, m.CalibrationLatDeg)
		return m.CalibratedEffectiveCells * fRef / f
	}
	return geo.EarthAreaKm2 / (m.CellAreaKm2 * f)
}

// ConstellationSize returns the satellites required when the binding
// cell at latDeg needs peakBeams dedicated beams and all other beams
// spread over spreadFactor cells.
func (m Model) ConstellationSize(spreadFactor float64, peakBeams int, latDeg float64) int {
	cellsPerSat := m.Beams.CellsPerSatellite(spreadFactor, peakBeams)
	return int(math.Ceil(m.EffectiveCells(latDeg) / cellsPerSat))
}

// CapacityTable reproduces the paper's Table 1: the single-satellite
// capacity model applied to the peak-demand cell.
type CapacityTable struct {
	UTDownlinkMHz              float64
	SpectralEfficiencyBpsPerHz float64
	MaxCellCapacityGbps        float64
	PeakCellLocations          int
	FCCDownMbps, FCCUpMbps     float64
	PeakCellDemandGbps         float64
	MaxOversubscription        float64
}

// Capacity evaluates the Table 1 quantities against the dataset's peak
// cell.
func (m Model) Capacity(d *demand.Distribution) CapacityTable {
	peak := d.Peak()
	demandGbps := m.Beams.CellDemandGbps(peak.Locations)
	mhz := m.UTDownlinkMHz
	if mhz == 0 {
		mhz = spectrum.UTDownlinkMHz()
	}
	eff := m.SpectralEfficiencyBpsPerHz
	if eff == 0 {
		eff = spectrum.SpectralEfficiencyBpsPerHz
	}
	return CapacityTable{
		UTDownlinkMHz:              mhz,
		SpectralEfficiencyBpsPerHz: eff,
		MaxCellCapacityGbps:        m.Beams.MaxCellCapacityGbps(),
		PeakCellLocations:          peak.Locations,
		FCCDownMbps:                spectrum.FCCDownlinkMbps,
		FCCUpMbps:                  spectrum.FCCUplinkMbps,
		PeakCellDemandGbps:         demandGbps,
		MaxOversubscription:        m.Beams.RequiredOversubscription(peak.Locations),
	}
}

// OversubAnalysis reproduces Finding 1: what oversubscription full
// service requires, and what a regulator-acceptable cap leaves behind.
type OversubAnalysis struct {
	// MaxOversub is the cap analysed (20:1 in the paper).
	MaxOversub float64
	// RequiredOversub is the oversubscription full service of the peak
	// cell demands (~35:1).
	RequiredOversub float64
	// CapLocations is the largest servable cell at the cap (3,460).
	CapLocations int
	// CellsAboveCap counts cells denser than the cap (5).
	CellsAboveCap int
	// LocationsInCellsAboveCap counts locations living in those cells
	// (22,428): all of them see >cap oversubscription if fully served.
	LocationsInCellsAboveCap int
	// ExcessLocations counts locations beyond the per-cell cap (5,128):
	// the locations that cannot be served at all within the cap.
	ExcessLocations int
	// ServedFractionAtCap is the fraction of all locations servable at
	// the cap (99.89%).
	ServedFractionAtCap float64
	// TotalLocations is the dataset total.
	TotalLocations int
}

// Oversubscription analyses the dataset against an oversubscription cap.
func (m Model) Oversubscription(d *demand.Distribution, maxOversub float64) OversubAnalysis {
	capLoc := m.Beams.MaxServableLocations(maxOversub)
	return OversubAnalysis{
		MaxOversub:               maxOversub,
		RequiredOversub:          m.Beams.RequiredOversubscription(d.Peak().Locations),
		CapLocations:             capLoc,
		CellsAboveCap:            d.CellsAbove(capLoc),
		LocationsInCellsAboveCap: d.LocationsInCellsAbove(capLoc),
		ExcessLocations:          d.ExcessAbove(capLoc),
		ServedFractionAtCap:      d.ServedFractionWithCap(capLoc),
		TotalLocations:           d.TotalLocations(),
	}
}

// Scenario selects a deployment strategy for sizing.
type Scenario int

const (
	// FullService serves every location, letting the peak cell's
	// oversubscription float as high as needed (~35:1).
	FullService Scenario = iota
	// CappedOversub serves at most the oversubscription cap per cell,
	// leaving the excess locations in the densest cells unserved.
	CappedOversub
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case FullService:
		return "full service"
	case CappedOversub:
		return "capped oversubscription"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// SizingResult is the constellation size required for one scenario and
// beamspread.
type SizingResult struct {
	Scenario    Scenario
	Spread      float64
	Oversub     float64 // the oversubscription in force
	PeakBeams   int     // beams dedicated to the binding cell
	BindingCell demand.Cell
	Satellites  int
	// UnservedLocations counts locations left out (0 for FullService).
	UnservedLocations int
}

// Size computes the constellation required for a scenario at a
// beamspread factor. maxOversub only applies to CappedOversub.
func (m Model) Size(d *demand.Distribution, sc Scenario, spread, maxOversub float64) SizingResult {
	var oversub float64
	var unserved int
	switch sc {
	case FullService:
		oversub = m.Beams.RequiredOversubscription(d.Peak().Locations)
	case CappedOversub:
		oversub = maxOversub
		unserved = d.ExcessAbove(m.Beams.MaxServableLocations(maxOversub))
	}
	capLoc := m.Beams.MaxServableLocations(oversub)
	res := m.sizeWithCap(d, spread, oversub, capLoc)
	res.Scenario = sc
	res.UnservedLocations = unserved
	return res
}

// sizeWithCap sizes the constellation when every cell is served up to
// capLoc locations at the given oversubscription. In peak-only mode
// the binding scan is spread-invariant, so it is memoized in the
// dataset's stage memo and only the final ConstellationSize evaluation
// runs per call; all-cells mode folds the spread into every cell's
// constraint and runs the full columnar loop (see stage.go for both).
func (m Model) sizeWithCap(d *demand.Distribution, spread, oversub float64, capLoc int) SizingResult {
	if m.Binding == BindAllCells {
		return m.sizeAllCells(d, spread, oversub, capLoc)
	}
	scan := m.peakScan(d, oversub, capLoc)
	binding := d.Cells()[scan.bindIdx]
	return SizingResult{
		Spread:      spread,
		Oversub:     oversub,
		PeakBeams:   scan.maxBeams,
		BindingCell: binding,
		Satellites:  m.ConstellationSize(spread, scan.maxBeams, binding.Center.Lat),
	}
}

// SizeRow pairs the two scenarios of the paper's Table 2 at one
// beamspread factor.
type SizeRow struct {
	Spread               float64
	FullServiceSats      int
	CappedOversubSats    int
	FullServiceBinding   demand.Cell
	CappedOversubBinding demand.Cell
}

// SizeTable reproduces Table 2: constellation sizes for both scenarios
// across beamspread factors. Rows are computed concurrently under the
// model's Parallelism and returned in spread order.
func (m Model) SizeTable(ctx context.Context, d *demand.Distribution, spreads []float64, maxOversub float64) ([]SizeRow, error) {
	return par.Map(ctx, m.Parallelism, len(spreads), func(i int) (SizeRow, error) {
		s := spreads[i]
		full := m.Size(d, FullService, s, 0)
		capped := m.Size(d, CappedOversub, s, maxOversub)
		return SizeRow{
			Spread:               s,
			FullServiceSats:      full.Satellites,
			CappedOversubSats:    capped.Satellites,
			FullServiceBinding:   full.BindingCell,
			CappedOversubBinding: capped.BindingCell,
		}, nil
	})
}

// ServedFractionGrid reproduces Figure 2: for each (beamspread,
// oversubscription) pair, the fraction of US demand cells servable.
// With multiBeam false (the paper's current-constellation reading),
// each cell gets a single s-way-spread beam; with multiBeam true, up to
// the per-cell beam cap of s-way-spread beams.
// Rows (one per beamspread) are computed concurrently under the model's
// Parallelism and returned in axis order.
func (m Model) ServedFractionGrid(ctx context.Context, d *demand.Distribution, spreads, oversubs []float64, multiBeam bool) ([][]float64, error) {
	return par.Map(ctx, m.Parallelism, len(spreads), func(i int) ([]float64, error) {
		s := spreads[i]
		row := make([]float64, len(oversubs))
		for j, o := range oversubs {
			maxLoc := m.Beams.MaxLocationsUnderSpread(o, s)
			if multiBeam {
				maxLoc *= m.Beams.MaxBeamsPerCell
			}
			row[j] = d.FractionOfCellsAtMost(maxLoc)
		}
		return row, nil
	})
}

// ReturnsPoint is one point of the Figure-3 diminishing-returns curve.
type ReturnsPoint struct {
	// CapLocations is the per-cell service cap producing the point.
	CapLocations int
	// UnservedLocations is the x-axis: locations left unserved.
	UnservedLocations int
	// Satellites is the constellation size required.
	Satellites int
	// PeakBeams is the binding cell's beam requirement.
	PeakBeams int
}

// DiminishingReturns reproduces Figure 3 for one beamspread factor at a
// fixed oversubscription: sweeping the per-cell service cap from the
// single-beam limit up to the oversubscription limit, it returns the
// (unserved locations, constellation size) trade-off in the direction
// of serving more locations. The curve is stepped: satellites jump only
// when the cap crosses a per-beam boundary and pins another beam on the
// binding cell.
//
// The t-sweep fans out over the model's Parallelism: every cap value's
// (unserved, satellites) pair is an independent pure evaluation, and the
// serial skip-if-unchanged emission is equivalent to run-compressing the
// full precomputed sequence, so the curve is identical at every worker
// count.
//
// In peak-only mode the per-cap (unserved, beams) profile is
// spread-invariant and memoized in the dataset's stage memo; each call
// then maps it through the per-band satellite table for its spread and
// compresses — so a multi-spread Figure 3 pays for one profile sweep
// total, not one per spread.
func (m Model) DiminishingReturns(ctx context.Context, d *demand.Distribution, spread, oversub float64) ([]ReturnsPoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hardCap := m.Beams.MaxServableLocations(oversub)
	perBeam := m.Beams.LocationsPerBeam(oversub)
	if perBeam > hardCap {
		return nil, nil
	}
	if m.Binding != BindPeakOnly {
		return m.diminishingReturnsAllCells(ctx, d, spread, oversub, hardCap, perBeam)
	}

	// The paper's narrative sizes every point of the sweep against the
	// same peak cell, with only its beam requirement changing as the cap
	// falls through per-beam boundaries. Fix the binding latitude from
	// the full-cap sizing and precompute the per-band sizes.
	maxBand := m.Beams.MaxBeamsPerCell
	bandSats := make([]int, maxBand+1) // indexed by beams
	bindLat := d.Cells()[m.peakScan(d, oversub, hardCap).bindIdx].Center.Lat
	for b := 1; b <= maxBand; b++ {
		bandSats[b] = m.ConstellationSize(spread, b, bindLat)
	}
	prof, err := m.returnsProfile(ctx, d, oversub)
	if err != nil {
		return nil, err
	}

	var out []ReturnsPoint
	lastUnserved, lastSats := -1, -1
	for i, p := range prof {
		sats := bandSats[p.beams]
		if p.unserved == lastUnserved && sats == lastSats {
			continue
		}
		out = append(out, ReturnsPoint{
			CapLocations:      perBeam + i,
			UnservedLocations: p.unserved,
			Satellites:        sats,
			PeakBeams:         p.beams,
		})
		lastUnserved, lastSats = p.unserved, sats
	}
	return out, nil
}

// diminishingReturnsAllCells is the unstaged sweep for BindAllCells,
// where the constellation size at every cap depends on the spread
// through every cell's constraint and cannot be shared.
func (m Model) diminishingReturnsAllCells(ctx context.Context, d *demand.Distribution, spread, oversub float64, hardCap, perBeam int) ([]ReturnsPoint, error) {
	raw, err := par.Map(ctx, m.Parallelism, hardCap-perBeam+1, func(i int) (ReturnsPoint, error) {
		t := perBeam + i
		unserved := d.ExcessAbove(t)
		b, _ := m.Beams.BeamsForCell(t, oversub)
		return ReturnsPoint{
			CapLocations:      t,
			UnservedLocations: unserved,
			Satellites:        m.sizeWithCap(d, spread, oversub, t).Satellites,
			PeakBeams:         b,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []ReturnsPoint
	lastUnserved, lastSats := -1, -1
	for _, p := range raw {
		if p.UnservedLocations == lastUnserved && p.Satellites == lastSats {
			continue
		}
		out = append(out, p)
		lastUnserved, lastSats = p.UnservedLocations, p.Satellites
	}
	return out, nil
}

// StepCost summarizes one step of the diminishing-returns curve: how
// many additional satellites the next tranche of locations costs.
type StepCost struct {
	FromUnserved, ToUnserved int
	LocationsGained          int
	AdditionalSatellites     int
}

// StepCosts extracts the satellite cost of each step of a
// diminishing-returns curve (the paper's Figure 3 annotations).
func StepCosts(points []ReturnsPoint) []StepCost {
	var out []StepCost
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		if cur.Satellites == prev.Satellites {
			continue
		}
		out = append(out, StepCost{
			FromUnserved:         prev.UnservedLocations,
			ToUnserved:           cur.UnservedLocations,
			LocationsGained:      prev.UnservedLocations - cur.UnservedLocations,
			AdditionalSatellites: cur.Satellites - prev.Satellites,
		})
	}
	return out
}
