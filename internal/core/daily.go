package core

import (
	"context"
	"fmt"

	"leodivide/internal/demand"
	"leodivide/internal/par"
	"leodivide/internal/traffic"
)

// DailyPoint is the served fraction at one UTC hour.
type DailyPoint struct {
	UTCHour float64
	// ServedCellFraction is the fraction of demand cells whose
	// instantaneous demand fits in their single spread beam at the
	// oversubscription cap.
	ServedCellFraction float64
}

// ServedFractionOverDay ties the diurnal model to the capacity model:
// at each UTC hour, a cell is served if its instantaneous demand
// (locations × benchmark × diurnal multiplier at its local hour) fits
// in one spread beam at the oversubscription cap. The resulting curve
// shows national service quality sagging as the evening peak sweeps
// westward across the time zones.
func (m Model) ServedFractionOverDay(ctx context.Context, p traffic.DiurnalProfile, cells []demand.Cell,
	spread, maxOversub float64, steps int) ([]DailyPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: no cells")
	}
	if steps < 2 {
		steps = 24
	}
	// A cell is served at multiplier k iff k·L ≤ L1(ρ, s): the diurnal
	// multiplier effectively scales the cell's location count. Each UTC
	// step scans every cell, so the sweep fans out over steps; the scan
	// runs over columnar projections (location count, diurnal phase)
	// built once per call, not over the Cell structs.
	limit := float64(m.Beams.MaxLocationsUnderSpread(maxOversub, spread))
	cols := traffic.NewColumns(cells)
	return par.Map(ctx, m.Parallelism, steps, func(s int) (DailyPoint, error) {
		utc := 24 * float64(s) / float64(steps)
		served := 0
		for i := range cols.Loc {
			k := p.MultiplierAt(utc, cols.Phase[i])
			if cols.Loc[i]*k <= limit {
				served++
			}
		}
		return DailyPoint{
			UTCHour:            utc,
			ServedCellFraction: float64(served) / float64(len(cells)),
		}, nil
	})
}

// DailySummary condenses the daily curve.
type DailySummary struct {
	BestFraction, WorstFraction float64
	WorstUTCHour                float64
}

// SummarizeDaily extracts the best and worst hours.
func SummarizeDaily(points []DailyPoint) DailySummary {
	if len(points) == 0 {
		return DailySummary{}
	}
	out := DailySummary{
		BestFraction:  points[0].ServedCellFraction,
		WorstFraction: points[0].ServedCellFraction,
		WorstUTCHour:  points[0].UTCHour,
	}
	for _, pt := range points[1:] {
		if pt.ServedCellFraction > out.BestFraction {
			out.BestFraction = pt.ServedCellFraction
		}
		if pt.ServedCellFraction < out.WorstFraction {
			out.WorstFraction = pt.ServedCellFraction
			out.WorstUTCHour = pt.UTCHour
		}
	}
	return out
}
