// Package testutil provides reusable property and metamorphic oracles
// for the experiment pipeline's test suites. The oracles are generic
// over plain values (compared through the canonical golden encoding) so
// the package stays import-cycle-free: it depends only on
// internal/golden, never on the root leodivide package, and can
// therefore be used both by internal package tests and by the root
// package's own in-package tests.
//
// The invariants encoded here are the ones the paper's model must obey
// regardless of parameter calibration:
//
//   - Monotonicity: capacity grows with spectrum and beam count;
//     constellation size shrinks as beamspread grows.
//   - Conservation: aggregating demand at different hexgrid
//     resolutions must preserve the total number of locations.
//   - Determinism: every experiment must produce byte-identical output
//     at every Parallelism setting (serial ≡ parallel differential).
//   - Fixpoint: save → load → rerun through safeio must reproduce the
//     original results exactly.
package testutil

import (
	"testing"

	"leodivide/internal/golden"
)

// Direction states which way a sequence is expected to move.
type Direction int

const (
	// NonDecreasing requires xs[i] <= xs[i+1] for all i.
	NonDecreasing Direction = iota
	// NonIncreasing requires xs[i] >= xs[i+1] for all i.
	NonIncreasing
	// StrictlyIncreasing requires xs[i] < xs[i+1] for all i.
	StrictlyIncreasing
	// StrictlyDecreasing requires xs[i] > xs[i+1] for all i.
	StrictlyDecreasing
)

func (d Direction) String() string {
	switch d {
	case NonDecreasing:
		return "non-decreasing"
	case NonIncreasing:
		return "non-increasing"
	case StrictlyIncreasing:
		return "strictly increasing"
	case StrictlyDecreasing:
		return "strictly decreasing"
	}
	return "unknown"
}

func (d Direction) ok(a, b float64) bool {
	switch d {
	case NonDecreasing:
		return a <= b
	case NonIncreasing:
		return a >= b
	case StrictlyIncreasing:
		return a < b
	case StrictlyDecreasing:
		return a > b
	}
	return false
}

// RequireMonotone fails the test unless xs moves in the given
// direction. The failure names the first offending adjacent pair.
func RequireMonotone(t testing.TB, label string, xs []float64, dir Direction) {
	t.Helper()
	for i := 0; i+1 < len(xs); i++ {
		if !dir.ok(xs[i], xs[i+1]) {
			t.Fatalf("%s: not %s at index %d: xs[%d]=%v, xs[%d]=%v (full: %v)",
				label, dir, i, i, xs[i], i+1, xs[i+1], xs)
		}
	}
}

// RequireWithinRel fails unless got is within rel relative tolerance of
// want (|got-want| <= rel*max(|got|,|want|)). want==got==0 passes.
func RequireWithinRel(t testing.TB, label string, got, want, rel float64) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if g := got; g < 0 {
		g = -g
		if g > scale {
			scale = g
		}
	} else if g > scale {
		scale = g
	}
	if diff > rel*scale {
		t.Fatalf("%s: got %v, want %v (relative error %v exceeds %v)",
			label, got, want, diff/maxf(scale, 1e-300), rel)
	}
}

// RequireWithinAbs fails unless got is within abs absolute tolerance
// of want. For integer-valued invariants with a known rounding bound
// (largest-remainder splits, count doublings) an absolute window is the
// honest contract: the tolerated error does not grow with the values.
func RequireWithinAbs(t testing.TB, label string, got, want, abs float64) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > abs {
		t.Fatalf("%s: got %v, want %v (absolute error %v exceeds %v)", label, got, want, diff, abs)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RequireEqual fails unless want and got have identical canonical
// golden encodings. On mismatch the failure names the first drifted
// field path, so structural diffs in large experiment results are
// diagnosable without eyeballing two JSON dumps.
func RequireEqual(t testing.TB, label string, want, got any) {
	t.Helper()
	wb, err := golden.Encode(want)
	if err != nil {
		t.Fatalf("%s: encode want: %v", label, err)
	}
	gb, err := golden.Encode(got)
	if err != nil {
		t.Fatalf("%s: encode got: %v", label, err)
	}
	if string(wb) == string(gb) {
		return
	}
	diffs, err := golden.Compare(gb, wb, golden.Exact())
	if err != nil {
		t.Fatalf("%s: compare: %v", label, err)
	}
	if len(diffs) == 0 {
		// Encodings differ but the trees compare equal — should be
		// impossible with canonical encoding; report it loudly.
		t.Fatalf("%s: encodings differ byte-wise but no field diff found:\n%s\nvs\n%s", label, wb, gb)
	}
	t.Fatalf("%s: %d field(s) differ; first: %s", label, len(diffs), diffs[0])
}

// RequireDeterministic is the serial ≡ parallel differential oracle.
// It runs fn once per entry in counts, using the first entry as the
// reference, and requires every subsequent result to be byte-identical
// (under the canonical golden encoding) to the reference. Callers pass
// counts[0]=1 to make exact-serial the reference semantics.
func RequireDeterministic(t testing.TB, label string, counts []int, fn func(parallelism int) (any, error)) {
	t.Helper()
	if len(counts) < 2 {
		t.Fatalf("%s: need at least two parallelism settings, got %v", label, counts)
	}
	ref, err := fn(counts[0])
	if err != nil {
		t.Fatalf("%s: parallelism=%d: %v", label, counts[0], err)
	}
	refBytes, err := golden.Encode(ref)
	if err != nil {
		t.Fatalf("%s: encode reference: %v", label, err)
	}
	for _, n := range counts[1:] {
		got, err := fn(n)
		if err != nil {
			t.Fatalf("%s: parallelism=%d: %v", label, n, err)
		}
		gotBytes, err := golden.Encode(got)
		if err != nil {
			t.Fatalf("%s: encode parallelism=%d: %v", label, n, err)
		}
		if string(gotBytes) == string(refBytes) {
			continue
		}
		diffs, err := golden.Compare(gotBytes, refBytes, golden.Exact())
		if err != nil {
			t.Fatalf("%s: compare parallelism=%d: %v", label, n, err)
		}
		if len(diffs) > 0 {
			t.Fatalf("%s: parallelism=%d diverges from parallelism=%d; %d field(s); first: %s",
				label, n, counts[0], len(diffs), diffs[0])
		}
		t.Fatalf("%s: parallelism=%d byte-level divergence with no field diff:\n%s\nvs\n%s",
			label, n, refBytes, gotBytes)
	}
}

// RequireConserved fails unless every entry of totals equals the first.
// The conservation oracle for quantities that must be invariant across
// a re-partitioning (e.g. location counts across hexgrid resolutions).
func RequireConserved(t testing.TB, label string, totals map[string]int64) {
	t.Helper()
	var refKey string
	var ref int64
	first := true
	for k, v := range totals {
		if first || k < refKey {
			refKey, ref, first = k, v, false
		}
	}
	for k, v := range totals {
		if v != ref {
			t.Fatalf("%s: total not conserved: %s=%d but %s=%d (all: %v)",
				label, refKey, ref, k, v, totals)
		}
	}
}
