package testutil

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// recorder captures Fatalf calls so the oracles' failure modes can be
// asserted without failing the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}

func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
	panic(recorderStop{})
}

type recorderStop struct{}

func capture(fn func(t testing.TB)) (r *recorder) {
	r = &recorder{}
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(recorderStop); !ok {
				panic(v)
			}
		}
	}()
	fn(r)
	return r
}

func TestRequireMonotone(t *testing.T) {
	RequireMonotone(t, "up", []float64{1, 2, 2, 3}, NonDecreasing)
	RequireMonotone(t, "down", []float64{3, 2, 2, 1}, NonIncreasing)
	RequireMonotone(t, "strict up", []float64{1, 2, 3}, StrictlyIncreasing)
	RequireMonotone(t, "strict down", []float64{3, 2, 1}, StrictlyDecreasing)
	RequireMonotone(t, "empty", nil, StrictlyIncreasing)
	RequireMonotone(t, "single", []float64{5}, StrictlyDecreasing)

	r := capture(func(tb testing.TB) {
		RequireMonotone(tb, "bad", []float64{1, 3, 2}, NonDecreasing)
	})
	if !r.failed || !strings.Contains(r.msg, "index 1") {
		t.Errorf("expected failure at index 1, got %q", r.msg)
	}
	r = capture(func(tb testing.TB) {
		RequireMonotone(tb, "plateau", []float64{1, 2, 2}, StrictlyIncreasing)
	})
	if !r.failed || !strings.Contains(r.msg, "strictly increasing") {
		t.Errorf("expected strictness failure, got %q", r.msg)
	}
}

func TestRequireWithinRel(t *testing.T) {
	RequireWithinRel(t, "close", 1.0000001, 1.0, 1e-6)
	RequireWithinRel(t, "zero", 0, 0, 1e-9)
	RequireWithinRel(t, "negative", -2.0000001, -2.0, 1e-6)

	r := capture(func(tb testing.TB) {
		RequireWithinRel(tb, "far", 1.1, 1.0, 1e-3)
	})
	if !r.failed || !strings.Contains(r.msg, "far") {
		t.Errorf("expected tolerance failure, got %q", r.msg)
	}
}

func TestRequireEqual(t *testing.T) {
	type row struct {
		Sats   int
		Spread float64
	}
	a := []row{{100, 2}, {200, 4}}
	b := []row{{100, 2}, {200, 4}}
	RequireEqual(t, "same", a, b)

	c := []row{{100, 2}, {201, 4}}
	r := capture(func(tb testing.TB) { RequireEqual(tb, "drift", a, c) })
	if !r.failed || !strings.Contains(r.msg, "/1/Sats") {
		t.Errorf("expected failure naming /1/Sats, got %q", r.msg)
	}
}

func TestRequireDeterministic(t *testing.T) {
	type res struct{ N, Par int }

	// A deterministic function passes at every parallelism.
	RequireDeterministic(t, "stable", []int{1, 2, 8}, func(p int) (any, error) {
		return res{N: 42}, nil
	})

	// A function whose output depends on parallelism is caught, and the
	// failure names the parallelism and the drifted field.
	r := capture(func(tb testing.TB) {
		RequireDeterministic(tb, "leaky", []int{1, 2}, func(p int) (any, error) {
			return res{N: 42, Par: p}, nil
		})
	})
	if !r.failed || !strings.Contains(r.msg, "parallelism=2") || !strings.Contains(r.msg, "/Par") {
		t.Errorf("expected divergence naming parallelism=2 and /Par, got %q", r.msg)
	}

	// Errors propagate with the parallelism that produced them.
	r = capture(func(tb testing.TB) {
		RequireDeterministic(tb, "failing", []int{1, 2}, func(p int) (any, error) {
			if p == 2 {
				return nil, errors.New("boom")
			}
			return res{}, nil
		})
	})
	if !r.failed || !strings.Contains(r.msg, "boom") {
		t.Errorf("expected error propagation, got %q", r.msg)
	}

	// Degenerate matrix is rejected: a single setting proves nothing.
	r = capture(func(tb testing.TB) {
		RequireDeterministic(tb, "degenerate", []int{1}, func(p int) (any, error) {
			return res{}, nil
		})
	})
	if !r.failed {
		t.Error("single-entry counts must be rejected")
	}
}

func TestRequireConserved(t *testing.T) {
	RequireConserved(t, "ok", map[string]int64{"res3": 100, "res4": 100, "res5": 100})
	RequireConserved(t, "empty", nil)

	r := capture(func(tb testing.TB) {
		RequireConserved(tb, "leak", map[string]int64{"res3": 100, "res4": 99})
	})
	if !r.failed || !strings.Contains(r.msg, "res4") {
		t.Errorf("expected conservation failure naming res4, got %q", r.msg)
	}
}
