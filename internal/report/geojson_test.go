package report

import (
	"bytes"
	"strings"
	"testing"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

func sampleCells(t *testing.T) []demand.Cell {
	t.Helper()
	pts := []struct {
		lat, lng float64
		n        int
	}{
		{35.5, -106.3, 500}, {40, -100, 50}, {33, -90, 120}, {45, -95, 8},
	}
	cells := make([]demand.Cell, 0, len(pts))
	for _, p := range pts {
		id := hexgrid.LatLngToCell(geo.LatLng{Lat: p.lat, Lng: p.lng}, 4)
		cells = append(cells, demand.Cell{
			ID: id, Locations: p.n, CountyFIPS: "35001", Center: id.LatLng(),
		})
	}
	return cells
}

func TestWriteCellsGeoJSON(t *testing.T) {
	cells := sampleCells(t)
	var buf bytes.Buffer
	if err := WriteCellsGeoJSON(&buf, cells, 0); err != nil {
		t.Fatal(err)
	}
	features, locations, err := ReadCellsGeoJSONCount(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if features != len(cells) {
		t.Errorf("features = %d, want %d", features, len(cells))
	}
	if locations != 678 {
		t.Errorf("total locations = %d, want 678", locations)
	}
	out := buf.String()
	for _, want := range []string{"FeatureCollection", "Polygon", "county_fips", "demand_gbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("geojson missing %q", want)
		}
	}
}

func TestWriteCellsGeoJSONCap(t *testing.T) {
	cells := sampleCells(t)
	var buf bytes.Buffer
	if err := WriteCellsGeoJSON(&buf, cells, 2); err != nil {
		t.Fatal(err)
	}
	features, locations, err := ReadCellsGeoJSONCount(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if features != 2 {
		t.Errorf("capped features = %d, want 2", features)
	}
	// The cap keeps the densest cells (500 + 120).
	if locations != 620 {
		t.Errorf("capped locations = %d, want 620", locations)
	}
}

func TestReadCellsGeoJSONErrors(t *testing.T) {
	if _, _, err := ReadCellsGeoJSONCount(strings.NewReader("not json")); err == nil {
		t.Error("invalid json should fail")
	}
	if _, _, err := ReadCellsGeoJSONCount(strings.NewReader(`{"type":"Feature"}`)); err == nil {
		t.Error("wrong type should fail")
	}
}

func TestWriteGatewaysGeoJSON(t *testing.T) {
	var buf bytes.Buffer
	err := WriteGatewaysGeoJSON(&buf,
		[]string{"a", "b"},
		[]geo.LatLng{{Lat: 40, Lng: -100}, {Lat: 30, Lng: -90}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Point"`) {
		t.Error("gateway geojson missing points")
	}
	if err := WriteGatewaysGeoJSON(&buf, []string{"a"}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestLineChart(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{0.1, 0.5, 0.9, 1.0}
	var buf bytes.Buffer
	c := NewLineChart("CDF")
	c.LogX = true
	c.XLabel = "locations/cell"
	c.YLabel = "P"
	if err := c.Render(&buf, xs, ys); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CDF") || !strings.Contains(out, "*") {
		t.Errorf("chart output missing content:\n%s", out)
	}
	if !strings.Contains(out, "locations/cell") {
		t.Error("chart missing x label")
	}
	// Errors.
	if err := c.Render(&buf, xs, ys[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := c.Render(&buf, xs[:1], ys[:1]); err == nil {
		t.Error("single point should fail")
	}
}

func TestLineChartFlatSeries(t *testing.T) {
	// A constant series must not divide by zero.
	var buf bytes.Buffer
	c := NewLineChart("flat")
	if err := c.Render(&buf, []float64{1, 2, 3}, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
}
