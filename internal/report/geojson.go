package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
)

// GeoJSON export: demand cells as a FeatureCollection of hexagon
// polygons with per-cell properties, loadable directly into QGIS,
// kepler.gl or any web map — the visual counterpart of the paper's
// Figure 1 map.

type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string                 `json:"type"`
	Geometry   geoJSONGeometry        `json:"geometry"`
	Properties map[string]interface{} `json:"properties"`
}

type geoJSONGeometry struct {
	Type        string         `json:"type"`
	Coordinates [][][2]float64 `json:"coordinates"`
}

// WriteCellsGeoJSON writes demand cells as a GeoJSON FeatureCollection:
// one polygon per cell (its hexagonal boundary) with location count and
// county properties. maxCells caps output size (0 = no cap); cells are
// written densest-first so a capped export keeps the interesting head.
func WriteCellsGeoJSON(w io.Writer, cells []demand.Cell, maxCells int) error {
	ordered := make([]demand.Cell, len(cells))
	copy(ordered, cells)
	// Densest first so a capped export keeps the interesting head.
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Locations != ordered[j].Locations {
			return ordered[i].Locations > ordered[j].Locations
		}
		return ordered[i].ID < ordered[j].ID
	})
	if maxCells > 0 && len(ordered) > maxCells {
		ordered = ordered[:maxCells]
	}
	fc := geoJSONFeatureCollection{Type: "FeatureCollection"}
	for _, c := range ordered {
		boundary := c.ID.Boundary()
		if len(boundary) < 3 {
			continue
		}
		ring := make([][2]float64, 0, len(boundary)+1)
		for _, v := range boundary {
			ring = append(ring, [2]float64{round6(v.Lng), round6(v.Lat)})
		}
		ring = append(ring, ring[0]) // close the ring
		fc.Features = append(fc.Features, geoJSONFeature{
			Type: "Feature",
			Geometry: geoJSONGeometry{
				Type:        "Polygon",
				Coordinates: [][][2]float64{ring},
			},
			Properties: map[string]interface{}{
				"cell_id":     fmt.Sprintf("%d", uint64(c.ID)),
				"locations":   c.Locations,
				"county_fips": c.CountyFIPS,
				"demand_gbps": c.DemandGbps(),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// ReadCellsGeoJSONCount parses a GeoJSON export and returns the feature
// count and total locations — used by tests and sanity checks on
// exported files.
func ReadCellsGeoJSONCount(r io.Reader) (features, locations int, err error) {
	var fc geoJSONFeatureCollection
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return 0, 0, fmt.Errorf("report: parsing geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return 0, 0, fmt.Errorf("report: unexpected geojson type %q", fc.Type)
	}
	total := 0
	for _, f := range fc.Features {
		if n, ok := f.Properties["locations"].(float64); ok {
			total += int(n)
		}
	}
	return len(fc.Features), total, nil
}

// WriteGatewaysGeoJSON writes gateway points as a FeatureCollection.
func WriteGatewaysGeoJSON(w io.Writer, names []string, positions []geo.LatLng) error {
	if len(names) != len(positions) {
		return fmt.Errorf("report: %d names but %d positions", len(names), len(positions))
	}
	type pointGeom struct {
		Type        string     `json:"type"`
		Coordinates [2]float64 `json:"coordinates"`
	}
	type pointFeature struct {
		Type       string            `json:"type"`
		Geometry   pointGeom         `json:"geometry"`
		Properties map[string]string `json:"properties"`
	}
	out := struct {
		Type     string         `json:"type"`
		Features []pointFeature `json:"features"`
	}{Type: "FeatureCollection"}
	for i := range names {
		out.Features = append(out.Features, pointFeature{
			Type: "Feature",
			Geometry: pointGeom{
				Type:        "Point",
				Coordinates: [2]float64{round6(positions[i].Lng), round6(positions[i].Lat)},
			},
			Properties: map[string]string{"name": names[i]},
		})
	}
	return json.NewEncoder(w).Encode(out)
}

func round6(x float64) float64 {
	return float64(int64(x*1e6+copySign(0.5, x))) / 1e6
}

func copySign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}
