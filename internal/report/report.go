// Package report renders experiment outputs as aligned ASCII tables,
// markdown tables and CSV series — the formats the CLI and benchmark
// harness print so results can be compared line-by-line with the
// paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a header and renders them aligned.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	//lint:ignore floatcmp intentional exact integrality test choosing a display format; never feeds computation
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteTo renders the table as aligned ASCII.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.header)) + "\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping beyond
// what the simple numeric/label content needs).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteString("\n")
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Series writes (x, y) pairs as a two-column CSV, the exchange format
// for figure data.
func Series(w io.Writer, name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: series %q has %d xs but %d ys", name, len(xs), len(ys))
	}
	if _, err := fmt.Fprintf(w, "# series: %s\nx,y\n", name); err != nil {
		return err
	}
	for i := range xs {
		if _, err := fmt.Fprintf(w, "%g,%g\n", xs[i], ys[i]); err != nil {
			return err
		}
	}
	return nil
}

// Heatmap renders a matrix with row/column labels as an aligned grid,
// for Figure-2 style surfaces.
func Heatmap(w io.Writer, title string, rowLabels, colLabels []float64, values [][]float64) error {
	if len(values) != len(rowLabels) {
		return fmt.Errorf("report: heatmap %q: %d rows but %d labels", title, len(values), len(rowLabels))
	}
	t := NewTable(title, append([]string{""}, labels(colLabels)...)...)
	for i, row := range values {
		cells := make([]interface{}, 0, len(row)+1)
		cells = append(cells, fmt.Sprintf("%g", rowLabels[i]))
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}

func labels(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%g", x)
	}
	return out
}
