package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	tb.AddRow("gamma", "x")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Errorf("missing cells in %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every row's second column starts at the same
	// offset.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Errorf("short row %q", l)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(float64(42))
	tb.AddRow(3.14159)
	out := tb.String()
	if !strings.Contains(out, "42\n") {
		t.Errorf("integral float should render bare: %q", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float should render with 4 significant digits: %q", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow(1, 2)
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("markdown header missing: %q", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Errorf("markdown rule missing: %q", md)
	}
	if !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown row missing: %q", md)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow(1, 2)
	tb.AddRow("x", "y")
	csv := tb.CSV()
	want := "a,b\n1,2\nx,y\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "s", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# series: s") || !strings.Contains(out, "1,3") {
		t.Errorf("series output %q", out)
	}
	if err := Series(&buf, "bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestHeatmap(t *testing.T) {
	var buf bytes.Buffer
	err := Heatmap(&buf, "H", []float64{1, 2}, []float64{10, 20},
		[][]float64{{0.1, 0.2}, {0.3, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"H", "10", "20", "0.100", "0.400"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
	if err := Heatmap(&buf, "bad", []float64{1}, nil, [][]float64{{1}, {2}}); err == nil {
		t.Error("row mismatch should fail")
	}
}

func TestWriteTo(t *testing.T) {
	tb := NewTable("T", "a")
	tb.AddRow(1)
	var buf bytes.Buffer
	n, err := tb.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}
