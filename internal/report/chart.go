package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LineChart renders an (x, y) series as an ASCII chart for terminal
// output — enough to see a CDF's knee or a stepped curve's staircase
// without leaving the CLI.
type LineChart struct {
	Title         string
	Width, Height int
	XLabel        string
	YLabel        string
	// LogX plots x on a log10 axis (useful for long-tail CDFs).
	LogX bool
}

// NewLineChart returns a chart with sensible terminal dimensions.
func NewLineChart(title string) *LineChart {
	return &LineChart{Title: title, Width: 72, Height: 18}
}

// Render draws the series.
func (c *LineChart) Render(w io.Writer, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: chart series length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return fmt.Errorf("report: chart needs at least 2 points, got %d", len(xs))
	}
	width, height := c.Width, c.Height
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	tx := func(x float64) float64 {
		if c.LogX {
			if x <= 0 {
				x = 1e-12
			}
			return math.Log10(x)
		}
		return x
	}
	xlo, xhi := tx(xs[0]), tx(xs[0])
	ylo, yhi := ys[0], ys[0]
	for i := range xs {
		x, y := tx(xs[i]), ys[i]
		xlo, xhi = math.Min(xlo, x), math.Max(xhi, x)
		ylo, yhi = math.Min(ylo, y), math.Max(yhi, y)
	}
	//lint:ignore floatcmp degenerate axis-range guard for ASCII chart scaling; display-only
	if xhi == xlo {
		xhi = xlo + 1
	}
	//lint:ignore floatcmp degenerate axis-range guard for ASCII chart scaling; display-only
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		col := int((tx(xs[i]) - xlo) / (xhi - xlo) * float64(width-1))
		row := height - 1 - int((ys[i]-ylo)/(yhi-ylo)*float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = '*'
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", yhi)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ylo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	xloLabel := fmt.Sprintf("%.3g", xs[0])
	xhiLabel := fmt.Sprintf("%.3g", xs[len(xs)-1])
	pad := width - len(xloLabel) - len(xhiLabel)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", 8), xloLabel, strings.Repeat(" ", pad), xhiLabel)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), c.XLabel, c.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
