package sim

import (
	"context"

	"testing"

	"leodivide/internal/constellation"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/orbit"
	"leodivide/internal/usgeo"
)

// testCells places a modest demand field across CONUS latitudes.
func testCells() []demand.Cell {
	var cells []demand.Cell
	id := 1
	for lat := 28.0; lat <= 46; lat += 3 {
		for lng := -120.0; lng <= -75; lng += 5 {
			cells = append(cells, demand.Cell{
				ID:        hexgrid.CellID(id),
				Locations: 50 + id*7%800,
				Center:    geo.LatLng{Lat: lat, Lng: lng},
			})
			id++
		}
	}
	return cells
}

func smallShell(total, planes int) orbit.Walker {
	return orbit.Walker{
		AltitudeKm:     550,
		InclinationDeg: 53,
		Total:          total,
		Planes:         planes,
		Phasing:        1,
	}
}

func TestRunBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shell = smallShell(396, 18) // quarter-density shell for speed
	cfg.Epochs = 4
	res, err := Run(context.Background(), cfg, testCells())
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 4 {
		t.Errorf("Epochs = %d", res.Epochs)
	}
	checkFraction := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	checkFraction("MeanCoveredFraction", res.MeanCoveredFraction)
	checkFraction("MinCoveredFraction", res.MinCoveredFraction)
	checkFraction("MeanServedFraction", res.MeanServedFraction)
	checkFraction("MinServedFraction", res.MinServedFraction)
	if res.MinCoveredFraction > res.MeanCoveredFraction+1e-9 {
		t.Error("min covered exceeds mean")
	}
	if res.MeanServedFraction > res.MeanCoveredFraction+1e-9 {
		t.Error("served cells exceed covered cells")
	}
	if res.MeanVisibleSats <= 0 {
		t.Errorf("MeanVisibleSats = %v", res.MeanVisibleSats)
	}
}

func TestMoreSatellitesMoreCoverage(t *testing.T) {
	cells := testCells()
	small := DefaultConfig()
	small.Shell = smallShell(180, 12)
	small.Epochs = 3
	big := small
	big.Shell = smallShell(1080, 36)
	rs, err := Run(context.Background(), small, cells)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(context.Background(), big, cells)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MeanCoveredFraction < rs.MeanCoveredFraction {
		t.Errorf("coverage fell with more satellites: %v -> %v",
			rs.MeanCoveredFraction, rb.MeanCoveredFraction)
	}
	if rb.MeanVisibleSats <= rs.MeanVisibleSats {
		t.Errorf("visibility fell with more satellites: %v -> %v",
			rs.MeanVisibleSats, rb.MeanVisibleSats)
	}
}

func TestFullShellCoversConus(t *testing.T) {
	if testing.Short() {
		t.Skip("full shell propagation in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 4
	res, err := Run(context.Background(), cfg, testCells())
	if err != nil {
		t.Fatal(err)
	}
	// The real first shell keeps CONUS cells covered essentially
	// always at a 25° mask.
	if res.MinCoveredFraction < 0.95 {
		t.Errorf("CONUS coverage = %v, want ≥0.95", res.MinCoveredFraction)
	}
}

func TestValidation(t *testing.T) {
	cells := testCells()
	bad := DefaultConfig()
	bad.Epochs = 0
	if _, err := Run(context.Background(), bad, cells); err == nil {
		t.Error("zero epochs should fail")
	}
	bad = DefaultConfig()
	bad.StepSeconds = 0
	if _, err := Run(context.Background(), bad, cells); err == nil {
		t.Error("zero step should fail")
	}
	bad = DefaultConfig()
	bad.MinElevationDeg = 95
	if _, err := Run(context.Background(), bad, cells); err == nil {
		t.Error("bad elevation should fail")
	}
	bad = DefaultConfig()
	bad.Shell.Total = 7 // not divisible by planes
	if _, err := Run(context.Background(), bad, cells); err == nil {
		t.Error("bad shell should fail")
	}
	if _, err := Run(context.Background(), DefaultConfig(), nil); err == nil {
		t.Error("no cells should fail")
	}
}

func TestAllocatorPrefersFeasible(t *testing.T) {
	// One dense cell and many light cells sharing one satellite's
	// beams: the dense cell needs 4 dedicated beams, the light cells
	// one spread slot each.
	cfg := DefaultConfig()
	cfg.Shell = smallShell(396, 18)
	cfg.Epochs = 2
	cfg.Spread = 4
	var cells []demand.Cell
	cells = append(cells, demand.Cell{ID: 1, Locations: 3000, Center: geo.LatLng{Lat: 38, Lng: -100}})
	for i := 0; i < 30; i++ {
		cells = append(cells, demand.Cell{
			ID:        hexgrid.CellID(2 + i),
			Locations: 100,
			Center:    geo.LatLng{Lat: 38 + float64(i%5), Lng: -100 + float64(i/5)},
		})
	}
	res, err := Run(context.Background(), cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanServedFraction == 0 {
		t.Error("allocator served nothing")
	}
}

func TestGatewayRequirementFilters(t *testing.T) {
	cells := testCells()
	free := DefaultConfig()
	free.Shell = smallShell(396, 18)
	free.Epochs = 3
	gated := free
	gated.RequireGatewayVisibility = true
	for _, gw := range usgeo.GatewaySites() {
		gated.Gateways = append(gated.Gateways, gw.Pos)
	}
	rf, err := Run(context.Background(), free, cells)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Run(context.Background(), gated, cells)
	if err != nil {
		t.Fatal(err)
	}
	// Bent-pipe can only shrink coverage and service.
	if rg.MeanCoveredFraction > rf.MeanCoveredFraction+1e-9 {
		t.Errorf("gateway requirement increased coverage: %v vs %v",
			rg.MeanCoveredFraction, rf.MeanCoveredFraction)
	}
	if rg.MeanServedFraction > rf.MeanServedFraction+1e-9 {
		t.Errorf("gateway requirement increased service: %v vs %v",
			rg.MeanServedFraction, rf.MeanServedFraction)
	}
	// A dense US gateway network keeps most of CONUS connected even in
	// bent-pipe mode.
	if rg.MeanCoveredFraction < 0.5*rf.MeanCoveredFraction {
		t.Errorf("gateway network too weak: %v vs %v",
			rg.MeanCoveredFraction, rf.MeanCoveredFraction)
	}

	// With no gateways at all, bent-pipe service collapses to zero.
	none := gated
	none.Gateways = nil
	none.RequireGatewayVisibility = true
	rn, err := Run(context.Background(), none, cells)
	if err != nil {
		t.Fatal(err)
	}
	_ = rn // nil gateway list disables the filter by design
}

func TestFleetSimulation(t *testing.T) {
	cells := testCells()
	// A quarter-density two-shell mini fleet: a 53° shell plus a 70°
	// shell that adds high-latitude coverage.
	fleet := constellation.Fleet{
		Name: "mini",
		Shells: []orbit.Walker{
			{AltitudeKm: 550, InclinationDeg: 53, Total: 198, Planes: 18, Phasing: 1},
			{AltitudeKm: 570, InclinationDeg: 70, Total: 90, Planes: 9, Phasing: 1},
		},
	}
	cfg := DefaultConfig()
	cfg.Fleet = &fleet
	cfg.Epochs = 3
	res, err := Run(context.Background(), cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCoveredFraction <= 0 {
		t.Errorf("fleet covered nothing")
	}
	// The fleet must outperform its 53° shell alone.
	solo := DefaultConfig()
	solo.Shell = orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 198, Planes: 18, Phasing: 1}
	solo.Epochs = 3
	resSolo, err := Run(context.Background(), solo, cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanVisibleSats <= resSolo.MeanVisibleSats {
		t.Errorf("fleet visibility %v not above solo %v",
			res.MeanVisibleSats, resSolo.MeanVisibleSats)
	}
	// An invalid fleet fails validation.
	bad := constellation.Fleet{Name: "bad"}
	cfg.Fleet = &bad
	if _, err := Run(context.Background(), cfg, cells); err == nil {
		t.Error("invalid fleet should fail")
	}
}
