package sim

import (
	"context"
	"fmt"
	"sort"

	"leodivide/internal/demand"
)

// EpochStats is the measurement of one simulation snapshot.
type EpochStats struct {
	// TimeSec is the snapshot time after epoch.
	TimeSec float64
	// CoveredFraction is the fraction of demand cells with ≥1 visible
	// satellite.
	CoveredFraction float64
	// ServedFraction is the fraction of cells whose beam requirement
	// the allocator met.
	ServedFraction float64
	// MeanVisible is the mean visible-satellite count per cell.
	MeanVisible float64
	// BeamUtilization is the fraction of the constellation's beam
	// cell-slots consumed by the allocation.
	BeamUtilization float64
	// Handovers counts cells whose serving satellite changed since the
	// previous epoch (0 at the first epoch).
	Handovers int
}

// RunSeries runs the simulation and returns per-epoch measurements,
// including beam utilization and satellite handover counts — the
// dynamics a static sizing model cannot see.
func RunSeries(ctx context.Context, cfg Config, cells []demand.Cell) ([]EpochStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sim: no demand cells")
	}
	orbits, err := cfg.orbits()
	if err != nil {
		return nil, err
	}
	totalSlots := float64(len(orbits)) * float64(cfg.Beams.BeamsPerSatellite) * cfg.Spread

	out := make([]EpochStats, 0, cfg.Epochs)
	prevServer := make([]int, len(cells))
	for i := range prevServer {
		prevServer[i] = -1
	}
	for e := 0; e < cfg.Epochs; e++ {
		t := cfg.StepSeconds * float64(e)
		snap, err := snapshotWithMask(ctx, orbits, t, cfg.MinElevationDeg, cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		visible, err := visibleSats(ctx, snap, cells, cfg.MinElevationDeg, cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		visible = filterByGateway(cfg, snap, visible)
		assignment, used := allocateAssign(cfg, cells, visible, len(snap))

		covered, served, totalVisible, handovers := 0, 0, 0, 0
		for i := range cells {
			if len(visible[i]) > 0 {
				covered++
			}
			totalVisible += len(visible[i])
			if assignment[i] >= 0 {
				served++
				if e > 0 && prevServer[i] != assignment[i] {
					handovers++
				}
			}
		}
		copy(prevServer, assignment)
		out = append(out, EpochStats{
			TimeSec:         t,
			CoveredFraction: float64(covered) / float64(len(cells)),
			ServedFraction:  float64(served) / float64(len(cells)),
			MeanVisible:     float64(totalVisible) / float64(len(cells)),
			BeamUtilization: used / totalSlots,
			Handovers:       handovers,
		})
	}
	return out, nil
}

// allocateAssign is allocate with per-cell assignment bookkeeping: it
// returns, for each cell, the serving satellite index (-1 when unmet)
// and the total cell-slots consumed.
func allocateAssign(cfg Config, cells []demand.Cell, visible [][]int, nsats int) ([]int, float64) {
	slots := make([]float64, nsats)
	perSat := float64(cfg.Beams.BeamsPerSatellite) * cfg.Spread
	for i := range slots {
		slots[i] = perSat
	}
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sortByDemandDesc(order, cells)
	assignment := make([]int, len(cells))
	for i := range assignment {
		assignment[i] = -1
	}
	consumed := 0.0
	for _, ci := range order {
		b, ok := cfg.Beams.BeamsForCell(cells[ci].Locations, cfg.Oversub)
		need := float64(b) * cfg.Spread
		if b == 1 {
			need = 1
		}
		if !ok {
			need = float64(cfg.Beams.MaxBeamsPerCell) * cfg.Spread
		}
		best, bestFree := -1, 0.0
		for _, si := range visible[ci] {
			if slots[si] > bestFree {
				best, bestFree = si, slots[si]
			}
		}
		if best >= 0 && bestFree >= need {
			slots[best] -= need
			consumed += need
			if ok {
				assignment[ci] = best
			}
		}
	}
	return assignment, consumed
}

// LatitudeBand is coverage measured within one latitude band.
type LatitudeBand struct {
	LatLoDeg, LatHiDeg float64
	Cells              int
	CoveredFraction    float64
}

// CoverageByLatitude measures, at the first epoch, the fraction of
// cells with at least one visible satellite per latitude band — the
// view that makes the Alaska coverage cliff of an inclined shell
// visible.
func CoverageByLatitude(ctx context.Context, cfg Config, cells []demand.Cell, bandDeg float64) ([]LatitudeBand, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sim: no demand cells")
	}
	if bandDeg <= 0 {
		bandDeg = 5
	}
	orbits, err := cfg.orbits()
	if err != nil {
		return nil, err
	}
	snap, err := snapshotWithMask(ctx, orbits, 0, cfg.MinElevationDeg, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	visible, err := visibleSats(ctx, snap, cells, cfg.MinElevationDeg, cfg.Parallelism)
	if err != nil {
		return nil, err
	}

	type agg struct{ cells, covered int }
	bands := make(map[int]*agg)
	for i, c := range cells {
		key := int(c.Center.Lat / bandDeg)
		if c.Center.Lat < 0 {
			key--
		}
		a := bands[key]
		if a == nil {
			a = &agg{}
			bands[key] = a
		}
		a.cells++
		if len(visible[i]) > 0 {
			a.covered++
		}
	}
	keys := make([]int, 0, len(bands))
	for k := range bands {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]LatitudeBand, 0, len(keys))
	for _, k := range keys {
		a := bands[k]
		out = append(out, LatitudeBand{
			LatLoDeg:        float64(k) * bandDeg,
			LatHiDeg:        float64(k+1) * bandDeg,
			Cells:           a.cells,
			CoveredFraction: float64(a.covered) / float64(a.cells),
		})
	}
	return out, nil
}
