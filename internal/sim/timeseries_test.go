package sim

import (
	"context"

	"testing"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

func TestRunSeries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shell = smallShell(396, 18)
	cfg.Epochs = 5
	series, err := RunSeries(context.Background(), cfg, testCells())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("got %d epochs", len(series))
	}
	for i, e := range series {
		if e.CoveredFraction < 0 || e.CoveredFraction > 1 {
			t.Errorf("epoch %d: covered %v", i, e.CoveredFraction)
		}
		if e.ServedFraction > e.CoveredFraction+1e-9 {
			t.Errorf("epoch %d: served > covered", i)
		}
		if e.BeamUtilization < 0 || e.BeamUtilization > 1 {
			t.Errorf("epoch %d: utilization %v", i, e.BeamUtilization)
		}
		if i == 0 && e.Handovers != 0 {
			t.Errorf("first epoch has %d handovers", e.Handovers)
		}
		if e.TimeSec != cfg.StepSeconds*float64(i) {
			t.Errorf("epoch %d: time %v", i, e.TimeSec)
		}
	}
	// With 6-minute steps on a 96-minute orbit, serving satellites
	// change: some handovers must appear after the first epoch.
	total := 0
	for _, e := range series[1:] {
		total += e.Handovers
	}
	if total == 0 {
		t.Error("no handovers across 30 minutes of LEO motion")
	}
}

func TestRunSeriesConsistentWithRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shell = smallShell(396, 18)
	cfg.Epochs = 3
	series, err := RunSeries(context.Background(), cfg, testCells())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), cfg, testCells())
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, e := range series {
		mean += e.ServedFraction
	}
	mean /= float64(len(series))
	if diff := mean - res.MeanServedFraction; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("series mean served %v != Run mean %v", mean, res.MeanServedFraction)
	}
}

func TestRunSeriesValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 0
	if _, err := RunSeries(context.Background(), cfg, testCells()); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := RunSeries(context.Background(), DefaultConfig(), nil); err == nil {
		t.Error("no cells should fail")
	}
}

func TestCoverageByLatitude(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shell = smallShell(396, 18)
	// Cells from 28N to 70N: the 53° shell covers the south, not the
	// far north.
	var cells []demand.Cell
	id := 1
	for lat := 28.0; lat <= 70; lat += 2 {
		for lng := -150.0; lng <= -80; lng += 10 {
			cells = append(cells, demand.Cell{
				ID: hexgrid.CellID(id), Locations: 100,
				Center: geo.LatLng{Lat: lat, Lng: lng},
			})
			id++
		}
	}
	bands, err := CoverageByLatitude(context.Background(), cfg, cells, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) < 4 {
		t.Fatalf("got %d bands", len(bands))
	}
	totalCells := 0
	for i, b := range bands {
		totalCells += b.Cells
		if b.CoveredFraction < 0 || b.CoveredFraction > 1 {
			t.Errorf("band %d fraction %v", i, b.CoveredFraction)
		}
		if i > 0 && b.LatLoDeg <= bands[i-1].LatLoDeg {
			t.Error("bands not sorted")
		}
	}
	if totalCells != len(cells) {
		t.Errorf("bands cover %d cells, want %d", totalCells, len(cells))
	}
	// The 60-70N band must be far worse covered than the 30-40N band.
	var south, north float64 = -1, -1
	for _, b := range bands {
		if b.LatLoDeg == 30 {
			south = b.CoveredFraction
		}
		if b.LatLoDeg == 60 {
			north = b.CoveredFraction
		}
	}
	if south < 0 || north < 0 {
		t.Fatal("expected bands missing")
	}
	if north >= south {
		t.Errorf("no coverage cliff: 30N=%v 60N=%v", south, north)
	}
	if _, err := CoverageByLatitude(context.Background(), cfg, nil, 10); err == nil {
		t.Error("no cells should fail")
	}
}
