// Package sim is a time-stepped constellation simulator used to
// cross-check the analytic sizing model: it propagates a Walker shell,
// snapshots satellite positions at each epoch, assigns spot beams to
// demand cells greedily, and measures coverage and served fractions
// empirically. It plays the role Hypatia-class simulators play for the
// paper's analytical claims — an independent, mechanism-level check
// that the density profile and cells-per-satellite accounting hold up.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"leodivide/internal/beams"
	"leodivide/internal/constellation"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/orbit"
	"leodivide/internal/par"
)

// Config parameterizes a simulation run.
type Config struct {
	// Shell is the constellation to propagate.
	Shell orbit.Walker
	// Fleet, when non-nil, overrides Shell with a multi-shell fleet
	// (e.g. constellation.StarlinkGen1()).
	Fleet *constellation.Fleet
	// MinElevationDeg is the user-terminal elevation mask.
	MinElevationDeg float64
	// Epochs is how many snapshots to evaluate.
	Epochs int
	// StepSeconds is the time between snapshots.
	StepSeconds float64
	// Beams is the per-satellite beam budget.
	Beams beams.Config
	// Spread is the beamspread factor in force.
	Spread float64
	// Oversub is the per-cell oversubscription cap.
	Oversub float64
	// RequireGatewayVisibility enables bent-pipe mode: a satellite may
	// only serve user cells while it also has a gateway in view.
	RequireGatewayVisibility bool
	// Gateways are the ground-station sites for bent-pipe mode.
	Gateways []geo.LatLng
	// GatewayElevationDeg is the minimum elevation at the gateway
	// (gateway antennas track lower than user terminals).
	GatewayElevationDeg float64
	// Parallelism bounds the worker count for the per-epoch geometry
	// (satellite propagation, per-cell visibility). 0 means one worker
	// per CPU; 1 is the serial path. Results are identical at every
	// setting: each satellite/cell lands in an index-ordered slot and
	// the greedy beam allocator stays serial.
	Parallelism int
}

// DefaultConfig returns a one-orbit sweep of Starlink's principal shell
// with a 25° elevation mask.
func DefaultConfig() Config {
	return Config{
		Shell:           orbit.StarlinkShell1(),
		MinElevationDeg: 25,
		Epochs:          16,
		StepSeconds:     360,
		Beams:           beams.DefaultConfig(),
		Spread:          10,
		Oversub:         20,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Fleet != nil {
		if err := c.Fleet.Validate(); err != nil {
			return err
		}
	} else if err := c.Shell.Validate(); err != nil {
		return err
	}
	if err := c.Beams.Validate(); err != nil {
		return err
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("sim: epochs must be positive, got %d", c.Epochs)
	}
	if c.StepSeconds <= 0 {
		return fmt.Errorf("sim: step must be positive, got %v", c.StepSeconds)
	}
	if c.MinElevationDeg < 0 || c.MinElevationDeg >= 90 {
		return fmt.Errorf("sim: elevation mask %v out of range", c.MinElevationDeg)
	}
	return nil
}

// Result aggregates per-epoch measurements.
type Result struct {
	// Epochs is the number of snapshots evaluated.
	Epochs int
	// MeanVisibleSats is the mean number of satellites above the mask
	// per demand cell.
	MeanVisibleSats float64
	// MinCoveredFraction and MeanCoveredFraction report the fraction of
	// demand cells with at least one visible satellite, at the worst
	// epoch and on average.
	MinCoveredFraction, MeanCoveredFraction float64
	// MinServedFraction and MeanServedFraction report the fraction of
	// demand whose beam requirement was satisfied by the greedy
	// allocator.
	MinServedFraction, MeanServedFraction float64
}

// Run propagates the shell and evaluates coverage and beam allocation
// over the demand cells at each epoch.
func Run(ctx context.Context, cfg Config, cells []demand.Cell) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(cells) == 0 {
		return Result{}, fmt.Errorf("sim: no demand cells")
	}
	orbits, err := cfg.orbits()
	if err != nil {
		return Result{}, err
	}

	res := Result{Epochs: cfg.Epochs}
	res.MinCoveredFraction = 1
	res.MinServedFraction = 1
	sumVisible, sumCovered, sumServed := 0.0, 0.0, 0.0

	for e := 0; e < cfg.Epochs; e++ {
		t := cfg.StepSeconds * float64(e)
		snap, err := snapshotWithMask(ctx, orbits, t, cfg.MinElevationDeg, cfg.Parallelism)
		if err != nil {
			return Result{}, err
		}
		visible, err := visibleSats(ctx, snap, cells, cfg.MinElevationDeg, cfg.Parallelism)
		if err != nil {
			return Result{}, err
		}
		visible = filterByGateway(cfg, snap, visible)
		covered := 0
		totalVisible := 0
		for _, v := range visible {
			if len(v) > 0 {
				covered++
			}
			totalVisible += len(v)
		}
		assignment, _ := allocateAssign(cfg, cells, visible, len(snap))
		served := 0
		for _, a := range assignment {
			if a >= 0 {
				served++
			}
		}
		cf := float64(covered) / float64(len(cells))
		sf := float64(served) / float64(len(cells))
		sumCovered += cf
		sumServed += sf
		sumVisible += float64(totalVisible) / float64(len(cells))
		if cf < res.MinCoveredFraction {
			res.MinCoveredFraction = cf
		}
		if sf < res.MinServedFraction {
			res.MinServedFraction = sf
		}
	}
	res.MeanVisibleSats = sumVisible / float64(cfg.Epochs)
	res.MeanCoveredFraction = sumCovered / float64(cfg.Epochs)
	res.MeanServedFraction = sumServed / float64(cfg.Epochs)
	return res, nil
}

// satPos is one satellite's snapshot position.
type satPos struct {
	ecef     geo.Vec3
	sub      geo.LatLng
	covAngle float64 // Earth-central coverage half-angle, radians
}

// orbits expands the configured shell or fleet, tagging each orbit.
func (c Config) orbits() ([]orbit.CircularOrbit, error) {
	if c.Fleet != nil {
		return c.Fleet.Orbits()
	}
	return c.Shell.Orbits()
}

func snapshotWithMask(ctx context.Context, orbits []orbit.CircularOrbit, t, minElev float64, workers int) ([]satPos, error) {
	return par.Map(ctx, workers, len(orbits), func(i int) (satPos, error) {
		o := orbits[i]
		ecef := orbit.ECIToECEF(o.PositionECI(t), t)
		return satPos{
			ecef:     ecef,
			sub:      ecef.LatLng(),
			covAngle: coverageAngleFor(o.AltitudeKm, minElev),
		}, nil
	})
}

// visibleSats returns, per demand cell, the indices of satellites above
// the elevation mask, using a latitude/longitude bucket index to avoid
// the all-pairs scan. The bucket index is built once serially; the
// per-cell scans fan out over workers, each writing its own slot.
func visibleSats(ctx context.Context, sats []satPos, cells []demand.Cell, minElev float64, workers int) ([][]int, error) {
	// The bucket scan reach must cover the widest footprint present.
	covAngle := 0.0
	for _, s := range sats {
		if s.covAngle > covAngle {
			covAngle = s.covAngle
		}
	}
	const bucketDeg = 6.0
	latBuckets := int(math.Ceil(180 / bucketDeg))
	lngBuckets := int(math.Ceil(360 / bucketDeg))
	index := make(map[int][]int)
	key := func(lat, lng float64) int {
		bi := int((lat + 90) / bucketDeg)
		bj := int(math.Mod(lng+360, 360) / bucketDeg)
		if bi >= latBuckets {
			bi = latBuckets - 1
		}
		if bj >= lngBuckets {
			bj = lngBuckets - 1
		}
		return bi*lngBuckets + bj
	}
	for i, s := range sats {
		k := key(s.sub.Lat, s.sub.Lng)
		index[k] = append(index[k], i)
	}
	reachDeg := geo.Degrees(covAngle) + bucketDeg
	steps := int(math.Ceil(reachDeg / bucketDeg))
	out := make([][]int, len(cells))
	err := par.ForEach(ctx, workers, len(cells), func(ci int) error {
		c := cells[ci]
		var vis []int
		baseLat := c.Center.Lat
		for di := -steps; di <= steps; di++ {
			lat := baseLat + float64(di)*bucketDeg
			if lat < -90 || lat > 90 {
				continue
			}
			// Longitude buckets shrink with latitude; widen the scan.
			lngStep := bucketDeg
			cosLat := math.Cos(geo.Radians(lat))
			span := steps
			if cosLat > 0.05 {
				span = int(math.Ceil(reachDeg / (bucketDeg * cosLat)))
			} else {
				span = lngBuckets / 2
			}
			for dj := -span; dj <= span; dj++ {
				lng := c.Center.Lng + float64(dj)*lngStep
				for _, si := range index[key(lat, lng)] {
					if geo.AngularDistance(c.Center, sats[si].sub) <= sats[si].covAngle {
						if orbit.ElevationDeg(sats[si].ecef, c.Center) >= minElev {
							vis = append(vis, si)
						}
					}
				}
			}
		}
		sort.Ints(vis)
		vis = dedupe(vis)
		out[ci] = vis
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func dedupe(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// coverageAngleFor returns the Earth-central coverage half-angle of a
// satellite at the given altitude and elevation mask, in radians.
func coverageAngleFor(altitudeKm, minElevationDeg float64) float64 {
	return orbit.CoverageRadiusKm(altitudeKm, minElevationDeg) / geo.EarthRadiusKm
}

// sortByDemandDesc orders cell indices by descending location count.
func sortByDemandDesc(order []int, cells []demand.Cell) {
	sort.Slice(order, func(a, b int) bool {
		return cells[order[a]].Locations > cells[order[b]].Locations
	})
}

// filterByGateway drops satellites without a gateway in view from every
// cell's visibility list when bent-pipe mode is on.
func filterByGateway(cfg Config, sats []satPos, visible [][]int) [][]int {
	if !cfg.RequireGatewayVisibility || len(cfg.Gateways) == 0 {
		return visible
	}
	mask := cfg.GatewayElevationDeg
	if mask <= 0 {
		mask = 10
	}
	ok := make([]bool, len(sats))
	for i, s := range sats {
		for _, gw := range cfg.Gateways {
			if orbit.ElevationDeg(s.ecef, gw) >= mask {
				ok[i] = true
				break
			}
		}
	}
	out := make([][]int, len(visible))
	for ci, vis := range visible {
		kept := vis[:0]
		for _, si := range vis {
			if ok[si] {
				kept = append(kept, si)
			}
		}
		out[ci] = kept
	}
	return out
}
