// Package hexgrid implements a discrete global grid over a subdivided
// icosahedron. It stands in for the Uber H3 geospatial index that prior
// work identified as the basis of Starlink's service cells: cells are
// the Voronoi regions of a class-I geodesic lattice (hexagonal almost
// everywhere, with twelve pentagons at the icosahedron vertices), and
// the resolution table is chosen so average cell areas match H3's
// (resolution 5 ≈ 253 km², the cell scale at which Starlink plans
// service).
//
// The package provides exactly what a LEO capacity model needs from a
// geospatial index: stable 64-bit cell identifiers, point-to-cell
// assignment, cell centers, approximate equal areas, global cell counts,
// neighbor lookup and k-ring discs.
//
// Cells are identified by the lattice vertex at their center, written in
// barycentric coordinates (i, j, n-i-j) on one of the 20 icosahedron
// faces. Vertices shared between faces are canonicalized to the
// lexicographically smallest (face, i, j) representation, so every cell
// has exactly one valid CellID.
package hexgrid

import (
	"fmt"
	"math"
	"sort"

	"leodivide/internal/geo"
)

// Resolution selects the grid density. Higher resolutions have roughly
// 7x the cells of the previous one, mirroring H3's aperture.
type Resolution int

// Resolution bounds. Resolution 5 matches the H3 resolution-5 cell area
// used by Starlink's service cells.
const (
	MinResolution Resolution = 0
	MaxResolution Resolution = 6
)

// subdivisions[r] is the class-I subdivision frequency n at resolution r.
// Total cells = 10n²+2; values are chosen so the average cell area
// tracks H3's per-resolution areas.
var subdivisions = [MaxResolution + 1]int{3, 9, 24, 64, 170, 449, 1188}

// Valid reports whether r is a supported resolution.
func (r Resolution) Valid() bool { return r >= MinResolution && r <= MaxResolution }

// Subdivisions returns the geodesic subdivision frequency at r.
func (r Resolution) Subdivisions() int {
	if !r.Valid() {
		return 0
	}
	return subdivisions[r]
}

// NumCells returns the total number of cells covering the globe at r.
func (r Resolution) NumCells() int {
	n := r.Subdivisions()
	return 10*n*n + 2
}

// AvgCellAreaKm2 returns the mean cell area at r in km².
func (r Resolution) AvgCellAreaKm2() float64 {
	return geo.EarthAreaKm2 / float64(r.NumCells())
}

// CellID identifies one grid cell. The zero value is invalid.
//
// Layout: bits 60-57 resolution+1, bits 56-52 face, bits 51-26 i,
// bits 25-0 j. The +1 on resolution keeps the zero value invalid.
type CellID uint64

const (
	resShift  = 57
	faceShift = 52
	iShift    = 26
	coordMask = (1 << 26) - 1
)

func makeCell(r Resolution, face, i, j int) CellID {
	return CellID(uint64(r+1)<<resShift | uint64(face)<<faceShift |
		uint64(i)<<iShift | uint64(j))
}

// Resolution returns the cell's resolution.
func (c CellID) Resolution() Resolution { return Resolution(c>>resShift) - 1 }

// Face returns the icosahedron face (0-19) owning the cell's canonical
// representation.
func (c CellID) Face() int { return int(c>>faceShift) & 0x1f }

// Coords returns the canonical barycentric lattice coordinates (i, j).
func (c CellID) Coords() (i, j int) {
	return int(c>>iShift) & coordMask, int(c) & coordMask
}

// Valid reports whether c is a well-formed, canonical cell identifier.
func (c CellID) Valid() bool {
	r := c.Resolution()
	if !r.Valid() {
		return false
	}
	f := c.Face()
	if f >= 20 {
		return false
	}
	i, j := c.Coords()
	n := r.Subdivisions()
	if i < 0 || j < 0 || i+j > n {
		return false
	}
	return canonicalize(r, f, i, j) == c
}

// String renders the cell as res/face/i/j.
func (c CellID) String() string {
	i, j := c.Coords()
	return fmt.Sprintf("cell(r%d f%d %d,%d)", c.Resolution(), c.Face(), i, j)
}

// icosahedron geometry, built once at init.
var (
	icoVerts   [12]geo.Vec3
	icoFaces   [20][3]int // vertex indices, CCW from outside
	faceCorner [20][3]geo.Vec3
	faceCenter [20]geo.Vec3
	faceInv    [20][9]float64 // row-major inverse of [A B C] column matrix
	edgeAngle  float64        // central angle of an icosahedron edge
)

func init() {
	buildIcosahedron()
}

func buildIcosahedron() {
	phi := (1 + math.Sqrt(5)) / 2
	raw := [][3]float64{
		{-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
		{0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
		{phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
	}
	for i, v := range raw {
		icoVerts[i] = geo.Vec3{X: v[0], Y: v[1], Z: v[2]}.Unit()
	}
	// Find all faces: vertex triples at mutual edge distance.
	edge := icoVerts[0].AngleTo(icoVerts[1]) // shortest vertex spacing
	edgeAngle = edge
	var faces [][3]int
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			if math.Abs(icoVerts[a].AngleTo(icoVerts[b])-edge) > 1e-9 {
				continue
			}
			for c := b + 1; c < 12; c++ {
				if math.Abs(icoVerts[a].AngleTo(icoVerts[c])-edge) > 1e-9 ||
					math.Abs(icoVerts[b].AngleTo(icoVerts[c])-edge) > 1e-9 {
					continue
				}
				faces = append(faces, [3]int{a, b, c})
			}
		}
	}
	if len(faces) != 20 {
		panic(fmt.Sprintf("hexgrid: icosahedron construction found %d faces", len(faces)))
	}
	sort.Slice(faces, func(x, y int) bool {
		fx, fy := faces[x], faces[y]
		for k := 0; k < 3; k++ {
			if fx[k] != fy[k] {
				return fx[k] < fy[k]
			}
		}
		return false
	})
	for f, tri := range faces {
		a, b, c := icoVerts[tri[0]], icoVerts[tri[1]], icoVerts[tri[2]]
		// Orient CCW viewed from outside: normal aligned with centroid.
		if b.Sub(a).Cross(c.Sub(a)).Dot(a.Add(b).Add(c)) < 0 {
			tri[1], tri[2] = tri[2], tri[1]
			b, c = c, b
		}
		icoFaces[f] = tri
		faceCorner[f] = [3]geo.Vec3{a, b, c}
		faceCenter[f] = a.Add(b).Add(c).Unit()
		faceInv[f] = invert3(a, b, c)
	}
}

// invert3 inverts the 3x3 matrix whose columns are a, b, c.
func invert3(a, b, c geo.Vec3) [9]float64 {
	det := a.Dot(b.Cross(c))
	r0 := b.Cross(c).Scale(1 / det)
	r1 := c.Cross(a).Scale(1 / det)
	r2 := a.Cross(b).Scale(1 / det)
	return [9]float64{r0.X, r0.Y, r0.Z, r1.X, r1.Y, r1.Z, r2.X, r2.Y, r2.Z}
}

// barycentric returns the gnomonic barycentric coordinates of unit
// vector v on face f, normalized to sum to 1. Coordinates are all
// nonnegative iff v lies on (the spherical projection of) face f.
func barycentric(f int, v geo.Vec3) (u0, u1, u2 float64) {
	m := &faceInv[f]
	x := m[0]*v.X + m[1]*v.Y + m[2]*v.Z
	y := m[3]*v.X + m[4]*v.Y + m[5]*v.Z
	z := m[6]*v.X + m[7]*v.Y + m[8]*v.Z
	s := x + y + z
	return x / s, y / s, z / s
}

// vertexVec returns the unit vector of lattice vertex (i, j) on face f
// at subdivision n.
func vertexVec(f, n, i, j int) geo.Vec3 {
	k := n - i - j
	c := faceCorner[f]
	return c[0].Scale(float64(i)).
		Add(c[1].Scale(float64(j))).
		Add(c[2].Scale(float64(k))).Unit()
}

// canonicalize returns the canonical CellID for the lattice vertex
// (face, i, j): the lexicographically smallest (face, i, j) among all
// faces on which the vertex lies.
func canonicalize(r Resolution, face, i, j int) CellID {
	n := r.Subdivisions()
	k := n - i - j
	if i > 0 && j > 0 && k > 0 {
		// Interior vertices belong to exactly one face.
		return makeCell(r, face, i, j)
	}
	v := vertexVec(face, n, i, j)
	best := makeCell(r, face, i, j)
	for f := 0; f < face; f++ {
		u0, u1, u2 := barycentric(f, v)
		if u0 < -1e-9 || u1 < -1e-9 || u2 < -1e-9 {
			continue
		}
		fi := u0 * float64(n)
		fj := u1 * float64(n)
		ri, rj := math.Round(fi), math.Round(fj)
		if math.Abs(fi-ri) > 1e-5 || math.Abs(fj-rj) > 1e-5 {
			continue
		}
		ii, jj := int(ri), int(rj)
		if ii < 0 || jj < 0 || ii+jj > n {
			continue
		}
		// Confirm it is genuinely the same vertex.
		if vertexVec(f, n, ii, jj).AngleTo(v) > 1e-9 {
			continue
		}
		cand := makeCell(r, f, ii, jj)
		if cand < best {
			best = cand
		}
		break // faces scanned in ascending order; first hit is smallest
	}
	return best
}

// LatLng returns the cell's center coordinate.
func (c CellID) LatLng() geo.LatLng {
	i, j := c.Coords()
	return vertexVec(c.Face(), c.Resolution().Subdivisions(), i, j).LatLng()
}

// LatLngToCell returns the cell containing p at resolution r: the cell
// whose center vertex is nearest to p on the sphere.
func LatLngToCell(p geo.LatLng, r Resolution) CellID {
	if !r.Valid() {
		return 0
	}
	v := p.Vector()
	n := r.Subdivisions()

	// Rank faces by closeness; candidates can only live on the top few.
	type faceDot struct {
		f   int
		dot float64
	}
	var fd [20]faceDot
	for f := 0; f < 20; f++ {
		fd[f] = faceDot{f, faceCenter[f].Dot(v)}
	}
	sort.Slice(fd[:], func(a, b int) bool { return fd[a].dot > fd[b].dot })

	bestDist := math.Inf(1)
	bestFace, bestI, bestJ := -1, 0, 0
	for rank := 0; rank < 4; rank++ {
		f := fd[rank].f
		u0, u1, _ := barycentric(f, v)
		fi, fj := u0*float64(n), u1*float64(n)
		if fi < -1.5 || fj < -1.5 || fi+fj > float64(n)+1.5 {
			continue // p is far outside this face
		}
		i0, j0 := int(math.Floor(fi)), int(math.Floor(fj))
		for di := 0; di <= 1; di++ {
			for dj := 0; dj <= 1; dj++ {
				i, j := i0+di, j0+dj
				if i < 0 || j < 0 || i+j > n {
					continue
				}
				d := vertexVec(f, n, i, j).AngleTo(v)
				if d < bestDist {
					bestDist, bestFace, bestI, bestJ = d, f, i, j
				}
			}
		}
	}
	if bestFace < 0 {
		// Should not happen: every point lies on some face. Fall back to
		// the closest face's nearest corner.
		f := fd[0].f
		bestFace, bestI, bestJ = f, 0, 0
	}
	return canonicalize(r, bestFace, bestI, bestJ)
}

// latticeSpacing returns the approximate angular distance between
// adjacent cell centers near cell c, in radians.
func (c CellID) latticeSpacing() float64 {
	n := c.Resolution().Subdivisions()
	return edgeAngle / float64(n)
}

// Neighbors returns the cells adjacent to c (6 for hexagons, 5 at the
// twelve pentagon cells). Adjacency is resolved geometrically by probing
// around the cell center, which is exact away from face boundaries and
// conservative across them.
func (c CellID) Neighbors() []CellID {
	center := c.LatLng()
	delta := c.latticeSpacing()
	type cand struct {
		id CellID
		d  float64
	}
	seen := map[CellID]bool{c: true}
	var cands []cand
	for _, radius := range []float64{0.8, 1.0, 1.2} {
		for step := 0; step < 24; step++ {
			bearing := float64(step) * 15
			probe := geo.Destination(center, bearing, radius*delta*geo.EarthRadiusKm)
			id := LatLngToCell(probe, c.Resolution())
			if seen[id] {
				continue
			}
			seen[id] = true
			if d := geo.AngularDistance(center, id.LatLng()); d < 1.6*delta {
				cands = append(cands, cand{id: id, d: d})
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// Adjacent cells sit within ~±20% of the local lattice spacing;
	// the second ring starts near sqrt(3)x. Filter relative to the
	// closest candidate so distortion near pentagons cannot admit
	// second-ring cells.
	minD := cands[0].d
	for _, cd := range cands {
		if cd.d < minD {
			minD = cd.d
		}
	}
	var out []CellID
	for _, cd := range cands {
		if cd.d <= 1.35*minD {
			out = append(out, cd.id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Ring returns all cells within k adjacency steps of c, including c
// itself. Ring(0) is {c}.
func (c CellID) Ring(k int) []CellID {
	seen := map[CellID]bool{c: true}
	frontier := []CellID{c}
	for step := 0; step < k; step++ {
		var next []CellID
		for _, cell := range frontier {
			for _, nb := range cell.Neighbors() {
				if !seen[nb] {
					seen[nb] = true
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	out := make([]CellID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// ForEachCell calls fn once for every cell on the globe at resolution r,
// in canonical ID order per face. It visits each cell exactly once.
// Enumeration is O(total cells) and intended for the coarse resolutions;
// at resolution 5 the globe has about 2 million cells.
func ForEachCell(r Resolution, fn func(CellID)) {
	for f := 0; f < 20; f++ {
		ForEachCellOnFace(r, f, fn)
	}
}

// ForEachCellOnFace enumerates the cells whose canonical representation
// lives on one icosahedron face (0..19), in ascending (i, j) order. The
// 20 face shards are disjoint and together cover the globe, so callers
// can enumerate faces concurrently and concatenate the shards in face
// order to reproduce ForEachCell's exact visit order.
func ForEachCellOnFace(r Resolution, face int, fn func(CellID)) {
	n := r.Subdivisions()
	for i := 0; i <= n; i++ {
		for j := 0; i+j <= n; j++ {
			id := canonicalize(r, face, i, j)
			if id.Face() == face {
				fi, fj := id.Coords()
				if fi == i && fj == j {
					fn(id)
				}
			}
		}
	}
}

// CountCells enumerates the globe at r and returns the number of
// distinct cells; used to validate NumCells.
func CountCells(r Resolution) int {
	count := 0
	ForEachCell(r, func(CellID) { count++ })
	return count
}

// ParentAt returns the cell at a coarser resolution containing this
// cell's center. Unlike H3's exact containment hierarchy, parentage is
// geometric (nearest coarse-cell center), which is what the model's
// multi-resolution rollups need.
func (c CellID) ParentAt(r Resolution) (CellID, error) {
	if !r.Valid() {
		return 0, fmt.Errorf("hexgrid: invalid resolution %d", r)
	}
	if r > c.Resolution() {
		return 0, fmt.Errorf("hexgrid: resolution %d finer than cell's %d", r, c.Resolution())
	}
	return LatLngToCell(c.LatLng(), r), nil
}

// ChildrenAt returns the cells at a finer resolution whose centers fall
// within this cell's Voronoi region (geometric children; roughly 7^Δres
// of them).
func (c CellID) ChildrenAt(r Resolution) ([]CellID, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("hexgrid: invalid resolution %d", r)
	}
	if r < c.Resolution() {
		return nil, fmt.Errorf("hexgrid: resolution %d coarser than cell's %d", r, c.Resolution())
	}
	if r == c.Resolution() {
		return []CellID{c}, nil
	}
	// Candidates: fine cells within ~1.1 coarse Voronoi radii of the
	// center, filtered by actually mapping back to this cell.
	radiusKm := geo.EarthRadiusKm * c.latticeSpacing() * 0.8
	var out []CellID
	for _, fine := range DiscFill(c.LatLng(), radiusKm, r) {
		parent := LatLngToCell(fine.LatLng(), c.Resolution())
		if parent == c {
			out = append(out, fine)
		}
	}
	return out, nil
}

// Token renders the cell as a compact, sortable hex string (like H3's
// string form), suitable for CSV columns and map keys in other systems.
func (c CellID) Token() string {
	return fmt.Sprintf("%016x", uint64(c))
}

// FromToken parses a Token back into a CellID, validating it.
func FromToken(s string) (CellID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("hexgrid: token %q must be 16 hex digits", s)
	}
	var v uint64
	for _, r := range s {
		var d uint64
		switch {
		case r >= '0' && r <= '9':
			d = uint64(r - '0')
		case r >= 'a' && r <= 'f':
			d = uint64(r-'a') + 10
		default:
			return 0, fmt.Errorf("hexgrid: token %q has invalid digit %q", s, r)
		}
		v = v<<4 | d
	}
	id := CellID(v)
	if !id.Valid() {
		return 0, fmt.Errorf("hexgrid: token %q is not a canonical cell", s)
	}
	return id, nil
}
