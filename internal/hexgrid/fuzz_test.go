package hexgrid

import (
	"testing"

	"leodivide/internal/geo"
)

// FuzzFromToken: arbitrary strings must never panic and anything that
// parses must round-trip.
func FuzzFromToken(f *testing.F) {
	f.Add("0000000000000000")
	f.Add(LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 5).Token())
	f.Add("zz")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := FromToken(s)
		if err != nil {
			return
		}
		if !id.Valid() {
			t.Fatalf("FromToken(%q) returned invalid cell %v", s, id)
		}
		if id.Token() != s {
			t.Fatalf("token round trip %q -> %v -> %q", s, id, id.Token())
		}
	})
}

// FuzzLatLngToCell: any finite coordinate must map to a valid cell
// whose center round-trips.
func FuzzLatLngToCell(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(89.9, 179.9)
	f.Add(-89.9, -179.9)
	f.Add(35.5, -106.3)
	f.Fuzz(func(t *testing.T, lat, lng float64) {
		if lat < -90 || lat > 90 || lng < -180 || lng > 180 {
			return
		}
		if lat != lat || lng != lng { // NaN
			return
		}
		id := LatLngToCell(geo.LatLng{Lat: lat, Lng: lng}, 3)
		if !id.Valid() {
			t.Fatalf("LatLngToCell(%v, %v) invalid", lat, lng)
		}
		if back := LatLngToCell(id.LatLng(), 3); back != id {
			t.Fatalf("center round trip failed for (%v, %v): %v -> %v", lat, lng, id, back)
		}
	})
}
