package hexgrid

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/geo"
)

func TestResolutionTable(t *testing.T) {
	for r := MinResolution; r <= MaxResolution; r++ {
		n := r.Subdivisions()
		if n <= 0 {
			t.Fatalf("res %d: subdivisions %d", r, n)
		}
		if got, want := r.NumCells(), 10*n*n+2; got != want {
			t.Errorf("res %d: NumCells = %d, want %d", r, got, want)
		}
		if r > MinResolution && r.NumCells() <= (r-1).NumCells() {
			t.Errorf("res %d: cell count not increasing", r)
		}
	}
	if Resolution(-1).Valid() || Resolution(7).Valid() {
		t.Error("out-of-range resolutions reported valid")
	}
	if Resolution(-1).Subdivisions() != 0 {
		t.Error("invalid resolution should have 0 subdivisions")
	}
}

func TestResolution5MatchesH3Area(t *testing.T) {
	// The paper's Starlink cells are H3 resolution 5 (~252.9 km² each).
	got := Resolution(5).AvgCellAreaKm2()
	if math.Abs(got-252.9)/252.9 > 0.01 {
		t.Errorf("res-5 avg area = %.1f km², want ≈252.9", got)
	}
}

func TestEnumerationMatchesFormula(t *testing.T) {
	for r := MinResolution; r <= 2; r++ {
		if got, want := CountCells(r), r.NumCells(); got != want {
			t.Errorf("res %d: enumerated %d cells, want %d", r, got, want)
		}
	}
}

func TestEnumerationUnique(t *testing.T) {
	const r = Resolution(2)
	seen := make(map[CellID]bool)
	ForEachCell(r, func(id CellID) {
		if seen[id] {
			t.Errorf("cell %v enumerated twice", id)
		}
		seen[id] = true
		if !id.Valid() {
			t.Errorf("enumerated invalid cell %v", id)
		}
	})
}

func TestLatLngToCellRoundTrip(t *testing.T) {
	// A cell's center must map back to the same cell.
	for _, r := range []Resolution{0, 2, 4, 5} {
		probe := []geo.LatLng{
			{Lat: 0, Lng: 0}, {Lat: 35.5, Lng: -106.3}, {Lat: -45, Lng: 170},
			{Lat: 89, Lng: 10}, {Lat: -89, Lng: -10}, {Lat: 20.9, Lng: -156},
		}
		for _, p := range probe {
			id := LatLngToCell(p, r)
			if !id.Valid() {
				t.Fatalf("res %d: LatLngToCell(%v) invalid: %v", r, p, id)
			}
			id2 := LatLngToCell(id.LatLng(), r)
			if id2 != id {
				t.Errorf("res %d: center of %v maps to %v", r, id, id2)
			}
		}
	}
}

// Property: every point maps to a cell whose center is within the
// maximum Voronoi radius (≤ ~0.9 lattice spacings with distortion).
func TestNearestCenterProperty(t *testing.T) {
	const r = Resolution(3)
	spacing := edgeAngle / float64(r.Subdivisions())
	f := func(a, b uint16) bool {
		p := geo.LatLng{
			Lat: float64(a)/65535*179 - 89.5,
			Lng: float64(b)/65535*360 - 180,
		}
		id := LatLngToCell(p, r)
		if !id.Valid() {
			return false
		}
		return geo.AngularDistance(p, id.LatLng()) <= 0.9*spacing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: round trip holds for random points at resolution 5 (the
// production resolution).
func TestRoundTripPropertyRes5(t *testing.T) {
	const r = Resolution(5)
	f := func(a, b uint16) bool {
		p := geo.LatLng{
			Lat: float64(a)/65535*179 - 89.5,
			Lng: float64(b)/65535*360 - 180,
		}
		id := LatLngToCell(p, r)
		return id.Valid() && LatLngToCell(id.LatLng(), r) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCellIDAccessors(t *testing.T) {
	p := geo.LatLng{Lat: 40, Lng: -100}
	id := LatLngToCell(p, 5)
	if got := id.Resolution(); got != 5 {
		t.Errorf("Resolution = %d, want 5", got)
	}
	if f := id.Face(); f < 0 || f >= 20 {
		t.Errorf("Face = %d out of range", f)
	}
	i, j := id.Coords()
	n := Resolution(5).Subdivisions()
	if i < 0 || j < 0 || i+j > n {
		t.Errorf("Coords = (%d, %d) out of range for n=%d", i, j, n)
	}
	if id.String() == "" {
		t.Error("String empty")
	}
}

func TestInvalidCellIDs(t *testing.T) {
	if CellID(0).Valid() {
		t.Error("zero CellID reported valid")
	}
	if LatLngToCell(geo.LatLng{Lat: 0, Lng: 0}, Resolution(-3)) != 0 {
		t.Error("invalid resolution should return zero cell")
	}
	// A non-canonical representation must be invalid.
	bogus := makeCell(5, 19, 0, 0) // face-19 corner vertex is owned by a lower face
	if bogus.Valid() {
		t.Error("non-canonical corner cell reported valid")
	}
}

func TestNeighbors(t *testing.T) {
	for _, p := range []geo.LatLng{
		{Lat: 40, Lng: -100}, {Lat: 0, Lng: 0}, {Lat: -30, Lng: 140},
	} {
		id := LatLngToCell(p, 3)
		nbs := id.Neighbors()
		if len(nbs) < 5 || len(nbs) > 8 {
			t.Errorf("cell %v has %d neighbors", id, len(nbs))
		}
		for _, nb := range nbs {
			if nb == id {
				t.Errorf("cell %v lists itself as neighbor", id)
			}
			if !nb.Valid() {
				t.Errorf("neighbor %v invalid", nb)
			}
			d := geo.AngularDistance(id.LatLng(), nb.LatLng())
			if d > 1.6*id.latticeSpacing() {
				t.Errorf("neighbor %v too far: %v rad", nb, d)
			}
		}
	}
}

func TestNeighborSymmetryMostly(t *testing.T) {
	// Geometric neighbor probing is exact away from face boundaries;
	// require at least 90% symmetry over a sample.
	total, symmetric := 0, 0
	for lat := -60.0; lat <= 60; lat += 21 {
		for lng := -170.0; lng <= 170; lng += 23 {
			id := LatLngToCell(geo.LatLng{Lat: lat, Lng: lng}, 2)
			for _, nb := range id.Neighbors() {
				total++
				for _, back := range nb.Neighbors() {
					if back == id {
						symmetric++
						break
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no neighbor pairs sampled")
	}
	if frac := float64(symmetric) / float64(total); frac < 0.9 {
		t.Errorf("neighbor symmetry %.2f < 0.9 (%d/%d)", frac, symmetric, total)
	}
}

func TestRing(t *testing.T) {
	id := LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 3)
	r0 := id.Ring(0)
	if len(r0) != 1 || r0[0] != id {
		t.Errorf("Ring(0) = %v", r0)
	}
	r1 := id.Ring(1)
	r2 := id.Ring(2)
	if len(r1) < 6 || len(r1) > 9 {
		t.Errorf("Ring(1) has %d cells", len(r1))
	}
	if len(r2) <= len(r1) {
		t.Errorf("Ring(2)=%d not larger than Ring(1)=%d", len(r2), len(r1))
	}
	// Ring(1) must include the center.
	found := false
	for _, c := range r1 {
		if c == id {
			found = true
		}
	}
	if !found {
		t.Error("Ring(1) missing center cell")
	}
}

func TestPentagonCount(t *testing.T) {
	// Exactly 12 cells (the icosahedron vertices) should have 5
	// neighbors at any resolution; spot-check at res 1 by counting
	// degree-5 cells.
	pentagons := 0
	ForEachCell(1, func(id CellID) {
		if len(id.Neighbors()) == 5 {
			pentagons++
		}
	})
	if pentagons != 12 {
		t.Errorf("found %d pentagon cells, want 12", pentagons)
	}
}

func TestDeterminism(t *testing.T) {
	p := geo.LatLng{Lat: 33.33, Lng: -97.77}
	a := LatLngToCell(p, 5)
	b := LatLngToCell(p, 5)
	if a != b {
		t.Errorf("LatLngToCell not deterministic: %v vs %v", a, b)
	}
}

func BenchmarkLatLngToCellRes5(b *testing.B) {
	pts := make([]geo.LatLng, 256)
	for i := range pts {
		pts[i] = geo.LatLng{
			Lat: float64(i%160) - 80,
			Lng: float64(i*7%360) - 180,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LatLngToCell(pts[i%len(pts)], 5)
	}
}

func BenchmarkCellToLatLng(b *testing.B) {
	id := LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = id.LatLng()
	}
}

func TestTokenRoundTrip(t *testing.T) {
	id := LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 5)
	tok := id.Token()
	if len(tok) != 16 {
		t.Fatalf("token %q not 16 digits", tok)
	}
	back, err := FromToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Errorf("round trip %v -> %q -> %v", id, tok, back)
	}
	// Errors.
	if _, err := FromToken("short"); err == nil {
		t.Error("short token should fail")
	}
	if _, err := FromToken("zzzzzzzzzzzzzzzz"); err == nil {
		t.Error("non-hex token should fail")
	}
	if _, err := FromToken("0000000000000000"); err == nil {
		t.Error("invalid cell token should fail")
	}
}

// Property: tokens round-trip and sort like their cells.
func TestTokenOrderProperty(t *testing.T) {
	f := func(a, b uint16, c, d uint16) bool {
		id1 := LatLngToCell(geo.LatLng{
			Lat: float64(a)/65535*179 - 89.5, Lng: float64(b)/65535*360 - 180}, 3)
		id2 := LatLngToCell(geo.LatLng{
			Lat: float64(c)/65535*179 - 89.5, Lng: float64(d)/65535*360 - 180}, 3)
		t1, t2 := id1.Token(), id2.Token()
		b1, err1 := FromToken(t1)
		b2, err2 := FromToken(t2)
		if err1 != nil || err2 != nil || b1 != id1 || b2 != id2 {
			return false
		}
		return (id1 < id2) == (t1 < t2) || id1 == id2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
