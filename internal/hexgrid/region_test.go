package hexgrid

import (
	"math"
	"testing"

	"leodivide/internal/geo"
)

func TestBoundary(t *testing.T) {
	id := LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 3)
	b := id.Boundary()
	if len(b) != 6 {
		t.Fatalf("hexagon boundary has %d vertices", len(b))
	}
	center := id.LatLng()
	spacing := id.latticeSpacing()
	for _, v := range b {
		d := geo.AngularDistance(center, v)
		// Voronoi vertices sit near one circumradius (~0.577 spacings)
		// from the center.
		if d < 0.3*spacing || d > 0.9*spacing {
			t.Errorf("boundary vertex at %.3f spacings", d/spacing)
		}
	}
	// The center must be inside its own boundary polygon.
	if !(geo.Polygon{Vertices: b}).Contains(center) {
		t.Error("cell center outside its boundary")
	}
}

func TestBoundaryPentagon(t *testing.T) {
	// Find a pentagon cell at res 1 and check 5 vertices.
	var pent CellID
	ForEachCell(1, func(id CellID) {
		if pent == 0 && len(id.Neighbors()) == 5 {
			pent = id
		}
	})
	if pent == 0 {
		t.Fatal("no pentagon found")
	}
	if got := len(pent.Boundary()); got != 5 {
		t.Errorf("pentagon boundary has %d vertices", got)
	}
}

func TestCellAreasSumToSphere(t *testing.T) {
	// At res 1 the polygon areas must tile the sphere (within the
	// centroid-vertex approximation).
	total := 0.0
	ForEachCell(1, func(id CellID) {
		total += id.AreaKm2()
	})
	if math.Abs(total-geo.EarthAreaKm2)/geo.EarthAreaKm2 > 0.05 {
		t.Errorf("cell areas sum to %v, want ≈%v", total, geo.EarthAreaKm2)
	}
}

func TestCellAreaNearAverage(t *testing.T) {
	id := LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 4)
	avg := Resolution(4).AvgCellAreaKm2()
	got := id.AreaKm2()
	if got < 0.6*avg || got > 1.5*avg {
		t.Errorf("cell area %v far from average %v", got, avg)
	}
}

func TestRectFill(t *testing.T) {
	// Colorado's frame: ~4.0x7.1 degrees at res 4 (~1770 km² cells).
	cells := RectFill(37, 41, -109, -102, 4)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	// Expected count ≈ area / avg cell area.
	area := geo.RectArea(37, 41, -109, -102)
	want := area / Resolution(4).AvgCellAreaKm2()
	if math.Abs(float64(len(cells))-want)/want > 0.2 {
		t.Errorf("RectFill returned %d cells, want ≈%.0f", len(cells), want)
	}
	seen := map[CellID]bool{}
	for i, id := range cells {
		if seen[id] {
			t.Fatal("duplicate cell")
		}
		seen[id] = true
		if i > 0 && cells[i] < cells[i-1] {
			t.Fatal("not sorted")
		}
		c := id.LatLng()
		if c.Lat < 37 || c.Lat > 41 || c.Lng < -109 || c.Lng > -102 {
			t.Fatalf("cell center %v outside rect", c)
		}
	}
	if got := RectFill(41, 37, -109, -102, 4); got != nil {
		t.Error("inverted rect should return nil")
	}
	if got := RectFill(37, 41, -109, -102, Resolution(-1)); got != nil {
		t.Error("invalid resolution should return nil")
	}
}

func TestDiscFill(t *testing.T) {
	center := geo.LatLng{Lat: 38, Lng: -100}
	cells := DiscFill(center, 400, 4)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	discArea := math.Pi * 400 * 400
	want := discArea / Resolution(4).AvgCellAreaKm2()
	if math.Abs(float64(len(cells))-want)/want > 0.25 {
		t.Errorf("DiscFill returned %d cells, want ≈%.0f", len(cells), want)
	}
	for _, id := range cells {
		if geo.DistanceKm(center, id.LatLng()) > 400 {
			t.Fatalf("cell %v outside disc", id)
		}
	}
	// A disc smaller than one cell still returns the center cell.
	tiny := DiscFill(center, 1, 4)
	if len(tiny) > 1 {
		t.Errorf("tiny disc returned %d cells", len(tiny))
	}
	if DiscFill(center, -1, 4) != nil {
		t.Error("negative radius should return nil")
	}
}

func TestDiscFillGrowsWithRadius(t *testing.T) {
	center := geo.LatLng{Lat: 38, Lng: -100}
	small := DiscFill(center, 200, 4)
	big := DiscFill(center, 500, 4)
	if len(big) <= len(small) {
		t.Errorf("disc did not grow: %d -> %d", len(small), len(big))
	}
	// All small-disc cells appear in the big disc.
	inBig := map[CellID]bool{}
	for _, id := range big {
		inBig[id] = true
	}
	for _, id := range small {
		if !inBig[id] {
			t.Fatalf("cell %v in small disc missing from big disc", id)
		}
	}
}

func TestParentChild(t *testing.T) {
	fine := LatLngToCell(geo.LatLng{Lat: 40, Lng: -100}, 4)
	parent, err := fine.ParentAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if parent.Resolution() != 2 {
		t.Fatalf("parent resolution = %d", parent.Resolution())
	}
	// The fine cell's center maps into the parent.
	if LatLngToCell(fine.LatLng(), 2) != parent {
		t.Error("parent does not contain child center")
	}
	// Children of the parent at the fine resolution include the cell.
	children, err := parent.ChildrenAt(4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ch := range children {
		if ch == fine {
			found = true
		}
		if back, _ := ch.ParentAt(2); back != parent {
			t.Fatalf("child %v maps to parent %v, want %v", ch, back, parent)
		}
	}
	if !found {
		t.Error("children missing the original fine cell")
	}
	// Roughly 7^2 children across two resolution steps (generous
	// bounds: distortion varies cell sizes).
	if len(children) < 25 || len(children) > 90 {
		t.Errorf("got %d children across 2 levels, want ≈49", len(children))
	}
	// Errors.
	if _, err := fine.ParentAt(5); err == nil {
		t.Error("finer parent should fail")
	}
	if _, err := fine.ChildrenAt(2); err == nil {
		t.Error("coarser children should fail")
	}
	same, err := fine.ChildrenAt(4)
	if err != nil || len(same) != 1 || same[0] != fine {
		t.Errorf("self children = %v, %v", same, err)
	}
}
