package hexgrid

import (
	"math"
	"sort"

	"leodivide/internal/geo"
)

// Boundary returns the cell's polygon vertices in counterclockwise
// order: the circumcenters of the Voronoi region around the cell's
// lattice vertex, approximated as the midpoints between the cell
// center and the midpoints of adjacent neighbor pairs. Hexagonal cells
// return 6 vertices, pentagon cells 5.
func (c CellID) Boundary() []geo.LatLng {
	center := c.LatLng()
	cv := center.Vector()
	nbs := c.Neighbors()
	if len(nbs) < 3 {
		return nil
	}
	// Order neighbors by bearing around the center.
	type nb struct {
		v       geo.Vec3
		bearing float64
	}
	ordered := make([]nb, 0, len(nbs))
	for _, id := range nbs {
		p := id.LatLng()
		ordered = append(ordered, nb{v: p.Vector(), bearing: geo.InitialBearing(center, p)})
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].bearing < ordered[b].bearing })
	// The Voronoi vertex between two adjacent neighbors is equidistant
	// from the center and both neighbors; for a near-regular lattice it
	// is well approximated by the normalized centroid of the triangle
	// (center, n_i, n_{i+1}).
	out := make([]geo.LatLng, 0, len(ordered))
	for i := range ordered {
		j := (i + 1) % len(ordered)
		vertex := cv.Add(ordered[i].v).Add(ordered[j].v).Unit()
		out = append(out, vertex.LatLng())
	}
	// InitialBearing ascends clockwise from north; reverse for CCW.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// AreaKm2 returns the cell's polygon area. Cells are near-uniform;
// individual areas vary around Resolution.AvgCellAreaKm2 with the
// grid's geodesic distortion (roughly ±25%).
func (c CellID) AreaKm2() float64 {
	b := c.Boundary()
	if len(b) < 3 {
		return c.Resolution().AvgCellAreaKm2()
	}
	return geo.Polygon{Vertices: b}.AreaKm2()
}

// RectFill returns all cells at resolution r whose centers fall within
// the latitude/longitude rectangle, in ascending CellID order. The
// rectangle must not cross the antimeridian.
func RectFill(latLo, latHi, lngLo, lngHi float64, r Resolution) []CellID {
	if !r.Valid() || latHi < latLo || lngHi < lngLo {
		return nil
	}
	// Seed a point lattice finer than the cell spacing, map each point
	// to its cell, and keep the cells whose centers are inside.
	spacingDeg := geo.Degrees(edgeAngle/float64(r.Subdivisions())) * 0.6
	seen := make(map[CellID]bool)
	var out []CellID
	for lat := latLo; lat <= latHi+spacingDeg; lat += spacingDeg {
		// Longitude degrees shrink with latitude.
		cosLat := math.Cos(geo.Radians(math.Min(math.Abs(lat), 89)))
		lngStep := spacingDeg
		if cosLat > 0.02 {
			lngStep = spacingDeg / cosLat
		}
		for lng := lngLo; lng <= lngHi+lngStep; lng += lngStep {
			id := LatLngToCell(geo.LatLng{Lat: clampLat(lat), Lng: clampLng(lng)}, r)
			if seen[id] {
				continue
			}
			seen[id] = true
			center := id.LatLng()
			if center.Lat >= latLo && center.Lat <= latHi &&
				center.Lng >= lngLo && center.Lng <= lngHi {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// DiscFill returns all cells at resolution r whose centers lie within
// radiusKm of center, in ascending CellID order.
func DiscFill(center geo.LatLng, radiusKm float64, r Resolution) []CellID {
	if !r.Valid() || radiusKm < 0 {
		return nil
	}
	// BFS outward from the center cell.
	start := LatLngToCell(center, r)
	seen := map[CellID]bool{start: true}
	frontier := []CellID{start}
	var out []CellID
	if geo.DistanceKm(center, start.LatLng()) <= radiusKm {
		out = append(out, start)
	}
	// Expand while any frontier cell is within reach of the disc; one
	// extra ring of slack catches boundary cells.
	slackKm := geo.EarthRadiusKm * start.latticeSpacing() * 1.5
	for len(frontier) > 0 {
		var next []CellID
		for _, id := range frontier {
			for _, nb := range id.Neighbors() {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				d := geo.DistanceKm(center, nb.LatLng())
				if d <= radiusKm {
					out = append(out, nb)
					next = append(next, nb)
				} else if d <= radiusKm+slackKm {
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

func clampLng(lng float64) float64 {
	if lng > 180 {
		return 180
	}
	if lng < -180 {
		return -180
	}
	return lng
}
