// Package census is the demographic substrate: county-level median
// household income in the style of the US Census ACS table S2801/S1901,
// plus the federal poverty guideline and Lifeline subsidy rules the
// affordability analysis uses.
//
// Real ACS extracts are not shipped; incomes are assigned synthetically
// but calibrated so the *location-weighted* income distribution over
// un(der)served locations reproduces the paper's affordability anchors
// (74.5% of locations below the $72,000 Starlink threshold, ≈64% below
// the $66,450 Lifeline-adjusted threshold, fewer than 0.01% below the
// $30,000 Spectrum threshold). See DESIGN.md §1 for the substitution
// argument.
package census

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Federal assistance constants (2025 program parameters used by the
// paper).
const (
	// LifelineMonthlySubsidyUSD is the Lifeline program's monthly
	// broadband subsidy.
	LifelineMonthlySubsidyUSD = 9.25

	// LifelineEligibilityFPLMultiple is the income cutoff for Lifeline,
	// as a multiple of the Federal Poverty Level.
	LifelineEligibilityFPLMultiple = 1.35

	// FederalPovertyLevelBaseUSD and FederalPovertyLevelPerPersonUSD
	// approximate the 48-state poverty guideline: base + per-person.
	FederalPovertyLevelBaseUSD      = 10380
	FederalPovertyLevelPerPersonUSD = 5380
)

// FederalPovertyLevelUSD returns the poverty guideline for a household
// of the given size.
func FederalPovertyLevelUSD(householdSize int) float64 {
	if householdSize < 1 {
		householdSize = 1
	}
	return FederalPovertyLevelBaseUSD + FederalPovertyLevelPerPersonUSD*float64(householdSize)
}

// LifelineEligible reports whether a household qualifies for Lifeline on
// the income test.
func LifelineEligible(annualIncomeUSD float64, householdSize int) bool {
	return annualIncomeUSD <= LifelineEligibilityFPLMultiple*FederalPovertyLevelUSD(householdSize)
}

// QuantileAnchor pins the location-weighted income quantile function at
// one point.
type QuantileAnchor struct {
	Q      float64 // location-weighted quantile in [0, 1]
	Income float64 // annual household income, USD
}

// DefaultIncomeAnchors returns the calibration anchors derived from the
// paper's Figure 4 and Finding 4 (see package comment). Interpolation
// between anchors is log-linear in income.
func DefaultIncomeAnchors() []QuantileAnchor {
	return []QuantileAnchor{
		{Q: 0.0, Income: 28800},     // Starlink curve reaches zero at 5.0% of income
		{Q: 0.00008, Income: 30000}, // >99.99% can afford the $50 Spectrum plan
		{Q: 0.02, Income: 36000},
		{Q: 0.30, Income: 52000},
		{Q: 0.642, Income: 66450}, // ≈3.0M locations below the Lifeline threshold
		{Q: 0.745, Income: 72000}, // 74.5% below the $120 Starlink threshold
		{Q: 0.90, Income: 89000},
		{Q: 0.97, Income: 112000},
		{Q: 1.0, Income: 230000},
	}
}

// IncomeQuantile evaluates the anchored quantile function at q,
// interpolating log-linearly in income between anchors.
func IncomeQuantile(anchors []QuantileAnchor, q float64) (float64, error) {
	if len(anchors) < 2 {
		return 0, fmt.Errorf("census: need at least 2 anchors, got %d", len(anchors))
	}
	for i := 1; i < len(anchors); i++ {
		if anchors[i].Q <= anchors[i-1].Q {
			return 0, fmt.Errorf("census: anchors not strictly increasing in Q at %d", i)
		}
		if anchors[i].Income <= anchors[i-1].Income {
			return 0, fmt.Errorf("census: anchors not strictly increasing in income at %d", i)
		}
	}
	if q <= anchors[0].Q {
		return anchors[0].Income, nil
	}
	last := anchors[len(anchors)-1]
	if q >= last.Q {
		return last.Income, nil
	}
	i := sort.Search(len(anchors), func(i int) bool { return anchors[i].Q > q }) - 1
	a, b := anchors[i], anchors[i+1]
	t := (q - a.Q) / (b.Q - a.Q)
	return math.Exp(math.Log(a.Income) + t*(math.Log(b.Income)-math.Log(a.Income))), nil
}

// CountyIncome is one county's ACS-style record.
type CountyIncome struct {
	FIPS                     string
	StateAbbr                string
	MedianHouseholdIncomeUSD float64
	// Weight is the number of un(der)served locations attributed to
	// the county, carried for weighted statistics.
	Weight float64
}

// Table holds per-county incomes keyed by FIPS.
type Table struct {
	byFIPS  map[string]CountyIncome
	ordered []CountyIncome // ascending by income
}

// NewTable builds a Table from records.
func NewTable(records []CountyIncome) *Table {
	t := &Table{byFIPS: make(map[string]CountyIncome, len(records))}
	t.ordered = make([]CountyIncome, len(records))
	copy(t.ordered, records)
	sort.Slice(t.ordered, func(i, j int) bool {
		if t.ordered[i].MedianHouseholdIncomeUSD != t.ordered[j].MedianHouseholdIncomeUSD {
			return t.ordered[i].MedianHouseholdIncomeUSD < t.ordered[j].MedianHouseholdIncomeUSD
		}
		return t.ordered[i].FIPS < t.ordered[j].FIPS
	})
	for _, r := range records {
		t.byFIPS[r.FIPS] = r
	}
	return t
}

// Lookup returns the county record for a FIPS code.
func (t *Table) Lookup(fips string) (CountyIncome, bool) {
	r, ok := t.byFIPS[fips]
	return r, ok
}

// Len returns the number of counties in the table.
func (t *Table) Len() int { return len(t.ordered) }

// Counties returns the records in ascending income order.
func (t *Table) Counties() []CountyIncome {
	out := make([]CountyIncome, len(t.ordered))
	copy(out, t.ordered)
	return out
}

// CountyWeight is the input to AssignIncomes: a county and its
// un(der)served location count.
type CountyWeight struct {
	FIPS      string
	StateAbbr string
	Weight    float64
	// PovertyRank orders counties from poorest to richest before income
	// assignment; callers typically derive it from state-level rural
	// poverty plus a deterministic per-county jitter.
	PovertyRank float64
}

// AssignIncomes distributes incomes over counties so the
// location-weighted income CDF reproduces the anchored quantile
// function exactly (up to county granularity): counties are ordered by
// PovertyRank and each receives the income at its cumulative-weight
// midpoint quantile.
func AssignIncomes(weights []CountyWeight, anchors []QuantileAnchor) (*Table, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("census: no county weights")
	}
	ws := make([]CountyWeight, len(weights))
	copy(ws, weights)
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].PovertyRank != ws[j].PovertyRank {
			return ws[i].PovertyRank < ws[j].PovertyRank
		}
		return ws[i].FIPS < ws[j].FIPS
	})
	total := 0.0
	for _, w := range ws {
		if w.Weight < 0 {
			return nil, fmt.Errorf("census: negative weight for county %s", w.FIPS)
		}
		total += w.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("census: zero total weight")
	}
	records := make([]CountyIncome, 0, len(ws))
	cum := 0.0
	for _, w := range ws {
		mid := (cum + w.Weight/2) / total
		cum += w.Weight
		income, err := IncomeQuantile(anchors, mid)
		if err != nil {
			return nil, err
		}
		records = append(records, CountyIncome{
			FIPS:                     w.FIPS,
			StateAbbr:                w.StateAbbr,
			MedianHouseholdIncomeUSD: math.Round(income/50) * 50, // ACS-style rounding
			Weight:                   w.Weight,
		})
	}
	return NewTable(records), nil
}

// WeightedFractionBelow returns the location-weight fraction of counties
// with median income strictly below the threshold.
func (t *Table) WeightedFractionBelow(incomeUSD float64) float64 {
	total, below := 0.0, 0.0
	for _, r := range t.ordered {
		total += r.Weight
		if r.MedianHouseholdIncomeUSD < incomeUSD {
			below += r.Weight
		}
	}
	if total == 0 {
		return 0
	}
	return below / total
}

// WeightedCountBelow returns the total location weight in counties with
// median income strictly below the threshold.
func (t *Table) WeightedCountBelow(incomeUSD float64) float64 {
	below := 0.0
	for _, r := range t.ordered {
		if r.MedianHouseholdIncomeUSD < incomeUSD {
			below += r.Weight
		}
	}
	return below
}

// csvHeader is the ACS-style county income schema.
var csvHeader = []string{"county_fips", "state", "median_household_income_usd", "unserved_locations"}

// WriteCSV writes the table in the ACS-style schema, ordered by FIPS.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("census: writing header: %w", err)
	}
	recs := t.Counties()
	sort.Slice(recs, func(i, j int) bool { return recs[i].FIPS < recs[j].FIPS })
	for _, r := range recs {
		row := []string{
			r.FIPS,
			r.StateAbbr,
			strconv.FormatFloat(r.MedianHouseholdIncomeUSD, 'f', 0, 64),
			strconv.FormatFloat(r.Weight, 'f', 0, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("census: writing county %s: %w", r.FIPS, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV, enforcing the writer's
// invariants: digit-checked county FIPS codes with no duplicates,
// positive incomes, nonnegative weights.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("census: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("census: header field %d is %q, want %q", i, header[i], h)
		}
	}
	var recs []CountyIncome
	seen := make(map[string]int)
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("census: line %d: %w", line, err)
		}
		if !validFIPS(row[0]) {
			return nil, fmt.Errorf("census: line %d: bad county_fips %q: want 5 digits", line, row[0])
		}
		if prev, dup := seen[row[0]]; dup {
			return nil, fmt.Errorf("census: line %d: duplicate county_fips %q (first at line %d)", line, row[0], prev)
		}
		seen[row[0]] = line
		income, err := strconv.ParseFloat(row[2], 64)
		if err != nil || income <= 0 {
			return nil, fmt.Errorf("census: line %d: bad income %q", line, row[2])
		}
		weight, err := strconv.ParseFloat(row[3], 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("census: line %d: bad weight %q", line, row[3])
		}
		recs = append(recs, CountyIncome{
			FIPS:                     row[0],
			StateAbbr:                row[1],
			MedianHouseholdIncomeUSD: income,
			Weight:                   weight,
		})
	}
	return NewTable(recs), nil
}

// validFIPS reports whether s is a 5-digit county FIPS code.
func validFIPS(s string) bool {
	if len(s) != 5 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
