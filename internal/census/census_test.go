package census

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPovertyLevel(t *testing.T) {
	if got := FederalPovertyLevelUSD(1); got != 15760 {
		t.Errorf("FPL(1) = %v, want 15760", got)
	}
	if got := FederalPovertyLevelUSD(4); got != 31900 {
		t.Errorf("FPL(4) = %v, want 31900", got)
	}
	if got := FederalPovertyLevelUSD(0); got != FederalPovertyLevelUSD(1) {
		t.Error("household size clamps to 1")
	}
}

func TestLifelineEligible(t *testing.T) {
	// 135% of FPL for a 4-person household: 1.35 × 31,900 = 43,065.
	if !LifelineEligible(43065, 4) {
		t.Error("income at exactly 135% FPL should qualify")
	}
	if LifelineEligible(43066, 4) {
		t.Error("income above 135% FPL should not qualify")
	}
	if !LifelineEligible(10000, 1) {
		t.Error("deep-poverty income should qualify")
	}
}

func TestIncomeQuantileAnchors(t *testing.T) {
	anchors := DefaultIncomeAnchors()
	for _, a := range anchors {
		got, err := IncomeQuantile(anchors, a.Q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-a.Income)/a.Income > 1e-9 {
			t.Errorf("IncomeQuantile(%v) = %v, want anchor %v", a.Q, got, a.Income)
		}
	}
	// Clamping outside [0, 1].
	if got, _ := IncomeQuantile(anchors, -1); got != anchors[0].Income {
		t.Errorf("IncomeQuantile(-1) = %v", got)
	}
	if got, _ := IncomeQuantile(anchors, 2); got != anchors[len(anchors)-1].Income {
		t.Errorf("IncomeQuantile(2) = %v", got)
	}
}

func TestIncomeQuantileErrors(t *testing.T) {
	if _, err := IncomeQuantile([]QuantileAnchor{{Q: 0, Income: 1}}, 0.5); err == nil {
		t.Error("single anchor should fail")
	}
	bad := []QuantileAnchor{{Q: 0, Income: 100}, {Q: 0, Income: 200}}
	if _, err := IncomeQuantile(bad, 0.5); err == nil {
		t.Error("non-increasing Q should fail")
	}
	bad2 := []QuantileAnchor{{Q: 0, Income: 200}, {Q: 1, Income: 100}}
	if _, err := IncomeQuantile(bad2, 0.5); err == nil {
		t.Error("non-increasing income should fail")
	}
}

// Property: the quantile function is monotone in q.
func TestIncomeQuantileMonotoneProperty(t *testing.T) {
	anchors := DefaultIncomeAnchors()
	f := func(a, b uint16) bool {
		qa, qb := float64(a)/65535, float64(b)/65535
		if qa > qb {
			qa, qb = qb, qa
		}
		ia, err1 := IncomeQuantile(anchors, qa)
		ib, err2 := IncomeQuantile(anchors, qb)
		return err1 == nil && err2 == nil && ia <= ib+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssignIncomes(t *testing.T) {
	weights := []CountyWeight{
		{FIPS: "01001", StateAbbr: "AL", Weight: 1000, PovertyRank: 0.1},
		{FIPS: "02002", StateAbbr: "AK", Weight: 2000, PovertyRank: 0.9},
		{FIPS: "03003", StateAbbr: "AZ", Weight: 3000, PovertyRank: 0.5},
	}
	table, err := AssignIncomes(weights, DefaultIncomeAnchors())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 3 {
		t.Fatalf("table has %d counties", table.Len())
	}
	// Poorer rank ⇒ lower income.
	r1, _ := table.Lookup("01001")
	r2, _ := table.Lookup("02002")
	r3, _ := table.Lookup("03003")
	if !(r1.MedianHouseholdIncomeUSD < r3.MedianHouseholdIncomeUSD &&
		r3.MedianHouseholdIncomeUSD < r2.MedianHouseholdIncomeUSD) {
		t.Errorf("income order violates poverty rank: %v %v %v",
			r1.MedianHouseholdIncomeUSD, r3.MedianHouseholdIncomeUSD, r2.MedianHouseholdIncomeUSD)
	}
	if _, ok := table.Lookup("99999"); ok {
		t.Error("unknown FIPS should not resolve")
	}
}

func TestAssignIncomesErrors(t *testing.T) {
	if _, err := AssignIncomes(nil, DefaultIncomeAnchors()); err == nil {
		t.Error("no weights should fail")
	}
	if _, err := AssignIncomes([]CountyWeight{{FIPS: "x", Weight: -1}}, DefaultIncomeAnchors()); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := AssignIncomes([]CountyWeight{{FIPS: "x", Weight: 0}}, DefaultIncomeAnchors()); err == nil {
		t.Error("zero total weight should fail")
	}
}

// The location-weighted CDF of assigned incomes reproduces the anchored
// quantile function at the calibration thresholds.
func TestAssignIncomesCalibration(t *testing.T) {
	// Many small counties give county granularity fine enough to hit
	// the anchors tightly.
	const nCounties = 3000
	weights := make([]CountyWeight, nCounties)
	for i := range weights {
		weights[i] = CountyWeight{
			FIPS:        fipsFor(i),
			Weight:      1000 + float64(i%7)*100,
			PovertyRank: float64((i*2654435761)%nCounties) / nCounties,
		}
	}
	table, err := AssignIncomes(weights, DefaultIncomeAnchors())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		threshold float64
		wantFrac  float64
		tol       float64
	}{
		{66450, 0.642, 0.01},
		{72000, 0.745, 0.01},
		{30000, 0.0001, 0.002},
	}
	for _, tc := range cases {
		got := table.WeightedFractionBelow(tc.threshold)
		if math.Abs(got-tc.wantFrac) > tc.tol {
			t.Errorf("fraction below $%.0f = %.4f, want %.4f±%.3f",
				tc.threshold, got, tc.wantFrac, tc.tol)
		}
	}
	// Counts and fractions agree.
	total := 0.0
	for _, w := range weights {
		total += w.Weight
	}
	below := table.WeightedCountBelow(72000)
	if math.Abs(below/total-table.WeightedFractionBelow(72000)) > 1e-9 {
		t.Error("WeightedCountBelow inconsistent with WeightedFractionBelow")
	}
}

func fipsFor(i int) string {
	const digits = "0123456789"
	out := make([]byte, 5)
	for k := 4; k >= 0; k-- {
		out[k] = digits[i%10]
		i /= 10
	}
	return string(out)
}

func TestTableOrdering(t *testing.T) {
	table := NewTable([]CountyIncome{
		{FIPS: "b", MedianHouseholdIncomeUSD: 50000},
		{FIPS: "a", MedianHouseholdIncomeUSD: 30000},
		{FIPS: "c", MedianHouseholdIncomeUSD: 70000},
	})
	counties := table.Counties()
	for i := 1; i < len(counties); i++ {
		if counties[i].MedianHouseholdIncomeUSD < counties[i-1].MedianHouseholdIncomeUSD {
			t.Fatal("Counties() not income-sorted")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	table := NewTable([]CountyIncome{
		{FIPS: "01001", StateAbbr: "AL", MedianHouseholdIncomeUSD: 45000, Weight: 1200},
		{FIPS: "48001", StateAbbr: "TX", MedianHouseholdIncomeUSD: 62000, Weight: 300},
	})
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip %d counties", back.Len())
	}
	r, ok := back.Lookup("01001")
	if !ok || r.MedianHouseholdIncomeUSD != 45000 || r.Weight != 1200 || r.StateAbbr != "AL" {
		t.Errorf("round-trip record = %+v", r)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,x,y",
		"county_fips,state,median_household_income_usd,unserved_locations\n01001,AL,abc,10",
		"county_fips,state,median_household_income_usd,unserved_locations\n01001,AL,-5,10",
		"county_fips,state,median_household_income_usd,unserved_locations\n01001,AL,50000,-1",
		// Non-digit, short, and long FIPS codes.
		"county_fips,state,median_household_income_usd,unserved_locations\nabcde,AL,50000,10",
		"county_fips,state,median_household_income_usd,unserved_locations\n0100,AL,50000,10",
		"county_fips,state,median_household_income_usd,unserved_locations\n010011,AL,50000,10",
		// Duplicate county.
		"county_fips,state,median_household_income_usd,unserved_locations\n01001,AL,50000,10\n01001,AL,52000,20",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
