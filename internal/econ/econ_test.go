package econ

import (
	"math"
	"testing"

	"leodivide/internal/core"
)

func TestDefaultCostModel(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// $1.5M space segment × 1.2 overhead = $1.8M all-in per satellite.
	if got := m.PerSatelliteUSD(); math.Abs(got-1.8e6) > 1 {
		t.Errorf("per-satellite = %v, want 1.8M", got)
	}
	if got := m.CapexUSD(1000); math.Abs(got-1.8e9) > 1 {
		t.Errorf("capex(1000) = %v, want 1.8B", got)
	}
	if got := m.AnnualizedUSD(1000); math.Abs(got-0.36e9) > 1 {
		t.Errorf("annualized(1000) = %v, want 0.36B", got)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultCostModel()
	bad.SatelliteLifetimeYears = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero lifetime should fail")
	}
	bad = DefaultCostModel()
	bad.GroundSegmentOverhead = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("overhead below 1 should fail")
	}
	bad = DefaultCostModel()
	bad.SatelliteUnitUSD = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost should fail")
	}
}

func TestMonthlyPerLocation(t *testing.T) {
	m := DefaultCostModel()
	// 8,400 satellites serving 4.67M locations: annualized $3.02B →
	// ~$54/location/month.
	got := m.MonthlyPerLocationUSD(8400, 4_667_000)
	want := m.AnnualizedUSD(8400) / 12 / 4_667_000
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("monthly per location = %v, want %v", got, want)
	}
	if got < 40 || got > 70 {
		t.Errorf("monthly per location = %v, want ≈$54", got)
	}
	if m.MonthlyPerLocationUSD(100, 0) != 0 {
		t.Error("zero locations should price at 0")
	}
}

func TestPriceSteps(t *testing.T) {
	m := DefaultCostModel()
	steps := []core.StepCost{
		{FromUnserved: 50000, ToUnserved: 10000, LocationsGained: 40000, AdditionalSatellites: 400},
		{FromUnserved: 10000, ToUnserved: 9000, LocationsGained: 1000, AdditionalSatellites: 400},
		{FromUnserved: 9000, ToUnserved: 9000, LocationsGained: 0, AdditionalSatellites: 0}, // dropped
	}
	priced, err := m.PriceSteps(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(priced) != 2 {
		t.Fatalf("got %d priced steps", len(priced))
	}
	// Same satellites over 40x fewer locations: 40x the per-location
	// cost — the F3 story in dollars.
	ratio := priced[1].CapexPerLocationUSD / priced[0].CapexPerLocationUSD
	if math.Abs(ratio-40) > 1e-9 {
		t.Errorf("tail cost ratio = %v, want 40", ratio)
	}
	if priced[0].CapexUSD != m.CapexUSD(400) {
		t.Errorf("step capex = %v", priced[0].CapexUSD)
	}
	// Monthly per-location consistency.
	wantMonthly := priced[0].CapexUSD / 5 / 12 / 40000
	if math.Abs(priced[0].MonthlyPerLocationUSD-wantMonthly) > 1e-9 {
		t.Errorf("monthly = %v, want %v", priced[0].MonthlyPerLocationUSD, wantMonthly)
	}

	bad := DefaultCostModel()
	bad.SatelliteLifetimeYears = -1
	if _, err := bad.PriceSteps(steps); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestPriceScenario(t *testing.T) {
	m := DefaultCostModel()
	sc, err := m.PriceScenario(41261, 4_667_000)
	if err != nil {
		t.Fatal(err)
	}
	if sc.CapexUSD != m.CapexUSD(41261) {
		t.Errorf("capex = %v", sc.CapexUSD)
	}
	// The paper's >40k constellation serving only un(der)served
	// locations would need >$200/location/month — far above the $120
	// price, let alone the 2% affordability bar.
	if sc.MonthlyPerLocationUSD < 150 || sc.MonthlyPerLocationUSD > 350 {
		t.Errorf("monthly per location = %v, want a few hundred dollars", sc.MonthlyPerLocationUSD)
	}
	bad := DefaultCostModel()
	bad.GroundSegmentOverhead = 0
	if _, err := bad.PriceScenario(1, 1); err == nil {
		t.Error("invalid model should fail")
	}
}
