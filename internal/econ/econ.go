// Package econ attaches dollar figures to the paper's satellite-count
// results: constellation capital and replacement cost, per-location
// cost of the diminishing-returns tail (F3's "significantly more
// expensive", quantified), and the break-even monthly price against
// which the affordability analysis can be read.
//
// All cost assumptions are explicit, documented fields with defaults
// drawn from public estimates of Starlink V2-mini economics; every
// output carries those assumptions with it.
package econ

import (
	"fmt"

	"leodivide/internal/constellation"
	"leodivide/internal/core"
)

// CostModel fixes the unit economics of a constellation.
type CostModel struct {
	// SatelliteUnitUSD is the manufacturing cost per satellite.
	SatelliteUnitUSD float64
	// LaunchPerSatelliteUSD is the amortized launch cost per satellite.
	LaunchPerSatelliteUSD float64
	// SatelliteLifetimeYears is the on-orbit lifetime before
	// replacement (LEO drag limits this to ~5 years).
	SatelliteLifetimeYears float64
	// GroundSegmentOverhead multiplies space-segment cost to cover
	// gateways, PoPs and operations (1.0 = none).
	GroundSegmentOverhead float64
}

// DefaultCostModel returns public-estimate Starlink economics:
// ≈$0.8M to build and ≈$0.7M to launch each satellite, 5-year life,
// 20% ground-segment overhead. The figures are drawn from the Starlink
// constellation spec (internal/constellation), so the econ defaults
// and the cross-constellation cost models share one source of truth;
// the overhead multiplier 1 + share is exact in binary for the 0.2
// share, keeping the historical 1.2 byte-identical.
func DefaultCostModel() CostModel {
	return FromSystemCost(constellation.StarlinkSystem().Cost)
}

// FromSystemCost views a constellation cost spec through econ's
// capex-only lens: build, launch, life and the ground-segment share as
// a multiplier. Terminal subsidy and per-satellite opex have no econ
// counterpart and are intentionally dropped — econ prices the space
// segment the paper's Figure 3 tail argument needs.
func FromSystemCost(c constellation.CostModel) CostModel {
	return CostModel{
		SatelliteUnitUSD:       c.SatelliteBuildUSD,
		LaunchPerSatelliteUSD:  c.LaunchPerSatelliteUSD,
		SatelliteLifetimeYears: c.DesignLifeYears,
		GroundSegmentOverhead:  1 + c.GroundSegmentShare,
	}
}

// Validate reports whether the model is computable.
func (m CostModel) Validate() error {
	if m.SatelliteUnitUSD < 0 || m.LaunchPerSatelliteUSD < 0 {
		return fmt.Errorf("econ: negative unit costs")
	}
	if m.SatelliteLifetimeYears <= 0 {
		return fmt.Errorf("econ: lifetime must be positive, got %v", m.SatelliteLifetimeYears)
	}
	if m.GroundSegmentOverhead < 1 {
		return fmt.Errorf("econ: ground overhead %v below 1", m.GroundSegmentOverhead)
	}
	return nil
}

// PerSatelliteUSD returns the all-in capital cost of one satellite.
func (m CostModel) PerSatelliteUSD() float64 {
	return (m.SatelliteUnitUSD + m.LaunchPerSatelliteUSD) * m.GroundSegmentOverhead
}

// CapexUSD returns the capital cost of a constellation of n satellites.
func (m CostModel) CapexUSD(satellites int) float64 {
	return float64(satellites) * m.PerSatelliteUSD()
}

// AnnualizedUSD returns the yearly cost of sustaining n satellites
// (capital spread over the lifetime — LEO constellations are
// perpetually replaced, so this is a recurring cost, not a one-off).
func (m CostModel) AnnualizedUSD(satellites int) float64 {
	return m.CapexUSD(satellites) / m.SatelliteLifetimeYears
}

// MonthlyPerLocationUSD returns the sustaining cost per served location
// per month when the constellation serves the given location count.
// This is the floor a price must clear if the service were to carry
// the whole constellation cost (the paper's best-case framing: the
// constellation exists only for these locations).
func (m CostModel) MonthlyPerLocationUSD(satellites, locations int) float64 {
	if locations <= 0 {
		return 0
	}
	return m.AnnualizedUSD(satellites) / 12 / float64(locations)
}

// TailCost prices one step of the diminishing-returns curve.
type TailCost struct {
	core.StepCost
	// CapexUSD is the capital cost of the additional satellites.
	CapexUSD float64
	// CapexPerLocationUSD is that capital divided by the locations the
	// step serves.
	CapexPerLocationUSD float64
	// MonthlyPerLocationUSD is the sustaining cost per newly served
	// location per month.
	MonthlyPerLocationUSD float64
}

// PriceSteps converts diminishing-returns steps into dollar terms.
func (m CostModel) PriceSteps(steps []core.StepCost) ([]TailCost, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make([]TailCost, 0, len(steps))
	for _, s := range steps {
		if s.LocationsGained <= 0 {
			continue
		}
		capex := m.CapexUSD(s.AdditionalSatellites)
		out = append(out, TailCost{
			StepCost:              s,
			CapexUSD:              capex,
			CapexPerLocationUSD:   capex / float64(s.LocationsGained),
			MonthlyPerLocationUSD: capex / m.SatelliteLifetimeYears / 12 / float64(s.LocationsGained),
		})
	}
	return out, nil
}

// ScenarioCost summarizes a sizing result in dollars.
type ScenarioCost struct {
	Satellites            int
	CapexUSD              float64
	AnnualizedUSD         float64
	ServedLocations       int
	MonthlyPerLocationUSD float64
}

// PriceScenario prices a constellation serving the given locations.
func (m CostModel) PriceScenario(satellites, servedLocations int) (ScenarioCost, error) {
	if err := m.Validate(); err != nil {
		return ScenarioCost{}, err
	}
	return ScenarioCost{
		Satellites:            satellites,
		CapexUSD:              m.CapexUSD(satellites),
		AnnualizedUSD:         m.AnnualizedUSD(satellites),
		ServedLocations:       servedLocations,
		MonthlyPerLocationUSD: m.MonthlyPerLocationUSD(satellites, servedLocations),
	}, nil
}
