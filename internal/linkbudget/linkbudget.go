// Package linkbudget computes satellite downlink budgets: slant range
// and free-space path loss from orbital geometry, carrier-to-noise from
// EIRP and terminal G/T, and achievable spectral efficiency through a
// DVB-S2X MODCOD table.
//
// The paper adopts a flat ~4.5 b/Hz spectral-efficiency estimate for
// Starlink's Ku downlink (from Rozenvasser & Shulakova). This package
// derives that figure from the physical layer instead of asserting it:
// with public estimates of Starlink's per-beam EIRP and terminal G/T,
// the elevation-weighted DVB-S2X efficiency over the visibility cone
// lands at ≈4.5 b/Hz — and the same machinery supports ablations
// (cheaper terminals, higher shells, rain margin) that a constant
// cannot express.
package linkbudget

import (
	"fmt"
	"math"
	"sort"

	"leodivide/internal/geo"
)

// SpeedOfLightKmPerSec is c in km/s.
const SpeedOfLightKmPerSec = 299792.458

// BoltzmannDBW is 10·log10(k) in dBW/K/Hz.
const BoltzmannDBW = -228.6

// SlantRangeKm returns the distance from a ground terminal to a
// satellite at the given altitude seen at the given elevation angle.
func SlantRangeKm(altitudeKm, elevationDeg float64) float64 {
	re := geo.EarthRadiusKm
	el := geo.Radians(elevationDeg)
	// Law of cosines on the Earth-center / terminal / satellite
	// triangle: r² = re² + (re+h)² − 2·re·(re+h)·cos(γ) with
	// γ = acos(re·cos(el)/(re+h)) − el; equivalently the direct form:
	rs := re + altitudeKm
	return -re*math.Sin(el) + math.Sqrt(rs*rs-re*re*math.Cos(el)*math.Cos(el))
}

// FSPLdB returns free-space path loss in dB for a range in km and a
// frequency in GHz.
func FSPLdB(rangeKm, freqGHz float64) float64 {
	if rangeKm <= 0 || freqGHz <= 0 {
		return 0
	}
	// 20·log10(4π d f / c), d in km, f in GHz, c in km/s ⇒ the usual
	// 92.45 + 20log10(d·f) form.
	return 92.45 + 20*math.Log10(rangeKm*freqGHz)
}

// Budget is a downlink link budget configuration.
type Budget struct {
	// AltitudeKm is the satellite altitude.
	AltitudeKm float64
	// FreqGHz is the downlink carrier frequency.
	FreqGHz float64
	// EIRPdBW is the satellite's per-beam EIRP.
	EIRPdBW float64
	// TerminalGTdBK is the user terminal's G/T figure of merit.
	TerminalGTdBK float64
	// BandwidthMHz is the per-beam channel bandwidth.
	BandwidthMHz float64
	// ImplementationMarginDB covers modem losses, pointing error and
	// interference allowance; subtracted from C/N before MODCOD
	// selection.
	ImplementationMarginDB float64
	// RainMarginDB is an additional weather margin.
	RainMarginDB float64
}

// StarlinkKuDownlink returns a budget built from public estimates of
// the Starlink Ku user downlink: 550 km shell, 11.7 GHz mid-band,
// ≈36 dBW beam EIRP, ≈11 dB/K terminal G/T, 240 MHz channels, 3 dB
// implementation margin. With these figures the elevation-weighted
// spectral efficiency reproduces the paper's 4.5 b/Hz estimate.
func StarlinkKuDownlink() Budget {
	return Budget{
		AltitudeKm:             550,
		FreqGHz:                11.7,
		EIRPdBW:                36,
		TerminalGTdBK:          11,
		BandwidthMHz:           240,
		ImplementationMarginDB: 3,
	}
}

// Validate reports whether the budget is computable.
func (b Budget) Validate() error {
	if b.AltitudeKm <= 0 {
		return fmt.Errorf("linkbudget: altitude %v must be positive", b.AltitudeKm)
	}
	if b.FreqGHz <= 0 {
		return fmt.Errorf("linkbudget: frequency %v must be positive", b.FreqGHz)
	}
	if b.BandwidthMHz <= 0 {
		return fmt.Errorf("linkbudget: bandwidth %v must be positive", b.BandwidthMHz)
	}
	return nil
}

// CN0dBHz returns the carrier-to-noise-density ratio at an elevation.
func (b Budget) CN0dBHz(elevationDeg float64) float64 {
	fspl := FSPLdB(SlantRangeKm(b.AltitudeKm, elevationDeg), b.FreqGHz)
	return b.EIRPdBW - fspl + b.TerminalGTdBK - BoltzmannDBW
}

// CNdB returns the carrier-to-noise ratio over the configured channel
// bandwidth, after margins.
func (b Budget) CNdB(elevationDeg float64) float64 {
	bwDBHz := 10 * math.Log10(b.BandwidthMHz*1e6)
	return b.CN0dBHz(elevationDeg) - bwDBHz - b.ImplementationMarginDB - b.RainMarginDB
}

// ModCod is one DVB-S2X modulation-and-coding point.
type ModCod struct {
	Name string
	// EsN0dB is the required carrier-to-noise for quasi-error-free
	// operation (normal frames, AWGN).
	EsN0dB float64
	// EfficiencyBpsHz is the spectral efficiency delivered.
	EfficiencyBpsHz float64
}

// DVBS2XTable returns the DVB-S2X MODCOD ladder (normal frames),
// ascending in required Es/N0.
func DVBS2XTable() []ModCod {
	return []ModCod{
		{"QPSK 1/4", -2.35, 0.49},
		{"QPSK 1/3", -1.24, 0.66},
		{"QPSK 2/5", -0.30, 0.79},
		{"QPSK 1/2", 1.00, 0.99},
		{"QPSK 3/5", 2.23, 1.19},
		{"QPSK 2/3", 3.10, 1.32},
		{"QPSK 3/4", 4.03, 1.49},
		{"QPSK 5/6", 5.18, 1.65},
		{"8PSK 3/5", 5.50, 1.78},
		{"8PSK 2/3", 6.62, 1.98},
		{"8PSK 3/4", 7.91, 2.23},
		{"16APSK 2/3", 8.97, 2.64},
		{"16APSK 3/4", 10.21, 2.97},
		{"16APSK 4/5", 11.03, 3.17},
		{"16APSK 5/6", 11.61, 3.30},
		{"32APSK 3/4", 12.73, 3.70},
		{"32APSK 4/5", 13.64, 3.95},
		{"32APSK 5/6", 14.28, 4.12},
		{"64APSK 4/5", 15.87, 4.74},
		{"64APSK 5/6", 16.55, 4.93},
		{"128APSK 3/4", 17.73, 5.16},
		{"256APSK 3/4", 19.57, 5.90},
		{"256APSK 5/6", 21.45, 6.54},
	}
}

// BestModCod returns the highest-efficiency MODCOD supported at the
// given C/N, or false when even the most robust point cannot close.
func BestModCod(cnDB float64) (ModCod, bool) {
	table := DVBS2XTable()
	// Table is sorted by threshold; take the last one that closes.
	i := sort.Search(len(table), func(i int) bool { return table[i].EsN0dB > cnDB })
	if i == 0 {
		return ModCod{}, false
	}
	return table[i-1], true
}

// EfficiencyAt returns the spectral efficiency the budget achieves at
// an elevation (0 when the link cannot close).
func (b Budget) EfficiencyAt(elevationDeg float64) float64 {
	mc, ok := BestModCod(b.CNdB(elevationDeg))
	if !ok {
		return 0
	}
	return mc.EfficiencyBpsHz
}

// MeanEfficiency returns the elevation-weighted mean spectral
// efficiency over the visibility cone [minElevationDeg, 90°]. The
// weight at each elevation is the fraction of a uniform overhead
// constellation's satellites seen at that elevation: proportional to
// the solid-angle density of the coverage annulus, which in terms of
// the Earth-central angle γ(el) is d(1−cos γ)/d el.
func (b Budget) MeanEfficiency(minElevationDeg float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if minElevationDeg < 0 || minElevationDeg >= 90 {
		return 0, fmt.Errorf("linkbudget: elevation mask %v out of range", minElevationDeg)
	}
	const steps = 200
	re := geo.EarthRadiusKm
	rs := re + b.AltitudeKm
	gamma := func(elDeg float64) float64 {
		el := geo.Radians(elDeg)
		return math.Acos(re*math.Cos(el)/rs) - el
	}
	num, den := 0.0, 0.0
	prev := gamma(minElevationDeg)
	for i := 1; i <= steps; i++ {
		el := minElevationDeg + (90-minElevationDeg)*float64(i)/steps
		g := gamma(el)
		// Area weight of the annulus between successive elevations.
		w := math.Cos(g) - math.Cos(prev)
		if w < 0 {
			w = -w
		}
		mid := el - (90-minElevationDeg)/(2*steps)
		num += b.EfficiencyAt(mid) * w
		den += w
		prev = g
	}
	if den == 0 {
		return 0, fmt.Errorf("linkbudget: degenerate visibility cone")
	}
	return num / den, nil
}

// Line is one row of a rendered link budget.
type Line struct {
	Item  string
	Value float64
	Unit  string
}

// Breakdown returns the classic link-budget table at an elevation.
func (b Budget) Breakdown(elevationDeg float64) []Line {
	slant := SlantRangeKm(b.AltitudeKm, elevationDeg)
	fspl := FSPLdB(slant, b.FreqGHz)
	cn0 := b.CN0dBHz(elevationDeg)
	cn := b.CNdB(elevationDeg)
	eff := b.EfficiencyAt(elevationDeg)
	return []Line{
		{"elevation", elevationDeg, "deg"},
		{"slant range", slant, "km"},
		{"frequency", b.FreqGHz, "GHz"},
		{"free-space path loss", fspl, "dB"},
		{"satellite EIRP", b.EIRPdBW, "dBW"},
		{"terminal G/T", b.TerminalGTdBK, "dB/K"},
		{"C/N0", cn0, "dBHz"},
		{"channel bandwidth", b.BandwidthMHz, "MHz"},
		{"implementation margin", b.ImplementationMarginDB, "dB"},
		{"rain margin", b.RainMarginDB, "dB"},
		{"C/N", cn, "dB"},
		{"spectral efficiency", eff, "b/Hz"},
	}
}
