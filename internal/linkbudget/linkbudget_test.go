package linkbudget

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/geo"
)

func TestSlantRange(t *testing.T) {
	// Directly overhead: slant range equals altitude.
	if got := SlantRangeKm(550, 90); math.Abs(got-550) > 0.01 {
		t.Errorf("slant at 90° = %v, want 550", got)
	}
	// At the horizon: sqrt((re+h)² − re²) ≈ 2,704 km for 550 km.
	re := geo.EarthRadiusKm
	want := math.Sqrt((re+550)*(re+550) - re*re)
	if got := SlantRangeKm(550, 0); math.Abs(got-want) > 1 {
		t.Errorf("slant at 0° = %v, want %v", got, want)
	}
	// Monotone decreasing in elevation.
	prev := math.Inf(1)
	for el := 0.0; el <= 90; el += 5 {
		s := SlantRangeKm(550, el)
		if s >= prev {
			t.Fatalf("slant range not decreasing at %v°", el)
		}
		prev = s
	}
}

func TestFSPL(t *testing.T) {
	// Canonical check: 1,000 km at 11.7 GHz → 92.45 + 20log10(11700)
	// ≈ 173.8 dB.
	if got := FSPLdB(1000, 11.7); math.Abs(got-173.81) > 0.05 {
		t.Errorf("FSPL = %v, want ≈173.81", got)
	}
	// Doubling distance adds 6.02 dB.
	d1 := FSPLdB(800, 11.7)
	d2 := FSPLdB(1600, 11.7)
	if math.Abs(d2-d1-6.02) > 0.01 {
		t.Errorf("doubling distance added %v dB", d2-d1)
	}
	if FSPLdB(0, 11.7) != 0 || FSPLdB(100, 0) != 0 {
		t.Error("degenerate FSPL should be 0")
	}
}

func TestModCodTable(t *testing.T) {
	table := DVBS2XTable()
	for i := 1; i < len(table); i++ {
		if table[i].EsN0dB <= table[i-1].EsN0dB {
			t.Fatalf("MODCOD thresholds not ascending at %s", table[i].Name)
		}
		if table[i].EfficiencyBpsHz <= table[i-1].EfficiencyBpsHz {
			t.Fatalf("MODCOD efficiencies not ascending at %s", table[i].Name)
		}
	}
}

func TestBestModCod(t *testing.T) {
	if _, ok := BestModCod(-10); ok {
		t.Error("link should not close at -10 dB")
	}
	mc, ok := BestModCod(1.0)
	if !ok || mc.Name != "QPSK 1/2" {
		t.Errorf("BestModCod(1.0) = %v, %v", mc.Name, ok)
	}
	mc, ok = BestModCod(50)
	if !ok || mc.Name != "256APSK 5/6" {
		t.Errorf("BestModCod(50) = %v", mc.Name)
	}
}

// Property: achievable efficiency is monotone in C/N.
func TestModCodMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := -5 + float64(aRaw)/255*30
		bb := a + float64(bRaw)/255*10
		ea, eb := 0.0, 0.0
		if mc, ok := BestModCod(a); ok {
			ea = mc.EfficiencyBpsHz
		}
		if mc, ok := BestModCod(bb); ok {
			eb = mc.EfficiencyBpsHz
		}
		return eb >= ea
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStarlinkBudgetReproducesPaperEfficiency(t *testing.T) {
	// The elevation-weighted mean efficiency over the 25° visibility
	// cone should land on the paper's adopted ~4.5 b/Hz.
	b := StarlinkKuDownlink()
	eff, err := b.MeanEfficiency(25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-4.5) > 0.35 {
		t.Errorf("mean efficiency = %.2f b/Hz, want ≈4.5 (paper's estimate)", eff)
	}
	// Efficiency improves toward zenith.
	if b.EfficiencyAt(90) <= b.EfficiencyAt(25) {
		t.Error("efficiency should improve with elevation")
	}
}

func TestRainMarginDegrades(t *testing.T) {
	clear := StarlinkKuDownlink()
	rainy := clear
	rainy.RainMarginDB = 6
	effClear, _ := clear.MeanEfficiency(25)
	effRain, _ := rainy.MeanEfficiency(25)
	if effRain >= effClear {
		t.Errorf("rain margin did not degrade efficiency: %v vs %v", effRain, effClear)
	}
}

func TestHigherShellDegrades(t *testing.T) {
	low := StarlinkKuDownlink()
	high := low
	high.AltitudeKm = 1200
	effLow, _ := low.MeanEfficiency(25)
	effHigh, _ := high.MeanEfficiency(25)
	if effHigh >= effLow {
		t.Errorf("higher shell did not degrade efficiency: %v vs %v", effHigh, effLow)
	}
}

func TestBudgetValidate(t *testing.T) {
	bad := StarlinkKuDownlink()
	bad.AltitudeKm = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero altitude should fail")
	}
	bad = StarlinkKuDownlink()
	bad.BandwidthMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := StarlinkKuDownlink().MeanEfficiency(95); err == nil {
		t.Error("bad elevation mask should fail")
	}
}

func TestBreakdown(t *testing.T) {
	lines := StarlinkKuDownlink().Breakdown(40)
	if len(lines) != 12 {
		t.Fatalf("breakdown has %d lines", len(lines))
	}
	byItem := map[string]float64{}
	for _, l := range lines {
		byItem[l.Item] = l.Value
	}
	// Internal consistency: C/N = C/N0 − 10log10(B) − margins.
	want := byItem["C/N0"] - 10*math.Log10(byItem["channel bandwidth"]*1e6) -
		byItem["implementation margin"] - byItem["rain margin"]
	if math.Abs(byItem["C/N"]-want) > 1e-9 {
		t.Errorf("C/N inconsistent: %v vs %v", byItem["C/N"], want)
	}
	if byItem["spectral efficiency"] <= 0 {
		t.Error("link should close at 40°")
	}
}
