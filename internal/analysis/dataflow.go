package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the dataflow half of the v2 engine: classic forward
// reaching-definitions over the CFG, exposed to rule authors as
// ReachDefs. A "definition" is a statement-level write to a named local
// variable (assignment, short declaration, var decl, ++/--, a range
// binding, or the function's own parameters at entry). Writes through
// pointers, writes to struct fields / slice elements / map entries, and
// writes performed inside nested function literals are NOT definitions
// of the outer variable — rules that care about those model them
// separately (goroutinecapture does). The analysis is flow-sensitive
// and path-insensitive: at a use it answers "which defs MAY reach
// here", the union over all CFG paths.

// bitset is a fixed-width bit vector sized for the function's def count.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) orInto(src bitset) (changed bool) {
	for i := range b {
		old := b[i]
		b[i] |= src[i]
		changed = changed || b[i] != old
	}
	return changed
}

func (b bitset) copyFrom(src bitset) {
	copy(b, src)
}

// A defSite is one definition of one variable.
type defSite struct {
	id int
	v  *types.Var
	// node is the defining statement, or the function node itself for
	// parameter/receiver/named-result entry definitions.
	node ast.Node
	// blk/pos locate the def on the CFG: block index and node index
	// within the block. Entry defs use blk 0 (entry), pos -1.
	blk int
	pos int
}

// ReachDefs holds the reaching-definitions solution for one function.
type ReachDefs struct {
	cfg   *CFG
	defs  []defSite
	byVar map[*types.Var][]int
	// in[b] = defs live at the top of block b.
	in []bitset
}

// reachingDefs solves reaching definitions for the function underlying
// cfg. info supplies the identifier→object resolution.
func reachingDefs(cfg *CFG, info *types.Info) *ReachDefs {
	rd := &ReachDefs{cfg: cfg, byVar: map[*types.Var][]int{}}

	addDef := func(v *types.Var, node ast.Node, blk, pos int) {
		if v == nil {
			return
		}
		id := len(rd.defs)
		rd.defs = append(rd.defs, defSite{id: id, v: v, node: node, blk: blk, pos: pos})
		rd.byVar[v] = append(rd.byVar[v], id)
	}
	varOf := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
		return nil
	}

	// Entry definitions: parameters, receiver, named results.
	var ftype *ast.FuncType
	var recv *ast.FieldList
	switch f := cfg.Fn.(type) {
	case *ast.FuncDecl:
		ftype, recv = f.Type, f.Recv
	case *ast.FuncLit:
		ftype = f.Type
	}
	entryFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				addDef(varOf(name), cfg.Fn, cfg.Entry.Index, -1)
			}
		}
	}
	entryFields(recv)
	if ftype != nil {
		entryFields(ftype.Params)
		entryFields(ftype.Results)
	}

	// Statement definitions, in block/node order.
	for _, blk := range cfg.Blocks {
		for pos, n := range blk.Nodes {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					addDef(varOf(lhs), s, blk.Index, pos)
				}
			case *ast.IncDecStmt:
				addDef(varOf(s.X), s, blk.Index, pos)
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, name := range vs.Names {
								addDef(varOf(name), s, blk.Index, pos)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if s.Key != nil {
					addDef(varOf(s.Key), s, blk.Index, pos)
				}
				if s.Value != nil {
					addDef(varOf(s.Value), s, blk.Index, pos)
				}
			}
		}
	}

	n := len(rd.defs)
	rd.in = make([]bitset, len(cfg.Blocks))
	out := make([]bitset, len(cfg.Blocks))
	for i := range cfg.Blocks {
		rd.in[i] = newBitset(n)
		out[i] = newBitset(n)
	}

	// transfer applies block b's defs to state (in place).
	transfer := func(b *Block, state bitset) {
		for _, d := range rd.defs {
			if d.blk != b.Index {
				continue
			}
			// Defs are appended in (block, pos) order, so iterating the
			// full def list in order applies them in execution order.
			for _, other := range rd.byVar[d.v] {
				state.clear(other)
			}
			state.set(d.id)
		}
	}

	// Seed entry with parameter defs.
	for _, d := range rd.defs {
		if d.pos == -1 {
			rd.in[cfg.Entry.Index].set(d.id)
		}
	}

	// Worklist to fixpoint.
	work := make([]*Block, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	inWork := make([]bool, len(cfg.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	scratch := newBitset(n)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		scratch.copyFrom(rd.in[b.Index])
		transfer(b, scratch)
		if !outEqual(out[b.Index], scratch) {
			out[b.Index].copyFrom(scratch)
			for _, s := range b.Succs {
				if rd.in[s.Index].orInto(out[b.Index]) && !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	return rd
}

func outEqual(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefsAt returns the definition statements of v that may reach the
// given statement-level node (a node placed on the CFG). The defining
// statement for parameter/entry defs is the function node itself. A nil
// result means no def reaches (v is not a tracked local, or the node is
// not on the graph).
func (rd *ReachDefs) DefsAt(at ast.Node, v *types.Var) []ast.Node {
	blk, pos := rd.cfg.BlockOf(at)
	if blk == nil {
		return nil
	}
	state := newBitset(len(rd.defs))
	state.copyFrom(rd.in[blk.Index])
	// Apply in-block defs strictly before the queried node.
	for _, d := range rd.defs {
		if d.blk != blk.Index || d.pos < 0 || d.pos >= pos {
			continue
		}
		for _, other := range rd.byVar[d.v] {
			state.clear(other)
		}
		state.set(d.id)
	}
	var nodes []ast.Node
	for _, id := range rd.byVar[v] {
		if state.has(id) {
			nodes = append(nodes, rd.defs[id].node)
		}
	}
	return nodes
}

// DefNodes returns every definition statement recorded for v, in
// program order. Rules use it to enumerate a variable's write sites
// without re-walking the AST.
func (rd *ReachDefs) DefNodes(v *types.Var) []ast.Node {
	var nodes []ast.Node
	for _, id := range rd.byVar[v] {
		nodes = append(nodes, rd.defs[id].node)
	}
	return nodes
}

// Vars lists the variables with at least one tracked definition, in
// declaration-position order (deterministic).
func (rd *ReachDefs) Vars() []*types.Var {
	vars := make([]*types.Var, 0, len(rd.byVar))
	for v := range rd.byVar {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	return vars
}
