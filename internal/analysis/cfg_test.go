package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src (a complete function declaration) and returns
// its *ast.FuncDecl.
func parseFunc(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "cfgtest.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd
		}
	}
	t.Fatalf("no func decl in %q", src)
	return nil
}

// reachesExit reports whether Exit is reachable from Entry.
func reachesExit(c *CFG) bool {
	return c.PathExistsAvoiding([]*Block{c.Entry}, c.Exit, nil)
}

// countEdges sums len(Succs) over all blocks.
func countEdges(c *CFG) int {
	n := 0
	for _, b := range c.Blocks {
		n += len(b.Succs)
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	fn := parseFunc(t, `func f() { x := 1; _ = x }`)
	c := buildCFG(fn)
	if c.Entry == nil || c.Exit == nil {
		t.Fatal("missing entry/exit")
	}
	if len(c.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should edge straight to exit, got %v", c.Entry.Succs)
	}
	if len(c.Exit.Preds) != 1 || c.Exit.Preds[0] != c.Entry {
		t.Fatalf("exit preds = %v, want [entry]", c.Exit.Preds)
	}
}

func TestCFGEmptyBody(t *testing.T) {
	fn := parseFunc(t, `func f() {}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("empty body must reach exit")
	}
	if len(c.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (entry+exit)", len(c.Blocks))
	}
}

func TestCFGIfElse(t *testing.T) {
	fn := parseFunc(t, `func f(a bool) int {
	if a {
		return 1
	} else {
		return 2
	}
}`)
	c := buildCFG(fn)
	// Entry (cond) branches to then and else; both return to Exit.
	if got := len(c.Entry.Succs); got != 2 {
		t.Fatalf("cond succs = %d, want 2", got)
	}
	for _, s := range c.Entry.Succs {
		if len(s.Succs) != 1 || s.Succs[0] != c.Exit {
			t.Fatalf("branch %d should return to exit, has succs %v", s.Index, s.Succs)
		}
	}
}

func TestCFGIfNoElse(t *testing.T) {
	fn := parseFunc(t, `func f(a bool) {
	if a {
		println("yes")
	}
	println("after")
}`)
	c := buildCFG(fn)
	// cond → then → join, cond → join. The join holds the trailing call.
	if got := len(c.Entry.Succs); got != 2 {
		t.Fatalf("cond succs = %d, want 2 (then, join)", got)
	}
	if !reachesExit(c) {
		t.Fatal("must reach exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	fn := parseFunc(t, `func f() {
	for i := 0; i < 10; i++ {
		println(i)
	}
	println("done")
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("bounded loop must reach exit")
	}
	// The header must have a back edge: some block's successor list
	// contains a block with a smaller index (the loop header).
	hasBack := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != c.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("for loop should produce a back edge")
	}
}

func TestCFGInfiniteFor(t *testing.T) {
	fn := parseFunc(t, `func f() {
	for {
		println("spin")
	}
}`)
	c := buildCFG(fn)
	if reachesExit(c) {
		t.Fatal("for {} with no break must not reach exit")
	}
}

func TestCFGInfiniteForWithBreak(t *testing.T) {
	fn := parseFunc(t, `func f(a bool) {
	for {
		if a {
			break
		}
	}
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("break must restore a path to exit")
	}
}

func TestCFGRange(t *testing.T) {
	fn := parseFunc(t, `func f(m map[string]int) {
	for k := range m {
		println(k)
	}
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("range must reach exit")
	}
	// The RangeStmt node itself must be on the graph (header block), so
	// rules can locate iteration scopes.
	var rng *ast.RangeStmt
	ast.Inspect(fn, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			rng = r
		}
		return true
	})
	if blk, _ := c.BlockOf(rng); blk == nil {
		t.Fatal("RangeStmt not placed on the CFG")
	}
}

func TestCFGSwitch(t *testing.T) {
	fn := parseFunc(t, `func f(x int) int {
	switch x {
	case 1:
		return 10
	case 2:
		return 20
	}
	return 0
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("switch must reach exit")
	}
	// No default: the dispatch block needs an edge skipping all clauses.
	// Find the dispatch block (holds the tag expression) and check it
	// has 3 successors (case1, case2, join).
	var tag ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if sw, ok := n.(*ast.SwitchStmt); ok {
			tag = sw.Tag
		}
		return true
	})
	blk, _ := c.BlockOf(tag)
	if blk == nil {
		t.Fatal("switch tag not on graph")
	}
	if got := len(blk.Succs); got != 3 {
		t.Fatalf("default-less switch dispatch succs = %d, want 3", got)
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	fn := parseFunc(t, `func f(x int) int {
	switch {
	case x > 0:
		return 1
	default:
		return -1
	}
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("switch with returns in all clauses still reaches exit via them")
	}
	// With a default and all clauses returning, the join block (empty,
	// not entry/exit) must be unreachable from entry: no skip edge.
	for _, b := range c.Blocks {
		if len(b.Nodes) == 0 && b != c.Exit && b != c.Entry {
			if c.PathExistsAvoiding([]*Block{c.Entry}, b, nil) {
				t.Fatalf("join block %d reachable: switch with default got a skip edge", b.Index)
			}
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	fn := parseFunc(t, `func f(x int) {
	switch x {
	case 1:
		println("one")
		fallthrough
	case 2:
		println("two")
	}
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("must reach exit")
	}
	// Locate the two case-body prints; a path must exist from the first
	// clause's block into the second clause's block.
	var prints []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			prints = append(prints, es)
		}
		return true
	})
	if len(prints) != 2 {
		t.Fatalf("prints = %d, want 2", len(prints))
	}
	b1, _ := c.BlockOf(prints[0])
	b2, _ := c.BlockOf(prints[1])
	if b1 == nil || b2 == nil {
		t.Fatal("case bodies not on graph")
	}
	if !c.PathExistsAvoiding([]*Block{b1}, b2, nil) {
		t.Fatal("fallthrough edge missing: case 1 body must flow into case 2 body")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	fn := parseFunc(t, `func f(v any) {
	switch v.(type) {
	case int:
		println("int")
	case string:
		println("string")
	default:
		println("other")
	}
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("type switch must reach exit")
	}
}

func TestCFGSelect(t *testing.T) {
	fn := parseFunc(t, `func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}`)
	c := buildCFG(fn)
	// Both clauses return; select without default has no skip edge, so
	// exit is reachable only through the clause returns.
	if !reachesExit(c) {
		t.Fatal("select clauses return; exit must be reachable")
	}
	// The comm statements must be on the graph.
	n := 0
	ast.Inspect(fn, func(node ast.Node) bool {
		if cc, ok := node.(*ast.CommClause); ok && cc.Comm != nil {
			if blk, _ := c.BlockOf(cc.Comm); blk != nil {
				n++
			}
		}
		return true
	})
	if n != 2 {
		t.Fatalf("comm statements on graph = %d, want 2", n)
	}
}

func TestCFGSelectNoSkipEdge(t *testing.T) {
	// A default-less select must NOT get a dispatch→join shortcut: if
	// every clause returns, the code after the select is unreachable.
	fn := parseFunc(t, `func f(a chan int) {
	select {
	case <-a:
		return
	}
	println("after")
}`)
	c := buildCFG(fn)
	var after ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
					after = es
				}
			}
		}
		return true
	})
	blk, _ := c.BlockOf(after)
	if blk == nil {
		t.Fatal("trailing statement not on graph")
	}
	if c.PathExistsAvoiding([]*Block{c.Entry}, blk, nil) {
		t.Fatal("code after a returning single-clause select must be unreachable")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	fn := parseFunc(t, `func f(a bool) {
	if a {
		panic("boom")
	}
	println("after")
}`)
	c := buildCFG(fn)
	var panicStmt, after ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "panic":
				panicStmt = es
			case "println":
				after = es
			}
		}
		return true
	})
	pb, _ := c.BlockOf(panicStmt)
	ab, _ := c.BlockOf(after)
	if pb == nil || ab == nil {
		t.Fatal("statements not on graph")
	}
	// The panic block's only successor is Exit — no flow into "after".
	if len(pb.Succs) != 1 || pb.Succs[0] != c.Exit {
		t.Fatalf("panic block succs = %v, want [exit]", pb.Succs)
	}
	if c.PathExistsAvoiding([]*Block{pb}, ab, nil) {
		t.Fatal("no path may lead from panic to the following statement")
	}
}

func TestCFGDeferIsANode(t *testing.T) {
	fn := parseFunc(t, `func f() {
	defer println("cleanup")
	println("work")
}`)
	c := buildCFG(fn)
	var def ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			def = d
		}
		return true
	})
	blk, idx := c.BlockOf(def)
	if blk == nil {
		t.Fatal("defer statement must appear on the graph")
	}
	if idx != 0 {
		t.Fatalf("defer is the first statement; idx = %d", idx)
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	fn := parseFunc(t, `func f(err error) error {
	if err != nil {
		return err
	}
	println("ok")
	return nil
}`)
	c := buildCFG(fn)
	// Two returns → Exit has ≥2 preds.
	if len(c.Exit.Preds) < 2 {
		t.Fatalf("exit preds = %d, want >= 2", len(c.Exit.Preds))
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	fn := parseFunc(t, `func f(grid [][]int) int {
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] < 0 {
				break outer
			}
			if grid[i][j] == 0 {
				continue outer
			}
			println(j)
		}
	}
	return 0
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("labeled loop must reach exit")
	}
	// break outer must edge out of both loops: from the break's block
	// there must be a path to Exit that avoids every block containing a
	// println call (i.e. without re-entering the inner loop body tail).
	var brk ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.BREAK {
			brk = b
		}
		return true
	})
	bb, _ := c.BlockOf(brk)
	if bb == nil {
		t.Fatal("break not on graph")
	}
	avoidPrintln := func(b *Block) bool {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						return true
					}
				}
			}
		}
		return false
	}
	if !c.PathExistsAvoiding([]*Block{bb}, c.Exit, avoidPrintln) {
		t.Fatal("break outer must escape both loops without re-entering the body")
	}
}

func TestCFGGoto(t *testing.T) {
	fn := parseFunc(t, `func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("goto loop must still reach exit")
	}
	// goto produces a back edge to the labeled block.
	hasBack := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != c.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("goto should produce a back edge")
	}
}

func TestCFGFuncLitNotInlined(t *testing.T) {
	fn := parseFunc(t, `func f() {
	g := func() { panic("inner") }
	g()
}`)
	c := buildCFG(fn)
	// The inner panic belongs to the FuncLit's own CFG; the outer graph
	// must flow straight through to exit.
	if !reachesExit(c) {
		t.Fatal("outer function must reach exit; inner panic is not its control flow")
	}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						t.Fatal("FuncLit body leaked into the enclosing CFG")
					}
				}
			}
		}
	}
	// And the FuncLit itself builds its own graph.
	var lit *ast.FuncLit
	ast.Inspect(fn, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	inner := buildCFG(lit)
	if len(inner.Blocks) < 2 {
		t.Fatal("FuncLit CFG missing")
	}
}

func TestCFGNilBody(t *testing.T) {
	fn := parseFunc(t, `func f()`)
	c := buildCFG(fn)
	if !reachesExit(c) {
		t.Fatal("declaration-only function: entry must edge to exit")
	}
}

func TestCFGDeadCodeParked(t *testing.T) {
	fn := parseFunc(t, `func f() int {
	return 1
	println("dead")
}`)
	c := buildCFG(fn)
	var dead ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			dead = es
		}
		return true
	})
	blk, _ := c.BlockOf(dead)
	if blk == nil {
		t.Fatal("dead code must still be placed on the graph")
	}
	if c.PathExistsAvoiding([]*Block{c.Entry}, blk, nil) {
		t.Fatal("dead code must be unreachable from entry")
	}
}

func TestCFGPredsConsistent(t *testing.T) {
	fn := parseFunc(t, `func f(x int) int {
	for i := 0; i < x; i++ {
		switch {
		case i%2 == 0:
			continue
		default:
			if i > 5 {
				return i
			}
		}
	}
	return -1
}`)
	c := buildCFG(fn)
	// Preds must mirror Succs exactly.
	fwd := map[[2]int]bool{}
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			fwd[[2]int{b.Index, s.Index}] = true
		}
	}
	back := map[[2]int]bool{}
	for _, b := range c.Blocks {
		for _, p := range b.Preds {
			back[[2]int{p.Index, b.Index}] = true
		}
	}
	if len(fwd) != len(back) {
		t.Fatalf("edge sets differ: %d forward, %d backward", len(fwd), len(back))
	}
	for e := range fwd {
		if !back[e] {
			t.Fatalf("edge %v present in Succs but not Preds", e)
		}
	}
	if n := countEdges(c); n != len(fwd) {
		t.Fatalf("duplicate edges: counted %d, unique %d", n, len(fwd))
	}
}
