package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The analyzer tests are golden-file style: each directory under
// testdata/src is one package, loaded under a chosen import path (so
// per-package exemptions and contract targeting fire exactly as they
// would in the real module), and every expected finding is written as
// a trailing comment on the offending line:
//
//	keys = append(keys, k) // want "append to keys inside a map range"
//
// Several expectations on one line are written as several quoted
// fragments after one `// want`. Every diagnostic must match a
// fragment on its line and every fragment must be consumed, so both
// false positives and false negatives fail the test.

var wantRe = regexp.MustCompile(`^// want\s+(.+)$`)
var fragRe = regexp.MustCompile(`"([^"]*)"`)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		dir      string
		path     string
		analyzer *Analyzer
	}{
		{"detrand", "leodivide/lintest/detrand", Detrand},
		{"detrand_obs", "leodivide/internal/obs", Detrand},
		{"detrand_econ", "leodivide/internal/econ", Detrand},
		{"maporder", "leodivide/lintest/maporder", Maporder},
		{"floatcmp", "leodivide/lintest/floatcmp", Floatcmp},
		{"floatcmp_testutil", "leodivide/internal/testutil", Floatcmp},
		{"errdrop", "leodivide/lintest/errdrop", Errdrop},
		{"lockbalance", "leodivide/lintest/lockbalance", Lockbalance},
		{"waitbalance", "leodivide/lintest/waitbalance", Waitbalance},
		{"goroutinecapture", "leodivide/lintest/goroutinecapture", Goroutinecapture},
		{"maptaint", "leodivide/lintest/maptaint", Maptaint},
		{"ctxfirst_par", "leodivide/internal/par", Ctxfirst},
		{"ctxfirst_root", "leodivide", Ctxfirst},
		{"ctxfirst_serve", "leodivide/internal/serve", Ctxfirst},
	}
	loader := testLoader(t)
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", tc.dir), tc.path)
			if err != nil {
				t.Fatalf("loading %s: %v", tc.dir, err)
			}
			wants := collectWants(t, loader, pkg)
			diags := RunPackage(pkg, loader, []*Analyzer{tc.analyzer})
			for _, d := range diags {
				if !consumeWant(wants, d.Line, d.Message) {
					t.Errorf("unexpected diagnostic at line %d: %s", d.Line, d.Message)
				}
			}
			for line, frags := range wants {
				for _, frag := range frags {
					t.Errorf("line %d: expected a diagnostic containing %q, got none", line, frag)
				}
			}
		})
	}
}

// collectWants parses the `// want "..."` expectation comments of a
// single-file testdata package into line → unmatched fragments.
func collectWants(t *testing.T, loader *Loader, pkg *Package) map[int][]string {
	t.Helper()
	wants := map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := loader.Fset.Position(c.Pos()).Line
				frags := fragRe.FindAllStringSubmatch(m[1], -1)
				if len(frags) == 0 {
					t.Fatalf("line %d: `// want` with no quoted fragment", line)
				}
				for _, fm := range frags {
					wants[line] = append(wants[line], fm[1])
				}
			}
		}
	}
	return wants
}

func consumeWant(wants map[int][]string, line int, message string) bool {
	frags := wants[line]
	for i, frag := range frags {
		if strings.Contains(message, frag) {
			wants[line] = append(frags[:i], frags[i+1:]...)
			if len(wants[line]) == 0 {
				delete(wants, line)
			}
			return true
		}
	}
	return false
}
