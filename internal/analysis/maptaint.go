package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maptaint is the dataflow upgrade of maporder: instead of flagging
// syntactic shapes inside a map range, it tracks which values are
// *derived* from the iteration — the key and value variables, and
// anything assigned from them through locals — using the per-function
// reaching-definitions solution, and flags the derived flows whose
// result depends on iteration order:
//
//   - order-dependent accumulation: `x += t`, `x -= t`, `x *= t`, or
//     `x = x + t` into a float or string declared outside the loop,
//     where t is iteration-derived. Float rounding and string
//     concatenation both bake the (random) order into the value;
//     integer sums are order-independent and stay quiet, as does adding
//     a loop-invariant amount per entry.
//   - last-writer-wins overwrites: a plain unguarded `x = t` of an
//     iteration-derived value into an outer variable — the final value
//     is whichever entry the runtime happened to visit last.
//   - order-dependent selection: a guarded `x = t` (argmax/argmin
//     shapes) whose guard compares only iteration *values*, with no
//     deterministic key tie-break. `if n > best { county, best = f, n }`
//     picks a random county among ties; adding `|| (n == best && f <
//     county)` makes it deterministic and makes the rule pass, as does
//     assigning only the compared quantity itself (a pure max).
//
// Taint is tracked per (definition, variable), so a multi-assignment
// taints each target with its own source: after `county, best = f, n`,
// county carries key-taint and best carries value-taint only — which is
// exactly what makes the tie-break test sound. Bucketed writes keyed by
// the iteration key (`m[k] = ...`) are order-independent and never
// flagged. maporder keeps the syntactic clauses (appends and in-loop
// output); this rule owns everything that needs taint to decide.
var Maptaint = &Analyzer{
	Name: "maptaint",
	Doc: "values derived from map iteration (through locals and accumulators) flowing into " +
		"order-dependent sinks: float/string accumulation, last-writer-wins overwrites, and " +
		"guarded selections with no key tie-break",
	Engine: EngineDataflow,
	Run:    maptaintRun,
}

func maptaintRun(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				maptaintFunc(p, n)
			}
			return true
		})
	}
}

// taint classifies how a value derives from the iteration.
type taint struct {
	// key: derived from the range key variable — usable as a
	// deterministic tie-break.
	key bool
	// any: derived from the key or the value.
	any bool
}

func (t taint) or(o taint) taint { return taint{key: t.key || o.key, any: t.any || o.any} }

func maptaintFunc(p *Pass, fn ast.Node) {
	cfg := p.CFG(fn)
	// Map-range statements on this function's own CFG (nested closures
	// build their own graphs and are visited separately).
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				maptaintLoop(p, fn, cfg, rs)
			}
		}
	}
}

// defVar resolves an identifier (in defining or using position) to its
// variable.
func defVar(p *Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// loopTaint is the taint state for one map-range loop: per (definition
// node, variable) classification, plus the solver inputs.
type loopTaint struct {
	p    *Pass
	rd   *ReachDefs
	defs map[ast.Node]map[*types.Var]taint
}

// varAt returns the taint of v at CFG node n: the union over the
// tainted definitions of v reaching n.
func (lt *loopTaint) varAt(n ast.Node, v *types.Var) taint {
	var tt taint
	if v == nil {
		return tt
	}
	for _, def := range lt.rd.DefsAt(n, v) {
		tt = tt.or(lt.defs[def][v])
	}
	return tt
}

// exprAt returns the union taint over the identifiers expr uses (not
// entering nested closures), evaluated at CFG node n.
func (lt *loopTaint) exprAt(n ast.Node, expr ast.Expr) taint {
	var tt taint
	inspectShallow(expr, func(x ast.Node) {
		id, ok := x.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := lt.p.Info.Uses[id].(*types.Var); ok {
			tt = tt.or(lt.varAt(n, v))
		}
	})
	return tt
}

func (lt *loopTaint) mark(n ast.Node, v *types.Var, tt taint) (changed bool) {
	if v == nil || !tt.any {
		return false
	}
	m := lt.defs[n]
	if m == nil {
		m = map[*types.Var]taint{}
		lt.defs[n] = m
	}
	old := m[v]
	merged := old.or(tt)
	m[v] = merged
	return merged != old
}

func maptaintLoop(p *Pass, fn ast.Node, cfg *CFG, rs *ast.RangeStmt) {
	lt := &loopTaint{p: p, rd: p.Reaching(fn), defs: map[ast.Node]map[*types.Var]taint{}}

	// Seed: the range statement defines the key (key-taint) and the
	// value (value-taint) on every iteration.
	lt.mark(rs, defVar(p, rs.Key), taint{key: true, any: true})
	lt.mark(rs, defVar(p, rs.Value), taint{any: true})

	inBody := func(n ast.Node) bool {
		return n.Pos() >= rs.Body.Pos() && n.End() <= rs.Body.End()
	}

	// The loop body's assignment-like CFG nodes, in block order.
	var bodyAssigns []ast.Node
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			switch n.(type) {
			case *ast.AssignStmt, *ast.IncDecStmt:
				if inBody(n) {
					bodyAssigns = append(bodyAssigns, n)
				}
			}
		}
	}

	// Propagate to a fixpoint: each assignment taints each of its
	// targets with its own right-hand side's taint (pairwise when the
	// counts line up; the whole RHS for tuple-returning forms). op= and
	// ++/-- also read their target.
	for changed := true; changed; {
		changed = false
		for _, n := range bodyAssigns {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					v := defVar(p, lhs)
					if v == nil {
						continue
					}
					var tt taint
					if len(s.Rhs) == len(s.Lhs) {
						tt = lt.exprAt(n, s.Rhs[i])
					} else {
						for _, rhs := range s.Rhs {
							tt = tt.or(lt.exprAt(n, rhs))
						}
					}
					if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
						tt = tt.or(lt.varAt(n, v)) // x op= t reads x too
					}
					if lt.mark(n, v, tt) {
						changed = true
					}
				}
			case *ast.IncDecStmt:
				v := defVar(p, s.X)
				if lt.mark(n, v, lt.varAt(n, v)) {
					changed = true
				}
			}
		}
	}

	for _, n := range bodyAssigns {
		if as, ok := n.(*ast.AssignStmt); ok {
			maptaintAssign(p, rs, as, lt)
		}
		// ++/-- on an outer counter is an order-independent count.
	}
}

// outerVar resolves lhs to a variable declared outside the range loop,
// or nil (loop-local scratch and non-ident targets are not sinks; a
// bucketed `m[k] = ...` write has an index LHS and lands here as nil).
func outerVar(p *Pass, rs *ast.RangeStmt, lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := p.Info.ObjectOf(id).(*types.Var)
	if !ok || within(v.Pos(), rs) {
		return nil
	}
	return v
}

// isOrderSensitiveType: accumulating floats is order-dependent through
// rounding; concatenating strings through position. Integer + is
// associative and commutative, so int accumulators stay quiet.
func isOrderSensitiveType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// selfRef reports whether expr mentions v outside nested closures
// (`x = x + t` accumulation spelled without op=).
func selfRef(p *Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	inspectShallow(expr, func(x ast.Node) {
		if id, ok := x.(*ast.Ident); ok && p.Info.ObjectOf(id) == v {
			found = true
		}
	})
	return found
}

// guardOf returns the innermost if statement inside the loop body whose
// arms contain the assignment, or nil for an unguarded one.
func guardOf(rs *ast.RangeStmt, as *ast.AssignStmt) *ast.IfStmt {
	var innermost *ast.IfStmt
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if as.Pos() >= ifs.Body.Pos() && as.End() <= ifs.End() {
			innermost = ifs // keep descending; deeper ifs overwrite
		}
		return true
	})
	return innermost
}

func maptaintAssign(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, lt *loopTaint) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		v := outerVar(p, rs, as.Lhs[0])
		if v == nil || !isOrderSensitiveType(v.Type()) {
			return
		}
		if lt.exprAt(as, as.Rhs[0]).any {
			p.Reportf(as.Pos(), "%s accumulates an iteration-derived value over a map range; the result depends on iteration order (%s) — iterate sorted keys", v.Name(), orderWhy(v.Type()))
		}
		return
	case token.ASSIGN:
		// fall through to the overwrite/selection analysis
	default:
		return // := binds fresh per-iteration locals; other op= (&=, |=, ...) are order-independent
	}

	// Outer targets assigned a tainted value.
	var outs []*types.Var
	for i, lhs := range as.Lhs {
		v := outerVar(p, rs, lhs)
		if v == nil {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if !lt.exprAt(as, rhs).any {
			continue
		}
		// Accumulation spelled long-form: x = x + t.
		if len(as.Lhs) == 1 && selfRef(p, rhs, v) {
			if isOrderSensitiveType(v.Type()) {
				p.Reportf(as.Pos(), "%s accumulates an iteration-derived value over a map range; the result depends on iteration order (%s) — iterate sorted keys", v.Name(), orderWhy(v.Type()))
			}
			return
		}
		outs = append(outs, v)
	}
	if len(outs) == 0 {
		return
	}

	guard := guardOf(rs, as)
	if guard == nil {
		p.Reportf(as.Pos(), "%s is overwritten on every map iteration; the surviving value is whichever entry the runtime visits last — select deterministically or iterate sorted keys", outs[0].Name())
		return
	}
	// Deterministic if the guard consults the iteration key (a
	// tie-break), directly or through a key-derived variable.
	keyBreak := false
	inspectShallow(guard.Cond, func(x ast.Node) {
		id, ok := x.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := p.Info.Uses[id].(*types.Var); ok && lt.varAt(guard.Cond, v).key {
			keyBreak = true
		}
	})
	if keyBreak {
		return
	}
	// A pure max/min: every assigned target is itself compared in the
	// guard, so the surviving value is order-independent.
	allCompared := true
	for _, v := range outs {
		if !selfRef(p, guard.Cond, v) {
			allCompared = false
		}
	}
	if allCompared {
		return
	}
	p.Reportf(as.Pos(), "selection of %s depends on map iteration order: the guard compares iteration values with no key tie-break, so ties resolve randomly — add a deterministic tie-break on the key", outs[0].Name())
}

// orderWhy names the mechanism for the accumulation message.
func orderWhy(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		return "concatenation order"
	}
	return "float rounding"
}
