package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Schema identifies the -json output format of leodivide-lint. v2
// added the per-rule engine list and the suppression count (the
// ratchet input); see DESIGN.md §16.
const Schema = "leodivide-lint/v2"

// DefaultAnalyzers is the full rule suite, in catalog order
// (DESIGN.md §11, §16): the five syntax rules from PR 5 followed by
// the four dataflow rules.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Detrand, Maporder, Floatcmp, Errdrop, Ctxfirst,
		Lockbalance, Waitbalance, Goroutinecapture, Maptaint,
	}
}

// Select returns the analyzers named in the comma-separated rules
// list, or all of them when rules is empty.
func Select(rules string) ([]*Analyzer, error) {
	all := DefaultAnalyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %s)", name, ruleNames(all))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func ruleNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Run loads the packages matching patterns (relative to moduleDir),
// applies the analyzers, resolves suppression comments, and returns
// the surviving diagnostics with module-root-relative file paths,
// sorted by position. A non-nil error means the lint could not run
// (unparseable or ill-typed code), not that findings exist.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithStats(moduleDir, patterns, analyzers)
	return diags, err
}

// Stats summarizes a lint run beyond its findings. Suppressions is the
// number of well-formed `//lint:ignore` directives encountered in the
// linted packages (testdata is never loaded, so golden fixtures don't
// count) — the input to the suppression ratchet (make lint-ratchet).
type Stats struct {
	Suppressions int `json:"suppressions"`
}

// RunWithStats is Run plus the run's Stats.
func RunWithStats(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, Stats, error) {
	var stats Stats
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, stats, err
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, stats, err
	}
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}

	var diags []Diagnostic
	var sups []*suppression
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, stats, err
		}
		diags = append(diags, RunPackage(pkg, loader, analyzers)...)
		sups = append(sups, collectSuppressions(pkg, loader.Fset, known, func(d Diagnostic) {
			diags = append(diags, d)
		})...)
	}
	stats.Suppressions = len(sups)
	diags = applySuppressions(diags, sups, enabled, loader.Fset)
	for i := range diags {
		if rel, err := filepath.Rel(moduleDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	sortDiagnostics(diags)
	return diags, stats, nil
}

// RunPackage applies the analyzers to one loaded package and returns
// the raw (unsuppressed) diagnostics.
func RunPackage(pkg *Package, loader *Loader, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	// One funcCache per package: the four dataflow rules share each
	// function's CFG and reaching-defs solution instead of rebuilding.
	funcs := &funcCache{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			funcs:    funcs,
		}
		a.Run(pass)
	}
	return diags
}

// RuleInfo names one rule and its engine class in the -json report.
type RuleInfo struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
}

// Report is the machine-readable result envelope written by -json.
type Report struct {
	Schema       string       `json:"schema"`
	Rules        []RuleInfo   `json:"rules"`
	Diagnostics  []Diagnostic `json:"diagnostics"`
	Count        int          `json:"count"`
	Suppressions int          `json:"suppressions"`
}

// WriteJSON writes the diagnostics as a Report in the stable
// leodivide-lint/v2 schema: the rules that ran (with their engine
// class), the surviving findings, and the suppression-directive count
// feeding the ratchet.
func WriteJSON(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, stats Stats) error {
	rules := make([]RuleInfo, len(analyzers))
	for i, a := range analyzers {
		engine := a.Engine
		if engine == "" {
			engine = EngineSyntax
		}
		rules[i] = RuleInfo{Name: a.Name, Engine: engine}
	}
	rep := Report{
		Schema:       Schema,
		Rules:        rules,
		Diagnostics:  diags,
		Count:        len(diags),
		Suppressions: stats.Suppressions,
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
