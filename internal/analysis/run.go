package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Schema identifies the -json output format of leodivide-lint.
const Schema = "leodivide-lint/v1"

// DefaultAnalyzers is the full rule suite, in catalog order
// (DESIGN.md §11).
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Floatcmp, Errdrop, Ctxfirst}
}

// Select returns the analyzers named in the comma-separated rules
// list, or all of them when rules is empty.
func Select(rules string) ([]*Analyzer, error) {
	all := DefaultAnalyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %s)", name, ruleNames(all))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func ruleNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Run loads the packages matching patterns (relative to moduleDir),
// applies the analyzers, resolves suppression comments, and returns
// the surviving diagnostics with module-root-relative file paths,
// sorted by position. A non-nil error means the lint could not run
// (unparseable or ill-typed code), not that findings exist.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}

	var diags []Diagnostic
	var sups []*suppression
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, RunPackage(pkg, loader, analyzers)...)
		sups = append(sups, collectSuppressions(pkg, loader.Fset, known, func(d Diagnostic) {
			diags = append(diags, d)
		})...)
	}
	diags = applySuppressions(diags, sups, enabled, loader.Fset)
	for i := range diags {
		if rel, err := filepath.Rel(moduleDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package and returns
// the raw (unsuppressed) diagnostics.
func RunPackage(pkg *Package, loader *Loader, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return diags
}

// Report is the machine-readable result envelope written by -json.
type Report struct {
	Schema      string       `json:"schema"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Count       int          `json:"count"`
}

// WriteJSON writes the diagnostics as a Report in the stable
// leodivide-lint/v1 schema.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	rep := Report{Schema: Schema, Diagnostics: diags, Count: len(diags)}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
