package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxfirst encodes the cancellation contract established in PR 1–3:
// every run flows through context, uniformly. Three checks:
//
//  1. In every package, a function that takes a context.Context must
//     take it as the first parameter (after the receiver).
//  2. In the contract packages — internal/par, internal/safeio,
//     internal/serve — every exported function whose last result is an
//     error must accept a context first: these are the blocking
//     building blocks everything else threads cancellation through
//     (and, for serve, the long-running request paths a shutdown must
//     be able to drain). In the root package the same holds for the
//     experiment registry surface: exported Model methods that consume
//     a *Dataset and can fail.
//  3. In those same packages, an exported function that accepts a
//     context must actually use it — an ignored ctx parameter
//     advertises cancellation it does not deliver.
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter everywhere; exported fallible functions in " +
		"internal/par, internal/safeio, internal/serve, and the experiment registry must take and actually thread one",
	Run: ctxfirstRun,
}

var ctxfirstContractPkgs = map[string]bool{
	"leodivide/internal/par":    true,
	"leodivide/internal/safeio": true,
	"leodivide/internal/serve":  true,
}

const ctxfirstRootPkg = "leodivide"

func ctxfirstRun(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			ctxfirstPosition(p, fd)
			if !fd.Name.IsExported() {
				continue
			}
			if ctxfirstContractPkgs[p.Path] && fd.Recv == nil {
				ctxfirstPresence(p, fd)
			}
			if p.Path == ctxfirstRootPkg && isModelMethod(p, fd) && hasDatasetParam(p, fd) {
				ctxfirstPresence(p, fd)
			}
			if ctxfirstContractPkgs[p.Path] || p.Path == ctxfirstRootPkg {
				ctxfirstThreaded(p, fd)
			}
		}
	}
}

// ctxfirstPosition: a ctx parameter anywhere but slot 0 is a contract
// violation in any package.
func ctxfirstPosition(p *Pass, fd *ast.FuncDecl) {
	flat := flatParams(p, fd)
	for i, t := range flat {
		if isContextType(t) && i != 0 {
			p.Reportf(fd.Pos(), "%s takes context.Context as parameter %d; context is always the first parameter", fd.Name.Name, i+1)
			return
		}
	}
}

// ctxfirstPresence: exported fallible contract functions must take ctx
// first.
func ctxfirstPresence(p *Pass, fd *ast.FuncDecl) {
	res := fd.Type.Results
	if res == nil || res.NumFields() == 0 {
		return
	}
	last := res.List[len(res.List)-1]
	if !isErrorType(p.Info.TypeOf(last.Type)) {
		return
	}
	flat := flatParams(p, fd)
	if len(flat) == 0 || !isContextType(flat[0]) {
		p.Reportf(fd.Pos(), "exported fallible %s.%s must take context.Context as its first parameter so callers can cancel it", shortPath(p.Path), fd.Name.Name)
	}
}

// ctxfirstThreaded: an exported function that accepts ctx must mention
// it in the body.
func ctxfirstThreaded(p *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return
	}
	first := fd.Type.Params.List[0]
	if !isContextType(p.Info.TypeOf(first.Type)) || len(first.Names) == 0 {
		return
	}
	name := first.Names[0]
	if name.Name == "_" {
		p.Reportf(fd.Pos(), "%s declares a blank context parameter; thread it through the work it guards", fd.Name.Name)
		return
	}
	obj := p.Info.Defs[name]
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	if !used {
		p.Reportf(fd.Pos(), "%s accepts a context but never uses it; cancellation is advertised but not delivered", fd.Name.Name)
	}
}

// flatParams expands the parameter list to one type per declared name
// (or one per anonymous field).
func flatParams(p *Pass, fd *ast.FuncDecl) []types.Type {
	var flat []types.Type
	for _, field := range fd.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flat = append(flat, t)
		}
	}
	return flat
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isModelMethod(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := p.Info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Model"
}

func hasDatasetParam(p *Pass, fd *ast.FuncDecl) bool {
	for _, t := range flatParams(p, fd) {
		if ptr, ok := t.(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "Dataset" &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == ctxfirstRootPkg {
				return true
			}
		}
	}
	return false
}

func shortPath(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
