package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSuppressions drives the whole suppression pipeline over the
// suppress testdata package: covered findings disappear, and unused /
// malformed / unknown-rule directives surface as rule "suppression"
// findings, exactly as Run composes the pieces.
func TestSuppressions(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppress"), "leodivide/lintest/suppress")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}

	diags := RunPackage(pkg, loader, []*Analyzer{Detrand})
	if len(diags) != 2 {
		t.Fatalf("want 2 raw detrand findings before suppression, got %d: %v", len(diags), diags)
	}
	sups := collectSuppressions(pkg, loader.Fset, known, func(d Diagnostic) {
		diags = append(diags, d)
	})
	got := applySuppressions(diags, sups, map[string]bool{"detrand": true}, loader.Fset)

	var messages []string
	for _, d := range got {
		if d.Rule != "suppression" {
			t.Errorf("finding survived suppression: %s", d)
			continue
		}
		messages = append(messages, d.Message)
	}
	wantSubstrings := []string{
		"malformed lint:ignore",
		"unknown rule nosuchrule",
		"unused lint:ignore for detrand",
	}
	if len(messages) != len(wantSubstrings) {
		t.Fatalf("want %d suppression findings, got %d: %v", len(wantSubstrings), len(messages), messages)
	}
	for _, want := range wantSubstrings {
		found := false
		for _, msg := range messages {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no suppression finding containing %q in %v", want, messages)
		}
	}
}

// The multi-rule directive edges: naming several rules suppresses only
// the named ones (a second rule's finding on the same line survives a
// directive that doesn't name it), and each named rule that silenced
// nothing is reported stale individually — a sibling rule firing on
// the same directive no longer vouches for the stale name.
func TestSuppressionsMultiRule(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppress_multi"), "leodivide/lintest/suppressmulti")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}
	diags := RunPackage(pkg, loader, []*Analyzer{Detrand, Floatcmp})
	sups := collectSuppressions(pkg, loader.Fset, known, func(d Diagnostic) {
		diags = append(diags, d)
	})
	got := applySuppressions(diags, sups, map[string]bool{"detrand": true, "floatcmp": true}, loader.Fset)

	var survivors, suppressionFindings []Diagnostic
	for _, d := range got {
		if d.Rule == "suppression" {
			suppressionFindings = append(suppressionFindings, d)
		} else {
			survivors = append(survivors, d)
		}
	}
	// mixed(): the directive names only floatcmp, so the detrand
	// finding on the same line must survive.
	if len(survivors) != 1 || survivors[0].Rule != "detrand" {
		t.Fatalf("want exactly the unnamed detrand finding to survive, got %v", survivors)
	}
	// now(): detrand fired and is used; floatcmp silenced nothing and
	// must be reported stale by name — and only it.
	if len(suppressionFindings) != 1 {
		t.Fatalf("want exactly 1 stale-suppression finding, got %v", suppressionFindings)
	}
	msg := suppressionFindings[0].Message
	if !strings.Contains(msg, "unused lint:ignore for floatcmp") || strings.Contains(msg, "detrand") {
		t.Fatalf("stale report must name floatcmp alone, got %q", msg)
	}
}

// A -rules run that never executed detrand cannot call its
// suppressions stale: unused reporting only fires for enabled rules.
func TestUnusedSuppressionQuietWhenRuleFiltered(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppress"), "leodivide/lintest/suppress")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}
	sups := collectSuppressions(pkg, loader.Fset, known, func(Diagnostic) {})
	got := applySuppressions(nil, sups, map[string]bool{"maporder": true}, loader.Fset)
	if len(got) != 0 {
		t.Fatalf("detrand suppressions reported unused on a maporder-only run: %v", got)
	}
}

// Directory patterns must resolve to real import paths: a package
// analyzed under a literal "." or "./x" path would silently dodge
// every path-keyed rule (package exemptions, the ctxfirst contract
// list). This regression-tests the "." case in particular, which once
// fell through to the verbatim-import-path branch.
func TestExpandResolvesImportPaths(t *testing.T) {
	loader := testLoader(t)
	cases := []struct {
		patterns []string
		want     []string
	}{
		{[]string{"."}, []string{"leodivide"}},
		{[]string{"./internal/par"}, []string{"leodivide/internal/par"}},
		{[]string{"leodivide/internal/obs"}, []string{"leodivide/internal/obs"}},
		{[]string{"./internal/par", "."}, []string{"leodivide", "leodivide/internal/par"}},
	}
	for _, tc := range cases {
		got, err := loader.Expand(tc.patterns)
		if err != nil {
			t.Fatalf("Expand(%v): %v", tc.patterns, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("Expand(%v) = %v; want %v", tc.patterns, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Expand(%v) = %v; want %v", tc.patterns, got, tc.want)
			}
		}
	}
	all, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range all {
		found[p] = true
	}
	for _, want := range []string{"leodivide", "leodivide/internal/analysis", "leodivide/cmd/leodivide-lint"} {
		if !found[want] {
			t.Errorf("Expand(./...) misses %s (got %d packages)", want, len(all))
		}
	}
	for p := range found {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand(./...) walked into testdata: %s", p)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(DefaultAnalyzers()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	picked, err := Select("errdrop, detrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "errdrop" || picked[1].Name != "detrand" {
		t.Fatalf("Select kept neither order nor subset: %v", picked)
	}
	if _, err := Select("bogus"); err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Fatalf("Select(bogus) error = %v; want unknown-rule error", err)
	}
}

func TestWriteJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, DefaultAnalyzers(), Stats{Suppressions: 4}); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema       string       `json:"schema"`
		Rules        []RuleInfo   `json:"rules"`
		Diagnostics  []Diagnostic `json:"diagnostics"`
		Count        int          `json:"count"`
		Suppressions int          `json:"suppressions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Count != 0 || rep.Diagnostics == nil {
		t.Fatalf("empty report = %+v; want schema %q, count 0, empty (non-null) diagnostics", rep, Schema)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Fatalf("empty diagnostics must serialize as [], not null: %s", buf.String())
	}
	if rep.Suppressions != 4 {
		t.Fatalf("suppressions = %d; want the Stats value 4", rep.Suppressions)
	}
	if len(rep.Rules) != len(DefaultAnalyzers()) {
		t.Fatalf("rules list has %d entries; want %d", len(rep.Rules), len(DefaultAnalyzers()))
	}
	engines := map[string]string{}
	for _, r := range rep.Rules {
		if r.Engine != EngineSyntax && r.Engine != EngineDataflow {
			t.Fatalf("rule %s reports engine %q; want %q or %q", r.Name, r.Engine, EngineSyntax, EngineDataflow)
		}
		engines[r.Name] = r.Engine
	}
	if engines["detrand"] != EngineSyntax || engines["lockbalance"] != EngineDataflow {
		t.Fatalf("engine column wrong: detrand=%q lockbalance=%q", engines["detrand"], engines["lockbalance"])
	}

	buf.Reset()
	d := Diagnostic{File: "x.go", Line: 3, Col: 7, Rule: "detrand", Message: "m"}
	if err := WriteJSON(&buf, []Diagnostic{d}, nil, Stats{}); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Count != 1 || len(rep.Diagnostics) != 1 || rep.Diagnostics[0] != d {
		t.Fatalf("round-trip lost the diagnostic: %+v", rep)
	}
}

// TestModuleLintClean is the bitrot gate: the full v2 rule suite —
// syntax and dataflow engines both — must run clean over the module
// itself, inside `go test`, so a reintroduced violation (or a
// deleted-but-needed suppression, or a stale one) fails CI even if
// nobody runs `make lint`. It also holds the suppression count to the
// committed LINT_SUPPRESSIONS budget, mirroring `make lint-ratchet`.
func TestModuleLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := DefaultAnalyzers()
	if len(analyzers) != 9 {
		t.Fatalf("default suite has %d rules, want the nine-rule v2 catalog", len(analyzers))
	}
	dataflow := 0
	for _, a := range analyzers {
		if a.Engine == EngineDataflow {
			dataflow++
		}
	}
	if dataflow < 4 {
		t.Fatalf("only %d dataflow-engine rules registered, want at least lockbalance/waitbalance/goroutinecapture/maptaint", dataflow)
	}
	diags, stats, err := RunWithStats(moduleDir, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("lint finding: %s", d)
	}
	raw, err := os.ReadFile(filepath.Join(moduleDir, "LINT_SUPPRESSIONS"))
	if err != nil {
		t.Fatalf("reading the committed suppression budget: %v", err)
	}
	budget := -1
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if budget, err = strconv.Atoi(line); err != nil {
			t.Fatalf("LINT_SUPPRESSIONS: bad budget line %q: %v", line, err)
		}
		break
	}
	if stats.Suppressions != budget {
		t.Errorf("module has %d //lint:ignore directives, LINT_SUPPRESSIONS says %d; keep the ratchet exact — fix the finding or spend the budget down in the same change", stats.Suppressions, budget)
	}
}
