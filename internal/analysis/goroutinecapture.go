package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutinecapture targets the capture bugs that produce
// scheduling-dependent results — exactly the shape of the PR 1
// stateOfFIPS race, where concurrent map writes from pooled workers
// made a "deterministic" experiment return different bytes run to run.
//
// Two clauses:
//
//  1. A concurrently-executed closure — the body of a `go` statement,
//     or a closure passed to internal/par's pooled executors — that
//     writes a variable captured from the enclosing function: a plain
//     assignment or ++/-- to a captured local/global, or a store into a
//     captured map. Writes that sit between a mu.Lock() and its
//     matching mu.Unlock() inside the closure are exempt, as are stores
//     into captured slices (the engine's sanctioned result pattern is
//     `out[i] = v` with a per-task index — disjoint slots are safe).
//     The check looks through the closure's whole subtree, but it does
//     not follow calls: a write hidden behind a helper function the
//     closure invokes is a known completeness hole (DESIGN §16).
//  2. A `go` or deferred closure inside a loop that references the loop
//     variable instead of receiving it as an argument. Per-iteration
//     loop variables (go.mod says go >= 1.22) make this
//     correctness-neutral today, but the explicit argument keeps the
//     data dependency visible and the code safe under older toolchain
//     semantics; the repo standardizes on it.
var Goroutinecapture = &Analyzer{
	Name: "goroutinecapture",
	Doc: "concurrently-executed closures (go statements, internal/par workers) writing captured " +
		"variables without holding a lock, and go/defer closures capturing loop variables " +
		"instead of taking them as arguments",
	Engine: EngineDataflow,
	Run:    goroutinecaptureRun,
}

func goroutinecaptureRun(p *Pass) {
	for _, f := range p.Files {
		// Loop stack: innermost-last loop statements enclosing the node
		// being visited, tracked to resolve clause 2.
		var loops []ast.Stmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n.(ast.Stmt))
				for _, c := range childStmts(n) {
					ast.Inspect(c, walk)
				}
				loops = loops[:len(loops)-1]
				return false
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					goroutinecaptureWrites(p, lit, "go statement")
					goroutinecaptureLoopVars(p, lit, loops, "go statement")
				}
				return true
			case *ast.DeferStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					goroutinecaptureLoopVars(p, lit, loops, "deferred closure")
				}
				return true
			case *ast.CallExpr:
				if name, ok := parExecutorCall(p, n); ok {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							goroutinecaptureWrites(p, lit, "par."+name+" worker")
						}
					}
				}
				return true
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// childStmts returns the sub-nodes of a loop statement that the manual
// walk must descend into (header expressions and the body).
func childStmts(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		var out []ast.Node
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		return append(out, n.Body)
	case *ast.RangeStmt:
		return []ast.Node{n.X, n.Body}
	}
	return nil
}

// parExecutorCall reports whether call invokes a function from the
// module's internal/par package (the pooled executors ForEach/Map/...),
// returning the function name.
func parExecutorCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || !strings.HasSuffix(pn.Imported().Path(), "internal/par") {
		return "", false
	}
	return sel.Sel.Name, true
}

// lockInterval is a textual Lock..Unlock span inside one closure; a
// write positionally inside a span is treated as lock-protected.
type lockInterval struct {
	from, to token.Pos
}

// lockIntervals scans the closure subtree for sync Lock/RLock calls
// and pairs each with the next Unlock/RUnlock on the same receiver
// expression (or the closure end when none follows, covering the
// Lock-then-defer-Unlock idiom).
func lockIntervals(p *Pass, lit *ast.FuncLit) []lockInterval {
	type acquire struct {
		recv string
		pos  token.Pos
	}
	var opens []acquire
	var spans []lockInterval
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := syncCallMethod(p, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock", "RLock":
			opens = append(opens, acquire{recv: recv, pos: call.Pos()})
		case "Unlock", "RUnlock":
			for i := len(opens) - 1; i >= 0; i-- {
				if opens[i].recv == recv {
					spans = append(spans, lockInterval{from: opens[i].pos, to: call.Pos()})
					opens = append(opens[:i], opens[i+1:]...)
					break
				}
			}
		}
		return true
	})
	for _, o := range opens {
		spans = append(spans, lockInterval{from: o.pos, to: lit.End()})
	}
	return spans
}

// goroutinecaptureWrites flags writes to captured variables inside a
// concurrently-executed closure (clause 1).
func goroutinecaptureWrites(p *Pass, lit *ast.FuncLit, how string) {
	locked := lockIntervals(p, lit)
	underLock := func(pos token.Pos) bool {
		for _, s := range locked {
			if pos >= s.from && pos <= s.to {
				return true
			}
		}
		return false
	}
	captured := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		v, ok := p.Info.ObjectOf(id).(*types.Var)
		if !ok || within(v.Pos(), lit) {
			return nil
		}
		return v
	}
	checkWrite := func(lhs ast.Expr, pos token.Pos) {
		if underLock(pos) {
			return
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if v := captured(l); v != nil {
				p.Reportf(pos, "%s writes captured variable %s without synchronization; the write races other workers — protect it with a mutex or return the value through a per-task slot", how, v.Name())
			}
		case *ast.IndexExpr:
			base, ok := l.X.(*ast.Ident)
			if !ok {
				return
			}
			v := captured(base)
			if v == nil {
				return
			}
			if _, isMap := v.Type().Underlying().(*types.Map); isMap {
				p.Reportf(pos, "%s writes captured map %s without synchronization; concurrent map writes crash and land in random order — lock around the write or merge per-worker maps afterward", how, v.Name())
			}
			// Captured-slice stores are the engine's sanctioned
			// disjoint-slot result pattern; left to the race detector.
		}
	}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(lhs, s.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(s.X, s.Pos())
		}
		return true
	})
}

// goroutinecaptureLoopVars flags closures referencing an enclosing
// loop's iteration variables (clause 2).
func goroutinecaptureLoopVars(p *Pass, lit *ast.FuncLit, loops []ast.Stmt, how string) {
	if len(loops) == 0 {
		return
	}
	loopVars := map[*types.Var]bool{}
	addDefIdent := func(e ast.Expr) {
		if e == nil {
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := p.Info.Defs[id].(*types.Var); ok {
				loopVars[v] = true
			}
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.RangeStmt:
			addDefIdent(l.Key)
			addDefIdent(l.Value)
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addDefIdent(lhs)
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || !loopVars[v] || seen[v] {
			return true
		}
		seen[v] = true
		p.Reportf(id.Pos(), "%s captures loop variable %s; pass it as an argument so the iteration value the closure sees is explicit", how, v.Name())
		return true
	})
}
