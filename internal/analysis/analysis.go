// Package analysis is the repo's static-analysis layer: a small driver
// framework (package loading, type-checking, diagnostics, suppression
// comments) plus the project-specific analyzers that encode the
// reproduction's determinism and hygiene invariants at the AST/type
// level.
//
// The experiments' headline numbers are only trustworthy because every
// run is bit-deterministic; until now that property was enforced purely
// dynamically (golden replay, the seed×parallelism matrix), so a stray
// time.Now, an unseeded math/rand call, or an unsorted map iteration
// surfaced late, as a confusing golden diff. The analyzers here move
// those invariants into `go vet`-style checks that run on every lint
// pass, before any experiment does. See DESIGN.md §11 for the rule
// catalog and the suppression policy.
//
// The framework is deliberately built on the stdlib toolchain only
// (go/ast, go/parser, go/types, go/importer) so the module stays
// dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Engine classes for Analyzer.Engine: how deep a rule looks.
const (
	// EngineSyntax marks per-node AST walks (the PR 5 rule generation).
	EngineSyntax = "syntax"
	// EngineDataflow marks rules that consult the per-function CFG
	// and/or the reaching-definitions solution (cfg.go, dataflow.go).
	EngineDataflow = "dataflow"
)

// An Analyzer is one named rule. Run inspects a type-checked package
// via the Pass and reports findings through it.
type Analyzer struct {
	// Name is the rule ID, as referenced by `//lint:ignore <rule> <reason>`.
	Name string
	// Doc is a one-paragraph description of the invariant the rule
	// protects, shown by `leodivide-lint -rules help`.
	Doc string
	// Engine is EngineSyntax or EngineDataflow; surfaced in the -json
	// report so consumers can tell which findings carry path reasoning.
	Engine string
	// Run inspects one package.
	Run func(*Pass)
}

// A Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path (e.g. "leodivide/internal/par").
	// Analyzers use it for per-package exemptions and targeting.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
	// funcs memoizes per-function CFGs and dataflow solutions; shared
	// across all analyzers run on the same package so four dataflow
	// rules pay for one graph build.
	funcs *funcCache
}

// funcCache memoizes CFG construction and reaching-definitions per
// function node, keyed by node identity.
type funcCache struct {
	cfgs map[ast.Node]*CFG
	rds  map[ast.Node]*ReachDefs
}

// CFG returns the control-flow graph of fn (an *ast.FuncDecl or
// *ast.FuncLit), building and caching it on first use. See cfg.go for
// the graph contract.
func (p *Pass) CFG(fn ast.Node) *CFG {
	if p.funcs == nil {
		p.funcs = &funcCache{}
	}
	if p.funcs.cfgs == nil {
		p.funcs.cfgs = map[ast.Node]*CFG{}
	}
	if c, ok := p.funcs.cfgs[fn]; ok {
		return c
	}
	c := buildCFG(fn)
	p.funcs.cfgs[fn] = c
	return c
}

// Reaching returns the reaching-definitions solution for fn, built on
// demand over the (cached) CFG. See dataflow.go for what counts as a
// definition.
func (p *Pass) Reaching(fn ast.Node) *ReachDefs {
	if p.funcs == nil {
		p.funcs = &funcCache{}
	}
	if p.funcs.rds == nil {
		p.funcs.rds = map[ast.Node]*ReachDefs{}
	}
	if rd, ok := p.funcs.rds[fn]; ok {
		return rd
	}
	rd := reachingDefs(p.CFG(fn), p.Info)
	p.funcs.rds[fn] = rd
	return rd
}

// Reportf records a finding at pos under the pass's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. It is the unit of the -json output schema
// (see Report).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}
