package analysis

import (
	"go/ast"
	"go/types"
)

// Lockbalance is the first CFG-backed rule: a sync.Mutex / sync.RWMutex
// acquisition that some path to the function's exit never releases —
// an early return between Lock and Unlock, an error path that skips the
// release, a panic statement with no deferred Unlock. The experiments
// survive a leaked lock only until the next query wants the same memo
// shard; under `leodivide serve` that is a wedged process, not a slow
// one.
//
// The check is per function: a Lock whose matching release happens in a
// different function (a helper that receives the mutex, an unlock
// method) is reported — the repo's own locking is deliberately local,
// and cross-function protocols are exactly what review should see. Any
// deferred release of the same lock expression (direct `defer
// mu.Unlock()` or inside a deferred closure) balances every path; the
// rule does not check that the defer itself is reached first, trading
// that completeness for zero false positives on the guard-then-defer
// idiom.
var Lockbalance = &Analyzer{
	Name: "lockbalance",
	Doc: "sync.Mutex/RWMutex Lock (or RLock) not released on every control-flow path to the " +
		"function exit — early returns, error paths, and panics without a deferred Unlock",
	Engine: EngineDataflow,
	Run:    lockbalanceRun,
}

// syncCallMethod returns the receiver expression string and method name
// when call is a selector call bound to a method declared in package
// sync (Lock, Unlock, RLock, RUnlock, Add, Done, Wait, ...). The
// receiver string keys "which lock/group" — two spellings of the same
// path (m.mu) compare equal, distinct locks compare different.
func syncCallMethod(p *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := p.Info.ObjectOf(sel.Sel)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// lockAcquire maps acquisition methods to their paired release.
var lockAcquire = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func lockbalanceRun(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				lockbalanceFunc(p, n)
			}
			return true
		})
	}
}

// stmtCallsSync reports whether the statement node n is an expression
// statement calling recv.method for a sync-package method.
func stmtCallsSync(p *Pass, n ast.Node, recv, method string) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	r, m, ok := syncCallMethod(p, call)
	return ok && r == recv && m == method
}

// deferredSyncCalls collects "recv\x00method" keys for every sync
// method call appearing under a defer statement in the CFG — directly
// (`defer mu.Unlock()`) or inside a deferred closure.
func deferredSyncCalls(p *Pass, cfg *CFG) map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				continue
			}
			ast.Inspect(d, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if r, m, ok := syncCallMethod(p, call); ok {
						out[[2]string{r, m}] = true
					}
				}
				return true
			})
		}
	}
	return out
}

func lockbalanceFunc(p *Pass, fn ast.Node) {
	cfg := p.CFG(fn)
	deferred := deferredSyncCalls(p, cfg)
	for _, blk := range cfg.Blocks {
		for pos, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, method, ok := syncCallMethod(p, call)
			if !ok {
				continue
			}
			release, isAcquire := lockAcquire[method]
			if !isAcquire {
				continue
			}
			if deferred[[2]string{recv, release}] {
				continue // a deferred release covers every exit
			}
			// Released later in the same straight-line block?
			released := false
			for _, later := range blk.Nodes[pos+1:] {
				if stmtCallsSync(p, later, recv, release) {
					released = true
					break
				}
			}
			if released {
				continue
			}
			// Some path from here to exit that never passes a block
			// containing the release?
			leak := cfg.PathExistsAvoiding(blk.Succs, cfg.Exit, func(b *Block) bool {
				for _, bn := range b.Nodes {
					if stmtCallsSync(p, bn, recv, release) {
						return true
					}
				}
				return false
			})
			if leak {
				p.Reportf(call.Pos(), "%s.%s is not matched by %s.%s on every path to the function exit; release before each return/panic or `defer %s.%s()`",
					recv, method, recv, release, recv, release)
			}
		}
	}
}
