package analysis

import (
	"go/ast"
	"go/types"
)

// Waitbalance checks completion obligations: once code promises "a
// waiter will be released", every control-flow path must keep the
// promise, or the waiter hangs forever. Three clauses:
//
//  1. sync.WaitGroup.Add inside the spawned goroutine itself — the
//     classic race where Wait can run before any Add lands, returning
//     immediately with workers still starting.
//  2. A WaitGroup.Add on a path with no Done or Wait before the
//     function exit (and no deferred Done/Wait). Add-heavy early
//     returns leave the counter permanently positive; a later Wait
//     anywhere deadlocks. Parameter WaitGroups are exempt — their
//     balance is the caller's contract.
//  3. The singleflight shape: a value holding a completion channel is
//     published into a shared map or field, then a caller-supplied
//     function value is invoked, then the channel is closed — with the
//     close NOT in a defer. If the supplied function panics, the close
//     never runs and the published entry strands every follower that
//     waits on it (and poisons the key for all future callers). The
//     callee is a function-typed variable, so no static analysis can
//     prove it returns; the only safe close is a deferred one.
var Waitbalance = &Analyzer{
	Name: "waitbalance",
	Doc: "unbalanced completion obligations: WaitGroup.Add inside the spawned goroutine, Add " +
		"without Done/Wait on some path, or a published completion channel whose close is " +
		"skipped if a caller-supplied function panics (close it in a defer)",
	Engine: EngineDataflow,
	Run:    waitbalanceRun,
}

func waitbalanceRun(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				waitbalanceFunc(p, n)
			}
			return true
		})
	}
}

func waitbalanceFunc(p *Pass, fn ast.Node) {
	cfg := p.CFG(fn)
	waitbalanceAddInGoroutine(p, cfg)
	waitbalanceAddPaths(p, cfg)
	waitbalancePublishClose(p, cfg)
}

// waitbalanceAddInGoroutine flags wg.Add calls inside a go'd closure
// when wg is captured from outside it (clause 1).
func waitbalanceAddInGoroutine(p *Pass, cfg *CFG) {
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, method, ok := syncCallMethod(p, call)
				if !ok || method != "Add" {
					return true
				}
				// Only WaitGroups captured from the spawning function: a
				// group declared inside the goroutine is its own business.
				if base := baseIdentObj(p, call.Fun.(*ast.SelectorExpr).X); base != nil && within(base.Pos(), lit) {
					return true
				}
				p.Reportf(call.Pos(), "%s.Add inside the spawned goroutine races %s.Wait (Wait may run before Add); call Add before the go statement", recv, recv)
				return true
			})
		}
	}
}

// baseIdentObj resolves the leftmost identifier of a selector chain
// (m.mu → m, wg → wg) to its object, or nil.
func baseIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return p.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isParam reports whether obj is a parameter (or receiver) of the
// function owning the CFG.
func isParam(cfg *CFG, obj types.Object) bool {
	var ftype *ast.FuncType
	var recv *ast.FieldList
	switch f := cfg.Fn.(type) {
	case *ast.FuncDecl:
		ftype, recv = f.Type, f.Recv
	case *ast.FuncLit:
		ftype = f.Type
	}
	inList := func(fl *ast.FieldList) bool {
		return fl != nil && within(obj.Pos(), fl)
	}
	return inList(recv) || (ftype != nil && inList(ftype.Params))
}

// waitbalanceAddPaths flags wg.Add statements with a path to exit that
// passes no Done/Wait on the same group (clause 2).
func waitbalanceAddPaths(p *Pass, cfg *CFG) {
	deferred := deferredSyncCalls(p, cfg)
	for _, blk := range cfg.Blocks {
		for pos, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, method, ok := syncCallMethod(p, call)
			if !ok || method != "Add" {
				continue
			}
			if base := baseIdentObj(p, call.Fun.(*ast.SelectorExpr).X); base == nil || isParam(cfg, base) {
				// Parameter groups: balance is the caller's contract. A
				// non-ident base (method value chains) is skipped too.
				continue
			}
			if deferred[[2]string{recv, "Done"}] || deferred[[2]string{recv, "Wait"}] {
				continue
			}
			balances := func(node ast.Node) bool {
				return stmtCallsSync(p, node, recv, "Done") || stmtCallsSync(p, node, recv, "Wait")
			}
			settled := false
			for _, later := range blk.Nodes[pos+1:] {
				if balances(later) {
					settled = true
					break
				}
			}
			if settled {
				continue
			}
			leak := cfg.PathExistsAvoiding(blk.Succs, cfg.Exit, func(b *Block) bool {
				for _, bn := range b.Nodes {
					if balances(bn) {
						return true
					}
				}
				return false
			})
			if leak {
				p.Reportf(call.Pos(), "%s.Add has a path to the function exit with no %s.Done or %s.Wait; a later Wait would deadlock", recv, recv, recv)
			}
		}
	}
}

// funcValueCall returns the called identifier when the statement node
// contains a call through a function-typed variable (a parameter or
// local like `fill` / `compute`) — a callee the analyzer cannot see
// into and must assume can panic. Calls to declared functions and
// methods don't count; neither do calls inside nested closures.
func funcValueCall(p *Pass, n ast.Node) *ast.Ident {
	var found *ast.Ident
	inspectShallow(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok || found != nil {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := p.Info.ObjectOf(id).(*types.Var)
		if !ok {
			return
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			found = id
		}
	})
	return found
}

// closeTarget returns the closed expression when the statement node is
// a statement-level `close(x)` call, else nil.
func closeTarget(n ast.Node) ast.Expr {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "close" {
		return nil
	}
	return call.Args[0]
}

// publishes reports whether the statement node stores var v into a
// shared location: an assignment whose LHS is an index or selector
// expression and whose RHS mentions v.
func publishes(p *Pass, n ast.Node, v types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	shared := false
	for _, lhs := range as.Lhs {
		switch lhs.(type) {
		case *ast.IndexExpr, *ast.SelectorExpr:
			shared = true
		}
	}
	if !shared {
		return false
	}
	mentions := false
	for _, rhs := range as.Rhs {
		inspectShallow(rhs, func(x ast.Node) {
			if id, ok := x.(*ast.Ident); ok && p.Info.ObjectOf(id) == v {
				mentions = true
			}
		})
	}
	return mentions
}

// reachesNode reports whether control can flow from node A to node B
// (both on the CFG): same block with A strictly before B, or a path
// from A's block successors to B's block.
func reachesNode(cfg *CFG, a, b ast.Node) bool {
	ba, ia := cfg.BlockOf(a)
	bb, ib := cfg.BlockOf(b)
	if ba == nil || bb == nil {
		return false
	}
	if ba == bb {
		return ia < ib
	}
	return cfg.PathExistsAvoiding(ba.Succs, bb, nil)
}

// waitbalancePublishClose implements clause 3. For each statement-level
// non-deferred close(x) whose base variable was published into a map or
// field earlier on the path, with a call through a function-typed
// variable between publish and close: a panic in that call skips the
// close and strands the published waiters.
func waitbalancePublishClose(p *Pass, cfg *CFG) {
	// Deferred closes discharge the obligation for their expression.
	deferredClose := map[string]bool{}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				continue
			}
			ast.Inspect(d, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
					deferredClose[types.ExprString(call.Args[0])] = true
				}
				return true
			})
		}
	}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			target := closeTarget(n)
			if target == nil {
				continue
			}
			if deferredClose[types.ExprString(target)] {
				continue
			}
			base := baseIdentObj(p, target)
			if base == nil {
				continue
			}
			v, ok := base.(*types.Var)
			if !ok {
				continue
			}
			// Find a publish of v and a risky call strictly between the
			// publish and the close; report once per close.
			if id := publishCloseRisk(p, cfg, v, n); id != nil {
				p.Reportf(id.Pos(), "a panic in %s() would skip close(%s): %s is already published and its waiters would block forever; run the delete/close cleanup in a defer",
					id.Name, types.ExprString(target), v.Name())
			}
		}
	}
}

// publishCloseRisk returns the function-value callee identifier sitting
// between a publish of v and the close statement closeStmt on some
// path, or nil when no such window exists.
func publishCloseRisk(p *Pass, cfg *CFG, v *types.Var, closeStmt ast.Node) *ast.Ident {
	for _, pb := range cfg.Blocks {
		for _, pn := range pb.Nodes {
			if !publishes(p, pn, v) || !reachesNode(cfg, pn, closeStmt) {
				continue
			}
			for _, rb := range cfg.Blocks {
				for _, rn := range rb.Nodes {
					id := funcValueCall(p, rn)
					if id == nil {
						continue
					}
					if reachesNode(cfg, pn, rn) && reachesNode(cfg, rn, closeStmt) {
						return id
					}
				}
			}
		}
	}
	return nil
}
