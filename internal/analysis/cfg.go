package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the v2 rule engine: a
// per-function CFG built from go/ast alone (no x/tools), precise enough
// for the path questions the concurrency/determinism rules ask — "does
// every path from this Lock reach an Unlock", "is there a path from
// this append to a use that skips the sort", "can a panic escape
// between publish and close". See DESIGN.md §16 for the contract rule
// authors may assume.
//
// Model:
//
//   - One CFG per function-like node (*ast.FuncDecl or *ast.FuncLit).
//     Nested function literals are NOT inlined — each gets its own CFG;
//     a FuncLit appearing inside a statement is data, not control flow.
//   - Blocks hold statement-level nodes in execution order. Control
//     conditions (if/for conditions, switch tags, range expressions)
//     appear as nodes too, so rules see every evaluated expression.
//   - A single virtual Exit block terminates every path: returns,
//     falling off the end, and explicit panic(...) statements all edge
//     to Exit. Rules that care whether an exit is a panic look at the
//     last node of the predecessor block.
//   - defer statements are ordinary nodes (registration points); their
//     run-at-exit semantics are the rule's business — lockbalance and
//     waitbalance scan deferred calls/closures for release obligations.
//   - break/continue (labeled and not), goto, and fallthrough are
//     resolved to real edges. Unreachable blocks may exist; dataflow
//     passes simply never reach them.
//
// Soundness vs completeness: the graph over-approximates control flow
// (every syntactic branch is considered takable), so path-existence
// findings can be false positives on correlated branches and
// path-universal guarantees ("sort on every path") are conservative.
// Calls are assumed to return normally; only explicit panic statements
// terminate a block. Rules that model runtime panics from arbitrary
// code (waitbalance) add their own virtual edges for calls through
// function values, where the callee is unknowable statically.

// A Block is one straight-line run of nodes with a single entry.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, build order).
	Index int
	// Nodes are the statements and control expressions executed in this
	// block, in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks (derived from Succs).
	Preds []*Block
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph describes.
	Fn ast.Node
	// Blocks lists every block, Entry first. Exit is always present.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single virtual exit block (no nodes). Returns, panics
	// and falling off the end all edge here.
	Exit *Block
}

// cfgBuilder carries the state of one build.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// break/continue targets, innermost last.
	breaks    []*Block
	continues []*Block
	// labeled break/continue targets by label name.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	// goto support: labeled statement entry blocks, and pending gotos
	// patched at the end.
	labelBlocks map[string]*Block
	gotos       []pendingGoto
	// pendingLabel names the label attached to the next loop/switch
	// pushed, so `break label` / `continue label` resolve.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

// buildCFG constructs the CFG for fn, which must be an *ast.FuncDecl or
// *ast.FuncLit. A nil body (declaration without definition) yields a
// two-block graph with Entry wired straight to Exit.
func buildCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	default:
		panic("analysis: buildCFG on a non-function node")
	}
	b := &cfgBuilder{
		cfg:           &CFG{Fn: fn},
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		labelBlocks:   map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.cfg.Exit) // fall off the end
	for _, g := range b.gotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds from→to unless from is nil (dead code after a terminator).
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// startBlock seals cur with an edge into next and makes next current.
func (b *cfgBuilder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether stmt is an expression statement calling
// the builtin panic.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Dead code after return/panic/branch: park it in an unreachable
		// block so its nodes still exist for position queries.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			target := b.cfg.Exit
			if s.Label != nil {
				target = b.labelBreak[s.Label.Name]
			} else if len(b.breaks) > 0 {
				target = b.breaks[len(b.breaks)-1]
			}
			if target != nil {
				b.edge(b.cur, target)
			}
			b.cur = nil
		case token.CONTINUE:
			target := b.cfg.Exit
			if s.Label != nil {
				target = b.labelContinue[s.Label.Name]
			} else if len(b.continues) > 0 {
				target = b.continues[len(b.continues)-1]
			}
			if target != nil {
				b.edge(b.cur, target)
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by switch clause wiring; the statement
			// itself is recorded above and the clause adds the edge.
		}
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		thenBlock := b.newBlock()
		join := b.newBlock()
		b.edge(condBlock, thenBlock)
		b.cur = thenBlock
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlock := b.newBlock()
			b.edge(condBlock, elseBlock)
			b.cur = elseBlock
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlock, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		bodyBlock := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.startBlock(header)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(header, exit)
		}
		b.edge(header, bodyBlock)
		b.pushLoop(exit, post, s)
		b.cur = bodyBlock
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, header)
		b.cur = exit
	case *ast.RangeStmt:
		header := b.newBlock()
		bodyBlock := b.newBlock()
		exit := b.newBlock()
		b.startBlock(header)
		b.add(s) // the range statement itself: per-iteration var binding
		b.edge(header, exit)
		b.edge(header, bodyBlock)
		b.pushLoop(exit, header, s)
		b.cur = bodyBlock
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, header)
		b.cur = exit
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, s, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, s, false)
	case *ast.SelectStmt:
		b.switchClauses(s.Body.List, s, true)
	case *ast.LabeledStmt:
		// The labeled statement's entry block is the goto target; for
		// loops and switches, break/continue <label> targets are wired by
		// the loop/switch construction via labelLoop.
		entry := b.newBlock()
		b.startBlock(entry)
		b.labelBlocks[s.Label.Name] = entry
		b.labeledStmt(s.Label.Name, s.Stmt)
	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)
	default:
		b.add(s)
	}
}

// labeledStmt compiles the statement under a label, first registering
// the label's break/continue targets if it is a loop or switch.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt) {
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = label
	}
	b.stmt(s)
	b.pendingLabel = ""
}

func (b *cfgBuilder) pushLoop(breakTo, continueTo *Block, _ ast.Stmt) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = breakTo
		b.labelContinue[b.pendingLabel] = continueTo
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// switchClauses wires the shared clause structure of switch, type
// switch and select. Each clause body is a block fed from the dispatch
// point; a missing default adds a direct dispatch→join edge (the
// switch may match nothing; a select without default always executes
// exactly one clause, but treating it like a switch only adds paths —
// conservative, never unsound for the universal path queries).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, sw ast.Stmt, isSelect bool) {
	dispatch := b.cur
	join := b.newBlock()
	b.breaks = append(b.breaks, join)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = join
		b.pendingLabel = ""
	}
	hasDefault := false
	var clauseBlocks []*Block
	var clauseBodies [][]ast.Stmt
	for _, c := range clauses {
		blk := b.newBlock()
		b.edge(dispatch, blk)
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			b.cur = blk
			for _, e := range cc.List {
				b.add(e)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseBodies = append(clauseBodies, cc.Body)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseBodies = append(clauseBodies, cc.Body)
		}
	}
	for i := range clauseBlocks {
		b.cur = clauseBlocks[i]
		b.stmtList(clauseBodies[i])
		// fallthrough: an explicit fallthrough statement at the end of a
		// case transfers to the next clause's body.
		if b.cur != nil && endsInFallthrough(clauseBodies[i]) && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
			b.cur = nil
			continue
		}
		b.edge(b.cur, join)
	}
	if !hasDefault && !isSelect {
		// The switch may match nothing. A select without default always
		// runs exactly one clause (or blocks forever on `select {}`), so
		// it gets no dispatch→join shortcut.
		b.edge(dispatch, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// --- path queries -----------------------------------------------------

// PathExistsAvoiding reports whether some path from one of the start
// blocks reaches target while never passing through a block for which
// avoid returns true. The target itself is never tested against avoid;
// every other visited block is, including the start blocks (callers
// slice within-block node runs separately when a boundary falls
// mid-block).
func (c *CFG) PathExistsAvoiding(starts []*Block, target *Block, avoid func(*Block) bool) bool {
	seen := make([]bool, len(c.Blocks))
	var stack []*Block
	push := func(b *Block) {
		if b != nil && !seen[b.Index] {
			seen[b.Index] = true
			stack = append(stack, b)
		}
	}
	for _, s := range starts {
		push(s)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == target {
			return true
		}
		if avoid != nil && avoid(b) {
			continue
		}
		for _, s := range b.Succs {
			push(s)
		}
	}
	return false
}

// BlockOf returns the block containing the given node (by identity),
// and the node's index within it; nil if the node is not on the graph.
func (c *CFG) BlockOf(n ast.Node) (*Block, int) {
	for _, b := range c.Blocks {
		for i, bn := range b.Nodes {
			if bn == n {
				return b, i
			}
		}
	}
	return nil, -1
}
