package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdrop keeps failures loud. PR 2 hardened the I/O layer so that
// every close/sync/short-write error surfaces; this rule keeps the
// rest of the codebase honest the same way: an error return may not be
// dropped on the floor, neither by a bare call statement nor by an
// explicit `_ =`, without a suppression explaining why ignoring it is
// correct. It also flags fmt.Errorf calls that stringify an error
// argument without %w, which silently severs errors.Is/As chains.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "discarded error returns (bare call statements, defers, or assignment to _) outside tests, " +
		"and fmt.Errorf that passes an error without wrapping it via %w",
	Run: errdropRun,
}

// Receivers whose Write-style methods are documented to never return a
// non-nil error; flagging them would only breed boilerplate.
var errdropInfallible = map[string]bool{
	"bytes.Buffer":     true,
	"*bytes.Buffer":    true,
	"strings.Builder":  true,
	"*strings.Builder": true,
	"hash.Hash":        true,
}

// The fmt print family is exempt from the bare-call check, mirroring
// errcheck's default exclusions: these are human-facing UI prints.
// Data artifacts never go through bare fmt calls here — they are
// written inside error-returning closures handed to safeio.WriteFile,
// where a dropped error still fires.
var errdropFmtExempt = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func errdropRun(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					errdropCall(p, call, "")
				}
			case *ast.DeferStmt:
				errdropCall(p, n.Call, "deferred ")
			case *ast.GoStmt:
				errdropCall(p, n.Call, "spawned ")
			case *ast.AssignStmt:
				errdropAssign(p, n)
			case *ast.CallExpr:
				errdropErrorf(p, n)
			}
			return true
		})
	}
}

func errdropCall(p *Pass, call *ast.CallExpr, kind string) {
	if !returnsError(p, call) {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if t := p.Info.TypeOf(sel.X); t != nil && errdropInfallible[t.String()] {
			return
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == "fmt" && errdropFmtExempt[sel.Sel.Name] {
				return
			}
		}
	}
	p.Reportf(call.Pos(), "%scall discards its error result; handle it, or `_ =` it with a lint:ignore explaining why", kind)
}

func errdropAssign(p *Pass, a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(a.Rhs) == len(a.Lhs):
			t = p.Info.TypeOf(a.Rhs[i])
		case len(a.Rhs) == 1:
			if tup, ok := p.Info.TypeOf(a.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
		}
		if t != nil && isErrorType(t) {
			p.Reportf(id.Pos(), "error discarded into _; handle it or lint:ignore with the reason it is safe to drop")
		}
	}
}

// errdropErrorf flags fmt.Errorf("...: %v", err) — stringifying an
// error severs the errors.Is/As chain that callers (and tests) rely
// on; wrap with %w instead.
func errdropErrorf(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	fv := p.Info.Types[call.Args[0]].Value
	if fv == nil {
		return // non-constant format; nothing to prove
	}
	format := fv.String()
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := p.Info.TypeOf(arg); t != nil && isErrorType(t) {
			p.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w, severing the errors.Is/As chain; wrap it or lint:ignore why the chain must break here")
			return
		}
	}
}

func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
