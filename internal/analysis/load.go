package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its syntax trees.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module from source.
// Module-internal imports are resolved by the loader itself (memoized);
// everything else — in this zero-dependency module, only the standard
// library — is resolved by the stdlib source importer, so no compiled
// export data or external tooling is needed.
type Loader struct {
	ModuleDir  string
	ModulePath string
	Fset       *token.FileSet

	build   build.Context
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at moduleDir (the directory that
// holds go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks the standard library from
	// GOROOT/src. It reads the global build context, so pin cgo off
	// there too: with cgo on, packages like net pull in C "files" the
	// type-checker cannot parse; with it off they fall back to their
	// pure-Go implementations, which is all a linter needs.
	build.Default.CgoEnabled = false
	ctxt := build.Default
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		Fset:       fset,
		build:      ctxt,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer so module-internal packages can
// import each other during type-checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load returns the type-checked package at the given module import
// path, loading (and memoizing) it on first use.
func (l *Loader) Load(path string) (*Package, error) {
	return l.load(path)
}

// LoadDir parses and type-checks the single directory dir under the
// given import path, without requiring it to live inside the module
// tree. Analyzer golden tests use this to check testdata packages
// under synthetic import paths (so path-targeted rules fire).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	return l.check(path, dir)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) check(path, dir string) (*Package, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// goFiles lists the non-test Go files of dir that match the build
// context (build tags, GOOS/GOARCH file suffixes), sorted for
// deterministic load and diagnostic order. Test files are out of
// scope by design: every rule in the suite exempts tests, and keeping
// them out of the type-check avoids external test packages entirely.
func (l *Loader) goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := l.build.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves package patterns relative to the module root into
// import paths. Supported forms: "./..." (every package under the
// module), "./dir/..." (every package under dir), "." and "./dir",
// and plain module-internal import paths. testdata and hidden
// directories are never walked.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./...":
			if err := l.walk(l.ModuleDir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")))
			if err := l.walk(dir, add); err != nil {
				return nil, err
			}
		case pat == "." || strings.HasPrefix(pat, "./"):
			// Resolve directory patterns to their real import path: a
			// package analyzed under a literal "." would dodge every
			// path-keyed rule (exemptions, the ctxfirst contract list).
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			path, ok, err := l.dirImportPath(dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", pat)
			}
			add(path)
		default:
			add(pat)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func (l *Loader) walk(root string, add func(string)) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		path, ok, err := l.dirImportPath(p)
		if err != nil {
			return err
		}
		if ok {
			add(path)
		}
		return nil
	})
}

func (l *Loader) dirImportPath(dir string) (string, bool, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return "", false, err
	}
	if len(names) == 0 {
		return "", false, nil
	}
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", false, err
	}
	if rel == "." {
		return l.ModulePath, true, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true, nil
}
