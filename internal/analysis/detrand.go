package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand guards the reproduction's core property: a run is a pure
// function of RunConfig (seed, scale, parallelism). Wall-clock reads,
// the process-global math/rand source, and environment lookups are the
// three ambient inputs that silently break that purity, so on the
// experiment path they must flow through RunConfig or an injected
// source instead. internal/obs is exempt (metrics exist to measure
// wall-clock); timing that only feeds obs metrics elsewhere carries a
// per-line suppression saying so.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "ambient nondeterminism (time.Now, global math/rand, os.Getenv) on the experiment path; " +
		"seeds and clocks must flow through RunConfig or injected sources (internal/obs exempt)",
	Run: detrandRun,
}

var detrandExemptPkgs = map[string]bool{
	"leodivide/internal/obs": true,
}

// Package-level math/rand functions draw from the shared global
// source; constructors that produce an explicitly seeded generator are
// the sanctioned alternative and stay allowed.
var detrandRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded constructors
	"NewPCG": true, "NewChaCha8": true,
}

var detrandEnvFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

func detrandRun(p *Pass) {
	if detrandExemptPkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if name == "Now" {
					p.Reportf(sel.Pos(), "time.Now is ambient wall-clock input; runs must be a pure function of RunConfig (inject the clock, or suppress if it only feeds obs metrics)")
				}
			case "math/rand", "math/rand/v2":
				// Only package-level functions draw from the global
				// source; references to types (rand.Rand, rand.Source)
				// and seeded constructors are the sanctioned API.
				if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); isFunc && !detrandRandAllowed[name] {
					p.Reportf(sel.Pos(), "rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) with a seed from RunConfig", name)
				}
			case "os":
				if detrandEnvFuncs[name] {
					p.Reportf(sel.Pos(), "os.%s makes the run depend on the environment; thread configuration through RunConfig or flags", name)
				}
			}
			return true
		})
	}
}
