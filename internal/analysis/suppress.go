package analysis

import (
	"go/token"
	"strings"
)

// Suppression policy: a finding is silenced by a comment of the form
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory — a suppression documents a reviewed decision,
// not a shortcut — and a malformed, unknown-rule, or unused suppression
// is itself a finding (rule "suppression"), so stale ignores cannot
// accumulate as the code moves underneath them.
type suppression struct {
	file   string
	line   int
	rules  []string
	reason string
	pos    token.Pos
	// used tracks, per listed rule, whether that rule's name silenced a
	// finding. A multi-rule directive is only fully used when every rule
	// it names earned its keep; the stale names are reported
	// individually. (A single shared bool here once let `//lint:ignore
	// a,b ...` hide a stale `b` forever once `a` fired.)
	used map[string]bool
}

const suppressPrefix = "//lint:ignore"

// collectSuppressions scans one package's comments. Malformed
// directives are reported immediately via report; well-formed ones are
// returned for matching against diagnostics.
func collectSuppressions(pkg *Package, fset *token.FileSet, knownRules map[string]bool, report func(Diagnostic)) []*suppression {
	var sups []*suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, suppressPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorance — not this directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Rule:    "suppression",
						Message: "malformed lint:ignore: want `//lint:ignore <rule> <reason>` with a non-empty reason",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				bad := false
				for _, r := range rules {
					if !knownRules[r] {
						report(Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule:    "suppression",
							Message: "lint:ignore names unknown rule " + r,
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				sups = append(sups, &suppression{
					file:   pos.Filename,
					line:   pos.Line,
					rules:  rules,
					reason: strings.Join(fields[1:], " "),
					pos:    c.Pos(),
					used:   map[string]bool{},
				})
			}
		}
	}
	return sups
}

// applySuppressions filters diags through sups: a suppression covers
// its own line and the line directly below, for its listed rules.
// Suppressions that silenced nothing are reported as findings so they
// cannot rot in place.
func applySuppressions(diags []Diagnostic, sups []*suppression, enabled map[string]bool, fset *token.FileSet) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.file != d.File || (s.line != d.Line && s.line != d.Line-1) {
				continue
			}
			for _, r := range s.rules {
				if r == d.Rule {
					s.used[r] = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		// Report each listed rule name that silenced nothing. Only rules
		// that actually ran can vouch for a name being stale; a filtered
		// run (-rules) stays quiet about the rest.
		var stale []string
		for _, r := range s.rules {
			if enabled[r] && !s.used[r] {
				stale = append(stale, r)
			}
		}
		if len(stale) == 0 {
			continue
		}
		pos := fset.Position(s.pos)
		kept = append(kept, Diagnostic{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule:    "suppression",
			Message: "unused lint:ignore for " + strings.Join(stale, ",") + ": no matching finding on this or the next line",
		})
	}
	return kept
}
