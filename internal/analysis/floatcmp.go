package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floatcmp flags exact equality on floating-point values. The model's
// outputs are floats whose low bits depend on evaluation order, so
// `==`/`!=` between computed floats is either a latent tolerance bug
// or a determinism assertion that belongs in the golden/testutil
// comparison helpers (which own per-field tolerances and are exempt).
//
// Two idioms stay allowed because they are bit-deterministic by
// construction: comparison against an exact constant zero (the
// universal "unset / division guard" sentinel) and the x != x NaN
// test.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc: "==/!=/switch on float operands outside the golden/testutil tolerance helpers " +
		"(constant-zero sentinels and x != x NaN tests allowed)",
	Run: floatcmpRun,
}

var floatcmpExemptPkgs = map[string]bool{
	"leodivide/internal/testutil": true,
	"leodivide/internal/golden":   true,
}

func floatcmpRun(p *Pass) {
	if floatcmpExemptPkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		comparators := sortComparators(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(p.Info.TypeOf(n.X)) && !isFloat(p.Info.TypeOf(n.Y)) {
					return true
				}
				if floatcmpAllowed(p, n) {
					return true
				}
				inComparator := false
				for _, lit := range comparators {
					if within(n.Pos(), lit) {
						inComparator = true
					}
				}
				if inComparator {
					// Exact float equality inside a sort comparator is a
					// tie-break between already-computed values: given the
					// same inputs it orders identically on every run, so
					// it is deterministic by construction.
					return true
				}
				p.Reportf(n.Pos(), "exact %s on float operands; compare with a tolerance (internal/testutil) or restructure — float identity is not reproducible arithmetic", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p.Info.TypeOf(n.Tag)) {
					p.Reportf(n.Pos(), "switch on a float tag compares exactly; use explicit tolerance comparisons")
				}
			}
			return true
		})
	}
}

// sortComparatorFuncs are the ordering entry points whose comparator
// closures may compare floats exactly (deterministic tie-breaking).
var sortComparatorFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "SliceIsSorted": true, "Search": true},
	"slices": {"SortFunc": true, "SortStableFunc": true, "IsSortedFunc": true, "BinarySearchFunc": true},
}

// sortComparators collects the function literals passed as comparators
// to sort.*/slices.* ordering calls in one file.
func sortComparators(p *Pass, f *ast.File) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		byPkg, ok := sortComparatorFuncs[pn.Imported().Path()]
		if !ok || !byPkg[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return true
	})
	return lits
}

func floatcmpAllowed(p *Pass, e *ast.BinaryExpr) bool {
	xv := p.Info.Types[e.X].Value
	yv := p.Info.Types[e.Y].Value
	// Both constant: folded at compile time, deterministic.
	if xv != nil && yv != nil {
		return true
	}
	// Constant exact zero on either side: sentinel / division guard.
	if isZeroConst(xv) || isZeroConst(yv) {
		return true
	}
	// x != x (or x == x): the NaN idiom.
	if types.ExprString(e.X) == types.ExprString(e.Y) {
		return true
	}
	return false
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
