package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floatcmp flags exact equality on floating-point values. The model's
// outputs are floats whose low bits depend on evaluation order, so
// `==`/`!=` between computed floats is either a latent tolerance bug
// or a determinism assertion that belongs in the golden/testutil
// comparison helpers (which own per-field tolerances and are exempt).
//
// Two idioms stay allowed because they are bit-deterministic by
// construction: comparison against an exact constant zero (the
// universal "unset / division guard" sentinel) and the x != x NaN
// test.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc: "==/!=/switch on float operands outside the golden/testutil tolerance helpers " +
		"(constant-zero sentinels and x != x NaN tests allowed)",
	Run: floatcmpRun,
}

var floatcmpExemptPkgs = map[string]bool{
	"leodivide/internal/testutil": true,
	"leodivide/internal/golden":   true,
}

func floatcmpRun(p *Pass) {
	if floatcmpExemptPkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(p.Info.TypeOf(n.X)) && !isFloat(p.Info.TypeOf(n.Y)) {
					return true
				}
				if floatcmpAllowed(p, n) {
					return true
				}
				p.Reportf(n.Pos(), "exact %s on float operands; compare with a tolerance (internal/testutil) or restructure — float identity is not reproducible arithmetic", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p.Info.TypeOf(n.Tag)) {
					p.Reportf(n.Pos(), "switch on a float tag compares exactly; use explicit tolerance comparisons")
				}
			}
			return true
		})
	}
}

func floatcmpAllowed(p *Pass, e *ast.BinaryExpr) bool {
	xv := p.Info.Types[e.X].Value
	yv := p.Info.Types[e.Y].Value
	// Both constant: folded at compile time, deterministic.
	if xv != nil && yv != nil {
		return true
	}
	// Constant exact zero on either side: sentinel / division guard.
	if isZeroConst(xv) || isZeroConst(yv) {
		return true
	}
	// x != x (or x == x): the NaN idiom.
	if types.ExprString(e.X) == types.ExprString(e.Y) {
		return true
	}
	return false
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
