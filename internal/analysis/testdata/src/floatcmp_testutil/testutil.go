// Testdata for floatcmp's package exemption: this directory is loaded
// under the import path leodivide/internal/testutil, the package that
// owns the tolerance helpers, where exact comparison is the
// implementation detail being provided. Nothing here may be flagged.
package testutil

func ExactlyEqual(a, b float64) bool {
	return a == b // ok: testutil is exempt by design
}
