// Testdata for ctxfirst on the experiment registry surface: this
// directory is loaded under the root import path leodivide, so
// exported Model methods that consume a *Dataset and can fail must
// take a context first.
package leodivide

import "context"

type Model struct{}

type Dataset struct{ n int }

func (m Model) Evaluate(ctx context.Context, d *Dataset) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return d.n, nil
}

func (m Model) Stale(d *Dataset) (int, error) { // want "exported fallible leodivide.Stale must take context.Context as its first parameter"
	return d.n, nil
}

func (m Model) Peek(d *Dataset) int { // ok: infallible accessor
	return d.n
}

func (m Model) Describe() (string, error) { // ok: no *Dataset parameter, not registry surface
	return "model", nil
}
