// Testdata for the maporder analyzer: map iteration order must not
// leak into slices, output streams, or float accumulators; the
// collect-sort-iterate pattern passes automatically.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map range records random iteration order"
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted right below
	}
	sort.Strings(keys)
	return keys
}

func writeInLoop(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "WriteString inside a map range writes in random iteration order"
	}
}

func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside a map range writes in random iteration order"
	}
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation over a map range is order-dependent"
	}
	return total
}

func sumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition commutes exactly
	}
	return n
}

func loopLocal(m map[string][]int) int {
	longest := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...) // ok: loop-local scratch, discarded per iteration
		if len(scratch) > longest {
			longest = len(scratch)
		}
	}
	return longest
}
