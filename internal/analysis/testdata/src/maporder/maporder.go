// Testdata for the maporder analyzer: map iteration order must not
// leak into slices or output streams; the collect-sort-iterate pattern
// passes automatically, and the sort must sit on every path from the
// loop to the function exit (paths that discard the slice — error
// returns, panics — are harmless). Order-dependent value flows (float
// accumulation, selections) are maptaint's business, not this rule's.
package maporder

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

var errBlank = errors.New("blank key")

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map range records random iteration order"
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted right below
	}
	sort.Strings(keys)
	return keys
}

func appendSortedConditionally(m map[string]int, pre bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map range records random iteration order"
	}
	if pre {
		sort.Strings(keys) // the else path returns keys unsorted
	}
	return keys
}

func appendWithErrorPath(m map[string]int) ([]string, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		if k == "" {
			return nil, errBlank // ok: this path discards keys, order never escapes
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

func appendWithPanicPath(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		if k == "" {
			panic("blank key") // ok: unwinding discards keys
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeInLoop(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "WriteString inside a map range writes in random iteration order"
	}
}

func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside a map range writes in random iteration order"
	}
}

func sumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: value flows belong to maptaint; integer sums are exact anyway
	}
	return n
}

func loopLocal(m map[string][]int) int {
	longest := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...) // ok: loop-local scratch, discarded per iteration
		if len(scratch) > longest {
			longest = len(scratch)
		}
	}
	return longest
}
