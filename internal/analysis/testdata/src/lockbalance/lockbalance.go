// Testdata for the lockbalance analyzer: every Lock/RLock must be
// matched by its release on every control-flow path to the function
// exit; a deferred release (direct or inside a deferred closure)
// balances all paths at once.
package lockbalance

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
}

func earlyReturnLeak(s *store, k string) (int, bool) {
	s.mu.Lock() // want "s.mu.Lock is not matched by s.mu.Unlock on every path"
	v, ok := s.vals[k]
	if !ok {
		return 0, false // this path leaves the lock held
	}
	s.mu.Unlock()
	return v, true
}

func panicPathLeak(s *store, k string) int {
	s.mu.Lock() // want "s.mu.Lock is not matched by s.mu.Unlock on every path"
	v, ok := s.vals[k]
	if !ok {
		panic("missing key") // unwinds with the lock held
	}
	s.mu.Unlock()
	return v
}

func readLockLeak(s *store, k string) int {
	s.rw.RLock() // want "s.rw.RLock is not matched by s.rw.RUnlock on every path"
	if v, ok := s.vals[k]; ok {
		s.rw.RUnlock()
		return v
	}
	return 0 // the miss path never releases the read lock
}

func deferBalanced(s *store, k string) int {
	s.mu.Lock() // ok: deferred unlock covers every path
	defer s.mu.Unlock()
	return s.vals[k]
}

func straightLine(s *store, k string, v int) {
	s.mu.Lock() // ok: released later in the same block
	s.vals[k] = v
	s.mu.Unlock()
}

func branchBalanced(s *store, k string) int {
	s.mu.Lock() // ok: both branches release before returning
	if v, ok := s.vals[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

func deferredClosureUnlock(s *store, k string, v int) {
	s.mu.Lock() // ok: the unlock lives inside a deferred closure
	defer func() {
		s.vals[k] = v
		s.mu.Unlock()
	}()
}

func twoLocks(s *store, other *sync.Mutex, k string) int {
	other.Lock() // ok: this lock is balanced; only s.mu leaks below
	defer other.Unlock()
	s.mu.Lock() // want "s.mu.Lock is not matched by s.mu.Unlock on every path"
	if v, ok := s.vals[k]; ok {
		s.mu.Unlock()
		return v
	}
	return -1
}
