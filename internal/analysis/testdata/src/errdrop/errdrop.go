// Testdata for the errdrop analyzer: error returns may not be dropped
// by bare calls, defers, go statements, or blank assignment; the fmt
// print family and infallible writers are exempt; fmt.Errorf must wrap
// with %w.
package errdrop

import (
	"bytes"
	"fmt"
	"os"
)

func bareCall() {
	os.Remove("x") // want "call discards its error result"
}

func deferred(f *os.File) {
	defer f.Close() // want "deferred call discards its error result"
}

func worker() error { return nil }

func spawn() {
	go worker() // want "spawned call discards its error result"
}

func blankAssign() {
	_ = os.Remove("x") // want "error discarded into _"
}

func tupleBlank() {
	_, _ = os.Create("x") // want "error discarded into _"
}

func handled() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}

func infallibleWriter(b *bytes.Buffer) {
	b.WriteString("ok") // ok: bytes.Buffer never returns a non-nil error
}

func printing(n int) {
	fmt.Println("status", n) // ok: fmt print family is exempt, mirrors errcheck defaults
}

func wrapBad(err error) error {
	return fmt.Errorf("load: %v", err) // want "fmt.Errorf formats an error without %w"
}

func wrapGood(err error) error {
	return fmt.Errorf("load: %w", err) // ok: chain preserved
}
