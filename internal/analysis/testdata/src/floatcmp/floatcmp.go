// Testdata for the floatcmp analyzer: exact float equality is flagged
// except for the bit-deterministic idioms (constant folding, the zero
// sentinel, the x != x NaN test).
package floatcmp

func equal(a, b float64) bool {
	return a == b // want "exact == on float operands"
}

func notEqual(a, b float64) bool {
	return a != b // want "exact != on float operands"
}

func zeroGuard(x float64) bool {
	return x == 0 // ok: constant-zero sentinel / division guard
}

func isNaN(x float64) bool {
	return x != x // ok: the NaN idiom
}

func constFold() bool {
	return 0.1+0.2 == 0.3 // ok: both operands constant, folded at compile time
}

func switchTag(x float64) int {
	switch x { // want "switch on a float tag compares exactly"
	case 1.5:
		return 1
	}
	return 0
}

func intsFine(a, b int) bool {
	return a == b // ok: integers compare exactly
}
