// Testdata for ctxfirst in the serving layer: this directory is loaded
// under the import path leodivide/internal/serve, so every exported
// fallible function must take a context first and actually use it — a
// server that cannot be cancelled cannot drain on shutdown.
package serve

import "context"

// New is the compliant shape: context first, threaded into the
// long-running setup work (dataset generation).
func New(ctx context.Context, entries int) error {
	return ctx.Err()
}

func Listen(addr string) error { // want "exported fallible serve.Listen must take context.Context as its first parameter"
	return nil
}

func Query(key string, ctx context.Context) error { // want "Query takes context.Context as parameter 2" "exported fallible serve.Query must take context.Context as its first parameter"
	return ctx.Err()
}

func Warm(ctx context.Context) error { // want "Warm accepts a context but never uses it"
	return nil
}

func drain(addr string) error { // ok: unexported helpers choose their own contract
	return nil
}

func CacheSize(entries int) int { // ok: cannot fail, nothing to cancel
	return entries
}
