// Testdata for the multi-rule suppression edges: a directive naming
// several rules suppresses only the rules it names, and each named
// rule that silences nothing is reported stale individually — even
// when a sibling rule on the same directive fired.
package suppressmulti

import "time"

//lint:ignore detrand,floatcmp testdata: detrand fires here, floatcmp never does and must surface as stale
func now() time.Time { return time.Now() }

func mixed(f float64) bool {
	//lint:ignore floatcmp testdata: only floatcmp is named; the detrand finding on the same line must survive
	return float64(time.Now().Unix()) == f
}
