// Testdata for the maptaint analyzer: values derived from map
// iteration must not reach order-dependent sinks — float/string
// accumulators, last-writer-wins overwrites, or guarded selections
// with no deterministic key tie-break. Integer sums, pure max/min,
// key-bucketed writes, and key tie-breaks all stay quiet.
package maptaint

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "total accumulates an iteration-derived value over a map range"
	}
	return total
}

func sumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition commutes exactly
	}
	return n
}

func concatKeys(m map[string]int) string {
	out := ""
	for k := range m {
		out = out + k // want "out accumulates an iteration-derived value over a map range"
	}
	return out
}

func throughLocal(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		scaled := v * 0.5
		total += scaled // want "total accumulates an iteration-derived value over a map range"
	}
	return total
}

func loopInvariantStep(m map[string]int) float64 {
	total := 0.0
	for range m {
		total += 0.25 // ok: adds a loop-invariant amount per entry
	}
	return total
}

func lastWriter(m map[string]string) string {
	var last string
	for _, v := range m {
		last = v // want "last is overwritten on every map iteration"
	}
	return last
}

func argmaxNoTieBreak(m map[string]int) string {
	var bestKey string
	best := -1
	for k, n := range m {
		if n > best {
			bestKey, best = k, n // want "selection of bestKey depends on map iteration order"
		}
	}
	return bestKey
}

func argmaxKeyTieBreak(m map[string]int) string {
	var bestKey string
	best := -1
	for k, n := range m {
		if n > best || (n == best && k < bestKey) {
			bestKey, best = k, n // ok: the key tie-break makes ties deterministic
		}
	}
	return bestKey
}

func pureMax(m map[string]int) int {
	best := 0
	for _, n := range m {
		if n > best {
			best = n // ok: a pure max is order-independent
		}
	}
	return best
}

func bucketed(m map[string][]int, out map[string]int) {
	for k, vs := range m {
		out[k] = len(vs) // ok: keyed by the iteration key, order-independent
	}
}

func counter(m map[string]bool) int {
	n := 0
	for range m {
		n++ // ok: a count does not depend on visit order
	}
	return n
}
