// Testdata for the waitbalance analyzer: completion obligations must
// hold on every path — Add before the goroutine (not inside it), a
// Done/Wait on every path after an Add, and a published completion
// channel closed in a defer so a panicking callee cannot strand its
// waiters.
package waitbalance

import "sync"

func addInsideGoroutine(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "wg.Add inside the spawned goroutine races wg.Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addWithoutDone(jobs []func()) {
	var wg sync.WaitGroup
	wg.Add(len(jobs)) // want "wg.Add has a path to the function exit with no wg.Done or wg.Wait"
	for _, j := range jobs {
		go j()
	}
}

func addThenWait(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1) // ok: wg.Wait sits on every path to the exit
		go func(run func()) {
			defer wg.Done()
			run()
		}(j)
	}
	wg.Wait()
}

func addParamGroup(wg *sync.WaitGroup) {
	wg.Add(1) // ok: a parameter group's balance is the caller's contract
}

// result is the singleflight shape: done is the completion channel
// followers wait on.
type result struct {
	done chan struct{}
	val  int
}

type flightMap struct {
	mu     sync.Mutex
	flight map[string]*result
}

func (m *flightMap) leaderUnsafe(key string, fill func() int) int {
	r := &result{done: make(chan struct{})}
	m.mu.Lock()
	m.flight[key] = r
	m.mu.Unlock()
	r.val = fill() // want "a panic in fill"
	m.mu.Lock()
	delete(m.flight, key)
	m.mu.Unlock()
	close(r.done)
	return r.val
}

func (m *flightMap) leaderSafe(key string, fill func() int) int {
	r := &result{done: make(chan struct{})}
	m.mu.Lock()
	m.flight[key] = r
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.flight, key)
		m.mu.Unlock()
		close(r.done)
	}()
	r.val = fill() // ok: the deferred cleanup closes done even on panic
	return r.val
}

func unpublishedClose(work func() int) int {
	done := make(chan struct{})
	v := work() // ok: done was never published, nobody else can wait on it
	close(done)
	return v
}
