// Testdata for the detrand analyzer: ambient nondeterminism sources
// must be flagged; explicitly seeded generators and type references
// must not.
package detrand

import (
	"math/rand"
	"os"
	"time"
)

func clock() time.Time {
	return time.Now() // want "time.Now is ambient wall-clock input"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // ok: measures a caller-provided instant
}

func globalDraw() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global source"
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: sanctioned seeded constructor
}

func typeRef(rng *rand.Rand) float64 {
	return rng.Float64() // ok: method on an injected generator, not the global source
}

func env() string {
	return os.Getenv("HOME") // want "os.Getenv makes the run depend on the environment"
}

func lookup() (string, bool) {
	return os.LookupEnv("SEED") // want "os.LookupEnv makes the run depend on the environment"
}
