// Testdata for detrand's package exemption: this directory is loaded
// under the import path leodivide/internal/obs, where wall-clock reads
// are the whole point (metrics measure time), so nothing here may be
// flagged.
package obs

import "time"

func Stamp() time.Time {
	return time.Now() // ok: internal/obs is exempt by design
}
