// Testdata for ctxfirst in a contract package: this directory is
// loaded under the import path leodivide/internal/par, so every
// exported fallible function must take a context first and actually
// use it.
package par

import "context"

// Do is the compliant shape: context first, threaded into the work.
func Do(ctx context.Context, n int) error {
	return ctx.Err()
}

func Missing(n int) error { // want "exported fallible par.Missing must take context.Context as its first parameter"
	return nil
}

func Misplaced(n int, ctx context.Context) error { // want "Misplaced takes context.Context as parameter 2" "exported fallible par.Misplaced must take context.Context as its first parameter"
	return ctx.Err()
}

func Unused(ctx context.Context) error { // want "Unused accepts a context but never uses it"
	return nil
}

func Blank(_ context.Context) error { // want "Blank declares a blank context parameter"
	return nil
}

func helper(n int) error { // ok: unexported helpers choose their own contract
	return nil
}

func Pure(n int) int { // ok: cannot fail, nothing to cancel
	return n * 2
}
