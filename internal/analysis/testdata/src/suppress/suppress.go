// Testdata for the suppression layer: a reasoned lint:ignore silences
// the finding on its own line or the line below; unused, malformed,
// and unknown-rule directives are themselves findings.
package suppress

import "time"

//lint:ignore detrand testdata: suppression on the line above must cover this finding
func now() time.Time { return time.Now() }

func sameLine() time.Time {
	return time.Now() //lint:ignore detrand testdata: suppression on the same line must cover this finding
}

//lint:ignore detrand testdata: nothing to silence here, must surface as unused
func pure() int { return 1 }

//lint:ignore
func malformed() int { return 2 }

//lint:ignore nosuchrule testdata: unknown rules must surface
func unknownRule() int { return 3 }
