// Testdata for the goroutinecapture analyzer: concurrently-executed
// closures must not write captured state unsynchronized (clause 1),
// and go/defer closures in loops must take the iteration value as an
// argument rather than capturing it (clause 2).
package goroutinecapture

import (
	"context"
	"sync"

	"leodivide/internal/par"
)

func use(int) {}

func sharedCounter(items []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, it := range items {
		go func(v int) {
			defer wg.Done()
			total += v // want "go statement writes captured variable total without synchronization"
		}(it)
	}
	wg.Wait()
	return total
}

func lockedCounter(items []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, it := range items {
		go func(v int) {
			defer wg.Done()
			mu.Lock()
			total += v // ok: the write sits inside a Lock..Unlock interval
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return total
}

func mapWrite(items []string) map[string]bool {
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func(v string) {
			defer wg.Done()
			seen[v] = true // want "go statement writes captured map seen without synchronization"
		}(items[i])
	}
	wg.Wait()
	return seen
}

func sliceSlots(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func(i int) {
			defer wg.Done()
			out[i] = items[i] * 2 // ok: disjoint per-task slot, the sanctioned result pattern
		}(i)
	}
	wg.Wait()
	return out
}

func parWorkerWrite(ctx context.Context, items []int) (int, error) {
	total := 0
	err := par.ForEach(ctx, 4, len(items), func(i int) error {
		total += items[i] // want "par.ForEach worker writes captured variable total without synchronization"
		return nil
	})
	return total, err
}

func parWorkerSlots(ctx context.Context, items []int) ([]int, error) {
	out := make([]int, len(items))
	err := par.ForEach(ctx, 4, len(items), func(i int) error {
		out[i] = items[i] * 2 // ok: per-task slot
		return nil
	})
	return out, err
}

func loopVarGo(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, it := range items {
		go func() {
			defer wg.Done()
			use(it) // want "go statement captures loop variable it; pass it as an argument"
		}()
	}
	wg.Wait()
}

func loopVarDefer(items []int) {
	for _, it := range items {
		defer func() {
			use(it) // want "deferred closure captures loop variable it; pass it as an argument"
		}()
	}
}

func loopVarAsArg(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, it := range items {
		go func(v int) {
			defer wg.Done()
			use(v) // ok: the iteration value arrives as an argument
		}(it)
	}
	wg.Wait()
}

func forLoopVar(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			use(i) // want "go statement captures loop variable i; pass it as an argument"
		}()
	}
	wg.Wait()
}
