// Testdata for detrand on the techno-economics cost path: this
// directory is loaded under the import path leodivide/internal/econ,
// which carries no exemption — cost curves are replayed byte-for-byte
// in the golden corpus, so a depreciation clock, a jittered price, or
// an environment-sourced discount would silently break replay.
package econ

import (
	"math/rand"
	"os"
	"time"
)

type CostModel struct {
	SatelliteUSD float64
	LifeYears    float64
}

// AgeDiscountUSD reads the wall clock to age the fleet, which makes
// the priced scenario a function of when the run happened.
func AgeDiscountUSD(m CostModel, launched time.Time) float64 {
	age := time.Now().Sub(launched) // want "time.Now is ambient wall-clock input"
	return m.SatelliteUSD * age.Hours() / (m.LifeYears * 365 * 24)
}

// AgeDiscountAtUSD is the sanctioned shape: the pricing instant is a
// caller-provided input, so the same scenario prices the same way.
func AgeDiscountAtUSD(m CostModel, launched, at time.Time) float64 {
	age := at.Sub(launched) // ok: instant supplied by the caller
	return m.SatelliteUSD * age.Hours() / (m.LifeYears * 365 * 24)
}

func JitteredPriceUSD(m CostModel) float64 {
	return m.SatelliteUSD * (1 + 0.01*rand.Float64()) // want "rand.Float64 draws from the process-global source"
}

func SeededPriceUSD(m CostModel, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // ok: seeded generator from RunConfig
	return m.SatelliteUSD * (1 + 0.01*rng.Float64())
}

func DiscountOverride() string {
	return os.Getenv("LEODIVIDE_DISCOUNT") // want "os.Getenv makes the run depend on the environment"
}
