package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder catches the bug class that most reliably breaks golden
// replay: Go randomizes map iteration order, so a `range` over a map
// that appends to an outer slice or writes output bakes that randomness
// into the result. The repo's sanctioned pattern — collect keys, sort,
// iterate the sorted slice — passes automatically: an append target
// that is sorted on every control-flow path from the loop to the
// function exit is considered ordered. (v1 accepted any sort call
// positioned after the loop; the CFG check closes the conditional-sort
// hole, where `if cond { sort.Strings(keys) }` left the else path
// unsorted.)
//
// Order-dependent *value* flows — float/string accumulation, selections
// without tie-breaks, derived locals — are maptaint's business; this
// rule keeps the syntactic container/output clauses.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "map range whose body appends to an outer slice (without a sort on every following path) " +
		"or writes output — map iteration order would leak into results",
	Engine: EngineDataflow,
	Run:    maporderRun,
}

var maporderWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

var maporderFmtWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func maporderRun(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				maporderFunc(p, n)
			}
			return true
		})
	}
}

// maporderFunc checks the map-range loops on fn's own CFG. Nested
// function literals build their own graphs and are visited separately,
// so a sort inside a closure never excuses an append outside it (and
// vice versa).
func maporderFunc(p *Pass, fn ast.Node) {
	cfg := p.CFG(fn)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				continue
			}
			if t := p.Info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					maporderLoop(p, cfg, rs)
				}
			}
		}
	}
}

func maporderLoop(p *Pass, cfg *CFG, rs *ast.RangeStmt) {
	inspectShallow(rs.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if obj := callIdentObj(p, call); obj == types.Universe.Lookup("append") {
			maporderAppend(p, cfg, rs, call)
			return
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if maporderWriteMethods[sel.Sel.Name] && p.Info.Selections[sel] != nil {
				p.Reportf(call.Pos(), "%s inside a map range writes in random iteration order; iterate sorted keys instead", sel.Sel.Name)
				return
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := p.Info.Uses[id].(*types.PkgName); ok &&
					pn.Imported().Path() == "fmt" && maporderFmtWriters[sel.Sel.Name] {
					p.Reportf(call.Pos(), "fmt.%s inside a map range writes in random iteration order; iterate sorted keys instead", sel.Sel.Name)
				}
			}
		}
	})
}

// maporderAppend flags append(target, ...) when target lives outside
// the loop and some path from the loop to the function exit passes no
// sort of it. Targets may be plain identifiers or selector chains
// (s.items); both are matched against later sort.*/slices.* arguments
// by expression identity.
func maporderAppend(p *Pass, cfg *CFG, rs *ast.RangeStmt, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	var name string
	switch target := call.Args[0].(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(target)
		if obj == nil || within(obj.Pos(), rs.Body) {
			return // loop-local scratch; its use sites get their own look
		}
		name = target.Name
	case *ast.SelectorExpr:
		base := baseIdentObj(p, target)
		if base == nil || within(base.Pos(), rs.Body) {
			return
		}
		name = types.ExprString(target)
	default:
		return
	}
	if sortedOnEveryPath(p, cfg, rs, types.ExprString(call.Args[0])) {
		return
	}
	p.Reportf(call.Pos(), "append to %s inside a map range records random iteration order; sort %s on every path after the loop (sort.* / slices.*) or iterate sorted keys", name, name)
}

// sortedOnEveryPath reports whether every control-flow path from the
// range loop to the function exit either passes a statement sorting the
// expression (spelled identically) via sort.* / slices.*, or leaves the
// function without exposing it — a `return nil, err` or a panic inside
// the loop discards the partially-built slice, so iteration order never
// reaches a caller on that path.
func sortedOnEveryPath(p *Pass, cfg *CFG, rs *ast.RangeStmt, targetExpr string) bool {
	header, _ := cfg.BlockOf(rs)
	if header == nil {
		return false
	}
	base := targetExpr
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	sortsTarget := func(b *Block) bool {
		for _, bn := range b.Nodes {
			found := false
			inspectShallow(bn, func(x ast.Node) {
				call, ok := x.(*ast.CallExpr)
				if !ok || found {
					return
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return
				}
				pn, ok := p.Info.Uses[id].(*types.PkgName)
				if !ok {
					return
				}
				if path := pn.Imported().Path(); path != "sort" && path != "slices" {
					return
				}
				for _, arg := range call.Args {
					if types.ExprString(arg) == targetExpr {
						found = true
					}
				}
			})
			if found {
				return true
			}
		}
		return false
	}
	// escapesWithout reports whether a block ends the function without
	// the target: a return whose results never mention the target's
	// base identifier, or a panic. Such blocks terminate a path
	// harmlessly — the appended data is thrown away.
	escapesWithout := func(b *Block) bool {
		for _, bn := range b.Nodes {
			switch s := bn.(type) {
			case *ast.ReturnStmt:
				if len(s.Results) == 0 {
					// A bare return exposes named results; harmless
					// only when the target is not among them.
					var ft *ast.FuncType
					switch fn := cfg.Fn.(type) {
					case *ast.FuncDecl:
						ft = fn.Type
					case *ast.FuncLit:
						ft = fn.Type
					}
					if ft != nil && ft.Results != nil {
						for _, field := range ft.Results.List {
							for _, nm := range field.Names {
								if nm.Name == base {
									return false
								}
							}
						}
					}
					return true
				}
				mentions := false
				for _, res := range s.Results {
					inspectShallow(res, func(x ast.Node) {
						if id, ok := x.(*ast.Ident); ok && id.Name == base {
							mentions = true
						}
					})
				}
				return !mentions
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if callIdentObj(p, call) == types.Universe.Lookup("panic") {
						return true
					}
				}
			}
		}
		return false
	}
	// Unsorted on some path ⟺ the exit is reachable from the loop
	// header while avoiding every block that sorts the target or
	// leaves the function without it.
	return !cfg.PathExistsAvoiding([]*Block{header}, cfg.Exit, func(b *Block) bool {
		return sortsTarget(b) || escapesWithout(b)
	})
}

// inspectShallow visits nodes under root without descending into
// nested function literals.
func inspectShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func callIdentObj(p *Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(id)
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}
