package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder catches the bug class that most reliably breaks golden
// replay: Go randomizes map iteration order, so a `range` over a map
// that appends to an outer slice, accumulates a float, or writes
// output bakes that randomness into the result. The repo's sanctioned
// pattern — collect keys, sort, iterate the sorted slice — passes
// automatically: an append target that is later passed to a sort.* or
// slices.* call in the same function is considered ordered.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "map range whose body appends to an outer slice (without a later sort in the same function), " +
		"accumulates a float, or writes output — map iteration order would leak into results",
	Run: maporderRun,
}

var maporderWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

var maporderFmtWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func maporderRun(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				maporderFunc(p, body)
			}
			return true
		})
	}
}

// maporderFunc checks the map-range loops whose nearest enclosing
// function is body. Nested function literals are skipped here; the
// outer Inspect visits them on their own, so a sort inside a closure
// never excuses an append outside it (and vice versa).
func maporderFunc(p *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	inspectShallow(body, func(n ast.Node) {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := p.Info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
	})
	for _, rs := range ranges {
		maporderLoop(p, body, rs)
	}
}

func maporderLoop(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	inspectShallow(rs.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := callIdentObj(p, n); obj == types.Universe.Lookup("append") {
				maporderAppend(p, fnBody, rs, n)
				return
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if maporderWriteMethods[sel.Sel.Name] && p.Info.Selections[sel] != nil {
					p.Reportf(n.Pos(), "%s inside a map range writes in random iteration order; iterate sorted keys instead", sel.Sel.Name)
					return
				}
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok &&
						pn.Imported().Path() == "fmt" && maporderFmtWriters[sel.Sel.Name] {
						p.Reportf(n.Pos(), "fmt.%s inside a map range writes in random iteration order; iterate sorted keys instead", sel.Sel.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN && n.Tok != token.MUL_ASSIGN {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || !isFloat(p.Info.TypeOf(id)) {
				return
			}
			if obj := p.Info.ObjectOf(id); obj != nil && !within(obj.Pos(), rs.Body) {
				p.Reportf(n.Pos(), "float accumulation over a map range is order-dependent (float rounding); sum over sorted keys")
			}
		}
	})
}

// maporderAppend flags append(target, ...) when target lives outside
// the loop and is never sorted later in the same function.
func maporderAppend(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil || within(obj.Pos(), rs.Body) {
		return // loop-local scratch; its use sites get their own look
	}
	if sortedAfter(p, fnBody, obj, rs.End()) {
		return
	}
	p.Reportf(call.Pos(), "append to %s inside a map range records random iteration order; sort %s after the loop (sort.* / slices.*) or iterate sorted keys", obj.Name(), obj.Name())
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call after pos within body.
func sortedAfter(p *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := arg.(*ast.Ident); ok && p.Info.ObjectOf(aid) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// inspectShallow visits nodes under root without descending into
// nested function literals.
func inspectShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func callIdentObj(p *Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(id)
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}
