package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkFunc parses and type-checks a file containing one function and
// returns the func decl, its CFG+reaching-defs solution, and the
// type info.
func checkFunc(t *testing.T, src string) (*ast.FuncDecl, *ReachDefs, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "dftest.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fn == nil {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("no function")
	}
	cfg := buildCFG(fn)
	return fn, reachingDefs(cfg, info), info
}

// varNamed finds the unique *types.Var with the given name in info.Defs.
func varNamed(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for id, obj := range info.Defs {
		if id.Name != name {
			continue
		}
		if v, ok := obj.(*types.Var); ok {
			if found != nil {
				t.Fatalf("multiple vars named %q", name)
			}
			found = v
		}
	}
	if found == nil {
		t.Fatalf("no var named %q", name)
	}
	return found
}

// returnStmt finds the n-th (0-based) return statement in fn.
func returnStmt(t *testing.T, fn ast.Node, n int) *ast.ReturnStmt {
	t.Helper()
	var ret *ast.ReturnStmt
	i := 0
	ast.Inspect(fn, func(node ast.Node) bool {
		if r, ok := node.(*ast.ReturnStmt); ok {
			if i == n {
				ret = r
			}
			i++
		}
		return true
	})
	if ret == nil {
		t.Fatalf("return #%d not found", n)
	}
	return ret
}

func TestReachDefsKill(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f() int {
	x := 1
	x = 2
	return x
}`)
	x := varNamed(t, info, "x")
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 1 {
		t.Fatalf("defs reaching return = %d, want 1 (x=2 kills x:=1)", len(defs))
	}
	as, ok := defs[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN {
		t.Fatalf("surviving def should be the plain assignment, got %T", defs[0])
	}
}

func TestReachDefsBranchMerge(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	x := varNamed(t, info, "x")
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 2 {
		t.Fatalf("defs reaching return = %d, want 2 (both branches merge)", len(defs))
	}
}

func TestReachDefsBothBranchesKill(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`)
	x := varNamed(t, info, "x")
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 2 {
		t.Fatalf("defs = %d, want 2 (x=2, x=3; x:=1 killed on both paths)", len(defs))
	}
	for _, d := range defs {
		if as, ok := d.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			t.Fatal("x := 1 must be killed by both branches")
		}
	}
}

func TestReachDefsLoopBackEdge(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = x + i
	}
	return x
}`)
	x := varNamed(t, info, "x")
	// At the return, both the initial x := 0 (zero-iteration path) and
	// the loop-body x = x+i (back edge) may reach.
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 2 {
		t.Fatalf("defs = %d, want 2 (init + loop body via back edge)", len(defs))
	}
}

func TestReachDefsParamsAtEntry(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f(a int) int {
	return a
}`)
	a := varNamed(t, info, "a")
	defs := rd.DefsAt(returnStmt(t, fn, 0), a)
	if len(defs) != 1 {
		t.Fatalf("defs = %d, want 1 (parameter entry def)", len(defs))
	}
	if defs[0] != fn {
		t.Fatalf("parameter def node = %T, want the FuncDecl itself", defs[0])
	}
}

func TestReachDefsParamShadowedByAssign(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f(a int) int {
	a = 7
	return a
}`)
	a := varNamed(t, info, "a")
	defs := rd.DefsAt(returnStmt(t, fn, 0), a)
	if len(defs) != 1 {
		t.Fatalf("defs = %d, want 1 (assignment kills entry def)", len(defs))
	}
	if defs[0] == fn {
		t.Fatal("entry def must be killed by the assignment")
	}
}

func TestReachDefsRangeBinding(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f(m map[string]int) int {
	total := 0
	for _, v := range m {
		total = total + v
	}
	return total
}`)
	v := varNamed(t, info, "v")
	// Inside the loop body, the only def of v is the range statement.
	var bodyAssign *ast.AssignStmt
	ast.Inspect(fn, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			bodyAssign = as
		}
		return true
	})
	defs := rd.DefsAt(bodyAssign, v)
	if len(defs) != 1 {
		t.Fatalf("defs of range value var = %d, want 1", len(defs))
	}
	if _, ok := defs[0].(*ast.RangeStmt); !ok {
		t.Fatalf("def node = %T, want *ast.RangeStmt", defs[0])
	}
}

func TestReachDefsInBlockOrder(t *testing.T) {
	// Within one basic block, a def after the queried node must not
	// reach it.
	fn, rd, info := checkFunc(t, `func f() int {
	x := 1
	y := x
	x = 2
	return y
}`)
	x := varNamed(t, info, "x")
	var yDecl *ast.AssignStmt
	ast.Inspect(fn, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "y" {
				yDecl = as
			}
		}
		return true
	})
	defs := rd.DefsAt(yDecl, x)
	if len(defs) != 1 {
		t.Fatalf("defs of x at y := x: %d, want 1", len(defs))
	}
	if as, ok := defs[0].(*ast.AssignStmt); !ok || as.Tok != token.DEFINE {
		t.Fatalf("x := 1 should be the reaching def, got %T", defs[0])
	}
}

func TestReachDefsVarDecl(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f() int {
	var x int
	return x
}`)
	x := varNamed(t, info, "x")
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 1 {
		t.Fatalf("defs = %d, want 1 (var decl)", len(defs))
	}
	if _, ok := defs[0].(*ast.DeclStmt); !ok {
		t.Fatalf("def node = %T, want *ast.DeclStmt", defs[0])
	}
}

func TestReachDefsDefNodesAndVars(t *testing.T) {
	_, rd, info := checkFunc(t, `func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	x := varNamed(t, info, "x")
	if got := len(rd.DefNodes(x)); got != 2 {
		t.Fatalf("DefNodes(x) = %d, want 2", got)
	}
	names := map[string]bool{}
	for _, v := range rd.Vars() {
		names[v.Name()] = true
	}
	if !names["x"] || !names["c"] {
		t.Fatalf("Vars() missing tracked variables: %v", names)
	}
}

func TestReachDefsFuncLitIsolated(t *testing.T) {
	// An assignment inside a nested closure must not register as a def
	// of the outer variable on the outer function's solution.
	fn, rd, info := checkFunc(t, `func f() int {
	x := 1
	g := func() { x = 2 }
	g()
	return x
}`)
	x := varNamed(t, info, "x")
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 1 {
		t.Fatalf("defs = %d, want 1 (closure write not tracked on outer CFG)", len(defs))
	}
	_ = fn
}

func TestReachDefsIncDec(t *testing.T) {
	fn, rd, info := checkFunc(t, `func f() int {
	x := 1
	x++
	return x
}`)
	x := varNamed(t, info, "x")
	defs := rd.DefsAt(returnStmt(t, fn, 0), x)
	if len(defs) != 1 {
		t.Fatalf("defs = %d, want 1 (x++ kills x := 1)", len(defs))
	}
	if _, ok := defs[0].(*ast.IncDecStmt); !ok {
		t.Fatalf("def node = %T, want *ast.IncDecStmt", defs[0])
	}
}
