// Package usgeo is the United States geography substrate: the fifty
// states with approximate geographic frames, deterministic synthetic
// county subdivision, and point sampling. It exists so the synthetic
// Broadband Data Collection can place locations at plausible US
// coordinates and attach them to county-level income records without
// shipping (or depending on) TIGER shapefiles.
//
// State frames are coarse bounding quadrilaterals — adequate for a model
// whose geographic resolution is the ~250 km² service cell, and fully
// documented as a substitution in DESIGN.md.
package usgeo

import (
	"fmt"
	"math"
	"sort"

	"leodivide/internal/geo"
)

// State describes one US state frame.
type State struct {
	// Abbr is the USPS abbreviation, e.g. "CA".
	Abbr string
	// Name is the full state name.
	Name string
	// FIPS is the two-digit state FIPS code.
	FIPS string
	// LatLo, LatHi, LngLo, LngHi bound the state's frame.
	LatLo, LatHi, LngLo, LngHi float64
	// Counties is the approximate real number of counties.
	Counties int
	// RuralWeight is the state's share weight when distributing
	// un(der)served locations (larger = more rural unserved demand).
	RuralWeight float64
}

// Area returns the frame's area in km².
func (s State) Area() float64 {
	return geo.RectArea(s.LatLo, s.LatHi, s.LngLo, s.LngHi)
}

// Center returns the frame's central coordinate.
func (s State) Center() geo.LatLng {
	return geo.LatLng{Lat: (s.LatLo + s.LatHi) / 2, Lng: (s.LngLo + s.LngHi) / 2}
}

// Contains reports whether p falls inside the state frame.
func (s State) Contains(p geo.LatLng) bool {
	return p.Lat >= s.LatLo && p.Lat <= s.LatHi && p.Lng >= s.LngLo && p.Lng <= s.LngHi
}

// states lists the fifty states with coarse frames, real county counts,
// and rural weights loosely tracking each state's share of US unserved
// broadband locations (mountain West, Appalachia, the Deep South and
// Alaska weigh heaviest relative to population).
var states = []State{
	{"AL", "Alabama", "01", 30.2, 35.0, -88.5, -84.9, 67, 2.6},
	// Alaska's frame is trimmed to the latitudes where nearly all of its
	// communities (and broadband-serviceable locations) sit; the far
	// North Slope is excluded from the sampling frame.
	{"AK", "Alaska", "02", 54.5, 66.5, -168.0, -130.0, 30, 1.8},
	{"AZ", "Arizona", "04", 31.3, 37.0, -114.8, -109.0, 15, 2.2},
	{"AR", "Arkansas", "05", 33.0, 36.5, -94.6, -89.6, 75, 2.4},
	{"CA", "California", "06", 32.5, 42.0, -124.4, -114.1, 58, 2.8},
	{"CO", "Colorado", "08", 37.0, 41.0, -109.1, -102.0, 64, 1.6},
	{"CT", "Connecticut", "09", 41.0, 42.1, -73.7, -71.8, 8, 0.3},
	{"DE", "Delaware", "10", 38.4, 39.8, -75.8, -75.0, 3, 0.2},
	{"FL", "Florida", "12", 25.1, 31.0, -87.6, -80.0, 67, 2.0},
	{"GA", "Georgia", "13", 30.4, 35.0, -85.6, -80.8, 159, 2.6},
	{"HI", "Hawaii", "15", 18.9, 22.2, -160.3, -154.8, 5, 0.4},
	{"ID", "Idaho", "16", 42.0, 49.0, -117.2, -111.0, 44, 1.5},
	{"IL", "Illinois", "17", 37.0, 42.5, -91.5, -87.0, 102, 1.8},
	{"IN", "Indiana", "18", 37.8, 41.8, -88.1, -84.8, 92, 1.5},
	{"IA", "Iowa", "19", 40.4, 43.5, -96.6, -90.1, 99, 1.5},
	{"KS", "Kansas", "20", 37.0, 40.0, -102.1, -94.6, 105, 1.4},
	{"KY", "Kentucky", "21", 36.5, 39.1, -89.6, -81.9, 120, 2.8},
	{"LA", "Louisiana", "22", 29.0, 33.0, -94.0, -89.0, 64, 2.4},
	{"ME", "Maine", "23", 43.1, 47.5, -71.1, -66.9, 16, 1.0},
	{"MD", "Maryland", "24", 37.9, 39.7, -79.5, -75.0, 24, 0.5},
	{"MA", "Massachusetts", "25", 41.2, 42.9, -73.5, -69.9, 14, 0.4},
	{"MI", "Michigan", "26", 41.7, 47.5, -90.4, -82.4, 83, 2.2},
	{"MN", "Minnesota", "27", 43.5, 49.4, -97.2, -89.5, 87, 1.6},
	{"MS", "Mississippi", "28", 30.2, 35.0, -91.7, -88.1, 82, 3.0},
	{"MO", "Missouri", "29", 36.0, 40.6, -95.8, -89.1, 115, 2.4},
	{"MT", "Montana", "30", 44.4, 49.0, -116.1, -104.0, 56, 1.6},
	{"NE", "Nebraska", "31", 40.0, 43.0, -104.1, -95.3, 93, 1.2},
	{"NV", "Nevada", "32", 35.0, 42.0, -120.0, -114.0, 17, 1.0},
	{"NH", "New Hampshire", "33", 42.7, 45.3, -72.6, -70.6, 10, 0.5},
	{"NJ", "New Jersey", "34", 38.9, 41.4, -75.6, -73.9, 21, 0.3},
	{"NM", "New Mexico", "35", 31.3, 37.0, -109.1, -103.0, 33, 2.2},
	{"NY", "New York", "36", 40.5, 45.0, -79.8, -71.9, 62, 1.8},
	{"NC", "North Carolina", "37", 33.8, 36.6, -84.3, -75.5, 100, 2.6},
	{"ND", "North Dakota", "38", 45.9, 49.0, -104.1, -96.6, 53, 0.9},
	{"OH", "Ohio", "39", 38.4, 42.0, -84.8, -80.5, 88, 1.8},
	{"OK", "Oklahoma", "40", 33.6, 37.0, -103.0, -94.4, 77, 2.2},
	{"OR", "Oregon", "41", 42.0, 46.3, -124.6, -116.5, 36, 1.5},
	{"PA", "Pennsylvania", "42", 39.7, 42.3, -80.5, -74.7, 67, 2.0},
	{"RI", "Rhode Island", "44", 41.1, 42.0, -71.9, -71.1, 5, 0.1},
	{"SC", "South Carolina", "45", 32.0, 35.2, -83.4, -78.5, 46, 1.8},
	{"SD", "South Dakota", "46", 42.5, 45.9, -104.1, -96.4, 66, 1.1},
	{"TN", "Tennessee", "47", 35.0, 36.7, -90.3, -81.6, 95, 2.6},
	{"TX", "Texas", "48", 25.8, 36.5, -106.6, -93.5, 254, 3.4},
	{"UT", "Utah", "49", 37.0, 42.0, -114.1, -109.0, 29, 1.2},
	{"VT", "Vermont", "50", 42.7, 45.0, -73.4, -71.5, 14, 0.6},
	{"VA", "Virginia", "51", 36.5, 39.5, -83.7, -75.2, 133, 2.2},
	{"WA", "Washington", "53", 45.5, 49.0, -124.8, -116.9, 39, 1.4},
	{"WV", "West Virginia", "54", 37.2, 40.6, -82.6, -77.7, 55, 2.8},
	{"WI", "Wisconsin", "55", 42.5, 47.1, -92.9, -86.8, 72, 1.8},
	{"WY", "Wyoming", "56", 41.0, 45.0, -111.1, -104.1, 23, 1.2},
}

// States returns all fifty state frames, sorted by FIPS code.
func States() []State {
	out := make([]State, len(states))
	copy(out, states)
	sort.Slice(out, func(i, j int) bool { return out[i].FIPS < out[j].FIPS })
	return out
}

// ByAbbr returns the state with the given USPS abbreviation.
func ByAbbr(abbr string) (State, error) {
	for _, s := range states {
		if s.Abbr == abbr {
			return s, nil
		}
	}
	return State{}, fmt.Errorf("usgeo: unknown state %q", abbr)
}

// StateAt returns the state whose frame contains p. When frames overlap
// (coarse rectangles do), the state whose center is nearest wins.
func StateAt(p geo.LatLng) (State, bool) {
	best := State{}
	bestDist := math.Inf(1)
	found := false
	for _, s := range states {
		if !s.Contains(p) {
			continue
		}
		d := geo.DistanceKm(p, s.Center())
		if d < bestDist {
			best, bestDist, found = s, d, true
		}
	}
	return best, found
}

// County is a synthetic county: a deterministic tile of its state's
// frame with a FIPS-style identifier.
type County struct {
	// FIPS is the 5-digit county identifier (state FIPS + 3-digit
	// county sequence).
	FIPS string
	// StateAbbr is the owning state's USPS abbreviation.
	StateAbbr string
	// Name is a synthetic county name.
	Name string
	// LatLo, LatHi, LngLo, LngHi bound the county tile.
	LatLo, LatHi, LngLo, LngHi float64
}

// Center returns the county tile's central coordinate.
func (c County) Center() geo.LatLng {
	return geo.LatLng{Lat: (c.LatLo + c.LatHi) / 2, Lng: (c.LngLo + c.LngHi) / 2}
}

// Contains reports whether p falls inside the county tile.
func (c County) Contains(p geo.LatLng) bool {
	return p.Lat >= c.LatLo && p.Lat <= c.LatHi && p.Lng >= c.LngLo && p.Lng <= c.LngHi
}

// Counties tiles the state frame into its real county count using a
// near-square grid, producing deterministic synthetic counties ordered
// by FIPS.
func Counties(s State) []County {
	n := s.Counties
	if n <= 0 {
		n = 1
	}
	// Choose a grid cols × rows >= n with aspect close to the frame's.
	aspect := (s.LngHi - s.LngLo) / math.Max(s.LatHi-s.LatLo, 1e-9)
	cols := int(math.Max(1, math.Round(math.Sqrt(float64(n)*aspect))))
	rows := (n + cols - 1) / cols
	out := make([]County, 0, n)
	for idx := 0; idx < n; idx++ {
		r := idx / cols
		c := idx % cols
		latStep := (s.LatHi - s.LatLo) / float64(rows)
		lngStep := (s.LngHi - s.LngLo) / float64(cols)
		out = append(out, County{
			FIPS:      fmt.Sprintf("%s%03d", s.FIPS, idx*2+1), // odd codes, like real FIPS
			StateAbbr: s.Abbr,
			Name:      fmt.Sprintf("%s County %d", s.Abbr, idx+1),
			LatLo:     s.LatLo + latStep*float64(r),
			LatHi:     s.LatLo + latStep*float64(r+1),
			LngLo:     s.LngLo + lngStep*float64(c),
			LngHi:     s.LngLo + lngStep*float64(c+1),
		})
	}
	// The grid may have more tiles than counties; stretch the last
	// county over the remainder of its row so the tiles cover the whole
	// frame.
	if n%cols != 0 {
		out[n-1].LngHi = s.LngHi
	}
	return out
}

// AllCounties returns every synthetic county in the country, sorted by
// FIPS.
func AllCounties() []County {
	var out []County
	for _, s := range States() {
		out = append(out, Counties(s)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FIPS < out[j].FIPS })
	return out
}

// CountyAt returns the county containing p, searching the containing
// state's tiles.
func CountyAt(p geo.LatLng) (County, bool) {
	s, ok := StateAt(p)
	if !ok {
		return County{}, false
	}
	for _, c := range Counties(s) {
		if c.Contains(p) {
			return c, true
		}
	}
	return County{}, false
}

// TotalRuralWeight sums all states' rural weights.
func TotalRuralWeight() float64 {
	t := 0.0
	for _, s := range states {
		t += s.RuralWeight
	}
	return t
}

// ConusBounds returns the bounding frame of the contiguous United
// States.
func ConusBounds() (latLo, latHi, lngLo, lngHi float64) {
	return 25.1, 49.4, -124.8, -66.9
}

// InConus reports whether p is inside the CONUS bounding frame.
func InConus(p geo.LatLng) bool {
	la, lh, lo, lg := ConusBounds()
	return p.Lat >= la && p.Lat <= lh && p.Lng >= lo && p.Lng <= lg
}

// GatewaySite is one satellite ground-station (gateway) location.
type GatewaySite struct {
	Name string
	Pos  geo.LatLng
}

// GatewaySites returns a synthetic US gateway network modelled on the
// publicly mapped Starlink ground-station footprint: roughly three
// dozen sites spread so that most of CONUS, southern Alaska and Hawaii
// are within one coverage radius of a gateway. Used by the bent-pipe
// simulation mode, where a satellite can only serve users while it
// also sees a gateway.
func GatewaySites() []GatewaySite {
	return []GatewaySite{
		{"North Bend WA", geo.LatLng{Lat: 47.5, Lng: -121.8}},
		{"Merrillan WI", geo.LatLng{Lat: 44.4, Lng: -90.8}},
		{"Redmond OR", geo.LatLng{Lat: 44.3, Lng: -121.2}},
		{"Boca Chica TX", geo.LatLng{Lat: 26.0, Lng: -97.2}},
		{"Sanford FL", geo.LatLng{Lat: 28.8, Lng: -81.3}},
		{"Greenville PA", geo.LatLng{Lat: 41.4, Lng: -80.4}},
		{"Kalama WA", geo.LatLng{Lat: 46.0, Lng: -122.8}},
		{"Conrad MT", geo.LatLng{Lat: 48.2, Lng: -111.9}},
		{"Colburn ID", geo.LatLng{Lat: 48.4, Lng: -116.5}},
		{"Cheney KS", geo.LatLng{Lat: 37.6, Lng: -97.8}},
		{"Slidell LA", geo.LatLng{Lat: 30.3, Lng: -89.8}},
		{"Hawthorne CA", geo.LatLng{Lat: 33.9, Lng: -118.3}},
		{"Baxley GA", geo.LatLng{Lat: 31.8, Lng: -82.3}},
		{"Hitterdal MN", geo.LatLng{Lat: 46.9, Lng: -96.3}},
		{"Litchfield CT", geo.LatLng{Lat: 41.7, Lng: -73.2}},
		{"Loring ME", geo.LatLng{Lat: 46.9, Lng: -68.0}},
		{"Billings MT", geo.LatLng{Lat: 45.8, Lng: -108.5}},
		{"Tulsa OK", geo.LatLng{Lat: 36.2, Lng: -95.9}},
		{"Lubbock TX", geo.LatLng{Lat: 33.6, Lng: -101.9}},
		{"Albuquerque NM", geo.LatLng{Lat: 35.1, Lng: -106.6}},
		{"Las Vegas NV", geo.LatLng{Lat: 36.2, Lng: -115.1}},
		{"Salt Lake City UT", geo.LatLng{Lat: 40.8, Lng: -111.9}},
		{"Denver CO", geo.LatLng{Lat: 39.7, Lng: -105.0}},
		{"Bismarck ND", geo.LatLng{Lat: 46.8, Lng: -100.8}},
		{"North Platte NE", geo.LatLng{Lat: 41.1, Lng: -100.8}},
		{"Columbus OH", geo.LatLng{Lat: 40.0, Lng: -83.0}},
		{"Nashville TN", geo.LatLng{Lat: 36.2, Lng: -86.8}},
		{"Charlotte NC", geo.LatLng{Lat: 35.2, Lng: -80.8}},
		{"Richmond VA", geo.LatLng{Lat: 37.5, Lng: -77.5}},
		{"Phoenix AZ", geo.LatLng{Lat: 33.4, Lng: -112.1}},
		{"Boise ID", geo.LatLng{Lat: 43.6, Lng: -116.2}},
		{"Fresno CA", geo.LatLng{Lat: 36.7, Lng: -119.8}},
		{"Fairbanks AK", geo.LatLng{Lat: 64.8, Lng: -147.7}},
		{"Anchorage AK", geo.LatLng{Lat: 61.2, Lng: -149.9}},
		{"Ketchikan AK", geo.LatLng{Lat: 55.3, Lng: -131.6}},
		{"Kahului HI", geo.LatLng{Lat: 20.9, Lng: -156.4}},
	}
}
