package usgeo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"leodivide/internal/geo"
)

func TestStatesTable(t *testing.T) {
	all := States()
	if len(all) != 50 {
		t.Fatalf("got %d states, want 50", len(all))
	}
	seenFIPS := map[string]bool{}
	seenAbbr := map[string]bool{}
	for _, s := range all {
		if len(s.FIPS) != 2 {
			t.Errorf("%s: FIPS %q not 2 digits", s.Abbr, s.FIPS)
		}
		if seenFIPS[s.FIPS] {
			t.Errorf("duplicate FIPS %s", s.FIPS)
		}
		seenFIPS[s.FIPS] = true
		if seenAbbr[s.Abbr] {
			t.Errorf("duplicate abbr %s", s.Abbr)
		}
		seenAbbr[s.Abbr] = true
		if s.LatHi <= s.LatLo || s.LngHi <= s.LngLo {
			t.Errorf("%s: degenerate frame", s.Abbr)
		}
		if s.Counties <= 0 {
			t.Errorf("%s: no counties", s.Abbr)
		}
		if s.RuralWeight <= 0 {
			t.Errorf("%s: nonpositive rural weight", s.Abbr)
		}
		if s.Area() <= 0 {
			t.Errorf("%s: nonpositive area", s.Abbr)
		}
	}
	// Texas has the most counties of any state.
	tx, err := ByAbbr("TX")
	if err != nil {
		t.Fatal(err)
	}
	if tx.Counties != 254 {
		t.Errorf("TX counties = %d, want 254", tx.Counties)
	}
}

func TestByAbbr(t *testing.T) {
	if _, err := ByAbbr("ZZ"); err == nil {
		t.Error("unknown state should fail")
	}
	ca, err := ByAbbr("CA")
	if err != nil || ca.Name != "California" {
		t.Errorf("ByAbbr(CA) = %+v, %v", ca, err)
	}
}

func TestStateAtKnownPoints(t *testing.T) {
	cases := []struct {
		p    geo.LatLng
		want string
	}{
		{geo.LatLng{Lat: 39.74, Lng: -104.99}, "CO"}, // Denver
		{geo.LatLng{Lat: 30.27, Lng: -97.74}, "TX"},  // Austin
		{geo.LatLng{Lat: 44.97, Lng: -93.27}, "MN"},  // Minneapolis
		{geo.LatLng{Lat: 21.31, Lng: -157.86}, "HI"}, // Honolulu
		{geo.LatLng{Lat: 61.22, Lng: -149.90}, "AK"}, // Anchorage
	}
	for _, tc := range cases {
		s, ok := StateAt(tc.p)
		if !ok || s.Abbr != tc.want {
			t.Errorf("StateAt(%v) = %v/%v, want %s", tc.p, s.Abbr, ok, tc.want)
		}
	}
	if _, ok := StateAt(geo.LatLng{Lat: 0, Lng: 0}); ok {
		t.Error("mid-Atlantic point should be in no state")
	}
}

func TestCountiesTiling(t *testing.T) {
	for _, abbr := range []string{"TX", "RI", "WV", "AK", "DE"} {
		s, err := ByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		counties := Counties(s)
		if len(counties) != s.Counties {
			t.Errorf("%s: %d county tiles, want %d", abbr, len(counties), s.Counties)
		}
		seen := map[string]bool{}
		for _, c := range counties {
			if seen[c.FIPS] {
				t.Errorf("%s: duplicate county FIPS %s", abbr, c.FIPS)
			}
			seen[c.FIPS] = true
			if !strings.HasPrefix(c.FIPS, s.FIPS) {
				t.Errorf("%s: county FIPS %s lacks state prefix", abbr, c.FIPS)
			}
			if len(c.FIPS) != 5 {
				t.Errorf("%s: county FIPS %s not 5 digits", abbr, c.FIPS)
			}
		}
	}
}

// Property: every point in a state's frame belongs to exactly one of
// its county tiles... except the stretched last-row seam, where it
// belongs to at least one.
func TestCountyCoverageProperty(t *testing.T) {
	s, err := ByAbbr("KY") // 120 counties; non-square tiling
	if err != nil {
		t.Fatal(err)
	}
	counties := Counties(s)
	f := func(a, b uint16) bool {
		p := geo.LatLng{
			Lat: s.LatLo + float64(a)/65536*(s.LatHi-s.LatLo),
			Lng: s.LngLo + float64(b)/65536*(s.LngHi-s.LngLo),
		}
		hits := 0
		for _, c := range counties {
			if c.Contains(p) {
				hits++
			}
		}
		return hits >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCountyAt(t *testing.T) {
	denver := geo.LatLng{Lat: 39.74, Lng: -104.99}
	c, ok := CountyAt(denver)
	if !ok {
		t.Fatal("CountyAt(Denver) not found")
	}
	if c.StateAbbr != "CO" {
		t.Errorf("county state = %s, want CO", c.StateAbbr)
	}
	if !c.Contains(denver) {
		t.Error("returned county does not contain the point")
	}
	if _, ok := CountyAt(geo.LatLng{Lat: 0, Lng: 0}); ok {
		t.Error("ocean point should have no county")
	}
}

func TestAllCounties(t *testing.T) {
	all := AllCounties()
	want := 0
	for _, s := range States() {
		want += s.Counties
	}
	if len(all) != want {
		t.Fatalf("AllCounties = %d, want %d", len(all), want)
	}
	seen := map[string]bool{}
	for i, c := range all {
		if seen[c.FIPS] {
			t.Errorf("duplicate FIPS %s", c.FIPS)
		}
		seen[c.FIPS] = true
		if i > 0 && all[i].FIPS < all[i-1].FIPS {
			t.Error("AllCounties not sorted by FIPS")
		}
	}
}

func TestTotalRuralWeight(t *testing.T) {
	if w := TotalRuralWeight(); w <= 0 || math.IsNaN(w) {
		t.Errorf("TotalRuralWeight = %v", w)
	}
}

func TestConus(t *testing.T) {
	if !InConus(geo.LatLng{Lat: 39, Lng: -98}) {
		t.Error("Kansas should be in CONUS")
	}
	if InConus(geo.LatLng{Lat: 61, Lng: -150}) {
		t.Error("Anchorage should not be in CONUS")
	}
	la, lh, lo, lg := ConusBounds()
	if la >= lh || lo >= lg {
		t.Error("degenerate CONUS bounds")
	}
}

func TestCountyCenterContained(t *testing.T) {
	for _, s := range States() {
		for _, c := range Counties(s) {
			if !c.Contains(c.Center()) {
				t.Errorf("%s: county %s does not contain its center", s.Abbr, c.FIPS)
			}
		}
	}
}

func TestGatewaySites(t *testing.T) {
	sites := GatewaySites()
	if len(sites) < 30 {
		t.Fatalf("only %d gateway sites", len(sites))
	}
	seen := map[string]bool{}
	for _, g := range sites {
		if g.Name == "" {
			t.Error("unnamed gateway")
		}
		if seen[g.Name] {
			t.Errorf("duplicate gateway %s", g.Name)
		}
		seen[g.Name] = true
		if !g.Pos.Valid() {
			t.Errorf("gateway %s has invalid position", g.Name)
		}
	}
	// Every CONUS state center should be within 1,700 km of a gateway
	// (the bent-pipe reach at a 10° gateway mask from 550 km).
	for _, s := range States() {
		if s.Abbr == "AK" || s.Abbr == "HI" {
			continue
		}
		c := s.Center()
		best := math.Inf(1)
		for _, g := range sites {
			if d := geo.DistanceKm(c, g.Pos); d < best {
				best = d
			}
		}
		if best > 1700 {
			t.Errorf("%s center is %v km from the nearest gateway", s.Abbr, best)
		}
	}
}

func TestGatewaySitesInNamedState(t *testing.T) {
	// Each gateway's name ends with its state abbreviation; the
	// coordinate must resolve to that state.
	for _, g := range GatewaySites() {
		want := g.Name[len(g.Name)-2:]
		s, ok := StateAt(g.Pos)
		if !ok {
			t.Errorf("gateway %s outside all state frames", g.Name)
			continue
		}
		if s.Abbr != want {
			t.Errorf("gateway %s resolves to %s", g.Name, s.Abbr)
		}
	}
}
