package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"leodivide"
	"leodivide/internal/obs"
)

// The test scale: small enough that dataset generation stays in the
// hundreds of milliseconds, the same scale the golden corpus freezes.
const testScale = 0.02

var (
	testDatasetOnce sync.Once
	testDataset     *leodivide.Dataset
	testDatasetErr  error
)

// sharedDataset generates the scale-0.02 dataset once for the whole
// package; the server treats it as immutable, so sharing is safe.
func sharedDataset(t *testing.T) *leodivide.Dataset {
	t.Helper()
	testDatasetOnce.Do(func() {
		cfg := leodivide.DefaultRunConfig()
		cfg.Scale = testScale
		testDataset, testDatasetErr = cfg.Generate(context.Background())
	})
	if testDatasetErr != nil {
		t.Fatal(testDatasetErr)
	}
	return testDataset
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	base := leodivide.DefaultRunConfig()
	base.Scale = testScale
	cfg.Scenario = leodivide.ScenarioConfig{RunConfig: base}
	if cfg.Dataset == nil {
		cfg.Dataset = sharedDataset(t)
	}
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postScenario(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scenario", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func scenarioBody(experiment string, extra string) string {
	body := fmt.Sprintf(`{"schema":%q,"experiment":%q`, leodivide.ScenarioSchema, experiment)
	if extra != "" {
		body += "," + extra
	}
	return body + "}"
}

// TestScenarioCacheHit is the acceptance check: serving the same
// scenario twice hits the cache — the second response arrives without
// re-running the experiment (obs run counter unchanged) and is
// byte-identical to the first.
func TestScenarioCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	runs := obs.Default.Counter("experiment.table1.runs")

	before := runs.Value()
	resp1, body1 := postScenario(t, ts.URL, scenarioBody("table1", ""))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get(CacheHeader); h != "miss" {
		t.Errorf("first request %s = %q, want miss", CacheHeader, h)
	}
	afterFirst := runs.Value()
	if afterFirst != before+1 {
		t.Fatalf("first request ran the experiment %d times, want 1", afterFirst-before)
	}

	resp2, body2 := postScenario(t, ts.URL, scenarioBody("table1", ""))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("second request %s = %q, want hit", CacheHeader, h)
	}
	if got := runs.Value(); got != afterFirst {
		t.Errorf("second request re-ran the experiment (runs %d -> %d); cache must serve it", afterFirst, got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response differs from the original bytes")
	}

	var r Response
	if err := json.Unmarshal(body1, &r); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	cfg := leodivide.DefaultScenarioConfig("table1")
	cfg.Scale = testScale
	wantKey, err := cfg.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if r.Key != wantKey {
		t.Errorf("response key %q, want canonical key %q", r.Key, wantKey)
	}
	if r.Schema != leodivide.ScenarioSchema || r.Experiment != "table1" || r.Scale != testScale {
		t.Errorf("response envelope %+v mismatches the scenario", r)
	}
}

// TestScenarioConcurrentIdentical: after a warm-up, N concurrent
// identical queries are all served from the cache — zero further
// experiment runs, byte-identical bodies — under `go test -race`.
func TestScenarioConcurrentIdentical(t *testing.T) {
	const n = 16
	_, ts := newTestServer(t, Config{})
	runs := obs.Default.Counter("experiment.fig1.runs")
	body := scenarioBody("fig1", "")

	_, warm := postScenario(t, ts.URL, body)
	before := runs.Value()

	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if got := runs.Value(); got != before {
		t.Errorf("concurrent identical queries ran the experiment %d more times, want 0", got-before)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, warm) {
			t.Errorf("response %d differs from the warm response", i)
		}
	}
}

// TestScenarioKnobs: a promoted knob (max_oversub) changes the key and
// the result; the default and an explicit default collapse to one key.
func TestScenarioKnobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, def := postScenario(t, ts.URL, scenarioBody("findings", ""))
	resp, explicit := postScenario(t, ts.URL, scenarioBody("findings", `"max_oversub":20`))
	if h := resp.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("explicit default max_oversub should share the default's cache entry, got %q", h)
	}
	if !bytes.Equal(def, explicit) {
		t.Error("explicit default produced different bytes than the implicit default")
	}

	respLoose, loose := postScenario(t, ts.URL, scenarioBody("findings", `"max_oversub":35`))
	if respLoose.StatusCode != http.StatusOK {
		t.Fatalf("max_oversub 35: %d %s", respLoose.StatusCode, loose)
	}
	if respLoose.Header.Get(CacheHeader) != "miss" {
		t.Errorf("a new oversubscription cap must be a cache miss")
	}
	var d, l Response
	if err := json.Unmarshal(def, &d); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(loose, &l); err != nil {
		t.Fatal(err)
	}
	if d.Key == l.Key {
		t.Error("different oversubscription caps share a canonical key")
	}
	if bytes.Equal(def, loose) {
		t.Error("findings at 35:1 should differ from 20:1 (F1 depends on the cap)")
	}
}

func TestScenarioValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"wrong schema", `{"schema":"nope/v9","experiment":"table1"}`, http.StatusBadRequest},
		{"missing experiment", scenarioBody("", ""), http.StatusBadRequest},
		{"unknown experiment", scenarioBody("tableau", ""), http.StatusBadRequest},
		{"unknown field", scenarioBody("table1", `"warp":9`), http.StatusBadRequest},
		{"negative oversub", scenarioBody("table2", `"max_oversub":-5`), http.StatusBadRequest},
		{"share above 1", scenarioBody("fig4", `"afford_share":1.5`), http.StatusBadRequest},
		{"descending spreads", scenarioBody("fig3", `"spreads":[10,2]`), http.StatusBadRequest},
		{"unknown plan", scenarioBody("fig4", `"plans":["Dialup Deluxe"]`), http.StatusInternalServerError},
		{"seed mismatch", scenarioBody("table1", `"seed":99`), http.StatusConflict},
		{"scale mismatch", scenarioBody("table1", `"scale":0.5`), http.StatusConflict},
		{"not json", `table1 please`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postScenario(t, ts.URL, tc.body)
			if resp.StatusCode != tc.code {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.code, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q is not {\"error\": ...}", body)
			}
		})
	}
}

// A plan filter is a real knob: fig4 restricted to one plan returns a
// smaller comparison.
func TestScenarioPlanFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postScenario(t, ts.URL,
		scenarioBody("fig4", `"plans":["Starlink Residential"]`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig4 with plan filter: %d %s", resp.StatusCode, body)
	}
	var r struct {
		Result leodivide.Fig4Result `json:"result"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Results) != 1 || r.Result.Results[0].Plan.Name != "Starlink Residential" {
		t.Errorf("filtered fig4 returned %d results, want exactly Starlink Residential", len(r.Result.Results))
	}
}

// TestScenarioSchemaCompat: a v1 body still resolves — onto the
// Starlink default, sharing the cache entry of the equivalent v2
// request — while v1 bodies using v2-only fields are rejected.
func TestScenarioSchemaCompat(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp2, body2 := postScenario(t, ts.URL, scenarioBody("table1", ""))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("v2 request: %d %s", resp2.StatusCode, body2)
	}
	v1Body := fmt.Sprintf(`{"schema":%q,"experiment":"table1"}`, leodivide.ScenarioSchemaV1)
	resp1, body1 := postScenario(t, ts.URL, v1Body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("v1 request: %d %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("v1 request %s = %q, want hit (must share the v2 default's cache entry)", CacheHeader, h)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("v1 request bytes differ from the equivalent v2 request")
	}

	resp, body := postScenario(t, ts.URL,
		fmt.Sprintf(`{"schema":%q,"experiment":"table1","constellation":"kuiper"}`, leodivide.ScenarioSchemaV1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("v1 request with v2-only field: %d %s, want 400", resp.StatusCode, body)
	}
}

// TestScenarioConstellation: selecting a constellation is a real knob —
// a new cache key and a different result — and unknown names are a 400
// that lists the valid options, mirroring the unknown-experiment shape.
func TestScenarioConstellation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, def := postScenario(t, ts.URL, scenarioBody("xconst", ""))
	resp, explicit := postScenario(t, ts.URL, scenarioBody("xconst", `"constellation":"starlink"`))
	if h := resp.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("explicit default constellation should share the default's cache entry, got %q", h)
	}
	if !bytes.Equal(def, explicit) {
		t.Error("explicit starlink produced different bytes than the implicit default")
	}

	respK, kuiper := postScenario(t, ts.URL, scenarioBody("table2", `"constellation":"kuiper"`))
	if respK.StatusCode != http.StatusOK {
		t.Fatalf("kuiper table2: %d %s", respK.StatusCode, kuiper)
	}
	if respK.Header.Get(CacheHeader) != "miss" {
		t.Error("a new constellation must be a cache miss")
	}
	_, starlink := postScenario(t, ts.URL, scenarioBody("table2", ""))
	if bytes.Equal(kuiper, starlink) {
		t.Error("kuiper table2 should differ from starlink table2")
	}

	respU, bad := postScenario(t, ts.URL, scenarioBody("table2", `"constellation":"iridium"`))
	if respU.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown constellation: %d %s, want 400", respU.StatusCode, bad)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(bad, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, `"iridium"`) {
		t.Errorf("error %q does not name the unknown constellation", e.Error)
	}
	for _, name := range []string{"starlink", "starlink-gen2", "kuiper", "oneweb"} {
		if !strings.Contains(e.Error, name) {
			t.Errorf("error %q does not list valid option %q", e.Error, name)
		}
	}
}

// TestScenarioRegion: the region selector is a real knob — an explicit
// default shares the default's cache entry, a sibling geography is a
// fresh miss with a different result (served lazily from a dataset
// generated at the server's own seed/scale), and unknown names are a
// 400 listing the valid set. A v2 body carrying the v3-only field is
// rejected; a v2 body without it shares the v3 default's cache entry.
func TestScenarioRegion(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, def := postScenario(t, ts.URL, scenarioBody("fig1", ""))
	resp, explicit := postScenario(t, ts.URL, scenarioBody("fig1", `"region":"us"`))
	if h := resp.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("explicit default region should share the default's cache entry, got %q", h)
	}
	if !bytes.Equal(def, explicit) {
		t.Error("explicit us produced different bytes than the implicit default")
	}

	respB, brazil := postScenario(t, ts.URL, scenarioBody("fig1", `"region":"brazil-rural"`))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("brazil-rural fig1: %d %s", respB.StatusCode, brazil)
	}
	if respB.Header.Get(CacheHeader) != "miss" {
		t.Error("a new region must be a cache miss")
	}
	if bytes.Equal(brazil, def) {
		t.Error("brazil-rural fig1 should differ from us fig1")
	}
	respB2, brazil2 := postScenario(t, ts.URL, scenarioBody("fig1", `"region":"brazil-rural"`))
	if h := respB2.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("repeated brazil-rural query %s = %q, want hit", CacheHeader, h)
	}
	if !bytes.Equal(brazil, brazil2) {
		t.Error("repeated brazil-rural query returned different bytes")
	}
	respT, taipei := postScenario(t, ts.URL, scenarioBody("fig1", `"region":"taipei-dense"`))
	if respT.StatusCode != http.StatusOK {
		t.Fatalf("taipei-dense fig1: %d %s", respT.StatusCode, taipei)
	}
	if bytes.Equal(taipei, brazil) || bytes.Equal(taipei, def) {
		t.Error("taipei-dense fig1 should differ from both siblings")
	}

	respU, bad := postScenario(t, ts.URL, scenarioBody("fig1", `"region":"atlantis"`))
	if respU.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown region: %d %s, want 400", respU.StatusCode, bad)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(bad, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, `"atlantis"`) {
		t.Errorf("error %q does not name the unknown region", e.Error)
	}
	for _, name := range []string{"us", "brazil-rural", "taipei-dense"} {
		if !strings.Contains(e.Error, name) {
			t.Errorf("error %q does not list valid option %q", e.Error, name)
		}
	}

	respV2Bad, v2bad := postScenario(t, ts.URL,
		fmt.Sprintf(`{"schema":%q,"experiment":"fig1","region":"brazil-rural"}`, leodivide.ScenarioSchemaV2))
	if respV2Bad.StatusCode != http.StatusBadRequest {
		t.Errorf("v2 request with v3-only region field: %d %s, want 400", respV2Bad.StatusCode, v2bad)
	}
	respV2, v2 := postScenario(t, ts.URL,
		fmt.Sprintf(`{"schema":%q,"experiment":"fig1"}`, leodivide.ScenarioSchemaV2))
	if respV2.StatusCode != http.StatusOK {
		t.Fatalf("v2 request: %d %s", respV2.StatusCode, v2)
	}
	if h := respV2.Header.Get(CacheHeader); h != "hit" {
		t.Errorf("v2 request %s = %q, want hit (must share the v3 default's cache entry)", CacheHeader, h)
	}
	if !bytes.Equal(v2, def) {
		t.Error("v2 request bytes differ from the equivalent v3 request")
	}
}

func TestRegionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/regions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []regionInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"us", "brazil-rural", "taipei-dense"}
	if len(list) != len(wantNames) {
		t.Fatalf("listed %d regions, want %d", len(list), len(wantNames))
	}
	for i, r := range list {
		if r.Name != wantNames[i] {
			t.Errorf("region %d = %q, want %q", i, r.Name, wantNames[i])
		}
		if r.DisplayName == "" || r.Description == "" {
			t.Errorf("region %q has empty display name or description: %+v", r.Name, r)
		}
	}
}

func TestConstellationsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/constellations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []constellationInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"starlink", "starlink-gen2", "kuiper", "oneweb"}
	if len(list) != len(wantNames) {
		t.Fatalf("listed %d constellations, want %d", len(list), len(wantNames))
	}
	for i, c := range list {
		if c.Name != wantNames[i] {
			t.Errorf("constellation %d = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Satellites <= 0 || c.Shells <= 0 || c.CellCapacityGbps <= 0 {
			t.Errorf("constellation %q has degenerate spec: %+v", c.Name, c)
		}
		if c.CostSatelliteUSD <= 0 || c.CostLifeYears <= 0 {
			t.Errorf("constellation %q has degenerate cost defaults: %+v", c.Name, c)
		}
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	want := leodivide.NewModel().Experiments()
	if len(list) != len(want) {
		t.Fatalf("listed %d experiments, registry has %d", len(list), len(want))
	}
	for i, e := range want {
		if list[i].Name != e.Name {
			t.Errorf("experiment %d = %q, want %q", i, list[i].Name, e.Name)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postScenario(t, ts.URL, scenarioBody("table1", ""))
	postScenario(t, ts.URL, scenarioBody("table1", ""))
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 miss, 1 hit", st)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", st.CacheEntries)
	}
	if st.CacheBytes <= 0 {
		t.Errorf("cache bytes = %d, want > 0 after a cached result", st.CacheBytes)
	}
	if st.CacheMaxBytes != DefaultCacheBytes {
		t.Errorf("cache max bytes = %d, want the default %d", st.CacheMaxBytes, DefaultCacheBytes)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(b)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, b)
	}
	postScenario(t, ts.URL, scenarioBody("table1", ""))
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "serve.requests") {
		t.Errorf("metrics endpoint does not expose serve.requests:\n%.400s", b)
	}
}

// TestRunGracefulShutdown: Run serves until its context is cancelled,
// then drains and returns nil.
func TestRunGracefulShutdown(t *testing.T) {
	base := leodivide.DefaultRunConfig()
	base.Scale = testScale
	s, err := New(context.Background(), Config{
		Scenario: leodivide.ScenarioConfig{RunConfig: base},
		Dataset:  sharedDataset(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
