package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Status classifies how a memo.get was satisfied.
type Status int

const (
	// StatusMiss: this caller ran the fill function.
	StatusMiss Status = iota
	// StatusHit: the cache already held the bytes.
	StatusHit
	// StatusCoalesced: an identical query was already in flight; this
	// caller waited for its result instead of running a second fill.
	StatusCoalesced
)

// String names the status in lowercase, matching the X-Leodivide-Cache
// response header values.
func (s Status) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusCoalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// memo is the serving layer's result store: a bounded LRU cache of
// canonical-key → response bytes, fronted by singleflight coalescing so
// identical in-flight queries run the underlying experiment exactly
// once. Determinism makes this sound: a scenario's canonical key fully
// determines its response bytes, so a cached or coalesced answer is
// byte-identical to a fresh run.
type memo struct {
	mu         sync.Mutex
	entries    map[string]*list.Element
	ll         *list.List // front = most recently used
	maxEntries int
	maxBytes   int64 // 0 = unbounded by size
	bytes      int64 // sum of key+value sizes of cached entries
	flight     map[string]*call
	evictions  int64
}

type memoEntry struct {
	key string
	val []byte
}

// call is one in-flight fill; followers wait on done and then read
// val/err, which the leader writes before closing done.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// newMemo returns a memo bounded to maxEntries cached results
// (maxEntries <= 0 selects a single-entry cache; a serving layer with
// no cache at all would defeat the point) and maxBytes of cached
// key+value data (<= 0 = no byte bound). The byte bound is what keeps
// a handful of large-scale scenario responses from growing RSS without
// limit under an entry-count-only cap.
func newMemo(maxEntries int, maxBytes int64) *memo {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &memo{
		entries:    make(map[string]*list.Element),
		ll:         list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		flight:     make(map[string]*call),
	}
}

// get returns the bytes for key, filling on a miss. Concurrent gets of
// the same key share one fill: the first caller (the leader) runs fill,
// later callers block until it completes and receive the same bytes and
// error. Successful fills are cached; errors are not, so a transient
// failure does not poison the key. A follower whose ctx ends before the
// leader finishes returns its own ctx error.
func (m *memo) get(ctx context.Context, key string, fill func() ([]byte, error)) ([]byte, Status, error) {
	m.mu.Lock()
	if el, ok := m.entries[key]; ok {
		m.ll.MoveToFront(el)
		val := el.Value.(*memoEntry).val
		m.mu.Unlock()
		return val, StatusHit, nil
	}
	if c, ok := m.flight[key]; ok {
		m.mu.Unlock()
		select {
		case <-c.done:
			return c.val, StatusCoalesced, c.err
		case <-ctx.Done():
			return nil, StatusCoalesced, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	m.flight[key] = c
	m.mu.Unlock()

	// The flight entry is already published: if fill panics, the
	// cleanup below must still run or every future get of this key
	// would block on done forever. The deferred form removes the
	// entry, marks the panic for coalesced waiters, and closes done
	// no matter how fill returns; the panic itself keeps unwinding
	// into the leader's caller.
	completed := false
	defer func() {
		if !completed {
			c.err = errFillPanicked
		}
		m.mu.Lock()
		delete(m.flight, key)
		if completed && c.err == nil {
			m.add(key, c.val)
		}
		m.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fill()
	completed = true
	return c.val, StatusMiss, c.err
}

// errFillPanicked is what coalesced waiters observe when the leader's
// fill panicked: their flight is abandoned, not wedged, and a retry
// will run a fresh fill.
var errFillPanicked = errors.New("serve: fill panicked in a coalesced leader")

// entrySize is the accounted footprint of one cached entry. Key and
// value both count: canonical keys are short, but the accounting should
// not assume so.
func entrySize(e *memoEntry) int64 {
	return int64(len(e.key)) + int64(len(e.val))
}

// add inserts under m.mu, evicting the least recently used entries past
// either bound (count or bytes). The newest entry always stays, even if
// it alone exceeds maxBytes — the caller just computed it, and serving
// it from cache once is strictly better than thrashing.
func (m *memo) add(key string, val []byte) {
	if el, ok := m.entries[key]; ok {
		m.ll.MoveToFront(el)
		e := el.Value.(*memoEntry)
		m.bytes -= entrySize(e)
		e.val = val
		m.bytes += entrySize(e)
	} else {
		e := &memoEntry{key: key, val: val}
		m.entries[key] = m.ll.PushFront(e)
		m.bytes += entrySize(e)
	}
	for m.ll.Len() > 1 && (m.ll.Len() > m.maxEntries || (m.maxBytes > 0 && m.bytes > m.maxBytes)) {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		e := oldest.Value.(*memoEntry)
		delete(m.entries, e.key)
		m.bytes -= entrySize(e)
		m.evictions++
		metricEvictions.Inc()
	}
}

// stats returns a consistent snapshot of the cache shape.
func (m *memo) stats() (entries int, bytes int64, evictions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len(), m.bytes, m.evictions
}
