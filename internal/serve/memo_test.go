package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoCoalescesConcurrentFills is the serving layer's core
// guarantee under `go test -race`: N goroutines asking for the same
// key run the fill exactly once, and every caller gets byte-identical
// bytes. The leader blocks inside fill until every other goroutine has
// been launched, so the test exercises the in-flight (coalescing) path
// rather than the warm-cache path.
func TestMemoCoalescesConcurrentFills(t *testing.T) {
	const followers = 31
	m := newMemo(8)
	var fills atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	want := []byte(`{"result":42}`)
	fill := func() ([]byte, error) {
		fills.Add(1)
		close(entered)
		<-release
		return want, nil
	}

	ctx := context.Background()
	type outcome struct {
		val    []byte
		status Status
		err    error
	}
	results := make(chan outcome, followers+1)
	get := func() {
		v, st, err := m.get(ctx, "k", fill)
		results <- outcome{v, st, err}
	}

	go get()
	<-entered // the leader is inside fill and holds the flight slot
	var launched sync.WaitGroup
	for i := 0; i < followers; i++ {
		launched.Add(1)
		go func() {
			launched.Done()
			get()
		}()
	}
	launched.Wait()
	close(release)

	statuses := map[Status]int{}
	for i := 0; i < followers+1; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("get returned error: %v", o.err)
		}
		if !bytes.Equal(o.val, want) {
			t.Fatalf("get returned %q, want %q (responses must be byte-identical)", o.val, want)
		}
		statuses[o.status]++
	}
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times for one key, want exactly 1", n)
	}
	if statuses[StatusMiss] != 1 {
		t.Errorf("want exactly one miss (the leader), got %d (statuses %v)", statuses[StatusMiss], statuses)
	}
}

func TestMemoHitAfterFill(t *testing.T) {
	m := newMemo(8)
	var fills int
	fill := func() ([]byte, error) { fills++; return []byte("v"), nil }
	ctx := context.Background()
	if _, st, err := m.get(ctx, "k", fill); err != nil || st != StatusMiss {
		t.Fatalf("first get: status %v, err %v", st, err)
	}
	v, st, err := m.get(ctx, "k", fill)
	if err != nil || st != StatusHit || string(v) != "v" {
		t.Fatalf("second get: %q, status %v, err %v", v, st, err)
	}
	if fills != 1 {
		t.Errorf("fill ran %d times, want 1", fills)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := newMemo(2)
	fillFor := func(k string, n *int) func() ([]byte, error) {
		return func() ([]byte, error) { *n++; return []byte(k), nil }
	}
	ctx := context.Background()
	var fa, fb, fc int
	mustGet := func(k string, fill func() ([]byte, error)) Status {
		t.Helper()
		_, st, err := m.get(ctx, k, fill)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	mustGet("a", fillFor("a", &fa))
	mustGet("b", fillFor("b", &fb))
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if st := mustGet("a", fillFor("a", &fa)); st != StatusHit {
		t.Fatalf("a should be cached, got %v", st)
	}
	mustGet("c", fillFor("c", &fc))
	if entries, evictions := m.stats(); entries != 2 || evictions != 1 {
		t.Errorf("stats = (%d entries, %d evictions), want (2, 1)", entries, evictions)
	}
	if st := mustGet("a", fillFor("a", &fa)); st != StatusHit {
		t.Errorf("recently-used key a should still hit, got %v", st)
	}
	// Refilling the evicted "b" pushes out the cache's new LRU, "c".
	if st := mustGet("b", fillFor("b", &fb)); st != StatusMiss {
		t.Errorf("evicted key b should miss, got %v", st)
	}
	if st := mustGet("c", fillFor("c", &fc)); st != StatusMiss {
		t.Errorf("key c should have been evicted by b's refill, got %v", st)
	}
	if fa != 1 || fb != 2 || fc != 2 {
		t.Errorf("fill counts a=%d b=%d c=%d, want 1, 2, 2", fa, fb, fc)
	}
}

func TestMemoErrorsAreNotCached(t *testing.T) {
	m := newMemo(8)
	boom := errors.New("boom")
	calls := 0
	ctx := context.Background()
	fill := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("ok"), nil
	}
	if _, _, err := m.get(ctx, "k", fill); !errors.Is(err, boom) {
		t.Fatalf("first get err = %v, want boom", err)
	}
	v, st, err := m.get(ctx, "k", fill)
	if err != nil || st != StatusMiss || string(v) != "ok" {
		t.Fatalf("retry after error: %q, status %v, err %v (errors must not poison the key)", v, st, err)
	}
}

func TestMemoFollowerHonorsOwnContext(t *testing.T) {
	m := newMemo(8)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		//lint:ignore errdrop test leader; outcome checked via the follower
		m.get(context.Background(), "k", func() ([]byte, error) {
			close(entered)
			<-release
			return []byte("v"), nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := m.get(ctx, "k", func() ([]byte, error) {
		return nil, fmt.Errorf("follower must not fill")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follower err = %v, want context.Canceled", err)
	}
	close(release)
}
