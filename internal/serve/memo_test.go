package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoCoalescesConcurrentFills is the serving layer's core
// guarantee under `go test -race`: N goroutines asking for the same
// key run the fill exactly once, and every caller gets byte-identical
// bytes. The leader blocks inside fill until every other goroutine has
// been launched, so the test exercises the in-flight (coalescing) path
// rather than the warm-cache path.
func TestMemoCoalescesConcurrentFills(t *testing.T) {
	const followers = 31
	m := newMemo(8, 0)
	var fills atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	want := []byte(`{"result":42}`)
	fill := func() ([]byte, error) {
		fills.Add(1)
		close(entered)
		<-release
		return want, nil
	}

	ctx := context.Background()
	type outcome struct {
		val    []byte
		status Status
		err    error
	}
	results := make(chan outcome, followers+1)
	get := func() {
		v, st, err := m.get(ctx, "k", fill)
		results <- outcome{v, st, err}
	}

	go get()
	<-entered // the leader is inside fill and holds the flight slot
	var launched sync.WaitGroup
	for i := 0; i < followers; i++ {
		launched.Add(1)
		go func() {
			launched.Done()
			get()
		}()
	}
	launched.Wait()
	close(release)

	statuses := map[Status]int{}
	for i := 0; i < followers+1; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("get returned error: %v", o.err)
		}
		if !bytes.Equal(o.val, want) {
			t.Fatalf("get returned %q, want %q (responses must be byte-identical)", o.val, want)
		}
		statuses[o.status]++
	}
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times for one key, want exactly 1", n)
	}
	if statuses[StatusMiss] != 1 {
		t.Errorf("want exactly one miss (the leader), got %d (statuses %v)", statuses[StatusMiss], statuses)
	}
}

func TestMemoHitAfterFill(t *testing.T) {
	m := newMemo(8, 0)
	var fills int
	fill := func() ([]byte, error) { fills++; return []byte("v"), nil }
	ctx := context.Background()
	if _, st, err := m.get(ctx, "k", fill); err != nil || st != StatusMiss {
		t.Fatalf("first get: status %v, err %v", st, err)
	}
	v, st, err := m.get(ctx, "k", fill)
	if err != nil || st != StatusHit || string(v) != "v" {
		t.Fatalf("second get: %q, status %v, err %v", v, st, err)
	}
	if fills != 1 {
		t.Errorf("fill ran %d times, want 1", fills)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := newMemo(2, 0)
	fillFor := func(k string, n *int) func() ([]byte, error) {
		return func() ([]byte, error) { *n++; return []byte(k), nil }
	}
	ctx := context.Background()
	var fa, fb, fc int
	mustGet := func(k string, fill func() ([]byte, error)) Status {
		t.Helper()
		_, st, err := m.get(ctx, k, fill)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	mustGet("a", fillFor("a", &fa))
	mustGet("b", fillFor("b", &fb))
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if st := mustGet("a", fillFor("a", &fa)); st != StatusHit {
		t.Fatalf("a should be cached, got %v", st)
	}
	mustGet("c", fillFor("c", &fc))
	if entries, _, evictions := m.stats(); entries != 2 || evictions != 1 {
		t.Errorf("stats = (%d entries, %d evictions), want (2, 1)", entries, evictions)
	}
	if st := mustGet("a", fillFor("a", &fa)); st != StatusHit {
		t.Errorf("recently-used key a should still hit, got %v", st)
	}
	// Refilling the evicted "b" pushes out the cache's new LRU, "c".
	if st := mustGet("b", fillFor("b", &fb)); st != StatusMiss {
		t.Errorf("evicted key b should miss, got %v", st)
	}
	if st := mustGet("c", fillFor("c", &fc)); st != StatusMiss {
		t.Errorf("key c should have been evicted by b's refill, got %v", st)
	}
	if fa != 1 || fb != 2 || fc != 2 {
		t.Errorf("fill counts a=%d b=%d c=%d, want 1, 2, 2", fa, fb, fc)
	}
}

func TestMemoErrorsAreNotCached(t *testing.T) {
	m := newMemo(8, 0)
	boom := errors.New("boom")
	calls := 0
	ctx := context.Background()
	fill := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("ok"), nil
	}
	if _, _, err := m.get(ctx, "k", fill); !errors.Is(err, boom) {
		t.Fatalf("first get err = %v, want boom", err)
	}
	v, st, err := m.get(ctx, "k", fill)
	if err != nil || st != StatusMiss || string(v) != "ok" {
		t.Fatalf("retry after error: %q, status %v, err %v (errors must not poison the key)", v, st, err)
	}
}

// TestMemoByteEviction pins the byte-bound behaviour: entries are
// evicted oldest-first once cached key+value bytes exceed the cap, even
// when the entry count is far below maxEntries, and the accounted bytes
// shrink to match. The newest entry is always retained, even when it
// alone exceeds the cap.
func TestMemoByteEviction(t *testing.T) {
	// Each entry: 1-byte key + 40-byte value = 41 bytes. Cap fits two.
	m := newMemo(100, 90)
	ctx := context.Background()
	val := bytes.Repeat([]byte("x"), 40)
	put := func(k string) {
		t.Helper()
		if _, _, err := m.get(ctx, k, func() ([]byte, error) { return val, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if entries, size, evictions := m.stats(); entries != 2 || size != 82 || evictions != 0 {
		t.Fatalf("after 2 puts: stats = (%d, %d, %d), want (2, 82, 0)", entries, size, evictions)
	}
	// A third entry pushes bytes to 123 > 90: the oldest ("a") goes.
	put("c")
	if entries, size, evictions := m.stats(); entries != 2 || size != 82 || evictions != 1 {
		t.Errorf("after byte overflow: stats = (%d, %d, %d), want (2, 82, 1)", entries, size, evictions)
	}
	if _, st, err := m.get(ctx, "a", func() ([]byte, error) { return val, nil }); err != nil || st != StatusMiss {
		t.Errorf("oldest key a should have been evicted by bytes, got status %v, err %v", st, err)
	}
	// An entry larger than the whole cap evicts everything else but is
	// itself retained: serving it once from cache beats thrashing.
	huge := bytes.Repeat([]byte("y"), 200)
	if _, _, err := m.get(ctx, "h", func() ([]byte, error) { return huge, nil }); err != nil {
		t.Fatal(err)
	}
	if entries, size, _ := m.stats(); entries != 1 || size != 201 {
		t.Errorf("oversized entry: stats = (%d entries, %d bytes), want (1, 201)", entries, size)
	}
	if _, st, err := m.get(ctx, "h", func() ([]byte, error) { return huge, nil }); err != nil || st != StatusHit {
		t.Errorf("oversized entry should still be served from cache, got status %v, err %v", st, err)
	}
}

// TestMemoUnboundedBytes pins that maxBytes <= 0 disables the byte
// bound entirely: only the entry count evicts.
func TestMemoUnboundedBytes(t *testing.T) {
	m := newMemo(4, 0)
	ctx := context.Background()
	big := bytes.Repeat([]byte("z"), 1<<16)
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, _, err := m.get(ctx, k, func() ([]byte, error) { return big, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if entries, size, evictions := m.stats(); entries != 4 || size != 4*(1<<16)+4 || evictions != 0 {
		t.Errorf("stats = (%d, %d, %d), want (4, %d, 0)", entries, size, evictions, 4*(1<<16)+4)
	}
}

func TestMemoFollowerHonorsOwnContext(t *testing.T) {
	m := newMemo(8, 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		//lint:ignore errdrop test leader; outcome checked via the follower
		m.get(context.Background(), "k", func() ([]byte, error) {
			close(entered)
			<-release
			return []byte("v"), nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := m.get(ctx, "k", func() ([]byte, error) {
		return nil, fmt.Errorf("follower must not fill")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follower err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestMemoPanickingFillDoesNotWedgeKey is the regression test for the
// singleflight panic hole the waitbalance lint rule found: the leader
// published its flight entry, then ran fill without a deferred
// cleanup, so a panicking fill left the done channel open forever and
// every later get of the key blocked on it. The fixed get must (a) let
// the panic keep unwinding through the leader, (b) release a coalesced
// follower with an error rather than a hang, and (c) leave the key
// workable so a retry runs a fresh fill.
func TestMemoPanickingFillDoesNotWedgeKey(t *testing.T) {
	m := newMemo(8, 0)
	ctx := context.Background()
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		//lint:ignore errdrop test leader; the panic is the outcome under test
		m.get(ctx, "k", func() ([]byte, error) {
			close(entered)
			<-release
			panic("fill exploded")
		})
	}()

	// Grab the published flight entry while the fill is in progress —
	// this is exactly the call a coalesced follower would wait on.
	<-entered
	m.mu.Lock()
	c := m.flight["k"]
	m.mu.Unlock()
	if c == nil {
		t.Fatal("no flight entry published while fill is running")
	}
	close(release)

	if recovered := <-leaderDone; recovered != "fill exploded" {
		t.Fatalf("leader recover() = %v; the panic must keep unwinding through the leader", recovered)
	}
	// A waiting follower must have been released with an error, not
	// stranded on an open channel.
	select {
	case <-c.done:
	default:
		t.Fatal("flight done channel still open after the panicking fill; followers would block forever")
	}
	if c.err == nil {
		t.Fatal("panicked flight carries err = nil; followers would mistake it for success")
	}
	m.mu.Lock()
	_, stillInFlight := m.flight["k"]
	m.mu.Unlock()
	if stillInFlight {
		t.Fatal("flight entry survived the panic; the key is wedged for future callers")
	}

	// The key must not be wedged or poisoned: a fresh get runs a fresh
	// fill and caches normally.
	val, st, err := m.get(ctx, "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(val) != "ok" || st != StatusMiss {
		t.Fatalf("retry after panic = (%q, %v, %v), want (ok, miss, nil)", val, st, err)
	}
	if _, st, _ := m.get(ctx, "k", nil); st != StatusHit {
		t.Fatalf("second retry status = %v, want hit", st)
	}
}
