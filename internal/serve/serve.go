// Package serve is the scenario-query serving layer behind
// `leodivide serve`: an HTTP/JSON API answering what-if requests
// against one shared immutable in-memory Dataset.
//
// Production concerns are the point of the package:
//
//   - Every response is memoized in a bounded LRU cache keyed by the
//     scenario's canonical key (ScenarioConfig.CanonicalKey). The
//     determinism contract — a result is a pure function of the
//     scenario — is what makes a cached response exactly as good as a
//     fresh run, byte for byte.
//   - Identical in-flight queries coalesce (singleflight): one
//     experiment run feeds every concurrent requester of the same key.
//   - Experiment runs pass a bounded admission gate (par.Gate), so a
//     burst of distinct scenarios cannot oversubscribe the worker
//     pools each run fans out on.
//   - Request counts, latency histograms and cache traffic record into
//     internal/obs, so the CLI's -debug-addr endpoint (and the
//     server's own /metrics route) expose them live.
//   - Run drains connections on context cancellation (the CLI wires
//     SIGTERM/SIGINT to that context), so in-flight queries finish
//     before the process exits.
//
// Wire contract (schema leodivide-serve/v3; v1/v2 bodies still
// accepted — see leodivide.ScenarioRequest.ValidateSchema):
//
//	POST /v1/scenario       {"schema":"leodivide-serve/v3","experiment":"xconst","region":"brazil-rural",...}
//	GET  /v1/experiments
//	GET  /v1/constellations
//	GET  /v1/regions
//	GET  /v1/stats
//	GET  /healthz
//	GET  /metrics
//
// The X-Leodivide-Cache response header reports hit, miss or coalesced;
// the body is byte-identical across all three for the same scenario.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"leodivide"
	"leodivide/internal/constellation"
	"leodivide/internal/obs"
	"leodivide/internal/par"
	"leodivide/internal/region"
	"leodivide/internal/spectrum"
)

// Serving-layer observability (see internal/obs): request counts and
// latency, cache traffic, and experiment admission wait.
var (
	metricRequests  = obs.Default.Counter("serve.requests")
	metricErrors    = obs.Default.Counter("serve.errors")
	metricHits      = obs.Default.Counter("serve.cache.hits")
	metricMisses    = obs.Default.Counter("serve.cache.misses")
	metricCoalesced = obs.Default.Counter("serve.cache.coalesced")
	metricEvictions = obs.Default.Counter("serve.cache.evictions")
	metricReqSecs   = obs.Default.Histogram("serve.request.seconds", obs.DurationBuckets)
	metricRunSecs   = obs.Default.Histogram("serve.run.seconds", obs.DurationBuckets)
	metricWaitSecs  = obs.Default.Histogram("serve.admission_wait.seconds", obs.DurationBuckets)
)

// CacheHeader is the response header naming how the query was served:
// "hit", "miss" or "coalesced".
const CacheHeader = "X-Leodivide-Cache"

// Config describes a Server.
type Config struct {
	// Scenario pins the dataset identity (seed, scale, parallelism,
	// calibration default) every query runs against. Its Experiment
	// field is ignored — requests name their own.
	Scenario leodivide.ScenarioConfig
	// Dataset optionally supplies a pre-generated dataset matching
	// Scenario (including its region); nil makes New generate it.
	// Queries naming a different region generate that geography lazily
	// at the same (seed, scale) identity on first use.
	Dataset *leodivide.Dataset
	// CacheEntries bounds the memoized result cache (default 1024).
	CacheEntries int
	// CacheBytes bounds the cache's total key+value bytes. 0 selects
	// the default (256 MiB); negative means unbounded by size. Without
	// a byte bound a handful of large-scale scenario responses can
	// occupy far more memory than the entry count suggests.
	CacheBytes int64
	// MaxInflight bounds concurrently running experiments (0 = one per
	// CPU, via par.Workers).
	MaxInflight int
}

// DefaultCacheBytes is the cache byte bound when Config.CacheBytes is 0.
const DefaultCacheBytes int64 = 256 << 20

// Server answers scenario queries against one shared immutable dataset.
type Server struct {
	ds   *leodivide.Dataset
	base leodivide.ScenarioConfig
	memo *memo
	gate *par.Gate
	mux  *http.ServeMux

	// baseRegion is the geography of the shared startup dataset;
	// regionDS memoizes the sibling geographies, generated lazily at
	// the same (seed, scale) identity the first time a query names
	// them. The mutex also serializes those generations, so concurrent
	// first queries for one region cost one generation.
	baseRegion string
	regionMu   sync.Mutex
	regionDS   map[string]*leodivide.Dataset

	// Server-local traffic counters backing /v1/stats (the obs
	// counters are process-global and shared across servers).
	requests, hits, misses, coalesced, errs atomic.Int64
}

// New builds a server: validates the base scenario, generates the
// shared dataset (unless cfg.Dataset supplies it) and wires the routes.
// The context cancels dataset generation.
func New(ctx context.Context, cfg Config) (*Server, error) {
	base := cfg.Scenario
	base.Experiment = ""
	if err := base.RunConfig.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	ds := cfg.Dataset
	if ds == nil {
		var err error
		if ds, err = base.Generate(ctx); err != nil {
			return nil, fmt.Errorf("serve: generate dataset: %w", err)
		}
	}
	baseRegion := base.Region
	if baseRegion == "" {
		baseRegion = region.DefaultKey
	}
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = 1024
	}
	bytes := cfg.CacheBytes
	switch {
	case bytes == 0:
		bytes = DefaultCacheBytes
	case bytes < 0:
		bytes = 0 // memo-internal convention: 0 = no byte bound
	}
	s := &Server{
		ds:         ds,
		base:       base,
		memo:       newMemo(entries, bytes),
		gate:       par.NewGate(cfg.MaxInflight),
		mux:        http.NewServeMux(),
		baseRegion: baseRegion,
		regionDS:   make(map[string]*leodivide.Dataset),
	}
	s.mux.HandleFunc("POST /v1/scenario", s.handleScenario)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/constellations", s.handleConstellations)
	s.mux.HandleFunc("GET /v1/regions", s.handleRegions)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Dataset returns the shared dataset the server answers against.
func (s *Server) Dataset() *leodivide.Dataset { return s.ds }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Run serves on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes immediately, in-flight requests get up to drain
// to finish. A nil error means a clean start-to-drain lifecycle.
func (s *Server) Run(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{Handler: s.mux}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- srv.Shutdown(dctx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}

// Request is the JSON body of POST /v1/scenario: the shared scenario
// wire contract (leodivide.ScenarioRequest), so a body the CLI's
// -scenario flag accepts replays byte-for-byte here. Dataset-identity
// fields (seed, scale, calibrated) are pointers: absent means "inherit
// the server's dataset"; present-but-different is a 409, because the
// server answers against one immutable dataset. Parallelism is not a
// request knob at all — results are identical at every worker count.
type Request = leodivide.ScenarioRequest

// Response is the JSON body of a successful scenario query. Key is the
// scenario's canonical cache key; Result is the experiment's result
// exactly as the registry returned it.
type Response struct {
	Schema     string  `json:"schema"`
	Key        string  `json:"key"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Result     any     `json:"result"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// httpError carries a status code through the resolve path.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// resolve merges a request into the server's base scenario. All three
// wire schemas resolve: a v3 body as-is, a v2 body (which predates the
// region selector) onto the default "us" region, and a v1 body (which
// additionally predates the constellation selector and cost overrides)
// onto the Starlink default — so identities minted under the older
// schemas keep hitting the same cache slots. The region selector is a
// knob, not a dataset-identity conflict: the server generates sibling
// geographies lazily at its own (seed, scale); only seed and scale
// mismatches 409.
func (s *Server) resolve(req Request) (leodivide.ScenarioConfig, error) {
	if req.Schema == "" {
		// The HTTP contract is versioned: unlike the CLI convenience
		// form, a request must declare which schema it speaks.
		return leodivide.ScenarioConfig{}, &httpError{http.StatusBadRequest,
			fmt.Sprintf("unsupported schema %q (want %q)", req.Schema, leodivide.ScenarioSchema)}
	}
	if err := req.ValidateSchema(); err != nil {
		return leodivide.ScenarioConfig{}, &httpError{http.StatusBadRequest, err.Error()}
	}
	c := s.base
	c.Experiment = req.Experiment
	if req.Seed != nil && *req.Seed != s.base.Seed {
		return leodivide.ScenarioConfig{}, &httpError{http.StatusConflict,
			fmt.Sprintf("seed %d does not match the server dataset (%s)", *req.Seed, s.base.RunConfig)}
	}
	//lint:ignore floatcmp dataset identity is exact, not arithmetic: a request either names the server's scale bit-for-bit or targets a different dataset
	if req.Scale != nil && *req.Scale != s.base.Scale {
		return leodivide.ScenarioConfig{}, &httpError{http.StatusConflict,
			fmt.Sprintf("scale %v does not match the server dataset (%s)", *req.Scale, s.base.RunConfig)}
	}
	if req.Calibrated != nil {
		c.Calibrated = *req.Calibrated
	}
	c.MaxOversub = req.MaxOversub
	c.AffordShare = req.AffordShare
	c.Spreads = req.Spreads
	c.Plans = req.Plans
	c.Constellation = req.Constellation
	c.CostSatelliteUSD = req.CostSatelliteUSD
	c.CostLifeYears = req.CostLifeYears
	c.CostTerminalUSD = req.CostTerminalUSD
	c.Region = req.Region
	if err := c.Validate(); err != nil {
		return leodivide.ScenarioConfig{}, &httpError{http.StatusBadRequest, err.Error()}
	}
	return c, nil
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	metricErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore errdrop HTTP error-response write; a disconnected client is not actionable
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	metricRequests.Inc()
	//lint:ignore detrand wall-clock feeds the request latency histogram only, never the response
	start := time.Now()
	defer metricReqSecs.ObserveSince(start)

	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.errs.Add(1)
		writeJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	cfg, err := s.resolve(req)
	if err != nil {
		s.errs.Add(1)
		var he *httpError
		if errors.As(err, &he) {
			writeJSONError(w, he.code, he.msg)
		} else {
			writeJSONError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	key, err := cfg.CanonicalKey()
	if err != nil {
		s.errs.Add(1)
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx := r.Context()
	body, status, err := s.memo.get(ctx, key, func() ([]byte, error) {
		return s.runScenario(ctx, cfg, key)
	})
	if err != nil {
		s.errs.Add(1)
		code := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusServiceUnavailable
		}
		writeJSONError(w, code, err.Error())
		return
	}
	switch status {
	case StatusHit:
		s.hits.Add(1)
		metricHits.Inc()
	case StatusCoalesced:
		s.coalesced.Add(1)
		metricCoalesced.Inc()
	default:
		s.misses.Add(1)
		metricMisses.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheHeader, status.String())
	//lint:ignore errdrop HTTP response write; a disconnected client is not actionable
	w.Write(body)
}

// runScenario runs one experiment under the admission gate and encodes
// the response bytes that the cache will hold. The encoding happens
// once, here — hits and coalesced followers replay the identical bytes.
func (s *Server) runScenario(ctx context.Context, cfg leodivide.ScenarioConfig, key string) ([]byte, error) {
	//lint:ignore detrand wall-clock feeds the admission-wait histogram only, never the response
	waitStart := time.Now()
	if err := s.gate.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.gate.Release()
	metricWaitSecs.ObserveSince(waitStart)

	m := cfg.BuildModel()
	exp, ok := m.ExperimentByName(cfg.Experiment)
	if !ok {
		// Validate checked the registry already; losing the name here
		// would be a registry bug, not a client error.
		return nil, fmt.Errorf("experiment %q vanished from the registry", cfg.Experiment)
	}
	n := cfg.Normalized()
	ds, err := s.datasetFor(ctx, n.Region)
	if err != nil {
		return nil, err
	}
	//lint:ignore detrand wall-clock feeds the run-duration histogram only, never the response
	runStart := time.Now()
	v, err := exp.Run(ctx, ds)
	if err != nil {
		return nil, err
	}
	metricRunSecs.ObserveSince(runStart)
	return json.Marshal(Response{
		Schema:     leodivide.ScenarioSchema,
		Key:        key,
		Experiment: n.Experiment,
		Seed:       n.Seed,
		Scale:      n.Scale,
		Result:     v,
	})
}

// datasetFor resolves the dataset a query's region runs against: the
// shared startup dataset for the base region, a lazily generated (and
// then memoized) sibling geography otherwise. Generation happens under
// the region mutex, so concurrent first queries for one region pay for
// a single generation.
func (s *Server) datasetFor(ctx context.Context, regionKey string) (*leodivide.Dataset, error) {
	if regionKey == "" || regionKey == s.baseRegion {
		return s.ds, nil
	}
	s.regionMu.Lock()
	defer s.regionMu.Unlock()
	if ds, ok := s.regionDS[regionKey]; ok {
		return ds, nil
	}
	sc := s.base
	sc.Region = regionKey
	ds, err := sc.Generate(ctx)
	if err != nil {
		return nil, fmt.Errorf("generate region %q dataset: %w", regionKey, err)
	}
	s.regionDS[regionKey] = ds
	return ds, nil
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []experimentInfo
	for _, e := range s.base.BuildModel().Experiments() {
		out = append(out, experimentInfo{Name: e.Name, Description: e.Description})
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop HTTP response write; a disconnected client is not actionable
	json.NewEncoder(w).Encode(out)
}

// constellationInfo is one row of GET /v1/constellations: the declared
// spec a scenario's "constellation" selector names, with its default
// cost inputs under the same field names the scenario overrides use.
type constellationInfo struct {
	Name             string  `json:"name"`
	DisplayName      string  `json:"display_name"`
	Shells           int     `json:"shells"`
	Satellites       int     `json:"satellites"`
	UTDownlinkMHz    float64 `json:"ut_downlink_mhz"`
	MaxBeamsPerCell  int     `json:"max_beams_per_cell"`
	CellCapacityGbps float64 `json:"cell_capacity_gbps"`
	CostSatelliteUSD float64 `json:"cost_sat_usd"`
	CostLifeYears    float64 `json:"cost_life_years"`
	CostTerminalUSD  float64 `json:"cost_terminal_usd"`
}

func (s *Server) handleConstellations(w http.ResponseWriter, r *http.Request) {
	var out []constellationInfo
	for _, sys := range constellation.Systems() {
		out = append(out, constellationInfo{
			Name:             sys.Key,
			DisplayName:      sys.Name,
			Shells:           len(sys.Shells),
			Satellites:       sys.TotalSatellites(),
			UTDownlinkMHz:    spectrum.UTDownlinkMHzOf(sys.Bands),
			MaxBeamsPerCell:  sys.MaxBeamsPerCell,
			CellCapacityGbps: sys.CellCapacityGbps,
			CostSatelliteUSD: sys.Cost.AllInSatelliteUSD(),
			CostLifeYears:    sys.Cost.DesignLifeYears,
			CostTerminalUSD:  sys.Cost.TerminalSubsidyUSD,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop HTTP response write; a disconnected client is not actionable
	json.NewEncoder(w).Encode(out)
}

// regionInfo is one row of GET /v1/regions: one declared demand/income
// geography a scenario's "region" selector names.
type regionInfo struct {
	Name        string `json:"name"`
	DisplayName string `json:"display_name"`
	Description string `json:"description"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	var out []regionInfo
	for _, reg := range region.Regions() {
		out = append(out, regionInfo{
			Name:        reg.Key(),
			DisplayName: reg.Name(),
			Description: reg.Description(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop HTTP response write; a disconnected client is not actionable
	json.NewEncoder(w).Encode(out)
}

// Stats is the JSON body of GET /v1/stats: server-local traffic and
// cache shape since startup.
type Stats struct {
	Requests     int64 `json:"requests"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"`
	Errors       int64 `json:"errors"`
	CacheEntries int   `json:"cache_entries"`
	// CacheBytes is the cached key+value footprint; CacheMaxBytes is
	// its bound (0 = unbounded by size).
	CacheBytes    int64 `json:"cache_bytes"`
	CacheMaxBytes int64 `json:"cache_max_bytes"`
	Evictions     int64 `json:"evictions"`
	InflightCap   int   `json:"inflight_cap"`
	Inflight      int   `json:"inflight"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, bytes, evictions := s.memo.stats()
	st := Stats{
		Requests:      s.requests.Load(),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Coalesced:     s.coalesced.Load(),
		Errors:        s.errs.Load(),
		CacheEntries:  entries,
		CacheBytes:    bytes,
		CacheMaxBytes: s.memo.maxBytes,
		Evictions:     evictions,
		InflightCap:   s.gate.Cap(),
		Inflight:      s.gate.InUse(),
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop HTTP response write; a disconnected client is not actionable
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//lint:ignore errdrop HTTP response write; a disconnected client is not actionable
	obs.Default.Snapshot().WriteText(w)
}
