package afford

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/census"
)

func dispersedInput(t *testing.T, sigma float64) *DispersedInput {
	t.Helper()
	table := census.NewTable([]census.CountyIncome{
		{FIPS: "1", MedianHouseholdIncomeUSD: 30000, Weight: 100},
		{FIPS: "2", MedianHouseholdIncomeUSD: 60000, Weight: 300},
		{FIPS: "3", MedianHouseholdIncomeUSD: 90000, Weight: 600},
	})
	in, err := NewDispersedInput(table, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestLognormalCDF(t *testing.T) {
	// Median property: P[X <= median] = 0.5.
	if got := lognormalCDF(60000, 60000, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF at median = %v, want 0.5", got)
	}
	if got := lognormalCDF(0, 60000, 0.5); got != 0 {
		t.Errorf("CDF at 0 = %v", got)
	}
	// Monotone in x.
	if lognormalCDF(50000, 60000, 0.5) >= lognormalCDF(70000, 60000, 0.5) {
		t.Error("CDF not monotone")
	}
	// Degenerate sigma behaves like a step at the median.
	if lognormalCDF(59999, 60000, 0) != 0 || lognormalCDF(60001, 60000, 0) != 1 {
		t.Error("zero-sigma CDF should step at the median")
	}
}

func TestDispersedSmoothsTheStep(t *testing.T) {
	sharp := testInput(t) // median-only model from afford_test.go
	smooth := dispersedInput(t, 0.55)

	p := StarlinkResidential() // threshold $72,000 at 2%
	rSharp := sharp.Evaluate(p, nil, 0.02)
	rSmooth := smooth.Evaluate(p, nil, 0.02)

	// Median-only: counties 1+2 (weight 400) are fully unaffordable.
	// Dispersion moves mass both ways: some households in county 3
	// fall below $72k, some in county 2 rise above it.
	if rSmooth.UnaffordableLocations == rSharp.UnaffordableLocations {
		t.Error("dispersion changed nothing")
	}
	if rSmooth.UnaffordableLocations < 200 || rSmooth.UnaffordableLocations > 800 {
		t.Errorf("dispersed unaffordable = %v, want a smoothed value", rSmooth.UnaffordableLocations)
	}
}

// Property: dispersion preserves totals and keeps results in range, and
// unaffordability still rises with price.
func TestDispersedMonotoneInPriceProperty(t *testing.T) {
	in := dispersedInput(t, 0.55)
	f := func(p1Raw, p2Raw uint8) bool {
		p1 := Plan{Name: "a", MonthlyUSD: 10 + float64(p1Raw)}
		p2 := Plan{Name: "b", MonthlyUSD: p1.MonthlyUSD + 1 + float64(p2Raw)}
		r1 := in.Evaluate(p1, nil, 0.02)
		r2 := in.Evaluate(p2, nil, 0.02)
		return r1.UnaffordableLocations <= r2.UnaffordableLocations &&
			r1.UnaffordableFraction >= 0 && r2.UnaffordableFraction <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLifelineAware(t *testing.T) {
	in := dispersedInput(t, 0.55)
	p := StarlinkResidential()
	r := in.EvaluateLifelineAware(p, 0.02, 3)

	if r.EligibleFraction <= 0 || r.EligibleFraction >= 1 {
		t.Errorf("eligible fraction = %v", r.EligibleFraction)
	}
	// The Starlink subsidized threshold ($66,450) is far above the
	// 135%-FPL cutoff (~$42k for a 3-person household): the subsidy is
	// unusable, so the Lifeline-aware result equals full price.
	full := in.Evaluate(p, nil, 0.02)
	if math.Abs(r.UnaffordableLocations-full.UnaffordableLocations) > 1e-9 {
		t.Errorf("unusable subsidy should leave unaffordability at full price: %v vs %v",
			r.UnaffordableLocations, full.UnaffordableLocations)
	}
	if r.SubsidyUsableFraction != 0 {
		t.Errorf("subsidy usable fraction = %v, want 0", r.SubsidyUsableFraction)
	}

	// A cheap plan whose subsidized threshold falls below the cutoff
	// does get rescued households.
	cheap := Plan{Name: "cheap", MonthlyUSD: 30}
	rc := in.EvaluateLifelineAware(cheap, 0.02, 3)
	if rc.SubsidyUsableFraction <= 0 {
		t.Errorf("cheap-plan rescue fraction = %v, want > 0", rc.SubsidyUsableFraction)
	}
	// And the Lifeline-aware result must beat full price.
	fullCheap := in.Evaluate(cheap, nil, 0.02)
	if rc.UnaffordableLocations >= fullCheap.UnaffordableLocations {
		t.Errorf("usable subsidy did not reduce unaffordability: %v vs %v",
			rc.UnaffordableLocations, fullCheap.UnaffordableLocations)
	}
	// But it can never beat the everyone-gets-it assumption the paper
	// uses.
	lifeline := Lifeline()
	everyone := in.Evaluate(cheap, &lifeline, 0.02)
	if rc.UnaffordableLocations < everyone.UnaffordableLocations-1e-9 {
		t.Error("eligibility-aware result beat universal subsidy")
	}
}

func TestDispersedCurve(t *testing.T) {
	in := dispersedInput(t, 0.55)
	curve := in.Curve(StarlinkResidential(), nil, 0.05, 40)
	if len(curve) != 40 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Count > curve[i-1].Count {
			t.Fatal("dispersed curve not nonincreasing")
		}
	}
	// Unlike the median-only curve, the dispersed curve approaches but
	// never exactly reaches zero (lognormal tails).
	if last := curve[len(curve)-1]; last.Count <= 0 {
		t.Errorf("dispersed tail = %v, want small but positive", last.Count)
	}
}

func TestNewDispersedInputDefaults(t *testing.T) {
	table := census.NewTable([]census.CountyIncome{
		{FIPS: "1", MedianHouseholdIncomeUSD: 50000, Weight: 10},
	})
	in, err := NewDispersedInput(table, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.sigma != DefaultIncomeSigmaLog {
		t.Errorf("sigma = %v, want default", in.sigma)
	}
	if _, err := NewDispersedInput(census.NewTable(nil), 0.5); err == nil {
		t.Error("empty table should fail")
	}
}
