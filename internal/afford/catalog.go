package afford

import "leodivide/internal/spectrum"

// The wider plan catalog: the paper's three comparison plans plus the
// other technologies un(der)served households actually face. Each plan
// carries enough detail to ask both of the paper's questions — does it
// meet the federal "reliable broadband" bar at all, and is it
// affordable — because a plan that fails the first question cannot
// close the divide at any price (the GEO-satellite trap).

// LatencyClass buckets a plan's user-plane latency.
type LatencyClass int

const (
	// LowLatency meets the FCC's ≤100 ms bar.
	LowLatency LatencyClass = iota
	// HighLatency does not (geostationary satellite).
	HighLatency
)

// String names the class.
func (l LatencyClass) String() string {
	if l == HighLatency {
		return "high (GEO)"
	}
	return "low"
}

// CatalogPlan is a Plan with qualification metadata.
type CatalogPlan struct {
	Plan
	Technology string
	Latency    LatencyClass
}

// MeetsBenchmark reports whether the plan delivers the FCC reliable
// broadband benchmark (100/20 Mbps and low latency).
func (c CatalogPlan) MeetsBenchmark() bool {
	return c.DownMbps >= spectrum.FCCDownlinkMbps &&
		c.UpMbps >= spectrum.FCCUplinkMbps &&
		c.Latency == LowLatency
}

// Catalog returns the comparison universe: the paper's plans plus the
// incumbent alternatives un(der)served households see marketed.
func Catalog() []CatalogPlan {
	return []CatalogPlan{
		{Plan: StarlinkResidential(), Technology: "LEO satellite", Latency: LowLatency},
		{Plan: Xfinity300(), Technology: "cable", Latency: LowLatency},
		{Plan: SpectrumPremier(), Technology: "cable", Latency: LowLatency},
		{Plan: Plan{Name: "T-Mobile Home Internet", MonthlyUSD: 50, DownMbps: 150, UpMbps: 23},
			Technology: "fixed-wireless (5G)", Latency: LowLatency},
		{Plan: Plan{Name: "HughesNet Select", MonthlyUSD: 50, DownMbps: 50, UpMbps: 5},
			Technology: "GEO satellite", Latency: HighLatency},
		{Plan: Plan{Name: "Viasat Unleashed", MonthlyUSD: 100, DownMbps: 75, UpMbps: 5},
			Technology: "GEO satellite", Latency: HighLatency},
		{Plan: Plan{Name: "Rural DSL (typical)", MonthlyUSD: 45, DownMbps: 25, UpMbps: 3},
			Technology: "dsl", Latency: LowLatency},
	}
}

// QualifyingCatalog filters the catalog to plans that meet the
// benchmark — the only plans that can close the paper's coverage gap.
func QualifyingCatalog() []CatalogPlan {
	var out []CatalogPlan
	for _, p := range Catalog() {
		if p.MeetsBenchmark() {
			out = append(out, p)
		}
	}
	return out
}

// CatalogComparison evaluates every catalog plan against the income
// distribution, marking qualification.
type CatalogResult struct {
	CatalogPlan
	// Afford is the affordability evaluation at the share threshold.
	Afford Result
	// Qualifies mirrors MeetsBenchmark for rendering convenience.
	Qualifies bool
}

// EvaluateCatalog runs the full catalog at the share threshold.
func (in *Input) EvaluateCatalog(share float64) []CatalogResult {
	plans := Catalog()
	out := make([]CatalogResult, 0, len(plans))
	for _, p := range plans {
		out = append(out, CatalogResult{
			CatalogPlan: p,
			Afford:      in.Evaluate(p.Plan, nil, share),
			Qualifies:   p.MeetsBenchmark(),
		})
	}
	return out
}
