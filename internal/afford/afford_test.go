package afford

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/census"
)

func TestPlanConstants(t *testing.T) {
	if p := StarlinkResidential(); p.MonthlyUSD != 120 {
		t.Errorf("Starlink Residential = $%v, want $120", p.MonthlyUSD)
	}
	if p := Xfinity300(); p.MonthlyUSD != 40 || p.DownMbps != 300 {
		t.Errorf("Xfinity = %+v", p)
	}
	if p := SpectrumPremier(); p.MonthlyUSD != 50 || p.DownMbps != 500 {
		t.Errorf("Spectrum = %+v", p)
	}
	if s := Lifeline(); s.MonthlyUSD != 9.25 {
		t.Errorf("Lifeline = $%v, want $9.25", s.MonthlyUSD)
	}
}

func TestIncomeThresholds(t *testing.T) {
	// The paper's headline thresholds: $72,000 without subsidy and
	// $66,450 with Lifeline.
	starlink := StarlinkResidential()
	if got := IncomeThresholdUSD(starlink, nil, 0.02); got != 72000 {
		t.Errorf("threshold = %v, want 72000", got)
	}
	lifeline := Lifeline()
	if got := IncomeThresholdUSD(starlink, &lifeline, 0.02); got != 66450 {
		t.Errorf("threshold w/ Lifeline = %v, want 66450", got)
	}
	if got := IncomeThresholdUSD(starlink, nil, 0); !math.IsInf(got, 1) {
		t.Errorf("zero share threshold = %v, want +Inf", got)
	}
}

func TestEffectivePrice(t *testing.T) {
	big := Subsidy{Name: "huge", MonthlyUSD: 500}
	if got := EffectiveMonthlyUSD(Xfinity300(), &big); got != 0 {
		t.Errorf("over-subsidized price = %v, want 0", got)
	}
	if got := EffectiveMonthlyUSD(Xfinity300(), nil); got != 40 {
		t.Errorf("unsubsidized price = %v, want 40", got)
	}
}

func TestAffordable(t *testing.T) {
	p := StarlinkResidential()
	if !Affordable(p, nil, 72000, 0.02) {
		t.Error("income at threshold should afford")
	}
	if Affordable(p, nil, 71999, 0.02) {
		t.Error("income below threshold should not afford")
	}
}

// testInput builds an input with three counties at known incomes and
// weights.
func testInput(t *testing.T) *Input {
	t.Helper()
	table := census.NewTable([]census.CountyIncome{
		{FIPS: "1", MedianHouseholdIncomeUSD: 30000, Weight: 100},
		{FIPS: "2", MedianHouseholdIncomeUSD: 60000, Weight: 300},
		{FIPS: "3", MedianHouseholdIncomeUSD: 90000, Weight: 600},
	})
	in, err := NewInput(table)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEvaluate(t *testing.T) {
	in := testInput(t)
	if got := in.TotalLocations(); got != 1000 {
		t.Fatalf("TotalLocations = %v", got)
	}
	// Starlink at 2%: threshold $72,000 → counties 1 and 2 cannot
	// afford (weight 400).
	r := in.Evaluate(StarlinkResidential(), nil, 0.02)
	if r.UnaffordableLocations != 400 {
		t.Errorf("unaffordable = %v, want 400", r.UnaffordableLocations)
	}
	if math.Abs(r.UnaffordableFraction-0.4) > 1e-12 {
		t.Errorf("fraction = %v, want 0.4", r.UnaffordableFraction)
	}
	// A county exactly at the threshold affords the plan: $100/month at
	// 2% needs $60,000.
	exact := Plan{Name: "exact", MonthlyUSD: 100}
	r = in.Evaluate(exact, nil, 0.02)
	if r.UnaffordableLocations != 100 {
		t.Errorf("unaffordable at exact threshold = %v, want 100", r.UnaffordableLocations)
	}
}

func TestCurve(t *testing.T) {
	in := testInput(t)
	curve := in.Curve(StarlinkResidential(), nil, 0.05, 50)
	if len(curve) != 50 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Count > curve[i-1].Count {
			t.Fatal("curve not nonincreasing")
		}
	}
	// At a 4.8% share even the $30k county affords $120/mo: 1440/30000
	// = 0.048.
	last := curve[len(curve)-1]
	if last.Count != 0 {
		t.Errorf("curve tail = %v, want 0", last.Count)
	}
	if z := in.ZeroShare(StarlinkResidential(), nil); math.Abs(z-0.048) > 1e-9 {
		t.Errorf("ZeroShare = %v, want 0.048", z)
	}
}

func TestComparisonOrder(t *testing.T) {
	in := testInput(t)
	results := in.Comparison(PaperComparison(), 0.02)
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if EffectiveMonthlyUSD(results[i].Plan, results[i].Subsidy) <
			EffectiveMonthlyUSD(results[i-1].Plan, results[i-1].Subsidy) {
			t.Fatal("results not sorted by effective price")
		}
	}
	// More expensive plans are unaffordable for at least as many.
	for i := 1; i < len(results); i++ {
		if results[i].UnaffordableLocations < results[i-1].UnaffordableLocations {
			t.Fatal("unaffordability not monotone in price")
		}
	}
}

func TestSubsidyToAfford(t *testing.T) {
	in := testInput(t)
	p := StarlinkResidential()
	// Full coverage: the poorest county ($30k) needs price ≤ $50/mo at
	// 2%, so a $70 subsidy.
	if got := in.SubsidyToAfford(p, 0.02, 1.0); math.Abs(got-70) > 1e-9 {
		t.Errorf("SubsidyToAfford(1.0) = %v, want 70", got)
	}
	// 50% coverage: the $90k county alone (60% of weight) affords at
	// $150/mo ≥ $120, so no subsidy needed. (At exactly 60% the solver
	// is conservative at the quantile boundary and prices to the $60k
	// county.)
	if got := in.SubsidyToAfford(p, 0.02, 0.5); got != 0 {
		t.Errorf("SubsidyToAfford(0.5) = %v, want 0", got)
	}
	if got := in.SubsidyToAfford(p, 0.02, 0.6); math.Abs(got-20) > 1e-9 {
		t.Errorf("SubsidyToAfford(0.6) = %v, want 20 (conservative boundary)", got)
	}
	if got := in.SubsidyToAfford(p, 0.02, 0); got != 0 {
		t.Errorf("SubsidyToAfford(0) = %v, want 0", got)
	}
}

// Property: the subsidy returned by SubsidyToAfford actually achieves
// the target fraction.
func TestSubsidyToAffordProperty(t *testing.T) {
	in := testInput(t)
	p := StarlinkResidential()
	f := func(fracRaw uint8) bool {
		target := float64(fracRaw) / 255
		sub := in.SubsidyToAfford(p, 0.02, target)
		s := Subsidy{Name: "solve", MonthlyUSD: sub}
		r := in.Evaluate(p, &s, 0.02)
		return 1-r.UnaffordableFraction >= target-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewInputErrors(t *testing.T) {
	if _, err := NewInput(census.NewTable(nil)); err == nil {
		t.Error("empty table should fail")
	}
}

func TestACP(t *testing.T) {
	acp := ACP()
	if acp.MonthlyUSD != 30 {
		t.Errorf("ACP = $%v, want $30", acp.MonthlyUSD)
	}
	// ACP moves the Starlink threshold from $72,000 to $54,000.
	if got := IncomeThresholdUSD(StarlinkResidential(), &acp, 0.02); got != 54000 {
		t.Errorf("ACP threshold = %v, want 54000", got)
	}
	in := testInput(t)
	withACP := in.Evaluate(StarlinkResidential(), &acp, 0.02)
	without := in.Evaluate(StarlinkResidential(), nil, 0.02)
	if withACP.UnaffordableLocations >= without.UnaffordableLocations {
		t.Error("ACP did not improve affordability")
	}
}

func TestCatalog(t *testing.T) {
	catalog := Catalog()
	if len(catalog) < 6 {
		t.Fatalf("catalog has %d plans", len(catalog))
	}
	byName := map[string]CatalogPlan{}
	for _, p := range catalog {
		if p.MonthlyUSD <= 0 || p.DownMbps <= 0 {
			t.Errorf("%s: degenerate plan", p.Name)
		}
		byName[p.Name] = p
	}
	// Starlink and the cable plans qualify; GEO satellite and DSL do
	// not — the paper's point that only some technologies can close
	// the gap at all.
	for _, name := range []string{"Starlink Residential", "Xfinity 300", "Spectrum Internet Premier"} {
		if !byName[name].MeetsBenchmark() {
			t.Errorf("%s should meet the benchmark", name)
		}
	}
	for _, name := range []string{"HughesNet Select", "Viasat Unleashed", "Rural DSL (typical)"} {
		if byName[name].MeetsBenchmark() {
			t.Errorf("%s should not meet the benchmark", name)
		}
	}
	// GEO plans fail on latency even when download would pass at 100+.
	geoPlan := byName["Viasat Unleashed"]
	geoPlan.DownMbps, geoPlan.UpMbps = 150, 25
	if geoPlan.MeetsBenchmark() {
		t.Error("GEO latency should disqualify regardless of speed")
	}
	if got := len(QualifyingCatalog()); got != 4 {
		t.Errorf("%d qualifying plans, want 4", got)
	}
}

func TestEvaluateCatalog(t *testing.T) {
	in := testInput(t)
	results := in.EvaluateCatalog(0.02)
	if len(results) != len(Catalog()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Qualifies != r.MeetsBenchmark() {
			t.Errorf("%s: qualification flag mismatch", r.Plan.Name)
		}
		if r.Afford.UnaffordableFraction < 0 || r.Afford.UnaffordableFraction > 1 {
			t.Errorf("%s: fraction %v", r.Name, r.Afford.UnaffordableFraction)
		}
	}
	// The cheap-but-unqualifying GEO/DSL plans are affordable but
	// cannot close the gap; Starlink qualifies but is unaffordable for
	// the low-income counties — the paper's double bind.
	var starlink, dsl CatalogResult
	for _, r := range results {
		switch r.Name {
		case "Starlink Residential":
			starlink = r
		case "Rural DSL (typical)":
			dsl = r
		}
	}
	if !starlink.Qualifies || starlink.Afford.UnaffordableFraction <= dsl.Afford.UnaffordableFraction {
		t.Errorf("double bind not visible: starlink %+v dsl %+v",
			starlink.Afford.UnaffordableFraction, dsl.Afford.UnaffordableFraction)
	}
	if dsl.Qualifies {
		t.Error("DSL should not qualify")
	}
}
