// Package afford implements the paper's affordability analysis: given
// the county median incomes of un(der)served locations and a broadband
// plan's monthly price, it computes the fraction (and count) of
// locations for which the plan exceeds the affordability threshold —
// 2% of monthly household income, the UN Broadband Commission / A4AI
// "1 for 2"-style benchmark the paper adopts.
package afford

import (
	"context"
	"fmt"
	"math"
	"sort"

	"leodivide/internal/census"
	"leodivide/internal/par"
	"leodivide/internal/stats"
)

// DefaultAffordabilityShare is the A4AI-derived threshold: service
// should cost no more than 2% of monthly household income.
const DefaultAffordabilityShare = 0.02

// Plan is one broadband service offering.
type Plan struct {
	Name       string
	MonthlyUSD float64
	DownMbps   float64
	UpMbps     float64
}

// The plans the paper compares.
func StarlinkResidential() Plan {
	return Plan{Name: "Starlink Residential", MonthlyUSD: 120, DownMbps: 150, UpMbps: 20}
}

func Xfinity300() Plan {
	return Plan{Name: "Xfinity 300", MonthlyUSD: 40, DownMbps: 300, UpMbps: 20}
}

func SpectrumPremier() Plan {
	return Plan{Name: "Spectrum Internet Premier", MonthlyUSD: 50, DownMbps: 500, UpMbps: 20}
}

// Subsidy reduces a plan's effective monthly price.
type Subsidy struct {
	Name       string
	MonthlyUSD float64
}

// Lifeline is the federal Lifeline broadband subsidy.
func Lifeline() Subsidy {
	return Subsidy{Name: "Lifeline", MonthlyUSD: census.LifelineMonthlySubsidyUSD}
}

// ACP is the Affordable Connectivity Program's $30/month benefit — the
// broader pandemic-era subsidy that lapsed in 2024. Including it lets
// policy analyses ask what the affordability picture would have looked
// like had Congress renewed it.
func ACP() Subsidy {
	return Subsidy{Name: "ACP", MonthlyUSD: 30}
}

// EffectiveMonthlyUSD returns the plan price after the subsidy (nil for
// none). Prices never go below zero.
func EffectiveMonthlyUSD(p Plan, s *Subsidy) float64 {
	price := p.MonthlyUSD
	if s != nil {
		price -= s.MonthlyUSD
	}
	if price < 0 {
		price = 0
	}
	return price
}

// IncomeThresholdUSD returns the minimum annual household income at
// which the (possibly subsidized) plan is affordable under the given
// share-of-income threshold: 12·price/share.
func IncomeThresholdUSD(p Plan, s *Subsidy, share float64) float64 {
	if share <= 0 {
		return math.Inf(1)
	}
	return 12 * EffectiveMonthlyUSD(p, s) / share
}

// Affordable reports whether the plan is affordable at the given annual
// income under the share threshold.
func Affordable(p Plan, s *Subsidy, annualIncomeUSD, share float64) bool {
	return annualIncomeUSD >= IncomeThresholdUSD(p, s, share)
}

// Input is the location-weighted income distribution the evaluation
// runs over: one entry per county with its median income and the count
// of un(der)served locations attributed to it.
type Input struct {
	weighted *stats.WeightedCDF
	total    float64
}

// NewInput builds the evaluation input from a census table whose county
// Weight fields carry location counts.
func NewInput(t *census.Table) (*Input, error) {
	counties := t.Counties()
	samples := make([]stats.WeightedSample, 0, len(counties))
	for _, c := range counties {
		samples = append(samples, stats.WeightedSample{
			Value:  c.MedianHouseholdIncomeUSD,
			Weight: c.Weight,
		})
	}
	w, err := stats.NewWeightedCDF(samples)
	if err != nil {
		return nil, fmt.Errorf("afford: %w", err)
	}
	return &Input{weighted: w, total: w.TotalWeight()}, nil
}

// TotalLocations returns the location count behind the input.
func (in *Input) TotalLocations() float64 { return in.total }

// Result is the affordability outcome for one plan/subsidy pair.
type Result struct {
	Plan               Plan
	Subsidy            *Subsidy
	Share              float64
	IncomeThresholdUSD float64
	// UnaffordableLocations is the number of locations whose county
	// median income falls below the threshold.
	UnaffordableLocations float64
	// UnaffordableFraction is the same as a fraction of all locations.
	UnaffordableFraction float64
}

// Evaluate computes the affordability result for a plan under a share
// threshold.
func (in *Input) Evaluate(p Plan, s *Subsidy, share float64) Result {
	threshold := IncomeThresholdUSD(p, s, share)
	// Locations below the threshold cannot afford the plan. Use a
	// strictly-below comparison: a county exactly at the threshold
	// affords the plan.
	below := in.total - in.weighted.WeightGT(threshold-1e-9)
	return Result{
		Plan:                  p,
		Subsidy:               s,
		Share:                 share,
		IncomeThresholdUSD:    threshold,
		UnaffordableLocations: below,
		UnaffordableFraction:  below / in.total,
	}
}

// CurvePoint is one point of the Figure-4 style curve: at income share
// x, Count locations pay more than x of their monthly income for the
// plan.
type CurvePoint struct {
	Share float64
	Count float64
}

// Curve traces, for shares from 0 to maxShare in n steps, the number of
// locations for which the plan costs more than that share of monthly
// income. This reproduces the paper's Figure 4 series for one plan.
func (in *Input) Curve(p Plan, s *Subsidy, maxShare float64, n int) []CurvePoint {
	if n < 2 {
		n = 2
	}
	price := EffectiveMonthlyUSD(p, s)
	out := make([]CurvePoint, 0, n)
	for i := 0; i < n; i++ {
		share := maxShare * float64(i+1) / float64(n)
		// cost/monthlyIncome > share  ⟺  income < 12·price/share
		threshold := 12 * price / share
		count := in.total - in.weighted.WeightGT(threshold-1e-9)
		out = append(out, CurvePoint{Share: share, Count: count})
	}
	return out
}

// ZeroShare returns the share of income at which the plan's curve
// reaches zero: the share at which even the poorest county affords it.
func (in *Input) ZeroShare(p Plan, s *Subsidy) float64 {
	price := EffectiveMonthlyUSD(p, s)
	minIncome := in.weighted.Quantile(0)
	if minIncome <= 0 {
		return math.Inf(1)
	}
	return 12 * price / minIncome
}

// Comparison evaluates several plan/subsidy pairs at once and returns
// results sorted by effective price.
func (in *Input) Comparison(pairs []PlanOption, share float64) []Result {
	out := make([]Result, 0, len(pairs))
	for _, pr := range pairs {
		out = append(out, in.Evaluate(pr.Plan, pr.Subsidy, share))
	}
	sort.Slice(out, func(i, j int) bool {
		return EffectiveMonthlyUSD(out[i].Plan, out[i].Subsidy) <
			EffectiveMonthlyUSD(out[j].Plan, out[j].Subsidy)
	})
	return out
}

// PlanOption pairs a plan with an optional subsidy.
type PlanOption struct {
	Plan    Plan
	Subsidy *Subsidy
}

// PlanCurves bundles everything Figure 4 needs for one plan option: the
// point evaluation at the affordability threshold, the full share curve,
// and the share at which the curve reaches zero.
type PlanCurves struct {
	Option    PlanOption
	Result    Result
	Curve     []CurvePoint
	ZeroShare float64
}

// EvaluateCurves computes the Figure 4 bundle for each plan option
// concurrently (bounded by workers; see par.Workers), returning results
// in option order. Each option's evaluation is a pure read of the
// weighted CDF, so output is identical at every worker count.
func (in *Input) EvaluateCurves(ctx context.Context, options []PlanOption, share, maxShare float64, n, workers int) ([]PlanCurves, error) {
	return par.Map(ctx, workers, len(options), func(i int) (PlanCurves, error) {
		opt := options[i]
		return PlanCurves{
			Option:    opt,
			Result:    in.Evaluate(opt.Plan, opt.Subsidy, share),
			Curve:     in.Curve(opt.Plan, opt.Subsidy, maxShare, n),
			ZeroShare: in.ZeroShare(opt.Plan, opt.Subsidy),
		}, nil
	})
}

// PaperComparison returns the four plan/subsidy pairs of Figure 4.
func PaperComparison() []PlanOption {
	lifeline := Lifeline()
	return []PlanOption{
		{Plan: Xfinity300()},
		{Plan: SpectrumPremier()},
		{Plan: StarlinkResidential(), Subsidy: &lifeline},
		{Plan: StarlinkResidential()},
	}
}

// SubsidyToAfford returns the monthly subsidy needed to make the plan
// affordable for the given fraction of locations at the share
// threshold. Used by the policy-design example.
func (in *Input) SubsidyToAfford(p Plan, share, targetFraction float64) float64 {
	if targetFraction <= 0 {
		return 0
	}
	if targetFraction > 1 {
		targetFraction = 1
	}
	// The q-quantile income of the *unaffordable from below* fraction:
	// to make fraction f affordable, price must satisfy
	// 12·price/share <= income at quantile (1-f).
	income := in.weighted.Quantile(1 - targetFraction)
	needed := p.MonthlyUSD - share*income/12
	if needed < 0 {
		return 0
	}
	return needed
}
