package afford

import (
	"fmt"
	"math"

	"leodivide/internal/census"
)

// The paper's Figure 4 assumes every household in a county earns the
// county median — a deliberate simplification it flags. This file is
// the refinement extension: household incomes within a county are
// modelled as lognormal around the county median (the standard shape
// for US income microdata), which changes two things:
//
//  1. Rich counties still contain households below the affordability
//     threshold, and poor counties contain households above it, so the
//     unaffordable count is a smooth rather than step function.
//  2. Lifeline eligibility (income ≤ 135% of the Federal Poverty
//     Level) can be applied per household rather than to everyone,
//     which the median-only model cannot express at all.

// DefaultIncomeSigmaLog is the default lognormal shape parameter for
// within-county household income; ≈0.55 matches the dispersion of ACS
// county income distributions.
const DefaultIncomeSigmaLog = 0.55

// lognormalCDF returns P[X <= x] for X lognormal with the given median
// and log-σ.
func lognormalCDF(x, median, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	if median <= 0 || sigma <= 0 {
		if x < median {
			return 0
		}
		return 1
	}
	z := (math.Log(x) - math.Log(median)) / sigma
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// DispersedInput evaluates affordability with within-county income
// dispersion. Construct with NewDispersedInput.
type DispersedInput struct {
	counties []census.CountyIncome
	sigma    float64
	total    float64
}

// NewDispersedInput wraps a census table with a lognormal within-county
// income model. sigma <= 0 selects DefaultIncomeSigmaLog.
func NewDispersedInput(t *census.Table, sigma float64) (*DispersedInput, error) {
	if sigma <= 0 {
		sigma = DefaultIncomeSigmaLog
	}
	counties := t.Counties()
	total := 0.0
	for _, c := range counties {
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("afford: census table has no location weight")
	}
	return &DispersedInput{counties: counties, sigma: sigma, total: total}, nil
}

// TotalLocations returns the location count behind the input.
func (in *DispersedInput) TotalLocations() float64 { return in.total }

// Evaluate computes the unaffordable count under dispersion: each
// county contributes its weight times the lognormal probability of a
// household income below the plan's threshold.
func (in *DispersedInput) Evaluate(p Plan, s *Subsidy, share float64) Result {
	threshold := IncomeThresholdUSD(p, s, share)
	below := 0.0
	for _, c := range in.counties {
		below += c.Weight * lognormalCDF(threshold, c.MedianHouseholdIncomeUSD, in.sigma)
	}
	return Result{
		Plan:                  p,
		Subsidy:               s,
		Share:                 share,
		IncomeThresholdUSD:    threshold,
		UnaffordableLocations: below,
		UnaffordableFraction:  below / in.total,
	}
}

// LifelineAwareResult extends Result with the eligibility accounting
// only a dispersed model can produce.
type LifelineAwareResult struct {
	Result
	// EligibleFraction is the fraction of locations whose household
	// income qualifies for Lifeline (≤135% FPL).
	EligibleFraction float64
	// SubsidyUsableFraction is the fraction of locations that are both
	// eligible for the subsidy and able to afford the subsidized price
	// (the households Lifeline actually rescues).
	SubsidyUsableFraction float64
}

// EvaluateLifelineAware computes affordability when Lifeline only
// applies to eligible households: a household affords the plan if
// either its income meets the full-price threshold, or it is
// Lifeline-eligible and meets the subsidized threshold.
func (in *DispersedInput) EvaluateLifelineAware(p Plan, share float64, householdSize int) LifelineAwareResult {
	lifeline := Lifeline()
	tFull := IncomeThresholdUSD(p, nil, share)
	tSub := IncomeThresholdUSD(p, &lifeline, share)
	cut := census.LifelineEligibilityFPLMultiple * census.FederalPovertyLevelUSD(householdSize)

	unaffordable := 0.0
	eligible := 0.0
	rescued := 0.0
	for _, c := range in.counties {
		med := c.MedianHouseholdIncomeUSD
		pEligible := lognormalCDF(cut, med, in.sigma)
		eligible += c.Weight * pEligible
		if tSub <= cut {
			// Eligible households in [tSub, cut] are rescued by the
			// subsidy; everyone below tSub, and ineligible households
			// below tFull, cannot afford.
			pBelowSub := lognormalCDF(tSub, med, in.sigma)
			pRescued := math.Max(0, pEligible-pBelowSub)
			rescued += c.Weight * pRescued
			gapHi := lognormalCDF(tFull, med, in.sigma)
			pIneligibleGap := math.Max(0, gapHi-pEligible)
			unaffordable += c.Weight * (pBelowSub + pIneligibleGap)
		} else {
			// The subsidized price still requires more income than the
			// eligibility cutoff allows: the subsidy is unusable.
			unaffordable += c.Weight * lognormalCDF(tFull, med, in.sigma)
		}
	}
	return LifelineAwareResult{
		Result: Result{
			Plan:                  p,
			Subsidy:               &lifeline,
			Share:                 share,
			IncomeThresholdUSD:    tSub,
			UnaffordableLocations: unaffordable,
			UnaffordableFraction:  unaffordable / in.total,
		},
		EligibleFraction:      eligible / in.total,
		SubsidyUsableFraction: rescued / in.total,
	}
}

// Curve traces the dispersed Figure-4 series for a plan.
func (in *DispersedInput) Curve(p Plan, s *Subsidy, maxShare float64, n int) []CurvePoint {
	if n < 2 {
		n = 2
	}
	price := EffectiveMonthlyUSD(p, s)
	out := make([]CurvePoint, 0, n)
	for i := 0; i < n; i++ {
		share := maxShare * float64(i+1) / float64(n)
		threshold := 12 * price / share
		below := 0.0
		for _, c := range in.counties {
			below += c.Weight * lognormalCDF(threshold, c.MedianHouseholdIncomeUSD, in.sigma)
		}
		out = append(out, CurvePoint{Share: share, Count: below})
	}
	return out
}
