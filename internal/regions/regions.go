// Package regions rolls the national analysis up to state granularity:
// per-state demand profiles, capacity stress, and affordability — the
// view a state broadband office (or a BEAD subgrantee evaluator) needs
// when deciding whether LEO service can stand in for terrestrial
// builds in its territory.
package regions

import (
	"fmt"
	"sort"

	"leodivide/internal/afford"
	"leodivide/internal/beams"
	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/usgeo"
)

// StateProfile is one state's rollup.
type StateProfile struct {
	// Abbr and Name identify the state.
	Abbr, Name string
	// Locations is the state's un(der)served location count.
	Locations int
	// Cells is the state's demand-cell count.
	Cells int
	// PeakCellLocations is the densest cell.
	PeakCellLocations int
	// MedianCellLocations is the median cell density.
	MedianCellLocations int
	// RequiredOversub is the oversubscription the state's densest cell
	// forces for full service.
	RequiredOversub float64
	// UnservableAt20 counts locations beyond the 20:1 per-cell cap.
	UnservableAt20 int
	// UnaffordableFraction is the share of the state's locations unable
	// to afford Starlink Residential at 2% of income.
	UnaffordableFraction float64
}

// Config parameterizes the rollup.
type Config struct {
	// Beams is the satellite beam model.
	Beams beams.Config
	// MaxOversub is the acceptable oversubscription cap.
	MaxOversub float64
	// Plan and Subsidy select the affordability evaluation.
	Plan    afford.Plan
	Subsidy *afford.Subsidy
	// Share is the affordability threshold.
	Share float64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Beams:      beams.DefaultConfig(),
		MaxOversub: 20,
		Plan:       afford.StarlinkResidential(),
		Share:      afford.DefaultAffordabilityShare,
	}
}

// ByState computes per-state profiles from the national cells and
// income table, sorted by location count descending.
func ByState(cfg Config, cells []demand.Cell, incomes *census.Table) ([]StateProfile, error) {
	if err := cfg.Beams.Validate(); err != nil {
		return nil, err
	}
	groups := make(map[string][]demand.Cell)
	for _, c := range cells {
		s, ok := usgeo.StateAt(c.Center)
		if !ok {
			continue
		}
		groups[s.Abbr] = append(groups[s.Abbr], c)
	}
	out := make([]StateProfile, 0, len(groups))
	for abbr, stateCells := range groups {
		st, err := usgeo.ByAbbr(abbr)
		if err != nil {
			return nil, err
		}
		dist, err := demand.NewDistribution(stateCells)
		if err != nil {
			continue // a state with zero-demand cells only
		}
		profile := StateProfile{
			Abbr:                abbr,
			Name:                st.Name,
			Locations:           dist.TotalLocations(),
			Cells:               dist.NumCells(),
			PeakCellLocations:   dist.Peak().Locations,
			MedianCellLocations: dist.Quantile(0.5),
			RequiredOversub:     cfg.Beams.RequiredOversubscription(dist.Peak().Locations),
			UnservableAt20:      dist.ExcessAbove(cfg.Beams.MaxServableLocations(cfg.MaxOversub)),
		}
		if incomes != nil {
			if in, err := stateAffordInput(dist, incomes); err == nil {
				res := in.Evaluate(cfg.Plan, cfg.Subsidy, cfg.Share)
				profile.UnaffordableFraction = res.UnaffordableFraction
			}
		}
		out = append(out, profile)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Locations != out[j].Locations {
			return out[i].Locations > out[j].Locations
		}
		return out[i].Abbr < out[j].Abbr
	})
	return out, nil
}

// stateAffordInput restricts the national income table to the state's
// counties, reweighted by the state's location counts.
func stateAffordInput(dist *demand.Distribution, incomes *census.Table) (*afford.Input, error) {
	weights := dist.CountyWeights()
	fips := make([]string, 0, len(weights))
	for f := range weights {
		fips = append(fips, f)
	}
	sort.Strings(fips)
	recs := make([]census.CountyIncome, 0, len(fips))
	for _, f := range fips {
		rec, ok := incomes.Lookup(f)
		if !ok {
			continue
		}
		rec.Weight = float64(weights[f])
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("regions: no income records for state counties")
	}
	return afford.NewInput(census.NewTable(recs))
}

// National aggregates profiles back to a national summary, for
// consistency checks against the direct national analysis.
func National(profiles []StateProfile) StateProfile {
	out := StateProfile{Abbr: "US", Name: "United States"}
	for _, p := range profiles {
		out.Locations += p.Locations
		out.Cells += p.Cells
		out.UnservableAt20 += p.UnservableAt20
		if p.PeakCellLocations > out.PeakCellLocations {
			out.PeakCellLocations = p.PeakCellLocations
		}
		if p.RequiredOversub > out.RequiredOversub {
			out.RequiredOversub = p.RequiredOversub
		}
	}
	return out
}

// TopStressed returns the n states whose densest cells force the
// highest oversubscription — where LEO capacity bites first.
func TopStressed(profiles []StateProfile, n int) []StateProfile {
	sorted := make([]StateProfile, len(profiles))
	copy(sorted, profiles)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RequiredOversub != sorted[j].RequiredOversub {
			return sorted[i].RequiredOversub > sorted[j].RequiredOversub
		}
		return sorted[i].Abbr < sorted[j].Abbr
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
