package regions

import (
	"context"

	"testing"

	"leodivide/internal/bdc"
	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
)

func testData(t *testing.T) ([]demand.Cell, *census.Table) {
	t.Helper()
	cfg := bdc.DefaultGenConfig()
	cfg.TotalLocations = 120000
	cfg.Peaks = []bdc.PeakCell{
		{Locations: 4000, Anchor: geo.LatLng{Lat: 35.5, Lng: -106.3}},
	}
	cells, err := bdc.GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := demand.NewDistribution(cells)
	if err != nil {
		t.Fatal(err)
	}
	weights := dist.CountyWeights()
	cw := make([]census.CountyWeight, 0, len(weights))
	for f, w := range weights {
		cw = append(cw, census.CountyWeight{FIPS: f, Weight: float64(w), PovertyRank: float64(len(f) % 7)})
	}
	table, err := census.AssignIncomes(cw, census.DefaultIncomeAnchors())
	if err != nil {
		t.Fatal(err)
	}
	return cells, table
}

func TestByState(t *testing.T) {
	cells, incomes := testData(t)
	profiles, err := ByState(DefaultConfig(), cells, incomes)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) < 40 {
		t.Fatalf("only %d states profiled", len(profiles))
	}
	totalLocs := 0
	seen := map[string]bool{}
	for _, p := range profiles {
		if seen[p.Abbr] {
			t.Fatalf("state %s profiled twice", p.Abbr)
		}
		seen[p.Abbr] = true
		totalLocs += p.Locations
		if p.Locations <= 0 || p.Cells <= 0 {
			t.Errorf("%s: empty profile %+v", p.Abbr, p)
		}
		if p.PeakCellLocations < p.MedianCellLocations {
			t.Errorf("%s: peak below median", p.Abbr)
		}
		if p.RequiredOversub < 1 {
			t.Errorf("%s: oversubscription below 1", p.Abbr)
		}
		if p.UnaffordableFraction < 0 || p.UnaffordableFraction > 1 {
			t.Errorf("%s: unaffordable fraction %v", p.Abbr, p.UnaffordableFraction)
		}
	}
	// Sorted by locations descending.
	for i := 1; i < len(profiles); i++ {
		if profiles[i].Locations > profiles[i-1].Locations {
			t.Fatal("profiles not sorted")
		}
	}
	// The rollup loses only cells outside all state frames.
	if totalLocs < 110000 {
		t.Errorf("state rollup covers %d of 120000 locations", totalLocs)
	}
	// The NM peak cell appears in New Mexico's profile.
	for _, p := range profiles {
		if p.Abbr == "NM" && p.PeakCellLocations != 4000 {
			t.Errorf("NM peak = %d, want 4000", p.PeakCellLocations)
		}
	}
}

func TestNationalAggregation(t *testing.T) {
	cells, incomes := testData(t)
	profiles, err := ByState(DefaultConfig(), cells, incomes)
	if err != nil {
		t.Fatal(err)
	}
	nat := National(profiles)
	if nat.PeakCellLocations != 4000 {
		t.Errorf("national peak = %d, want 4000", nat.PeakCellLocations)
	}
	if nat.Locations <= 0 || nat.Cells <= 0 {
		t.Errorf("national rollup empty: %+v", nat)
	}
	// National required oversubscription is the max over states.
	for _, p := range profiles {
		if p.RequiredOversub > nat.RequiredOversub {
			t.Fatal("national oversubscription below a state's")
		}
	}
}

func TestTopStressed(t *testing.T) {
	cells, incomes := testData(t)
	profiles, err := ByState(DefaultConfig(), cells, incomes)
	if err != nil {
		t.Fatal(err)
	}
	top := TopStressed(profiles, 5)
	if len(top) != 5 {
		t.Fatalf("got %d top states", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].RequiredOversub > top[i-1].RequiredOversub {
			t.Fatal("top stressed not sorted")
		}
	}
	// The state holding the peak cell must lead.
	if top[0].Abbr != "NM" {
		t.Errorf("most stressed state = %s, want NM", top[0].Abbr)
	}
	if got := TopStressed(profiles, 1000); len(got) != len(profiles) {
		t.Errorf("over-long top list = %d", len(got))
	}
}

func TestByStateWithoutIncomes(t *testing.T) {
	cells, _ := testData(t)
	profiles, err := ByState(DefaultConfig(), cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if p.UnaffordableFraction != 0 {
			t.Errorf("%s: affordability computed without incomes", p.Abbr)
		}
	}
}
