package beams

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.BeamsPerSatellite != 24 {
		t.Errorf("BeamsPerSatellite = %d, want 24", c.BeamsPerSatellite)
	}
	if c.MaxBeamsPerCell != 4 {
		t.Errorf("MaxBeamsPerCell = %d, want 4", c.MaxBeamsPerCell)
	}
	if math.Abs(c.MaxCellCapacityGbps()-17.3) > 1e-9 {
		t.Errorf("MaxCellCapacityGbps = %v, want 17.3", c.MaxCellCapacityGbps())
	}
}

func TestValidate(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.BeamCapacityGbps = 0 },
		func(c *Config) { c.BeamsPerSatellite = 0 },
		func(c *Config) { c.MaxBeamsPerCell = 0 },
		func(c *Config) { c.MaxBeamsPerCell = c.BeamsPerSatellite + 1 },
		func(c *Config) { c.DemandPerLocationGbps = -1 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestPaperThresholds(t *testing.T) {
	c := DefaultConfig()
	// One beam at 20:1 serves 865 locations; a 4-beam cell 3,460.
	if got := c.LocationsPerBeam(20); got != 865 {
		t.Errorf("LocationsPerBeam(20) = %d, want 865", got)
	}
	if got := c.MaxServableLocations(20); got != 3460 {
		t.Errorf("MaxServableLocations(20) = %d, want 3460", got)
	}
	// The peak cell (5,998 locations) needs ~34.7:1 for full service.
	if got := c.RequiredOversubscription(5998); math.Abs(got-34.67) > 0.02 {
		t.Errorf("RequiredOversubscription(5998) = %v, want ≈34.67", got)
	}
	// Cells within one beam's capacity need no oversubscription.
	if got := c.RequiredOversubscription(100); got != 1 {
		t.Errorf("RequiredOversubscription(100) = %v, want 1", got)
	}
	if got := c.RequiredOversubscription(0); got != 1 {
		t.Errorf("RequiredOversubscription(0) = %v, want 1", got)
	}
}

func TestBeamsForCell(t *testing.T) {
	c := DefaultConfig()
	cases := []struct {
		locations int
		oversub   float64
		wantBeams int
		wantOK    bool
	}{
		{0, 20, 1, true},
		{1, 20, 1, true},
		{865, 20, 1, true},
		{866, 20, 2, true},
		{1730, 20, 2, true},
		{1731, 20, 3, true},
		{2595, 20, 3, true},
		{2596, 20, 4, true},
		{3460, 20, 4, true},
		{3461, 20, 4, false},
		{5998, 20, 4, false},
		{5998, 35, 4, true},
		{100, 1, 3, true}, // 10 Gbps at 1:1 needs 3 beams
	}
	for _, tc := range cases {
		beams, ok := c.BeamsForCell(tc.locations, tc.oversub)
		if beams != tc.wantBeams || ok != tc.wantOK {
			t.Errorf("BeamsForCell(%d, %v) = (%d, %v), want (%d, %v)",
				tc.locations, tc.oversub, beams, ok, tc.wantBeams, tc.wantOK)
		}
	}
}

// Property: beams required grows with locations and shrinks with
// oversubscription.
func TestBeamsMonotonicityProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(locRaw uint16, oversubRaw uint8) bool {
		loc := int(locRaw) % 6000
		oversub := 1 + float64(oversubRaw%35)
		b1, _ := c.BeamsForCell(loc, oversub)
		b2, _ := c.BeamsForCell(loc+100, oversub)
		b3, _ := c.BeamsForCell(loc, oversub+5)
		return b2 >= b1 && b3 <= b1 && b1 >= 1 && b1 <= c.MaxBeamsPerCell
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a cell at exactly the servable cap fits, one more does not.
func TestServableBoundaryProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(oversubRaw uint8) bool {
		oversub := 1 + float64(oversubRaw%40)
		capLoc := c.MaxServableLocations(oversub)
		_, okAt := c.BeamsForCell(capLoc, oversub)
		_, okOver := c.BeamsForCell(capLoc+1, oversub)
		return okAt && !okOver
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpreadCapacity(t *testing.T) {
	c := DefaultConfig()
	if got := c.SpreadCellCapacityGbps(1); math.Abs(got-4.325) > 1e-9 {
		t.Errorf("spread 1 capacity = %v, want 4.325", got)
	}
	if got := c.SpreadCellCapacityGbps(10); math.Abs(got-0.4325) > 1e-9 {
		t.Errorf("spread 10 capacity = %v, want 0.4325", got)
	}
	// Spread below 1 clamps.
	if got := c.SpreadCellCapacityGbps(0.5); math.Abs(got-4.325) > 1e-9 {
		t.Errorf("spread 0.5 capacity = %v, want clamp to 4.325", got)
	}
	// The paper's Figure 2 threshold: 43.25·ρ/s locations.
	if got := c.MaxLocationsUnderSpread(20, 2); got != 432 {
		t.Errorf("MaxLocationsUnderSpread(20, 2) = %d, want 432", got)
	}
	if got := c.MaxLocationsUnderSpread(5, 14); got != 15 {
		t.Errorf("MaxLocationsUnderSpread(5, 14) = %d, want 15", got)
	}
}

func TestCellsPerSatellite(t *testing.T) {
	c := DefaultConfig()
	// The paper's 1 + 20s rule with 4 beams pinned on the peak cell.
	cases := []struct {
		spread float64
		beams  int
		want   float64
	}{
		{1, 4, 21}, {2, 4, 41}, {5, 4, 101}, {10, 4, 201}, {15, 4, 301},
		{1, 1, 24}, {10, 1, 231},
	}
	for _, tc := range cases {
		if got := c.CellsPerSatellite(tc.spread, tc.beams); got != tc.want {
			t.Errorf("CellsPerSatellite(%v, %d) = %v, want %v", tc.spread, tc.beams, got, tc.want)
		}
	}
	// Clamping.
	if got := c.CellsPerSatellite(0.5, 0); got != 24 {
		t.Errorf("clamped CellsPerSatellite = %v, want 24", got)
	}
	if got := c.CellsPerSatellite(1, 100); got != 1 {
		t.Errorf("over-beamed CellsPerSatellite = %v, want 1", got)
	}
}

func TestCellDemand(t *testing.T) {
	c := DefaultConfig()
	if got := c.CellDemandGbps(5998); math.Abs(got-599.8) > 1e-9 {
		t.Errorf("CellDemandGbps(5998) = %v, want 599.8", got)
	}
}

func TestGatewayConfig(t *testing.T) {
	g := DefaultGatewayConfig()
	if g.DedicatedGatewayBeams != 4 {
		t.Errorf("dedicated gateway beams = %d, want 4", g.DedicatedGatewayBeams)
	}
	// 5,000 MHz at 4.5 b/Hz per beam.
	if math.Abs(g.GatewayBeamCapacityGbps-22.5) > 1e-9 {
		t.Errorf("gateway beam capacity = %v, want 22.5", g.GatewayBeamCapacityGbps)
	}
	if math.Abs(g.DedicatedGatewayCapacityGbps()-90) > 1e-9 {
		t.Errorf("dedicated gateway capacity = %v, want 90", g.DedicatedGatewayCapacityGbps())
	}
}

func TestEffectiveUTBeams(t *testing.T) {
	c := DefaultConfig()
	g := DefaultGatewayConfig()
	// Full load: 24 beams carry 103.8 Gbps but the dedicated gateway
	// capacity is 90; balance forces two flexible beams to gateway
	// duty: B ≤ (90 + 103.8)/(2×4.325) = 22.4 → 22.
	if got := c.EffectiveUTBeams(g); got != 22 {
		t.Errorf("effective UT beams = %d, want 22", got)
	}
	// Abundant gateway capacity leaves all beams for users.
	rich := GatewayConfig{DedicatedGatewayBeams: 8, GatewayBeamCapacityGbps: 50}
	if got := c.EffectiveUTBeams(rich); got != 24 {
		t.Errorf("unconstrained effective beams = %d, want 24", got)
	}
	// No gateway capacity at all: half the beams must backhaul.
	none := GatewayConfig{}
	if got := c.EffectiveUTBeams(none); got != 12 {
		t.Errorf("zero-gateway effective beams = %d, want 12", got)
	}
}
