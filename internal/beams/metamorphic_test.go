package beams

// Metamorphic oracles for the beam model: monotonicity relations that
// must hold for any coherent parameterization, not just the paper's.
// The paper's qualitative claims rest on these — more oversubscription
// serves bigger cells (Finding 1), more spreading dilutes per-cell
// capacity (Table 2's beamspread axis), more beams mean more capacity.

import (
	"testing"

	"leodivide/internal/testutil"
)

func TestCapacityMonotoneInBeamCount(t *testing.T) {
	var caps, cells []float64
	for _, beams := range []int{4, 8, 16, 24, 32, 48} {
		c := DefaultConfig()
		c.BeamsPerSatellite = beams
		if err := c.Validate(); err != nil {
			t.Fatalf("beams=%d: %v", beams, err)
		}
		// Per-satellite user capacity grows strictly with beam count...
		caps = append(caps, float64(c.BeamsPerSatellite)*c.BeamCapacityGbps)
		// ...and so does the coverage footprint at fixed spread.
		cells = append(cells, c.CellsPerSatellite(2, 1))
	}
	testutil.RequireMonotone(t, "satellite capacity vs beam count", caps, testutil.StrictlyIncreasing)
	testutil.RequireMonotone(t, "cells per satellite vs beam count", cells, testutil.StrictlyIncreasing)
}

func TestCapacityMonotoneInSpectrum(t *testing.T) {
	// Beam capacity is spectrum × efficiency; scaling either up must
	// scale servable cell size up at fixed oversubscription.
	var maxLocs []float64
	for _, mult := range []float64{0.5, 1, 1.5, 2, 4} {
		c := DefaultConfig()
		c.BeamCapacityGbps *= mult
		maxLocs = append(maxLocs, float64(c.MaxServableLocations(20)))
	}
	testutil.RequireMonotone(t, "max servable cell vs beam capacity", maxLocs, testutil.StrictlyIncreasing)
}

func TestServabilityMonotoneInOversubscription(t *testing.T) {
	c := DefaultConfig()
	var maxLocs, perBeam []float64
	for _, oversub := range []float64{1, 5, 10, 20, 35, 50} {
		maxLocs = append(maxLocs, float64(c.MaxServableLocations(oversub)))
		perBeam = append(perBeam, float64(c.LocationsPerBeam(oversub)))
	}
	testutil.RequireMonotone(t, "max servable cell vs oversub", maxLocs, testutil.StrictlyIncreasing)
	testutil.RequireMonotone(t, "locations per beam vs oversub", perBeam, testutil.StrictlyIncreasing)
}

func TestSpreadDilutesCapacity(t *testing.T) {
	c := DefaultConfig()
	var perCell, maxLocs []float64
	for _, spread := range []float64{1, 2, 5, 10, 15} {
		perCell = append(perCell, c.SpreadCellCapacityGbps(spread))
		maxLocs = append(maxLocs, float64(c.MaxLocationsUnderSpread(20, spread)))
	}
	testutil.RequireMonotone(t, "per-cell capacity vs spread", perCell, testutil.StrictlyDecreasing)
	testutil.RequireMonotone(t, "servable locations vs spread", maxLocs, testutil.StrictlyDecreasing)

	// Spreading wider covers more cells per satellite at fixed beams.
	var cells []float64
	for _, spread := range []float64{1, 2, 5, 10, 15} {
		cells = append(cells, c.CellsPerSatellite(spread, 1))
	}
	testutil.RequireMonotone(t, "cells per satellite vs spread", cells, testutil.StrictlyIncreasing)
}

func TestBeamsForCellMonotoneInDemand(t *testing.T) {
	c := DefaultConfig()
	var needed []float64
	for _, locs := range []int{0, 1, 500, 1000, 2000, 3000, 3460} {
		b, servable := c.BeamsForCell(locs, 20)
		if !servable {
			t.Fatalf("%d locations unexpectedly unservable at 20:1", locs)
		}
		needed = append(needed, float64(b))
	}
	testutil.RequireMonotone(t, "beams needed vs cell size", needed, testutil.NonDecreasing)

	// The servability boundary agrees with MaxServableLocations exactly.
	limit := c.MaxServableLocations(20)
	if _, ok := c.BeamsForCell(limit, 20); !ok {
		t.Errorf("cell at the boundary (%d) must be servable", limit)
	}
	if _, ok := c.BeamsForCell(limit+1, 20); ok {
		t.Errorf("cell just past the boundary (%d) must not be servable", limit+1)
	}
}

func TestRequiredOversubscriptionMonotone(t *testing.T) {
	c := DefaultConfig()
	var req []float64
	for _, locs := range []int{0, 100, 1000, 3460, 5998, 10000} {
		req = append(req, c.RequiredOversubscription(locs))
	}
	testutil.RequireMonotone(t, "required oversub vs cell size", req, testutil.NonDecreasing)
	// The paper's peak cell needs ~35:1 (Table 1).
	testutil.RequireWithinRel(t, "peak-cell oversubscription", c.RequiredOversubscription(5998), 34.7, 0.01)
}

func TestEffectiveUTBeamsMonotoneInGatewayCapacity(t *testing.T) {
	c := DefaultConfig()
	var eff []float64
	for _, mult := range []float64{0.25, 0.5, 1, 2} {
		g := DefaultGatewayConfig()
		g.GatewayBeamCapacityGbps *= mult
		eff = append(eff, float64(c.EffectiveUTBeams(g)))
	}
	testutil.RequireMonotone(t, "effective UT beams vs gateway capacity", eff, testutil.NonDecreasing)
	// With abundant backhaul every UT beam stays on user duty.
	g := DefaultGatewayConfig()
	g.GatewayBeamCapacityGbps *= 100
	if got := c.EffectiveUTBeams(g); got != c.BeamsPerSatellite {
		t.Errorf("unconstrained backhaul: EffectiveUTBeams = %d, want %d", got, c.BeamsPerSatellite)
	}
}
