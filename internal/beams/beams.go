// Package beams models satellite spot beams: how much capacity a beam
// delivers to a cell, how beam spreading dilutes it, and how many beams
// a cell of a given demand requires at a given oversubscription ratio.
//
// The beam model is the hinge between raw demand (locations wanting
// 100/20 Mbps) and constellation geometry (how many cells one satellite
// can cover), so its arithmetic is kept explicit and unit-annotated.
package beams

import (
	"fmt"
	"math"

	"leodivide/internal/constellation"
	"leodivide/internal/spectrum"
)

// Config fixes the physical beam parameters for a model run. The zero
// value is not usable; obtain one from DefaultConfig and adjust.
type Config struct {
	// BeamCapacityGbps is the downlink capacity of one spot beam when
	// dedicated to a single cell.
	BeamCapacityGbps float64
	// BeamsPerSatellite is the number of beams a satellite can point at
	// user-terminal cells.
	BeamsPerSatellite int
	// MaxBeamsPerCell caps how many beams may stack on one cell
	// (spectrum/polarization limit).
	MaxBeamsPerCell int
	// DemandPerLocationGbps is the downlink a served location is sold.
	DemandPerLocationGbps float64
}

// DefaultConfig returns the paper's beam parameters: 24 UT beams of
// ~4.325 Gbps, at most 4 stacked per cell, 100 Mbps per location.
// It is the Starlink spec viewed through ForSystem.
func DefaultConfig() Config {
	return ForSystem(constellation.StarlinkSystem())
}

// ForSystem derives the beam configuration a constellation.System
// implies: the system's per-cell capacity split across its beam
// stacking limit, the user-terminal beam count its band table
// supplies, and the FCC 100 Mbps benchmark demand. For the Starlink
// spec this reproduces the historical constant-derived DefaultConfig
// bit-identically (the per-cell capacity divides by a power of two, so
// the runtime split equals the folded constant).
func ForSystem(sys constellation.System) Config {
	return Config{
		BeamCapacityGbps:      sys.CellCapacityGbps / float64(sys.MaxBeamsPerCell),
		BeamsPerSatellite:     spectrum.UTBeamsOf(sys.Bands),
		MaxBeamsPerCell:       sys.MaxBeamsPerCell,
		DemandPerLocationGbps: spectrum.FCCDownlinkMbps / 1000.0,
	}
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	if c.BeamCapacityGbps <= 0 {
		return fmt.Errorf("beams: beam capacity must be positive, got %v", c.BeamCapacityGbps)
	}
	if c.BeamsPerSatellite <= 0 {
		return fmt.Errorf("beams: beams per satellite must be positive, got %d", c.BeamsPerSatellite)
	}
	if c.MaxBeamsPerCell <= 0 || c.MaxBeamsPerCell > c.BeamsPerSatellite {
		return fmt.Errorf("beams: max beams per cell %d out of range (1..%d)",
			c.MaxBeamsPerCell, c.BeamsPerSatellite)
	}
	if c.DemandPerLocationGbps <= 0 {
		return fmt.Errorf("beams: per-location demand must be positive, got %v", c.DemandPerLocationGbps)
	}
	return nil
}

// MaxCellCapacityGbps is the most capacity one cell can receive
// (MaxBeamsPerCell dedicated beams).
func (c Config) MaxCellCapacityGbps() float64 {
	return c.BeamCapacityGbps * float64(c.MaxBeamsPerCell)
}

// CellDemandGbps returns the sold downlink demand of a cell with the
// given number of locations.
func (c Config) CellDemandGbps(locations int) float64 {
	return float64(locations) * c.DemandPerLocationGbps
}

// RequiredOversubscription returns the minimum oversubscription ratio at
// which the cell's demand fits in the maximum per-cell capacity.
// A cell with zero locations requires no oversubscription (returns 1).
func (c Config) RequiredOversubscription(locations int) float64 {
	if locations <= 0 {
		return 1
	}
	ratio := c.CellDemandGbps(locations) / c.MaxCellCapacityGbps()
	if ratio < 1 {
		return 1
	}
	return ratio
}

// BeamsForCell returns the number of dedicated beams needed to serve a
// cell of the given size at oversubscription ratio oversub, and whether
// the cell is servable within the per-cell beam cap. Cells with zero
// locations still need one beam for coverage.
func (c Config) BeamsForCell(locations int, oversub float64) (beams int, servable bool) {
	if oversub < 1 {
		oversub = 1
	}
	if locations <= 0 {
		return 1, true
	}
	need := c.CellDemandGbps(locations) / oversub
	b := int(math.Ceil(need/c.BeamCapacityGbps - 1e-9))
	if b < 1 {
		b = 1
	}
	if b > c.MaxBeamsPerCell {
		return c.MaxBeamsPerCell, false
	}
	return b, true
}

// LocationsPerBeam returns the largest number of locations one dedicated
// beam can serve at oversubscription ratio oversub (865 at 20:1 under
// the default config).
func (c Config) LocationsPerBeam(oversub float64) int {
	if oversub < 1 {
		oversub = 1
	}
	return int(math.Floor(c.BeamCapacityGbps*oversub/c.DemandPerLocationGbps + 1e-9))
}

// MaxServableLocations returns the largest cell servable within the
// per-cell beam cap at oversubscription oversub (3,460 at 20:1 under
// the default config). It is computed from the full per-cell capacity
// so it agrees exactly with BeamsForCell's servability boundary.
func (c Config) MaxServableLocations(oversub float64) int {
	if oversub < 1 {
		oversub = 1
	}
	return int(math.Floor(c.MaxCellCapacityGbps()*oversub/c.DemandPerLocationGbps + 1e-9))
}

// SpreadCellCapacityGbps returns the per-cell capacity when one beam is
// spread across spreadFactor cells. Spread factor 1 means a dedicated
// beam.
func (c Config) SpreadCellCapacityGbps(spreadFactor float64) float64 {
	if spreadFactor < 1 {
		spreadFactor = 1
	}
	return c.BeamCapacityGbps / spreadFactor
}

// MaxLocationsUnderSpread returns the largest cell a single spread beam
// can serve at oversubscription oversub when the beam covers
// spreadFactor cells: 43.25·oversub/spread locations under the default
// config.
func (c Config) MaxLocationsUnderSpread(oversub, spreadFactor float64) int {
	if oversub < 1 {
		oversub = 1
	}
	perCell := c.SpreadCellCapacityGbps(spreadFactor)
	return int(math.Floor(perCell*oversub/c.DemandPerLocationGbps + 1e-9))
}

// CellsPerSatellite returns how many cells one satellite covers when it
// dedicates peakBeams beams to the peak-demand cell and spreads each of
// its remaining beams over spreadFactor cells: 1 + (B−peakBeams)·s.
func (c Config) CellsPerSatellite(spreadFactor float64, peakBeams int) float64 {
	if peakBeams < 1 {
		peakBeams = 1
	}
	if peakBeams > c.BeamsPerSatellite {
		peakBeams = c.BeamsPerSatellite
	}
	if spreadFactor < 1 {
		spreadFactor = 1
	}
	return 1 + float64(c.BeamsPerSatellite-peakBeams)*spreadFactor
}

// GatewayConfig models the backhaul side of the bent-pipe architecture:
// every bit delivered to user terminals must also cross a
// satellite-to-gateway link. Starlink satellites carry 4 dedicated
// gateway beams (the 71-76 GHz band) and can divert their 16 flexible
// beams to gateway duty; when a fully loaded satellite's user traffic
// exceeds the dedicated gateway capacity, flexible beams must be
// diverted, shrinking the beams available for user cells.
type GatewayConfig struct {
	// DedicatedGatewayBeams is the count of gateway-only beams.
	DedicatedGatewayBeams int
	// GatewayBeamCapacityGbps is the capacity of one dedicated gateway
	// beam.
	GatewayBeamCapacityGbps float64
}

// DefaultGatewayConfig returns the Schedule S gateway budget: 4
// dedicated beams, each able to reuse the full 5,000 MHz E-band toward
// a distinct gateway at the paper's 4.5 b/Hz estimate (22.5 Gbps per
// beam, 90 Gbps per satellite).
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		DedicatedGatewayBeams:   spectrum.BeamsPerCellLimit,
		GatewayBeamCapacityGbps: 5000 * spectrum.SpectralEfficiencyBpsPerHz / 1000,
	}
}

// DedicatedGatewayCapacityGbps returns the backhaul capacity available
// without diverting any flexible beam.
func (g GatewayConfig) DedicatedGatewayCapacityGbps() float64 {
	return float64(g.DedicatedGatewayBeams) * g.GatewayBeamCapacityGbps
}

// EffectiveUTBeams returns the number of beams a fully loaded satellite
// can actually point at user cells once backhaul balance is enforced:
// the largest B such that B beams of user traffic fit through the
// dedicated gateway capacity plus the flexible beams diverted to
// gateway duty (each diverted beam both removes c_beam of user capacity
// and adds c_beam of backhaul).
func (c Config) EffectiveUTBeams(g GatewayConfig) int {
	total := c.BeamsPerSatellite
	for b := total; b >= 1; b-- {
		userGbps := float64(b) * c.BeamCapacityGbps
		backhaul := g.DedicatedGatewayCapacityGbps() + float64(total-b)*c.BeamCapacityGbps
		if userGbps <= backhaul+1e-9 {
			return b
		}
	}
	return 1
}
