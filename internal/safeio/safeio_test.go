package safeio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "data.csv")
	payload := []byte("header\n1,2,3\n")
	sum, err := WriteFileBytes(ctx, path, payload)
	if err != nil {
		t.Fatal(err)
	}
	if want := SHA256Hex(payload); sum != want {
		t.Errorf("sum = %s, want %s", sum, want)
	}
	back, err := ReadFileVerified(ctx, path, sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Errorf("round trip drifted: %q", back)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just data.csv", len(entries))
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "data.csv")
	if _, err := WriteFileBytes(ctx, path, []byte("old contents")); err != nil {
		t.Fatal(err)
	}
	// A failed overwrite must leave the old contents untouched.
	_, err := WriteFile(ctx, path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "new par"); err != nil {
			return err
		}
		return errors.New("producer failed midway")
	})
	if err == nil {
		t.Fatal("want error from failing producer")
	}
	back, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "old contents" {
		t.Errorf("failed write clobbered the destination: %q", back)
	}
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Errorf("temp file leaked: %d entries", len(entries))
	}
}

func TestWriteFileErrorMatrix(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("boom")
	cases := []struct {
		name    string
		install func(t *testing.T)
		wantErr error // nil = any non-nil error acceptable
	}{
		{
			name: "write error",
			install: func(t *testing.T) {
				t.Cleanup(SetWriteFault(func(path string, w io.Writer) io.Writer {
					return &FaultWriter{W: w, FailAfter: 4, Err: boom}
				}))
			},
			wantErr: boom,
		},
		{
			name: "short write",
			install: func(t *testing.T) {
				t.Cleanup(SetWriteFault(func(path string, w io.Writer) io.Writer {
					return &FaultWriter{W: w, FailAfter: 4, Short: true}
				}))
			},
			wantErr: io.ErrShortWrite,
		},
		{
			name: "sync failure",
			install: func(t *testing.T) {
				t.Cleanup(SetSyncFault(func(path string) error { return boom }))
			},
			wantErr: boom,
		},
		{
			name: "close failure",
			install: func(t *testing.T) {
				t.Cleanup(SetCloseFault(func(path string) error { return boom }))
			},
			wantErr: boom,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.install(t)
			path := filepath.Join(t.TempDir(), "out.bin")
			_, err := WriteFileBytes(ctx, path, []byte("twelve bytes"))
			if err == nil {
				t.Fatal("fault did not surface as an error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
			if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
				t.Errorf("failed write left a destination file")
			}
		})
	}
}

func TestReadFileVerifiedErrors(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	payload := []byte("cells,go,here\n1,2,3\n")
	sum, err := WriteFileBytes(ctx, path, payload)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("checksum mismatch on single-byte flip", func(t *testing.T) {
		flipped := append([]byte(nil), payload...)
		flipped[5] ^= 0x01
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadFileVerified(ctx, path, sum)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("flipped byte not caught: %v", err)
		}
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("truncation", func(t *testing.T) {
		if err := os.WriteFile(path, payload[:7], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFileVerified(ctx, path, sum); err == nil {
			t.Error("truncated file not caught")
		}
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("read error", func(t *testing.T) {
		boom := errors.New("disk gone")
		defer SetReadFault(func(path string, r io.Reader) io.Reader {
			return &FaultReader{R: r, FailAfter: 3, Err: boom}
		})()
		if _, err := ReadFileVerified(ctx, path, sum); !errors.Is(err, boom) {
			t.Errorf("err = %v, want %v", err, boom)
		}
	})

	t.Run("short read", func(t *testing.T) {
		defer SetReadFault(func(path string, r io.Reader) io.Reader {
			return &FaultReader{R: r, FailAfter: 3, Short: true}
		})()
		if _, err := ReadFileVerified(ctx, path, sum); err == nil {
			t.Error("short read not caught by checksum")
		}
	})

	t.Run("missing file", func(t *testing.T) {
		if _, err := ReadFileVerified(ctx, filepath.Join(dir, "nope"), sum); err == nil {
			t.Error("missing file not reported")
		}
	})

	t.Run("empty wantSum skips verification", func(t *testing.T) {
		back, err := ReadFileVerified(ctx, path, "")
		if err != nil || !bytes.Equal(back, payload) {
			t.Errorf("unverified read failed: %v", err)
		}
	})
}

func TestFaultWriterBudget(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultWriter{W: &buf, FailAfter: 10}
	n, err := fw.Write([]byte("12345"))
	if n != 5 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	n, err = fw.Write([]byte("6789012345"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("budget-crossing write: %d, %v", n, err)
	}
	if buf.String() != "1234567890" {
		t.Errorf("accepted bytes = %q", buf.String())
	}
}

func TestHashingWriter(t *testing.T) {
	var buf bytes.Buffer
	hw := NewHashingWriter(&buf)
	if _, err := hw.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	if hw.SumHex() != SHA256Hex([]byte("abcdef")) {
		t.Errorf("streamed sum differs from whole-buffer sum")
	}
	if hw.BytesWritten() != 6 {
		t.Errorf("BytesWritten = %d", hw.BytesWritten())
	}
}
