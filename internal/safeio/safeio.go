// Package safeio is the repo's hardened file I/O layer. Every number
// the reproduction publishes rests on a pinned dataset that must
// survive a save/load round trip exactly, so this layer guarantees two
// properties the bare os package does not:
//
//   - Atomicity: WriteFile writes into a temp file in the destination
//     directory, fsyncs it, and renames it into place, then fsyncs the
//     directory. A crash, full disk, or failed flush leaves either the
//     old file or the new file — never a truncated hybrid.
//   - Loud failure: Close and Sync errors propagate; short writes are
//     promoted to io.ErrShortWrite instead of being absorbed; reads can
//     be verified against a SHA-256 checksum recorded at write time.
//
// The fault-injection seams in fault.go let tests drive every error
// path (write error, short write, close/sync failure, read error,
// short read) without touching the real filesystem.
package safeio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"time"

	"leodivide/internal/obs"
)

// I/O observability (see internal/obs): how many artifacts the process
// wrote and read, how many bytes moved, how often it paid for an fsync,
// and whether any checksum verification or fault injection fired.
var (
	metricWrites       = obs.Default.Counter("safeio.writes")
	metricWriteErrors  = obs.Default.Counter("safeio.write_errors")
	metricBytesWritten = obs.Default.Counter("safeio.bytes_written")
	metricFsyncs       = obs.Default.Counter("safeio.fsyncs")
	metricWriteSecs    = obs.Default.Histogram("safeio.write.seconds", obs.DurationBuckets)
	metricReads        = obs.Default.Counter("safeio.reads")
	metricBytesRead    = obs.Default.Counter("safeio.bytes_read")
	metricVerifies     = obs.Default.Counter("safeio.checksum_verifies")
	metricVerifyFails  = obs.Default.Counter("safeio.checksum_failures")
	metricFaults       = obs.Default.Counter("safeio.faults_injected")
)

// SHA256Hex returns the lowercase hex SHA-256 of data.
func SHA256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// strictWriter enforces the io.Writer contract on a possibly
// misbehaving underlying writer: a short count with a nil error is
// promoted to io.ErrShortWrite so it can never be silently absorbed by
// downstream buffering.
type strictWriter struct {
	w io.Writer
}

func (s strictWriter) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	if err == nil && n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, err
}

// countingWriter counts the bytes the underlying writer accepted, for
// the safeio.bytes_written counter.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteFile atomically writes the content produced by fn to path and
// returns the SHA-256 of the bytes written. fn receives a writer that
// tees into the checksum; any error from fn, from the underlying
// writes, from Sync, from Close, or from the final rename surfaces as
// a non-nil error, and the destination is left untouched (the temp
// file is removed).
//
// Cancellation is observed at entry and again just before the rename;
// a cancelled write leaves the destination untouched. Once the rename
// starts it always completes — atomicity is never traded for latency.
func WriteFile(ctx context.Context, path string, fn func(io.Writer) error) (sumHex string, err error) {
	//lint:ignore detrand wall-clock feeds the safeio.write.seconds metric only, never experiment output
	start := time.Now()
	defer func() {
		metricWriteSecs.ObserveSince(start)
		if err != nil {
			metricWriteErrors.Inc()
		} else {
			metricWrites.Inc()
		}
	}()
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("safeio: writing %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("safeio: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			//lint:ignore errdrop best-effort cleanup on the error path; the original write error is what the caller needs
			tmp.Close()
			//lint:ignore errdrop best-effort cleanup on the error path; the original write error is what the caller needs
			os.Remove(tmpName)
		}
	}()

	h := sha256.New()
	var w io.Writer = tmp
	if hook := writeHook(); hook != nil {
		metricFaults.Inc()
		w = hook(path, w)
	}
	cw := &countingWriter{w: w}
	defer func() { metricBytesWritten.Add(cw.n) }()
	w = strictWriter{io.MultiWriter(h, strictWriter{cw})}
	if err := fn(w); err != nil {
		return "", fmt.Errorf("safeio: writing %s: %w", path, err)
	}
	// CreateTemp makes the file 0600; match os.Create's 0666-minus-umask
	// so written artifacts keep their historical permissions.
	if err := tmp.Chmod(0o644); err != nil {
		return "", fmt.Errorf("safeio: setting mode on %s: %w", path, err)
	}
	if err := syncFile(tmp); err != nil {
		return "", fmt.Errorf("safeio: syncing %s: %w", path, err)
	}
	if err := closeFile(tmp); err != nil {
		return "", fmt.Errorf("safeio: closing %s: %w", path, err)
	}
	if err := ctx.Err(); err != nil {
		//lint:ignore errdrop best-effort temp cleanup on cancellation; the cancellation error is what the caller needs
		os.Remove(tmpName)
		return "", fmt.Errorf("safeio: writing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		//lint:ignore errdrop best-effort temp cleanup; the rename error is already being returned
		os.Remove(tmpName)
		return "", fmt.Errorf("safeio: renaming into %s: %w", path, err)
	}
	syncDir(dir)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WriteFileBytes atomically writes data to path and returns its
// SHA-256. Cancellation semantics are those of WriteFile.
func WriteFileBytes(ctx context.Context, path string, data []byte) (string, error) {
	return WriteFile(ctx, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so the rename that just happened inside
// it is durable. Errors are ignored: some filesystems (and platforms)
// refuse to sync directories, and by this point the data file itself
// is already synced and in place.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	//lint:ignore errdrop documented: some filesystems refuse directory fsync and the data file is already durable
	d.Sync()
	//lint:ignore errdrop closing a read-only directory handle after a best-effort sync
	d.Close()
}

// ReadFileVerified reads path fully and, when wantSum is nonempty,
// verifies its SHA-256 against wantSum before returning the bytes. A
// mismatch — a truncated file, a flipped byte, any post-write
// corruption — is an error, never silently accepted. Cancellation is
// observed at entry.
func ReadFileVerified(ctx context.Context, path, wantSum string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("safeio: reading %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdrop closing a read-only file; read errors are surfaced by ReadAll
	defer f.Close()
	var r io.Reader = f
	if hook := readHook(); hook != nil {
		metricFaults.Inc()
		r = hook(path, r)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("safeio: reading %s: %w", path, err)
	}
	metricReads.Inc()
	metricBytesRead.Add(int64(len(data)))
	if wantSum != "" {
		metricVerifies.Inc()
		if got := SHA256Hex(data); got != wantSum {
			metricVerifyFails.Inc()
			return nil, fmt.Errorf("safeio: checksum mismatch for %s: file has %s, manifest says %s",
				path, got, wantSum)
		}
	}
	return data, nil
}

// HashingWriter tees writes into a SHA-256 alongside an underlying
// writer, for callers that stream and want the digest afterwards.
type HashingWriter struct {
	w io.Writer
	h hash.Hash
	n int64
}

// NewHashingWriter wraps w.
func NewHashingWriter(w io.Writer) *HashingWriter {
	return &HashingWriter{w: strictWriter{w}, h: sha256.New()}
}

func (hw *HashingWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	hw.n += int64(n)
	return n, err
}

// SumHex returns the hex SHA-256 of everything written so far.
func (hw *HashingWriter) SumHex() string { return hex.EncodeToString(hw.h.Sum(nil)) }

// BytesWritten returns the number of bytes successfully written.
func (hw *HashingWriter) BytesWritten() int64 { return hw.n }
