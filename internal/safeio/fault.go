package safeio

import (
	"errors"
	"io"
	"os"
	"sync"
)

// ErrInjected is the default error surfaced by the fault-injection
// wrappers in this file.
var ErrInjected = errors.New("safeio: injected fault")

// FaultWriter is a test double: it forwards to W until FailAfter bytes
// have been accepted, then fails. With Short unset the failure is an
// explicit error (Err, defaulting to ErrInjected); with Short set the
// writer misbehaves instead — it accepts only part of the slice and
// returns the short count with a nil error, the classic short write
// that naive callers silently absorb. safeio's strict layer must
// convert the latter into io.ErrShortWrite.
type FaultWriter struct {
	W         io.Writer
	FailAfter int64
	Err       error
	Short     bool

	written int64
}

func (f *FaultWriter) Write(p []byte) (int, error) {
	budget := f.FailAfter - f.written
	if budget >= int64(len(p)) {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	if budget < 0 {
		budget = 0
	}
	n, err := f.W.Write(p[:budget])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	if f.Short {
		return n, nil
	}
	if f.Err != nil {
		return n, f.Err
	}
	return n, ErrInjected
}

// FaultReader forwards to R until FailAfter bytes have been produced,
// then fails: with Short unset it returns Err (default ErrInjected);
// with Short set it reports a clean early io.EOF, modeling a truncated
// file.
type FaultReader struct {
	R         io.Reader
	FailAfter int64
	Err       error
	Short     bool

	read int64
}

func (f *FaultReader) Read(p []byte) (int, error) {
	budget := f.FailAfter - f.read
	if budget <= 0 {
		if f.Short {
			return 0, io.EOF
		}
		if f.Err != nil {
			return 0, f.Err
		}
		return 0, ErrInjected
	}
	if int64(len(p)) > budget {
		p = p[:budget]
	}
	n, err := f.R.Read(p)
	f.read += int64(n)
	return n, err
}

// Fault-injection hooks. Tests install them to interpose on the real
// file operations WriteFile and ReadFileVerified perform; production
// code never sets them. Each setter returns a restore func so tests
// can defer cleanup.
var (
	hookMu       sync.Mutex
	writeHookFn  func(path string, w io.Writer) io.Writer
	readHookFn   func(path string, r io.Reader) io.Reader
	syncFaultFn  func(path string) error
	closeFaultFn func(path string) error
)

// SetWriteFault interposes h on the data path of every WriteFile until
// the returned restore func runs.
func SetWriteFault(h func(path string, w io.Writer) io.Writer) (restore func()) {
	hookMu.Lock()
	defer hookMu.Unlock()
	prev := writeHookFn
	writeHookFn = h
	return func() { hookMu.Lock(); writeHookFn = prev; hookMu.Unlock() }
}

// SetReadFault interposes h on the data path of every ReadFileVerified
// until the returned restore func runs.
func SetReadFault(h func(path string, r io.Reader) io.Reader) (restore func()) {
	hookMu.Lock()
	defer hookMu.Unlock()
	prev := readHookFn
	readHookFn = h
	return func() { hookMu.Lock(); readHookFn = prev; hookMu.Unlock() }
}

// SetSyncFault makes WriteFile's pre-rename fsync fail with the error
// f returns (nil = no fault) until the returned restore func runs.
func SetSyncFault(f func(path string) error) (restore func()) {
	hookMu.Lock()
	defer hookMu.Unlock()
	prev := syncFaultFn
	syncFaultFn = f
	return func() { hookMu.Lock(); syncFaultFn = prev; hookMu.Unlock() }
}

// SetCloseFault makes WriteFile's temp-file Close fail with the error
// f returns (nil = no fault) until the returned restore func runs.
// This is the regression seam for the historical bug where a deferred
// Close error was discarded by Dataset.Save.
func SetCloseFault(f func(path string) error) (restore func()) {
	hookMu.Lock()
	defer hookMu.Unlock()
	prev := closeFaultFn
	closeFaultFn = f
	return func() { hookMu.Lock(); closeFaultFn = prev; hookMu.Unlock() }
}

func writeHook() func(string, io.Writer) io.Writer {
	hookMu.Lock()
	defer hookMu.Unlock()
	return writeHookFn
}

func readHook() func(string, io.Reader) io.Reader {
	hookMu.Lock()
	defer hookMu.Unlock()
	return readHookFn
}

func syncFile(f *os.File) error {
	hookMu.Lock()
	fault := syncFaultFn
	hookMu.Unlock()
	if fault != nil {
		if err := fault(f.Name()); err != nil {
			metricFaults.Inc()
			return err
		}
	}
	metricFsyncs.Inc()
	return f.Sync()
}

func closeFile(f *os.File) error {
	hookMu.Lock()
	fault := closeFaultFn
	hookMu.Unlock()
	if fault != nil {
		if err := fault(f.Name()); err != nil {
			metricFaults.Inc()
			//lint:ignore errdrop the injected fault must surface; a close error on the probe handle is secondary
			f.Close()
			return err
		}
	}
	return f.Close()
}
