package bdc

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"leodivide/internal/hexgrid"
)

// Fuzzing the CSV decoders: arbitrary input must never panic, and
// anything that parses must re-encode and re-parse to the same records
// (a decode/encode/decode fixed point).

func FuzzReadLocationsCSV(f *testing.F) {
	f.Add("location_id,latitude,longitude,state,county_fips,max_download_mbps,max_upload_mbps,technology\n" +
		"1,35.5,-106.3,NM,35001,25.00,3.00,dsl\n")
	f.Add("")
	f.Add("garbage")
	f.Add("location_id,latitude,longitude,state,county_fips,max_download_mbps,max_upload_mbps,technology\n" +
		"1,999,-106.3,NM,35001,25.00,3.00,dsl\n")
	f.Fuzz(func(t *testing.T, input string) {
		locs, err := ReadLocationsCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLocationsCSV(&buf, locs); err != nil {
			t.Fatalf("re-encode of parsed input failed: %v", err)
		}
		again, err := ReadLocationsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse of re-encoded input failed: %v", err)
		}
		if len(again) != len(locs) {
			t.Fatalf("fixed point violated: %d -> %d records", len(locs), len(again))
		}
	})
}

func FuzzReadProviderCSV(f *testing.F) {
	f.Add("location_id,provider_id,provider_name,technology,max_download_mbps,max_upload_mbps,low_latency\n" +
		"1,130077,Windstream,dsl,25.00,3.00,true\n")
	f.Add("x")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := ReadProviderCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteProviderCSV(&buf, records); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadProviderCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("fixed point violated: %d -> %d", len(records), len(again))
		}
	})
}

func FuzzReadCellsCSV(f *testing.F) {
	valid := testCellID(35.5, -106.3)
	f.Add(fmt.Sprintf("cell_id,latitude,longitude,county_fips,unserved_locations\n"+
		"%d,35.5,-106.3,35001,100\n", valid))
	f.Add("cell_id,latitude,longitude,county_fips,unserved_locations\n")
	f.Add(fmt.Sprintf("cell_id,latitude,longitude,county_fips,unserved_locations\n"+
		"%d,91.0,-200.0,abcde,-7\n", valid))
	f.Add("not,a,cells,file,at all\ngarbage")
	f.Fuzz(func(t *testing.T, input string) {
		cells, err := ReadCellsCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the reader's promised
		// invariants...
		seen := make(map[hexgrid.CellID]bool, len(cells))
		for _, c := range cells {
			if !c.ID.Valid() {
				t.Fatalf("accepted invalid cell id %d", uint64(c.ID))
			}
			if seen[c.ID] {
				t.Fatalf("accepted duplicate cell id %d", uint64(c.ID))
			}
			seen[c.ID] = true
			if !c.Center.Valid() {
				t.Fatalf("accepted out-of-range coordinate %v", c.Center)
			}
			if !ValidFIPS(c.CountyFIPS) {
				t.Fatalf("accepted bad FIPS %q", c.CountyFIPS)
			}
			if c.Locations < 0 {
				t.Fatalf("accepted negative location count %d", c.Locations)
			}
		}
		// ...and re-encode/re-parse to a fixed point.
		var buf bytes.Buffer
		if err := WriteCellsCSV(&buf, cells); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadCellsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(cells) {
			t.Fatalf("fixed point violated: %d -> %d", len(cells), len(again))
		}
	})
}
