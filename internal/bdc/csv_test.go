package bdc

import (
	"fmt"
	"strings"
	"testing"

	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

// testCellID returns a canonical cell id for crafting CSV fixtures.
func testCellID(lat, lng float64) uint64 {
	return uint64(hexgrid.LatLngToCell(geo.LatLng{Lat: lat, Lng: lng}, 5))
}

func cellsCSV(rows ...string) string {
	return "cell_id,latitude,longitude,county_fips,unserved_locations\n" +
		strings.Join(rows, "\n") + "\n"
}

func TestReadCellsCSVStrictIngest(t *testing.T) {
	id := testCellID(35.5, -106.3)
	id2 := testCellID(34.3, -89.9)
	good := func(id uint64) string {
		return fmt.Sprintf("%d,35.500000,-106.300000,35049,120", id)
	}
	cases := []struct {
		name    string
		input   string
		wantErr string // substring; "" means the input must parse
	}{
		{"well-formed", cellsCSV(good(id), good(id2)), ""},
		{"duplicate cell_id", cellsCSV(good(id), good(id)), "duplicate cell_id"},
		{"invalid cell_id", cellsCSV("12345,35.5,-106.3,35049,120"), "not a valid cell"},
		{"zero cell_id", cellsCSV("0,35.5,-106.3,35049,120"), "not a valid cell"},
		{"latitude out of range", cellsCSV(fmt.Sprintf("%d,91.0,-106.3,35049,120", id)), "out of range"},
		{"longitude out of range", cellsCSV(fmt.Sprintf("%d,35.5,-181.0,35049,120", id)), "out of range"},
		{"NaN latitude", cellsCSV(fmt.Sprintf("%d,NaN,-106.3,35049,120", id)), "out of range"},
		{"alphabetic county_fips", cellsCSV(fmt.Sprintf("%d,35.5,-106.3,abcde,120", id)), "bad county_fips"},
		{"short county_fips", cellsCSV(fmt.Sprintf("%d,35.5,-106.3,3504,120", id)), "bad county_fips"},
		{"negative locations", cellsCSV(fmt.Sprintf("%d,35.5,-106.3,35049,-1", id)), "bad unserved_locations"},
		{"wrong header", "id,lat,lng,fips,n\n", "cell header"},
		{"truncated record", cellsCSV(fmt.Sprintf("%d,35.5", id)), "wrong number of fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCellsCSV(strings.NewReader(tc.input))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseLocationFIPSDigits(t *testing.T) {
	rec := func(fips string) []string {
		return []string{"7", "35.500000", "-106.300000", "NM", fips, "25.00", "3.00", "DSL"}
	}
	if _, err := parseLocation(rec("35049")); err != nil {
		t.Fatalf("digit FIPS rejected: %v", err)
	}
	for _, fips := range []string{"abcde", "3504x", "123456", "3504", "35 49"} {
		if _, err := parseLocation(rec(fips)); err == nil {
			t.Errorf("county_fips %q accepted", fips)
		}
	}
}

func TestValidFIPS(t *testing.T) {
	for fips, want := range map[string]bool{
		"00000": true, "35049": true, "99999": true,
		"abcde": false, "3504": false, "350490": false, "": false, "3504９": false,
	} {
		if got := ValidFIPS(fips); got != want {
			t.Errorf("ValidFIPS(%q) = %v, want %v", fips, got, want)
		}
	}
}
