package bdc

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

// csvHeader is the BDC-style location schema. Field order is part of
// the format.
var csvHeader = []string{
	"location_id", "latitude", "longitude", "state", "county_fips",
	"max_download_mbps", "max_upload_mbps", "technology",
}

// cellCSVHeader is the aggregated per-cell schema.
var cellCSVHeader = []string{
	"cell_id", "latitude", "longitude", "county_fips", "unserved_locations",
}

// WriteLocationsCSV writes location records in the BDC-style schema.
func WriteLocationsCSV(w io.Writer, locs []demand.Location) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("bdc: writing header: %w", err)
	}
	for _, l := range locs {
		rec := []string{
			strconv.FormatUint(l.ID, 10),
			// Shortest round-trip formatting: a written coordinate parses
			// back to the identical float64, so save→load is a fixpoint
			// (6-decimal quantization used to perturb downstream results
			// at the 1e-9 level).
			strconv.FormatFloat(l.Pos.Lat, 'f', -1, 64),
			strconv.FormatFloat(l.Pos.Lng, 'f', -1, 64),
			l.StateAbbr,
			l.CountyFIPS,
			strconv.FormatFloat(l.MaxDownMbps, 'f', 2, 64),
			strconv.FormatFloat(l.MaxUpMbps, 'f', 2, 64),
			l.Technology,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bdc: writing location %d: %w", l.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadLocationsCSV parses a BDC-style location file, validating every
// record.
func ReadLocationsCSV(r io.Reader) ([]demand.Location, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("bdc: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("bdc: header field %d is %q, want %q", i, header[i], h)
		}
	}
	var out []demand.Location
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: %w", line, err)
		}
		l, err := parseLocation(rec)
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: %w", line, err)
		}
		out = append(out, l)
	}
	return out, nil
}

func parseLocation(rec []string) (demand.Location, error) {
	var l demand.Location
	id, err := strconv.ParseUint(rec[0], 10, 64)
	if err != nil {
		return l, fmt.Errorf("bad location_id %q: %w", rec[0], err)
	}
	lat, err := strconv.ParseFloat(rec[1], 64)
	if err != nil {
		return l, fmt.Errorf("bad latitude %q: %w", rec[1], err)
	}
	lng, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return l, fmt.Errorf("bad longitude %q: %w", rec[2], err)
	}
	pos := geo.LatLng{Lat: lat, Lng: lng}
	if !pos.Valid() {
		return l, fmt.Errorf("coordinate %v out of range", pos)
	}
	down, err := strconv.ParseFloat(rec[5], 64)
	if err != nil || down < 0 {
		return l, fmt.Errorf("bad max_download_mbps %q", rec[5])
	}
	up, err := strconv.ParseFloat(rec[6], 64)
	if err != nil || up < 0 {
		return l, fmt.Errorf("bad max_upload_mbps %q", rec[6])
	}
	if !ValidFIPS(rec[4]) {
		return l, fmt.Errorf("bad county_fips %q: want 5 digits", rec[4])
	}
	return demand.Location{
		ID:          id,
		Pos:         pos,
		StateAbbr:   rec[3],
		CountyFIPS:  rec[4],
		MaxDownMbps: down,
		MaxUpMbps:   up,
		Technology:  rec[7],
	}, nil
}

// WriteCellsCSV writes aggregated per-cell records.
func WriteCellsCSV(w io.Writer, cells []demand.Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(cellCSVHeader); err != nil {
		return fmt.Errorf("bdc: writing cell header: %w", err)
	}
	for _, c := range cells {
		rec := []string{
			strconv.FormatUint(uint64(c.ID), 10),
			// Shortest round-trip formatting (see WriteLocationsCSV).
			strconv.FormatFloat(c.Center.Lat, 'f', -1, 64),
			strconv.FormatFloat(c.Center.Lng, 'f', -1, 64),
			c.CountyFIPS,
			strconv.Itoa(c.Locations),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bdc: writing cell %v: %w", c.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCellsCSV parses aggregated per-cell records, enforcing the same
// invariants the writer side guarantees: well-formed cell IDs with no
// duplicates, coordinates on Earth, and digit-checked county FIPS. A
// file that violates any of them — hand-edited, truncated mid-record,
// or corrupted on disk — is rejected, never partially ingested.
func ReadCellsCSV(r io.Reader) ([]demand.Cell, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(cellCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("bdc: reading cell header: %w", err)
	}
	for i, h := range cellCSVHeader {
		if header[i] != h {
			return nil, fmt.Errorf("bdc: cell header field %d is %q, want %q", i, header[i], h)
		}
	}
	var out []demand.Cell
	seen := make(map[hexgrid.CellID]int)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: %w", line, err)
		}
		id, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: bad cell_id %q", line, rec[0])
		}
		cid := hexgrid.CellID(id)
		if !cid.Valid() {
			return nil, fmt.Errorf("bdc: line %d: cell_id %d is not a valid cell", line, id)
		}
		if prev, dup := seen[cid]; dup {
			return nil, fmt.Errorf("bdc: line %d: duplicate cell_id %d (first at line %d)", line, id, prev)
		}
		seen[cid] = line
		lat, err1 := strconv.ParseFloat(rec[1], 64)
		lng, err2 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bdc: line %d: bad coordinate", line)
		}
		center := geo.LatLng{Lat: lat, Lng: lng}
		if !center.Valid() {
			return nil, fmt.Errorf("bdc: line %d: coordinate %v out of range", line, center)
		}
		if !ValidFIPS(rec[3]) {
			return nil, fmt.Errorf("bdc: line %d: bad county_fips %q: want 5 digits", line, rec[3])
		}
		n, err := strconv.Atoi(rec[4])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bdc: line %d: bad unserved_locations %q", line, rec[4])
		}
		out = append(out, demand.Cell{
			ID:         cid,
			Center:     center,
			CountyFIPS: rec[3],
			Locations:  n,
		})
	}
	return out, nil
}

// ValidFIPS reports whether s is a well-formed 5-digit county FIPS
// code. Length alone is not enough: "abcde" is 5 characters and was
// historically accepted.
func ValidFIPS(s string) bool {
	if len(s) != 5 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Validate checks a parsed location dataset for internal consistency:
// unique IDs, valid coordinates, nonnegative speeds.
func Validate(locs []demand.Location) error {
	seen := make(map[uint64]bool, len(locs))
	for i, l := range locs {
		if seen[l.ID] {
			return fmt.Errorf("bdc: duplicate location_id %d at record %d", l.ID, i)
		}
		seen[l.ID] = true
		if !l.Pos.Valid() {
			return fmt.Errorf("bdc: record %d: invalid coordinate %v", i, l.Pos)
		}
		if l.MaxDownMbps < 0 || l.MaxUpMbps < 0 {
			return fmt.Errorf("bdc: record %d: negative speed", i)
		}
	}
	return nil
}
