// Package bdc is the synthetic Broadband Data Collection: a stand-in
// for the FCC National Broadband Map the paper analyses. It generates
// un(der)served broadband locations across the United States with a
// per-cell density distribution calibrated to every statistic the paper
// publishes about the real data, and provides a BDC-style CSV codec so
// datasets can be written, exchanged and re-read exactly as a real
// National Broadband Map extract would be.
//
// Calibration anchors (see DESIGN.md §5): ~4.672M total un(der)served
// locations; per-cell distribution with p90 = 552, p99 = 1437; exactly
// five cells above the 3,460-location 20:1 threshold holding 22,428
// locations (5,128 in excess); peak cell 5,998.
package bdc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/obs"
	"leodivide/internal/par"
	"leodivide/internal/usgeo"
)

// Generation observability (see internal/obs): stage durations and
// output sizes for the synthetic-dataset pipeline, recorded once per
// generation so the instruments cost nothing on the per-cell paths.
var (
	metricGenerations  = obs.Default.Counter("bdc.generations")
	metricCellsOut     = obs.Default.Counter("bdc.cells_generated")
	metricGenSecs      = obs.Default.Histogram("bdc.generate.seconds", obs.DurationBuckets)
	metricSampleSecs   = obs.Default.Histogram("bdc.sample_sites.seconds", obs.DurationBuckets)
	metricGridSecs     = obs.Default.Histogram("bdc.us_cells.seconds", obs.DurationBuckets)
	metricGridCacheHit = obs.Default.Counter("bdc.us_cells.cache_hits")
)

// QuantileAnchor pins the body-cell location-count quantile function.
type QuantileAnchor struct {
	Q         float64
	Locations float64
}

// PeakCell pins one of the head cells that exceed the 20:1
// oversubscription threshold, at a fixed geographic anchor.
type PeakCell struct {
	Locations int
	Anchor    geo.LatLng
}

// GenConfig controls dataset synthesis. Obtain a calibrated baseline
// from DefaultGenConfig.
type GenConfig struct {
	// Seed drives all pseudo-randomness; equal seeds give identical
	// datasets.
	Seed int64
	// Resolution is the service-cell grid resolution.
	Resolution hexgrid.Resolution
	// TotalLocations is the national total of un(der)served locations.
	TotalLocations int
	// BodyAnchors shape the per-cell count distribution of all cells
	// below the 20:1 threshold (log-linear interpolation between
	// anchors).
	BodyAnchors []QuantileAnchor
	// Peaks are the pinned head cells.
	Peaks []PeakCell
	// Parallelism bounds the worker count for the RNG-free phases of
	// generation (grid enumeration, county resolution). 0 means one
	// worker per CPU; 1 is the serial path. The generated dataset is
	// identical at every setting: all seeded-RNG decisions run on a
	// single goroutine in a fixed order, and parallel shards are
	// collected in canonical order.
	Parallelism int
}

// DefaultGenConfig returns the paper-calibrated configuration.
//
// The five peak anchors sit in rural New Mexico, Alabama, Mississippi,
// Kentucky and Arizona; their latitudes are chosen so the 20:1-capped
// scenario binds at a slightly lower latitude (34.3°N) than the
// full-service scenario (34.8°N), reproducing the paper's observation
// that the capped deployment needs marginally more satellites.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:           1,
		Resolution:     5,
		TotalLocations: 4672000,
		BodyAnchors: []QuantileAnchor{
			{Q: 0.0, Locations: 1},
			{Q: 0.40, Locations: 20},
			{Q: 0.75, Locations: 160},
			{Q: 0.90, Locations: 552},
			{Q: 0.905, Locations: 554},
			{Q: 0.99, Locations: 1437},
			{Q: 0.995, Locations: 1450},
			// The body tops out below the 3-beam boundary (2,595 at
			// 20:1) so only the five pinned peaks drive the 4-beam
			// binding constraint, as in the paper.
			{Q: 1.0, Locations: 2500},
		},
		Peaks: []PeakCell{
			{Locations: 5998, Anchor: geo.LatLng{Lat: 35.5, Lng: -106.3}}, // NM
			{Locations: 4700, Anchor: geo.LatLng{Lat: 34.8, Lng: -87.2}},  // AL
			{Locations: 4300, Anchor: geo.LatLng{Lat: 34.3, Lng: -89.9}},  // MS
			{Locations: 3800, Anchor: geo.LatLng{Lat: 36.9, Lng: -83.1}},  // KY
			{Locations: 3630, Anchor: geo.LatLng{Lat: 34.9, Lng: -111.5}}, // AZ
		},
	}
}

// Validate reports whether the configuration is internally coherent.
func (c GenConfig) Validate() error {
	if !c.Resolution.Valid() {
		return fmt.Errorf("bdc: invalid resolution %d", c.Resolution)
	}
	if c.TotalLocations <= 0 {
		return fmt.Errorf("bdc: total locations must be positive, got %d", c.TotalLocations)
	}
	if len(c.BodyAnchors) < 2 {
		return fmt.Errorf("bdc: need at least 2 body anchors")
	}
	for i := 1; i < len(c.BodyAnchors); i++ {
		if c.BodyAnchors[i].Q <= c.BodyAnchors[i-1].Q ||
			c.BodyAnchors[i].Locations < c.BodyAnchors[i-1].Locations {
			return fmt.Errorf("bdc: body anchors must increase at index %d", i)
		}
	}
	//lint:ignore floatcmp validates exact endpoints of hand-authored config anchors, not computed floats
	if c.BodyAnchors[0].Q != 0 || c.BodyAnchors[len(c.BodyAnchors)-1].Q != 1 {
		return fmt.Errorf("bdc: body anchors must span Q=0..1")
	}
	peakSum := 0
	for _, p := range c.Peaks {
		if !p.Anchor.Valid() {
			return fmt.Errorf("bdc: invalid peak anchor %v", p.Anchor)
		}
		peakSum += p.Locations
	}
	if peakSum >= c.TotalLocations {
		return fmt.Errorf("bdc: peaks (%d) exceed total (%d)", peakSum, c.TotalLocations)
	}
	return nil
}

// bodyQuantile evaluates the body quantile function at q in [0,1],
// interpolating log-linearly between anchors.
func (c GenConfig) bodyQuantile(q float64) float64 {
	a := c.BodyAnchors
	if q <= 0 {
		return a[0].Locations
	}
	if q >= 1 {
		return a[len(a)-1].Locations
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].Q > q }) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(a)-1 {
		i = len(a) - 2
	}
	lo, hi := a[i], a[i+1]
	t := (q - lo.Q) / (hi.Q - lo.Q)
	return math.Exp(math.Log(lo.Locations) + t*(math.Log(hi.Locations)-math.Log(lo.Locations)))
}

// bodyCounts returns per-cell counts (ascending) whose sum is exactly
// target, drawn from the anchored quantile function.
func (c GenConfig) bodyCounts(target int) []int {
	// The sum over N midpoint-quantile draws grows monotonically with N;
	// binary-search N, then trim the residual on mid-ranked cells.
	sumFor := func(n int) (int, []int) {
		counts := make([]int, n)
		s := 0
		for k := 0; k < n; k++ {
			v := int(math.Round(c.bodyQuantile((float64(k) + 0.5) / float64(n))))
			if v < 1 {
				v = 1
			}
			counts[k] = v
			s += v
		}
		return s, counts
	}
	lo, hi := 1, 16
	for {
		s, _ := sumFor(hi)
		if s >= target {
			break
		}
		lo = hi
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		s, _ := sumFor(mid)
		if s < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	sum, counts := sumFor(lo)
	// Trim the residual by decrementing (or incrementing) cells spread
	// across the ranks, preserving the anchored quantiles. The stride is
	// chosen co-prime with n so every cell is eventually visited, and a
	// full no-progress cycle terminates the loop (possible only when the
	// target is smaller than the smallest achievable sum).
	residual := sum - target
	n := len(counts)
	step := 7
	for n > 0 && gcd(step, n) != 1 {
		step++
	}
	idx := n / 4
	sinceProgress := 0
	for residual != 0 && n > 0 && sinceProgress < n {
		i := idx % n
		switch {
		case residual > 0 && counts[i] > 1:
			counts[i]--
			residual--
			sinceProgress = 0
		case residual < 0:
			counts[i]++
			residual++
			sinceProgress = 0
		default:
			sinceProgress++
		}
		idx += step
	}
	sort.Ints(counts)
	return counts
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GenerateCells synthesizes the national dataset at cell granularity:
// every cell's location count, county and center. This is the fast path
// the capacity model consumes; per-location records are produced by
// GenerateLocations.
//
// Generation fans out over cfg.Parallelism workers but is byte-identical
// to the serial path at every worker count (see GenConfig.Parallelism).
func GenerateCells(ctx context.Context, cfg GenConfig) (cells []demand.Cell, err error) {
	//lint:ignore detrand wall-clock feeds the generation timing metric only, never generated data
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "bdc.generate_cells")
	if span != nil {
		span.SetAttr(obs.Int("total_locations", int64(cfg.TotalLocations)),
			obs.Int("workers", int64(par.Workers(cfg.Parallelism))))
	}
	defer func() {
		metricGenSecs.ObserveSince(start)
		if err == nil {
			metricGenerations.Inc()
			metricCellsOut.Add(int64(len(cells)))
			span.SetAttr(obs.Int("cells", int64(len(cells))))
		}
		span.End()
	}()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pin the head cells first so body sampling can avoid them.
	used := make(map[hexgrid.CellID]bool)
	for _, p := range cfg.Peaks {
		id := hexgrid.LatLngToCell(p.Anchor, cfg.Resolution)
		if used[id] {
			return nil, fmt.Errorf("bdc: peak anchors collide in cell %v", id)
		}
		used[id] = true
		county, ok := usgeo.CountyAt(id.LatLng())
		if !ok {
			county, ok = usgeo.CountyAt(p.Anchor)
			if !ok {
				return nil, fmt.Errorf("bdc: peak anchor %v outside US frames", p.Anchor)
			}
		}
		cells = append(cells, demand.Cell{
			ID: id, Locations: p.Locations, CountyFIPS: county.FIPS, Center: id.LatLng(),
		})
	}

	peakSum := 0
	for _, p := range cfg.Peaks {
		peakSum += p.Locations
	}
	counts := cfg.bodyCounts(cfg.TotalLocations - peakSum)

	// Sample body cell sites state by state, proportional to rural
	// weight, rejecting duplicates and off-frame centers.
	sites, err := sampleSites(ctx, rng, cfg.Resolution, len(counts), used, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	if len(sites) < len(counts) {
		return nil, fmt.Errorf("bdc: sampled only %d of %d body cells", len(sites), len(counts))
	}
	// Counts are assigned to sites in shuffled order so geography and
	// density are independent.
	perm := rng.Perm(len(counts))
	for i, s := range sites {
		cells = append(cells, demand.Cell{
			ID:         s.id,
			Locations:  counts[perm[i]],
			CountyFIPS: s.countyFIPS,
			Center:     s.id.LatLng(),
		})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	return cells, nil
}

type site struct {
	id         hexgrid.CellID
	countyFIPS string
}

// sampleSites draws n distinct grid cells across the US, weighted by
// state rural weight. All RNG decisions (pool shuffles) run serially in
// state order; only the RNG-free county resolution fans out, collected
// in the serial emission order. A shortfall returns (nil, nil) so the
// caller can report it with context.
func sampleSites(ctx context.Context, rng *rand.Rand, res hexgrid.Resolution, n int, used map[hexgrid.CellID]bool, workers int) ([]site, error) {
	//lint:ignore detrand wall-clock feeds the site-sampling timing metric only, never generated data
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "bdc.sample_sites")
	if span != nil {
		span.SetAttr(obs.Int("sites", int64(n)))
	}
	defer func() {
		metricSampleSecs.ObserveSince(start)
		span.End()
	}()
	states := usgeo.States()
	totalWeight := usgeo.TotalRuralWeight()
	byState, err := usCells(ctx, res, workers)
	if err != nil {
		return nil, err
	}

	// Shuffled per-state pools, minus already-used cells.
	pools := make([][]hexgrid.CellID, len(states))
	totalCapacity := 0
	for i, s := range states {
		pool := make([]hexgrid.CellID, 0, len(byState[s.Abbr]))
		for _, id := range byState[s.Abbr] {
			if !used[id] {
				pool = append(pool, id)
			}
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		pools[i] = pool
		totalCapacity += len(pool)
	}
	if totalCapacity < n {
		return nil, nil // caller reports the shortfall
	}

	// Per-state targets proportional to rural weight, capped by pool
	// size, with leftovers redistributed weight-first over states with
	// spare cells.
	targets := make([]int, len(states))
	assigned := 0
	for i, s := range states {
		t := int(math.Floor(float64(n) * s.RuralWeight / totalWeight))
		if t > len(pools[i]) {
			t = len(pools[i])
		}
		targets[i] = t
		assigned += t
	}
	for assigned < n {
		progressed := false
		for i, s := range states {
			if assigned >= n {
				break
			}
			spare := len(pools[i]) - targets[i]
			if spare <= 0 {
				continue
			}
			add := int(math.Ceil(float64(n-assigned) * s.RuralWeight / totalWeight))
			if add > spare {
				add = spare
			}
			if add > n-assigned {
				add = n - assigned
			}
			targets[i] += add
			assigned += add
			progressed = progressed || add > 0
		}
		if !progressed {
			break
		}
	}

	// Flatten the selected cells in the serial emission order (state by
	// state), then resolve counties — the expensive, RNG-free step — in
	// parallel, each result landing in its emission slot.
	type pick struct {
		id    hexgrid.CellID
		state int
	}
	picks := make([]pick, 0, n)
	counties := make([][]usgeo.County, len(states))
	for i, s := range states {
		if targets[i] > 0 {
			counties[i] = usgeo.Counties(s)
		}
		for _, id := range pools[i][:targets[i]] {
			picks = append(picks, pick{id: id, state: i})
		}
	}
	return par.Map(ctx, workers, len(picks), func(k int) (site, error) {
		p := picks[k]
		center := p.id.LatLng()
		county, ok := countyFor(counties[p.state], center)
		if !ok {
			county = nearestCounty(counties[p.state], center)
		}
		return site{id: p.id, countyFIPS: county.FIPS}, nil
	})
}

// usCells enumerates every grid cell whose center falls inside a US
// state frame, bucketed by state in deterministic order. The
// enumeration walks the full global grid once and is cached per
// resolution.
var (
	usCellsMu    sync.Mutex
	usCellsCache = make(map[hexgrid.Resolution]map[string][]hexgrid.CellID)
)

func usCells(ctx context.Context, res hexgrid.Resolution, workers int) (map[string][]hexgrid.CellID, error) {
	usCellsMu.Lock()
	defer usCellsMu.Unlock()
	if m, ok := usCellsCache[res]; ok {
		metricGridCacheHit.Inc()
		return m, nil
	}
	//lint:ignore detrand wall-clock feeds the grid-cache timing metric only, never generated data
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "bdc.us_cells")
	defer func() {
		metricGridSecs.ObserveSince(start)
		span.End()
	}()
	// Enumerate the 20 icosahedron faces concurrently; concatenating the
	// face shards in face order reproduces hexgrid.ForEachCell's exact
	// per-state bucket ordering.
	shards, err := par.Map(ctx, workers, 20, func(f int) (map[string][]hexgrid.CellID, error) {
		shard := make(map[string][]hexgrid.CellID)
		hexgrid.ForEachCellOnFace(res, f, func(id hexgrid.CellID) {
			center := id.LatLng()
			// Quick reject: the US (including the trimmed Alaska frame
			// and Hawaii) lies inside this box.
			if center.Lat < 18 || center.Lat > 67 || center.Lng < -169 || center.Lng > -66 {
				return
			}
			if s, ok := usgeo.StateAt(center); ok {
				shard[s.Abbr] = append(shard[s.Abbr], id)
			}
		})
		return shard, nil
	})
	if err != nil {
		return nil, err
	}
	m := make(map[string][]hexgrid.CellID)
	for _, shard := range shards {
		for abbr, ids := range shard {
			m[abbr] = append(m[abbr], ids...)
		}
	}
	usCellsCache[res] = m
	return m, nil
}

func countyFor(counties []usgeo.County, p geo.LatLng) (usgeo.County, bool) {
	for _, c := range counties {
		if c.Contains(p) {
			return c, true
		}
	}
	return usgeo.County{}, false
}

// nearestCounty returns the county whose center is closest to p; used
// when a cell center falls just outside its state's county tiling.
func nearestCounty(counties []usgeo.County, p geo.LatLng) usgeo.County {
	best := counties[0]
	bestD := math.Inf(1)
	for _, c := range counties {
		d := geo.DistanceKm(p, c.Center())
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// GenerateLocations expands cells into individual location records.
// scale in (0, 1] shrinks every cell's location count proportionally
// (minimum 1) so tests can exercise the per-location path cheaply.
// Locations are jittered within 30% of the cell radius of the cell
// center, which keeps every location inside its cell's Voronoi region.
func GenerateLocations(cfg GenConfig, cells []demand.Cell, scale float64) ([]demand.Location, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("bdc: scale must be in (0,1], got %v", scale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x10c5))
	spacingKm := cellSpacingKm(cfg.Resolution)
	var out []demand.Location
	var nextID uint64 = 1
	for _, c := range cells {
		n := int(math.Ceil(float64(c.Locations) * scale))
		if n < 1 {
			n = 1
		}
		state := ""
		if st, ok := usgeo.StateAt(c.Center); ok {
			state = st.Abbr
		}
		for k := 0; k < n; k++ {
			r := 0.3 * spacingKm * math.Sqrt(rng.Float64())
			brg := rng.Float64() * 360
			pos := geo.Destination(c.Center, brg, r)
			down, up, tech := randomLegacyService(rng)
			out = append(out, demand.Location{
				ID:          nextID,
				Pos:         pos,
				CountyFIPS:  c.CountyFIPS,
				StateAbbr:   state,
				MaxDownMbps: down,
				MaxUpMbps:   up,
				Technology:  tech,
			})
			nextID++
		}
	}
	return out, nil
}

// cellSpacingKm approximates the distance between adjacent cell centers
// at a resolution.
func cellSpacingKm(res hexgrid.Resolution) float64 {
	// Hexagon of area A has center spacing sqrt(2A/sqrt(3)).
	a := res.AvgCellAreaKm2()
	return math.Sqrt(2 * a / math.Sqrt(3))
}

// randomLegacyService draws a plausible sub-benchmark service offering:
// every generated location is un(der)served by construction.
func randomLegacyService(rng *rand.Rand) (down, up float64, tech string) {
	round2 := func(x float64) float64 { return math.Floor(x*100) / 100 }
	switch p := rng.Float64(); {
	case p < 0.30:
		return 0, 0, "none"
	case p < 0.55:
		return round2(10 + rng.Float64()*15), round2(1 + rng.Float64()*2), "dsl"
	case p < 0.80:
		return round2(25 + rng.Float64()*50), round2(3 + rng.Float64()*7), "fixed-wireless"
	case p < 0.95:
		return round2(100 + rng.Float64()*100), round2(10 + rng.Float64()*8), "cable" // underserved on upload
	default:
		return 25, 3, "satellite"
	}
}
