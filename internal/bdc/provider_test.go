package bdc

import (
	"context"

	"bytes"
	"strings"
	"testing"

	"leodivide/internal/demand"
)

func testLocations(t *testing.T) []demand.Location {
	t.Helper()
	cfg := smallConfig()
	cfg.TotalLocations = 3000
	cfg.Peaks = cfg.Peaks[:1]
	cfg.Peaks[0].Locations = 200
	cells, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := GenerateLocations(cfg, cells, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return locs
}

func TestGenerateProviderRecords(t *testing.T) {
	locs := testLocations(t)
	records := GenerateProviderRecords(1, locs)
	if len(records) < len(locs) {
		t.Fatalf("%d records for %d locations", len(records), len(locs))
	}
	// Deterministic for the same seed.
	again := GenerateProviderRecords(1, locs)
	if len(again) != len(records) {
		t.Fatal("provider generation not deterministic")
	}
	for i := range records {
		if records[i] != again[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	// Different seeds differ.
	other := GenerateProviderRecords(2, locs)
	same := 0
	for i := range records {
		if i < len(other) && records[i] == other[i] {
			same++
		}
	}
	if same == len(records) {
		t.Error("different seeds produced identical records")
	}
}

func TestBestServiceRoundTrip(t *testing.T) {
	locs := testLocations(t)
	records := GenerateProviderRecords(1, locs)
	// Reducing claims to best service must reproduce each location's
	// recorded maximum (the generator's invariant).
	restored := ApplyBestService(locs, records)
	for i := range locs {
		if restored[i].MaxDownMbps != locs[i].MaxDownMbps ||
			restored[i].MaxUpMbps != locs[i].MaxUpMbps {
			t.Fatalf("location %d: best service %v/%v, want %v/%v",
				locs[i].ID, restored[i].MaxDownMbps, restored[i].MaxUpMbps,
				locs[i].MaxDownMbps, locs[i].MaxUpMbps)
		}
	}
}

func TestBestServicePicksMax(t *testing.T) {
	records := []ProviderRecord{
		{LocationID: 1, ProviderID: 10, MaxDownMbps: 25, MaxUpMbps: 3},
		{LocationID: 1, ProviderID: 11, MaxDownMbps: 100, MaxUpMbps: 10},
		{LocationID: 1, ProviderID: 12, MaxDownMbps: 100, MaxUpMbps: 20},
		{LocationID: 2, ProviderID: 10, MaxDownMbps: 10, MaxUpMbps: 1},
	}
	best := BestService(records)
	if best[1].ProviderID != 12 {
		t.Errorf("location 1 best = provider %d, want 12 (upload tiebreak)", best[1].ProviderID)
	}
	if best[2].MaxDownMbps != 10 {
		t.Errorf("location 2 best = %v", best[2].MaxDownMbps)
	}
}

func TestProviderCSVRoundTrip(t *testing.T) {
	locs := testLocations(t)[:200]
	records := GenerateProviderRecords(1, locs)
	var buf bytes.Buffer
	if err := WriteProviderCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProviderCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip %d -> %d", len(records), len(back))
	}
	for i := range records {
		if records[i] != back[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, records[i], back[i])
		}
	}
}

func TestReadProviderCSVErrors(t *testing.T) {
	header := strings.Join(providerCSVHeader, ",")
	cases := []string{
		"",
		"wrong,header,entirely,x,y,z,w",
		header + "\nx,1,ISP,dsl,10,1,true",
		header + "\n1,x,ISP,dsl,10,1,true",
		header + "\n1,1,ISP,dsl,-5,1,true",
		header + "\n1,1,ISP,dsl,10,1,maybe",
	}
	for i, in := range cases {
		if _, err := ReadProviderCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSummarizeProviders(t *testing.T) {
	records := []ProviderRecord{
		{LocationID: 1, ProviderID: 10, ProviderName: "A", MaxDownMbps: 100, MaxUpMbps: 20},
		{LocationID: 2, ProviderID: 10, ProviderName: "A", MaxDownMbps: 10, MaxUpMbps: 1},
		{LocationID: 3, ProviderID: 20, ProviderName: "B", MaxDownMbps: 500, MaxUpMbps: 50},
	}
	stats := SummarizeProviders(records)
	if len(stats) != 2 {
		t.Fatalf("got %d providers", len(stats))
	}
	if stats[0].ProviderID != 10 || stats[0].Locations != 2 {
		t.Errorf("top provider = %+v", stats[0])
	}
	if stats[0].ReliableShare != 0.5 {
		t.Errorf("provider A reliable share = %v, want 0.5", stats[0].ReliableShare)
	}
	if stats[1].ReliableShare != 1.0 {
		t.Errorf("provider B reliable share = %v, want 1", stats[1].ReliableShare)
	}
}

func TestGenerateLocationsAllUnderserved(t *testing.T) {
	// The synthetic map contains only un(der)served locations; the
	// best-service reduction must preserve that.
	locs := testLocations(t)
	records := GenerateProviderRecords(1, locs)
	for id, r := range BestService(records) {
		if demand.ReliablyServed(r.MaxDownMbps, r.MaxUpMbps) {
			t.Fatalf("location %d claims reliable service (%v/%v)", id, r.MaxDownMbps, r.MaxUpMbps)
		}
	}
}
