package bdc

import (
	"context"

	"bytes"
	"math"
	"strings"
	"testing"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

// smallConfig is a cheap configuration for tests exercising mechanics
// rather than calibration.
func smallConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.TotalLocations = 40000
	cfg.Peaks = []PeakCell{
		{Locations: 4000, Anchor: geo.LatLng{Lat: 35.5, Lng: -106.3}},
		{Locations: 3600, Anchor: geo.LatLng{Lat: 34.3, Lng: -89.9}},
	}
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultGenConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.Resolution = -1 },
		func(c *GenConfig) { c.TotalLocations = 0 },
		func(c *GenConfig) { c.BodyAnchors = c.BodyAnchors[:1] },
		func(c *GenConfig) { c.BodyAnchors[0].Q = 0.5 },
		func(c *GenConfig) { c.BodyAnchors[2].Q = c.BodyAnchors[1].Q },
		func(c *GenConfig) { c.TotalLocations = 10000 }, // below peak sum
		func(c *GenConfig) { c.Peaks[0].Anchor.Lat = 200 },
	}
	for i, mut := range mutations {
		cfg := DefaultGenConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestBodyQuantileAnchored(t *testing.T) {
	cfg := DefaultGenConfig()
	for _, a := range cfg.BodyAnchors {
		if got := cfg.bodyQuantile(a.Q); math.Abs(got-a.Locations)/a.Locations > 1e-9 {
			t.Errorf("bodyQuantile(%v) = %v, want %v", a.Q, got, a.Locations)
		}
	}
	if got := cfg.bodyQuantile(-1); got != 1 {
		t.Errorf("bodyQuantile(-1) = %v", got)
	}
}

func TestBodyCountsExactTotal(t *testing.T) {
	cfg := smallConfig()
	for _, target := range []int{1000, 33333, 90001} {
		counts := cfg.bodyCounts(target)
		sum := 0
		for i, c := range counts {
			if c < 1 {
				t.Fatalf("count %d < 1", c)
			}
			if i > 0 && counts[i] < counts[i-1] {
				t.Fatal("counts not ascending")
			}
			sum += c
		}
		if sum != target {
			t.Errorf("bodyCounts(%d) sums to %d", target, sum)
		}
	}
}

func TestGenerateCellsCalibration(t *testing.T) {
	cfg := DefaultGenConfig()
	cells, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := demand.NewDistribution(cells)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's hard anchors, exactly.
	if got := dist.TotalLocations(); got != 4672000 {
		t.Errorf("total = %d, want 4672000", got)
	}
	if got := dist.Peak().Locations; got != 5998 {
		t.Errorf("peak = %d, want 5998", got)
	}
	if got := dist.CellsAbove(3460); got != 5 {
		t.Errorf("cells above 3460 = %d, want 5", got)
	}
	if got := dist.LocationsInCellsAbove(3460); got != 22428 {
		t.Errorf("locations in dense cells = %d, want 22428", got)
	}
	if got := dist.ExcessAbove(3460); got != 5128 {
		t.Errorf("excess = %d, want 5128", got)
	}
	// The published percentiles, within nearest-rank slack.
	if got := dist.Quantile(0.90); got < 548 || got > 556 {
		t.Errorf("p90 = %d, want ≈552", got)
	}
	if got := dist.Quantile(0.99); got < 1420 || got > 1455 {
		t.Errorf("p99 = %d, want ≈1437", got)
	}
	// Every cell has a county and valid center.
	for _, c := range cells[:100] {
		if len(c.CountyFIPS) != 5 {
			t.Errorf("cell %v county %q", c.ID, c.CountyFIPS)
		}
		if !c.Center.Valid() {
			t.Errorf("cell %v invalid center", c.ID)
		}
	}
}

func TestGenerateCellsDeterminism(t *testing.T) {
	cfg := smallConfig()
	a, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 2
	c, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if i < len(c) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateCellsDistinctIDs(t *testing.T) {
	cells, err := GenerateCells(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[hexgrid.CellID]bool, len(cells))
	for _, c := range cells {
		if seen[c.ID] {
			t.Fatalf("duplicate cell %v", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestGenerateLocationsStayInCell(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalLocations = 5000
	cfg.Peaks = cfg.Peaks[:1]
	cfg.Peaks[0].Locations = 300
	cells, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := GenerateLocations(cfg, cells, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 5000 {
		t.Fatalf("generated %d locations, want 5000", len(locs))
	}
	// Aggregating the locations back must reproduce the per-cell counts
	// exactly (every location is underserved and jitter stays within
	// the Voronoi cell).
	agg, err := demand.Aggregate(locs, cfg.Resolution)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[hexgrid.CellID]int, len(cells))
	for _, c := range cells {
		want[c.ID] = c.Locations
	}
	if len(agg) != len(cells) {
		t.Fatalf("aggregation produced %d cells, want %d", len(agg), len(cells))
	}
	for _, c := range agg {
		if want[c.ID] != c.Locations {
			t.Errorf("cell %v: aggregated %d, want %d", c.ID, c.Locations, want[c.ID])
		}
	}
	// Every generated location is un(der)served.
	for _, l := range locs {
		if !l.Underserved() {
			t.Fatalf("location %d is served (%v/%v)", l.ID, l.MaxDownMbps, l.MaxUpMbps)
		}
	}
}

func TestGenerateLocationsScale(t *testing.T) {
	cfg := smallConfig()
	cells, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := GenerateLocations(cfg, cells, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled counts round up per cell, so between 1% and ~(1% + one per
	// cell).
	if len(locs) < cfg.TotalLocations/100 || len(locs) > cfg.TotalLocations/100+len(cells) {
		t.Errorf("scaled to %d locations from %d", len(locs), cfg.TotalLocations)
	}
	if _, err := GenerateLocations(cfg, cells, 0); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := GenerateLocations(cfg, cells, 1.5); err == nil {
		t.Error("scale >1 should fail")
	}
}

func TestLocationsCSVRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cells, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := GenerateLocations(cfg, cells[:50], 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLocationsCSV(&buf, locs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLocationsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(locs) {
		t.Fatalf("round trip %d -> %d records", len(locs), len(back))
	}
	for i := range locs {
		if back[i].ID != locs[i].ID || back[i].CountyFIPS != locs[i].CountyFIPS ||
			back[i].Technology != locs[i].Technology {
			t.Fatalf("record %d differs: %+v vs %+v", i, locs[i], back[i])
		}
		if geo.DistanceKm(back[i].Pos, locs[i].Pos) > 0.001 {
			t.Fatalf("record %d position drifted", i)
		}
	}
	if err := Validate(back); err != nil {
		t.Errorf("round-tripped dataset invalid: %v", err)
	}
}

func TestCellsCSVRoundTrip(t *testing.T) {
	cells, err := GenerateCells(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCellsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cells) {
		t.Fatalf("round trip %d -> %d cells", len(cells), len(back))
	}
	for i := range cells {
		if back[i].ID != cells[i].ID || back[i].Locations != cells[i].Locations ||
			back[i].CountyFIPS != cells[i].CountyFIPS {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestReadLocationsCSVErrors(t *testing.T) {
	cases := []string{
		"",           // no header
		"bad,header", // wrong header
		"location_id,latitude,longitude,state,county_fips,max_download_mbps,max_upload_mbps,technology\nx,1,2,TX,48001,10,1,dsl",    // bad id
		"location_id,latitude,longitude,state,county_fips,max_download_mbps,max_upload_mbps,technology\n1,999,2,TX,48001,10,1,dsl",  // bad lat
		"location_id,latitude,longitude,state,county_fips,max_download_mbps,max_upload_mbps,technology\n1,30,-97,TX,4800,10,1,dsl",  // bad fips
		"location_id,latitude,longitude,state,county_fips,max_download_mbps,max_upload_mbps,technology\n1,30,-97,TX,48001,-5,1,dsl", // bad speed
	}
	for i, in := range cases {
		if _, err := ReadLocationsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	locs := []demand.Location{
		{ID: 1, Pos: geo.LatLng{Lat: 30, Lng: -97}},
		{ID: 1, Pos: geo.LatLng{Lat: 31, Lng: -97}},
	}
	if err := Validate(locs); err == nil {
		t.Error("duplicate IDs should fail validation")
	}
	bad := []demand.Location{{ID: 1, Pos: geo.LatLng{Lat: 300, Lng: 0}}}
	if err := Validate(bad); err == nil {
		t.Error("invalid coordinate should fail validation")
	}
}

func TestPeaksPlacedAtAnchors(t *testing.T) {
	cfg := DefaultGenConfig()
	cells, err := GenerateCells(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[hexgrid.CellID]demand.Cell, len(cells))
	for _, c := range cells {
		byID[c.ID] = c
	}
	for _, p := range cfg.Peaks {
		id := hexgrid.LatLngToCell(p.Anchor, cfg.Resolution)
		got, ok := byID[id]
		if !ok {
			t.Errorf("peak anchor %v has no cell", p.Anchor)
			continue
		}
		if got.Locations != p.Locations {
			t.Errorf("peak cell %v has %d locations, want %d", id, got.Locations, p.Locations)
		}
	}
}

// Property: generated datasets honor the configured total and peaks at
// any scale.
func TestGeneratorInvariantProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("generator property in -short mode")
	}
	for _, total := range []int{25000, 60000, 150000} {
		for _, seed := range []int64{1, 9} {
			cfg := DefaultGenConfig()
			cfg.Seed = seed
			cfg.TotalLocations = total
			ratio := float64(total) / 4672000
			for i := range cfg.Peaks {
				cfg.Peaks[i].Locations = int(float64(cfg.Peaks[i].Locations) * ratio)
				if cfg.Peaks[i].Locations < 1 {
					cfg.Peaks[i].Locations = 1
				}
			}
			cells, err := GenerateCells(context.Background(), cfg)
			if err != nil {
				t.Fatalf("total=%d seed=%d: %v", total, seed, err)
			}
			sum := 0
			ids := make(map[hexgrid.CellID]bool, len(cells))
			for _, c := range cells {
				if c.Locations < 1 {
					t.Fatalf("total=%d: empty cell", total)
				}
				if ids[c.ID] {
					t.Fatalf("total=%d: duplicate cell", total)
				}
				ids[c.ID] = true
				sum += c.Locations
			}
			if sum != total {
				t.Fatalf("total=%d seed=%d: generated %d", total, seed, sum)
			}
		}
	}
}
