package bdc

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"leodivide/internal/demand"
)

// The real Broadband Data Collection is provider-granular: each ISP
// files an availability record per location it claims to serve, and the
// National Broadband Map's per-location "max speed" is the best of
// those claims. This file models that layer: provider records, the
// dedup-to-best-service reduction, and the provider-level CSV format —
// the data handling a consumer of real BDC extracts must implement.

// ProviderRecord is one ISP's availability claim at one location.
type ProviderRecord struct {
	// LocationID ties the claim to a serviceable location.
	LocationID uint64
	// ProviderID is the FCC provider identifier.
	ProviderID int
	// ProviderName is the ISP's name.
	ProviderName string
	// Technology is the claimed access technology.
	Technology string
	// MaxDownMbps and MaxUpMbps are the claimed speeds.
	MaxDownMbps, MaxUpMbps float64
	// LowLatency reports the FCC low-latency flag (≤100 ms).
	LowLatency bool
}

// providers is the synthetic ISP roster used by the generator.
var providerRoster = []struct {
	id   int
	name string
	tech string
}{
	{130077, "Windstream", "dsl"},
	{130228, "CenturyLink", "dsl"},
	{130317, "Frontier", "dsl"},
	{290111, "Rise Broadband", "fixed-wireless"},
	{290245, "Nextlink", "fixed-wireless"},
	{170091, "Mediacom", "cable"},
	{170002, "Sparklight", "cable"},
	{460001, "HughesNet", "satellite"},
	{460002, "Viasat", "satellite"},
}

// GenerateProviderRecords expands locations into 1-3 provider claims
// each, such that the per-location best service equals the location's
// recorded maximum. Deterministic for a given seed.
func GenerateProviderRecords(seed int64, locs []demand.Location) []ProviderRecord {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	var out []ProviderRecord
	for _, l := range locs {
		n := 1 + rng.Intn(3)
		// The first record carries the location's best service.
		out = append(out, providerClaim(rng, l, l.MaxDownMbps, l.MaxUpMbps, l.Technology))
		for k := 1; k < n; k++ {
			// Additional claims are strictly worse. Speeds are rounded
			// to the 0.01 Mbps granularity of the filing format.
			down := math.Floor(l.MaxDownMbps*(0.2+0.6*rng.Float64())*100) / 100
			up := math.Floor(l.MaxUpMbps*(0.2+0.6*rng.Float64())*100) / 100
			r := providerRoster[rng.Intn(len(providerRoster))]
			out = append(out, ProviderRecord{
				LocationID:   l.ID,
				ProviderID:   r.id,
				ProviderName: r.name,
				Technology:   r.tech,
				MaxDownMbps:  down,
				MaxUpMbps:    up,
				LowLatency:   r.tech != "satellite",
			})
		}
	}
	return out
}

func providerClaim(rng *rand.Rand, l demand.Location, down, up float64, tech string) ProviderRecord {
	// Pick a roster provider matching the location's technology when
	// possible.
	matches := make([]int, 0, len(providerRoster))
	for i, r := range providerRoster {
		if r.tech == tech {
			matches = append(matches, i)
		}
	}
	idx := rng.Intn(len(providerRoster))
	if len(matches) > 0 {
		idx = matches[rng.Intn(len(matches))]
	}
	r := providerRoster[idx]
	return ProviderRecord{
		LocationID:   l.ID,
		ProviderID:   r.id,
		ProviderName: r.name,
		Technology:   tech,
		MaxDownMbps:  down,
		MaxUpMbps:    up,
		LowLatency:   tech != "satellite",
	}
}

// BestService reduces provider records to the per-location maximum
// claimed service, mirroring how the National Broadband Map derives
// location speeds from provider filings. Records are grouped by
// LocationID; the best download (ties broken by upload) wins.
func BestService(records []ProviderRecord) map[uint64]ProviderRecord {
	best := make(map[uint64]ProviderRecord)
	for _, r := range records {
		cur, ok := best[r.LocationID]
		if !ok || r.MaxDownMbps > cur.MaxDownMbps ||
			//lint:ignore floatcmp tie-break on catalog speeds, which are exact decimal constants copied through, never arithmetic results
			(r.MaxDownMbps == cur.MaxDownMbps && r.MaxUpMbps > cur.MaxUpMbps) {
			best[r.LocationID] = r
		}
	}
	return best
}

// ApplyBestService overwrites each location's recorded maximum service
// with the best provider claim, returning the updated copy. Locations
// without any claim keep their recorded values.
func ApplyBestService(locs []demand.Location, records []ProviderRecord) []demand.Location {
	best := BestService(records)
	out := make([]demand.Location, len(locs))
	copy(out, locs)
	for i := range out {
		if b, ok := best[out[i].ID]; ok {
			out[i].MaxDownMbps = b.MaxDownMbps
			out[i].MaxUpMbps = b.MaxUpMbps
			out[i].Technology = b.Technology
		}
	}
	return out
}

var providerCSVHeader = []string{
	"location_id", "provider_id", "provider_name", "technology",
	"max_download_mbps", "max_upload_mbps", "low_latency",
}

// WriteProviderCSV writes provider records in the BDC availability
// schema.
func WriteProviderCSV(w io.Writer, records []ProviderRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(providerCSVHeader); err != nil {
		return fmt.Errorf("bdc: writing provider header: %w", err)
	}
	for _, r := range records {
		rec := []string{
			strconv.FormatUint(r.LocationID, 10),
			strconv.Itoa(r.ProviderID),
			r.ProviderName,
			r.Technology,
			strconv.FormatFloat(r.MaxDownMbps, 'f', 2, 64),
			strconv.FormatFloat(r.MaxUpMbps, 'f', 2, 64),
			strconv.FormatBool(r.LowLatency),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bdc: writing provider record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadProviderCSV parses provider availability records.
func ReadProviderCSV(r io.Reader) ([]ProviderRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(providerCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("bdc: reading provider header: %w", err)
	}
	for i, h := range providerCSVHeader {
		if header[i] != h {
			return nil, fmt.Errorf("bdc: provider header field %d is %q, want %q", i, header[i], h)
		}
	}
	var out []ProviderRecord
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: %w", line, err)
		}
		locID, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: bad location_id %q", line, rec[0])
		}
		provID, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: bad provider_id %q", line, rec[1])
		}
		down, err1 := strconv.ParseFloat(rec[4], 64)
		up, err2 := strconv.ParseFloat(rec[5], 64)
		if err1 != nil || err2 != nil || down < 0 || up < 0 {
			return nil, fmt.Errorf("bdc: line %d: bad speeds", line)
		}
		lowLat, err := strconv.ParseBool(rec[6])
		if err != nil {
			return nil, fmt.Errorf("bdc: line %d: bad low_latency %q", line, rec[6])
		}
		out = append(out, ProviderRecord{
			LocationID:   locID,
			ProviderID:   provID,
			ProviderName: rec[2],
			Technology:   rec[3],
			MaxDownMbps:  down,
			MaxUpMbps:    up,
			LowLatency:   lowLat,
		})
	}
	return out, nil
}

// ProviderStats summarizes claims per provider: locations claimed and
// the share meeting the reliable-broadband benchmark.
type ProviderStats struct {
	ProviderID    int
	ProviderName  string
	Locations     int
	ReliableShare float64
}

// SummarizeProviders aggregates records per provider, sorted by claimed
// location count descending.
func SummarizeProviders(records []ProviderRecord) []ProviderStats {
	type agg struct {
		name     string
		n        int
		reliable int
	}
	byID := make(map[int]*agg)
	for _, r := range records {
		a := byID[r.ProviderID]
		if a == nil {
			a = &agg{name: r.ProviderName}
			byID[r.ProviderID] = a
		}
		a.n++
		if demand.ReliablyServed(r.MaxDownMbps, r.MaxUpMbps) {
			a.reliable++
		}
	}
	out := make([]ProviderStats, 0, len(byID))
	for id, a := range byID {
		out = append(out, ProviderStats{
			ProviderID:    id,
			ProviderName:  a.name,
			Locations:     a.n,
			ReliableShare: float64(a.reliable) / float64(a.n),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Locations != out[j].Locations {
			return out[i].Locations > out[j].Locations
		}
		return out[i].ProviderID < out[j].ProviderID
	})
	return out
}
