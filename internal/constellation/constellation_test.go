package constellation

import (
	"math"
	"testing"

	"leodivide/internal/geo"
	"leodivide/internal/orbit"
)

func TestFleetTotals(t *testing.T) {
	gen1 := StarlinkGen1()
	if err := gen1.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := gen1.TotalSatellites(); got != 4408 {
		t.Errorf("Gen1 total = %d, want 4408", got)
	}
	gen2 := StarlinkGen2()
	if err := gen2.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := gen2.TotalSatellites(); got != 29988 {
		t.Errorf("Gen2 total = %d, want 29988", got)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := (Fleet{Name: "empty"}).Validate(); err == nil {
		t.Error("empty fleet should fail validation")
	}
	bad := Fleet{Name: "bad", Shells: []orbit.Walker{{Total: 7, Planes: 3, AltitudeKm: 550, InclinationDeg: 53}}}
	if err := bad.Validate(); err == nil {
		t.Error("bad shell should fail validation")
	}
}

func TestDensityCombination(t *testing.T) {
	// A fleet of one shell has exactly the shell's density.
	shell := orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 1584, Planes: 72, Phasing: 39}
	single := Fleet{Name: "one", Shells: []orbit.Walker{shell}}
	want := float64(shell.Total) * shell.DensityFactor(40) / geo.EarthAreaKm2
	if got := single.DensityPerKm2(40); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("single-shell density = %v, want %v", got, want)
	}
	// Two identical shells double it.
	double := Fleet{Name: "two", Shells: []orbit.Walker{shell, shell}}
	if got := double.DensityPerKm2(40); math.Abs(got-2*want)/want > 1e-12 {
		t.Errorf("double-shell density = %v, want %v", got, 2*want)
	}
}

func TestDensityRespectsInclinationBands(t *testing.T) {
	// A 38° shell contributes nothing at 45° latitude.
	low := orbit.Walker{AltitudeKm: 350, InclinationDeg: 38, Total: 5280, Planes: 48, Phasing: 1}
	high := orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 1584, Planes: 72, Phasing: 39}
	fleet := Fleet{Name: "mix", Shells: []orbit.Walker{low, high}}
	at45 := fleet.DensityPerKm2(45)
	onlyHigh := Fleet{Name: "high", Shells: []orbit.Walker{high}}.DensityPerKm2(45)
	if math.Abs(at45-onlyHigh)/onlyHigh > 1e-12 {
		t.Errorf("38-degree shell leaked density to 45N: %v vs %v", at45, onlyHigh)
	}
	// At 30° both contribute.
	if fleet.DensityPerKm2(30) <= onlyHigh {
		t.Error("low shell should add density at 30N")
	}
}

func TestGen2DensityAdvantageAtLowLatitudes(t *testing.T) {
	// Gen2's 33°/38°/43°/46° shells concentrate density at low
	// latitudes; the per-satellite density advantage over Gen1 should
	// be larger at 35° than at 50°.
	gen1, gen2 := StarlinkGen1(), StarlinkGen2()
	adv := func(lat float64) float64 {
		return (gen2.DensityPerKm2(lat) / float64(gen2.TotalSatellites())) /
			(gen1.DensityPerKm2(lat) / float64(gen1.TotalSatellites()))
	}
	if adv(35) <= adv(50) {
		t.Errorf("Gen2 low-latitude focus not visible: adv(35)=%v adv(50)=%v", adv(35), adv(50))
	}
}

func TestEquivalentSingleShell(t *testing.T) {
	shell := orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 1584, Planes: 72, Phasing: 39}
	fleet := Fleet{Name: "self", Shells: []orbit.Walker{shell}}
	ref := shell
	ref.Total = 1
	// A fleet measured against its own shell type equals its own count.
	if got := fleet.EquivalentSingleShellSatellites(ref, 40); got != 1584 {
		t.Errorf("self-equivalent = %d, want 1584", got)
	}
}

func TestDensityProfile(t *testing.T) {
	profile := StarlinkGen1().DensityProfile(60, 10)
	if len(profile) != 7 {
		t.Fatalf("profile has %d points", len(profile))
	}
	for _, p := range profile {
		if p.Enhancement < 0 {
			t.Errorf("negative enhancement at %v", p.LatDeg)
		}
	}
	// Mid-latitudes denser than the equator for the 53-dominated Gen1.
	if profile[4].Enhancement <= profile[0].Enhancement {
		t.Error("Gen1 should be denser at 40N than at the equator")
	}
}

func TestOrbitsExpansion(t *testing.T) {
	orbits, err := StarlinkGen1().Orbits()
	if err != nil {
		t.Fatal(err)
	}
	if len(orbits) != 4408 {
		t.Errorf("expanded %d orbits, want 4408", len(orbits))
	}
}

func TestShellsByDensityAt(t *testing.T) {
	gen2 := StarlinkGen2()
	order := gen2.ShellsByDensityAt(50)
	// At 50°N the 53° shells must dominate; the 33° shell contributes
	// nothing and must sort last among covered shells.
	if order[0].InclinationDeg != 53 && order[0].InclinationDeg != 96.9 {
		t.Errorf("densest shell at 50N has inclination %v", order[0].InclinationDeg)
	}
	last := order[len(order)-1]
	if shellCovers(last, 50) && last.InclinationDeg > 50 {
		t.Errorf("unexpected last shell %+v", last)
	}
}

// Each shell's density, integrated two degrees inside its inclination
// band (away from the capped edge singularity), matches the analytic
// in-band mass (2/π)·asin(sin(i−2°)/sin(i)) of its satellite count.
func TestFleetDensityNormalization(t *testing.T) {
	for _, fleet := range []Fleet{StarlinkGen1(), StarlinkGen2()} {
		for _, shell := range fleet.Shells {
			inc := shell.InclinationDeg
			if inc > 90 {
				inc = 180 - inc
			}
			edge := inc - 2
			if edge <= 5 {
				continue
			}
			single := Fleet{Name: "one", Shells: []orbit.Walker{shell}}
			const steps = 3000
			total := 0.0
			for i := 0; i < steps; i++ {
				lat := -edge + 2*edge*(float64(i)+0.5)/steps
				half := edge / steps
				bandArea := geo.RectArea(lat-half, lat+half, -180, 180)
				total += single.DensityPerKm2(lat) * bandArea
			}
			si := math.Sin(geo.Radians(inc))
			want := float64(shell.Total) * 2 / math.Pi *
				math.Asin(math.Sin(geo.Radians(edge))/si)
			if ratio := total / want; ratio < 0.97 || ratio > 1.03 {
				t.Errorf("%s shell %v°: in-band density integrates to %.0f, want ≈%.0f",
					fleet.Name, shell.InclinationDeg, total, want)
			}
		}
	}
}
