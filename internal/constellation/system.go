package constellation

// A System promotes a Fleet from a name+shells pair to a full
// declarative constellation spec: the shell set, the downlink band
// table, the per-cell beam convention, and the techno-economic cost
// model. The capacity model (internal/beams, internal/core) consumes a
// System instead of package-level Starlink constants, so "which
// constellation" is data, not code.
//
// Parameters follow the public filings (FCC Schedule S and
// authorization orders) and the Osoro & Oughton techno-economic cost
// framework for Starlink, OneWeb and Kuiper (arXiv:2108.10834); all
// cost figures are explicit public-estimate conventions, carried with
// every result that uses them.

import (
	"fmt"

	"leodivide/internal/orbit"
	"leodivide/internal/spectrum"
)

// CostModel fixes the declarative unit economics of a System: capex
// (satellite build + launch amortized over the design life, plus a
// ground-segment share), a per-subscriber terminal subsidy, and a
// monthly operating cost per satellite.
//
// Every output is linear in the cost inputs: scaling SatelliteBuildUSD,
// LaunchPerSatelliteUSD, TerminalSubsidyUSD and
// MonthlyOpexPerSatelliteUSD together by k scales every USD-valued
// method — including cost per served location — by exactly k (the
// metamorphic oracle the tests pin).
type CostModel struct {
	// SatelliteBuildUSD is the manufacturing cost per satellite.
	SatelliteBuildUSD float64
	// LaunchPerSatelliteUSD is the amortized launch cost per satellite.
	LaunchPerSatelliteUSD float64
	// DesignLifeYears is the on-orbit design life before replacement.
	DesignLifeYears float64
	// GroundSegmentShare is the fraction of space-segment capex added
	// for gateways, PoPs and ground operations (0.2 = +20%).
	GroundSegmentShare float64
	// TerminalSubsidyUSD is the per-subscriber user-terminal subsidy,
	// amortized over the design life like the space segment.
	TerminalSubsidyUSD float64
	// MonthlyOpexPerSatelliteUSD is the recurring operating cost per
	// satellite on orbit.
	MonthlyOpexPerSatelliteUSD float64
}

// Validate reports whether the cost model is computable.
func (c CostModel) Validate() error {
	if c.SatelliteBuildUSD < 0 || c.LaunchPerSatelliteUSD < 0 {
		return fmt.Errorf("constellation: negative satellite costs (build %v, launch %v)",
			c.SatelliteBuildUSD, c.LaunchPerSatelliteUSD)
	}
	if c.DesignLifeYears <= 0 {
		return fmt.Errorf("constellation: design life %v must be positive", c.DesignLifeYears)
	}
	if c.GroundSegmentShare < 0 {
		return fmt.Errorf("constellation: ground-segment share %v below 0", c.GroundSegmentShare)
	}
	if c.TerminalSubsidyUSD < 0 || c.MonthlyOpexPerSatelliteUSD < 0 {
		return fmt.Errorf("constellation: negative terminal subsidy (%v) or opex (%v)",
			c.TerminalSubsidyUSD, c.MonthlyOpexPerSatelliteUSD)
	}
	return nil
}

// AllInSatelliteUSD is the build+launch cost of one satellite, before
// the ground-segment share.
func (c CostModel) AllInSatelliteUSD() float64 {
	return c.SatelliteBuildUSD + c.LaunchPerSatelliteUSD
}

// PerSatelliteCapexUSD is the capital cost of one satellite including
// the ground-segment share.
func (c CostModel) PerSatelliteCapexUSD() float64 {
	return c.AllInSatelliteUSD() * (1 + c.GroundSegmentShare)
}

// FleetCapexUSD is the capital cost of a fleet of n satellites.
func (c CostModel) FleetCapexUSD(satellites int) float64 {
	return float64(satellites) * c.PerSatelliteCapexUSD()
}

// AnnualizedUSD is the yearly cost of sustaining n satellites: capex
// spread over the design life (LEO fleets are perpetually replaced, so
// this recurs) plus twelve months of per-satellite opex.
func (c CostModel) AnnualizedUSD(satellites int) float64 {
	return c.FleetCapexUSD(satellites)/c.DesignLifeYears +
		12*c.MonthlyOpexPerSatelliteUSD*float64(satellites)
}

// MonthlyPerServedLocationUSD is the break-even monthly cost per served
// location for a fleet of n satellites serving servedLocations: the
// annualized fleet cost split across served locations, plus the
// amortized terminal subsidy each subscriber carries individually.
// Returns 0 when nothing is served (no cost is attributable).
func (c CostModel) MonthlyPerServedLocationUSD(satellites, servedLocations int) float64 {
	if servedLocations <= 0 {
		return 0
	}
	fleet := c.AnnualizedUSD(satellites) / 12 / float64(servedLocations)
	terminal := c.TerminalSubsidyUSD / (c.DesignLifeYears * 12)
	return fleet + terminal
}

// System is the full declarative spec of one constellation.
type System struct {
	Fleet

	// Key is the canonical lowercase identifier used in scenario
	// selectors, canonical cache keys and the serving API.
	Key string

	// Bands is the system's downlink band table (the Starlink entry
	// carries the FCC Schedule S table; others carry their authorized
	// user-downlink allocations).
	Bands []spectrum.Band

	// SpectralEfficiencyBpsPerHz is the adopted downlink spectral
	// efficiency estimate.
	SpectralEfficiencyBpsPerHz float64

	// MaxBeamsPerCell is the number of co-frequency beams the system
	// may stack on one cell (polarization/frequency-reuse constraint).
	MaxBeamsPerCell int

	// CellCapacityGbps is the maximum per-cell downlink capacity under
	// the system's own convention (the Starlink entry keeps the paper's
	// rounded 17.3 Gbps so defaults stay byte-identical).
	CellCapacityGbps float64

	// SizingAltitudeKm and SizingInclinationDeg define the single
	// reference shell the sizing rule is stated in — the shell whose
	// latitude density profile converts required satellite density at
	// the binding cell into a total constellation size.
	SizingAltitudeKm     float64
	SizingInclinationDeg float64

	// Cost is the system's techno-economic cost model.
	Cost CostModel
}

// Validate reports whether the spec is coherent: valid shells, a
// non-empty band table with positive widths and beam counts, a beam
// stacking limit the band table can supply, positive capacity and
// sizing-shell parameters, and a computable cost model.
func (s System) Validate() error {
	if s.Key == "" {
		return fmt.Errorf("constellation: system %q has no key", s.Name)
	}
	if err := s.Fleet.Validate(); err != nil {
		return err
	}
	if len(s.Bands) == 0 {
		return fmt.Errorf("constellation: system %q has no bands", s.Key)
	}
	for i, b := range s.Bands {
		if b.WidthMHz <= 0 || b.Beams <= 0 {
			return fmt.Errorf("constellation: system %q band %d (%s): width %v MHz / %d beams must be positive",
				s.Key, i, b.Name, b.WidthMHz, b.Beams)
		}
	}
	if s.SpectralEfficiencyBpsPerHz <= 0 {
		return fmt.Errorf("constellation: system %q spectral efficiency %v must be positive",
			s.Key, s.SpectralEfficiencyBpsPerHz)
	}
	ut := spectrum.UTBeamsOf(s.Bands)
	if s.MaxBeamsPerCell < 1 || s.MaxBeamsPerCell > ut {
		return fmt.Errorf("constellation: system %q beam limit %d outside [1, %d user-terminal beams]",
			s.Key, s.MaxBeamsPerCell, ut)
	}
	if s.CellCapacityGbps <= 0 {
		return fmt.Errorf("constellation: system %q cell capacity %v must be positive",
			s.Key, s.CellCapacityGbps)
	}
	ref := orbit.Walker{
		AltitudeKm:     s.SizingAltitudeKm,
		InclinationDeg: s.SizingInclinationDeg,
		Total:          1,
		Planes:         1,
	}
	if err := ref.Validate(); err != nil {
		return fmt.Errorf("constellation: system %q sizing shell: %w", s.Key, err)
	}
	if err := s.Cost.Validate(); err != nil {
		return fmt.Errorf("constellation: system %q cost: %w", s.Key, err)
	}
	return nil
}

// SizingShell is the unit reference shell (one satellite) the sizing
// requirement is stated in.
func (s System) SizingShell() orbit.Walker {
	return orbit.Walker{
		AltitudeKm:     s.SizingAltitudeKm,
		InclinationDeg: s.SizingInclinationDeg,
		Total:          1,
		Planes:         1,
	}
}

// StarlinkSystem returns the default system: the Gen1 fleet, the
// Schedule S band table, and the paper's Ku-band capacity convention.
// Its parameters reproduce the repo's historical Starlink constants
// exactly; every default model path routes through it.
func StarlinkSystem() System {
	return System{
		Fleet:                      StarlinkGen1(),
		Key:                        "starlink",
		Bands:                      spectrum.ScheduleS(),
		SpectralEfficiencyBpsPerHz: spectrum.SpectralEfficiencyBpsPerHz,
		MaxBeamsPerCell:            spectrum.BeamsPerCellLimit,
		CellCapacityGbps:           spectrum.MaxCellCapacityGbps,
		SizingAltitudeKm:           orbit.StarlinkAltitudeKm,
		SizingInclinationDeg:       orbit.StarlinkInclinationDeg,
		Cost: CostModel{
			SatelliteBuildUSD:          800_000,
			LaunchPerSatelliteUSD:      700_000,
			DesignLifeYears:            5,
			GroundSegmentShare:         0.2,
			TerminalSubsidyUSD:         300,
			MonthlyOpexPerSatelliteUSD: 1000,
		},
	}
}

// StarlinkGen2System returns the Gen2 variant: the nine-shell Gen2
// fleet with the same Schedule S spectrum convention, priced at
// Starship-era launch economics (cheaper launch, heavier satellite).
func StarlinkGen2System() System {
	s := StarlinkSystem()
	s.Fleet = StarlinkGen2()
	s.Key = "starlink-gen2"
	s.Cost = CostModel{
		SatelliteBuildUSD:          1_000_000,
		LaunchPerSatelliteUSD:      500_000,
		DesignLifeYears:            5,
		GroundSegmentShare:         0.2,
		TerminalSubsidyUSD:         300,
		MonthlyOpexPerSatelliteUSD: 800,
	}
	return s
}

// KuiperSystem returns Amazon's Project Kuiper as authorized by the
// FCC: 3,236 satellites across three shells, Ka-band user downlink
// (1,900 MHz over 16 user-capable beams under this model's
// convention), costed per public program estimates.
func KuiperSystem() System {
	return System{
		Fleet: Fleet{
			Name: "Kuiper",
			Shells: []orbit.Walker{
				{AltitudeKm: 630, InclinationDeg: 51.9, Total: 1156, Planes: 34, Phasing: 1},
				{AltitudeKm: 610, InclinationDeg: 42.0, Total: 1296, Planes: 36, Phasing: 1},
				{AltitudeKm: 590, InclinationDeg: 33.0, Total: 784, Planes: 28, Phasing: 1},
			},
		},
		Key: "kuiper",
		Bands: []spectrum.Band{
			{Name: "17.7-18.6 GHz", LowGHz: 17.7, HighGHz: 18.6, WidthMHz: 900, Beams: 8, Use: spectrum.DownlinkUT},
			{Name: "18.8-19.3 GHz", LowGHz: 18.8, HighGHz: 19.3, WidthMHz: 500, Beams: 4, Use: spectrum.DownlinkUT},
			{Name: "19.7-20.2 GHz", LowGHz: 19.7, HighGHz: 20.2, WidthMHz: 500, Beams: 4, Use: spectrum.DownlinkFlexible},
		},
		SpectralEfficiencyBpsPerHz: spectrum.SpectralEfficiencyBpsPerHz,
		MaxBeamsPerCell:            4,
		// 1,900 MHz × 4.5 b/Hz = 8.55 Gbps per cell.
		CellCapacityGbps:     8.55,
		SizingAltitudeKm:     630,
		SizingInclinationDeg: 51.9,
		Cost: CostModel{
			SatelliteBuildUSD:          1_200_000,
			LaunchPerSatelliteUSD:      1_300_000,
			DesignLifeYears:            7,
			GroundSegmentShare:         0.25,
			TerminalSubsidyUSD:         400,
			MonthlyOpexPerSatelliteUSD: 1200,
		},
	}
}

// OneWebSystem returns the OneWeb Gen1 polar system: 588 operational
// satellites in a single 1,200 km / 87.9° shell, Ku-band user downlink
// split over 16 fixed (non-steerable, non-stackable) beams — hence a
// per-cell capacity of one beam's share, 2,000/16 MHz × 4.5 b/Hz =
// 0.5625 Gbps.
func OneWebSystem() System {
	return System{
		Fleet: Fleet{
			Name: "OneWeb",
			Shells: []orbit.Walker{
				{AltitudeKm: 1200, InclinationDeg: 87.9, Total: 588, Planes: 12, Phasing: 1},
			},
		},
		Key: "oneweb",
		Bands: []spectrum.Band{
			{Name: "10.7-12.7 GHz", LowGHz: 10.7, HighGHz: 12.7, WidthMHz: 2000, Beams: 16, Use: spectrum.DownlinkUT},
		},
		SpectralEfficiencyBpsPerHz: spectrum.SpectralEfficiencyBpsPerHz,
		MaxBeamsPerCell:            1,
		CellCapacityGbps:           0.5625,
		SizingAltitudeKm:           1200,
		SizingInclinationDeg:       87.9,
		Cost: CostModel{
			SatelliteBuildUSD:          1_000_000,
			LaunchPerSatelliteUSD:      1_100_000,
			DesignLifeYears:            7,
			GroundSegmentShare:         0.3,
			TerminalSubsidyUSD:         500,
			MonthlyOpexPerSatelliteUSD: 1500,
		},
	}
}

// Systems returns the declared systems in canonical order. The first
// entry is the default (Starlink Gen1).
func Systems() []System {
	return []System{StarlinkSystem(), StarlinkGen2System(), KuiperSystem(), OneWebSystem()}
}

// SystemNames returns the canonical keys of the declared systems, in
// canonical order.
func SystemNames() []string {
	systems := Systems()
	names := make([]string, len(systems))
	for i, s := range systems {
		names[i] = s.Key
	}
	return names
}

// SystemByName resolves a canonical key to its system.
func SystemByName(name string) (System, bool) {
	for _, s := range Systems() {
		if s.Key == name {
			return s, true
		}
	}
	return System{}, false
}
