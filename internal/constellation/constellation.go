// Package constellation models multi-shell LEO fleets: a named set of
// Walker shells with a combined satellite-density profile. The paper's
// analysis treats "the Starlink constellation" as a single 53° shell;
// this package is the extension that lets the same capacity model be
// asked about the real multi-shell Gen1 deployment and the authorized
// Gen2 system — e.g. "how far toward the >40,000-satellite requirement
// does the full Gen2 authorization actually get?"
//
// Shell parameters follow SpaceX's FCC authorizations (Gen1:
// SAT-MOD-20200417-00037; Gen2: SAT-AMD-20210818-00105, the filing the
// paper cites for its beam table).
package constellation

import (
	"fmt"
	"sort"

	"leodivide/internal/geo"
	"leodivide/internal/orbit"
)

// Fleet is a named collection of Walker shells operated as one system.
type Fleet struct {
	Name   string
	Shells []orbit.Walker
}

// StarlinkGen1 returns the five-shell first-generation Starlink system
// as authorized (≈4,408 satellites).
func StarlinkGen1() Fleet {
	return Fleet{
		Name: "Starlink Gen1",
		Shells: []orbit.Walker{
			{AltitudeKm: 550, InclinationDeg: 53.0, Total: 1584, Planes: 72, Phasing: 39},
			{AltitudeKm: 540, InclinationDeg: 53.2, Total: 1584, Planes: 72, Phasing: 39},
			{AltitudeKm: 570, InclinationDeg: 70.0, Total: 720, Planes: 36, Phasing: 17},
			{AltitudeKm: 560, InclinationDeg: 97.6, Total: 348, Planes: 6, Phasing: 1},
			{AltitudeKm: 560, InclinationDeg: 97.6, Total: 172, Planes: 4, Phasing: 1},
		},
	}
}

// StarlinkGen2 returns the Gen2 system as amended in the 2021 filing
// (≈29,988 satellites across nine shells).
func StarlinkGen2() Fleet {
	return Fleet{
		Name: "Starlink Gen2",
		Shells: []orbit.Walker{
			{AltitudeKm: 340, InclinationDeg: 53.0, Total: 5280, Planes: 48, Phasing: 1},
			{AltitudeKm: 345, InclinationDeg: 46.0, Total: 5280, Planes: 48, Phasing: 1},
			{AltitudeKm: 350, InclinationDeg: 38.0, Total: 5280, Planes: 48, Phasing: 1},
			{AltitudeKm: 360, InclinationDeg: 96.9, Total: 3600, Planes: 30, Phasing: 1},
			{AltitudeKm: 525, InclinationDeg: 53.0, Total: 3360, Planes: 28, Phasing: 1},
			{AltitudeKm: 530, InclinationDeg: 43.0, Total: 3360, Planes: 28, Phasing: 1},
			{AltitudeKm: 535, InclinationDeg: 33.0, Total: 3360, Planes: 28, Phasing: 1},
			{AltitudeKm: 604, InclinationDeg: 148.0, Total: 144, Planes: 12, Phasing: 1},
			{AltitudeKm: 614, InclinationDeg: 115.7, Total: 324, Planes: 18, Phasing: 1},
		},
	}
}

// Validate checks every shell.
func (f Fleet) Validate() error {
	if len(f.Shells) == 0 {
		return fmt.Errorf("constellation: fleet %q has no shells", f.Name)
	}
	for i, s := range f.Shells {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("constellation: fleet %q shell %d: %w", f.Name, i, err)
		}
	}
	return nil
}

// TotalSatellites sums the fleet's satellites.
func (f Fleet) TotalSatellites() int {
	n := 0
	for _, s := range f.Shells {
		n += s.Total
	}
	return n
}

// DensityPerKm2 returns the fleet's combined satellite surface density
// at a latitude: Σ shells N_s · f_s(φ) / A_earth. Shells whose
// inclination band excludes the latitude contribute nothing.
func (f Fleet) DensityPerKm2(latDeg float64) float64 {
	d := 0.0
	for _, s := range f.Shells {
		if !shellCovers(s, latDeg) {
			continue
		}
		d += float64(s.Total) * s.DensityFactor(latDeg) / geo.EarthAreaKm2
	}
	return d
}

// shellCovers reports whether a shell's subsatellite band reaches the
// latitude (with a half-degree grace matching the density cap).
func shellCovers(s orbit.Walker, latDeg float64) bool {
	inc := s.InclinationDeg
	if inc > 90 {
		inc = 180 - inc
	}
	if latDeg < 0 {
		latDeg = -latDeg
	}
	return latDeg <= inc+0.5
}

// EquivalentSingleShellSatellites converts the fleet's density at a
// latitude into the size of a single reference shell providing the
// same density there. This lets multi-shell fleets be compared against
// the paper's single-shell sizing numbers (which assume the reference
// shell's density profile).
func (f Fleet) EquivalentSingleShellSatellites(ref orbit.Walker, latDeg float64) int {
	refDensityPerSat := ref.DensityFactor(latDeg) / geo.EarthAreaKm2
	if refDensityPerSat <= 0 {
		return 0
	}
	return int(f.DensityPerKm2(latDeg) / refDensityPerSat)
}

// DensityProfile samples the fleet's density enhancement relative to a
// uniform distribution of TotalSatellites, from the equator to maxLat,
// in stepDeg increments. Used for plotting and tests.
func (f Fleet) DensityProfile(maxLat, stepDeg float64) []ProfilePoint {
	if stepDeg <= 0 {
		stepDeg = 5
	}
	uniform := float64(f.TotalSatellites()) / geo.EarthAreaKm2
	var out []ProfilePoint
	for lat := 0.0; lat <= maxLat; lat += stepDeg {
		out = append(out, ProfilePoint{
			LatDeg:      lat,
			Enhancement: f.DensityPerKm2(lat) / uniform,
		})
	}
	return out
}

// ProfilePoint is one sample of a density profile.
type ProfilePoint struct {
	LatDeg      float64
	Enhancement float64
}

// Orbits expands every shell into per-satellite orbits.
func (f Fleet) Orbits() ([]orbit.CircularOrbit, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var out []orbit.CircularOrbit
	for _, s := range f.Shells {
		orbits, err := s.Orbits()
		if err != nil {
			return nil, err
		}
		out = append(out, orbits...)
	}
	return out, nil
}

// ShellsByDensityAt returns the fleet's shells ordered by their density
// contribution at a latitude, densest first — useful for reporting
// which shells actually matter for a given service region.
func (f Fleet) ShellsByDensityAt(latDeg float64) []orbit.Walker {
	shells := make([]orbit.Walker, len(f.Shells))
	copy(shells, f.Shells)
	sort.SliceStable(shells, func(i, j int) bool {
		di, dj := 0.0, 0.0
		if shellCovers(shells[i], latDeg) {
			di = float64(shells[i].Total) * shells[i].DensityFactor(latDeg)
		}
		if shellCovers(shells[j], latDeg) {
			dj = float64(shells[j].Total) * shells[j].DensityFactor(latDeg)
		}
		return di > dj
	})
	return shells
}
