package constellation

import (
	"strings"
	"testing"

	"leodivide/internal/spectrum"
)

// Every declared system must validate, carry a unique lowercase key,
// and resolve by name in canonical order.
func TestSystemsValidate(t *testing.T) {
	names := SystemNames()
	seen := map[string]bool{}
	for i, sys := range Systems() {
		if err := sys.Validate(); err != nil {
			t.Errorf("system %q: %v", sys.Key, err)
		}
		if seen[sys.Key] {
			t.Errorf("duplicate system key %q", sys.Key)
		}
		seen[sys.Key] = true
		if sys.Key != strings.ToLower(sys.Key) {
			t.Errorf("system key %q is not canonical lowercase", sys.Key)
		}
		if names[i] != sys.Key {
			t.Errorf("SystemNames()[%d] = %q, want %q", i, names[i], sys.Key)
		}
		got, ok := SystemByName(sys.Key)
		if !ok || got.Key != sys.Key {
			t.Errorf("SystemByName(%q) = %q, %v", sys.Key, got.Key, ok)
		}
	}
	if Systems()[0].Key != "starlink" {
		t.Errorf("first system is %q, want the starlink default", Systems()[0].Key)
	}
	if _, ok := SystemByName("iridium"); ok {
		t.Error("SystemByName accepted an undeclared system")
	}
}

// The default system IS the paper's Starlink constants, bit for bit —
// the byte-identity of every default-model result rests on this.
func TestStarlinkSystemMatchesConstants(t *testing.T) {
	s := StarlinkSystem()
	if s.CellCapacityGbps != spectrum.MaxCellCapacityGbps {
		t.Errorf("cell capacity %v, want the Schedule S constant %v",
			s.CellCapacityGbps, spectrum.MaxCellCapacityGbps)
	}
	if s.MaxBeamsPerCell != spectrum.BeamsPerCellLimit {
		t.Errorf("beam limit %d, want %d", s.MaxBeamsPerCell, spectrum.BeamsPerCellLimit)
	}
	if s.SpectralEfficiencyBpsPerHz != spectrum.SpectralEfficiencyBpsPerHz {
		t.Errorf("spectral efficiency %v, want %v",
			s.SpectralEfficiencyBpsPerHz, spectrum.SpectralEfficiencyBpsPerHz)
	}
	if got := spectrum.UTDownlinkMHzOf(s.Bands); got != spectrum.UTDownlinkMHz() {
		t.Errorf("UT downlink %v MHz, want the Schedule S total %v", got, spectrum.UTDownlinkMHz())
	}
	if got := spectrum.UTBeamsOf(s.Bands); got != spectrum.UTBeams() {
		t.Errorf("UT beams %d, want the Schedule S total %d", got, spectrum.UTBeams())
	}
	if s.Fleet.Name != StarlinkGen1().Name || s.TotalSatellites() != StarlinkGen1().TotalSatellites() {
		t.Errorf("default fleet is %q (%d sats), want Gen1", s.Fleet.Name, s.TotalSatellites())
	}
}

// The metamorphic oracle the cost model documents: scaling every USD
// input by k scales every USD-valued output — including cost per served
// location — by exactly k. The factors are powers of two, so linearity
// must hold bit-for-bit, not approximately.
func TestCostModelScalesLinearly(t *testing.T) {
	const sats, served = 3236, 93440
	for _, sys := range Systems() {
		base := sys.Cost
		for _, k := range []float64{0.5, 2, 4} {
			scaled := base
			scaled.SatelliteBuildUSD *= k
			scaled.LaunchPerSatelliteUSD *= k
			scaled.TerminalSubsidyUSD *= k
			scaled.MonthlyOpexPerSatelliteUSD *= k
			checks := []struct {
				name      string
				got, want float64
			}{
				{"AllInSatelliteUSD", scaled.AllInSatelliteUSD(), k * base.AllInSatelliteUSD()},
				{"PerSatelliteCapexUSD", scaled.PerSatelliteCapexUSD(), k * base.PerSatelliteCapexUSD()},
				{"FleetCapexUSD", scaled.FleetCapexUSD(sats), k * base.FleetCapexUSD(sats)},
				{"AnnualizedUSD", scaled.AnnualizedUSD(sats), k * base.AnnualizedUSD(sats)},
				{"MonthlyPerServedLocationUSD",
					scaled.MonthlyPerServedLocationUSD(sats, served),
					k * base.MonthlyPerServedLocationUSD(sats, served)},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Errorf("%s: %s at k=%g = %v, want exactly %v",
						sys.Key, c.name, k, c.got, c.want)
				}
			}
		}
	}
	zero := StarlinkSystem().Cost
	if got := zero.MonthlyPerServedLocationUSD(100, 0); got != 0 {
		t.Errorf("cost with nothing served = %v, want 0", got)
	}
}
