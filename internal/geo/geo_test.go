package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Known city coordinates for distance sanity checks.
var (
	sfo = LatLng{Lat: 37.6213, Lng: -122.3790}
	jfk = LatLng{Lat: 40.6413, Lng: -73.7781}
	lhr = LatLng{Lat: 51.4700, Lng: -0.4543}
	syd = LatLng{Lat: -33.9399, Lng: 151.1753}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b   LatLng
		wantKm float64
		tolKm  float64
	}{
		{sfo, jfk, 4152, 30},
		{jfk, lhr, 5540, 40},
		{sfo, syd, 11940, 80},
		{sfo, sfo, 0, 1e-9},
	}
	for _, tc := range cases {
		if got := DistanceKm(tc.a, tc.b); math.Abs(got-tc.wantKm) > tc.tolKm {
			t.Errorf("DistanceKm(%v, %v) = %.1f, want %.1f±%.0f", tc.a, tc.b, got, tc.wantKm, tc.tolKm)
		}
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 uint16) bool {
		a := randPoint(lat1, lng1)
		b := randPoint(lat2, lng2)
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0 && d1 <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randPoint maps two uint16s onto the sphere, avoiding the exact poles.
func randPoint(a, b uint16) LatLng {
	return LatLng{
		Lat: float64(a)/65535*179 - 89.5,
		Lng: float64(b)/65535*360 - 180,
	}
}

func TestVectorRoundTripProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p := randPoint(a, b)
		q := p.Vector().LatLng()
		return AngularDistance(p, q) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTripProperty(t *testing.T) {
	f := func(a, b uint16, brgRaw, distRaw uint16) bool {
		p := randPoint(a, b)
		if math.Abs(p.Lat) > 80 {
			return true // bearing round trips degrade near poles
		}
		bearing := float64(brgRaw) / 65535 * 360
		dist := 1 + float64(distRaw)/65535*5000
		q := Destination(p, bearing, dist)
		return math.Abs(DistanceKm(p, q)-dist) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	origin := LatLng{Lat: 10, Lng: 20}
	cases := []struct {
		to   LatLng
		want float64
	}{
		{LatLng{Lat: 20, Lng: 20}, 0},   // due north
		{LatLng{Lat: 0, Lng: 20}, 180},  // due south
		{LatLng{Lat: 10, Lng: 21}, 90},  // roughly east
		{LatLng{Lat: 10, Lng: 19}, 270}, // roughly west
	}
	for _, tc := range cases {
		got := InitialBearing(origin, tc.to)
		diff := math.Abs(got - tc.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 0.5 {
			t.Errorf("InitialBearing(%v -> %v) = %.2f, want %.1f", origin, tc.to, got, tc.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want LatLng
	}{
		{LatLng{Lat: 0, Lng: 190}, LatLng{Lat: 0, Lng: -170}},
		{LatLng{Lat: 0, Lng: -190}, LatLng{Lat: 0, Lng: 170}},
		{LatLng{Lat: 95, Lng: 0}, LatLng{Lat: 90, Lng: 0}},
		{LatLng{Lat: 45, Lng: 180}, LatLng{Lat: 45, Lng: -180}},
	}
	for _, tc := range cases {
		got := tc.in.Normalize()
		if math.Abs(got.Lat-tc.want.Lat) > 1e-9 || math.Abs(got.Lng-tc.want.Lng) > 1e-9 {
			t.Errorf("Normalize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestValid(t *testing.T) {
	if !(LatLng{Lat: 45, Lng: -100}).Valid() {
		t.Error("valid point reported invalid")
	}
	for _, p := range []LatLng{
		{Lat: 91, Lng: 0}, {Lat: 0, Lng: 181}, {Lat: math.NaN(), Lng: 0},
	} {
		if p.Valid() {
			t.Errorf("%v reported valid", p)
		}
	}
}

func TestCap(t *testing.T) {
	c := Cap{Center: LatLng{Lat: 0, Lng: 0}, Radius: Radians(10)}
	if !c.Contains(LatLng{Lat: 5, Lng: 5}) {
		t.Error("cap should contain nearby point")
	}
	if c.Contains(LatLng{Lat: 15, Lng: 0}) {
		t.Error("cap should not contain far point")
	}
	// Hemisphere cap covers half the sphere.
	hemi := Cap{Center: LatLng{Lat: 90}, Radius: math.Pi / 2}
	if got := hemi.AreaKm2(); math.Abs(got-EarthAreaKm2/2) > 1 {
		t.Errorf("hemisphere area = %v, want %v", got, EarthAreaKm2/2)
	}
}

func TestPolygonAreaOctant(t *testing.T) {
	// The octant (0,0), (0,90), (90,*) covers 1/8 of the sphere.
	oct := Polygon{Vertices: []LatLng{
		{Lat: 0, Lng: 0}, {Lat: 0, Lng: 90}, {Lat: 90, Lng: 0},
	}}
	want := EarthAreaKm2 / 8
	if got := oct.AreaKm2(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("octant area = %v, want %v", got, want)
	}
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{Vertices: []LatLng{
		{Lat: 0, Lng: 0}, {Lat: 0, Lng: 10}, {Lat: 10, Lng: 10}, {Lat: 10, Lng: 0},
	}}
	if !square.Contains(LatLng{Lat: 5, Lng: 5}) {
		t.Error("polygon should contain interior point")
	}
	if square.Contains(LatLng{Lat: 20, Lng: 5}) {
		t.Error("polygon should not contain exterior point")
	}
	if square.Contains(LatLng{Lat: -5, Lng: -5}) {
		t.Error("polygon should not contain exterior point on other side")
	}
	if (Polygon{}).Contains(LatLng{}) {
		t.Error("degenerate polygon contains nothing")
	}
}

func TestRectArea(t *testing.T) {
	if got := RectArea(-90, 90, -180, 180); math.Abs(got-EarthAreaKm2)/EarthAreaKm2 > 1e-12 {
		t.Errorf("global rect = %v, want %v", got, EarthAreaKm2)
	}
	// Band symmetry: northern and southern bands of equal extent match.
	n := RectArea(10, 20, 0, 90)
	s := RectArea(-20, -10, 0, 90)
	if math.Abs(n-s) > 1e-6 {
		t.Errorf("band asymmetry: %v vs %v", n, s)
	}
	if got := RectArea(20, 10, 0, 90); got != 0 {
		t.Errorf("inverted rect = %v, want 0", got)
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 0, 0}
	w := Vec3{0, 1, 0}
	if got := v.Cross(w); got != (Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := v.Dot(w); got != 0 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.AngleTo(w); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("AngleTo = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{}).Unit(); got != (Vec3{}) {
		t.Errorf("Unit(zero) = %v", got)
	}
	if got := v.Add(w).Sub(w); got != v {
		t.Errorf("Add/Sub round trip = %v", got)
	}
	if got := v.Scale(2.5); got != (Vec3{2.5, 0, 0}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAngleToStability(t *testing.T) {
	// Nearly identical vectors: dot-product acos would lose precision;
	// atan2 must not.
	v := LatLng{Lat: 45, Lng: 45}.Vector()
	w := LatLng{Lat: 45.0000001, Lng: 45}.Vector()
	got := v.AngleTo(w)
	want := Radians(0.0000001)
	if math.Abs(got-want)/want > 1e-3 {
		t.Errorf("AngleTo tiny angle = %v, want %v", got, want)
	}
}

func TestMidpointAndIntermediate(t *testing.T) {
	a := LatLng{Lat: 0, Lng: 0}
	b := LatLng{Lat: 0, Lng: 90}
	mid := Midpoint(a, b)
	if math.Abs(mid.Lat) > 1e-9 || math.Abs(mid.Lng-45) > 1e-9 {
		t.Errorf("equatorial midpoint = %v, want 0,45", mid)
	}
	// Intermediate endpoints.
	if d := DistanceKm(Intermediate(a, b, 0), a); d > 1e-6 {
		t.Errorf("Intermediate(0) off by %v km", d)
	}
	if d := DistanceKm(Intermediate(a, b, 1), b); d > 1e-6 {
		t.Errorf("Intermediate(1) off by %v km", d)
	}
	// Fractional distances accumulate linearly along the arc.
	q := Intermediate(a, b, 0.25)
	if math.Abs(DistanceKm(a, q)-0.25*DistanceKm(a, b)) > 1e-6 {
		t.Error("Intermediate(0.25) not a quarter of the way")
	}
	// Coincident points.
	if got := Intermediate(a, a, 0.5); DistanceKm(got, a) > 1e-9 {
		t.Error("Intermediate of coincident points drifted")
	}
	// Antipodal points return a point equidistant from both.
	anti := LatLng{Lat: 0, Lng: 180}
	m := Intermediate(a, anti, 0.5)
	if math.Abs(DistanceKm(a, m)-DistanceKm(anti, m)) > 1 {
		t.Errorf("antipodal midpoint not equidistant: %v", m)
	}
}

func TestCrossTrack(t *testing.T) {
	a := LatLng{Lat: 0, Lng: 0}
	b := LatLng{Lat: 0, Lng: 90}
	// A point on the equator has zero cross-track distance.
	if d := CrossTrackKm(LatLng{Lat: 0, Lng: 45}, a, b); d > 1e-6 {
		t.Errorf("on-track distance = %v", d)
	}
	// A point 10° north is ~1,111 km off the equatorial track.
	want := Radians(10) * EarthRadiusKm
	if d := CrossTrackKm(LatLng{Lat: 10, Lng: 45}, a, b); math.Abs(d-want) > 1 {
		t.Errorf("cross-track = %v, want %v", d, want)
	}
}

func TestBoundingCap(t *testing.T) {
	pts := []LatLng{
		{Lat: 40, Lng: -100}, {Lat: 42, Lng: -98}, {Lat: 38, Lng: -102},
	}
	c := BoundingCap(pts)
	for _, p := range pts {
		if !c.Contains(p) {
			t.Errorf("cap misses %v", p)
		}
	}
	// Radius is tight-ish: no larger than the max pairwise distance.
	maxPair := 0.0
	for i := range pts {
		for j := range pts {
			if d := AngularDistance(pts[i], pts[j]); d > maxPair {
				maxPair = d
			}
		}
	}
	if c.Radius > maxPair {
		t.Errorf("cap radius %v exceeds max pairwise %v", c.Radius, maxPair)
	}
	if got := BoundingCap(nil); got.Radius != 0 {
		t.Error("empty bounding cap should be zero")
	}
	single := BoundingCap(pts[:1])
	if single.Radius != 0 || DistanceKm(single.Center, pts[0]) > 1e-6 {
		t.Errorf("single-point cap = %+v", single)
	}
}
