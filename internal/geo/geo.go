// Package geo provides spherical geodesy primitives: geographic
// coordinates, unit vectors on the sphere, great-circle distance and
// bearing, spherical caps, and spherical polygon area / containment.
//
// The Earth is modelled as a sphere of radius EarthRadiusKm. That is the
// right fidelity for LEO coverage accounting, where cell areas and
// satellite densities are computed at the hundreds-of-km² scale; WGS84
// flattening shifts areas by <0.7% and is irrelevant to the model's
// conclusions.
package geo

import (
	"fmt"
	"math"
)

const (
	// EarthRadiusKm is the mean Earth radius in kilometres.
	EarthRadiusKm = 6371.0088

	// EarthAreaKm2 is the surface area of the spherical Earth model.
	EarthAreaKm2 = 4 * math.Pi * EarthRadiusKm * EarthRadiusKm
)

// LatLng is a geographic coordinate in degrees. Latitude is positive
// north, longitude positive east.
type LatLng struct {
	Lat, Lng float64
}

// String renders the coordinate as "lat,lng" with 5 decimal places
// (about 1 m resolution).
func (p LatLng) String() string { return fmt.Sprintf("%.5f,%.5f", p.Lat, p.Lng) }

// Valid reports whether the coordinate is a plausible point on Earth.
func (p LatLng) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// Normalize wraps longitude into [-180, 180) and clamps latitude into
// [-90, 90].
func (p LatLng) Normalize() LatLng {
	lat := p.Lat
	if lat > 90 {
		lat = 90
	}
	if lat < -90 {
		lat = -90
	}
	lng := math.Mod(p.Lng+180, 360)
	if lng < 0 {
		lng += 360
	}
	return LatLng{Lat: lat, Lng: lng - 180}
}

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Vec3 is a 3-vector, used as a unit vector on the sphere or an ECEF
// position.
type Vec3 struct {
	X, Y, Z float64
}

// Vector converts the coordinate to a unit vector.
func (p LatLng) Vector() Vec3 {
	lat, lng := Radians(p.Lat), Radians(p.Lng)
	cl := math.Cos(lat)
	return Vec3{X: cl * math.Cos(lng), Y: cl * math.Sin(lng), Z: math.Sin(lat)}
}

// LatLng converts a (not necessarily unit) vector back to a geographic
// coordinate.
func (v Vec3) LatLng() LatLng {
	r := math.Hypot(v.X, v.Y)
	return LatLng{Lat: Degrees(math.Atan2(v.Z, r)), Lng: Degrees(math.Atan2(v.Y, v.X))}
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v/|v|. Unit of the zero vector is the zero vector.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// AngleTo returns the angle between v and w in radians, computed with
// atan2 for numerical stability near 0 and π.
func (v Vec3) AngleTo(w Vec3) float64 {
	return math.Atan2(v.Cross(w).Norm(), v.Dot(w))
}

// DistanceKm returns the great-circle distance between a and b in km.
func DistanceKm(a, b LatLng) float64 {
	return a.Vector().AngleTo(b.Vector()) * EarthRadiusKm
}

// AngularDistance returns the central angle between a and b in radians.
func AngularDistance(a, b LatLng) float64 {
	return a.Vector().AngleTo(b.Vector())
}

// InitialBearing returns the initial great-circle bearing from a to b in
// degrees clockwise from north, in [0, 360).
func InitialBearing(a, b LatLng) float64 {
	la, lb := Radians(a.Lat), Radians(b.Lat)
	dl := Radians(b.Lng - a.Lng)
	y := math.Sin(dl) * math.Cos(lb)
	x := math.Cos(la)*math.Sin(lb) - math.Sin(la)*math.Cos(lb)*math.Cos(dl)
	brg := Degrees(math.Atan2(y, x))
	if brg < 0 {
		brg += 360
	}
	return brg
}

// Destination returns the point reached travelling distanceKm along the
// great circle from start at the given initial bearing (degrees).
func Destination(start LatLng, bearingDeg, distanceKm float64) LatLng {
	d := distanceKm / EarthRadiusKm
	brg := Radians(bearingDeg)
	la := Radians(start.Lat)
	lo := Radians(start.Lng)
	sinLat := math.Sin(la)*math.Cos(d) + math.Cos(la)*math.Sin(d)*math.Cos(brg)
	lat2 := math.Asin(sinLat)
	y := math.Sin(brg) * math.Sin(d) * math.Cos(la)
	x := math.Cos(d) - math.Sin(la)*sinLat
	lng2 := lo + math.Atan2(y, x)
	return LatLng{Lat: Degrees(lat2), Lng: Degrees(lng2)}.Normalize()
}

// Cap is a spherical cap: all points within Radius radians of Center.
type Cap struct {
	Center LatLng
	Radius float64 // central angle, radians
}

// Contains reports whether p lies inside the cap.
func (c Cap) Contains(p LatLng) bool {
	return AngularDistance(c.Center, p) <= c.Radius
}

// AreaKm2 returns the surface area of the cap in km².
func (c Cap) AreaKm2() float64 {
	return 2 * math.Pi * EarthRadiusKm * EarthRadiusKm * (1 - math.Cos(c.Radius))
}

// Polygon is a closed loop of vertices on the sphere, in counterclockwise
// order when viewed from outside (the enclosed region is to the left of
// each edge). The final vertex connects back to the first.
type Polygon struct {
	Vertices []LatLng
}

// AreaKm2 returns the spherical area enclosed by the polygon using
// L'Huilier's theorem summed over a triangle fan. The polygon must be
// simple and smaller than a hemisphere for the result to be meaningful.
func (pg Polygon) AreaKm2() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	// Triangle fan from vertex 0; signed spherical excess.
	v0 := pg.Vertices[0].Vector()
	total := 0.0
	for i := 1; i < n-1; i++ {
		v1 := pg.Vertices[i].Vector()
		v2 := pg.Vertices[i+1].Vector()
		total += signedTriangleExcess(v0, v1, v2)
	}
	return math.Abs(total) * EarthRadiusKm * EarthRadiusKm
}

// signedTriangleExcess returns the signed spherical excess of the
// triangle (a, b, c): positive when the vertices wind counterclockwise
// seen from outside the sphere.
func signedTriangleExcess(a, b, c Vec3) float64 {
	// Oosterom & Strackee's formula for the solid angle of a triangle.
	num := a.Dot(b.Cross(c))
	den := 1 + a.Dot(b) + b.Dot(c) + c.Dot(a)
	return 2 * math.Atan2(num, den)
}

// Contains reports whether p lies inside the polygon, using the winding
// of the point against each edge's great circle. Points exactly on an
// edge may be reported either way.
func (pg Polygon) Contains(p LatLng) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	v := p.Vector()
	// The point is inside a convex CCW polygon iff it is to the left of
	// every edge. For general simple polygons use angle-sum winding.
	total := 0.0
	for i := 0; i < n; i++ {
		a := pg.Vertices[i].Vector()
		b := pg.Vertices[(i+1)%n].Vector()
		// Project edge endpoints onto plane orthogonal to v and take the
		// turn angle.
		pa := a.Sub(v.Scale(a.Dot(v)))
		pb := b.Sub(v.Scale(b.Dot(v)))
		if pa.Norm() < 1e-12 || pb.Norm() < 1e-12 {
			return true // p coincides with a vertex
		}
		ang := pa.Unit().AngleTo(pb.Unit())
		if v.Dot(pa.Cross(pb)) < 0 {
			ang = -ang
		}
		total += ang
	}
	return math.Abs(total) > math.Pi // winding number != 0
}

// RectArea returns the area in km² of the latitude/longitude rectangle
// bounded by [latLo, latHi] × [lngLo, lngHi] (degrees).
func RectArea(latLo, latHi, lngLo, lngHi float64) float64 {
	if latHi < latLo || lngHi < lngLo {
		return 0
	}
	band := math.Sin(Radians(latHi)) - math.Sin(Radians(latLo))
	frac := (lngHi - lngLo) / 360
	return EarthAreaKm2 / 2 * band * frac
}

// Midpoint returns the point halfway along the great circle between a
// and b.
func Midpoint(a, b LatLng) LatLng {
	return Intermediate(a, b, 0.5)
}

// Intermediate returns the point the given fraction of the way from a
// to b along the great circle (0 = a, 1 = b). Antipodal endpoints have
// no unique great circle; the result is then an arbitrary midpoint.
func Intermediate(a, b LatLng, frac float64) LatLng {
	va, vb := a.Vector(), b.Vector()
	omega := va.AngleTo(vb)
	if omega < 1e-12 {
		return a
	}
	sinO := math.Sin(omega)
	if sinO < 1e-12 {
		// Antipodal: no unique great circle. Walk frac·π along an
		// arbitrary one through both endpoints.
		ortho := va.Cross(Vec3{X: 0, Y: 0, Z: 1})
		if ortho.Norm() < 1e-9 {
			ortho = va.Cross(Vec3{X: 1})
		}
		ortho = ortho.Unit()
		theta := frac * math.Pi
		return va.Scale(math.Cos(theta)).Add(ortho.Scale(math.Sin(theta))).LatLng()
	}
	wa := math.Sin((1-frac)*omega) / sinO
	wb := math.Sin(frac*omega) / sinO
	return va.Scale(wa).Add(vb.Scale(wb)).LatLng()
}

// CrossTrackKm returns the perpendicular distance from p to the great
// circle through a and b (not the segment), in km.
func CrossTrackKm(p, a, b LatLng) float64 {
	normal := a.Vector().Cross(b.Vector()).Unit()
	if normal.Norm() == 0 {
		return DistanceKm(p, a)
	}
	sinD := p.Vector().Dot(normal)
	return math.Abs(math.Asin(clamp(sinD, -1, 1))) * EarthRadiusKm
}

// BoundingCap returns the smallest-known cap centered on the points'
// normalized centroid that contains all of them. Empty input returns a
// zero cap.
func BoundingCap(points []LatLng) Cap {
	if len(points) == 0 {
		return Cap{}
	}
	var sum Vec3
	for _, p := range points {
		sum = sum.Add(p.Vector())
	}
	center := sum.Unit()
	if center.Norm() == 0 {
		center = points[0].Vector()
	}
	c := Cap{Center: center.LatLng()}
	for _, p := range points {
		if d := AngularDistance(c.Center, p); d > c.Radius {
			c.Radius = d
		}
	}
	return c
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
