package obs

import (
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of every instrument in a registry.
// It is plain data — JSON-marshalable (expvar, debug endpoints) and
// renderable as text (the CLI's -metrics flag).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the frozen state of one histogram. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket past the final
// bound. Max is 0 when Count is 0 so the snapshot stays JSON-safe.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket that contains it. Observations in
// the overflow bucket are approximated by Max.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	cum := int64(0)
	for i, n := range h.Counts {
		if float64(cum+n) < target {
			cum += n
			continue
		}
		if i >= len(h.Bounds) {
			return h.Max
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if hi > h.Max {
			hi = h.Max
		}
		if n == 0 || hi <= lo {
			return hi
		}
		frac := (target - float64(cum)) / float64(n)
		return lo + frac*(hi-lo)
	}
	return h.Max
}

// Snapshot copies every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.load(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		if hs.Count > 0 {
			hs.Max = h.max.load()
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteText renders the snapshot as sorted, line-oriented text:
//
//	counter   safeio.fsyncs 12
//	gauge     gen.cells 71532
//	histogram par.sweep.seconds count=8 sum=1.2045 mean=0.1506 p50=0.0881 max=0.5210
//
// Instruments with zero activity are included so the reader sees what
// exists, not only what fired.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter   %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "gauge     %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%.6g mean=%.6g p50=%.6g max=%.6g\n",
			name, h.Count, h.Sum, h.Mean(), h.Quantile(0.5), h.Max); err != nil {
			return err
		}
	}
	return nil
}
