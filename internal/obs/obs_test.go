package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; the
// final value must be exact (run under -race to also prove data-race
// freedom).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const goroutines, perG = 64, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative adds ignored)", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %g, want 0", g.Value())
	}
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Fatalf("gauge = %g, want 3.25", g.Value())
	}
}

// TestHistogramConcurrent checks count and sum stay exact under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", DurationBuckets)
	const goroutines, perG = 32, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	want := float64(goroutines*perG) * 0.001
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: a value
// lands in the first bucket whose upper bound is >= the value, and
// values past the last bound land in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", []float64{10, 100, 1000})
	for _, v := range []float64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["sizes"]
	wantCounts := []int64{2, 2, 0, 1} // ≤10: {1,10}; ≤100: {11,100}; ≤1000: none; overflow: {5000}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Max != 5000 {
		t.Errorf("max = %g, want 5000", s.Max)
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 3, 4})
	for v := 0.5; v <= 4; v += 0.5 {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["q"]
	if got := s.Quantile(0.5); got < 1.5 || got > 2.5 {
		t.Errorf("p50 = %g, want within [1.5, 2.5]", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Errorf("p100 = %g, want 4 (max)", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// TestRegistryGetOrCreate: repeated lookups return the same pointer, so
// instrument caching in package vars is sound.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter returned different pointers for one name")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("Gauge returned different pointers for one name")
	}
	h1 := r.Histogram("a", []float64{1, 2})
	h2 := r.Histogram("a", []float64{99}) // later bounds ignored
	if h1 != h2 {
		t.Error("Histogram returned different pointers for one name")
	}
	if len(h2.bounds) != 2 {
		t.Errorf("histogram bounds = %v, want the creation-time bounds", h2.bounds)
	}
}

// TestRegistryReset: instruments zero in place, cached pointers stay
// live.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", CountBuckets)
	c.Add(7)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after reset = %d, want 0", c.Value())
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("histogram after reset: count=%d sum=%g, want zeros", h.Count(), h.Sum())
	}
	c.Inc() // cached pointer still records into the registry
	if got := r.Snapshot().Counters["n"]; got != 1 {
		t.Errorf("cached counter detached from registry after reset: snapshot has %d, want 1", got)
	}
}

// TestSnapshotText: deterministic, sorted rendering.
func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(4.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var sb1, sb2 strings.Builder
	if err := r.Snapshot().WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Error("two snapshots of an idle registry rendered differently")
	}
	out := sb1.String()
	if !strings.Contains(out, "counter   a.count 1") ||
		!strings.Contains(out, "counter   b.count 2") ||
		!strings.Contains(out, "gauge     g 4.5") ||
		!strings.Contains(out, "histogram h count=1") {
		t.Errorf("unexpected snapshot text:\n%s", out)
	}
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Error("counters not sorted by name")
	}
}

// TestMetricNoAlloc is the no-op overhead guard for the metric side:
// recording into counters, gauges and histograms must never allocate.
func TestMetricNoAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.001)
	}); n != 0 {
		t.Errorf("metric updates allocate %v times per op, want 0", n)
	}
}
