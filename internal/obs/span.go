package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing. A span marks one timed region of the pipeline
// (an experiment run, a generation stage, a parallel sweep). Spans nest
// through context.Context: StartSpan derives a child of the context's
// current span and stores itself as the new current span, so the
// pipeline's natural call structure becomes the trace tree.
//
// The whole facility is gated on a process-wide Collector. With none
// installed (the default), StartSpan is one atomic load, allocates
// nothing, and returns a nil *Span whose methods are no-ops — the
// instrumented pipeline runs at full speed. Tests and the CLI's -trace
// flag install a RecordingCollector around the region they care about.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute.
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Span is one timed, attributed region. Fields are set by StartSpan and
// End; a span is owned by the goroutine that started it and must not be
// mutated concurrently.
type Span struct {
	// Name identifies the region (e.g. "experiment.table2").
	Name string
	// Parent is the enclosing span, nil for a root.
	Parent *Span
	// Depth is the nesting depth (0 for a root).
	Depth int
	// Start is the span's start time.
	Start time.Time
	// Duration is set by End.
	Duration time.Duration
	// Attrs are the span's annotations.
	Attrs []Attr

	col   Collector
	ended bool
}

// SetAttr appends attributes. No-op on a nil span, so instrumented code
// can call it unconditionally — though hot paths should guard with
// `if span != nil` to avoid evaluating attribute arguments.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// End stamps the duration and hands the finished span to the collector.
// No-op on a nil span; a second End is ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Duration = now().Sub(s.Start)
	s.col.SpanEnd(s)
}

// Collector receives finished spans. Implementations must be safe for
// concurrent use: parallel pipeline stages end spans from their own
// goroutines.
type Collector interface {
	SpanEnd(s *Span)
}

// now is the span clock, swappable by tests in this package.
var now = time.Now

type collectorBox struct{ c Collector }

var activeCollector atomic.Pointer[collectorBox]

// SetCollector installs c as the process-wide span collector (nil
// uninstalls) and returns a restore func that reinstates the previous
// collector. Collection is process-global on purpose: the pipeline is
// instrumented once, and whoever runs it (CLI flag, test) decides
// whether spans are recorded.
func SetCollector(c Collector) (restore func()) {
	var box *collectorBox
	if c != nil {
		box = &collectorBox{c: c}
	}
	prev := activeCollector.Swap(box)
	return func() { activeCollector.Store(prev) }
}

type spanCtxKey struct{}

// FromContext returns the context's current span, nil if none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a span named name as a child of the context's current
// span and returns a derived context carrying it. With no collector
// installed it returns (ctx, nil) without allocating; the nil span's
// SetAttr and End are no-ops.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	box := activeCollector.Load()
	if box == nil {
		return ctx, nil
	}
	parent := FromContext(ctx)
	s := &Span{
		Name:   name,
		Parent: parent,
		Start:  now(),
		Attrs:  attrs,
		col:    box.c,
	}
	if parent != nil {
		s.Depth = parent.Depth + 1
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// RecordingCollector accumulates finished spans in memory, in end
// order. It backs span tests and the CLI's -trace flag.
type RecordingCollector struct {
	mu    sync.Mutex
	spans []*Span
}

// SpanEnd implements Collector.
func (rc *RecordingCollector) SpanEnd(s *Span) {
	rc.mu.Lock()
	rc.spans = append(rc.spans, s)
	rc.mu.Unlock()
}

// Spans returns the finished spans collected so far, in end order.
func (rc *RecordingCollector) Spans() []*Span {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]*Span(nil), rc.spans...)
}

// WriteText renders the collected spans as an indented tree, ordered by
// start time, one line per span:
//
//	experiment.table2 12.4ms
//	  par.sweep 11.9ms tasks=5 workers=4
func (rc *RecordingCollector) WriteText(w io.Writer) error {
	spans := rc.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	for _, s := range spans {
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", s.Depth))
		b.WriteString(s.Name)
		fmt.Fprintf(&b, " %s", s.Duration)
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
