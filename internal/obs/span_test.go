package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps the span clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(time.Millisecond)
	return f.t
}

func withFakeClock(t *testing.T) {
	t.Helper()
	fc := &fakeClock{t: time.Unix(1000, 0)}
	prev := now
	now = fc.now
	t.Cleanup(func() { now = prev })
}

// TestSpanNesting: parent/child linkage, depth and attrs through the
// context.
func TestSpanNesting(t *testing.T) {
	withFakeClock(t)
	rc := &RecordingCollector{}
	defer SetCollector(rc)()

	ctx := context.Background()
	ctx, root := StartSpan(ctx, "root", String("kind", "test"))
	ctx2, child := StartSpan(ctx, "child")
	_, grand := StartSpan(ctx2, "grandchild", Int("i", 7))
	grand.End()
	child.End()
	root.SetAttr(Int("items", 3))
	root.End()

	spans := rc.Spans()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	// End order: innermost first.
	if spans[0].Name != "grandchild" || spans[1].Name != "child" || spans[2].Name != "root" {
		t.Fatalf("end order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Parent != spans[1] || spans[1].Parent != spans[2] || spans[2].Parent != nil {
		t.Error("parent linkage broken")
	}
	if spans[0].Depth != 2 || spans[1].Depth != 1 || spans[2].Depth != 0 {
		t.Errorf("depths = %d,%d,%d, want 2,1,0", spans[0].Depth, spans[1].Depth, spans[2].Depth)
	}
	if spans[2].Attrs[0] != (Attr{"kind", "test"}) || spans[2].Attrs[1] != (Attr{"items", "3"}) {
		t.Errorf("root attrs = %v", spans[2].Attrs)
	}
	if spans[0].Attrs[0] != (Attr{"i", "7"}) {
		t.Errorf("grandchild attrs = %v", spans[0].Attrs)
	}
	for _, s := range spans {
		if s.Duration <= 0 {
			t.Errorf("span %s duration = %v, want > 0", s.Name, s.Duration)
		}
	}
}

func TestFromContext(t *testing.T) {
	rc := &RecordingCollector{}
	defer SetCollector(rc)()
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Error("empty context should carry no span")
	}
	ctx, s := StartSpan(ctx, "x")
	if FromContext(ctx) != s {
		t.Error("derived context should carry the started span")
	}
	s.End()
}

// TestNoCollectorIsNoop: without a collector, StartSpan returns the
// context unchanged and a nil span whose methods are safe.
func TestNoCollectorIsNoop(t *testing.T) {
	defer SetCollector(nil)()
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "x")
	if ctx2 != ctx {
		t.Error("StartSpan with no collector must return the context unchanged")
	}
	if s != nil {
		t.Fatal("StartSpan with no collector must return a nil span")
	}
	s.SetAttr(String("k", "v")) // must not panic
	s.End()                     // must not panic
}

// TestNoCollectorNoAlloc is the no-op overhead guard for tracing: with
// no collector installed, the whole start/attr/end cycle allocates
// nothing.
func TestNoCollectorNoAlloc(t *testing.T) {
	defer SetCollector(nil)()
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		ctx2, s := StartSpan(ctx, "hot")
		if s != nil {
			s.SetAttr(Int("i", 1))
		}
		s.End()
		_ = ctx2
	}); n != 0 {
		t.Errorf("no-collector span cycle allocates %v times per op, want 0", n)
	}
}

func TestDoubleEndIgnored(t *testing.T) {
	rc := &RecordingCollector{}
	defer SetCollector(rc)()
	_, s := StartSpan(context.Background(), "once")
	s.End()
	s.End()
	if got := len(rc.Spans()); got != 1 {
		t.Fatalf("double End collected %d spans, want 1", got)
	}
}

// TestSetCollectorRestore: the restore func reinstates the previous
// collector, enabling nested scoped collection.
func TestSetCollectorRestore(t *testing.T) {
	outer := &RecordingCollector{}
	restoreOuter := SetCollector(outer)
	defer restoreOuter()

	inner := &RecordingCollector{}
	restoreInner := SetCollector(inner)
	_, s := StartSpan(context.Background(), "inner-only")
	s.End()
	restoreInner()

	_, s2 := StartSpan(context.Background(), "outer-only")
	s2.End()

	if len(inner.Spans()) != 1 || inner.Spans()[0].Name != "inner-only" {
		t.Error("inner collector should hold exactly the inner span")
	}
	if len(outer.Spans()) != 1 || outer.Spans()[0].Name != "outer-only" {
		t.Error("outer collector should hold exactly the post-restore span")
	}
}

// TestConcurrentSpans: spans ended from many goroutines land intact in
// the collector (run under -race).
func TestConcurrentSpans(t *testing.T) {
	rc := &RecordingCollector{}
	defer SetCollector(rc)()
	ctx := context.Background()
	var wg sync.WaitGroup
	const n = 64
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, "worker", Int("i", int64(i)))
			s.End()
		}(i)
	}
	wg.Wait()
	if got := len(rc.Spans()); got != n {
		t.Fatalf("collected %d spans, want %d", got, n)
	}
}

func TestWriteTextTree(t *testing.T) {
	withFakeClock(t)
	rc := &RecordingCollector{}
	defer SetCollector(rc)()
	ctx, root := StartSpan(context.Background(), "root")
	_, child := StartSpan(ctx, "child", Int("tasks", 5))
	child.End()
	root.End()

	var sb strings.Builder
	if err := rc.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "root ") {
		t.Errorf("first line should be the root: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  child ") || !strings.Contains(lines[1], "tasks=5") {
		t.Errorf("second line should be the indented child with attrs: %q", lines[1])
	}
}
