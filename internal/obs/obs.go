// Package obs is the repo's zero-dependency observability substrate:
// counters, gauges and fixed-bucket histograms held in a snapshot-able
// registry, plus lightweight span tracing propagated via
// context.Context (see span.go).
//
// Design rules, in order of priority:
//
//   - Cheap when unobserved. Metric updates are single atomic
//     operations (histograms add one CAS loop for the running sum) and
//     never allocate; span creation with no collector installed is one
//     atomic load and returns a nil *Span whose methods are no-ops.
//     Instrumented hot paths pay nanoseconds, so experiment outputs and
//     benchmark numbers are unaffected by the instrumentation being
//     compiled in.
//   - Deterministic reads. Snapshot returns every instrument under one
//     lock-protected walk with names sorted, so two snapshots of an
//     idle registry render identically.
//   - Instruments are get-or-create by name and the returned pointers
//     are stable for the registry's lifetime: callers cache them in
//     package variables and skip the map lookup on the hot path.
//
// The package deliberately has no exporter, no labels and no
// dependencies: the CLI renders snapshots as text or JSON (expvar), and
// the bench harness (leodivide bench) derives its machine-readable
// trajectory from its own timing rather than from these instruments.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 (worker counts, sizes, utilizations).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat is a float64 updated with CAS loops so histograms can
// maintain running sums and maxima without locks.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram: observation v lands in the
// first bucket whose upper bound is >= v, or in the overflow bucket
// past the last bound. Bounds are fixed at creation; alongside the
// bucket counts it tracks total count, sum and max.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	max    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.max.storeMax(v)
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// latency histograms built with DurationBuckets.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Canonical bucket sets. All are upper bounds; values past the last
// bound land in the overflow bucket.
var (
	// DurationBuckets cover 1µs to 60s, for latency histograms in
	// seconds.
	DurationBuckets = []float64{
		1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
	// SizeBuckets cover 256 B to 256 MB, for byte-size histograms.
	SizeBuckets = []float64{
		256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
	}
	// CountBuckets cover 1 to 10M, for task/item-count histograms.
	CountBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 1e3, 1e4, 1e5, 1e6, 1e7}
	// RatioBuckets cover (0,1] in tenths, for fractions such as worker
	// occupancy.
	RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
)

// Registry holds named instruments. Instruments are get-or-create: the
// first caller of a name fixes its kind (and a histogram's bounds), and
// every later call returns the same pointer, so hot paths cache the
// pointer once in a package variable.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the pipeline's instrumentation
// records into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on
// first use. Later calls return the existing histogram unchanged, so
// bounds passed after creation are ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument in place. Cached instrument pointers
// remain valid: they are zeroed, not replaced. Intended for tests and
// for the bench harness to isolate per-phase readings.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.store(0)
		h.max.store(math.Inf(-1))
	}
}
