package region

// The two shipped synthetic geographies. Both are declared as
// SyntheticSpec literals (the same structure the fuzzed JSON decoder
// accepts) and validated once at startup — a bad edit fails every test
// immediately instead of surfacing as a generation error later.
//
// Calibration intent, not census fidelity: brazil-rural models the
// sparse equatorial-to-mid-latitude band of Brazil's rural-connectivity
// roadmap (many small demand cells, low incomes, thin orbital latitude
// density near the equator), and taipei-dense models a compact
// high-density urban basin (few cells, very high per-cell counts,
// higher incomes) where the per-cell beam-stacking cap binds long
// before affordability. Totals are multiples of 1000 so the golden
// scales (0.02, 0.05) split exactly.

import "leodivide/internal/census"

// brazilRuralSpec is the "brazil-rural" geography: a sparse demand band
// from the Amazon basin down to the mid-latitude south, 27 synthetic
// districts under the ISO-3166 numeric prefix for Brazil (076 → "76").
var brazilRuralSpec = SyntheticSpec{
	Key:         "brazil-rural",
	Name:        "Brazil (rural band)",
	Description: "sparse equatorial-to-mid-latitude rural demand band, Brazil roadmap calibration",
	Resolution:  5,
	LatMinDeg:   -25,
	LatMaxDeg:   -3,
	LngMinDeg:   -61,
	LngMaxDeg:   -40,

	TotalLocations: 1_500_000,
	Cells:          900,
	DensityAnchors: []DensityAnchor{
		{Q: 0, Weight: 1},
		{Q: 0.6, Weight: 8},
		{Q: 0.9, Weight: 40},
		{Q: 1, Weight: 120},
	},
	Peaks: []SyntheticPeak{
		{Locations: 30_000, LatDeg: -3.8, LngDeg: -60.2},  // upper Amazon basin
		{Locations: 24_000, LatDeg: -15.8, LngDeg: -47.9}, // central plateau
		{Locations: 18_000, LatDeg: -23.4, LngDeg: -51.9}, // southern farm belt
	},

	Districts:      27,
	DistrictPrefix: "76",
	RegionAbbr:     "BR",
	IncomeAnchors: []census.QuantileAnchor{
		{Q: 0, Income: 5_600},
		{Q: 0.3, Income: 11_200},
		{Q: 0.7, Income: 21_500},
		{Q: 0.9, Income: 38_000},
		{Q: 1, Income: 96_000},
	},
}

// taipeiDenseSpec is the "taipei-dense" geography: a compact urban
// basin of very high per-cell demand, 12 synthetic districts under the
// ISO-3166 numeric prefix for Taiwan (158 → "15").
var taipeiDenseSpec = SyntheticSpec{
	Key:         "taipei-dense",
	Name:        "Taipei (dense urban)",
	Description: "compact high-density urban basin, Starlink-Taipei calibration",
	Resolution:  5,
	LatMinDeg:   24.4,
	LatMaxDeg:   25.6,
	LngMinDeg:   121.0,
	LngMaxDeg:   122.2,

	TotalLocations: 600_000,
	Cells:          16,
	DensityAnchors: []DensityAnchor{
		{Q: 0, Weight: 400},
		{Q: 0.8, Weight: 1_500},
		{Q: 1, Weight: 2_600},
	},
	Peaks: []SyntheticPeak{
		{Locations: 90_000, LatDeg: 25.05, LngDeg: 121.55}, // city core
		{Locations: 60_000, LatDeg: 24.95, LngDeg: 121.22}, // western corridor
	},

	Districts:      12,
	DistrictPrefix: "15",
	RegionAbbr:     "TW",
	IncomeAnchors: []census.QuantileAnchor{
		{Q: 0, Income: 17_800},
		{Q: 0.25, Income: 33_500},
		{Q: 0.6, Income: 52_000},
		{Q: 0.9, Income: 86_000},
		{Q: 1, Income: 205_000},
	},
}

// BrazilRural returns the shipped "brazil-rural" synthetic region.
func BrazilRural() Region { return mustSynthetic(brazilRuralSpec) }

// TaipeiDense returns the shipped "taipei-dense" synthetic region.
func TaipeiDense() Region { return mustSynthetic(taipeiDenseSpec) }

func mustSynthetic(spec SyntheticSpec) Region {
	r, err := NewSynthetic(spec)
	if err != nil {
		panic(err) // shipped specs are validated by the package tests
	}
	return r
}
