package region

import (
	"math"
	"testing"
)

func TestRegistry(t *testing.T) {
	regions := Regions()
	if len(regions) != 3 {
		t.Fatalf("Regions() returned %d regions, want 3", len(regions))
	}
	if regions[0].Key() != DefaultKey {
		t.Errorf("the default region %q must lead the registry, got %q", DefaultKey, regions[0].Key())
	}
	want := []string{"us", "brazil-rural", "taipei-dense"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		r, ok := ByName(n)
		if !ok {
			t.Fatalf("ByName(%q) not found", n)
		}
		if r.Key() != n {
			t.Errorf("ByName(%q).Key() = %q", n, r.Key())
		}
		if r.Name() == "" || r.Description() == "" {
			t.Errorf("region %q missing a display name or description", n)
		}
	}
	if _, ok := ByName("atlantis"); ok {
		t.Error("ByName accepted an unknown region")
	}
	if _, ok := ByName(""); ok {
		t.Error("ByName accepted the empty string")
	}
}

func TestGenConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  GenConfig
		ok   bool
	}{
		{"full scale", GenConfig{Seed: 1, Scale: 1}, true},
		{"small scale", GenConfig{Seed: 1, Scale: 0.02, Parallelism: 8}, true},
		{"zero scale", GenConfig{Seed: 1, Scale: 0}, false},
		{"negative scale", GenConfig{Seed: 1, Scale: -0.5}, false},
		{"scale above one", GenConfig{Seed: 1, Scale: 1.01}, false},
		{"nan scale", GenConfig{Seed: 1, Scale: math.NaN()}, false},
		{"inf scale", GenConfig{Seed: 1, Scale: math.Inf(1)}, false},
		{"negative parallelism", GenConfig{Seed: 1, Scale: 0.5, Parallelism: -2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() accepted an invalid config")
			}
		})
	}
}
