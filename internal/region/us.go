package region

// The "us" region: the calibrated BDC + census pipeline behind a
// Region. This is a relocation, not a rewrite — the scale application,
// the cell generation, and the income assignment (including the
// per-county fnv hash jitter that orders the poverty ranking) are the
// exact statements the root facade's GenerateDataset used to execute
// inline, so the output is byte-identical to the legacy path at every
// (seed, scale, parallelism). The golden corpus enforces that identity.

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"leodivide/internal/bdc"
	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/obs"
	"leodivide/internal/par"
	"leodivide/internal/usgeo"
)

var metricIncomeSecs = obs.Default.Histogram("gen.assign_incomes.seconds", obs.DurationBuckets)

// usRegion wraps the calibrated BDC generator configuration and income
// anchors. The default instance (US) carries the paper-calibrated
// configuration; USWith builds advanced variants for the facade's
// WithGenConfig/WithIncomeAnchors options.
type usRegion struct {
	cfg     bdc.GenConfig
	anchors []census.QuantileAnchor
}

// US returns the default region: the paper-calibrated United States
// pipeline.
func US() Region {
	return usRegion{cfg: bdc.DefaultGenConfig(), anchors: census.DefaultIncomeAnchors()}
}

// USWith returns the US region with a replacement generator
// configuration and income anchors (the facade's advanced options).
func USWith(cfg bdc.GenConfig, anchors []census.QuantileAnchor) Region {
	return usRegion{cfg: cfg, anchors: anchors}
}

func (usRegion) Key() string  { return DefaultKey }
func (usRegion) Name() string { return "United States" }
func (usRegion) Description() string {
	return "calibrated US un(der)served broadband map (BDC + census pipeline)"
}

// Generate runs the legacy pipeline: scale the BDC configuration,
// synthesize cells, build the distribution, assign county incomes.
func (u usRegion) Generate(ctx context.Context, g GenConfig) (Output, error) {
	if err := g.Validate(); err != nil {
		return Output{}, err
	}
	cfg := u.cfg
	cfg.Seed = g.Seed
	cfg.Parallelism = g.Parallelism
	if g.Scale < 1 {
		cfg.TotalLocations = int(float64(cfg.TotalLocations) * g.Scale)
		peaks := make([]bdc.PeakCell, len(cfg.Peaks))
		copy(peaks, cfg.Peaks)
		for i := range peaks {
			peaks[i].Locations = int(float64(peaks[i].Locations) * g.Scale)
			if peaks[i].Locations < 1 {
				peaks[i].Locations = 1
			}
		}
		cfg.Peaks = peaks
	}
	cells, err := bdc.GenerateCells(ctx, cfg)
	if err != nil {
		return Output{}, err
	}
	dist, err := demand.NewDistribution(cells)
	if err != nil {
		return Output{}, err
	}
	incomes, err := assignIncomes(ctx, dist, u.anchors, g.Seed, cfg.Parallelism)
	if err != nil {
		return Output{}, err
	}
	return Output{Cells: cells, Dist: dist, Incomes: incomes, Resolution: cfg.Resolution}, nil
}

// assignIncomes distributes county incomes using a deterministic
// poverty ordering: state rural weight (a proxy for rural poverty) plus
// a per-county hash jitter. County weights are computed concurrently
// over the sorted FIPS list, so the assignment input (and therefore the
// table) is identical at every worker count.
func assignIncomes(ctx context.Context, dist *demand.Distribution, anchors []census.QuantileAnchor, seed int64, workers int) (*census.Table, error) {
	//lint:ignore detrand wall-clock feeds the generation span timing only, never the dataset
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "gen.assign_incomes")
	defer func() {
		metricIncomeSecs.ObserveSince(start)
		span.End()
	}()
	weights := dist.CountyWeights()
	fipsList := make([]string, 0, len(weights))
	for fips := range weights {
		fipsList = append(fipsList, fips)
	}
	sort.Strings(fipsList)
	cw, err := par.Map(ctx, workers, len(fipsList), func(i int) (census.CountyWeight, error) {
		fips := fipsList[i]
		abbr, err := stateOfFIPS(fips)
		if err != nil {
			return census.CountyWeight{}, err
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%d:%s", seed, fips)
		jitter := float64(h.Sum64()%10000) / 10000
		return census.CountyWeight{
			FIPS:        fips,
			StateAbbr:   abbr,
			Weight:      float64(weights[fips]),
			PovertyRank: jitter,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return census.AssignIncomes(cw, anchors)
}

// stateOfFIPS maps a county FIPS prefix to a state abbreviation via the
// usgeo tables. An unknown or too-short prefix is a hard error: a
// silently empty state abbreviation used to flow into the income table
// and skew the poverty ordering without any signal. The lookup table is
// built once under sync.Once — income assignment calls this from pool
// workers, so unsynchronized lazy initialization would race.
func stateOfFIPS(fips string) (string, error) {
	if len(fips) < 2 {
		return "", fmt.Errorf("region: county FIPS %q too short for a state prefix", fips)
	}
	stateFIPSOnce.Do(func() {
		m := make(map[string]string)
		for _, s := range usgeo.States() {
			m[s.FIPS] = s.Abbr
		}
		stateFIPSByPrefix = m
	})
	abbr, ok := stateFIPSByPrefix[fips[:2]]
	if !ok {
		return "", fmt.Errorf("region: unknown state FIPS prefix %q in county FIPS %q", fips[:2], fips)
	}
	return abbr, nil
}

var (
	stateFIPSOnce     sync.Once
	stateFIPSByPrefix map[string]string
)
