package region

import (
	"encoding/json"
	"testing"
)

// FuzzRegionSpec hammers the strict spec decoder: whatever the bytes —
// malformed JSON, NaN/Inf densities smuggled through hand-edited
// files, negative cell counts, out-of-range latitudes — it must either
// return a spec that passes Validate or an error. It must never panic.
func FuzzRegionSpec(f *testing.F) {
	for _, spec := range []SyntheticSpec{brazilRuralSpec, taipeiDenseSpec} {
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"key":"x","cells":-3}`))
	f.Add([]byte(`{"key":"x","lat_min_deg":-95,"lat_max_deg":200}`))
	f.Add([]byte(`{"key":"x","density_anchors":[{"q":0,"weight":1e309}]}`))
	f.Add([]byte(`{"key":"x","total_locations":100}{"trailing":true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSyntheticSpec(data)
		if err != nil {
			return
		}
		// An accepted spec must be coherent: Validate is the acceptance
		// criterion ParseSyntheticSpec promises.
		if verr := spec.Validate(); verr != nil {
			t.Errorf("ParseSyntheticSpec accepted a spec that fails Validate: %v\ninput: %q", verr, data)
		}
	})
}
