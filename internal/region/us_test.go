package region

import (
	"strings"
	"testing"
)

// TestStateOfFIPS pins the hard-error contract on county FIPS prefixes
// (relocated here with the income-assignment pipeline): before this, an
// unknown prefix silently produced an empty state abbreviation that
// skewed the income-assignment poverty ordering.
func TestStateOfFIPS(t *testing.T) {
	cases := []struct {
		fips    string
		want    string
		wantErr string
	}{
		{fips: "01001", want: "AL"},
		{fips: "06037", want: "CA"},
		{fips: "48201", want: "TX"},
		{fips: "99123", wantErr: `unknown state FIPS prefix "99"`},
		{fips: "00001", wantErr: `unknown state FIPS prefix "00"`},
		{fips: "7", wantErr: "too short"},
		{fips: "", wantErr: "too short"},
	}
	for _, tc := range cases {
		abbr, err := stateOfFIPS(tc.fips)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("stateOfFIPS(%q) err = %v, want mention of %q", tc.fips, err, tc.wantErr)
			}
			continue
		}
		if err != nil || abbr != tc.want {
			t.Errorf("stateOfFIPS(%q) = %q, %v, want %q", tc.fips, abbr, err, tc.want)
		}
	}
}
