// Package region makes the demand geography pluggable: a Region yields
// hexgrid demand cells, per-cell location counts and an income
// distribution, and the root facade's GenerateDataset consumes that
// output instead of calling the BDC/census pipeline directly.
//
// Three regions are declared:
//
//   - "us" wraps the existing calibrated BDC + census pipeline and is
//     byte-identical to the legacy generation path (the golden corpus
//     proves it).
//   - "brazil-rural" is a deterministic seeded synthetic geography: a
//     sparse equatorial-to-mid-latitude demand band in the style of
//     Brazil's rural-connectivity roadmap.
//   - "taipei-dense" is a compact high-density urban geography where
//     the per-cell beam-stacking cap binds long before affordability.
//
// The determinism contract of the repository applies unchanged: every
// region's output is a pure function of (seed, scale) and is
// byte-identical at every Parallelism setting. Synthetic regions draw
// all randomness from a single rand.New(rand.NewSource(seed)) stream
// consumed serially in a fixed order, mirroring the BDC generator's
// idiom; only RNG-free phases (grid enumeration) fan out, collected in
// canonical face order.
package region

import (
	"context"
	"fmt"
	"math"

	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/hexgrid"
)

// GenConfig is the per-generation parameter set every Region receives:
// the dataset identity (seed, scale) plus the worker bound. Regions
// must produce byte-identical output at every Parallelism value.
type GenConfig struct {
	// Seed drives all pseudo-randomness; equal seeds give identical
	// outputs.
	Seed int64
	// Scale shrinks the region to this fraction of its declared total,
	// in (0, 1]. Peak cells scale too, so distribution shape is
	// preserved.
	Scale float64
	// Parallelism bounds the worker count for RNG-free phases (0 = one
	// worker per CPU, 1 = the serial path). Output is identical at
	// every setting.
	Parallelism int
}

// Validate reports whether the generation parameters are usable.
func (g GenConfig) Validate() error {
	if math.IsNaN(g.Scale) || math.IsInf(g.Scale, 0) || g.Scale <= 0 || g.Scale > 1 {
		return fmt.Errorf("region: scale must be in (0,1], got %v", g.Scale)
	}
	if g.Parallelism < 0 {
		return fmt.Errorf("region: parallelism must be >= 0, got %d", g.Parallelism)
	}
	return nil
}

// Output is what a region yields: the demand cells, their prebuilt
// distribution, the income table weighted by location counts, and the
// grid resolution the cells live on. Dist is always non-nil and built
// from exactly Cells, so consumers need not rebuild it.
type Output struct {
	Cells      []demand.Cell
	Dist       *demand.Distribution
	Incomes    *census.Table
	Resolution hexgrid.Resolution
}

// Region is one pluggable demand/income geography.
type Region interface {
	// Key is the canonical lowercase identifier used in scenario
	// selectors, canonical cache keys and the serving API.
	Key() string
	// Name is the human-readable display name.
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Generate synthesizes the region's dataset. The seed fully
	// determines the result regardless of GenConfig.Parallelism.
	Generate(ctx context.Context, cfg GenConfig) (Output, error)
}

// DefaultKey is the canonical key of the default region.
const DefaultKey = "us"

// Regions returns the declared regions in canonical order. The first
// entry is the default (the calibrated US pipeline).
func Regions() []Region {
	return []Region{US(), BrazilRural(), TaipeiDense()}
}

// Names returns the canonical keys of the declared regions, in
// canonical order.
func Names() []string {
	regions := Regions()
	names := make([]string, len(regions))
	for i, r := range regions {
		names[i] = r.Key()
	}
	return names
}

// ByName resolves a canonical key to its region.
func ByName(name string) (Region, bool) {
	for _, r := range Regions() {
		if r.Key() == name {
			return r, true
		}
	}
	return nil, false
}
