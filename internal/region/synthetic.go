package region

// Synthetic regions: deterministic seeded geographies declared as data
// (SyntheticSpec) rather than code. The generator mirrors the BDC
// idiom exactly — peaks pinned first, body counts from an anchored
// shape function, candidate sites drawn by a serial seeded shuffle,
// counts attached through rng.Perm, cells sorted by ID — so synthetic
// output is byte-identical at every worker count for the same reasons
// the US pipeline is: every RNG decision runs serially in a fixed
// order, and the only fan-out (grid enumeration) is RNG-free and
// collected in canonical face order.
//
// The body-count rule differs from BDC in one deliberate way: the
// number of demand cells is fixed by the spec instead of derived from
// the total, and the total is split over those cells proportionally to
// the anchored shape (largest-remainder rounding, minimum 1). That
// makes cell *sites* a function of the seed alone — scaling the total
// rescales per-cell counts over the same geography — which is the
// demand-doubling invariant the metamorphic suite pins.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"

	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/par"
)

// DensityAnchor pins the synthetic per-cell demand shape at one
// quantile: cell k of n receives a share proportional to the shape
// evaluated at (k+0.5)/n, interpolated log-linearly between anchors.
type DensityAnchor struct {
	Q      float64 `json:"q"`
	Weight float64 `json:"weight"`
}

// SyntheticPeak pins one head cell at a fixed geographic anchor, like
// bdc.PeakCell.
type SyntheticPeak struct {
	Locations int     `json:"locations"`
	LatDeg    float64 `json:"lat_deg"`
	LngDeg    float64 `json:"lng_deg"`
}

// SyntheticSpec declares a synthetic region: a lat/lng demand
// footprint on the hexgrid, a total location count with an anchored
// per-cell shape, optional pinned peaks, and an income distribution
// over synthetic districts. Obtain validated instances from
// ParseSyntheticSpec or validate hand-built ones with Validate before
// generating.
type SyntheticSpec struct {
	// Key is the canonical lowercase identifier (scenario selectors,
	// cache keys); Name and Description are for listings.
	Key         string `json:"key"`
	Name        string `json:"name"`
	Description string `json:"description"`

	// Resolution is the service-cell grid resolution.
	Resolution hexgrid.Resolution `json:"resolution"`

	// The demand footprint: cells whose centers fall in this box are
	// candidates. Latitudes in [-90, 90], longitudes in [-180, 180],
	// min strictly below max.
	LatMinDeg float64 `json:"lat_min_deg"`
	LatMaxDeg float64 `json:"lat_max_deg"`
	LngMinDeg float64 `json:"lng_min_deg"`
	LngMaxDeg float64 `json:"lng_max_deg"`

	// TotalLocations is the region's un(der)served total at scale 1;
	// Cells is the fixed number of body demand cells the total spreads
	// over.
	TotalLocations int `json:"total_locations"`
	Cells          int `json:"cells"`

	// DensityAnchors shape the per-cell count distribution (strictly
	// ascending Q spanning exactly 0..1, positive non-decreasing
	// weights).
	DensityAnchors []DensityAnchor `json:"density_anchors"`

	// Peaks are pinned head cells; their anchors must lie inside the
	// footprint box.
	Peaks []SyntheticPeak `json:"peaks,omitempty"`

	// Districts is the number of synthetic income districts the cells
	// partition into; DistrictPrefix (two digits) prefixes the 5-digit
	// district codes, and RegionAbbr labels them in the income table.
	Districts      int    `json:"districts"`
	DistrictPrefix string `json:"district_prefix"`
	RegionAbbr     string `json:"region_abbr"`

	// IncomeAnchors pin the location-weighted income quantile function
	// (census.IncomeQuantile rules: strictly increasing in both Q and
	// income).
	IncomeAnchors []census.QuantileAnchor `json:"income_anchors"`
}

// ParseSyntheticSpec decodes a spec strictly: unknown fields, trailing
// data, and any Validate violation are errors. It never panics,
// whatever the input — the FuzzRegionSpec target enforces that.
func ParseSyntheticSpec(data []byte) (SyntheticSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SyntheticSpec
	if err := dec.Decode(&s); err != nil {
		return SyntheticSpec{}, fmt.Errorf("region: synthetic spec: %w", err)
	}
	if dec.More() {
		return SyntheticSpec{}, fmt.Errorf("region: synthetic spec: trailing data after JSON object")
	}
	if err := s.Validate(); err != nil {
		return SyntheticSpec{}, err
	}
	return s, nil
}

func validRegionKey(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return key[0] != '-' && key[len(key)-1] != '-'
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports whether the spec is internally coherent. Every
// numeric field is checked for NaN/Inf explicitly: JSON cannot encode
// them, but hand-built specs can carry them, and they must never reach
// the generator.
func (s SyntheticSpec) Validate() error {
	if !validRegionKey(s.Key) {
		return fmt.Errorf("region: invalid region key %q (want lowercase letters, digits, interior hyphens)", s.Key)
	}
	if s.Name == "" {
		return fmt.Errorf("region: spec %q has no name", s.Key)
	}
	if !s.Resolution.Valid() {
		return fmt.Errorf("region: spec %q: invalid resolution %d", s.Key, s.Resolution)
	}
	for _, v := range []float64{s.LatMinDeg, s.LatMaxDeg, s.LngMinDeg, s.LngMaxDeg} {
		if !finite(v) {
			return fmt.Errorf("region: spec %q: non-finite footprint bound %v", s.Key, v)
		}
	}
	if s.LatMinDeg < -90 || s.LatMaxDeg > 90 || s.LatMinDeg >= s.LatMaxDeg {
		return fmt.Errorf("region: spec %q: latitude bounds [%v, %v] must satisfy -90 <= min < max <= 90",
			s.Key, s.LatMinDeg, s.LatMaxDeg)
	}
	if s.LngMinDeg < -180 || s.LngMaxDeg > 180 || s.LngMinDeg >= s.LngMaxDeg {
		return fmt.Errorf("region: spec %q: longitude bounds [%v, %v] must satisfy -180 <= min < max <= 180",
			s.Key, s.LngMinDeg, s.LngMaxDeg)
	}
	if s.TotalLocations <= 0 {
		return fmt.Errorf("region: spec %q: total locations must be positive, got %d", s.Key, s.TotalLocations)
	}
	if s.Cells <= 0 {
		return fmt.Errorf("region: spec %q: cell count must be positive, got %d", s.Key, s.Cells)
	}
	if len(s.DensityAnchors) < 2 {
		return fmt.Errorf("region: spec %q: need at least 2 density anchors", s.Key)
	}
	for i, a := range s.DensityAnchors {
		if !finite(a.Q) || !finite(a.Weight) {
			return fmt.Errorf("region: spec %q: non-finite density anchor at index %d", s.Key, i)
		}
		if a.Weight <= 0 {
			return fmt.Errorf("region: spec %q: density weight %v at index %d must be positive", s.Key, a.Weight, i)
		}
		if i > 0 {
			prev := s.DensityAnchors[i-1]
			if a.Q <= prev.Q || a.Weight < prev.Weight {
				return fmt.Errorf("region: spec %q: density anchors must increase at index %d", s.Key, i)
			}
		}
	}
	//lint:ignore floatcmp validates exact endpoints of hand-authored spec anchors, not computed floats
	if s.DensityAnchors[0].Q != 0 || s.DensityAnchors[len(s.DensityAnchors)-1].Q != 1 {
		return fmt.Errorf("region: spec %q: density anchors must span Q=0..1", s.Key)
	}
	peakSum := 0
	for i, p := range s.Peaks {
		if p.Locations <= 0 {
			return fmt.Errorf("region: spec %q: peak %d locations must be positive, got %d", s.Key, i, p.Locations)
		}
		if !finite(p.LatDeg) || !finite(p.LngDeg) {
			return fmt.Errorf("region: spec %q: peak %d has a non-finite anchor", s.Key, i)
		}
		if p.LatDeg < s.LatMinDeg || p.LatDeg > s.LatMaxDeg || p.LngDeg < s.LngMinDeg || p.LngDeg > s.LngMaxDeg {
			return fmt.Errorf("region: spec %q: peak %d anchor (%v, %v) outside the footprint box",
				s.Key, i, p.LatDeg, p.LngDeg)
		}
		peakSum += p.Locations
	}
	if peakSum >= s.TotalLocations {
		return fmt.Errorf("region: spec %q: peaks (%d) exceed total (%d)", s.Key, peakSum, s.TotalLocations)
	}
	if s.Districts < 1 || s.Districts > s.Cells+len(s.Peaks) {
		return fmt.Errorf("region: spec %q: districts %d outside [1, %d cells]", s.Key, s.Districts, s.Cells+len(s.Peaks))
	}
	if len(s.DistrictPrefix) != 2 || s.DistrictPrefix[0] < '0' || s.DistrictPrefix[0] > '9' ||
		s.DistrictPrefix[1] < '0' || s.DistrictPrefix[1] > '9' {
		return fmt.Errorf("region: spec %q: district prefix %q must be exactly two digits", s.Key, s.DistrictPrefix)
	}
	if s.Districts > 1000 {
		return fmt.Errorf("region: spec %q: districts %d exceed the 3-digit code space", s.Key, s.Districts)
	}
	if s.RegionAbbr == "" {
		return fmt.Errorf("region: spec %q has no region abbreviation", s.Key)
	}
	if _, err := census.IncomeQuantile(s.IncomeAnchors, 0.5); err != nil {
		return fmt.Errorf("region: spec %q: %w", s.Key, err)
	}
	return nil
}

// shapeAt evaluates the density shape at q in [0,1], interpolating
// log-linearly between anchors (weights are validated positive).
func (s SyntheticSpec) shapeAt(q float64) float64 {
	a := s.DensityAnchors
	if q <= 0 {
		return a[0].Weight
	}
	if q >= 1 {
		return a[len(a)-1].Weight
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].Q > q }) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(a)-1 {
		i = len(a) - 2
	}
	lo, hi := a[i], a[i+1]
	t := (q - lo.Q) / (hi.Q - lo.Q)
	return math.Exp(math.Log(lo.Weight) + t*(math.Log(hi.Weight)-math.Log(lo.Weight)))
}

// bodyCounts splits total over exactly n cells proportionally to the
// anchored shape: one location per cell guaranteed, the remainder
// apportioned by floors, leftovers by descending fractional part with
// an index tie-break. Pure arithmetic — no RNG — so the split is a
// function of (total, n, anchors) alone. Counts come back ascending.
func (s SyntheticSpec) bodyCounts(total, n int) ([]int, error) {
	if total < n {
		return nil, fmt.Errorf("region: spec %q: %d body locations cannot cover %d cells (scale too small)",
			s.Key, total, n)
	}
	weights := make([]float64, n)
	sumW := 0.0
	for k := 0; k < n; k++ {
		weights[k] = s.shapeAt((float64(k) + 0.5) / float64(n))
		sumW += weights[k]
	}
	counts := make([]int, n)
	rem := total - n
	type leftover struct {
		idx  int
		frac float64
	}
	fracs := make([]leftover, n)
	assigned := 0
	for k := 0; k < n; k++ {
		share := float64(rem) * weights[k] / sumW
		whole := int(math.Floor(share))
		counts[k] = 1 + whole
		assigned += whole
		fracs[k] = leftover{idx: k, frac: share - float64(whole)}
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].frac > fracs[j].frac {
			return true
		}
		if fracs[i].frac < fracs[j].frac {
			return false
		}
		return fracs[i].idx < fracs[j].idx
	})
	for i := 0; i < rem-assigned; i++ {
		counts[fracs[i].idx]++
	}
	sort.Ints(counts)
	return counts, nil
}

// synthetic is the Region over a validated spec.
type synthetic struct {
	spec SyntheticSpec
}

// NewSynthetic returns the Region a spec declares, validating it
// first.
func NewSynthetic(spec SyntheticSpec) (Region, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return synthetic{spec: spec}, nil
}

func (r synthetic) Key() string         { return r.spec.Key }
func (r synthetic) Name() string        { return r.spec.Name }
func (r synthetic) Description() string { return r.spec.Description }

// Generate synthesizes the region: peaks pinned first, body sites
// drawn by one serial seeded shuffle over the canonical candidate
// list, counts attached through rng.Perm, cells sorted by ID.
func (r synthetic) Generate(ctx context.Context, g GenConfig) (Output, error) {
	if err := g.Validate(); err != nil {
		return Output{}, err
	}
	s := r.spec
	total := s.TotalLocations
	peaks := s.Peaks
	if g.Scale < 1 {
		total = int(float64(total) * g.Scale)
		scaled := make([]SyntheticPeak, len(peaks))
		copy(scaled, peaks)
		for i := range scaled {
			scaled[i].Locations = int(float64(scaled[i].Locations) * g.Scale)
			if scaled[i].Locations < 1 {
				scaled[i].Locations = 1
			}
		}
		peaks = scaled
	}

	rng := rand.New(rand.NewSource(g.Seed))
	var cells []demand.Cell
	used := make(map[hexgrid.CellID]bool)
	peakSum := 0
	for _, p := range peaks {
		id := hexgrid.LatLngToCell(geo.LatLng{Lat: p.LatDeg, Lng: p.LngDeg}, s.Resolution)
		if used[id] {
			return Output{}, fmt.Errorf("region: spec %q: peak anchors collide in cell %v", s.Key, id)
		}
		used[id] = true
		cells = append(cells, demand.Cell{ID: id, Locations: p.Locations, Center: id.LatLng()})
		peakSum += p.Locations
	}
	if peakSum >= total {
		return Output{}, fmt.Errorf("region: spec %q: scaled peaks (%d) exceed scaled total (%d)", s.Key, peakSum, total)
	}
	counts, err := s.bodyCounts(total-peakSum, s.Cells)
	if err != nil {
		return Output{}, err
	}

	candidates, err := boxCells(ctx, s, g.Parallelism)
	if err != nil {
		return Output{}, err
	}
	pool := make([]hexgrid.CellID, 0, len(candidates))
	for _, id := range candidates {
		if !used[id] {
			pool = append(pool, id)
		}
	}
	if len(pool) < len(counts) {
		return Output{}, fmt.Errorf("region: spec %q: footprint holds only %d free cells, need %d",
			s.Key, len(pool), len(counts))
	}
	rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
	perm := rng.Perm(len(counts))
	for i, id := range pool[:len(counts)] {
		cells = append(cells, demand.Cell{ID: id, Locations: counts[perm[i]], Center: id.LatLng()})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })

	// Districts partition the ID-sorted cells into contiguous blocks, so
	// a district is a coherent slice of the geography and the codes are
	// a pure function of the sorted order.
	for i := range cells {
		d := i * s.Districts / len(cells)
		cells[i].CountyFIPS = fmt.Sprintf("%s%03d", s.DistrictPrefix, d)
	}
	dist, err := demand.NewDistribution(cells)
	if err != nil {
		return Output{}, err
	}
	incomes, err := districtIncomes(dist, s, g.Seed)
	if err != nil {
		return Output{}, err
	}
	return Output{Cells: cells, Dist: dist, Incomes: incomes, Resolution: s.Resolution}, nil
}

// districtIncomes assigns the anchored income quantile function over
// the synthetic districts, ranked by the same seed-keyed fnv jitter the
// US pipeline uses for counties — deterministic, and independent of
// geography so income and demand density stay uncorrelated.
func districtIncomes(dist *demand.Distribution, s SyntheticSpec, seed int64) (*census.Table, error) {
	weights := dist.CountyWeights()
	codes := make([]string, 0, len(weights))
	for code := range weights {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	cw := make([]census.CountyWeight, len(codes))
	for i, code := range codes {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d:%s", seed, code)
		cw[i] = census.CountyWeight{
			FIPS:        code,
			StateAbbr:   s.RegionAbbr,
			Weight:      float64(weights[code]),
			PovertyRank: float64(h.Sum64()%10000) / 10000,
		}
	}
	return census.AssignIncomes(cw, s.IncomeAnchors)
}

// boxCells enumerates the grid cells whose centers fall inside the
// spec's footprint box, in canonical grid order: the 20 icosahedron
// faces are walked concurrently (RNG-free) and concatenated in face
// order, exactly the bdc.usCells pattern. Enumerations are cached per
// (resolution, box).
type boxKey struct {
	res                            hexgrid.Resolution
	latMin, latMax, lngMin, lngMax float64
}

var (
	boxCellsMu    sync.Mutex
	boxCellsCache = make(map[boxKey][]hexgrid.CellID)
)

func boxCells(ctx context.Context, s SyntheticSpec, workers int) ([]hexgrid.CellID, error) {
	key := boxKey{res: s.Resolution, latMin: s.LatMinDeg, latMax: s.LatMaxDeg, lngMin: s.LngMinDeg, lngMax: s.LngMaxDeg}
	boxCellsMu.Lock()
	defer boxCellsMu.Unlock()
	if ids, ok := boxCellsCache[key]; ok {
		return ids, nil
	}
	shards, err := par.Map(ctx, workers, 20, func(f int) ([]hexgrid.CellID, error) {
		var shard []hexgrid.CellID
		hexgrid.ForEachCellOnFace(s.Resolution, f, func(id hexgrid.CellID) {
			c := id.LatLng()
			if c.Lat < s.LatMinDeg || c.Lat > s.LatMaxDeg || c.Lng < s.LngMinDeg || c.Lng > s.LngMaxDeg {
				return
			}
			shard = append(shard, id)
		})
		return shard, nil
	})
	if err != nil {
		return nil, err
	}
	var ids []hexgrid.CellID
	for _, shard := range shards {
		ids = append(ids, shard...)
	}
	boxCellsCache[key] = ids
	return ids, nil
}
