package region

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"leodivide/internal/census"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

// testSpec returns a small valid spec for mutation in table tests.
func testSpec() SyntheticSpec {
	return SyntheticSpec{
		Key:            "test-band",
		Name:           "Test Band",
		Description:    "a small synthetic band for tests",
		Resolution:     5,
		LatMinDeg:      10,
		LatMaxDeg:      20,
		LngMinDeg:      -50,
		LngMaxDeg:      -30,
		TotalLocations: 50_000,
		Cells:          40,
		DensityAnchors: []DensityAnchor{{Q: 0, Weight: 1}, {Q: 1, Weight: 30}},
		Peaks:          []SyntheticPeak{{Locations: 2000, LatDeg: 15, LngDeg: -40}},
		Districts:      5,
		DistrictPrefix: "90",
		RegionAbbr:     "ZZ",
		IncomeAnchors: []census.QuantileAnchor{
			{Q: 0, Income: 8000}, {Q: 0.5, Income: 20000}, {Q: 1, Income: 90000},
		},
	}
}

func TestParseSyntheticSpecRoundTrip(t *testing.T) {
	for _, spec := range []SyntheticSpec{testSpec(), brazilRuralSpec, taipeiDenseSpec} {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Key, err)
		}
		got, err := ParseSyntheticSpec(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", spec.Key, err)
		}
		if !reflect.DeepEqual(got, spec) {
			t.Errorf("%s: round trip drifted:\n got %+v\nwant %+v", spec.Key, got, spec)
		}
	}
}

// TestParseSyntheticSpecRejects pins the decoder's error surface: every
// malformed input errors (never panics) with a diagnosable message.
func TestParseSyntheticSpecRejects(t *testing.T) {
	mutate := func(fn func(*SyntheticSpec)) string {
		s := testSpec()
		fn(&s)
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", "not a spec", "synthetic spec"},
		{"unknown field", `{"key":"x","warp":9}`, "unknown field"},
		{"trailing data", mutate(func(*SyntheticSpec) {}) + `{"again":true}`, "trailing data"},
		{"nan density weight", `{"key":"x","density_anchors":[{"q":0,"weight":NaN}]}`, "synthetic spec"},
		{"inf latitude", `{"key":"x","lat_min_deg":-Inf}`, "synthetic spec"},
		{"empty key", mutate(func(s *SyntheticSpec) { s.Key = "" }), "invalid region key"},
		{"uppercase key", mutate(func(s *SyntheticSpec) { s.Key = "Test" }), "invalid region key"},
		{"edge hyphen key", mutate(func(s *SyntheticSpec) { s.Key = "-test" }), "invalid region key"},
		{"no name", mutate(func(s *SyntheticSpec) { s.Name = "" }), "no name"},
		{"bad resolution", mutate(func(s *SyntheticSpec) { s.Resolution = 99 }), "invalid resolution"},
		{"lat below -90", mutate(func(s *SyntheticSpec) { s.LatMinDeg = -91 }), "latitude bounds"},
		{"lat above 90", mutate(func(s *SyntheticSpec) { s.LatMaxDeg = 90.5 }), "latitude bounds"},
		{"lat min >= max", mutate(func(s *SyntheticSpec) { s.LatMinDeg, s.LatMaxDeg = 20, 10 }), "latitude bounds"},
		{"lng out of range", mutate(func(s *SyntheticSpec) { s.LngMaxDeg = 181 }), "longitude bounds"},
		{"zero total", mutate(func(s *SyntheticSpec) { s.TotalLocations = 0 }), "total locations"},
		{"negative total", mutate(func(s *SyntheticSpec) { s.TotalLocations = -5 }), "total locations"},
		{"negative cells", mutate(func(s *SyntheticSpec) { s.Cells = -1 }), "cell count"},
		{"one density anchor", mutate(func(s *SyntheticSpec) {
			s.DensityAnchors = s.DensityAnchors[:1]
		}), "at least 2 density anchors"},
		{"non-positive weight", mutate(func(s *SyntheticSpec) {
			s.DensityAnchors[0].Weight = 0
		}), "must be positive"},
		{"decreasing weights", mutate(func(s *SyntheticSpec) {
			s.DensityAnchors = []DensityAnchor{{Q: 0, Weight: 5}, {Q: 1, Weight: 1}}
		}), "must increase"},
		{"anchors not spanning", mutate(func(s *SyntheticSpec) {
			s.DensityAnchors = []DensityAnchor{{Q: 0.1, Weight: 1}, {Q: 1, Weight: 5}}
		}), "span Q=0..1"},
		{"peak outside box", mutate(func(s *SyntheticSpec) {
			s.Peaks[0].LatDeg = 80
		}), "outside the footprint box"},
		{"non-positive peak", mutate(func(s *SyntheticSpec) {
			s.Peaks[0].Locations = 0
		}), "must be positive"},
		{"peaks exceed total", mutate(func(s *SyntheticSpec) {
			s.Peaks[0].Locations = s.TotalLocations
		}), "exceed total"},
		{"zero districts", mutate(func(s *SyntheticSpec) { s.Districts = 0 }), "districts"},
		{"districts above cells", mutate(func(s *SyntheticSpec) {
			s.Districts = s.Cells + len(s.Peaks) + 1
		}), "districts"},
		{"bad prefix", mutate(func(s *SyntheticSpec) { s.DistrictPrefix = "9A" }), "two digits"},
		{"no abbr", mutate(func(s *SyntheticSpec) { s.RegionAbbr = "" }), "abbreviation"},
		{"bad income anchors", mutate(func(s *SyntheticSpec) {
			s.IncomeAnchors = []census.QuantileAnchor{{Q: 0, Income: 5}}
		}), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSyntheticSpec([]byte(tc.data))
			if err == nil {
				t.Fatalf("ParseSyntheticSpec accepted %q", tc.data)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateNonFinite: JSON cannot carry NaN/Inf, but hand-built
// specs can; Validate must catch every non-finite numeric field.
func TestValidateNonFinite(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SyntheticSpec)
	}{
		{"nan lat bound", func(s *SyntheticSpec) { s.LatMinDeg = math.NaN() }},
		{"inf lng bound", func(s *SyntheticSpec) { s.LngMaxDeg = math.Inf(1) }},
		{"nan density q", func(s *SyntheticSpec) { s.DensityAnchors[0].Q = math.NaN() }},
		{"inf density weight", func(s *SyntheticSpec) { s.DensityAnchors[1].Weight = math.Inf(1) }},
		{"nan peak lat", func(s *SyntheticSpec) { s.Peaks[0].LatDeg = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Error("Validate accepted a non-finite spec")
			}
		})
	}
}

// TestBodyCounts pins the largest-remainder split: exact total, one
// location per cell minimum, ascending order, and a clean error when
// the total cannot cover the cells.
func TestBodyCounts(t *testing.T) {
	s := testSpec()
	for _, total := range []int{40, 41, 1000, 48_000} {
		counts, err := s.bodyCounts(total, s.Cells)
		if err != nil {
			t.Fatalf("bodyCounts(%d): %v", total, err)
		}
		if len(counts) != s.Cells {
			t.Fatalf("bodyCounts(%d) returned %d cells, want %d", total, len(counts), s.Cells)
		}
		sum := 0
		for i, c := range counts {
			if c < 1 {
				t.Fatalf("bodyCounts(%d): cell %d has %d locations, want >= 1", total, i, c)
			}
			if i > 0 && c < counts[i-1] {
				t.Fatalf("bodyCounts(%d): counts not ascending at %d: %v", total, i, counts)
			}
			sum += c
		}
		if sum != total {
			t.Fatalf("bodyCounts(%d) sums to %d", total, sum)
		}
	}
	if _, err := s.bodyCounts(s.Cells-1, s.Cells); err == nil {
		t.Error("bodyCounts accepted total < cells")
	} else if !strings.Contains(err.Error(), "scale too small") {
		t.Errorf("undersized total error %q does not mention scale", err)
	}
}

// TestShapeAtMonotone: the log-linear interpolation respects the
// anchored envelope — non-decreasing in q, clamped at the endpoints.
func TestShapeAtMonotone(t *testing.T) {
	s := brazilRuralSpec
	prev := s.shapeAt(-0.5)
	if prev != s.DensityAnchors[0].Weight {
		t.Errorf("shapeAt(-0.5) = %v, want the first anchor weight %v", prev, s.DensityAnchors[0].Weight)
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		w := s.shapeAt(q)
		if w < prev {
			t.Fatalf("shapeAt(%v) = %v dropped below %v", q, w, prev)
		}
		prev = w
	}
	if got := s.shapeAt(1.5); got != s.DensityAnchors[len(s.DensityAnchors)-1].Weight {
		t.Errorf("shapeAt(1.5) = %v, want the last anchor weight", got)
	}
}

// TestSyntheticGenerate: structural invariants of a generated synthetic
// region — exact scaled totals, the declared cell count, ID-sorted
// cells, district codes within the declared space, and an income table
// covering every district.
func TestSyntheticGenerate(t *testing.T) {
	ctx := context.Background()
	for _, r := range []Region{BrazilRural(), TaipeiDense()} {
		spec := r.(synthetic).spec
		for _, scale := range []float64{0.02, 0.05, 1} {
			out, err := r.Generate(ctx, GenConfig{Seed: 1, Scale: scale})
			if err != nil {
				t.Fatalf("%s scale %v: %v", r.Key(), scale, err)
			}
			wantTotal := spec.TotalLocations
			if scale < 1 {
				wantTotal = int(float64(wantTotal) * scale)
			}
			if got := out.Dist.TotalLocations(); got != wantTotal {
				t.Errorf("%s scale %v: total %d, want %d", r.Key(), scale, got, wantTotal)
			}
			if got, want := len(out.Cells), spec.Cells+len(spec.Peaks); got != want {
				t.Errorf("%s scale %v: %d cells, want %d", r.Key(), scale, got, want)
			}
			if out.Resolution != spec.Resolution {
				t.Errorf("%s: resolution %d, want %d", r.Key(), out.Resolution, spec.Resolution)
			}
			districts := map[string]bool{}
			for i, c := range out.Cells {
				if i > 0 && out.Cells[i-1].ID >= c.ID {
					t.Fatalf("%s: cells not strictly ID-sorted at %d", r.Key(), i)
				}
				if c.Locations < 1 {
					t.Fatalf("%s: cell %d has %d locations", r.Key(), i, c.Locations)
				}
				lat := c.Center.Lat
				if lat < spec.LatMinDeg-1 || lat > spec.LatMaxDeg+1 {
					t.Fatalf("%s: cell %d center lat %v far outside the footprint", r.Key(), i, lat)
				}
				if !strings.HasPrefix(c.CountyFIPS, spec.DistrictPrefix) || len(c.CountyFIPS) != 5 {
					t.Fatalf("%s: district code %q malformed", r.Key(), c.CountyFIPS)
				}
				districts[c.CountyFIPS] = true
			}
			if len(districts) != spec.Districts {
				t.Errorf("%s scale %v: %d districts, want %d", r.Key(), scale, len(districts), spec.Districts)
			}
			for code := range districts {
				if _, ok := out.Incomes.Lookup(code); !ok {
					t.Errorf("%s: district %s missing from the income table", r.Key(), code)
				}
			}
		}
	}
}

// TestSyntheticSeedSensitivity: different seeds place the body cells at
// different sites — the seed is a real input, not a label.
func TestSyntheticSeedSensitivity(t *testing.T) {
	ctx := context.Background()
	r := BrazilRural()
	a, err := r.Generate(ctx, GenConfig{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Generate(ctx, GenConfig{Seed: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, b.Cells) {
		t.Error("seeds 1 and 2 generated identical cells")
	}
}

// TestSyntheticGenerateErrors: generation failure modes error cleanly.
func TestSyntheticGenerateErrors(t *testing.T) {
	ctx := context.Background()
	t.Run("invalid scale", func(t *testing.T) {
		for _, scale := range []float64{0, -1, 1.5, math.NaN(), math.Inf(1)} {
			if _, err := BrazilRural().Generate(ctx, GenConfig{Seed: 1, Scale: scale}); err == nil {
				t.Errorf("scale %v accepted", scale)
			}
		}
	})
	t.Run("negative parallelism", func(t *testing.T) {
		if _, err := BrazilRural().Generate(ctx, GenConfig{Seed: 1, Scale: 0.05, Parallelism: -1}); err == nil {
			t.Error("negative parallelism accepted")
		}
	})
	t.Run("scale too small for the cell count", func(t *testing.T) {
		_, err := BrazilRural().Generate(ctx, GenConfig{Seed: 1, Scale: 0.0001})
		if err == nil || !strings.Contains(err.Error(), "scale too small") {
			t.Errorf("got %v, want a scale-too-small error", err)
		}
	})
	t.Run("footprint too small for the cell count", func(t *testing.T) {
		s := testSpec()
		s.LatMinDeg, s.LatMaxDeg = 15, 15.2
		s.LngMinDeg, s.LngMaxDeg = -40.2, -40
		s.Cells = 4000
		s.Districts = 5
		r, err := NewSynthetic(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Generate(ctx, GenConfig{Seed: 1, Scale: 1}); err == nil ||
			!strings.Contains(err.Error(), "free cells") {
			t.Errorf("got %v, want a footprint-too-small error", err)
		}
	})
	t.Run("peak collision", func(t *testing.T) {
		s := testSpec()
		s.Peaks = []SyntheticPeak{
			{Locations: 100, LatDeg: 15, LngDeg: -40},
			{Locations: 100, LatDeg: 15.0001, LngDeg: -40.0001},
		}
		r, err := NewSynthetic(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Generate(ctx, GenConfig{Seed: 1, Scale: 1}); err == nil ||
			!strings.Contains(err.Error(), "collide") {
			t.Errorf("got %v, want a peak-collision error", err)
		}
	})
}

// TestNewSyntheticRejectsInvalid: the constructor validates.
func TestNewSyntheticRejectsInvalid(t *testing.T) {
	s := testSpec()
	s.Key = "NOT-VALID"
	if _, err := NewSynthetic(s); err == nil {
		t.Error("NewSynthetic accepted an invalid spec")
	}
}

// TestPeakCellIsPeak: the pinned peak anchor really carries its
// declared scaled count, on the grid cell containing the anchor.
func TestPeakCellIsPeak(t *testing.T) {
	r := TaipeiDense()
	spec := r.(synthetic).spec
	out, err := r.Generate(context.Background(), GenConfig{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range spec.Peaks {
		id := hexgrid.LatLngToCell(geo.LatLng{Lat: p.LatDeg, Lng: p.LngDeg}, spec.Resolution)
		found := false
		for _, c := range out.Cells {
			if c.ID == id {
				found = true
				if c.Locations != p.Locations {
					t.Errorf("peak cell %v has %d locations, want %d", id, c.Locations, p.Locations)
				}
			}
		}
		if !found {
			t.Errorf("peak anchor cell %v missing from the output", id)
		}
	}
}
