package spectrum

// Table-driven cross-checks of the Schedule S band table: per-use
// subtotals, name/range consistency, and the arithmetic relations
// between the aggregate helpers. These pin the decomposition behind the
// paper's 3850 MHz / 24-beam user-terminal budget, not just the totals.

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// perUse sums width and beams for one band use.
func perUse(use BandUse) (widthMHz float64, beams int) {
	for _, b := range ScheduleS() {
		if b.Use == use {
			widthMHz += b.WidthMHz
			beams += b.Beams
		}
	}
	return widthMHz, beams
}

func TestScheduleSPerUseSubtotals(t *testing.T) {
	cases := []struct {
		use       BandUse
		wantMHz   float64
		wantBeams int
	}{
		// 10.7-12.75 (2050 MHz, 4 beams) + 19.7-20.2 (500 MHz, 8 beams).
		{DownlinkUT, 2550, 12},
		// 17.8-18.6 (800 MHz, 8 beams) + 18.8-19.3 (500 MHz, 4 beams).
		{DownlinkFlexible, 1300, 12},
		// 71-76 GHz E-band.
		{DownlinkGateway, 5000, 4},
	}
	var totalMHz float64
	var totalBeams int
	for _, tc := range cases {
		gotMHz, gotBeams := perUse(tc.use)
		if gotMHz != tc.wantMHz {
			t.Errorf("%v width = %v MHz, want %v", tc.use, gotMHz, tc.wantMHz)
		}
		if gotBeams != tc.wantBeams {
			t.Errorf("%v beams = %d, want %d", tc.use, gotBeams, tc.wantBeams)
		}
		totalMHz += gotMHz
		totalBeams += gotBeams
	}
	// The three uses partition the table: subtotals tie out against the
	// aggregate helpers exactly.
	if totalMHz != TotalDownlinkMHz() {
		t.Errorf("per-use widths sum to %v, TotalDownlinkMHz is %v", totalMHz, TotalDownlinkMHz())
	}
	if totalBeams != TotalBeams() {
		t.Errorf("per-use beams sum to %d, TotalBeams is %d", totalBeams, TotalBeams())
	}
	utMHz, utBeams := perUse(DownlinkUT)
	flexMHz, flexBeams := perUse(DownlinkFlexible)
	if utMHz+flexMHz != UTDownlinkMHz() {
		t.Errorf("UT+flexible width %v != UTDownlinkMHz %v", utMHz+flexMHz, UTDownlinkMHz())
	}
	if utBeams+flexBeams != UTBeams() {
		t.Errorf("UT+flexible beams %d != UTBeams %d", utBeams+flexBeams, UTBeams())
	}
}

func TestScheduleSBandNamesMatchRanges(t *testing.T) {
	// Band names embed their frequency range; keep them honest so the
	// table stays self-describing when someone edits an allocation.
	for _, b := range ScheduleS() {
		if !strings.Contains(b.Name, "GHz") {
			t.Errorf("band %q name does not state units", b.Name)
		}
		lead := strings.SplitN(strings.TrimSuffix(b.Name, " GHz"), "-", 2)
		if len(lead) != 2 {
			t.Errorf("band %q name is not a range", b.Name)
			continue
		}
		if want := formatGHz(b.LowGHz); lead[0] != want {
			t.Errorf("band %q low bound in name %q != %q", b.Name, lead[0], want)
		}
		if want := formatGHz(b.HighGHz); lead[1] != want {
			t.Errorf("band %q high bound in name %q != %q", b.Name, lead[1], want)
		}
	}
}

func formatGHz(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func TestBandsAreDisjointAndOrdered(t *testing.T) {
	// Spectrum allocations cannot overlap; the Ku/Ka bands in the table
	// are listed UT-first, but sorted by frequency they must be
	// pairwise disjoint.
	bands := ScheduleS()
	sorted := make([]Band, len(bands))
	copy(sorted, bands)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].LowGHz < sorted[i].LowGHz {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for i := 0; i+1 < len(sorted); i++ {
		if sorted[i+1].LowGHz < sorted[i].HighGHz {
			t.Errorf("bands %q and %q overlap", sorted[i].Name, sorted[i+1].Name)
		}
	}
}

func TestCapacityChainConsistency(t *testing.T) {
	// The paper's capacity chain: rounded per-cell capacity within 0.2%
	// of the exact product, beam capacity exactly a quarter of it, and
	// the derived per-beam/per-cell location limits at 20:1.
	exact := ExactCellCapacityGbps()
	if rel := math.Abs(MaxCellCapacityGbps-exact) / exact; rel > 0.002 {
		t.Errorf("rounded capacity %v is %.4f%% off the exact %v", MaxCellCapacityGbps, 100*rel, exact)
	}
	if got := BeamCapacityGbps() * BeamsPerCellLimit; got != MaxCellCapacityGbps {
		t.Errorf("beam capacity × %d = %v, want %v", BeamsPerCellLimit, got, MaxCellCapacityGbps)
	}
	// 4.325 Gbps × 20 / 0.1 Gbps = 865 locations per beam, 3460 per
	// cell — the thresholds behind Finding 1.
	perBeam := BeamCapacityGbps() * FCCFixedWirelessOversubscription / (FCCDownlinkMbps / 1000.0)
	if math.Abs(perBeam-865) > 1e-9 {
		t.Errorf("locations per beam at 20:1 = %v, want 865", perBeam)
	}
	if math.Abs(perBeam*BeamsPerCellLimit-3460) > 1e-9 {
		t.Errorf("per-cell limit at 20:1 = %v, want 3460", perBeam*BeamsPerCellLimit)
	}
}
