// Package spectrum encodes the radio-regulatory facts the capacity model
// rests on: the Starlink spectrum allocations from SpaceX's FCC Schedule
// S filing (SAT-AMD-20210818-00105), the spectral-efficiency estimate
// the paper adopts, and the FCC benchmarks for "reliable broadband" and
// fixed-wireless oversubscription.
//
// All figures are the ones printed in the paper's Table 1 and Section 3;
// they are exported as typed constants and tables so model code never
// embeds magic numbers.
package spectrum

import "fmt"

// BandUse classifies what a band's beams may serve.
type BandUse int

// Band usages.
const (
	// DownlinkUT beams serve user terminals only.
	DownlinkUT BandUse = iota
	// DownlinkFlexible beams serve user terminals or gateways.
	DownlinkFlexible
	// DownlinkGateway beams serve gateways only.
	DownlinkGateway
)

// String names the band use.
func (u BandUse) String() string {
	switch u {
	case DownlinkUT:
		return "DL to UTs"
	case DownlinkFlexible:
		return "DL to UTs / GWs"
	case DownlinkGateway:
		return "DL to GWs"
	default:
		return fmt.Sprintf("BandUse(%d)", int(u))
	}
}

// Band is one spectrum allocation from the Schedule S filing.
type Band struct {
	// Name is the frequency range, e.g. "10.7-12.75 GHz".
	Name string
	// LowGHz and HighGHz bound the band.
	LowGHz, HighGHz float64
	// WidthMHz is the usable width in MHz.
	WidthMHz float64
	// Beams is the number of spot beams a satellite forms in the band.
	Beams int
	// Use says who the band may serve.
	Use BandUse
}

// ScheduleS returns Starlink's downlink band table as characterized in
// the FCC Schedule S filing and reproduced in the paper's Table 1.
func ScheduleS() []Band {
	return []Band{
		{Name: "10.7-12.75 GHz", LowGHz: 10.7, HighGHz: 12.75, WidthMHz: 2050, Beams: 4, Use: DownlinkUT},
		{Name: "19.7-20.2 GHz", LowGHz: 19.7, HighGHz: 20.2, WidthMHz: 500, Beams: 8, Use: DownlinkUT},
		{Name: "17.8-18.6 GHz", LowGHz: 17.8, HighGHz: 18.6, WidthMHz: 800, Beams: 8, Use: DownlinkFlexible},
		{Name: "18.8-19.3 GHz", LowGHz: 18.8, HighGHz: 19.3, WidthMHz: 500, Beams: 4, Use: DownlinkFlexible},
		{Name: "71-76 GHz", LowGHz: 71, HighGHz: 76, WidthMHz: 5000, Beams: 4, Use: DownlinkGateway},
	}
}

// UTDownlinkMHzOf sums the spectrum a band table makes available for
// downlink to user terminals (UT-only plus flexible bands).
func UTDownlinkMHzOf(bands []Band) float64 {
	total := 0.0
	for _, b := range bands {
		if b.Use == DownlinkUT || b.Use == DownlinkFlexible {
			total += b.WidthMHz
		}
	}
	return total
}

// TotalDownlinkMHzOf sums all downlink spectrum in a band table,
// including gateway-only bands.
func TotalDownlinkMHzOf(bands []Band) float64 {
	total := 0.0
	for _, b := range bands {
		total += b.WidthMHz
	}
	return total
}

// UTBeamsOf counts the spot beams a band table lets a satellite point
// at user-terminal cells (UT-only plus flexible bands).
func UTBeamsOf(bands []Band) int {
	n := 0
	for _, b := range bands {
		if b.Use == DownlinkUT || b.Use == DownlinkFlexible {
			n += b.Beams
		}
	}
	return n
}

// TotalBeamsOf counts all downlink beams in a band table.
func TotalBeamsOf(bands []Band) int {
	n := 0
	for _, b := range bands {
		n += b.Beams
	}
	return n
}

// UTDownlinkMHz sums the spectrum available for downlink to user
// terminals (UT-only plus flexible bands): 3850 MHz.
func UTDownlinkMHz() float64 { return UTDownlinkMHzOf(ScheduleS()) }

// TotalDownlinkMHz sums all downlink spectrum including gateway-only
// bands: 8850 MHz.
func TotalDownlinkMHz() float64 { return TotalDownlinkMHzOf(ScheduleS()) }

// UTBeams counts the spot beams a satellite can point at user-terminal
// cells (UT-only plus flexible bands): 24.
func UTBeams() int { return UTBeamsOf(ScheduleS()) }

// TotalBeams counts all downlink beams: 28.
func TotalBeams() int { return TotalBeamsOf(ScheduleS()) }

// Regulatory and modelling constants.
const (
	// SpectralEfficiencyBpsPerHz is the paper's adopted estimate of
	// Starlink downlink spectral efficiency (Rozenvasser & Shulakova).
	SpectralEfficiencyBpsPerHz = 4.5

	// MaxCellCapacityGbps is the paper's rounded maximum per-cell
	// downlink capacity: 3850 MHz × 4.5 b/Hz ≈ 17.3 Gbps. The paper's
	// thresholds (865 locations per beam, 3460 per cell at 20:1) follow
	// from this rounded figure, so the model uses it by default;
	// ExactCellCapacityGbps carries the unrounded product.
	MaxCellCapacityGbps = 17.3

	// BeamsPerCellLimit is the number of beams required (and allowed,
	// per FCC polarization constraints) to deliver the full per-cell
	// capacity to one cell.
	BeamsPerCellLimit = 4

	// FCCDownlinkMbps and FCCUplinkMbps define the FCC "reliable
	// broadband" benchmark: 100/20 Mbps.
	FCCDownlinkMbps = 100
	FCCUplinkMbps   = 20

	// FCCFixedWirelessOversubscription is the FCC's maximum allowed
	// oversubscription for terrestrial unlicensed fixed wireless
	// providers, which the paper adopts as the acceptability bar.
	FCCFixedWirelessOversubscription = 20
)

// ExactCellCapacityGbps returns the unrounded per-cell capacity,
// UTDownlinkMHz × SpectralEfficiency ≈ 17.325 Gbps.
func ExactCellCapacityGbps() float64 {
	return UTDownlinkMHz() * SpectralEfficiencyBpsPerHz / 1000
}

// BeamCapacityGbps returns the capacity of a single spot beam under the
// paper's convention: MaxCellCapacityGbps split over the 4 beams that
// together serve one cell at full capacity (≈4.325 Gbps).
func BeamCapacityGbps() float64 {
	return MaxCellCapacityGbps / BeamsPerCellLimit
}
