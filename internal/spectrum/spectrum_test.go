package spectrum

import (
	"math"
	"testing"
)

func TestScheduleSTotals(t *testing.T) {
	// The totals printed in the paper's Table 1.
	if got := UTDownlinkMHz(); got != 3850 {
		t.Errorf("UTDownlinkMHz = %v, want 3850", got)
	}
	if got := TotalDownlinkMHz(); got != 8850 {
		t.Errorf("TotalDownlinkMHz = %v, want 8850", got)
	}
	if got := UTBeams(); got != 24 {
		t.Errorf("UTBeams = %d, want 24", got)
	}
	if got := TotalBeams(); got != 28 {
		t.Errorf("TotalBeams = %d, want 28", got)
	}
}

func TestScheduleSBands(t *testing.T) {
	bands := ScheduleS()
	if len(bands) != 5 {
		t.Fatalf("got %d bands, want 5", len(bands))
	}
	for _, b := range bands {
		if b.HighGHz <= b.LowGHz {
			t.Errorf("band %s: inverted range", b.Name)
		}
		wantWidth := (b.HighGHz - b.LowGHz) * 1000
		if math.Abs(b.WidthMHz-wantWidth) > 1e-9 {
			t.Errorf("band %s: width %v MHz inconsistent with range (%v)", b.Name, b.WidthMHz, wantWidth)
		}
		if b.Beams <= 0 {
			t.Errorf("band %s: no beams", b.Name)
		}
	}
	// The 71-76 GHz band serves gateways only.
	if bands[4].Use != DownlinkGateway {
		t.Errorf("71-76 GHz use = %v, want gateway-only", bands[4].Use)
	}
}

func TestCapacities(t *testing.T) {
	// 3850 MHz × 4.5 b/Hz = 17.325 Gbps exactly.
	if got := ExactCellCapacityGbps(); math.Abs(got-17.325) > 1e-9 {
		t.Errorf("ExactCellCapacityGbps = %v, want 17.325", got)
	}
	// The paper rounds to 17.3; a beam carries a quarter of that.
	if got := BeamCapacityGbps(); math.Abs(got-4.325) > 1e-9 {
		t.Errorf("BeamCapacityGbps = %v, want 4.325", got)
	}
	if MaxCellCapacityGbps != 17.3 {
		t.Errorf("MaxCellCapacityGbps = %v, want 17.3", MaxCellCapacityGbps)
	}
}

func TestRegulatoryConstants(t *testing.T) {
	if FCCDownlinkMbps != 100 || FCCUplinkMbps != 20 {
		t.Errorf("FCC benchmark = %d/%d, want 100/20", FCCDownlinkMbps, FCCUplinkMbps)
	}
	if FCCFixedWirelessOversubscription != 20 {
		t.Errorf("oversubscription cap = %d, want 20", FCCFixedWirelessOversubscription)
	}
	if BeamsPerCellLimit != 4 {
		t.Errorf("beams per cell = %d, want 4", BeamsPerCellLimit)
	}
}

func TestBandUseString(t *testing.T) {
	for _, u := range []BandUse{DownlinkUT, DownlinkFlexible, DownlinkGateway, BandUse(99)} {
		if u.String() == "" {
			t.Errorf("BandUse(%d).String() empty", u)
		}
	}
}
