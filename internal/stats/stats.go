// Package stats provides the small set of empirical-statistics primitives
// the capacity and affordability models are built on: empirical CDFs,
// quantiles (plain and weighted), histograms and summary statistics.
//
// Everything operates on float64 samples. Integer location counts are
// converted by callers; the package is deliberately unaware of what the
// samples mean.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by constructors given an empty sample set.
var ErrNoSamples = errors.New("stats: no samples")

// CDF is an empirical cumulative distribution function over a fixed
// sample set. The zero value is unusable; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input slice is copied
// and may be reused by the caller.
func NewCDF(samples []float64) (*CDF, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// Len reports the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// P returns the empirical probability P[X <= x].
func (c *CDF) P(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x,
	// so we search for the first index strictly greater than x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// CountLE returns the number of samples <= x.
func (c *CDF) CountLE(x float64) int {
	return sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
}

// CountGT returns the number of samples > x.
func (c *CDF) CountGT(x float64) int { return len(c.sorted) - c.CountLE(x) }

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method on the sorted samples. Quantile(0) is the minimum and
// Quantile(1) the maximum.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Mean returns the arithmetic mean of the samples.
func (c *CDF) Mean() float64 {
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Sum returns the sum of the samples.
func (c *CDF) Sum() float64 {
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum
}

// Series samples the CDF at n evenly spaced points across [Min, Max] and
// returns (x, P[X<=x]) pairs, suitable for plotting a figure. n must be
// at least 2.
func (c *CDF) Series(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := c.Min(), c.Max()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: c.P(x)}
	}
	return pts
}

// Point is a single (x, y) pair in a rendered series.
type Point struct {
	X, Y float64
}

// WeightedSample pairs a value with a nonnegative weight (e.g. a county
// median income weighted by its location count).
type WeightedSample struct {
	Value  float64
	Weight float64
}

// WeightedCDF is an empirical CDF over weighted samples.
type WeightedCDF struct {
	sorted []WeightedSample
	cum    []float64 // cumulative weight, aligned with sorted
	total  float64
}

// NewWeightedCDF builds a weighted empirical CDF. Samples with zero
// weight are dropped; negative weights are an error.
func NewWeightedCDF(samples []WeightedSample) (*WeightedCDF, error) {
	kept := make([]WeightedSample, 0, len(samples))
	for _, s := range samples {
		if s.Weight < 0 {
			return nil, fmt.Errorf("stats: negative weight %v for value %v", s.Weight, s.Value)
		}
		if s.Weight > 0 {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		return nil, ErrNoSamples
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Value < kept[j].Value })
	cum := make([]float64, len(kept))
	total := 0.0
	for i, s := range kept {
		total += s.Weight
		cum[i] = total
	}
	return &WeightedCDF{sorted: kept, cum: cum, total: total}, nil
}

// TotalWeight returns the sum of all weights.
func (w *WeightedCDF) TotalWeight() float64 { return w.total }

// P returns the weight-fraction with value <= x.
func (w *WeightedCDF) P(x float64) float64 {
	i := sort.Search(len(w.sorted), func(i int) bool { return w.sorted[i].Value > x })
	if i == 0 {
		return 0
	}
	return w.cum[i-1] / w.total
}

// WeightLE returns the total weight of samples with value <= x.
func (w *WeightedCDF) WeightLE(x float64) float64 {
	i := sort.Search(len(w.sorted), func(i int) bool { return w.sorted[i].Value > x })
	if i == 0 {
		return 0
	}
	return w.cum[i-1]
}

// WeightGT returns the total weight of samples with value > x.
func (w *WeightedCDF) WeightGT(x float64) float64 { return w.total - w.WeightLE(x) }

// Quantile returns the smallest value v such that the weight-fraction of
// samples <= v is at least q.
func (w *WeightedCDF) Quantile(q float64) float64 {
	if q <= 0 {
		return w.sorted[0].Value
	}
	target := q * w.total
	i := sort.Search(len(w.cum), func(i int) bool { return w.cum[i] >= target })
	if i >= len(w.sorted) {
		i = len(w.sorted) - 1
	}
	return w.sorted[i].Value
}

// Series samples the weighted CDF at n evenly spaced points.
func (w *WeightedCDF) Series(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo := w.sorted[0].Value
	hi := w.sorted[len(w.sorted)-1].Value
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: w.P(x)}
	}
	return pts
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the end bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram of the samples.
func NewHistogram(samples []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: nbins must be positive, got %d", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%v, %v]", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	for _, v := range samples {
		bin := int((v - lo) / (hi - lo) * float64(nbins))
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		h.Counts[bin]++
		h.N++
	}
	return h, nil
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Summary holds the headline statistics of a sample set.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	P90, P99     float64
	Sum          float64
	StdDev       float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) (Summary, error) {
	c, err := NewCDF(samples)
	if err != nil {
		return Summary{}, err
	}
	return SummarizeCDF(c)
}

// SummarizeCDF computes a Summary from an already-built CDF, reusing
// its sorted sample array instead of copying and re-sorting. Sorting is
// deterministic over the sample multiset, so this is value-identical to
// Summarize on the same samples in any order.
func SummarizeCDF(c *CDF) (Summary, error) {
	if c == nil || len(c.sorted) == 0 {
		return Summary{}, ErrNoSamples
	}
	mean := c.Mean()
	varsum := 0.0
	for _, v := range c.sorted {
		d := v - mean
		varsum += d * d
	}
	sd := 0.0
	if len(c.sorted) > 1 {
		sd = math.Sqrt(varsum / float64(len(c.sorted)-1))
	}
	return Summary{
		N:      c.Len(),
		Min:    c.Min(),
		Max:    c.Max(),
		Mean:   mean,
		Median: c.Quantile(0.5),
		P90:    c.Quantile(0.90),
		P99:    c.Quantile(0.99),
		Sum:    c.Sum(),
		StdDev: sd,
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Median, s.P90, s.P99, s.Max, s.Mean)
}

// Lorenz returns n+1 points of the Lorenz curve of the samples: the
// cumulative share of the total held by the poorest fraction p of
// samples, for p = 0, 1/n, …, 1. Samples must be nonnegative.
func Lorenz(samples []float64, n int) ([]Point, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if n < 1 {
		n = 100
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return nil, fmt.Errorf("stats: Lorenz requires nonnegative samples, got %v", sorted[0])
	}
	total := 0.0
	cum := make([]float64, len(sorted)+1)
	for i, v := range sorted {
		total += v
		cum[i+1] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: Lorenz of all-zero samples")
	}
	out := make([]Point, 0, n+1)
	for k := 0; k <= n; k++ {
		p := float64(k) / float64(n)
		idx := int(p * float64(len(sorted)))
		if idx > len(sorted) {
			idx = len(sorted)
		}
		out = append(out, Point{X: p, Y: cum[idx] / total})
	}
	return out, nil
}

// Gini returns the Gini coefficient of the samples (0 = perfectly
// even, →1 = maximally concentrated). Samples must be nonnegative.
func Gini(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return 0, fmt.Errorf("stats: Gini requires nonnegative samples, got %v", sorted[0])
	}
	n := float64(len(sorted))
	total := 0.0
	weighted := 0.0
	for i, v := range sorted {
		total += v
		weighted += float64(i+1) * v
	}
	if total == 0 {
		return 0, fmt.Errorf("stats: Gini of all-zero samples")
	}
	return (2*weighted - (n+1)*total) / (n * total), nil
}
