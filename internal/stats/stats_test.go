package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err != ErrNoSamples {
		t.Fatalf("NewCDF(nil) err = %v, want ErrNoSamples", err)
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{3, 1, 2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.6}, {3, 0.8}, {4.9, 0.8}, {5, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.CountLE(2); got != 3 {
		t.Errorf("CountLE(2) = %d, want 3", got)
	}
	if got := c.CountGT(2); got != 2 {
		t.Errorf("CountGT(2) = %d, want 2", got)
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := c.Mean(); math.Abs(got-2.6) > 1e-12 {
		t.Errorf("Mean = %v, want 2.6", got)
	}
	if got := c.Sum(); math.Abs(got-13) > 1e-12 {
		t.Errorf("Sum = %v, want 13", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c, _ := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.9, 90}, {0.99, 100}, {1, 100}, {-1, 10}, {2, 100},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c, _ := NewCDF(in)
	in[0] = 1000
	if got := c.Max(); got != 3 {
		t.Errorf("Max = %v after mutating input, want 3", got)
	}
}

// Property: P is monotone nondecreasing and bounded in [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		c, err := NewCDF(raw)
		if err != nil {
			return false
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := c.P(a), c.P(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and P are near-inverses: P(Quantile(q)) >= q.
func TestQuantileInverseProperty(t *testing.T) {
	f := func(raw []float64, q01 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		c, err := NewCDF(raw)
		if err != nil {
			return false
		}
		q := float64(q01) / 255
		return c.P(c.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CountLE + CountGT = Len.
func TestCountPartitionProperty(t *testing.T) {
	f := func(raw []float64, x float64) bool {
		if len(raw) == 0 {
			return true
		}
		c, err := NewCDF(raw)
		if err != nil {
			return false
		}
		return c.CountLE(x)+c.CountGT(x) == c.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Series(5)
	if len(pts) != 5 {
		t.Fatalf("Series(5) has %d points", len(pts))
	}
	if pts[0].X != 1 || pts[4].X != 4 {
		t.Errorf("Series endpoints = %v, %v; want 1, 4", pts[0].X, pts[4].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("Series not monotone at %d", i)
		}
	}
	if got := c.Series(1); len(got) != 2 {
		t.Errorf("Series(1) has %d points, want clamp to 2", len(got))
	}
}

func TestWeightedCDF(t *testing.T) {
	w, err := NewWeightedCDF([]WeightedSample{
		{Value: 10, Weight: 1},
		{Value: 20, Weight: 3},
		{Value: 30, Weight: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.TotalWeight(); got != 10 {
		t.Errorf("TotalWeight = %v, want 10", got)
	}
	if got := w.P(10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("P(10) = %v, want 0.1", got)
	}
	if got := w.P(20); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P(20) = %v, want 0.4", got)
	}
	if got := w.P(25); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P(25) = %v, want 0.4", got)
	}
	if got := w.P(30); got != 1 {
		t.Errorf("P(30) = %v, want 1", got)
	}
	if got := w.WeightLE(20); got != 4 {
		t.Errorf("WeightLE(20) = %v, want 4", got)
	}
	if got := w.WeightGT(20); got != 6 {
		t.Errorf("WeightGT(20) = %v, want 6", got)
	}
	if got := w.Quantile(0.05); got != 10 {
		t.Errorf("Quantile(0.05) = %v, want 10", got)
	}
	if got := w.Quantile(0.4); got != 20 {
		t.Errorf("Quantile(0.4) = %v, want 20", got)
	}
	if got := w.Quantile(0.41); got != 30 {
		t.Errorf("Quantile(0.41) = %v, want 30", got)
	}
}

func TestWeightedCDFErrors(t *testing.T) {
	if _, err := NewWeightedCDF(nil); err == nil {
		t.Error("NewWeightedCDF(nil) should fail")
	}
	if _, err := NewWeightedCDF([]WeightedSample{{Value: 1, Weight: -1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewWeightedCDF([]WeightedSample{{Value: 1, Weight: 0}}); err == nil {
		t.Error("all-zero weights should fail")
	}
}

// Property: weighted CDF with unit weights matches the unweighted CDF.
func TestWeightedMatchesUnweightedProperty(t *testing.T) {
	f := func(raw []float64, x float64) bool {
		if len(raw) == 0 {
			return true
		}
		c, err := NewCDF(raw)
		if err != nil {
			return false
		}
		ws := make([]WeightedSample, len(raw))
		for i, v := range raw {
			ws[i] = WeightedSample{Value: v, Weight: 1}
		}
		w, err := NewWeightedCDF(ws)
		if err != nil {
			return false
		}
		return math.Abs(c.P(x)-w.P(x)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 2.5, 2.6, 9.9, -5, 100}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	if h.Counts[0] != 2 { // 0.5 and the clamped -5
		t.Errorf("Counts[0] = %d, want 2", h.Counts[0])
	}
	if h.Counts[2] != 2 {
		t.Errorf("Counts[2] = %d, want 2", h.Counts[2])
	}
	if h.Counts[9] != 2 { // 9.9 and the clamped 100
		t.Errorf("Counts[9] = %d, want 2", h.Counts[9])
	}
	if got := h.BinCenter(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 0.5", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("nbins=0 should fail")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Error("empty range should fail")
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = rng.NormFloat64()*2 + 10
	}
	s, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-10) > 0.1 {
		t.Errorf("Mean = %v, want ~10", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 0.1 {
		t.Errorf("StdDev = %v, want ~2", s.StdDev)
	}
	if math.Abs(s.Median-10) > 0.15 {
		t.Errorf("Median = %v, want ~10", s.Median)
	}
	if s.P90 <= s.Median || s.P99 <= s.P90 {
		t.Errorf("quantiles out of order: p50=%v p90=%v p99=%v", s.Median, s.P90, s.P99)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should fail")
	}
}

// Property: Summary respects sorted-order invariants.
func TestSummaryOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s, err := Summarize(raw)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGini(t *testing.T) {
	// Perfect equality.
	if g, err := Gini([]float64{5, 5, 5, 5}); err != nil || math.Abs(g) > 1e-12 {
		t.Errorf("Gini(equal) = %v, %v", g, err)
	}
	// Maximal concentration approaches 1 − 1/n.
	g, err := Gini([]float64{0, 0, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("Gini(concentrated) = %v, want 0.75", g)
	}
	if _, err := Gini(nil); err == nil {
		t.Error("empty Gini should fail")
	}
	if _, err := Gini([]float64{-1, 2}); err == nil {
		t.Error("negative Gini should fail")
	}
	if _, err := Gini([]float64{0, 0}); err == nil {
		t.Error("all-zero Gini should fail")
	}
}

func TestLorenz(t *testing.T) {
	pts, err := Lorenz([]float64{1, 1, 1, 97}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Y != 0 || pts[4].Y != 1 {
		t.Errorf("Lorenz endpoints = %v, %v", pts[0].Y, pts[4].Y)
	}
	// The poorest 75% hold 3% of the total.
	if math.Abs(pts[3].Y-0.03) > 1e-12 {
		t.Errorf("Lorenz(0.75) = %v, want 0.03", pts[3].Y)
	}
	// Curve is convex-ish: nondecreasing and below the diagonal.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("Lorenz not monotone")
		}
		if pts[i].Y > pts[i].X+1e-12 {
			t.Fatal("Lorenz above diagonal")
		}
	}
	if _, err := Lorenz(nil, 10); err == nil {
		t.Error("empty Lorenz should fail")
	}
}

// Property: Gini is scale-invariant and within [0, 1).
func TestGiniScaleInvariantProperty(t *testing.T) {
	f := func(raw []uint16, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			samples[i] = float64(v)
			anyPositive = anyPositive || v > 0
		}
		if !anyPositive {
			return true
		}
		g1, err := Gini(samples)
		if err != nil {
			return false
		}
		scale := 1 + float64(scaleRaw)
		scaled := make([]float64, len(samples))
		for i := range samples {
			scaled[i] = samples[i] * scale
		}
		g2, err := Gini(scaled)
		if err != nil {
			return false
		}
		return math.Abs(g1-g2) < 1e-9 && g1 >= -1e-12 && g1 < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
