package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

func TestDefaultProfile(t *testing.T) {
	p := DefaultProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Evening peak, overnight trough.
	if h := p.PeakHour(); h < 18 || h > 22 {
		t.Errorf("peak hour = %d, want evening", h)
	}
	if p.PeakFactor() < 1.5 || p.PeakFactor() > 3 {
		t.Errorf("peak factor = %v, want ~2", p.PeakFactor())
	}
	if p[3] > 0.5 {
		t.Errorf("overnight multiplier = %v, want deep trough", p[3])
	}
}

func TestValidateRejects(t *testing.T) {
	var zero DiurnalProfile
	if err := zero.Validate(); err == nil {
		t.Error("zero profile should fail")
	}
	bad := DefaultProfile()
	for i := range bad {
		bad[i] = 2 // mean 2, not 1
	}
	if err := bad.Validate(); err == nil {
		t.Error("unnormalized profile should fail")
	}
}

func TestLocalHour(t *testing.T) {
	// 12:00 UTC at longitude -90 is 06:00 local solar time.
	if got := LocalHour(12, -90); math.Abs(got-6) > 1e-9 {
		t.Errorf("LocalHour(12, -90) = %v, want 6", got)
	}
	if got := LocalHour(0, -120); math.Abs(got-16) > 1e-9 {
		t.Errorf("LocalHour(0, -120) = %v, want 16", got)
	}
	if got := LocalHour(23, 30); math.Abs(got-1) > 1e-9 {
		t.Errorf("LocalHour(23, 30) = %v, want 1", got)
	}
}

// Property: At interpolates within the hourly bracket and is periodic.
func TestAtProperty(t *testing.T) {
	p := DefaultProfile()
	f := func(raw uint16) bool {
		h := float64(raw) / 65535 * 24
		v := p.At(h)
		lo, hi := p[int(h)%24], p[(int(h)+1)%24]
		if lo > hi {
			lo, hi = hi, lo
		}
		if v < lo-1e-9 || v > hi+1e-9 {
			return false
		}
		return math.Abs(p.At(h)-p.At(h+24)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func stripCells() []demand.Cell {
	// Cells spread across the CONUS longitude span at one latitude.
	var cells []demand.Cell
	id := 1
	for lng := -124.0; lng <= -68; lng += 2 {
		cells = append(cells, demand.Cell{
			ID:        hexgrid.CellID(id),
			Locations: 500,
			Center:    geo.LatLng{Lat: 39, Lng: lng},
		})
		id++
	}
	return cells
}

func TestNationalCurveFlatterThanCell(t *testing.T) {
	p := DefaultProfile()
	cells := stripCells()
	_, curve, err := NationalCurve(p, cells, 96)
	if err != nil {
		t.Fatal(err)
	}
	national := PeakToMean(curve)
	single := p.PeakFactor()
	if national >= single {
		t.Errorf("national peak-to-mean %v not flatter than single-cell %v", national, single)
	}
	// The mean national demand equals the sum of cell means.
	sum := 0.0
	for _, v := range curve {
		sum += v
	}
	mean := sum / float64(len(curve))
	want := 0.0
	for _, c := range cells {
		want += c.DemandGbps()
	}
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean national demand %v, want ≈%v", mean, want)
	}
}

func TestAnalyzeStagger(t *testing.T) {
	p := DefaultProfile()
	cells := stripCells()
	a, err := AnalyzeStagger(p, cells, 8.5)
	if err != nil {
		t.Fatal(err)
	}
	// The paper-relevant ordering: a cell gets no relief, a satellite
	// footprint (≈1 time zone) almost none, the nation some — but LEO
	// capacity cannot pool nationally.
	if !(a.NationalPeakToMean < a.FootprintPeakToMean &&
		a.FootprintPeakToMean <= a.CellPeakToMean+1e-9) {
		t.Errorf("stagger ordering violated: %+v", a)
	}
	// Footprint relief is marginal (<10% of the cell peak factor).
	if a.FootprintPeakToMean < 0.9*a.CellPeakToMean {
		t.Errorf("footprint relief implausibly large: %+v", a)
	}
	if _, err := AnalyzeStagger(p, nil, 8.5); err == nil {
		t.Error("no cells should fail")
	}
}

func TestPeakToMean(t *testing.T) {
	if got := PeakToMean([]float64{1, 1, 1, 5}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("PeakToMean = %v, want 2.5", got)
	}
	if PeakToMean(nil) != 0 {
		t.Error("empty PeakToMean should be 0")
	}
	if PeakToMean([]float64{0, 0}) != 0 {
		t.Error("zero PeakToMean should be 0")
	}
}
