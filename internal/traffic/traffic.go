// Package traffic models the time dimension behind the paper's P2:
// capacity is sized by *peak* demand, and residential broadband demand
// peaks in the local evening. The package provides a diurnal demand
// profile, timezone-aware per-cell demand at any UTC hour, and the
// analysis of whether time-zone staggering relieves a LEO
// constellation (it barely does: a satellite's footprint spans roughly
// one time zone, so the cells it serves peak together).
package traffic

import (
	"fmt"
	"math"

	"leodivide/internal/demand"
)

// DiurnalProfile maps local hour (0-23) to a demand multiplier with
// mean 1 over the day. The default shape follows residential broadband
// measurements: a deep overnight trough, a daytime shoulder, and an
// evening busy hour around 21:00 local.
type DiurnalProfile [24]float64

// DefaultProfile returns the residential evening-peak shape.
func DefaultProfile() DiurnalProfile {
	raw := [24]float64{
		0.35, 0.25, 0.20, 0.18, 0.18, 0.22, // 00-05
		0.35, 0.55, 0.75, 0.85, 0.90, 0.95, // 06-11
		1.00, 1.00, 1.00, 1.05, 1.15, 1.30, // 12-17
		1.55, 1.80, 2.00, 2.10, 1.80, 1.20, // 18-23
	}
	var p DiurnalProfile
	sum := 0.0
	for _, v := range raw {
		sum += v
	}
	for i, v := range raw {
		p[i] = v * 24 / sum
	}
	return p
}

// Validate reports whether the profile is usable: positive everywhere
// and mean ≈ 1.
func (p DiurnalProfile) Validate() error {
	sum := 0.0
	for h, v := range p {
		if v <= 0 {
			return fmt.Errorf("traffic: nonpositive multiplier %v at hour %d", v, h)
		}
		sum += v
	}
	if math.Abs(sum/24-1) > 0.01 {
		return fmt.Errorf("traffic: profile mean %v, want 1", sum/24)
	}
	return nil
}

// PeakFactor returns the profile's busy-hour multiplier.
func (p DiurnalProfile) PeakFactor() float64 {
	peak := p[0]
	for _, v := range p[1:] {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// PeakHour returns the local hour of the busy-hour.
func (p DiurnalProfile) PeakHour() int {
	best, peak := 0, p[0]
	for h, v := range p {
		if v > peak {
			best, peak = h, v
		}
	}
	return best
}

// LocalHour converts a UTC hour to the solar local hour at a longitude
// (15° per hour).
func LocalHour(utcHour float64, lngDeg float64) float64 {
	h := math.Mod(utcHour+lngDeg/15+48, 24)
	return h
}

// At returns the multiplier at a fractional local hour, interpolating
// between hourly samples.
func (p DiurnalProfile) At(localHour float64) float64 {
	h := math.Mod(localHour+24, 24)
	lo := int(h) % 24
	hi := (lo + 1) % 24
	frac := h - math.Floor(h)
	return p[lo]*(1-frac) + p[hi]*frac
}

// CellDemandAt returns a cell's instantaneous demand multiplier at a
// UTC hour, using the cell's longitude for the local clock.
func CellDemandAt(p DiurnalProfile, c demand.Cell, utcHour float64) float64 {
	return p.At(LocalHour(utcHour, c.Center.Lng))
}

// MultiplierAt is the hot-loop form of CellDemandAt over precomputed
// columns: phase is the cell's longitude divided by 15 (see Columns).
// The pointer receiver avoids copying the 24-entry profile per cell,
// and the arithmetic replicates LocalHour followed by At operation for
// operation — including At's second modulo, whose rounding is
// observable — so the result is bit-identical.
func (p *DiurnalProfile) MultiplierAt(utcHour, phase float64) float64 {
	h := math.Mod(utcHour+phase+48, 24)
	h = math.Mod(h+24, 24)
	lo := int(h) % 24
	hi := (lo + 1) % 24
	frac := h - math.Floor(h)
	return p[lo]*(1-frac) + p[hi]*frac
}

// Columns are dense per-cell projections of the traffic-relevant Cell
// fields, aligned with the source cell slice: the location count as a
// float, the sold demand in Gbps, and the diurnal phase (longitude/15,
// the cell's local-clock offset in hours). Building them once per
// analysis keeps the per-hour scans cache-friendly and free of repeated
// field strides and divisions.
type Columns struct {
	Loc    []float64
	Demand []float64
	Phase  []float64
}

// NewColumns projects the cells into columns.
func NewColumns(cells []demand.Cell) Columns {
	c := Columns{
		Loc:    make([]float64, len(cells)),
		Demand: make([]float64, len(cells)),
		Phase:  make([]float64, len(cells)),
	}
	for i := range cells {
		c.Loc[i] = float64(cells[i].Locations)
		c.Demand[i] = cells[i].DemandGbps()
		c.Phase[i] = cells[i].Center.Lng / 15
	}
	return c
}

// Len returns the number of projected cells.
func (c Columns) Len() int { return len(c.Loc) }

// NationalCurve sums instantaneous demand over all cells for each UTC
// hour step, returning (utcHour, totalDemandGbps) samples. Time-zone
// staggering flattens this national curve relative to any single
// cell's curve.
func NationalCurve(p DiurnalProfile, cells []demand.Cell, steps int) ([]float64, []float64, error) {
	return NationalCurveColumns(p, NewColumns(cells), steps)
}

// NationalCurveColumns is NationalCurve over pre-projected columns, so
// repeated curves (footprint and national scopes of a stagger analysis)
// share one projection. Cell order — and with it the floating-point
// accumulation order — matches the source slice exactly.
func NationalCurveColumns(p DiurnalProfile, cols Columns, steps int) ([]float64, []float64, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if steps < 2 {
		steps = 24
	}
	hours := make([]float64, steps)
	totals := make([]float64, steps)
	for s := 0; s < steps; s++ {
		utc := 24 * float64(s) / float64(steps)
		hours[s] = utc
		total := 0.0
		for i := range cols.Demand {
			total += cols.Demand[i] * p.MultiplierAt(utc, cols.Phase[i])
		}
		totals[s] = total
	}
	return hours, totals, nil
}

// PeakToMean returns the ratio of a curve's maximum to its mean.
func PeakToMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum, peak := 0.0, values[0]
	for _, v := range values {
		sum += v
		if v > peak {
			peak = v
		}
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 0
	}
	return peak / mean
}

// StaggerAnalysis quantifies how much time-zone staggering helps at
// different aggregation scopes.
type StaggerAnalysis struct {
	// CellPeakToMean is a single cell's peak-to-mean ratio (the profile
	// peak factor — no relief).
	CellPeakToMean float64
	// FootprintPeakToMean is the ratio over one satellite footprint
	// (cells within ±footprintHalfWidthDeg of longitude) — marginal
	// relief, because a footprint spans about one time zone.
	FootprintPeakToMean float64
	// NationalPeakToMean is the ratio over all cells — the relief LEO
	// capacity cannot exploit, since satellites cannot move capacity
	// across the country instantaneously.
	NationalPeakToMean float64
}

// AnalyzeStagger computes the three ratios. footprintHalfWidthDeg is
// the longitude half-width of a satellite footprint (≈8.5° for 550 km
// at a 25° mask).
func AnalyzeStagger(p DiurnalProfile, cells []demand.Cell, footprintHalfWidthDeg float64) (StaggerAnalysis, error) {
	if err := p.Validate(); err != nil {
		return StaggerAnalysis{}, err
	}
	if len(cells) == 0 {
		return StaggerAnalysis{}, fmt.Errorf("traffic: no cells")
	}
	out := StaggerAnalysis{CellPeakToMean: p.PeakFactor()}

	// Footprint scope: cells within the half-width of the densest cell.
	densest := cells[0]
	for _, c := range cells[1:] {
		if c.Locations > densest.Locations {
			densest = c
		}
	}
	// Project once; the footprint scope reuses the national columns by
	// counting members first and copying their column entries, in cell
	// order, instead of building a second cell slice.
	cols := NewColumns(cells)
	n := 0
	for _, c := range cells {
		if math.Abs(c.Center.Lng-densest.Center.Lng) <= footprintHalfWidthDeg {
			n++
		}
	}
	fp := Columns{Demand: make([]float64, 0, n), Phase: make([]float64, 0, n)}
	for i, c := range cells {
		if math.Abs(c.Center.Lng-densest.Center.Lng) <= footprintHalfWidthDeg {
			fp.Demand = append(fp.Demand, cols.Demand[i])
			fp.Phase = append(fp.Phase, cols.Phase[i])
		}
	}
	_, fpCurve, err := NationalCurveColumns(p, fp, 96)
	if err != nil {
		return StaggerAnalysis{}, err
	}
	out.FootprintPeakToMean = PeakToMean(fpCurve)

	_, natCurve, err := NationalCurveColumns(p, cols, 96)
	if err != nil {
		return StaggerAnalysis{}, err
	}
	out.NationalPeakToMean = PeakToMean(natCurve)
	return out, nil
}
