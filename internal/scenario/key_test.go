package scenario

import (
	"math"
	"strings"
	"testing"
)

func TestKeyBuilderLayout(t *testing.T) {
	key, err := NewKey(Schema).
		Float("afford_share", 0.02).
		Bool("calibrated", false).
		Floats("oversubs", []float64{5, 20}).
		Strings("plans", []string{"Starlink Residential", "Xfinity 300"}).
		Float("scale", 0.02).
		Int64("seed", 1).
		Key()
	if err != nil {
		t.Fatal(err)
	}
	want := Schema + "|afford_share=0.02|calibrated=false|oversubs=5,20" +
		"|plans=Starlink Residential,Xfinity 300|scale=0.02|seed=1"
	if key != want {
		t.Errorf("key = %q, want %q", key, want)
	}
}

// The same fields must always produce the same bytes; the builder is a
// pure function of its inputs.
func TestKeyBuilderDeterministic(t *testing.T) {
	build := func() string {
		k, err := NewKey(Schema).Float("a", 1.5).Int64("b", -3).Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if a, b := build(), build(); a != b {
		t.Errorf("two builds of the same fields differ: %q vs %q", a, b)
	}
}

func TestKeyBuilderEnforcesOrder(t *testing.T) {
	if _, err := NewKey(Schema).Int64("b", 1).Int64("a", 2).Key(); err == nil {
		t.Error("out-of-order fields must fail")
	}
	if _, err := NewKey(Schema).Int64("a", 1).Int64("a", 2).Key(); err == nil {
		t.Error("duplicate field must fail")
	}
}

func TestKeyBuilderRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name  string
		build func() (string, error)
	}{
		{"empty schema", func() (string, error) { return NewKey("").Int64("a", 1).Key() }},
		{"empty name", func() (string, error) { return NewKey(Schema).Int64("", 1).Key() }},
		{"name with delimiter", func() (string, error) { return NewKey(Schema).Int64("a|b", 1).Key() }},
		{"name with space", func() (string, error) { return NewKey(Schema).Int64("a b", 1).Key() }},
		{"NaN float", func() (string, error) { return NewKey(Schema).Float("a", math.NaN()).Key() }},
		{"Inf float", func() (string, error) { return NewKey(Schema).Float("a", math.Inf(1)).Key() }},
		{"NaN in list", func() (string, error) { return NewKey(Schema).Floats("a", []float64{1, math.NaN()}).Key() }},
		{"empty string value", func() (string, error) { return NewKey(Schema).Strings("a", []string{""}).Key() }},
		{"comma in string value", func() (string, error) { return NewKey(Schema).Strings("a", []string{"x,y"}).Key() }},
		{"padded string value", func() (string, error) { return NewKey(Schema).Strings("a", []string{" x"}).Key() }},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// Errors are sticky: the first failure wins and later valid appends do
// not clear it.
func TestKeyBuilderStickyError(t *testing.T) {
	_, err := NewKey(Schema).Float("a", math.NaN()).Int64("b", 1).Key()
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("sticky error lost: %v", err)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.02, "0.02"}, {1, "1"}, {20, "20"}, {0.055, "0.055"}, {1e-5, "1e-05"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.v); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
