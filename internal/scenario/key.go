// Package scenario defines the canonical byte encoding for scenario
// configurations: the single stable key under which a deterministic
// experiment result can be cached, requested over HTTP, or frozen into
// a golden corpus. The encoding is a versioned, pipe-delimited sequence
// of name=value fields:
//
//	leodivide-serve/v1|afford_share=0.02|calibrated=false|...|seed=1
//
// Canonicality rules, enforced by the builder rather than left to
// caller discipline:
//
//   - Fields are appended in strictly ascending name order, once each,
//     so two encoders of the same config cannot disagree on layout.
//   - Floats are formatted with strconv.FormatFloat(v, 'g', -1, 64) —
//     the shortest round-trippable form, the same formatting the golden
//     corpus uses for scale directory names — and must be finite.
//   - Names and string values are restricted to characters that cannot
//     collide with the delimiters ('|', '=', ',').
//
// The package deliberately knows nothing about which fields a scenario
// has; the root package's ScenarioConfig.CanonicalKey owns that list.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Schema is the versioned identifier shared by the canonical key
// prefix and the HTTP request/response envelope of `leodivide serve`.
// Any change to the key layout or the request schema bumps the suffix.
// v3 added the region selector; v2 added the constellation selector
// and the cost-model override fields.
const Schema = "leodivide-serve/v3"

// SchemaV2 is the previous key schema, retained so committed v2 keys
// keep decoding (they map to the default "us" region; the root
// package's UpgradeScenarioKey owns that mapping).
const SchemaV2 = "leodivide-serve/v2"

// SchemaV1 is the original key schema, retained so committed v1 keys
// keep decoding (they map to the Starlink default with declared costs
// on the "us" region).
const SchemaV1 = "leodivide-serve/v1"

// FormatFloat renders a float in the canonical shortest round-trippable
// form ("0.02", "20", "1e-05"). It is total: non-finite values render
// as Go formats them ("NaN", "+Inf"); the builder rejects those
// separately so keys only ever contain finite numbers.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// KeyBuilder accumulates fields into a canonical key. The zero value is
// not usable; obtain one from NewKey. Append errors (out-of-order
// fields, bad characters, non-finite floats) are sticky and surface
// from Key, so call sites can chain appends without per-call checks.
type KeyBuilder struct {
	b    strings.Builder
	last string
	err  error
}

// NewKey starts a key with the given schema prefix.
func NewKey(schema string) *KeyBuilder {
	k := &KeyBuilder{}
	if schema == "" {
		k.fail("empty schema")
		return k
	}
	k.b.WriteString(schema)
	return k
}

func (k *KeyBuilder) fail(format string, args ...any) {
	if k.err == nil {
		k.err = fmt.Errorf("scenario key: "+format, args...)
	}
}

// validToken reports whether s is safe as a field name: nonempty, and
// free of '|', '=', ',' and whitespace.
func validToken(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, "|=, \t\n\r")
}

// validValue reports whether s is safe as a list element: nonempty and
// free of the delimiters and line breaks. Interior spaces are allowed —
// catalog plan labels such as "Starlink Residential w/ Lifeline" are
// legitimate values.
func validValue(s string) bool {
	if s == "" || s != strings.TrimSpace(s) {
		return false
	}
	return !strings.ContainsAny(s, "|=,\t\n\r")
}

func (k *KeyBuilder) field(name, value string) *KeyBuilder {
	if k.err != nil {
		return k
	}
	if !validToken(name) {
		k.fail("invalid field name %q", name)
		return k
	}
	if name <= k.last {
		k.fail("field %q out of order after %q: fields must be appended in strictly ascending name order", name, k.last)
		return k
	}
	k.last = name
	k.b.WriteByte('|')
	k.b.WriteString(name)
	k.b.WriteByte('=')
	k.b.WriteString(value)
	return k
}

// Int64 appends an integer field.
func (k *KeyBuilder) Int64(name string, v int64) *KeyBuilder {
	return k.field(name, strconv.FormatInt(v, 10))
}

// Bool appends a boolean field ("true"/"false").
func (k *KeyBuilder) Bool(name string, v bool) *KeyBuilder {
	return k.field(name, strconv.FormatBool(v))
}

// Float appends a finite float field in canonical formatting.
func (k *KeyBuilder) Float(name string, v float64) *KeyBuilder {
	if k.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		k.fail("field %q: non-finite value %v", name, v)
		return k
	}
	return k.field(name, FormatFloat(v))
}

// Str appends a single string field; the value follows the list-value
// rules (nonempty, trimmed, delimiter-free).
func (k *KeyBuilder) Str(name, v string) *KeyBuilder {
	if k.err == nil && !validValue(v) {
		k.fail("field %q: invalid value %q", name, v)
		return k
	}
	return k.field(name, v)
}

// Floats appends a comma-joined list of finite floats. An empty list
// encodes as the empty value ("name=").
func (k *KeyBuilder) Floats(name string, vs []float64) *KeyBuilder {
	parts := make([]string, len(vs))
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			k.fail("field %q: non-finite value %v at index %d", name, v, i)
			return k
		}
		parts[i] = FormatFloat(v)
	}
	return k.field(name, strings.Join(parts, ","))
}

// Strings appends a comma-joined list of token-safe strings. An empty
// list encodes as the empty value.
func (k *KeyBuilder) Strings(name string, vs []string) *KeyBuilder {
	for i, v := range vs {
		if !validValue(v) {
			k.fail("field %q: invalid value %q at index %d", name, v, i)
			return k
		}
	}
	return k.field(name, strings.Join(vs, ","))
}

// Key returns the accumulated canonical key, or the first append error.
func (k *KeyBuilder) Key() (string, error) {
	if k.err != nil {
		return "", k.err
	}
	return k.b.String(), nil
}

// Field is one decoded name=value pair of a canonical key.
type Field struct {
	Name, Value string
}

// ParseKey decodes a canonical key into its schema prefix and ordered
// fields, enforcing the builder's layout rules in reverse: a nonempty
// schema, every field name=value with a token-safe name, and names in
// strictly ascending order (which also rules out duplicates). Values
// are returned verbatim; the caller owns their interpretation.
func ParseKey(key string) (schema string, fields []Field, err error) {
	parts := strings.Split(key, "|")
	schema = parts[0]
	if schema == "" {
		return "", nil, fmt.Errorf("scenario key: empty schema prefix in %q", key)
	}
	last := ""
	fields = make([]Field, 0, len(parts)-1)
	for _, p := range parts[1:] {
		name, value, ok := strings.Cut(p, "=")
		if !ok || !validToken(name) {
			return "", nil, fmt.Errorf("scenario key: malformed field %q", p)
		}
		if name <= last {
			return "", nil, fmt.Errorf("scenario key: field %q out of order after %q", name, last)
		}
		last = name
		fields = append(fields, Field{Name: name, Value: value})
	}
	return schema, fields, nil
}
