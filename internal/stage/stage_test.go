package stage

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesFirstResult(t *testing.T) {
	m := New(4)
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := m.Do("k", func() (any, error) {
			calls++
			return 42, nil
		})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if v.(int) != 42 {
			t.Fatalf("Do = %v, want 42", v)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	hits, misses, _, _ := m.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	m := New(4)
	boom := errors.New("boom")
	calls := 0
	compute := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, err := m.Do("k", compute); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if m.Len() != 0 {
		t.Fatalf("error was cached: Len = %d", m.Len())
	}
	v, err := m.Do("k", compute)
	if err != nil || v.(string) != "ok" {
		t.Fatalf("second Do = %v, %v; want ok, nil", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestEvictionOrderLRU(t *testing.T) {
	m := New(2)
	put := func(k string) {
		if _, err := m.Do(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatalf("Do(%q): %v", k, err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a; b is now least recently used
	put("c") // evicts b
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	stillCached := true
	if _, err := m.Do("a", func() (any, error) { stillCached = false; return "a", nil }); err != nil {
		t.Fatalf("Do(a): %v", err)
	}
	if !stillCached {
		t.Fatal("a was evicted; want the refreshed entry retained")
	}
	recomputed := false
	if _, err := m.Do("b", func() (any, error) { recomputed = true; return "b", nil }); err != nil {
		t.Fatalf("Do(b): %v", err)
	}
	if !recomputed {
		t.Fatal("b survived eviction; want it recomputed")
	}
	if _, _, _, ev := m.Counters(); ev == 0 {
		t.Fatal("eviction counter never incremented")
	}
}

// TestDoCoalescesConcurrent drives many goroutines at one key with a
// blocked leader: exactly one compute may run, and every waiter must
// see its result. Run under -race this also exercises the
// flight-handoff ordering.
func TestDoCoalescesConcurrent(t *testing.T) {
	m := New(4)
	release := make(chan struct{})
	var computes atomic.Int64
	leaderIn := make(chan struct{})
	go func() {
		_, _ = m.Do("k", func() (any, error) {
			computes.Add(1)
			close(leaderIn)
			<-release
			return 7, nil
		})
	}()
	<-leaderIn

	const followers = 16
	var wg sync.WaitGroup
	results := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := m.Do("k", func() (any, error) {
				computes.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	// Wait for every follower to register against the in-flight compute
	// before releasing the leader, so none of them race to a plain hit.
	for {
		if _, _, coalesced, _ := m.Counters(); coalesced == followers {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes ran, want 1", n)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("follower %d got %d, want 7", i, v)
		}
	}
	if _, _, coalesced, _ := m.Counters(); coalesced == 0 {
		t.Fatal("no followers coalesced")
	}
}

func TestNilMemoRunsCompute(t *testing.T) {
	var m *Memo
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := m.Do("k", func() (any, error) { calls++; return i, nil })
		if err != nil || v.(int) != i {
			t.Fatalf("nil Do = %v, %v; want %d, nil", v, err, i)
		}
	}
	if calls != 2 {
		t.Fatalf("nil memo cached: %d calls, want 2", calls)
	}
	if m.Len() != 0 {
		t.Fatalf("nil Len = %d", m.Len())
	}
	if h, mi, c, e := m.Counters(); h|mi|c|e != 0 {
		t.Fatal("nil Counters nonzero")
	}
}

func TestGetAndCachedTyped(t *testing.T) {
	m := New(4)
	s, err := Get(m, "s", func() (string, error) { return "hello", nil })
	if err != nil || s != "hello" {
		t.Fatalf("Get = %q, %v", s, err)
	}
	boom := errors.New("boom")
	if _, err := Get(m, "e", func() ([]int, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Get err = %v, want boom", err)
	}
	calls := 0
	for i := 0; i < 2; i++ {
		if got := Cached(m, "c", func() int { calls++; return 9 }); got != 9 {
			t.Fatalf("Cached = %d, want 9", got)
		}
	}
	if calls != 1 {
		t.Fatalf("Cached compute ran %d times, want 1", calls)
	}
}

func TestNewDefaultBound(t *testing.T) {
	m := New(0)
	if m.max != DefaultEntries {
		t.Fatalf("New(0) bound = %d, want %d", m.max, DefaultEntries)
	}
}

// TestDoPanickingComputeDoesNotWedgeKey is the regression test for the
// same singleflight panic hole serve's memo had: Do published the
// flight entry before running compute, and a panicking compute skipped
// the cleanup — the done channel stayed open forever and every later
// Do of that key hung. The fixed Do re-panics through the leader,
// releases waiters with ErrComputePanicked, and leaves the key
// workable for a retry.
func TestDoPanickingComputeDoesNotWedgeKey(t *testing.T) {
	m := New(4)
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		//lint:ignore errdrop test leader; the panic is the outcome under test
		m.Do("k", func() (any, error) {
			close(entered)
			<-release
			panic("compute exploded")
		})
	}()

	// The published flight entry is what a coalesced waiter blocks on.
	<-entered
	m.mu.Lock()
	f := m.flight["k"]
	m.mu.Unlock()
	if f == nil {
		t.Fatal("no flight entry published while compute is running")
	}
	close(release)

	if recovered := <-leaderDone; recovered != "compute exploded" {
		t.Fatalf("leader recover() = %v; the panic must keep unwinding through the leader", recovered)
	}
	select {
	case <-f.done:
	default:
		t.Fatal("flight done channel still open after the panicking compute; waiters would block forever")
	}
	if !errors.Is(f.err, ErrComputePanicked) {
		t.Fatalf("panicked flight err = %v, want ErrComputePanicked", f.err)
	}
	m.mu.Lock()
	_, stillInFlight := m.flight["k"]
	m.mu.Unlock()
	if stillInFlight {
		t.Fatal("flight entry survived the panic; the key is wedged for future callers")
	}

	// Nothing cached, key not poisoned: a retry computes fresh.
	v, err := m.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after panic = (%v, %v), want (42, nil)", v, err)
	}
	if hits, misses, _, _ := m.Counters(); hits != 0 || misses != 2 {
		t.Fatalf("counters after panic+retry = hits %d misses %d, want 0 and 2", hits, misses)
	}
}
