// Package stage is the compute-stage memo behind the columnar hot-path
// engine: invariant stages of the analysis pipeline — per-dataset
// demand columns, affordability inputs, spread-invariant binding scans,
// diminishing-returns profiles — are computed once per dataset and
// shared across sweep points and across concurrently running
// experiments (including concurrent `leodivide serve` queries against
// the same dataset).
//
// A Memo hangs off the dataset object it describes (demand.Distribution
// owns one), so the invalidation contract is structural: stage results
// live exactly as long as the dataset, and a new dataset starts with an
// empty memo. Keys therefore never encode dataset identity — only the
// stage name and the model knobs the stage's value depends on. Model
// knobs that do not change a stage's value (parallelism above all) must
// stay out of its key, mirroring the canonical-scenario-key rule.
//
// Concurrency: Do is safe for concurrent use and coalesces identical
// in-flight computes (singleflight) — the first caller runs compute,
// later callers of the same key block until it finishes and share the
// result. Stage computes are short and pure, so followers wait without
// a context; a compute that errors is not cached, and the error is
// returned to every coalesced caller of that round only.
package stage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Memo is a bounded, singleflight-coalesced memo of stage results.
// Construct with New; the zero value is not usable, but a nil *Memo is:
// every Do on a nil memo just runs compute (no caching), so optional
// staging degrades gracefully.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	ll      *list.List // front = most recently used
	max     int
	flight  map[string]*flight

	hits, misses, coalesced, evictions int64
}

type entry struct {
	key string
	val any
}

// flight is one in-flight compute; followers wait on done and then read
// val/err, which the leader writes before closing done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultEntries bounds a dataset's stage memo. Stage values are small
// (columns and scan summaries, not experiment results), but serve-layer
// queries can mint one binding-scan entry per distinct oversubscription
// knob, so the memo is LRU-bounded rather than unbounded.
const DefaultEntries = 128

// New returns a memo bounded to maxEntries stage results (<= 0 selects
// DefaultEntries).
func New(maxEntries int) *Memo {
	if maxEntries <= 0 {
		maxEntries = DefaultEntries
	}
	return &Memo{
		entries: make(map[string]*list.Element),
		ll:      list.New(),
		max:     maxEntries,
		flight:  make(map[string]*flight),
	}
}

// Do returns the stage value for key, running compute on first use.
// Concurrent calls with the same key share one compute. Successful
// results are cached (LRU past the bound); errors are not, so a
// transient failure does not poison the key.
func (m *Memo) Do(key string, compute func() (any, error)) (any, error) {
	if m == nil {
		return compute()
	}
	m.mu.Lock()
	if el, ok := m.entries[key]; ok {
		m.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		m.hits++
		m.mu.Unlock()
		return v, nil
	}
	if f, ok := m.flight[key]; ok {
		m.coalesced++
		m.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	m.flight[key] = f
	m.misses++
	m.mu.Unlock()

	// The flight entry is already published, so the cleanup must
	// survive a panicking compute: otherwise the key's done channel
	// never closes and every later Do of that key blocks forever.
	// Coalesced waiters of a panicked round get ErrComputePanicked;
	// the panic itself keeps unwinding through the leader.
	completed := false
	defer func() {
		if !completed {
			f.err = ErrComputePanicked
		}
		m.mu.Lock()
		delete(m.flight, key)
		if completed && f.err == nil {
			m.add(key, f.val)
		}
		m.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	completed = true
	return f.val, f.err
}

// ErrComputePanicked is returned to coalesced callers whose leader's
// compute panicked. Nothing is cached; a retry runs a fresh compute.
var ErrComputePanicked = errors.New("stage: compute panicked in the coalescing leader")

// add inserts under m.mu, evicting least recently used entries past the
// bound.
func (m *Memo) add(key string, val any) {
	if el, ok := m.entries[key]; ok {
		m.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	m.entries[key] = m.ll.PushFront(&entry{key: key, val: val})
	for m.ll.Len() > m.max {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.entries, oldest.Value.(*entry).key)
		m.evictions++
	}
}

// Len reports the number of cached stage results.
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Counters returns the memo's lifetime traffic counts.
func (m *Memo) Counters() (hits, misses, coalesced, evictions int64) {
	if m == nil {
		return 0, 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.coalesced, m.evictions
}

// Get memoizes a fallible typed compute under key.
func Get[T any](m *Memo, key string, compute func() (T, error)) (T, error) {
	v, err := m.Do(key, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Cached memoizes an infallible typed compute under key. Do can still
// surface an error — a coalesced leader's compute may panic — and with
// no error channel to the caller, the only honest move is to re-panic.
func Cached[T any](m *Memo, key string, compute func() T) T {
	v, err := m.Do(key, func() (any, error) { return compute(), nil })
	if err != nil {
		panic(fmt.Sprintf("stage: infallible compute for %q failed: %v", key, err))
	}
	return v.(T)
}
