package benchfmt

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func validReport() Report {
	return Report{
		Schema: Schema, Seed: 1, Scale: 0.02, Reps: 1,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Results: []Result{
			{Experiment: "fig1", Workers: 1, NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 100},
			{Experiment: "fig1", Workers: 2, NsPerOp: 900, AllocsPerOp: 10, BytesPerOp: 100},
			{Experiment: "generate", Workers: 1, NsPerOp: 5000},
			{Experiment: "generate", Workers: 2, NsPerOp: 3000},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "leodivide-bench/v0" }, "schema"},
		{"empty results", func(r *Report) { r.Results = nil }, "no results"},
		{"missing name", func(r *Report) { r.Results[0].Experiment = "" }, "no experiment name"},
		{"negative workers", func(r *Report) { r.Results[0].Workers = -1 }, "negative workers"},
		{"zero ns", func(r *Report) { r.Results[0].NsPerOp = 0 }, "ns_per_op"},
		{"duplicate cell", func(r *Report) { r.Results[1] = r.Results[0] }, "duplicate"},
	}
	for _, tc := range cases {
		r := validReport()
		tc.mutate(&r)
		err := r.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateCoverage(t *testing.T) {
	r := validReport()
	if err := r.ValidateCoverage([]string{"fig1", "generate"}, 2); err != nil {
		t.Fatalf("complete coverage rejected: %v", err)
	}
	if err := r.ValidateCoverage([]string{"fig1", "table2"}, 2); err == nil {
		t.Error("missing experiment accepted")
	} else if !strings.Contains(err.Error(), "table2 (0/2") {
		t.Errorf("coverage error should name the gap, got: %v", err)
	}
	if err := r.ValidateCoverage([]string{"fig1"}, 3); err == nil {
		t.Error("insufficient worker counts accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := validReport()
	// Shuffle to prove Write canonicalizes order.
	r.Results[0], r.Results[3] = r.Results[3], r.Results[0]
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Experiment != "fig1" || got.Results[0].Workers != 1 {
		t.Errorf("results not in canonical order: first = %+v", got.Results[0])
	}
	if len(got.Results) != 4 || got.Scale != 0.02 {
		t.Errorf("round trip lost data: %+v", got)
	}

	// Two writes of the same report must be byte-identical.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := got.Write(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("Write is not deterministic")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"schema":"leodivide-bench/v1","results":[],"extra_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestPeakRSSBytes(t *testing.T) {
	rss := PeakRSSBytes()
	if runtime.GOOS == "linux" && rss <= 0 {
		t.Errorf("PeakRSSBytes = %d on linux, want > 0", rss)
	}
	if rss < 0 {
		t.Errorf("PeakRSSBytes = %d, want >= 0", rss)
	}
}
