// Package benchfmt defines the machine-readable benchmark report the
// `leodivide bench` subcommand emits (BENCH_*.json): a schema-versioned
// JSON document carrying per-experiment timing, allocation and
// peak-RSS figures across a worker-count sweep. The schema string is
// the compatibility contract — consumers reject documents whose schema
// they do not know, and any shape change bumps the version.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the current report shape. Bump the suffix on any
// incompatible change.
const Schema = "leodivide-bench/v1"

// Report is one bench run: the environment it ran in plus one Result
// per (experiment, workers) pair.
type Report struct {
	// Schema must equal the package Schema constant.
	Schema string `json:"schema"`
	// Seed, Scale and Reps record the run configuration.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	Reps  int     `json:"reps"`
	// Environment provenance.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Results holds one entry per (experiment, workers) pair, sorted by
	// experiment then workers.
	Results []Result `json:"results"`
}

// Result is one measured (experiment, workers) cell.
type Result struct {
	// Experiment is the registry name, or "generate" for dataset
	// generation.
	Experiment string `json:"experiment"`
	// Workers is the parallelism setting (0 = one worker per CPU).
	Workers int `json:"workers"`
	// NsPerOp is wall time per run in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation deltas per run
	// (runtime.MemStats Mallocs / TotalAlloc).
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// PeakRSSBytes is the process high-water RSS after the run (VmHWM;
	// 0 where unsupported). Monotone over the process lifetime, so it
	// bounds — not isolates — this experiment's footprint.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// Validate checks structural invariants: known schema, non-empty
// results, well-formed cells, no duplicate (experiment, workers) pairs.
func (r Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("benchfmt: report has no results")
	}
	seen := map[string]bool{}
	for i, res := range r.Results {
		if res.Experiment == "" {
			return fmt.Errorf("benchfmt: result %d has no experiment name", i)
		}
		if res.Workers < 0 {
			return fmt.Errorf("benchfmt: result %d (%s) has negative workers", i, res.Experiment)
		}
		if res.NsPerOp <= 0 {
			return fmt.Errorf("benchfmt: result %d (%s workers=%d) has non-positive ns_per_op", i, res.Experiment, res.Workers)
		}
		key := res.Experiment + "/" + strconv.Itoa(res.Workers)
		if seen[key] {
			return fmt.Errorf("benchfmt: duplicate result for %s", key)
		}
		seen[key] = true
	}
	return nil
}

// ValidateCoverage additionally requires every named experiment to be
// measured at >= minWorkerCounts distinct worker settings.
func (r Report) ValidateCoverage(experiments []string, minWorkerCounts int) error {
	if err := r.Validate(); err != nil {
		return err
	}
	counts := map[string]map[int]bool{}
	for _, res := range r.Results {
		if counts[res.Experiment] == nil {
			counts[res.Experiment] = map[int]bool{}
		}
		counts[res.Experiment][res.Workers] = true
	}
	var missing []string
	for _, name := range experiments {
		if len(counts[name]) < minWorkerCounts {
			missing = append(missing,
				fmt.Sprintf("%s (%d/%d worker counts)", name, len(counts[name]), minWorkerCounts))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("benchfmt: incomplete coverage: %s", strings.Join(missing, ", "))
	}
	return nil
}

// Sort orders results by experiment name then workers, the canonical
// on-disk order.
func (r *Report) Sort() {
	sort.Slice(r.Results, func(i, j int) bool {
		a, b := r.Results[i], r.Results[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		return a.Workers < b.Workers
	})
}

// Write encodes the report as canonical indented JSON (sorted results,
// trailing newline).
func (r Report) Write(w io.Writer) error {
	r.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read decodes and validates a report.
func Read(rd io.Reader) (Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("benchfmt: decode: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// PeakRSSBytes reports the process's high-water resident set size from
// /proc/self/status (VmHWM), or 0 where that interface is unavailable.
func PeakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	//lint:ignore errdrop closing a read-only file; read errors already surfaced through the decoder
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line) // "VmHWM:  123456 kB"
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
