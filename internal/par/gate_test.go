package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsAdmission(t *testing.T) {
	const gcap, n = 3, 20
	g := NewGate(gcap)
	if g.Cap() != gcap {
		t.Fatalf("Cap = %d, want %d", g.Cap(), gcap)
	}
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(ctx); err != nil {
				t.Error(err)
				return
			}
			cur := inUse.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > gcap {
		t.Errorf("peak concurrent holders = %d, want <= %d", p, gcap)
	}
	if g.InUse() != 0 {
		t.Errorf("InUse = %d after all released", g.InUse())
	}
}

func TestGateAcquireHonorsCancellation(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Errorf("blocked Acquire returned %v, want context.Canceled", err)
	}
	// A pre-cancelled context loses even when a slot is free.
	g.Release()
	if err := g.Acquire(ctx); err != context.Canceled {
		t.Errorf("Acquire with cancelled ctx and free slot returned %v, want context.Canceled", err)
	}
}

func TestGateTryAcquire(t *testing.T) {
	g := NewGate(1)
	if !g.TryAcquire() {
		t.Fatal("TryAcquire on an empty gate failed")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire on a full gate succeeded")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
	g.Release()
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	NewGate(1).Release()
}

func TestGateZeroMeansPerCPU(t *testing.T) {
	if got := NewGate(0).Cap(); got != Workers(0) {
		t.Errorf("NewGate(0).Cap() = %d, want %d", got, Workers(0))
	}
}
