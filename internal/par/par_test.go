package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != Workers(0) {
		t.Errorf("Workers(-3) = %d, want %d", got, Workers(0))
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(n=0) = %v, %v; want nil, nil", out, err)
	}
}

func TestForEachWorkerBound(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	err := ForEach(context.Background(), workers, 64, func(i int) error {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent iterations, want <= %d", p, workers)
	}
}

func TestForEachSmallestErrorWins(t *testing.T) {
	// Every iteration fails; index 0 is always dispatched first, so its
	// error must be the one reported at any worker count.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), workers, 50, func(i int) error {
			return fmt.Errorf("iteration %d failed", i)
		})
		if err == nil || err.Error() != "iteration 0 failed" {
			t.Errorf("workers=%d: err = %v, want iteration 0 failed", workers, err)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), 2, 10000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n == 10000 {
		t.Errorf("error did not short-circuit the sweep (%d calls)", n)
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		err := ForEach(ctx, workers, 100000, func(i int) error {
			if calls.Add(1) == 10 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := calls.Load(); n == 100000 {
			t.Errorf("workers=%d: cancellation did not stop the sweep", workers)
		}
	}
}

func TestForEachPanicPropagation(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
					return
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "deliberate test panic") {
					t.Errorf("workers=%d: panic message %q lost the original value", workers, msg)
				}
			}()
			_ = ForEach(context.Background(), workers, 32, func(i int) error {
				if i == 5 {
					panic("deliberate test panic")
				}
				return nil
			})
		}()
	}
}

// sentinelPanic is a distinct type so the test below can prove the
// panic value crosses the pool with its type intact, not flattened to
// a string.
type sentinelPanic struct{ code int }

func TestForEachPanicPreservesValue(t *testing.T) {
	original := sentinelPanic{code: 42}
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *par.Panic", r)
		}
		got, ok := p.Value.(sentinelPanic)
		if !ok {
			t.Fatalf("wrapped value is %T, want sentinelPanic", p.Value)
		}
		if got != original {
			t.Errorf("wrapped value = %+v, want %+v", got, original)
		}
		if len(p.Stack) == 0 {
			t.Error("worker stack was not captured")
		}
		if !strings.Contains(p.String(), "worker panic") {
			t.Errorf("String() = %q", p.String())
		}
		if p.Error() != p.String() {
			t.Error("Error() and String() disagree")
		}
	}()
	_ = ForEach(context.Background(), 4, 16, func(i int) error {
		if i == 3 {
			panic(original)
		}
		return nil
	})
	t.Fatal("panic did not propagate")
}

func TestForEachSerialPanicUnwrapped(t *testing.T) {
	// workers == 1 is the inline serial path: the panic is the caller's
	// own, not wrapped.
	defer func() {
		if r := recover(); r != "plain" {
			t.Errorf("serial panic = %v, want plain", r)
		}
	}()
	_ = ForEach(context.Background(), 1, 3, func(i int) error {
		if i == 1 {
			panic("plain")
		}
		return nil
	})
}
