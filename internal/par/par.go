// Package par is the repo's deterministic fan-out engine: a small
// bounded worker pool used to parallelize the experiment pipeline's hot
// loops (dataset generation, the Fig2/Table2/Fig3 sweeps, simulator
// epochs) without changing any output.
//
// Design rules that make parallel output byte-identical to serial:
//
//   - Work is indexed 0..n-1 and results land in index-order slots, so
//     collection order never depends on goroutine scheduling.
//   - workers == 1 runs the loop inline on the calling goroutine — the
//     exact serial path, no goroutines at all.
//   - When several iterations fail, the error of the smallest index is
//     returned, matching what the serial loop would have reported.
//   - A panicking iteration is captured and re-panicked on the calling
//     goroutine as a *Panic wrapper that preserves the original value
//     (typed, recoverable by callers) and the worker's stack, so
//     `go test` failures read the same as serial ones.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leodivide/internal/obs"
)

// Pool observability (see internal/obs). Everything here records at
// sweep or worker granularity — never per task — so the instrumented
// pool stays within noise of the uninstrumented one even on sweeps with
// tens of thousands of tiny iterations. The instrument pointers are
// cached once so the hot path never touches the registry map.
var (
	metricSweeps    = obs.Default.Counter("par.sweeps")
	metricTasks     = obs.Default.Counter("par.tasks")
	metricSweepSecs = obs.Default.Histogram("par.sweep.seconds", obs.DurationBuckets)
	metricSweepSize = obs.Default.Histogram("par.sweep.tasks", obs.CountBuckets)
	// metricQueueWait is the delay between a sweep starting and each
	// pooled worker running its first task: goroutine spawn + scheduling
	// latency, the pool's fixed cost.
	metricQueueWait = obs.Default.Histogram("par.queue_wait.seconds", obs.DurationBuckets)
	// metricOccupancy is, per pooled sweep, the mean fraction of the
	// sweep's wall-clock each worker spent live. Values well below 1
	// indicate ramp-down imbalance: some workers finished long before
	// the slowest one.
	metricOccupancy = obs.Default.Histogram("par.worker.occupancy", obs.RatioBuckets)
)

// Panic carries a worker panic across the goroutine boundary. ForEach
// re-panics with a *Panic so the calling goroutine's recover() can get
// back the original value — type intact — via Value, alongside the
// stack of the worker it escaped from.
type Panic struct {
	// Value is the original panic value, exactly as the worker raised it.
	Value any
	// Stack is the panicking worker goroutine's stack trace.
	Stack []byte
}

// String renders the panic for crash logs: the original value followed
// by the worker stack.
func (p *Panic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// Error makes *Panic usable where an error is expected (e.g. a caller
// converting a recovered panic into a failure return).
func (p *Panic) Error() string { return p.String() }

// Workers normalizes a parallelism knob: n >= 1 is used as-is; zero or
// negative mean "one worker per available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0..n-1) on at most workers goroutines and waits for
// completion. workers <= 0 selects Workers(0); workers == 1 runs
// serially inline. The first error by index order is returned; a
// context cancellation observed before an iteration starts stops the
// sweep and reports ctx.Err() unless an iteration error outranks it.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	//lint:ignore detrand wall-clock feeds the sweep-duration metric only; task results are unaffected
	sweepStart := time.Now()
	_, span := obs.StartSpan(ctx, "par.sweep")
	if span != nil {
		span.SetAttr(obs.Int("tasks", int64(n)), obs.Int("workers", int64(workers)))
	}
	var (
		serialDone int64
		pooledDone atomic.Int64
	)
	defer func() {
		metricSweeps.Inc()
		metricTasks.Add(serialDone + pooledDone.Load())
		metricSweepSize.Observe(float64(n))
		metricSweepSecs.ObserveSince(sweepStart)
		span.End()
	}()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			serialDone++
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next      atomic.Int64
		stop      atomic.Bool
		mu        sync.Mutex
		errIdx    = n // smallest failing index seen so far
		err       error
		caught    *Panic
		wg        sync.WaitGroup
		ctxDone   = false
		busyNanos atomic.Int64
	)
	record := func(i int, e error) {
		mu.Lock()
		if i < errIdx {
			errIdx, err = i, e
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			//lint:ignore detrand wall-clock feeds the worker-occupancy metric only; task results are unaffected
			wstart := time.Now()
			first := true
			var done int64
			defer func() {
				busyNanos.Add(time.Since(wstart).Nanoseconds())
				pooledDone.Add(done)
				wg.Done()
			}()
			for {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					mu.Lock()
					ctxDone = true
					mu.Unlock()
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if first {
					metricQueueWait.ObserveSince(sweepStart)
					first = false
				}
				done++
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 64<<10)
							buf = buf[:runtime.Stack(buf, false)]
							mu.Lock()
							if caught == nil {
								caught = &Panic{Value: r, Stack: buf}
							}
							mu.Unlock()
							stop.Store(true)
						}
					}()
					if e := fn(i); e != nil {
						record(i, e)
					}
				}()
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(sweepStart); wall > 0 {
		metricOccupancy.Observe(float64(busyNanos.Load()) /
			(float64(wall.Nanoseconds()) * float64(workers)))
	}
	if caught != nil {
		panic(caught)
	}
	if err != nil {
		return err
	}
	if ctxDone {
		return ctx.Err()
	}
	return nil
}

// Map runs fn(0..n-1) under ForEach's pool and returns the results in
// index order. On error the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, e := fn(i)
		if e != nil {
			return e
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
