package par

import "context"

// Gate is a bounded admission gate: at most Cap goroutines hold it at
// once. It is the serving layer's counterpart to ForEach's worker
// bound — where ForEach bounds fan-out inside one run, Gate bounds how
// many runs are admitted concurrently, so a burst of scenario queries
// cannot oversubscribe the worker pools they each fan out on.
//
// The zero value is not usable; obtain one from NewGate.
type Gate struct {
	sem chan struct{}
}

// NewGate returns a gate admitting at most n concurrent holders; n is
// normalized by Workers, so 0 (or negative) means one per CPU.
func NewGate(n int) *Gate {
	return &Gate{sem: make(chan struct{}, Workers(n))}
}

// Cap returns the admission bound.
func (g *Gate) Cap() int { return cap(g.sem) }

// InUse returns the number of currently admitted holders (a snapshot;
// stale by the time the caller reads it, useful for gauges only).
func (g *Gate) InUse() int { return len(g.sem) }

// Acquire blocks until a slot frees or ctx is done, and reports which.
// Every successful Acquire must be paired with exactly one Release.
func (g *Gate) Acquire(ctx context.Context) error {
	// A done context wins even when a slot is also free, so a cancelled
	// caller never starts work it no longer wants.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking and reports whether it got
// one. A true return must be paired with exactly one Release.
func (g *Gate) TryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire. Releasing more
// than was acquired panics — that is a caller bug, not a recoverable
// state.
func (g *Gate) Release() {
	select {
	case <-g.sem:
	default:
		panic("par: Gate.Release without a matching Acquire")
	}
}
