package orbit

import (
	"fmt"
	"math"

	"leodivide/internal/geo"
)

// Inter-satellite links: the +Grid topology Starlink uses, where each
// satellite holds four optical links — fore and aft to its in-plane
// neighbors, and port/starboard to the nearest satellites in the
// adjacent planes. ISLs free satellites from the bent-pipe gateway
// constraint the paper describes ("indirectly via inter-satellite
// link").

// ISLTopology captures a Walker shell's +Grid link structure at epoch.
type ISLTopology struct {
	shell    Walker
	perPlane int
	// Links[i] lists the satellite indices linked to satellite i
	// (index = plane*perPlane + slot).
	Links [][]int
}

// ISLGrid builds the +Grid topology for a shell: every satellite links
// fore and aft to its in-plane neighbors, and each satellite initiates
// one starboard link to the nearest-anomaly satellite in the next
// plane (Walker phasing shifts slots between planes, and at the
// phasing seam "same slot" can be nearly antipodal — nearest-anomaly
// linking keeps every cross-plane link short). Links are undirected;
// degrees are 4 away from rounding boundaries.
func (w Walker) ISLGrid() (*ISLTopology, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	perPlane := w.Total / w.Planes
	if perPlane < 3 || w.Planes < 3 {
		return nil, fmt.Errorf("orbit: +Grid needs ≥3 planes of ≥3 satellites, got %d×%d", w.Planes, perPlane)
	}
	t := &ISLTopology{shell: w, perPlane: perPlane, Links: make([][]int, w.Total)}
	idx := func(plane, slot int) int {
		plane = ((plane % w.Planes) + w.Planes) % w.Planes
		slot = ((slot % perPlane) + perPlane) % perPlane
		return plane*perPlane + slot
	}
	slotWidth := 360.0 / float64(perPlane)
	phase := func(p int) float64 {
		return 360 * float64(w.Phasing) * float64(p) / float64(w.Total)
	}
	addLink := func(i, j int) {
		for _, e := range t.Links[i] {
			if e == j {
				return
			}
		}
		t.Links[i] = append(t.Links[i], j)
		t.Links[j] = append(t.Links[j], i)
	}
	for p := 0; p < w.Planes; p++ {
		// Anomaly offset between this plane and the next, in slots.
		next := (p + 1) % w.Planes
		deltaSlots := (phase(p) - phase(next)) / slotWidth
		for s := 0; s < perPlane; s++ {
			i := idx(p, s)
			addLink(i, idx(p, s+1)) // in-plane (s-1 covered by neighbor)
			starboard := idx(next, s+int(math.Round(deltaSlots)))
			addLink(i, starboard)
		}
	}
	return t, nil
}

// Degree returns the link count of satellite i (4 on average; 3-6 at
// phasing-rounding boundaries).
func (t *ISLTopology) Degree(i int) int { return len(t.Links[i]) }

// LinkDistanceKm returns the instantaneous distance of the link between
// satellites i and j at time tSec.
func (t *ISLTopology) LinkDistanceKm(orbits []CircularOrbit, i, j int, tSec float64) float64 {
	pi := orbits[i].PositionECI(tSec)
	pj := orbits[j].PositionECI(tSec)
	return pi.Sub(pj).Norm()
}

// LinkStats summarizes link distances across the topology at an epoch.
type LinkStats struct {
	InPlaneKm                        float64 // constant by symmetry
	CrossPlaneMinKm, CrossPlaneMaxKm float64
}

// Stats measures the topology's link distances at time tSec.
func (t *ISLTopology) Stats(tSec float64) (LinkStats, error) {
	orbits, err := t.shell.Orbits()
	if err != nil {
		return LinkStats{}, err
	}
	var out LinkStats
	out.CrossPlaneMinKm = math.Inf(1)
	for i, links := range t.Links {
		plane := i / t.perPlane
		for _, j := range links {
			d := t.LinkDistanceKm(orbits, i, j, tSec)
			if j/t.perPlane == plane {
				out.InPlaneKm = d // identical for all in-plane pairs
			} else {
				if d < out.CrossPlaneMinKm {
					out.CrossPlaneMinKm = d
				}
				if d > out.CrossPlaneMaxKm {
					out.CrossPlaneMaxKm = d
				}
			}
		}
	}
	return out, nil
}

// HopPath is the shortest ISL path between two ground points through
// the shell: uplink to the best satellite over each endpoint, then the
// minimum-distance route through the +Grid (Dijkstra over link
// lengths).
type HopPath struct {
	Hops     int
	PathKm   float64
	OneWayMs float64
	// Endpoints are the entry/exit satellite indices.
	EntrySat, ExitSat int
}

// Route finds the minimum-distance +Grid path between ground points a
// and b at time tSec, with both endpoints using their
// highest-elevation visible satellite (above maskDeg).
func (t *ISLTopology) Route(a, b geo.LatLng, maskDeg, tSec float64) (HopPath, error) {
	orbits, err := t.shell.Orbits()
	if err != nil {
		return HopPath{}, err
	}
	positions := make([]geo.Vec3, len(orbits))
	for i, o := range orbits {
		positions[i] = ECIToECEF(o.PositionECI(tSec), tSec)
	}
	entry := bestVisible(positions, a, maskDeg)
	exit := bestVisible(positions, b, maskDeg)
	if entry < 0 || exit < 0 {
		return HopPath{}, fmt.Errorf("orbit: no visible satellite at an endpoint")
	}
	// Dijkstra over link distances. The graph is small (thousands of
	// nodes, degree 4); a simple scan-for-minimum suffices.
	const unreached = -2
	dist := make([]float64, len(orbits))
	prev := make([]int, len(orbits))
	done := make([]bool, len(orbits))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = unreached
	}
	dist[entry] = 0
	prev[entry] = -1
	for {
		cur, best := -1, math.Inf(1)
		for i := range dist {
			if !done[i] && dist[i] < best {
				cur, best = i, dist[i]
			}
		}
		if cur < 0 || cur == exit {
			break
		}
		done[cur] = true
		for _, nb := range t.Links[cur] {
			if done[nb] {
				continue
			}
			d := dist[cur] + positions[cur].Sub(positions[nb]).Norm()
			if d < dist[nb] {
				dist[nb] = d
				prev[nb] = cur
			}
		}
	}
	if prev[exit] == unreached {
		return HopPath{}, fmt.Errorf("orbit: grid disconnected (unexpected)")
	}
	pathKm := a.Vector().Scale(geo.EarthRadiusKm).Sub(positions[entry]).Norm() +
		b.Vector().Scale(geo.EarthRadiusKm).Sub(positions[exit]).Norm() +
		dist[exit]
	hops := 0
	for cur := exit; prev[cur] >= 0; cur = prev[cur] {
		hops++
	}
	return HopPath{
		Hops:     hops,
		PathKm:   pathKm,
		OneWayMs: PropagationDelayMs(pathKm),
		EntrySat: entry,
		ExitSat:  exit,
	}, nil
}

// bestVisible returns the highest-elevation satellite index above the
// mask, or -1.
func bestVisible(positions []geo.Vec3, ground geo.LatLng, maskDeg float64) int {
	best, bestEl := -1, maskDeg
	for i, p := range positions {
		if el := ElevationDeg(p, ground); el >= bestEl {
			best, bestEl = i, el
		}
	}
	return best
}
