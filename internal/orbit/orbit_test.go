package orbit

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/geo"
)

func starlinkOrbit() CircularOrbit {
	return CircularOrbit{AltitudeKm: 550, InclinationDeg: 53}
}

func TestPeriodAndSpeed(t *testing.T) {
	o := starlinkOrbit()
	// A 550 km circular orbit has a ~95.6-minute period and ~7.59 km/s
	// speed.
	if got := o.PeriodSeconds(); math.Abs(got-5736) > 30 {
		t.Errorf("period = %.0f s, want ≈5736", got)
	}
	if got := o.SpeedKmPerSec(); math.Abs(got-7.59) > 0.03 {
		t.Errorf("speed = %.3f km/s, want ≈7.59", got)
	}
	if got := o.MeanMotionRadPerSec() * o.PeriodSeconds(); math.Abs(got-2*math.Pi) > 1e-9 {
		t.Errorf("mean motion × period = %v, want 2π", got)
	}
}

// Property: the orbit radius is conserved along the trajectory.
func TestRadiusInvariantProperty(t *testing.T) {
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 77, PhaseDeg: 13}
	f := func(tRaw uint32) bool {
		tt := float64(tRaw%86400) + float64(tRaw%1000)/1000
		r := o.PositionECI(tt).Norm()
		return math.Abs(r-o.RadiusKm()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ECI↔ECEF round-trips.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(x, y, z int16, tRaw uint32) bool {
		p := geo.Vec3{X: float64(x), Y: float64(y), Z: float64(z)}
		tt := float64(tRaw % 86400)
		q := ECEFToECI(ECIToECEF(p, tt), tt)
		return q.Sub(p).Norm() < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: subsatellite latitude never exceeds the inclination.
func TestSubsatelliteLatitudeBound(t *testing.T) {
	o := starlinkOrbit()
	for i := 0; i < 500; i++ {
		tt := o.PeriodSeconds() * float64(i) / 500
		p := o.SubsatellitePoint(tt)
		if math.Abs(p.Lat) > o.InclinationDeg+1e-6 {
			t.Fatalf("subsatellite latitude %v exceeds inclination", p.Lat)
		}
	}
}

func TestWalkerOrbits(t *testing.T) {
	w := Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 60, Planes: 6, Phasing: 2}
	orbits, err := w.Orbits()
	if err != nil {
		t.Fatal(err)
	}
	if len(orbits) != 60 {
		t.Fatalf("got %d orbits, want 60", len(orbits))
	}
	// All share altitude and inclination; RAANs are evenly spaced.
	raans := make(map[float64]int)
	for _, o := range orbits {
		if o.AltitudeKm != 550 || o.InclinationDeg != 53 {
			t.Fatalf("orbit parameters corrupted: %+v", o)
		}
		raans[o.RAANDeg]++
	}
	if len(raans) != 6 {
		t.Errorf("got %d distinct RAANs, want 6", len(raans))
	}
	for raan, n := range raans {
		if n != 10 {
			t.Errorf("RAAN %v has %d satellites, want 10", raan, n)
		}
	}
}

func TestWalkerValidate(t *testing.T) {
	bad := []Walker{
		{Total: 0, Planes: 1, AltitudeKm: 550, InclinationDeg: 53},
		{Total: 10, Planes: 3, AltitudeKm: 550, InclinationDeg: 53},
		{Total: 10, Planes: 5, AltitudeKm: -1, InclinationDeg: 53},
		{Total: 10, Planes: 5, AltitudeKm: 550, InclinationDeg: 0},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", w)
		}
	}
	if err := StarlinkShell1().Validate(); err != nil {
		t.Errorf("StarlinkShell1 invalid: %v", err)
	}
}

func TestDensityFactorShape(t *testing.T) {
	// The profile is symmetric, minimal at the equator, and rises
	// toward the inclination latitude.
	inc := 53.0
	if got, want := DensityFactor(inc, 0), 2/(math.Pi*math.Sin(geo.Radians(inc))); math.Abs(got-want) > 1e-9 {
		t.Errorf("equator density = %v, want %v", got, want)
	}
	if DensityFactor(inc, 30) != DensityFactor(inc, -30) {
		t.Error("density not symmetric in latitude")
	}
	prev := 0.0
	for lat := 0.0; lat <= 50; lat += 5 {
		f := DensityFactor(inc, lat)
		if f <= prev {
			t.Fatalf("density not increasing at lat %v", lat)
		}
		prev = f
	}
	// Beyond the inclination the factor stays finite (capped).
	if f := DensityFactor(inc, 80); math.IsInf(f, 0) || f <= 0 {
		t.Errorf("density beyond inclination = %v", f)
	}
	// Retrograde inclinations fold into [0, 90].
	if DensityFactor(97, 40) != DensityFactor(83, 40) {
		t.Error("retrograde inclination not folded")
	}
}

// The density factor integrates to 1 over the sphere; restricted to
// two degrees inside the inclination band (DensityFactor is
// intentionally capped, not zero, beyond the band so sizing stays
// finite there), the integral is (2/π)·asin(sin(i−2°)/sin(i)) ≈ 0.852
// for i = 53°.
func TestDensityFactorNormalization(t *testing.T) {
	inc := 53.0
	edge := inc - 2
	sum := 0.0
	const steps = 20000
	dlat := 2 * edge / steps
	for i := 0; i < steps; i++ {
		lat := -edge + 2*edge*(float64(i)+0.5)/steps
		// Fraction of the sphere's area in this latitude band.
		w := math.Cos(geo.Radians(lat)) * geo.Radians(dlat) / 2
		sum += DensityFactor(inc, lat) * w
	}
	want := 2 / math.Pi * math.Asin(math.Sin(geo.Radians(edge))/math.Sin(geo.Radians(inc)))
	if math.Abs(sum-want) > 0.01 {
		t.Errorf("density integral within band = %v, want ≈%v", sum, want)
	}
}

func TestLatitudeHistogramMatchesAnalytic(t *testing.T) {
	w := Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 220, Planes: 20, Phasing: 3}
	hist, err := w.LatitudeHistogram(5, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Compare empirical to analytic density enhancement at mid
	// latitudes (away from the singular turning latitude).
	for _, lat := range []float64{0, 15, 30, 40} {
		bin := int((lat + 90) / 5)
		analytic := DensityFactor(53, lat+2.5)
		if hist[bin] == 0 {
			t.Fatalf("empty histogram bin at lat %v", lat)
		}
		ratio := hist[bin] / analytic
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("lat %v: empirical/analytic = %.3f, want within 15%%", lat, ratio)
		}
	}
	// No mass above the inclination band (plus one bin of slack).
	for bin := int((53+90)/5) + 2; bin < len(hist); bin++ {
		if hist[bin] != 0 {
			t.Errorf("histogram mass at bin %d beyond inclination", bin)
		}
	}
}

func TestLatitudeHistogramErrors(t *testing.T) {
	w := StarlinkShell1()
	if _, err := w.LatitudeHistogram(0, 10); err == nil {
		t.Error("binDeg=0 should fail")
	}
	bad := Walker{Total: 7, Planes: 3, AltitudeKm: 550, InclinationDeg: 53}
	if _, err := bad.LatitudeHistogram(5, 10); err == nil {
		t.Error("invalid walker should fail")
	}
}

func TestCoverageRadius(t *testing.T) {
	// At 0° elevation the horizon distance from 550 km is ~2,550 km
	// along the surface; at 90° it is zero.
	if got := CoverageRadiusKm(550, 0); math.Abs(got-2550) > 50 {
		t.Errorf("coverage at 0 deg = %.0f km, want ≈2550", got)
	}
	if got := CoverageRadiusKm(550, 90); got > 1 {
		t.Errorf("coverage at 90 deg = %.1f km, want ≈0", got)
	}
	if a, b := CoverageRadiusKm(550, 25), CoverageRadiusKm(550, 40); a <= b {
		t.Errorf("coverage should shrink with elevation: %v vs %v", a, b)
	}
	if a, b := CoverageRadiusKm(550, 25), CoverageRadiusKm(1100, 25); a >= b {
		t.Errorf("coverage should grow with altitude: %v vs %v", a, b)
	}
}

func TestElevation(t *testing.T) {
	p := geo.LatLng{Lat: 40, Lng: -100}
	// Satellite directly overhead.
	overhead := p.Vector().Scale(geo.EarthRadiusKm + 550)
	if got := ElevationDeg(overhead, p); math.Abs(got-90) > 1e-6 {
		t.Errorf("overhead elevation = %v, want 90", got)
	}
	// Satellite on the other side of the Earth is far below horizon.
	antipode := p.Vector().Scale(-(geo.EarthRadiusKm + 550))
	if got := ElevationDeg(antipode, p); got > -80 {
		t.Errorf("antipodal elevation = %v, want ≈-90", got)
	}
	if !Visible(overhead, p, 25) {
		t.Error("overhead satellite not visible")
	}
	if Visible(antipode, p, 25) {
		t.Error("antipodal satellite visible")
	}
}

func TestSubsatelliteGroundTrackMoves(t *testing.T) {
	o := starlinkOrbit()
	p0 := o.SubsatellitePoint(0)
	p1 := o.SubsatellitePoint(60)
	if geo.DistanceKm(p0, p1) < 100 {
		t.Errorf("ground track barely moved in 60s: %v -> %v", p0, p1)
	}
}

func BenchmarkPropagateShell(b *testing.B) {
	orbits, err := StarlinkShell1().Orbits()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range orbits {
			_ = ECIToECEF(o.PositionECI(float64(i)), float64(i))
		}
	}
}

func TestNodalPrecession(t *testing.T) {
	// The 53°/550 km shell regresses westward a few degrees per day.
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53}
	rate := o.NodalPrecessionDegPerDay(0)
	if rate > -3 || rate < -6 {
		t.Errorf("53° precession = %v °/day, want ≈-4.6", rate)
	}
	// A polar orbit does not precess; retrograde precesses eastward.
	polar := CircularOrbit{AltitudeKm: 550, InclinationDeg: 90}
	if r := polar.NodalPrecessionDegPerDay(0); math.Abs(r) > 1e-9 {
		t.Errorf("polar precession = %v", r)
	}
	retro := CircularOrbit{AltitudeKm: 560, InclinationDeg: 97.6}
	if r := retro.NodalPrecessionDegPerDay(0); r <= 0 {
		t.Errorf("retrograde precession = %v, want positive", r)
	}
}

func TestSunSynchronousInclination(t *testing.T) {
	// Gen1's 560 km polar shells at 97.6° are sun-synchronous: the
	// solver must land on that inclination.
	inc := SunSynchronousInclinationDeg(560)
	if math.Abs(inc-97.6) > 0.3 {
		t.Errorf("SSO inclination at 560 km = %v, want ≈97.6", inc)
	}
	// And plugging it back gives the sun rate.
	o := CircularOrbit{AltitudeKm: 560, InclinationDeg: inc}
	if rate := o.NodalPrecessionDegPerDay(0); math.Abs(rate-360.0/365.2422) > 0.01 {
		t.Errorf("SSO precession = %v °/day, want 0.9856", rate)
	}
	// Higher orbits need more retrograde inclinations.
	if SunSynchronousInclinationDeg(1200) <= inc {
		t.Error("SSO inclination should grow with altitude")
	}
}
