// Package orbit provides the orbital-mechanics substrate of the capacity
// model: circular Keplerian orbits, Walker-delta constellation
// generation, propagation to Earth-fixed subsatellite points, visibility
// geometry, and — the quantity the sizing model actually consumes — the
// surface density of a shell's satellites as a function of latitude.
//
// A LEO shell of inclination i spreads its satellites non-uniformly over
// the Earth: density peaks just below the inclination latitude and
// thins toward the equator. The paper's peak-demand argument converts a
// required local satellite density at the peak-demand cell's latitude
// into a total constellation size; DensityFactor supplies the analytic
// conversion and the propagation API lets tests confirm it empirically.
package orbit

import (
	"fmt"
	"math"

	"leodivide/internal/geo"
)

// Physical constants.
const (
	// MuEarth is Earth's gravitational parameter in km³/s².
	MuEarth = 398600.4418

	// EarthRotationRadPerSec is Earth's sidereal rotation rate.
	EarthRotationRadPerSec = 7.2921159e-5

	// StarlinkAltitudeKm is the altitude of Starlink's principal shell.
	StarlinkAltitudeKm = 550

	// StarlinkInclinationDeg is the inclination of Starlink's principal
	// shell.
	StarlinkInclinationDeg = 53
)

// CircularOrbit is a circular orbit defined by altitude, inclination,
// right ascension of the ascending node (RAAN) and the satellite's
// initial phase along the orbit. Angles are in degrees.
type CircularOrbit struct {
	AltitudeKm     float64
	InclinationDeg float64
	RAANDeg        float64
	PhaseDeg       float64
}

// RadiusKm returns the orbital radius from Earth's center.
func (o CircularOrbit) RadiusKm() float64 { return geo.EarthRadiusKm + o.AltitudeKm }

// PeriodSeconds returns the orbital period.
func (o CircularOrbit) PeriodSeconds() float64 {
	r := o.RadiusKm()
	return 2 * math.Pi * math.Sqrt(r*r*r/MuEarth)
}

// MeanMotionRadPerSec returns the angular rate along the orbit.
func (o CircularOrbit) MeanMotionRadPerSec() float64 {
	return 2 * math.Pi / o.PeriodSeconds()
}

// SpeedKmPerSec returns the orbital speed.
func (o CircularOrbit) SpeedKmPerSec() float64 {
	return math.Sqrt(MuEarth / o.RadiusKm())
}

// PositionECI returns the satellite's Earth-centered inertial position
// at t seconds after epoch.
func (o CircularOrbit) PositionECI(t float64) geo.Vec3 {
	nu := geo.Radians(o.PhaseDeg) + o.MeanMotionRadPerSec()*t
	inc := geo.Radians(o.InclinationDeg)
	raan := geo.Radians(o.RAANDeg)
	// Position in the orbital plane (ascending node along +x').
	x := math.Cos(nu)
	y := math.Sin(nu) * math.Cos(inc)
	z := math.Sin(nu) * math.Sin(inc)
	// Rotate ascending node to RAAN about +z.
	cr, sr := math.Cos(raan), math.Sin(raan)
	return geo.Vec3{
		X: cr*x - sr*y,
		Y: sr*x + cr*y,
		Z: z,
	}.Scale(o.RadiusKm())
}

// ECIToECEF rotates an ECI position into the Earth-fixed frame at t
// seconds after epoch, with the frames aligned at t = 0.
func ECIToECEF(p geo.Vec3, t float64) geo.Vec3 {
	theta := EarthRotationRadPerSec * t
	c, s := math.Cos(theta), math.Sin(theta)
	return geo.Vec3{
		X: c*p.X + s*p.Y,
		Y: -s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// ECEFToECI is the inverse of ECIToECEF.
func ECEFToECI(p geo.Vec3, t float64) geo.Vec3 {
	theta := EarthRotationRadPerSec * t
	c, s := math.Cos(theta), math.Sin(theta)
	return geo.Vec3{
		X: c*p.X - s*p.Y,
		Y: s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// SubsatellitePoint returns the geographic point directly beneath the
// satellite at t seconds after epoch.
func (o CircularOrbit) SubsatellitePoint(t float64) geo.LatLng {
	return ECIToECEF(o.PositionECI(t), t).LatLng()
}

// Walker describes a Walker-delta constellation: Total satellites in
// Planes evenly spaced planes at common altitude and inclination, with
// relative phasing F between adjacent planes (Walker notation
// i: T/P/F).
type Walker struct {
	AltitudeKm     float64
	InclinationDeg float64
	Total          int
	Planes         int
	Phasing        int
}

// StarlinkShell1 returns the approximate geometry of Starlink's
// principal (53°, 550 km) shell: 72 planes of 22 satellites.
func StarlinkShell1() Walker {
	return Walker{
		AltitudeKm:     StarlinkAltitudeKm,
		InclinationDeg: StarlinkInclinationDeg,
		Total:          72 * 22,
		Planes:         72,
		Phasing:        39,
	}
}

// Validate reports whether the constellation parameters are coherent.
func (w Walker) Validate() error {
	if w.Total <= 0 || w.Planes <= 0 {
		return fmt.Errorf("orbit: walker needs positive total (%d) and planes (%d)", w.Total, w.Planes)
	}
	if w.Total%w.Planes != 0 {
		return fmt.Errorf("orbit: walker total %d not divisible by planes %d", w.Total, w.Planes)
	}
	if w.AltitudeKm <= 0 {
		return fmt.Errorf("orbit: walker altitude %v must be positive", w.AltitudeKm)
	}
	if w.InclinationDeg <= 0 || w.InclinationDeg > 180 {
		return fmt.Errorf("orbit: walker inclination %v out of range", w.InclinationDeg)
	}
	return nil
}

// Orbits expands the constellation into per-satellite orbits.
func (w Walker) Orbits() ([]CircularOrbit, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	perPlane := w.Total / w.Planes
	out := make([]CircularOrbit, 0, w.Total)
	for p := 0; p < w.Planes; p++ {
		raan := 360 * float64(p) / float64(w.Planes)
		phaseOffset := 360 * float64(w.Phasing) * float64(p) / float64(w.Total)
		for s := 0; s < perPlane; s++ {
			out = append(out, CircularOrbit{
				AltitudeKm:     w.AltitudeKm,
				InclinationDeg: w.InclinationDeg,
				RAANDeg:        raan,
				PhaseDeg:       math.Mod(360*float64(s)/float64(perPlane)+phaseOffset, 360),
			})
		}
	}
	return out, nil
}

// DensityFactor returns the ratio of the shell's satellite surface
// density at latitude lat to the global mean density N/A_earth.
//
// For a shell of inclination i, a satellite's latitude over time has
// probability density cos(φ) / (π·sqrt(sin²i − sin²φ)); dividing by the
// area of the latitude band yields a surface density enhancement of
//
//	f(φ) = 2 / (π · sqrt(sin²i − sin²φ)),   |φ| < i.
//
// The factor integrates to 1 over the sphere and diverges at φ = ±i
// (satellites linger at the turning latitude). Latitudes above the
// inclination see zero density. To keep the model usable at the turning
// latitude the factor is capped at the value one lattice-spacing inside
// the band edge.
func (w Walker) DensityFactor(latDeg float64) float64 {
	return DensityFactor(w.InclinationDeg, latDeg)
}

// DensityFactor is the shell-density enhancement for an inclination and
// latitude, both in degrees. See Walker.DensityFactor.
func DensityFactor(inclinationDeg, latDeg float64) float64 {
	inc := geo.Radians(clampInclination(inclinationDeg))
	phi := geo.Radians(math.Abs(latDeg))
	si, sp := math.Sin(inc), math.Sin(phi)
	if sp >= si {
		// At or beyond the turning latitude: return the capped edge
		// value so callers sizing for a cell at exactly the inclination
		// latitude get a finite answer.
		sp = si * math.Cos(0.5*math.Pi/180) // half a degree inside
	}
	d := si*si - sp*sp
	const minD = 1e-6
	if d < minD {
		d = minD
	}
	return 2 / (math.Pi * math.Sqrt(d))
}

// clampInclination folds retrograde inclinations into [0, 90].
func clampInclination(inc float64) float64 {
	if inc > 90 {
		inc = 180 - inc
	}
	if inc < 0 {
		inc = -inc
	}
	return inc
}

// CoverageRadiusKm returns the radius on the ground (along the surface)
// of the region a satellite at the shell's altitude can serve with the
// given minimum elevation angle in degrees.
func CoverageRadiusKm(altitudeKm, minElevationDeg float64) float64 {
	re := geo.EarthRadiusKm
	e := geo.Radians(minElevationDeg)
	// Central angle from subsatellite point to the edge of coverage.
	lam := math.Acos(re*math.Cos(e)/(re+altitudeKm)) - e
	return re * lam
}

// Visible reports whether the satellite at ECEF position sat can be seen
// from ground point p with at least minElevationDeg of elevation.
func Visible(sat geo.Vec3, p geo.LatLng, minElevationDeg float64) bool {
	return ElevationDeg(sat, p) >= minElevationDeg
}

// ElevationDeg returns the elevation angle of the satellite at ECEF
// position sat as seen from ground point p, in degrees. Negative values
// mean the satellite is below the horizon.
func ElevationDeg(sat geo.Vec3, p geo.LatLng) float64 {
	ground := p.Vector().Scale(geo.EarthRadiusKm)
	los := sat.Sub(ground)
	up := p.Vector()
	sinEl := los.Dot(up) / los.Norm()
	return geo.Degrees(math.Asin(sinEl))
}

// LatitudeHistogram propagates the constellation over one orbital period
// in steps and counts subsatellite points into latitude bins of binDeg
// degrees, returning the empirical per-bin density enhancement (ratio of
// observed to uniform density). Bins outside the inclination band are
// zero. Used to validate DensityFactor against simulated geometry.
func (w Walker) LatitudeHistogram(binDeg float64, steps int) ([]float64, error) {
	orbits, err := w.Orbits()
	if err != nil {
		return nil, err
	}
	if binDeg <= 0 {
		return nil, fmt.Errorf("orbit: binDeg must be positive, got %v", binDeg)
	}
	if steps <= 0 {
		steps = 256
	}
	nbins := int(math.Ceil(180 / binDeg))
	counts := make([]float64, nbins)
	period := orbits[0].PeriodSeconds()
	total := 0.0
	for _, o := range orbits {
		for s := 0; s < steps; s++ {
			t := period * float64(s) / float64(steps)
			pt := o.SubsatellitePoint(t)
			bin := int((pt.Lat + 90) / binDeg)
			if bin < 0 {
				bin = 0
			}
			if bin >= nbins {
				bin = nbins - 1
			}
			counts[bin]++
			total++
		}
	}
	// Convert to density enhancement: observed fraction / area fraction.
	out := make([]float64, nbins)
	for b := 0; b < nbins; b++ {
		latLo := -90 + binDeg*float64(b)
		latHi := latLo + binDeg
		areaFrac := geo.RectArea(latLo, latHi, -180, 180) / geo.EarthAreaKm2
		if areaFrac > 0 {
			out[b] = (counts[b] / total) / areaFrac
		}
	}
	return out, nil
}

// J2 is Earth's dominant oblateness coefficient.
const J2 = 1.08262668e-3

// NodalPrecessionDegPerDay returns the secular RAAN drift rate a
// circular orbit experiences from Earth's oblateness:
//
//	dΩ/dt = −(3/2)·J2·(Re/r)²·n·cos(i)
//
// Prograde orbits regress westward (negative); retrograde orbits
// precess eastward. Sun-synchronous designs (e.g. Starlink's 97.6°
// shells) pick the inclination whose precession matches the Sun's
// apparent motion, +0.9856°/day.
func (o CircularOrbit) NodalPrecessionDegPerDay(equatorialRadiusKm float64) float64 {
	if equatorialRadiusKm <= 0 {
		equatorialRadiusKm = 6378.137
	}
	r := o.RadiusKm()
	n := o.MeanMotionRadPerSec() // rad/s
	ratio := equatorialRadiusKm / r
	radPerSec := -1.5 * J2 * ratio * ratio * n * math.Cos(geo.Radians(o.InclinationDeg))
	return geo.Degrees(radPerSec) * 86400
}

// SunSynchronousInclinationDeg returns the inclination at which a
// circular orbit at the given altitude precesses sun-synchronously.
func SunSynchronousInclinationDeg(altitudeKm float64) float64 {
	const targetDegPerDay = 360.0 / 365.2422
	o := CircularOrbit{AltitudeKm: altitudeKm, InclinationDeg: 90}
	r := o.RadiusKm()
	n := o.MeanMotionRadPerSec()
	ratio := 6378.137 / r
	// Solve target = −(3/2)·J2·ratio²·n·cos(i) for i.
	cosI := -geo.Radians(targetDegPerDay) / 86400 / (1.5 * J2 * ratio * ratio * n)
	return geo.Degrees(math.Acos(cosI))
}
