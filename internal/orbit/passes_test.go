package orbit

import (
	"math"
	"testing"

	"leodivide/internal/geo"
)

func TestPasses(t *testing.T) {
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 100, PhaseDeg: 0}
	ground := geo.LatLng{Lat: 40, Lng: -100}
	// One day sweeps the full longitude range under the orbit, so a
	// 10°-mask coverage circle (diameter ≈30° of longitude at 40°N)
	// must be crossed several times.
	passes, err := o.Passes(ground, 10, 24*3600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Fatal("no passes in 24 hours over a mid-latitude point")
	}
	for i, p := range passes {
		if p.EndSec <= p.StartSec {
			t.Errorf("pass %d: inverted interval", i)
		}
		// A 550 km pass above a 10° mask lasts at most ~8 minutes.
		if p.Duration() > 800 {
			t.Errorf("pass %d: implausible duration %v s", i, p.Duration())
		}
		if p.MaxElevationDeg < 10 || p.MaxElevationDeg > 90 {
			t.Errorf("pass %d: max elevation %v", i, p.MaxElevationDeg)
		}
		if p.MaxElevationSec < p.StartSec-1 || p.MaxElevationSec > p.EndSec+1 {
			t.Errorf("pass %d: culmination outside pass", i)
		}
		if i > 0 && p.StartSec <= passes[i-1].EndSec {
			t.Errorf("pass %d overlaps previous", i)
		}
		// Elevation at the refined endpoints is near the mask (skip a
		// pass truncated by the horizon).
		if p.StartSec > 0 {
			el := ElevationDeg(ECIToECEF(o.PositionECI(p.StartSec), p.StartSec), ground)
			if math.Abs(el-10) > 0.5 {
				t.Errorf("pass %d: start elevation %v, want ≈10", i, el)
			}
		}
	}
}

func TestPassesValidation(t *testing.T) {
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53}
	g := geo.LatLng{Lat: 40, Lng: -100}
	if _, err := o.Passes(g, 25, 0, 10); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := o.Passes(g, 95, 3600, 10); err == nil {
		t.Error("bad mask should fail")
	}
}

func TestPassesNoneAboveInclinationReach(t *testing.T) {
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53}
	// 75°N is far beyond a 53° shell's coverage.
	passes, err := o.Passes(geo.LatLng{Lat: 75, Lng: 0}, 25, 3*3600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 0 {
		t.Errorf("got %d passes at 75N", len(passes))
	}
}

func TestGroundTrack(t *testing.T) {
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53}
	track, err := o.GroundTrack(o.PeriodSeconds(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(track) < 100 {
		t.Fatalf("track has %d points", len(track))
	}
	maxLat := 0.0
	for _, p := range track {
		if math.Abs(p.Lat) > maxLat {
			maxLat = math.Abs(p.Lat)
		}
	}
	// Over one period the track reaches (nearly) the inclination.
	if maxLat < 52 || maxLat > 53.01 {
		t.Errorf("track max |lat| = %v, want ≈53", maxLat)
	}
	if _, err := o.GroundTrack(-1, 30); err == nil {
		t.Error("negative horizon should fail")
	}
}

func TestGroundCoverage(t *testing.T) {
	w := StarlinkShell1()
	stats, err := w.GroundCoverage(geo.LatLng{Lat: 40, Lng: -100}, 25, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutageFraction > 0.05 {
		t.Errorf("outage fraction = %v at 40N under the full shell", stats.OutageFraction)
	}
	if stats.VisibleMean < 5 {
		t.Errorf("mean visible = %v, want ≈10+", stats.VisibleMean)
	}
	if stats.VisibleMin > stats.VisibleMax {
		t.Error("min exceeds max")
	}
	if stats.MeanBestElevationDeg <= 25 {
		t.Errorf("best elevation %v should exceed the mask", stats.MeanBestElevationDeg)
	}

	// Far north: total outage.
	north, err := w.GroundCoverage(geo.LatLng{Lat: 75, Lng: 0}, 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if north.OutageFraction != 1 {
		t.Errorf("75N outage = %v, want 1", north.OutageFraction)
	}

	bad := w
	bad.Total = 7
	if _, err := bad.GroundCoverage(geo.LatLng{}, 25, 4); err == nil {
		t.Error("invalid shell should fail")
	}
}
