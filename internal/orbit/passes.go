package orbit

import (
	"fmt"
	"math"

	"leodivide/internal/geo"
)

// Pass is one satellite pass over a ground point: the interval during
// which the satellite stays above the elevation mask.
type Pass struct {
	// StartSec and EndSec bound the pass, in seconds after epoch.
	StartSec, EndSec float64
	// MaxElevationDeg is the culmination elevation.
	MaxElevationDeg float64
	// MaxElevationSec is when culmination occurs.
	MaxElevationSec float64
}

// Duration returns the pass length in seconds.
func (p Pass) Duration() float64 { return p.EndSec - p.StartSec }

// Passes predicts the satellite's passes over the ground point during
// [0, horizonSec], sampling every stepSec and refining the endpoints by
// bisection to sub-second accuracy.
func (o CircularOrbit) Passes(ground geo.LatLng, minElevationDeg, horizonSec, stepSec float64) ([]Pass, error) {
	if horizonSec <= 0 || stepSec <= 0 {
		return nil, fmt.Errorf("orbit: horizon %v and step %v must be positive", horizonSec, stepSec)
	}
	if minElevationDeg < 0 || minElevationDeg >= 90 {
		return nil, fmt.Errorf("orbit: elevation mask %v out of range", minElevationDeg)
	}
	elevation := func(t float64) float64 {
		return ElevationDeg(ECIToECEF(o.PositionECI(t), t), ground)
	}
	above := func(t float64) bool { return elevation(t) >= minElevationDeg }

	var passes []Pass
	inPass := above(0)
	start := 0.0
	for t := stepSec; t <= horizonSec; t += stepSec {
		now := above(t)
		switch {
		case now && !inPass:
			start = bisect(above, t-stepSec, t, false)
			inPass = true
		case !now && inPass:
			end := bisect(above, t-stepSec, t, true)
			passes = append(passes, refinePass(elevation, start, end))
			inPass = false
		}
	}
	if inPass {
		passes = append(passes, refinePass(elevation, start, horizonSec))
	}
	return passes, nil
}

// bisect finds the transition point of a boolean function in (lo, hi):
// fromTrue selects the true→false transition, otherwise false→true.
func bisect(above func(float64) bool, lo, hi float64, fromTrue bool) float64 {
	for i := 0; i < 30 && hi-lo > 0.01; i++ {
		mid := (lo + hi) / 2
		if above(mid) == fromTrue {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// refinePass locates the culmination by golden-section search.
func refinePass(elevation func(float64) float64, start, end float64) Pass {
	const phi = 0.6180339887498949
	lo, hi := start, end
	for i := 0; i < 60 && hi-lo > 0.01; i++ {
		a := hi - (hi-lo)*phi
		b := lo + (hi-lo)*phi
		if elevation(a) < elevation(b) {
			lo = a
		} else {
			hi = b
		}
	}
	peak := (lo + hi) / 2
	return Pass{
		StartSec:        start,
		EndSec:          end,
		MaxElevationDeg: elevation(peak),
		MaxElevationSec: peak,
	}
}

// GroundTrack samples the satellite's subsatellite points over
// [0, horizonSec] at stepSec intervals.
func (o CircularOrbit) GroundTrack(horizonSec, stepSec float64) ([]geo.LatLng, error) {
	if horizonSec <= 0 || stepSec <= 0 {
		return nil, fmt.Errorf("orbit: horizon %v and step %v must be positive", horizonSec, stepSec)
	}
	n := int(horizonSec/stepSec) + 1
	out := make([]geo.LatLng, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, o.SubsatellitePoint(stepSec*float64(i)))
	}
	return out, nil
}

// CoverageStats summarizes a constellation's service as seen from one
// ground point over a time horizon.
type CoverageStats struct {
	// VisibleMin, VisibleMean, VisibleMax count satellites above the
	// mask across the sampled epochs.
	VisibleMin, VisibleMax int
	VisibleMean            float64
	// OutageFraction is the fraction of epochs with no satellite in
	// view.
	OutageFraction float64
	// MeanBestElevationDeg is the mean elevation of the best-placed
	// visible satellite (NaN-free: epochs without coverage are
	// skipped).
	MeanBestElevationDeg float64
}

// GroundCoverage evaluates a shell's visibility statistics from a
// ground point, sampling epochs over one orbital period.
func (w Walker) GroundCoverage(ground geo.LatLng, minElevationDeg float64, epochs int) (CoverageStats, error) {
	orbits, err := w.Orbits()
	if err != nil {
		return CoverageStats{}, err
	}
	if epochs <= 0 {
		epochs = 32
	}
	period := orbits[0].PeriodSeconds()
	stats := CoverageStats{VisibleMin: math.MaxInt32}
	sumVisible, outages := 0, 0
	sumBestEl, covered := 0.0, 0
	for e := 0; e < epochs; e++ {
		t := period * float64(e) / float64(epochs)
		visible := 0
		bestEl := -90.0
		for _, o := range orbits {
			el := ElevationDeg(ECIToECEF(o.PositionECI(t), t), ground)
			if el >= minElevationDeg {
				visible++
				if el > bestEl {
					bestEl = el
				}
			}
		}
		sumVisible += visible
		if visible == 0 {
			outages++
		} else {
			sumBestEl += bestEl
			covered++
		}
		if visible < stats.VisibleMin {
			stats.VisibleMin = visible
		}
		if visible > stats.VisibleMax {
			stats.VisibleMax = visible
		}
	}
	stats.VisibleMean = float64(sumVisible) / float64(epochs)
	stats.OutageFraction = float64(outages) / float64(epochs)
	if covered > 0 {
		stats.MeanBestElevationDeg = sumBestEl / float64(covered)
	}
	return stats, nil
}
