package orbit

import (
	"math"
	"testing"

	"leodivide/internal/geo"
)

func TestPropagationDelay(t *testing.T) {
	// Light crosses ~300 km in 1 ms.
	if got := PropagationDelayMs(299792.458); math.Abs(got-1000) > 1e-9 {
		t.Errorf("delay over one light-second = %v ms", got)
	}
}

func TestMinBentPipeRTT(t *testing.T) {
	// The paper's latency story: LEO at 550 km has a ~7.3 ms geometric
	// floor vs ~477 ms for GEO.
	leo := MinBentPipeRTTMs(550)
	if math.Abs(leo-7.34) > 0.05 {
		t.Errorf("LEO RTT floor = %v ms, want ≈7.34", leo)
	}
	geoRTT := GEOBentPipeRTTMs()
	if math.Abs(geoRTT-477.5) > 1 {
		t.Errorf("GEO RTT floor = %v ms, want ≈477.5", geoRTT)
	}
	if geoRTT/leo < 60 {
		t.Errorf("GEO/LEO latency ratio = %v, want ≈65", geoRTT/leo)
	}
}

func TestBentPipeRTT(t *testing.T) {
	terminal := geo.LatLng{Lat: 40, Lng: -100}
	gateway := geo.LatLng{Lat: 40, Lng: -100} // co-located
	overhead := terminal.Vector().Scale(geo.EarthRadiusKm + 550)
	got := BentPipeRTTMs(overhead, terminal, gateway)
	if math.Abs(got-MinBentPipeRTTMs(550)) > 1e-9 {
		t.Errorf("co-located bent pipe RTT = %v, want floor %v", got, MinBentPipeRTTMs(550))
	}
	// A distant gateway adds delay.
	far := geo.LatLng{Lat: 40, Lng: -90}
	if BentPipeRTTMs(overhead, terminal, far) <= got {
		t.Error("distant gateway should add delay")
	}
}

func TestDopplerShift(t *testing.T) {
	o := CircularOrbit{AltitudeKm: 550, InclinationDeg: 53}
	ground := geo.LatLng{Lat: 0, Lng: 0}
	const freq = 11.7
	// Doppler magnitude stays under the horizon bound.
	bound := MaxDopplerHz(550, freq)
	if bound < 200e3 || bound > 350e3 {
		t.Errorf("max Doppler = %v Hz, want ≈270 kHz at Ku", bound)
	}
	maxSeen := 0.0
	for tt := 0.0; tt < o.PeriodSeconds(); tt += 20 {
		d := o.DopplerShiftHz(ground, tt, freq)
		if a := math.Abs(d); a > maxSeen {
			maxSeen = a
		}
	}
	if maxSeen > bound*1.05 {
		t.Errorf("observed Doppler %v exceeds bound %v", maxSeen, bound)
	}
	if maxSeen < bound*0.3 {
		t.Errorf("observed Doppler %v implausibly small vs bound %v", maxSeen, bound)
	}
}

func TestBentPipeLatencyProfile(t *testing.T) {
	w := Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 396, Planes: 18, Phasing: 1}
	terminal := geo.LatLng{Lat: 38, Lng: -100}
	gateways := []geo.LatLng{
		{Lat: 37.6, Lng: -97.8}, // Cheney KS
		{Lat: 39.7, Lng: -105},  // Denver
	}
	p, err := w.BentPipeLatency(terminal, gateways, 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Samples == 0 {
		t.Fatal("no covered epochs")
	}
	if p.MinRTTMs < MinBentPipeRTTMs(550) {
		t.Errorf("min RTT %v below the geometric floor", p.MinRTTMs)
	}
	if p.MinRTTMs > 60 || p.MaxRTTMs > 100 {
		t.Errorf("implausible LEO RTTs: min %v max %v", p.MinRTTMs, p.MaxRTTMs)
	}
	if p.MeanRTTMs < p.MinRTTMs || p.MeanRTTMs > p.MaxRTTMs {
		t.Errorf("mean RTT %v outside [min, max]", p.MeanRTTMs)
	}
	if _, err := w.BentPipeLatency(terminal, nil, 25, 8); err == nil {
		t.Error("no gateways should fail")
	}
}
