package orbit

import (
	"math"
	"testing"

	"leodivide/internal/geo"
)

func TestISLGridStructure(t *testing.T) {
	w := Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 72, Planes: 12, Phasing: 1}
	g, err := w.ISLGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 72 {
		t.Fatalf("links for %d satellites", len(g.Links))
	}
	totalDegree := 0
	for i := range g.Links {
		if d := g.Degree(i); d < 3 || d > 6 {
			t.Fatalf("satellite %d has degree %d, want 3-6", i, g.Degree(i))
		} else {
			totalDegree += d
		}
		// Symmetry: every link is bidirectional.
		for _, j := range g.Links[i] {
			found := false
			for _, back := range g.Links[j] {
				if back == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("link %d->%d not symmetric", i, j)
			}
		}
	}
	// Mean degree 4: two undirected links initiated per satellite.
	if mean := float64(totalDegree) / float64(len(g.Links)); mean < 3.9 || mean > 4.1 {
		t.Errorf("mean degree = %v, want 4", mean)
	}
}

func TestISLGridErrors(t *testing.T) {
	bad := Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 4, Planes: 2, Phasing: 0}
	if _, err := bad.ISLGrid(); err == nil {
		t.Error("tiny shell should fail")
	}
	invalid := Walker{Total: 7, Planes: 3, AltitudeKm: 550, InclinationDeg: 53}
	if _, err := invalid.ISLGrid(); err == nil {
		t.Error("invalid shell should fail")
	}
}

func TestISLStats(t *testing.T) {
	w := StarlinkShell1() // 72 planes × 22
	g, err := w.ISLGrid()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := g.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	// In-plane spacing: 2·r·sin(π/22) ≈ 985 km for the 550 km shell.
	r := geo.EarthRadiusKm + 550
	wantInPlane := 2 * r * math.Sin(math.Pi/22)
	if math.Abs(stats.InPlaneKm-wantInPlane) > 1 {
		t.Errorf("in-plane link = %v km, want %v", stats.InPlaneKm, wantInPlane)
	}
	// Cross-plane links vary with latitude but stay within sane bounds.
	if stats.CrossPlaneMinKm <= 0 || stats.CrossPlaneMaxKm > 2500 {
		t.Errorf("cross-plane range [%v, %v] km implausible",
			stats.CrossPlaneMinKm, stats.CrossPlaneMaxKm)
	}
	if stats.CrossPlaneMinKm > stats.CrossPlaneMaxKm {
		t.Error("cross-plane min exceeds max")
	}
}

func TestISLRoute(t *testing.T) {
	w := StarlinkShell1()
	g, err := w.ISLGrid()
	if err != nil {
		t.Fatal(err)
	}
	nyc := geo.LatLng{Lat: 40.7, Lng: -74.0}
	la := geo.LatLng{Lat: 34.1, Lng: -118.2}
	path, err := g.Route(nyc, la, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops < 1 || path.Hops > 30 {
		t.Errorf("NYC-LA hops = %d", path.Hops)
	}
	// The great-circle distance is ~3,940 km; the ISL path must exceed
	// it but stay within a small multiple, and beat terrestrial fiber
	// latency assumptions at c.
	gc := geo.DistanceKm(nyc, la)
	if path.PathKm < gc {
		t.Errorf("path %v km shorter than great circle %v", path.PathKm, gc)
	}
	if path.PathKm > 3*gc {
		t.Errorf("path %v km more than 3x great circle", path.PathKm)
	}
	if path.OneWayMs < 13 || path.OneWayMs > 40 {
		t.Errorf("one-way latency = %v ms", path.OneWayMs)
	}
	// Same endpoint: zero hops.
	self, err := g.Route(nyc, nyc, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if self.Hops != 0 {
		t.Errorf("self route hops = %d", self.Hops)
	}
	// Beyond coverage: error.
	if _, err := g.Route(geo.LatLng{Lat: 80, Lng: 0}, la, 25, 0); err == nil {
		t.Error("uncovered endpoint should fail")
	}
}
