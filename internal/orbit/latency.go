package orbit

import (
	"fmt"
	"math"

	"leodivide/internal/geo"
)

// SpeedOfLightKmPerSec is c in km/s.
const SpeedOfLightKmPerSec = 299792.458

// PropagationDelayMs returns the one-way propagation delay over a path
// length in km, in milliseconds.
func PropagationDelayMs(pathKm float64) float64 {
	return pathKm / SpeedOfLightKmPerSec * 1000
}

// BentPipeRTTMs returns the user-plane round-trip time through a
// bent-pipe hop: terminal → satellite → gateway and back, for a
// satellite at the given ECEF position. Processing and queueing are
// excluded (propagation only).
func BentPipeRTTMs(sat geo.Vec3, terminal, gateway geo.LatLng) float64 {
	up := sat.Sub(terminal.Vector().Scale(geo.EarthRadiusKm)).Norm()
	down := sat.Sub(gateway.Vector().Scale(geo.EarthRadiusKm)).Norm()
	return 2 * PropagationDelayMs(up+down)
}

// MinBentPipeRTTMs returns the best achievable bent-pipe RTT from a
// terminal at a given elevation mask: the satellite overhead, gateway
// co-located with the terminal (the geometric floor the paper's
// "high performance" framing rests on). For a 550 km shell this is
// ≈7.3 ms — the latency edge over geostationary service.
func MinBentPipeRTTMs(altitudeKm float64) float64 {
	return 2 * PropagationDelayMs(2*altitudeKm)
}

// GEOBentPipeRTTMs returns the same geometric floor for a
// geostationary satellite (≈35,786 km): ≈477 ms, the paper's "33,000
// km closer" comparison.
func GEOBentPipeRTTMs() float64 {
	const geoAltKm = 35786
	return 2 * PropagationDelayMs(2*geoAltKm)
}

// DopplerShiftHz returns the carrier Doppler shift observed at a ground
// point for the satellite at time t, at the given carrier frequency in
// GHz. Positive values mean the satellite is approaching.
func (o CircularOrbit) DopplerShiftHz(ground geo.LatLng, t, freqGHz float64) float64 {
	const dt = 0.5
	g := ground.Vector().Scale(geo.EarthRadiusKm)
	r1 := ECIToECEF(o.PositionECI(t), t).Sub(g).Norm()
	r2 := ECIToECEF(o.PositionECI(t+dt), t+dt).Sub(g).Norm()
	rangeRate := (r2 - r1) / dt // km/s, positive = receding
	return -rangeRate / SpeedOfLightKmPerSec * freqGHz * 1e9
}

// MaxDopplerHz returns the worst-case Doppler magnitude for a shell at
// the given carrier: the orbital velocity projected on the line of
// sight at the horizon.
func MaxDopplerHz(altitudeKm, freqGHz float64) float64 {
	o := CircularOrbit{AltitudeKm: altitudeKm, InclinationDeg: 53}
	v := o.SpeedKmPerSec()
	// At the horizon the line-of-sight component is v·cos(asin(...)),
	// bounded above by v·(re/(re+h))·... use the standard bound
	// v·cos(el_sat) with the satellite-side elevation angle:
	re := geo.EarthRadiusKm
	cosMax := re / (re + altitudeKm) * 1 // horizon geometry
	return v * cosMax / SpeedOfLightKmPerSec * freqGHz * 1e9
}

// LatencyProfile samples the best bent-pipe RTT achievable from a
// ground point across the shell over time, using the nearest gateway
// for the downlink leg.
type LatencyProfile struct {
	MinRTTMs, MeanRTTMs, MaxRTTMs float64
	// Samples is the number of epochs with at least one visible
	// satellite.
	Samples int
}

// BentPipeLatency evaluates the latency profile of a shell from a
// terminal with the given gateways and elevation mask over one orbital
// period.
func (w Walker) BentPipeLatency(terminal geo.LatLng, gateways []geo.LatLng,
	minElevationDeg float64, epochs int) (LatencyProfile, error) {
	if len(gateways) == 0 {
		return LatencyProfile{}, fmt.Errorf("orbit: no gateways")
	}
	orbits, err := w.Orbits()
	if err != nil {
		return LatencyProfile{}, err
	}
	if epochs <= 0 {
		epochs = 16
	}
	period := orbits[0].PeriodSeconds()
	profile := LatencyProfile{MinRTTMs: math.Inf(1)}
	sum := 0.0
	for e := 0; e < epochs; e++ {
		t := period * float64(e) / float64(epochs)
		bestRTT := math.Inf(1)
		for _, o := range orbits {
			sat := ECIToECEF(o.PositionECI(t), t)
			if ElevationDeg(sat, terminal) < minElevationDeg {
				continue
			}
			for _, gw := range gateways {
				if ElevationDeg(sat, gw) < 10 {
					continue
				}
				if rtt := BentPipeRTTMs(sat, terminal, gw); rtt < bestRTT {
					bestRTT = rtt
				}
			}
		}
		if math.IsInf(bestRTT, 1) {
			continue
		}
		profile.Samples++
		sum += bestRTT
		if bestRTT < profile.MinRTTMs {
			profile.MinRTTMs = bestRTT
		}
		if bestRTT > profile.MaxRTTMs {
			profile.MaxRTTMs = bestRTT
		}
	}
	if profile.Samples > 0 {
		profile.MeanRTTMs = sum / float64(profile.Samples)
	}
	return profile, nil
}
