// Package golden is the golden-corpus engine behind the repository's
// regression gate: it freezes every registered experiment's result as
// canonical, diff-friendly JSON under testdata/golden/<seed>/<scale>/,
// and compares a fresh replay against the frozen corpus with per-field
// float tolerances, reporting drift as field-level diffs.
//
// The package is deliberately generic — it knows nothing about the
// leodivide facade. The replay drivers (the root TestGoldenCorpus and
// the `leodivide verify` CLI subcommand) enumerate the experiment
// registry themselves and hand results here as plain values, so the
// engine cannot drift from the registry it gates.
//
// Why this exists: the reproduction's value is that its numbers land
// where the paper's do (4.67M locations, max cell 5998, five cells
// above the 20:1 threshold, ...). The type system cannot catch a
// refactor that silently shifts Table 2 by one satellite; a frozen
// corpus with machine-checked tolerances can.
package golden

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"leodivide/internal/safeio"
)

// Encode renders v as canonical corpus JSON: two-space indented with a
// trailing newline. encoding/json already sorts map keys and emits
// struct fields in declaration order, so equal values always produce
// identical bytes — byte equality of encodings is the strongest form of
// result equality the corpus and the determinism suite both use.
func Encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("golden: encoding: %w", err)
	}
	return append(b, '\n'), nil
}

// Rule is one per-field tolerance override. Path is a /-separated field
// path as produced by Compare (e.g. "/Rows/3/FullServiceSats"); a "*"
// segment matches any single object key or array index.
type Rule struct {
	Path string
	// Rel and Abs bound the accepted numeric drift: values a, b pass if
	// |a-b| <= max(Abs, Rel*max(|a|,|b|)).
	Rel, Abs float64
}

// Tolerance is the comparison policy: a default numeric tolerance plus
// path-specific overrides (first matching rule wins).
type Tolerance struct {
	// DefaultRel and DefaultAbs apply to numeric fields no rule matches.
	DefaultRel, DefaultAbs float64
	Rules                  []Rule
}

// Default returns the corpus policy: strings, booleans and nulls must
// match exactly; numbers tolerate a 1e-9 relative drift, which is zero
// for the integer-valued fields the anchors live in (counts, satellite
// totals) while absorbing last-ulp float formatting differences across
// toolchains.
func Default() Tolerance {
	return Tolerance{DefaultRel: 1e-9}
}

// Exact returns a zero-tolerance policy: any difference is drift. The
// determinism suite uses it to prove byte-identical serial vs parallel
// results.
func Exact() Tolerance { return Tolerance{} }

// relAbs returns the tolerance in force at path.
func (t Tolerance) relAbs(path string) (rel, abs float64) {
	for _, r := range t.Rules {
		if pathMatch(r.Path, path) {
			return r.Rel, r.Abs
		}
	}
	return t.DefaultRel, t.DefaultAbs
}

// pathMatch reports whether a rule pattern matches a concrete path.
func pathMatch(pattern, path string) bool {
	ps := strings.Split(pattern, "/")
	xs := strings.Split(path, "/")
	if len(ps) != len(xs) {
		return false
	}
	for i := range ps {
		if ps[i] != "*" && ps[i] != xs[i] {
			return false
		}
	}
	return true
}

// Diff is one field-level divergence between a replay and the corpus.
type Diff struct {
	// Path locates the field, e.g. "/Fraction/3/2"; "" is the root.
	Path string
	// Got and Want render the replayed and frozen values.
	Got, Want string
}

func (d Diff) String() string {
	p := d.Path
	if p == "" {
		p = "/"
	}
	return fmt.Sprintf("%s: current %s, corpus %s", p, d.Got, d.Want)
}

// Compare parses two corpus encodings and returns every field-level
// difference outside the tolerance policy, in document order. A nil,
// empty slice means the replay matches the corpus.
func Compare(got, want []byte, tol Tolerance) ([]Diff, error) {
	g, err := decodeTree(got)
	if err != nil {
		return nil, fmt.Errorf("golden: parsing replay: %w", err)
	}
	w, err := decodeTree(want)
	if err != nil {
		return nil, fmt.Errorf("golden: parsing corpus: %w", err)
	}
	var diffs []Diff
	compareTree("", g, w, tol, &diffs)
	return diffs, nil
}

// decodeTree parses JSON keeping numbers as json.Number, so integer
// anchors compare exactly and diffs print the literal corpus text.
func decodeTree(b []byte) (any, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

func render(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return strconv.Quote(x)
	case json.Number:
		return x.String()
	case bool:
		return strconv.FormatBool(x)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		s := string(b)
		if len(s) > 80 {
			s = s[:77] + "..."
		}
		return s
	}
}

func compareTree(path string, got, want any, tol Tolerance, diffs *[]Diff) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			*diffs = append(*diffs, Diff{path, render(got), render(want)})
			return
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			keys = append(keys, k)
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			kp := path + "/" + k
			gv, gok := g[k]
			wv, wok := w[k]
			switch {
			case !gok:
				*diffs = append(*diffs, Diff{kp, "(absent)", render(wv)})
			case !wok:
				*diffs = append(*diffs, Diff{kp, render(gv), "(absent)"})
			default:
				compareTree(kp, gv, wv, tol, diffs)
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			*diffs = append(*diffs, Diff{path, render(got), render(want)})
			return
		}
		if len(g) != len(w) {
			*diffs = append(*diffs, Diff{path,
				fmt.Sprintf("%d elements", len(g)), fmt.Sprintf("%d elements", len(w))})
			// Still compare the shared prefix: the length diff plus the
			// first value diffs localize an insertion far better than a
			// bare count mismatch.
		}
		n := len(g)
		if len(w) < n {
			n = len(w)
		}
		for i := 0; i < n; i++ {
			compareTree(fmt.Sprintf("%s/%d", path, i), g[i], w[i], tol, diffs)
		}
	case json.Number:
		g, ok := got.(json.Number)
		if !ok {
			*diffs = append(*diffs, Diff{path, render(got), render(want)})
			return
		}
		if g.String() == w.String() {
			return
		}
		gf, gerr := g.Float64()
		wf, werr := w.Float64()
		rel, abs := tol.relAbs(path)
		if gerr == nil && werr == nil && numClose(gf, wf, rel, abs) {
			return
		}
		*diffs = append(*diffs, Diff{path, g.String(), w.String()})
	default:
		// string, bool, nil: exact.
		if got != want {
			*diffs = append(*diffs, Diff{path, render(got), render(want)})
		}
	}
}

// numClose reports |a-b| <= max(abs, rel*max(|a|,|b|)).
func numClose(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	bound := rel * math.Max(math.Abs(a), math.Abs(b))
	if abs > bound {
		bound = abs
	}
	return d <= bound
}

// Corpus layout: <root>/<seed>/<scale>/<experiment>.json, with seed an
// integer and scale formatted by FormatScale. A directory is one
// replayed configuration; the file set is the registry at freeze time.

// FormatScale renders a dataset scale as its directory name ("0.02").
func FormatScale(scale float64) string {
	return strconv.FormatFloat(scale, 'g', -1, 64)
}

// Dir returns the corpus directory for one (seed, scale) configuration.
func Dir(root string, seed int64, scale float64) string {
	return filepath.Join(root, strconv.FormatInt(seed, 10), FormatScale(scale))
}

// File returns the corpus path of one experiment's frozen result.
func File(root string, seed int64, scale float64, experiment string) string {
	return filepath.Join(Dir(root, seed, scale), experiment+".json")
}

// WriteFile encodes v canonically and writes it atomically (safeio).
// Parent directories are created as needed.
func WriteFile(ctx context.Context, path string, v any) error {
	b, err := Encode(v)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	_, err = safeio.WriteFileBytes(ctx, path, b)
	return err
}

// ReadFile reads one frozen encoding.
func ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Config is one committed corpus configuration.
type Config struct {
	Seed  int64
	Scale float64
	// Dir is the configuration's corpus directory.
	Dir string
}

// Configs enumerates the configurations committed under root, sorted by
// (seed, scale). Directory names that do not parse as a seed or scale
// are an error — a stray directory in the corpus is corpus corruption,
// not something to skip silently.
func Configs(root string) ([]Config, error) {
	seeds, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("golden: reading corpus root: %w", err)
	}
	var out []Config
	for _, se := range seeds {
		if !se.IsDir() {
			return nil, fmt.Errorf("golden: unexpected file %s in corpus root", se.Name())
		}
		seed, err := strconv.ParseInt(se.Name(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("golden: corpus directory %q is not a seed", se.Name())
		}
		scales, err := os.ReadDir(filepath.Join(root, se.Name()))
		if err != nil {
			return nil, err
		}
		for _, sc := range scales {
			if !sc.IsDir() {
				return nil, fmt.Errorf("golden: unexpected file %s in corpus seed %d", sc.Name(), seed)
			}
			scale, err := strconv.ParseFloat(sc.Name(), 64)
			if err != nil || scale <= 0 || scale > 1 {
				return nil, fmt.Errorf("golden: corpus directory %s/%q is not a scale", se.Name(), sc.Name())
			}
			out = append(out, Config{
				Seed: seed, Scale: scale,
				Dir: filepath.Join(root, se.Name(), sc.Name()),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seed != out[j].Seed {
			return out[i].Seed < out[j].Seed
		}
		return out[i].Scale < out[j].Scale
	})
	return out, nil
}

// Experiments lists the experiment names frozen in one configuration
// directory (the *.json basenames), sorted.
func Experiments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			return nil, fmt.Errorf("golden: unexpected entry %s in corpus dir %s", name, dir)
		}
		out = append(out, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(out)
	return out, nil
}

// WriteDiffs renders up to max diffs (0 = all) for one experiment
// replay, prefixed so a CI log line names the experiment, seed, scale
// and field path on its own.
func WriteDiffs(w io.Writer, experiment string, cfg Config, diffs []Diff, max int) {
	n := len(diffs)
	if max > 0 && n > max {
		n = max
	}
	for _, d := range diffs[:n] {
		fmt.Fprintf(w, "verify: %s seed=%d scale=%s drifted at %s\n",
			experiment, cfg.Seed, FormatScale(cfg.Scale), d)
	}
	if n < len(diffs) {
		fmt.Fprintf(w, "verify: %s seed=%d scale=%s ... and %d more field diffs\n",
			experiment, cfg.Seed, FormatScale(cfg.Scale), len(diffs)-n)
	}
}
