package golden

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncodeCanonical(t *testing.T) {
	type inner struct{ B, A float64 }
	v := struct {
		Z map[string]int
		S []inner
	}{
		Z: map[string]int{"b": 2, "a": 1},
		S: []inner{{B: 1.5, A: 0.25}},
	}
	first, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encoding not stable:\n%s\nvs\n%s", first, again)
		}
	}
	if !strings.HasSuffix(string(first), "\n") {
		t.Error("encoding must end in a newline")
	}
	// Map keys are sorted: "a" must precede "b".
	if strings.Index(string(first), `"a"`) > strings.Index(string(first), `"b"`) {
		t.Errorf("map keys not sorted:\n%s", first)
	}
}

func TestCompareEqual(t *testing.T) {
	a := []byte(`{"x": 1, "y": [1.5, 2.5], "s": "ok", "b": true, "n": null}`)
	diffs, err := Compare(a, a, Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("self-compare produced diffs: %v", diffs)
	}
}

func TestCompareFieldDiffs(t *testing.T) {
	want := []byte(`{"Rows": [{"Sats": 100, "Spread": 2}], "Name": "t2", "Frac": 0.25}`)
	got := []byte(`{"Rows": [{"Sats": 101, "Spread": 2}], "Name": "t2", "Frac": 0.25}`)
	diffs, err := Compare(got, want, Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1: %v", len(diffs), diffs)
	}
	d := diffs[0]
	if d.Path != "/Rows/0/Sats" {
		t.Errorf("diff path = %q, want /Rows/0/Sats", d.Path)
	}
	if d.Got != "101" || d.Want != "100" {
		t.Errorf("diff values = %q/%q, want 101/100", d.Got, d.Want)
	}
	if !strings.Contains(d.String(), "/Rows/0/Sats") {
		t.Errorf("diff string %q does not name the path", d.String())
	}
}

func TestCompareTolerance(t *testing.T) {
	want := []byte(`{"f": 1.0, "g": 2.0}`)
	got := []byte(`{"f": 1.0000000001, "g": 2.1}`)
	// Within 1e-9 relative: f passes, g fails.
	diffs, err := Compare(got, want, Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || diffs[0].Path != "/g" {
		t.Fatalf("diffs = %v, want exactly /g", diffs)
	}
	// A per-field rule can loosen g.
	tol := Default()
	tol.Rules = []Rule{{Path: "/g", Rel: 0.1}}
	diffs, err = Compare(got, want, tol)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("rule did not apply: %v", diffs)
	}
	// Exact tolerance rejects even the 1e-10 drift.
	diffs, err = Compare(got, want, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("exact compare found %d diffs, want 2", len(diffs))
	}
}

func TestCompareStructural(t *testing.T) {
	cases := []struct {
		name      string
		got, want string
		paths     []string
	}{
		{"missing key", `{"a": 1}`, `{"a": 1, "b": 2}`, []string{"/b"}},
		{"extra key", `{"a": 1, "b": 2}`, `{"a": 1}`, []string{"/b"}},
		{"type change", `{"a": "1"}`, `{"a": 1}`, []string{"/a"}},
		{"array length", `[1, 2, 3]`, `[1, 2]`, []string{""}},
		{"array shorter with prefix diff", `[1]`, `[9, 2]`, []string{"", "/0"}},
		{"string", `{"s": "x"}`, `{"s": "y"}`, []string{"/s"}},
		{"bool", `{"b": true}`, `{"b": false}`, []string{"/b"}},
		{"null vs value", `{"n": null}`, `{"n": 0}`, []string{"/n"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffs, err := Compare([]byte(tc.got), []byte(tc.want), Default())
			if err != nil {
				t.Fatal(err)
			}
			if len(diffs) != len(tc.paths) {
				t.Fatalf("got %d diffs %v, want paths %v", len(diffs), diffs, tc.paths)
			}
			for i, p := range tc.paths {
				if diffs[i].Path != p {
					t.Errorf("diff %d path = %q, want %q", i, diffs[i].Path, p)
				}
			}
		})
	}
}

func TestCompareParseErrors(t *testing.T) {
	if _, err := Compare([]byte("{"), []byte("{}"), Default()); err == nil {
		t.Error("invalid replay JSON must error")
	}
	if _, err := Compare([]byte("{}"), []byte("{"), Default()); err == nil {
		t.Error("invalid corpus JSON must error")
	}
}

func TestPathMatch(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/*", "/a/b", true},
		{"/*/b", "/a/b", true},
		{"/a/*", "/a/b/c", false},
		{"/a", "/a/b", false},
		{"/Fraction/*/*", "/Fraction/3/2", true},
	}
	for _, tc := range cases {
		if got := pathMatch(tc.pattern, tc.path); got != tc.want {
			t.Errorf("pathMatch(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

func TestCorpusLayoutRoundTrip(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	type result struct {
		N int
		F float64
	}
	if err := WriteFile(ctx, File(root, 1, 0.02, "table2"), result{N: 5, F: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(ctx, File(root, 1, 0.05, "table2"), result{N: 6, F: 0.6}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(ctx, File(root, 2, 0.02, "fig1"), result{N: 7, F: 0.7}); err != nil {
		t.Fatal(err)
	}

	configs, err := Configs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 3 {
		t.Fatalf("got %d configs, want 3: %+v", len(configs), configs)
	}
	// Sorted by (seed, scale).
	if configs[0].Seed != 1 || configs[0].Scale != 0.02 ||
		configs[1].Seed != 1 || configs[1].Scale != 0.05 ||
		configs[2].Seed != 2 || configs[2].Scale != 0.02 {
		t.Fatalf("configs out of order: %+v", configs)
	}

	names, err := Experiments(configs[0].Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "table2" {
		t.Fatalf("experiments = %v, want [table2]", names)
	}

	// The frozen file compares clean against a fresh encoding.
	frozen, err := ReadFile(File(root, 1, 0.02, "table2"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Encode(result{N: 5, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := Compare(fresh, frozen, Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("round trip drifted: %v", diffs)
	}
}

func TestConfigsRejectsStrayEntries(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "notaseed", "0.02"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Configs(root); err == nil {
		t.Error("non-numeric seed directory must error")
	}

	root2 := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root2, "1", "huge"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Configs(root2); err == nil {
		t.Error("non-numeric scale directory must error")
	}

	root3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(root3, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Configs(root3); err == nil {
		t.Error("stray file in corpus root must error")
	}
}

func TestFormatScale(t *testing.T) {
	for _, tc := range []struct {
		scale float64
		want  string
	}{{0.02, "0.02"}, {0.05, "0.05"}, {1, "1"}, {0.125, "0.125"}} {
		if got := FormatScale(tc.scale); got != tc.want {
			t.Errorf("FormatScale(%v) = %q, want %q", tc.scale, got, tc.want)
		}
	}
}
