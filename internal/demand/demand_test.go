package demand

import (
	"math"
	"testing"
	"testing/quick"

	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
)

func TestReliablyServed(t *testing.T) {
	cases := []struct {
		down, up float64
		want     bool
	}{
		{100, 20, true},
		{300, 30, true},
		{99.9, 20, false},
		{100, 19.9, false},
		{0, 0, false},
	}
	for _, tc := range cases {
		if got := ReliablyServed(tc.down, tc.up); got != tc.want {
			t.Errorf("ReliablyServed(%v, %v) = %v, want %v", tc.down, tc.up, got, tc.want)
		}
	}
}

func TestLocationUnderserved(t *testing.T) {
	l := Location{MaxDownMbps: 25, MaxUpMbps: 3}
	if !l.Underserved() {
		t.Error("25/3 should be underserved")
	}
	l = Location{MaxDownMbps: 940, MaxUpMbps: 880, Technology: "fiber"}
	if l.Underserved() {
		t.Error("fiber location should be served")
	}
}

func TestCellDemand(t *testing.T) {
	c := Cell{Locations: 5998}
	if got := c.DemandGbps(); got != 599.8 {
		t.Errorf("DemandGbps = %v, want 599.8", got)
	}
}

func TestAggregate(t *testing.T) {
	center := geo.LatLng{Lat: 40, Lng: -100}
	other := geo.LatLng{Lat: 30, Lng: -90}
	mk := func(p geo.LatLng, county string, down float64) Location {
		return Location{Pos: p, CountyFIPS: county, MaxDownMbps: down, MaxUpMbps: 1}
	}
	locs := []Location{
		mk(center, "20001", 10),
		mk(center, "20001", 10),
		mk(center, "20003", 10),
		mk(other, "29001", 10),
		mk(other, "29001", 500), // underserved on upload (1 Mbps)
		{Pos: other, CountyFIPS: "29001", MaxDownMbps: 500, MaxUpMbps: 100}, // served; skipped
	}
	cells, err := Aggregate(locs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	byID := map[hexgrid.CellID]Cell{}
	for _, c := range cells {
		byID[c.ID] = c
	}
	c1 := byID[hexgrid.LatLngToCell(center, 5)]
	if c1.Locations != 3 {
		t.Errorf("center cell has %d locations, want 3", c1.Locations)
	}
	if c1.CountyFIPS != "20001" {
		t.Errorf("center cell county = %s, want plurality 20001", c1.CountyFIPS)
	}
	c2 := byID[hexgrid.LatLngToCell(other, 5)]
	if c2.Locations != 2 {
		t.Errorf("other cell has %d locations, want 2", c2.Locations)
	}
	if _, err := Aggregate(locs, hexgrid.Resolution(-1)); err == nil {
		t.Error("invalid resolution should fail")
	}
}

// buildDist creates a distribution from location counts at synthetic
// cells.
func buildDist(t *testing.T, counts ...int) *Distribution {
	t.Helper()
	cells := make([]Cell, len(counts))
	for i, n := range counts {
		cells[i] = Cell{
			ID:        hexgrid.CellID(i + 1),
			Locations: n,
			Center:    geo.LatLng{Lat: 35 + float64(i), Lng: -100},
		}
	}
	d, err := NewDistribution(cells)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDistributionBasics(t *testing.T) {
	d := buildDist(t, 10, 5, 100, 0, 50)
	if got := d.NumCells(); got != 4 { // zero-location cell dropped
		t.Errorf("NumCells = %d, want 4", got)
	}
	if got := d.TotalLocations(); got != 165 {
		t.Errorf("TotalLocations = %d, want 165", got)
	}
	if got := d.Peak().Locations; got != 100 {
		t.Errorf("Peak = %d, want 100", got)
	}
	if got := d.CellsAbove(50); got != 1 {
		t.Errorf("CellsAbove(50) = %d, want 1", got)
	}
	if got := d.CellsAbove(4); got != 4 {
		t.Errorf("CellsAbove(4) = %d, want 4", got)
	}
	if got := d.LocationsInCellsAbove(40); got != 150 {
		t.Errorf("LocationsInCellsAbove(40) = %d, want 150", got)
	}
	if got := d.ExcessAbove(40); got != 70 { // (100-40)+(50-40)
		t.Errorf("ExcessAbove(40) = %d, want 70", got)
	}
	if got := d.ExcessAbove(100); got != 0 {
		t.Errorf("ExcessAbove(100) = %d, want 0", got)
	}
	if got := d.ServedFractionWithCap(40); math.Abs(got-(1-70.0/165)) > 1e-12 {
		t.Errorf("ServedFractionWithCap(40) = %v", got)
	}
	if got := d.FractionOfCellsAtMost(10); got != 0.5 {
		t.Errorf("FractionOfCellsAtMost(10) = %v, want 0.5", got)
	}
}

func TestDistributionErrors(t *testing.T) {
	if _, err := NewDistribution(nil); err == nil {
		t.Error("empty cells should fail")
	}
	if _, err := NewDistribution([]Cell{{Locations: 0}}); err == nil {
		t.Error("all-zero cells should fail")
	}
	if _, err := NewDistribution([]Cell{{Locations: -1}}); err == nil {
		t.Error("negative locations should fail")
	}
}

func TestDistributionOrdering(t *testing.T) {
	d := buildDist(t, 3, 9, 1, 9)
	cells := d.Cells()
	for i := 1; i < len(cells); i++ {
		if cells[i].Locations > cells[i-1].Locations {
			t.Fatal("cells not sorted descending")
		}
	}
}

// Property: ExcessAbove is nonincreasing in the cap, and consistent
// with LocationsInCellsAbove/CellsAbove.
func TestExcessProperty(t *testing.T) {
	f := func(raw []uint16, capRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, 0, len(raw))
		anyPositive := false
		for _, v := range raw {
			n := int(v % 2000)
			counts = append(counts, n)
			anyPositive = anyPositive || n > 0
		}
		if !anyPositive {
			return true
		}
		cells := make([]Cell, len(counts))
		for i, n := range counts {
			cells[i] = Cell{ID: hexgrid.CellID(i + 1), Locations: n}
		}
		d, err := NewDistribution(cells)
		if err != nil {
			return false
		}
		t1 := int(capRaw % 2000)
		e1, e2 := d.ExcessAbove(t1), d.ExcessAbove(t1+10)
		if e2 > e1 {
			return false
		}
		// Identity: excess = locations in cells above cap − cap × count.
		want := d.LocationsInCellsAbove(t1) - t1*d.CellsAbove(t1)
		return e1 == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountyWeights(t *testing.T) {
	cells := []Cell{
		{ID: 1, Locations: 10, CountyFIPS: "01001"},
		{ID: 2, Locations: 20, CountyFIPS: "01001"},
		{ID: 3, Locations: 5, CountyFIPS: "02002"},
	}
	d, err := NewDistribution(cells)
	if err != nil {
		t.Fatal(err)
	}
	w := d.CountyWeights()
	if w["01001"] != 30 || w["02002"] != 5 {
		t.Errorf("CountyWeights = %v", w)
	}
}

func TestSummary(t *testing.T) {
	d := buildDist(t, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || s.Max != 10 || s.Min != 1 {
		t.Errorf("Summary = %+v", s)
	}
	if got := d.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %d, want 5", got)
	}
}

func TestScale(t *testing.T) {
	cells := []Cell{
		{ID: 1, Locations: 100},
		{ID: 2, Locations: 1},
		{ID: 3, Locations: 0},
	}
	scaled, err := Scale(cells, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0].Locations != 120 {
		t.Errorf("scaled[0] = %d, want 120", scaled[0].Locations)
	}
	// Small counts never vanish.
	down, err := Scale(cells, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if down[1].Locations != 1 {
		t.Errorf("scaled-down tiny cell = %d, want 1", down[1].Locations)
	}
	// Zero cells stay zero.
	if down[2].Locations != 0 {
		t.Errorf("zero cell became %d", down[2].Locations)
	}
	// Original untouched.
	if cells[0].Locations != 100 {
		t.Error("Scale mutated input")
	}
	if _, err := Scale(cells, 0); err == nil {
		t.Error("factor 0 should fail")
	}
}

func TestTechnologyMix(t *testing.T) {
	locs := []Location{
		{Technology: "dsl", MaxDownMbps: 25, MaxUpMbps: 3},
		{Technology: "dsl", MaxDownMbps: 10, MaxUpMbps: 1},
		{Technology: "fiber", MaxDownMbps: 940, MaxUpMbps: 880},
		{Technology: "cable", MaxDownMbps: 100, MaxUpMbps: 10},
	}
	mix := TechnologyMix(locs)
	if len(mix) != 3 {
		t.Fatalf("got %d technologies", len(mix))
	}
	if mix[0].Technology != "dsl" || mix[0].Locations != 2 {
		t.Errorf("top tech = %+v", mix[0])
	}
	if mix[0].ReliableShare != 0 {
		t.Errorf("dsl reliable share = %v", mix[0].ReliableShare)
	}
	for _, m := range mix {
		if m.Technology == "fiber" && m.ReliableShare != 1 {
			t.Errorf("fiber reliable share = %v", m.ReliableShare)
		}
	}
}
