// Package demand models broadband demand: individual serviceable
// locations (the FCC Broadband Data Collection unit), their
// classification against the federal "reliable broadband" benchmark,
// aggregation into service-grid cells, and the per-cell density
// distribution the capacity model is driven by.
package demand

import (
	"fmt"
	"math"
	"sort"

	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/spectrum"
	"leodivide/internal/stage"
	"leodivide/internal/stats"
)

// Location is one broadband-serviceable location with the best service
// any ISP reports there.
type Location struct {
	// ID is a stable identifier, unique within a dataset.
	ID uint64
	// Pos is the location's coordinate.
	Pos geo.LatLng
	// CountyFIPS is the 5-digit county code.
	CountyFIPS string
	// StateAbbr is the USPS state abbreviation.
	StateAbbr string
	// MaxDownMbps and MaxUpMbps are the fastest reported service.
	MaxDownMbps, MaxUpMbps float64
	// Technology is the reported access technology ("none", "dsl",
	// "fixed-wireless", "cable", "fiber", "satellite").
	Technology string
}

// ReliablyServed reports whether down/up meets the FCC reliable
// broadband benchmark (100/20 Mbps).
func ReliablyServed(downMbps, upMbps float64) bool {
	return downMbps >= spectrum.FCCDownlinkMbps && upMbps >= spectrum.FCCUplinkMbps
}

// Underserved reports whether the location lacks reliable broadband.
func (l Location) Underserved() bool {
	return !ReliablyServed(l.MaxDownMbps, l.MaxUpMbps)
}

// Cell is one service-grid cell with its aggregated demand.
type Cell struct {
	// ID is the grid cell.
	ID hexgrid.CellID
	// Locations is the number of un(der)served locations in the cell.
	Locations int
	// CountyFIPS is the county owning the cell's center (the paper
	// assigns incomes at county granularity).
	CountyFIPS string
	// Center is the cell's center coordinate.
	Center geo.LatLng
}

// DemandGbps returns the cell's sold downlink demand at the FCC
// benchmark.
func (c Cell) DemandGbps() float64 {
	return float64(c.Locations) * spectrum.FCCDownlinkMbps / 1000
}

// Aggregate groups un(der)served locations into cells at the given
// resolution. Served locations are skipped. County attribution uses the
// plurality county among the cell's locations.
func Aggregate(locs []Location, res hexgrid.Resolution) ([]Cell, error) {
	if !res.Valid() {
		return nil, fmt.Errorf("demand: invalid resolution %d", res)
	}
	type agg struct {
		count    int
		counties map[string]int
	}
	byCell := make(map[hexgrid.CellID]*agg)
	for _, l := range locs {
		if !l.Underserved() {
			continue
		}
		id := hexgrid.LatLngToCell(l.Pos, res)
		a := byCell[id]
		if a == nil {
			a = &agg{counties: make(map[string]int)}
			byCell[id] = a
		}
		a.count++
		a.counties[l.CountyFIPS]++
	}
	out := make([]Cell, 0, len(byCell))
	for id, a := range byCell {
		county, best := "", -1
		for f, n := range a.counties {
			if n > best || (n == best && f < county) {
				county, best = f, n
			}
		}
		out = append(out, Cell{ID: id, Locations: a.count, CountyFIPS: county, Center: id.LatLng()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Distribution wraps a cell set with the order statistics the model
// queries repeatedly. Construct with NewDistribution.
//
// Alongside the cell slice it keeps columnar projections of the hot
// per-cell fields (location counts, center latitudes) so the capacity
// model's inner loops scan dense arrays instead of striding across
// Cell structs, plus a per-dataset stage memo for derived results that
// are invariant across sweep points (see package stage).
type Distribution struct {
	cells  []Cell // descending by Locations
	cdf    *stats.CDF
	total  int
	suffix []int // suffix[i] = sum of Locations of cells[0..i]

	locs   []int32   // column of cells[i].Locations
	lats   []float64 // column of cells[i].Center.Lat
	stages *stage.Memo
}

// NewDistribution indexes the cells. Cells with zero locations are
// dropped (they impose coverage but no demand).
func NewDistribution(cells []Cell) (*Distribution, error) {
	kept := make([]Cell, 0, len(cells))
	for _, c := range cells {
		if c.Locations < 0 {
			return nil, fmt.Errorf("demand: cell %v has negative locations", c.ID)
		}
		if c.Locations > math.MaxInt32 {
			return nil, fmt.Errorf("demand: cell %v has %d locations, beyond the int32 column range", c.ID, c.Locations)
		}
		if c.Locations > 0 {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("demand: no cells with demand")
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Locations != kept[j].Locations {
			return kept[i].Locations > kept[j].Locations
		}
		return kept[i].ID < kept[j].ID
	})
	samples := make([]float64, len(kept))
	suffix := make([]int, len(kept))
	locs := make([]int32, len(kept))
	lats := make([]float64, len(kept))
	total := 0
	for i, c := range kept {
		samples[i] = float64(c.Locations)
		total += c.Locations
		suffix[i] = total
		locs[i] = int32(c.Locations)
		lats[i] = c.Center.Lat
	}
	cdf, err := stats.NewCDF(samples)
	if err != nil {
		return nil, err
	}
	return &Distribution{
		cells: kept, cdf: cdf, total: total, suffix: suffix,
		locs: locs, lats: lats,
		stages: stage.New(0),
	}, nil
}

// NumCells returns the number of cells with demand.
func (d *Distribution) NumCells() int { return len(d.cells) }

// TotalLocations returns the total un(der)served locations.
func (d *Distribution) TotalLocations() int { return d.total }

// Cells returns the cells in descending demand order. The returned
// slice is shared; callers must not modify it.
func (d *Distribution) Cells() []Cell { return d.cells }

// Peak returns the densest cell.
func (d *Distribution) Peak() Cell { return d.cells[0] }

// CDF returns the per-cell location-count CDF.
func (d *Distribution) CDF() *stats.CDF { return d.cdf }

// Locs returns the per-cell location counts as a dense column, aligned
// with Cells() (descending). Shared storage; callers must not modify.
func (d *Distribution) Locs() []int32 { return d.locs }

// Lats returns the per-cell center latitudes as a dense column, aligned
// with Cells(). Shared storage; callers must not modify.
func (d *Distribution) Lats() []float64 { return d.lats }

// Stages returns the distribution's compute-stage memo. Derived values
// that depend only on this dataset (plus model knobs encoded in the
// key) are cached here and shared across sweep points and concurrent
// experiments. Nil only for a zero-value Distribution.
func (d *Distribution) Stages() *stage.Memo { return d.stages }

// Quantile returns the per-cell location count at quantile q.
func (d *Distribution) Quantile(q float64) int { return int(d.cdf.Quantile(q)) }

// CellsAbove returns the number of cells with more than t locations.
func (d *Distribution) CellsAbove(t int) int {
	// Integer binary search on the descending locs column; identical to
	// the former cdf.CountGT(float64(t)) because location counts are
	// integers far below 2^53 and convert to float64 exactly.
	return sort.Search(len(d.locs), func(i int) bool { return int(d.locs[i]) <= t })
}

// LocationsInCellsAbove returns the total locations living in cells with
// more than t locations (the paper's "locations subject to high
// oversubscription").
func (d *Distribution) LocationsInCellsAbove(t int) int {
	n := d.CellsAbove(t)
	if n == 0 {
		return 0
	}
	return d.suffix[n-1]
}

// ExcessAbove returns the total locations beyond a per-cell cap of t:
// Σ max(L−t, 0). These are the locations that cannot be served when
// every cell is limited to t.
func (d *Distribution) ExcessAbove(t int) int {
	n := d.CellsAbove(t)
	if n == 0 {
		return 0
	}
	return d.suffix[n-1] - n*t
}

// ServedFractionWithCap returns the fraction of all locations servable
// when every cell is capped at t locations.
func (d *Distribution) ServedFractionWithCap(t int) float64 {
	return 1 - float64(d.ExcessAbove(t))/float64(d.total)
}

// FractionOfCellsAtMost returns the fraction of demand cells with at
// most t locations.
func (d *Distribution) FractionOfCellsAtMost(t int) float64 {
	// = cdf.P(float64(t)): CountLE is the complement of CellsAbove over
	// the same integer column, and the division order is unchanged.
	return float64(len(d.locs)-d.CellsAbove(t)) / float64(len(d.locs))
}

// Summary returns headline statistics of the per-cell distribution.
func (d *Distribution) Summary() (stats.Summary, error) {
	// The CDF already holds the sorted sample column; summarizing it is
	// value-identical to re-collecting and re-sorting the samples.
	return stats.SummarizeCDF(d.cdf)
}

// CountyWeights returns total locations per county FIPS, for income
// weighting.
func (d *Distribution) CountyWeights() map[string]int {
	out := make(map[string]int)
	for _, c := range d.cells {
		out[c.CountyFIPS] += c.Locations
	}
	return out
}

// Scale returns a copy of cells with every location count multiplied by
// factor (rounded, minimum 1). It models the FCC map's known
// undercounting of un(der)served locations — ISPs self-report coverage
// and are known to overstate it — so sensitivity analyses can ask how
// the capacity findings move if the true demand is, say, 20% higher
// than the map shows.
func Scale(cells []Cell, factor float64) ([]Cell, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("demand: scale factor must be positive, got %v", factor)
	}
	out := make([]Cell, len(cells))
	for i, c := range cells {
		n := int(math.Round(float64(c.Locations) * factor))
		if n < 1 && c.Locations > 0 {
			n = 1
		}
		out[i] = c
		out[i].Locations = n
	}
	return out, nil
}

// TechMix summarizes the access technologies reported across locations.
type TechMix struct {
	Technology string
	Locations  int
	// ReliableShare is the fraction of the technology's locations
	// meeting the 100/20 benchmark.
	ReliableShare float64
}

// TechnologyMix aggregates locations by technology, sorted by location
// count descending.
func TechnologyMix(locs []Location) []TechMix {
	type agg struct{ n, reliable int }
	byTech := make(map[string]*agg)
	for _, l := range locs {
		a := byTech[l.Technology]
		if a == nil {
			a = &agg{}
			byTech[l.Technology] = a
		}
		a.n++
		if !l.Underserved() {
			a.reliable++
		}
	}
	out := make([]TechMix, 0, len(byTech))
	for tech, a := range byTech {
		out = append(out, TechMix{
			Technology:    tech,
			Locations:     a.n,
			ReliableShare: float64(a.reliable) / float64(a.n),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Locations != out[j].Locations {
			return out[i].Locations > out[j].Locations
		}
		return out[i].Technology < out[j].Technology
	})
	return out
}
