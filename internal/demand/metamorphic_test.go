package demand

// Metamorphic oracles for demand aggregation: re-partitioning locations
// into a coarser or finer hexgrid must conserve what the capacity model
// actually consumes — every underserved location lands in exactly one
// cell at every resolution. The paper's per-cell distribution (Fig. 1)
// is resolution-dependent by design, but its integral is not.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"leodivide/internal/geo"
	"leodivide/internal/hexgrid"
	"leodivide/internal/testutil"
)

// syntheticLocations builds a deterministic CONUS-spread location set
// with a mix of served and underserved records.
func syntheticLocations(n int) []Location {
	rng := rand.New(rand.NewSource(7))
	locs := make([]Location, n)
	for i := range locs {
		l := Location{
			ID: uint64(i + 1),
			Pos: geo.LatLng{
				Lat: 26 + rng.Float64()*21, // 26..47 N
				Lng: -120 + rng.Float64()*45,
			},
			CountyFIPS: fmt.Sprintf("%05d", 1000+rng.Intn(300)),
			StateAbbr:  "TX",
			Technology: "none",
		}
		// A quarter of the set is reliably served and must be ignored
		// by aggregation at every resolution.
		if i%4 == 0 {
			l.MaxDownMbps, l.MaxUpMbps = 300, 30
			l.Technology = "cable"
		}
		locs[i] = l
	}
	return locs
}

func TestAggregateConservesLocationsAcrossResolutions(t *testing.T) {
	locs := syntheticLocations(5000)
	underserved := 0
	for _, l := range locs {
		if l.Underserved() {
			underserved++
		}
	}

	totals := make(map[string]int64)
	for _, res := range []hexgrid.Resolution{3, 4, 5, 6} {
		cells, err := Aggregate(locs, res)
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		var sum int64
		for _, c := range cells {
			sum += int64(c.Locations)
		}
		totals[fmt.Sprintf("res%d", res)] = sum
	}
	totals["underserved-input"] = int64(underserved)
	testutil.RequireConserved(t, "underserved locations across hexgrid resolutions", totals)
}

func TestAggregateRefinementNesting(t *testing.T) {
	// Coarser grids have no more cells than finer ones, and the peak
	// cell can only grow as cells merge.
	locs := syntheticLocations(5000)
	var numCells, peaks []float64
	for _, res := range []hexgrid.Resolution{6, 5, 4, 3} {
		cells, err := Aggregate(locs, res)
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		dist, err := NewDistribution(cells)
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		numCells = append(numCells, float64(dist.NumCells()))
		peaks = append(peaks, float64(dist.Peak().Locations))
	}
	testutil.RequireMonotone(t, "cell count as resolution coarsens", numCells, testutil.NonIncreasing)
	testutil.RequireMonotone(t, "peak cell as resolution coarsens", peaks, testutil.NonDecreasing)
}

func TestDistributionConservesAggregateTotal(t *testing.T) {
	// NewDistribution drops zero-demand cells but must conserve the
	// location total, and its suffix sums must tie out against it.
	locs := syntheticLocations(3000)
	cells, err := Aggregate(locs, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range cells {
		sum += int64(c.Locations)
	}
	dist, err := NewDistribution(cells)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireConserved(t, "distribution total vs cell sum", map[string]int64{
		"cells":        sum,
		"distribution": int64(dist.TotalLocations()),
		"above-zero":   int64(dist.LocationsInCellsAbove(0)),
	})

	// ServedFractionWithCap is monotone in the cap and saturates at 1.
	peak := dist.Peak().Locations
	caps := []int{0, 1, peak / 4, peak / 2, peak, peak + 1}
	sort.Ints(caps)
	var served []float64
	for _, cap := range caps {
		served = append(served, dist.ServedFractionWithCap(cap))
	}
	testutil.RequireMonotone(t, "served fraction vs per-cell cap", served, testutil.NonDecreasing)
	if got := dist.ServedFractionWithCap(peak); got != 1 {
		t.Errorf("cap at peak must serve everyone, got %v", got)
	}
}

func TestScaleConservesCellCount(t *testing.T) {
	locs := syntheticLocations(2000)
	cells, err := Aggregate(locs, 5)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Scale(cells, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaled) != len(cells) {
		t.Fatalf("Scale changed cell count: %d -> %d", len(cells), len(scaled))
	}
	// Scaling up never shrinks any cell; totals grow accordingly.
	for i := range cells {
		if scaled[i].Locations < cells[i].Locations {
			t.Fatalf("cell %d shrank under 1.25x scale: %d -> %d",
				i, cells[i].Locations, scaled[i].Locations)
		}
		if scaled[i].ID != cells[i].ID || scaled[i].CountyFIPS != cells[i].CountyFIPS {
			t.Fatalf("cell %d identity changed under scaling", i)
		}
	}
}
