// Package leodivide reproduces the analysis of "Anyone, Anywhere, not
// Everyone, Everywhere: Starlink Doesn't End the Digital Divide"
// (HotNets 2025): an analytical model coupling the peak demand density
// of un(der)served US broadband locations with the physical and
// regulatory limits of LEO access networks, plus the companion
// affordability analysis.
//
// The package is the public facade over the internal substrates
// (geodesy, geospatial grid, orbits, spectrum, beams, demand, synthetic
// datasets, affordability). A typical session:
//
//	ctx := context.Background()
//	ds, err := leodivide.GenerateDataset(ctx)     // synthetic national map
//	m := leodivide.NewModel()
//	t1, err := m.Table1(ctx, ds)                  // single-satellite capacity
//	t2, err := m.Table2(ctx, ds)                  // constellation sizing
//	f4, err := m.Fig4(ctx, ds)                    // affordability
//
// Every experiment runner shares the (ctx, *Dataset) (Result, error)
// shape, is enumerable through Model.Experiments, and fans out over
// Model.Parallelism workers with output identical to the serial path.
// Each runner corresponds to a table or figure of the paper; see
// EXPERIMENTS.md for the paper-vs-measured record.
package leodivide

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"leodivide/internal/afford"
	"leodivide/internal/bdc"
	"leodivide/internal/census"
	"leodivide/internal/constellation"
	"leodivide/internal/core"
	"leodivide/internal/demand"
	"leodivide/internal/hexgrid"
	"leodivide/internal/obs"
	"leodivide/internal/par"
	"leodivide/internal/region"
	"leodivide/internal/spectrum"
	"leodivide/internal/stage"
	"leodivide/internal/stats"
)

// Facade-level observability (see internal/obs): dataset generation
// counts and stage durations. Experiment-level instruments are attached
// per registry entry in experiments.go.
var (
	metricDatasets = obs.Default.Counter("gen.datasets")
	metricGenSecs  = obs.Default.Histogram("gen.dataset.seconds", obs.DurationBuckets)
	gaugeCells     = obs.Default.Gauge("gen.cells")
)

// Dataset is a synthetic national broadband dataset: per-cell
// un(der)served location counts plus county median incomes, calibrated
// to the paper's published statistics.
type Dataset struct {
	// Cells are the demand cells (service-grid cells with at least one
	// un(der)served location).
	Cells []demand.Cell
	// Incomes is the county income table, weighted by location counts.
	Incomes *census.Table
	// Resolution is the service-cell grid resolution.
	Resolution hexgrid.Resolution
	// Seed reproduces the dataset (together with Region and Scale).
	Seed int64
	// Region is the canonical key of the geography that generated the
	// dataset ("us" for the calibrated national map).
	Region string
	// Scale is the fraction of the region's declared total the dataset
	// was generated at, in (0, 1].
	Scale float64

	dist *demand.Distribution
}

// Option adjusts dataset generation.
type Option func(*genOptions)

type genOptions struct {
	seed           int64
	scale          float64
	region         string
	cfg            bdc.GenConfig
	incomeAnchors  []census.QuantileAnchor
	parallelism    int
	hasParallelism bool
}

// WithSeed sets the generation seed (default 1).
func WithSeed(seed int64) Option {
	return func(o *genOptions) { o.seed = seed }
}

// WithScale shrinks the dataset to the given fraction of the national
// total (default 1.0). Peak cells scale too, so distribution shape is
// preserved; headline counts scale proportionally.
func WithScale(scale float64) Option {
	return func(o *genOptions) { o.scale = scale }
}

// WithRegion selects the demand/income geography by canonical key
// (default region.DefaultKey, the calibrated US pipeline). See
// internal/region for the shipped set.
func WithRegion(key string) Option {
	return func(o *genOptions) { o.region = key }
}

// WithGenConfig replaces the calibrated BDC generator configuration
// entirely (advanced; applies to the "us" region only).
func WithGenConfig(cfg bdc.GenConfig) Option {
	return func(o *genOptions) { o.cfg = cfg }
}

// WithIncomeAnchors replaces the calibrated income quantile anchors.
func WithIncomeAnchors(anchors []census.QuantileAnchor) Option {
	return func(o *genOptions) { o.incomeAnchors = anchors }
}

// WithParallelism bounds the worker count for generation (default one
// worker per CPU; 1 reproduces the serial path). The dataset is
// identical at every setting — parallelism only changes wall-clock time.
func WithParallelism(n int) Option {
	return func(o *genOptions) { o.parallelism, o.hasParallelism = n, true }
}

// GenerateDataset synthesizes a dataset for the selected region
// (default the calibrated US national map). The context cancels
// generation early; the (seed, region, scale) triple fully determines
// the result regardless of WithParallelism.
func GenerateDataset(ctx context.Context, opts ...Option) (*Dataset, error) {
	//lint:ignore detrand wall-clock feeds the generate_dataset duration metric only, never the dataset
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "generate_dataset")
	defer span.End()
	o := genOptions{
		seed:          1,
		scale:         1,
		region:        region.DefaultKey,
		cfg:           bdc.DefaultGenConfig(),
		incomeAnchors: census.DefaultIncomeAnchors(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.scale <= 0 || o.scale > 1 {
		return nil, fmt.Errorf("leodivide: scale must be in (0,1], got %v", o.scale)
	}

	// Resolve the geography. The default "us" region is constructed from
	// the facade's (possibly overridden) generator configuration and
	// income anchors, so WithGenConfig/WithIncomeAnchors keep working;
	// every other region comes from the registry as declared.
	var r region.Region
	if o.region == region.DefaultKey {
		cfg := o.cfg
		if o.hasParallelism {
			cfg.Parallelism = o.parallelism
		}
		r = region.USWith(cfg, o.incomeAnchors)
	} else {
		reg, ok := region.ByName(o.region)
		if !ok {
			return nil, fmt.Errorf("leodivide: unknown region %q (valid: %s)",
				o.region, strings.Join(region.Names(), ", "))
		}
		r = reg
	}
	parallelism := o.cfg.Parallelism
	if o.hasParallelism {
		parallelism = o.parallelism
	}
	out, err := r.Generate(ctx, region.GenConfig{
		Seed:        o.seed,
		Scale:       o.scale,
		Parallelism: parallelism,
	})
	if err != nil {
		return nil, err
	}
	metricDatasets.Inc()
	metricGenSecs.ObserveSince(start)
	gaugeCells.Set(float64(len(out.Cells)))
	if span != nil {
		span.SetAttr(obs.Int("cells", int64(len(out.Cells))),
			obs.Int("seed", o.seed))
	}
	return &Dataset{
		Cells:      out.Cells,
		Incomes:    out.Incomes,
		Resolution: out.Resolution,
		Seed:       o.seed,
		Region:     o.region,
		Scale:      o.scale,
		dist:       out.Dist,
	}, nil
}

// Distribution returns the per-cell demand distribution.
func (d *Dataset) Distribution() *demand.Distribution { return d.dist }

// TotalLocations returns the national un(der)served location count.
func (d *Dataset) TotalLocations() int { return d.dist.TotalLocations() }

// NumCells returns the number of demand cells.
func (d *Dataset) NumCells() int { return d.dist.NumCells() }

// Model is the public capacity-and-affordability model.
type Model struct {
	// System is the constellation spec the model analyzes (default
	// Starlink Gen1). Capacity is derived from it at construction;
	// the cross-constellation experiments (costcurve, xconst) also use
	// it to identify the active system whose scenario cost overrides
	// apply. Obtain coherent pairs from NewModelFor rather than
	// writing the field directly.
	System constellation.System
	// Capacity is the underlying capacity model; adjust fields for
	// ablations.
	Capacity core.Model
	// AffordShare is the affordability threshold as a share of monthly
	// income (default 2%).
	AffordShare float64
	// MaxOversub is the acceptable oversubscription cap (default the
	// FCC fixed-wireless 20:1).
	MaxOversub float64
	// Fig3Spreads overrides the beamspread factors Fig3 evaluates when
	// run through the registry (nil = PaperTable2Spreads). Promoted to
	// a ScenarioConfig knob so the serving layer can sweep it.
	Fig3Spreads []float64
	// PlanFilter restricts Fig4's plan comparison to the named plan
	// labels (nil = the paper's full comparison). Unknown labels are a
	// run-time error naming the valid set.
	PlanFilter []string
	// Workers bounds the worker count for facade-level fan-outs (Fig3
	// curves, Fig4 plan curves, Stability seeds). 0 means one worker
	// per CPU; 1 is the serial path.
	//
	// Do not write this field directly: Parallelism is the single
	// supported entry point for the parallelism knob and keeps Workers
	// and Capacity.Parallelism in lockstep. Setting one without the
	// other (field drift) leaves part of the pipeline at a different
	// worker count and is unsupported. RunConfig carries the same knob
	// for CLI/bench construction.
	Workers int
}

// Parallelism returns a copy of the model whose experiment runners fan
// out over at most n workers (0 = one per CPU, 1 = the exact serial
// path). Every runner's output is identical at every setting; the knob
// only changes wall-clock time.
//
// This is the one supported way to set the model's worker count: it
// keeps the facade's Workers and the capacity model's Parallelism in
// lockstep. The same knob reaches dataset generation through
// WithParallelism (or RunConfig, which sets all of them coherently).
func (m Model) Parallelism(n int) Model {
	m.Workers = n
	m.Capacity.Parallelism = n
	return m
}

// NewModel returns the model with the paper's parameters: the Starlink
// spec viewed through NewModelFor.
func NewModel() Model {
	return NewModelFor(constellation.StarlinkSystem())
}

// NewModelFor returns the model for a constellation spec: the system's
// capacity model plus the paper's affordability share and
// oversubscription cap (the FCC benchmarks apply to every system).
func NewModelFor(sys constellation.System) Model {
	return Model{
		System:      sys,
		Capacity:    core.NewModelFor(sys),
		AffordShare: afford.DefaultAffordabilityShare,
		MaxOversub:  spectrum.FCCFixedWirelessOversubscription,
	}
}

// Calibrated returns a copy whose constellation sizing is pinned to the
// paper's fitted effective cell count (for like-for-like Table 2
// comparisons).
func (m Model) Calibrated() Model {
	m.Capacity = m.Capacity.Calibrated()
	return m
}

// Fig1Result is the per-cell density distribution of Figure 1.
type Fig1Result struct {
	Summary    stats.Summary
	MaxCell    int
	P90, P99   int
	TotalCells int
	TotalLocs  int
	// CDF is the cumulative distribution sampled for plotting.
	CDF []stats.Point
	// Gini quantifies the demand concentration driving the paper's P2:
	// how unevenly locations spread over cells.
	Gini float64
	// Lorenz is the matching Lorenz curve.
	Lorenz []stats.Point
}

// Fig1 computes the Figure 1 distribution.
func (m Model) Fig1(ctx context.Context, d *Dataset) (Fig1Result, error) {
	if err := ctx.Err(); err != nil {
		return Fig1Result{}, err
	}
	dist := d.Distribution()
	sum, err := dist.Summary()
	if err != nil {
		return Fig1Result{}, err
	}
	samples := make([]float64, 0, dist.NumCells())
	for _, c := range dist.Cells() {
		samples = append(samples, float64(c.Locations))
	}
	gini, err := stats.Gini(samples)
	if err != nil {
		return Fig1Result{}, err
	}
	lorenz, err := stats.Lorenz(samples, 100)
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{
		Summary:    sum,
		MaxCell:    dist.Peak().Locations,
		P90:        dist.Quantile(0.90),
		P99:        dist.Quantile(0.99),
		TotalCells: dist.NumCells(),
		TotalLocs:  dist.TotalLocations(),
		CDF:        dist.CDF().Series(200),
		Gini:       gini,
		Lorenz:     lorenz,
	}, nil
}

// Table1 computes the single-satellite capacity model of Table 1.
func (m Model) Table1(ctx context.Context, d *Dataset) (core.CapacityTable, error) {
	if err := ctx.Err(); err != nil {
		return core.CapacityTable{}, err
	}
	return m.Capacity.Capacity(d.Distribution()), nil
}

// Finding1 computes the oversubscription analysis behind Finding 1.
func (m Model) Finding1(ctx context.Context, d *Dataset) (core.OversubAnalysis, error) {
	if err := ctx.Err(); err != nil {
		return core.OversubAnalysis{}, err
	}
	return m.Capacity.Oversubscription(d.Distribution(), m.MaxOversub), nil
}

// PaperSizes maps a beamspread factor to a paper-reported constellation
// size. JSON objects cannot carry float keys, so it marshals with
// canonically formatted string keys ("2", "15") to stay serializable
// for the golden corpus and the observability layer.
type PaperSizes map[float64]int

// MarshalJSON implements json.Marshaler with string-formatted keys.
func (p PaperSizes) MarshalJSON() ([]byte, error) {
	m := make(map[string]int, len(p))
	for k, v := range p {
		m[strconv.FormatFloat(k, 'g', -1, 64)] = v
	}
	return json.Marshal(m)
}

// Table2Result is the Table 2 reproduction plus the paper's reference
// values for comparison.
type Table2Result struct {
	Rows []core.SizeRow
	// PaperFullService and PaperCapped are the constellation sizes the
	// paper reports for the same beamspread factors (for EXPERIMENTS.md
	// style comparison).
	PaperFullService PaperSizes
	PaperCapped      PaperSizes
}

// PaperTable2Spreads are the beamspread factors of the paper's Table 2.
var PaperTable2Spreads = []float64{1, 2, 5, 10, 15}

// The paper's reported Table 2 constellation sizes, built once: the
// maps are shared across Table2 results (hot path under bench and
// serve) and must be treated as read-only.
var (
	paperFullServiceSizes = PaperSizes{
		1: 79287, 2: 40611, 5: 16486, 10: 8284, 15: 5532,
	}
	paperCappedSizes = PaperSizes{
		1: 80567, 2: 41261, 5: 16750, 10: 8417, 15: 5621,
	}
)

// Table2 computes constellation sizes for the paper's beamspread
// factors under both deployment scenarios.
func (m Model) Table2(ctx context.Context, d *Dataset) (Table2Result, error) {
	rows, err := m.Capacity.SizeTable(ctx, d.Distribution(), PaperTable2Spreads, m.MaxOversub)
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{
		Rows:             rows,
		PaperFullService: paperFullServiceSizes,
		PaperCapped:      paperCappedSizes,
	}, nil
}

// Fig2Result is the served-fraction surface of Figure 2.
type Fig2Result struct {
	Spreads, Oversubs []float64
	// Fraction[i][j] is the fraction of demand cells servable at
	// Spreads[i], Oversubs[j] with a single spread beam per cell.
	Fraction [][]float64
}

// Fig2 computes the Figure 2 surface over the paper's axes
// (beamspread 2..14, oversubscription 5..30).
func (m Model) Fig2(ctx context.Context, d *Dataset) (Fig2Result, error) {
	spreads := []float64{2, 4, 6, 8, 10, 12, 14}
	oversubs := []float64{5, 10, 15, 20, 25, 30}
	fraction, err := m.Capacity.ServedFractionGrid(ctx, d.Distribution(), spreads, oversubs, false)
	if err != nil {
		return Fig2Result{}, err
	}
	return Fig2Result{
		Spreads:  spreads,
		Oversubs: oversubs,
		Fraction: fraction,
	}, nil
}

// Fig3Result is one diminishing-returns curve of Figure 3.
type Fig3Result struct {
	Spread  float64
	Oversub float64
	Points  []core.ReturnsPoint
	Steps   []core.StepCost
	// FloorUnserved is the unserved count that no constellation size
	// can reduce at this oversubscription (the paper's "last ~5k
	// locations").
	FloorUnserved int
}

// resolveFig3Spreads normalizes Fig3's two override paths — the
// variadic argument and the Model.Fig3Spreads field (the ScenarioConfig
// knob) — into one spread list. Either override alone wins; both empty
// selects the paper's Table 2 spreads; both set is accepted only when
// they agree, and errors otherwise instead of silently preferring one.
func (m Model) resolveFig3Spreads(spreads []float64) ([]float64, error) {
	switch {
	case len(spreads) == 0 && len(m.Fig3Spreads) == 0:
		return PaperTable2Spreads, nil
	case len(spreads) == 0:
		return m.Fig3Spreads, nil
	case len(m.Fig3Spreads) == 0 || sameFloats(spreads, m.Fig3Spreads):
		return spreads, nil
	default:
		return nil, fmt.Errorf("leodivide: conflicting Fig3 spread overrides: argument %v vs Model.Fig3Spreads %v", spreads, m.Fig3Spreads)
	}
}

// Fig3 computes the diminishing-returns curves for the paper's
// beamspread factors at the model's oversubscription cap, one worker
// per spread. Overrides resolve through resolveFig3Spreads.
func (m Model) Fig3(ctx context.Context, d *Dataset, spreads ...float64) ([]Fig3Result, error) {
	resolved, err := m.resolveFig3Spreads(spreads)
	if err != nil {
		return nil, err
	}
	return m.fig3At(ctx, d, resolved)
}

// fig3At runs the Fig3 sweep at exactly the given spreads, bypassing
// override resolution: internal fixed-spread consumers (findings,
// economics) must not conflict with a scenario's Fig3Spreads knob.
func (m Model) fig3At(ctx context.Context, d *Dataset, spreads []float64) ([]Fig3Result, error) {
	dist := d.Distribution()
	floor := dist.ExcessAbove(m.Capacity.Beams.MaxServableLocations(m.MaxOversub))
	return par.Map(ctx, m.Workers, len(spreads), func(i int) (Fig3Result, error) {
		s := spreads[i]
		pts, err := m.Capacity.DiminishingReturns(ctx, dist, s, m.MaxOversub)
		if err != nil {
			return Fig3Result{}, err
		}
		return Fig3Result{
			Spread:        s,
			Oversub:       m.MaxOversub,
			Points:        pts,
			Steps:         core.StepCosts(pts),
			FloorUnserved: floor,
		}, nil
	})
}

// Fig4Result is the affordability analysis of Figure 4 / Finding 4.
type Fig4Result struct {
	Results []afford.Result
	// Curves are the Figure 4 series per plan option.
	Curves map[string][]afford.CurvePoint
	// ZeroShares record where each plan's curve reaches zero.
	ZeroShares map[string]float64
	// TotalLocations is the dataset total.
	TotalLocations float64
}

// Fig4 computes the affordability comparison across the paper's plans.
// The per-plan curves are evaluated concurrently; results are ordered
// by effective price exactly as the serial comparison was.
func (m Model) Fig4(ctx context.Context, d *Dataset) (Fig4Result, error) {
	in, err := d.affordInput()
	if err != nil {
		return Fig4Result{}, err
	}
	options, err := m.planOptions()
	if err != nil {
		return Fig4Result{}, err
	}
	curves, err := in.EvaluateCurves(ctx, options, m.AffordShare, 0.055, 110, m.Workers)
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{
		Results:        make([]afford.Result, 0, len(curves)),
		Curves:         make(map[string][]afford.CurvePoint, len(options)),
		ZeroShares:     make(map[string]float64, len(options)),
		TotalLocations: in.TotalLocations(),
	}
	for _, pc := range curves {
		name := planLabel(pc.Option)
		res.Curves[name] = pc.Curve
		res.ZeroShares[name] = pc.ZeroShare
		res.Results = append(res.Results, pc.Result)
	}
	sort.SliceStable(res.Results, func(i, j int) bool {
		return afford.EffectiveMonthlyUSD(res.Results[i].Plan, res.Results[i].Subsidy) <
			afford.EffectiveMonthlyUSD(res.Results[j].Plan, res.Results[j].Subsidy)
	})
	return res, nil
}

func planLabel(opt afford.PlanOption) string {
	if opt.Subsidy != nil {
		return opt.Plan.Name + " w/ " + opt.Subsidy.Name
	}
	return opt.Plan.Name
}

// planOptions resolves the Fig4 comparison set: the paper's full
// four-option comparison, narrowed by PlanFilter when set. Filtering by
// label (not index) keeps the knob stable under catalog reordering; an
// unknown label errors with the valid set so scenario authors get a
// usable message instead of a silently empty figure.
func (m Model) planOptions() ([]afford.PlanOption, error) {
	all := afford.PaperComparison()
	if len(m.PlanFilter) == 0 {
		return all, nil
	}
	byLabel := make(map[string]afford.PlanOption, len(all))
	labels := make([]string, 0, len(all))
	for _, opt := range all {
		byLabel[planLabel(opt)] = opt
		labels = append(labels, planLabel(opt))
	}
	out := make([]afford.PlanOption, 0, len(m.PlanFilter))
	for _, name := range m.PlanFilter {
		opt, ok := byLabel[name]
		if !ok {
			return nil, fmt.Errorf("leodivide: unknown plan %q (valid: %s)",
				name, strings.Join(labels, ", "))
		}
		out = append(out, opt)
	}
	return out, nil
}

// AffordabilityInput exposes the location-weighted income distribution
// for custom policy analyses (see examples/policydesign).
//
//lint:ignore ctxfirst pure in-memory accessor over an already-built dataset; nothing blocks, nothing to cancel
func (m Model) AffordabilityInput(d *Dataset) (*afford.Input, error) {
	return d.affordInput()
}

// affordInput is the staged form of afford.NewInput(d.Incomes): the
// weighted income CDF is a pure function of the dataset, shared across
// Fig4, findings and concurrent serve queries via the stage memo.
// afford.Input is immutable after construction, so sharing is safe.
func (d *Dataset) affordInput() (*afford.Input, error) {
	return stage.Get(d.dist.Stages(), "afford.input", func() (*afford.Input, error) {
		return afford.NewInput(d.Incomes)
	})
}

// dispersedInput is the staged form of afford.NewDispersedInput, keyed
// by the (uncanonicalized) sigma so distinct dispersion shapes coexist.
func (d *Dataset) dispersedInput(sigmaLog float64) (*afford.DispersedInput, error) {
	key := "afford.dispersed|sigma=" + strconv.FormatFloat(sigmaLog, 'g', -1, 64)
	return stage.Get(d.dist.Stages(), key, func() (*afford.DispersedInput, error) {
		return afford.NewDispersedInput(d.Incomes, sigmaLog)
	})
}

// Findings aggregates the paper's four findings in one structure.
type Findings struct {
	F1 core.OversubAnalysis
	// F2: satellites needed at beamspread <2 to stay within acceptable
	// oversubscription.
	F2SatellitesAtSpread2  int
	F2CurrentConstellation int
	// F3: cost of the final tranche of servable locations.
	F3 []core.StepCost
	// F4: locations unable to afford Starlink Residential.
	F4Unaffordable         float64
	F4UnaffordableFraction float64
}

// CurrentStarlinkSatellites is the approximate deployed constellation
// size the paper cites.
const CurrentStarlinkSatellites = 8000

// RunFindings evaluates all four findings. Cancellation is observed at
// entry and between the Fig4, sizing and Fig3 stages (the registry's
// uniform contract).
func (m Model) RunFindings(ctx context.Context, d *Dataset) (Findings, error) {
	f4, err := m.Fig4(ctx, d)
	if err != nil {
		return Findings{}, err
	}
	var starlink afford.Result
	found := false
	for _, r := range f4.Results {
		if r.Plan.Name == afford.StarlinkResidential().Name && r.Subsidy == nil {
			starlink = r
			found = true
		}
	}
	if !found {
		// A PlanFilter that excludes the unsubsidized Starlink plan
		// leaves F4 undefined; fail loudly rather than report zeros.
		return Findings{}, fmt.Errorf("leodivide: findings needs %q in the plan comparison (PlanFilter excludes it)",
			afford.StarlinkResidential().Name)
	}
	if err := ctx.Err(); err != nil {
		return Findings{}, err
	}
	capped := m.Capacity.Size(d.Distribution(), core.CappedOversub, 2, m.MaxOversub)
	fig3, err := m.fig3At(ctx, d, []float64{10})
	if err != nil {
		return Findings{}, err
	}
	var lastSteps []core.StepCost
	if len(fig3) > 0 {
		steps := fig3[0].Steps
		if len(steps) > 3 {
			steps = steps[len(steps)-3:]
		}
		lastSteps = steps
	}
	f1, err := m.Finding1(ctx, d)
	if err != nil {
		return Findings{}, err
	}
	return Findings{
		F1:                     f1,
		F2SatellitesAtSpread2:  capped.Satellites,
		F2CurrentConstellation: CurrentStarlinkSatellites,
		F3:                     lastSteps,
		F4Unaffordable:         starlink.UnaffordableLocations,
		F4UnaffordableFraction: starlink.UnaffordableFraction,
	}, nil
}
