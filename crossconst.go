package leodivide

// Cross-constellation techno-economics: the paper's headline question —
// LEO can serve anyone, anywhere, but not everyone, everywhere — asked
// of every declared constellation.System instead of Starlink alone.
// Two registry experiments surface it:
//
//   - costcurve: served fraction and monthly cost per served location
//     as each system's fleet grows from 10% to 100% of its authorized
//     size, plus the priced diminishing-returns tail.
//   - xconst: the "which system closes the divide cheapest under the
//     FCC 100/20 benchmark" table.
//
// Both reuse the PR 7 compute stages: the binding-cell scan and the
// diminishing-returns profile are memoized per (beam config,
// inclination, ...) key, so each system warms its own stage entries and
// repeat queries through the serving layer hit the cache.

import (
	"context"
	"math"

	"leodivide/internal/constellation"
	"leodivide/internal/core"
	"leodivide/internal/demand"
	"leodivide/internal/par"
)

// costCurveFractions are the fleet-size fractions each system's cost
// curve samples, as explicit literals (no accumulated arithmetic, so
// the grid is bit-stable).
var costCurveFractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// CostCurvePoint is one fleet-size sample of a system's cost curve.
type CostCurvePoint struct {
	// FleetFraction is the sampled share of the authorized fleet.
	FleetFraction float64
	// Satellites is the raw fleet size at this fraction.
	Satellites int
	// EquivalentSatellites is that fleet expressed in the system's
	// single-reference-shell sizing unit at the binding latitude.
	EquivalentSatellites int
	// RequiredSpread is the beamspread the fleet needs to cover all
	// cells (clamped to 1 when it has density to spare).
	RequiredSpread float64
	// ServedLocations and ServedFraction count the locations within
	// the single-beam service cap that spread implies.
	ServedLocations int
	ServedFraction  float64
	// MonthlyPerLocationUSD is the break-even monthly cost per served
	// location (fleet amortization + opex + terminal subsidy).
	MonthlyPerLocationUSD float64
}

// CostTail prices a system's diminishing-returns tail at spread 1:
// what the satellites needed to push per-cell service from the
// single-beam cap to the full stacking cap buy, per location gained.
// The zero value means the system has no tail (its stacking limit is a
// single beam, so the two caps coincide).
type CostTail struct {
	// LocationsGained is the unserved-location reduction over the tail.
	LocationsGained int
	// AdditionalSatellites is the raw fleet growth the tail requires.
	AdditionalSatellites int
	// MonthlyPerLocationUSD is the sustaining cost per location gained.
	MonthlyPerLocationUSD float64
}

// SystemCostCurve is one system's cost curve.
type SystemCostCurve struct {
	// System is the canonical key; DisplayName the fleet name.
	System      string
	DisplayName string
	// AuthorizedSatellites is the full fleet size per the filing.
	AuthorizedSatellites int
	// EquivalentFullFleet is the full fleet in sizing-shell units at
	// the binding latitude.
	EquivalentFullFleet int
	// BindingLatDeg is the latitude of the binding demand cell under
	// this system's beam configuration.
	BindingLatDeg float64
	// Points sample the fleet-size sweep, ascending by FleetFraction.
	Points []CostCurvePoint
	// Tail prices the diminishing-returns tail.
	Tail CostTail
}

// CostCurveResult is the costcurve experiment output.
type CostCurveResult struct {
	MaxOversub float64
	// Systems holds one curve per declared system, in canonical order.
	Systems []SystemCostCurve
}

// CostCurve sweeps fleet size per declared constellation and reports
// served fraction and cost per served location at each point — the
// cross-constellation generalization of the fleets + econ experiments.
func (m Model) CostCurve(ctx context.Context, d *Dataset) (CostCurveResult, error) {
	dist := d.Distribution()
	systems := constellation.Systems()
	curves, err := par.Map(ctx, m.Workers, len(systems), func(i int) (SystemCostCurve, error) {
		return m.systemCostCurve(ctx, dist, systems[i])
	})
	if err != nil {
		return CostCurveResult{}, err
	}
	return CostCurveResult{MaxOversub: m.MaxOversub, Systems: curves}, nil
}

// systemModel resolves the capacity model a sweep uses for one system:
// the active system (matching m.System) keeps the model's own capacity
// configuration — including any scenario cost overrides carried on
// m.System — while the others get their spec defaults with the run's
// parallelism and calibration knobs copied, so the comparison is
// like-for-like.
func (m Model) systemModel(sys constellation.System) (constellation.System, core.Model) {
	if sys.Key == m.System.Key {
		return m.System, m.Capacity
	}
	c := core.NewModelFor(sys)
	c.Parallelism = m.Capacity.Parallelism
	c.Binding = m.Capacity.Binding
	c.CalibratedEffectiveCells = m.Capacity.CalibratedEffectiveCells
	c.CalibrationLatDeg = m.Capacity.CalibrationLatDeg
	return sys, c
}

func (m Model) systemCostCurve(ctx context.Context, dist *demand.Distribution, declared constellation.System) (SystemCostCurve, error) {
	sys, c := m.systemModel(declared)
	capped := c.Size(dist, core.CappedOversub, 1, m.MaxOversub)
	lat := capped.BindingCell.Center.Lat
	equivFull := sys.EquivalentSingleShellSatellites(sys.SizingShell(), lat)
	if equivFull < 1 {
		equivFull = 1
	}
	total := sys.TotalSatellites()
	totalLocs := dist.TotalLocations()

	points := make([]CostCurvePoint, 0, len(costCurveFractions))
	for _, f := range costCurveFractions {
		raw := max(1, int(math.Round(f*float64(total))))
		equiv := max(1, int(math.Round(f*float64(equivFull))))
		inv := c.InverseSize(dist, equiv, m.MaxOversub)
		served := totalLocs - dist.ExcessAbove(inv.MaxServableLocations)
		points = append(points, CostCurvePoint{
			FleetFraction:         f,
			Satellites:            raw,
			EquivalentSatellites:  equiv,
			RequiredSpread:        inv.RequiredSpread,
			ServedLocations:       served,
			ServedFraction:        float64(served) / float64(totalLocs),
			MonthlyPerLocationUSD: sys.Cost.MonthlyPerServedLocationUSD(raw, served),
		})
	}

	tail, err := m.systemCostTail(ctx, dist, sys, c, equivFull, total)
	if err != nil {
		return SystemCostCurve{}, err
	}
	return SystemCostCurve{
		System:               sys.Key,
		DisplayName:          sys.Name,
		AuthorizedSatellites: total,
		EquivalentFullFleet:  equivFull,
		BindingLatDeg:        lat,
		Points:               points,
		Tail:                 tail,
	}, nil
}

// systemCostTail prices the ends of the diminishing-returns curve: the
// satellites (converted from sizing-shell to raw fleet units) that
// move per-cell service from the single-beam cap to the full stacking
// cap, per location gained.
func (m Model) systemCostTail(ctx context.Context, dist *demand.Distribution,
	sys constellation.System, c core.Model, equivFull, total int) (CostTail, error) {
	points, err := c.DiminishingReturns(ctx, dist, 1, m.MaxOversub)
	if err != nil {
		return CostTail{}, err
	}
	if len(points) < 2 {
		return CostTail{}, nil
	}
	first, last := points[0], points[len(points)-1]
	gained := first.UnservedLocations - last.UnservedLocations
	addlEquiv := last.Satellites - first.Satellites
	if gained <= 0 || addlEquiv <= 0 {
		return CostTail{}, nil
	}
	addlRaw := int(math.Ceil(float64(addlEquiv) * float64(total) / float64(equivFull)))
	return CostTail{
		LocationsGained:       gained,
		AdditionalSatellites:  addlRaw,
		MonthlyPerLocationUSD: sys.Cost.AnnualizedUSD(addlRaw) / 12 / float64(gained),
	}, nil
}

// ConstellationRow is one system's line of the xconst table.
type ConstellationRow struct {
	// System is the canonical key; DisplayName the fleet name.
	System      string
	DisplayName string
	// AuthorizedSatellites is the filed fleet size;
	// EquivalentSatellites expresses it in sizing-shell units at the
	// binding latitude.
	AuthorizedSatellites int
	EquivalentSatellites int
	// RequiredSpread is the beamspread the authorized fleet needs to
	// cover all cells.
	RequiredSpread float64
	// RequiredSatellites is the raw fleet that meets the capped sizing
	// rule at spread 1 (scaling the authorized composition).
	RequiredSatellites int
	// ServedLocations and ServedFraction count the locations within
	// the system's hard per-cell cap at the oversubscription limit —
	// the most the 100/20 benchmark lets it serve however large the
	// fleet grows.
	ServedLocations int
	ServedFraction  float64
	// FleetCapexUSD is the capital cost of the required fleet.
	FleetCapexUSD float64
	// MonthlyPerLocationUSD is the required fleet's break-even monthly
	// cost per served location.
	MonthlyPerLocationUSD float64
}

// CrossConstellationResult is the xconst experiment output: which
// system closes the divide cheapest under the 100/20 benchmark.
type CrossConstellationResult struct {
	MaxOversub float64
	// Rows hold one line per declared system, in canonical order.
	Rows []ConstellationRow
	// Cheapest is the canonical key of the serving system with the
	// lowest monthly cost per served location (first wins on ties).
	Cheapest string
}

// CrossConstellation builds the xconst table: per system, the fleet
// the capped sizing rule demands, the service fraction its per-cell
// cap admits, and the break-even monthly cost per served location.
func (m Model) CrossConstellation(ctx context.Context, d *Dataset) (CrossConstellationResult, error) {
	dist := d.Distribution()
	systems := constellation.Systems()
	rows, err := par.Map(ctx, m.Workers, len(systems), func(i int) (ConstellationRow, error) {
		return m.constellationRow(dist, systems[i]), nil
	})
	if err != nil {
		return CrossConstellationResult{}, err
	}
	out := CrossConstellationResult{MaxOversub: m.MaxOversub, Rows: rows}
	best := math.Inf(1)
	for _, r := range rows {
		if r.ServedLocations > 0 && r.MonthlyPerLocationUSD < best {
			best = r.MonthlyPerLocationUSD
			out.Cheapest = r.System
		}
	}
	return out, nil
}

func (m Model) constellationRow(dist *demand.Distribution, declared constellation.System) ConstellationRow {
	sys, c := m.systemModel(declared)
	sizing := c.Size(dist, core.CappedOversub, 1, m.MaxOversub)
	lat := sizing.BindingCell.Center.Lat
	equivFull := sys.EquivalentSingleShellSatellites(sys.SizingShell(), lat)
	if equivFull < 1 {
		equivFull = 1
	}
	total := sys.TotalSatellites()
	inv := c.InverseSize(dist, equivFull, m.MaxOversub)

	// The hard cap: the largest cell servable at the oversubscription
	// limit with the system's full per-cell stacking.
	hardCap := c.Beams.MaxServableLocations(m.MaxOversub)
	totalLocs := dist.TotalLocations()
	served := totalLocs - dist.ExcessAbove(hardCap)

	// Convert the sizing requirement (sizing-shell units) into a raw
	// fleet by scaling the authorized composition.
	required := int(math.Ceil(float64(sizing.Satellites) * float64(total) / float64(equivFull)))
	return ConstellationRow{
		System:                sys.Key,
		DisplayName:           sys.Name,
		AuthorizedSatellites:  total,
		EquivalentSatellites:  equivFull,
		RequiredSpread:        inv.RequiredSpread,
		RequiredSatellites:    required,
		ServedLocations:       served,
		ServedFraction:        float64(served) / float64(totalLocs),
		FleetCapexUSD:         sys.Cost.FleetCapexUSD(required),
		MonthlyPerLocationUSD: sys.Cost.MonthlyPerServedLocationUSD(required, served),
	}
}
