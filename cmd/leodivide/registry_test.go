package main

import (
	"bytes"
	"strings"
	"testing"

	"leodivide"
)

// TestRegistryCoversRenderers enforces the registry↔CLI pairing both
// ways: every registered experiment has a renderer (so `leodivide
// <name>` works), every renderer corresponds to a registered experiment
// (no dead presentation code), and every registry name appears in the
// `all` ordering.
func TestRegistryCoversRenderers(t *testing.T) {
	m := leodivide.NewModel()
	registered := make(map[string]bool)
	for _, e := range m.Experiments() {
		registered[e.Name] = true
		if _, ok := renderers[e.Name]; !ok {
			t.Errorf("experiment %q has no CLI renderer", e.Name)
		}
		if e.Description == "" {
			t.Errorf("experiment %q has no description", e.Name)
		}
	}
	for name := range renderers {
		if !registered[name] {
			t.Errorf("renderer %q has no registry entry", name)
		}
	}
	inAll := make(map[string]bool, len(allOrder))
	for _, name := range allOrder {
		inAll[name] = true
	}
	for name := range registered {
		if !inAll[name] {
			t.Errorf("experiment %q missing from the `all` ordering", name)
		}
	}
}

// TestExperimentsCommand checks the registry listing subcommand.
func TestExperimentsCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiments"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range leodivide.NewModel().Experiments() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("experiments listing missing %q", e.Name)
		}
	}
	if !strings.Contains(out, "simcheck") {
		t.Error("experiments listing should mention the CLI-only analyses")
	}
}

// TestParallelismFlagMatchesSerial: the -parallelism flag must not
// change output, per the engine's determinism contract.
func TestParallelismFlagMatchesSerial(t *testing.T) {
	var serial, pooled bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-parallelism", "1", "table2"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.05", "-parallelism", "8", "table2"}, &pooled); err != nil {
		t.Fatal(err)
	}
	if serial.String() != pooled.String() {
		t.Error("table2 output differs between -parallelism 1 and 8")
	}
}
