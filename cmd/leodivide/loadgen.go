package main

// `leodivide loadgen` drives a running `leodivide serve` instance with
// concurrent scenario queries and reports latency percentiles and cache
// traffic. The scenario mix is a deterministic cycle (no randomness):
// request i always names the same scenario, so a given -n/-experiments
// pair exercises the same key set on every run — which is what makes
// the CI smoke assertion on hit rate meaningful.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"leodivide"
)

// loadgenVariants are the knob variations cycled across requests. Each
// is a JSON fragment spliced into the request body; the empty variant
// is the server default (Starlink on the US geography). The
// constellation variants exercise the cross-constellation paths and the
// region variants the lazily generated sibling geographies: each warms
// its own compute-stage and result-cache entries. Repeats of the same
// (experiment, variant) pair are what generate cache hits.
var loadgenVariants = []string{
	"",
	`"max_oversub":25`,
	`"max_oversub":30`,
	`"afford_share":0.025`,
	`"constellation":"kuiper"`,
	`"constellation":"oneweb"`,
	`"region":"brazil-rural"`,
	`"region":"taipei-dense"`,
}

type loadgenOutcome struct {
	latency time.Duration
	status  string // X-Leodivide-Cache value, or "" on error
	err     error
}

func runLoadgen(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("leodivide loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "server address (host:port or full URL)")
	n := fs.Int("n", 1000, "total requests to issue")
	concurrency := fs.Int("concurrency", 16, "concurrent client workers")
	experiments := fs.String("experiments", "table1,fig1,table2,findings,costcurve,xconst", "comma-separated experiments to query")
	wait := fs.Duration("wait", 0, "poll /healthz for up to this long before driving load (0 = server must be up)")
	minHitRate := fs.Float64("min-hit-rate", 0, "fail if (hits+coalesced)/requests falls below this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("loadgen: -n must be >= 1, got %d", *n)
	}
	if *concurrency < 1 {
		return fmt.Errorf("loadgen: -concurrency must be >= 1, got %d", *concurrency)
	}
	var names []string
	for _, name := range strings.Split(*experiments, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("loadgen: -experiments lists no experiments")
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	if *wait > 0 {
		if err := waitHealthy(ctx, base, *wait); err != nil {
			return err
		}
	}

	// The deterministic mix: request i cycles experiments fastest and
	// knob variants slowest, so every (experiment, variant) pair recurs
	// every len(names)*len(loadgenVariants) requests.
	bodies := make([]string, *n)
	for i := range bodies {
		name := names[i%len(names)]
		variant := loadgenVariants[(i/len(names))%len(loadgenVariants)]
		body := fmt.Sprintf(`{"schema":%q,"experiment":%q`, leodivide.ScenarioSchema, name)
		if variant != "" {
			body += "," + variant
		}
		bodies[i] = body + "}"
	}

	outcomes := make([]loadgenOutcome, *n)
	work := make(chan int)
	var wg sync.WaitGroup
	for wkr := 0; wkr < *concurrency; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				outcomes[i] = issueScenario(ctx, base, bodies[i])
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	var errs int
	byStatus := map[string]int{}
	latencies := make([]time.Duration, 0, *n)
	var firstErr error
	for _, o := range outcomes {
		if o.err != nil {
			errs++
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		byStatus[o.status]++
		latencies = append(latencies, o.latency)
	}
	ok := *n - errs
	hitRate := 0.0
	if ok > 0 {
		hitRate = float64(byStatus["hit"]+byStatus["coalesced"]) / float64(ok)
	}
	fmt.Fprintf(w, "loadgen: %d requests to %s, %d workers, %d errors\n", *n, base, *concurrency, errs)
	fmt.Fprintf(w, "loadgen: cache: %d miss, %d hit, %d coalesced (hit rate %.1f%%)\n",
		byStatus["miss"], byStatus["hit"], byStatus["coalesced"], 100*hitRate)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Fprintf(w, "loadgen: latency: p50 %s  p99 %s  max %s\n",
			percentile(latencies, 0.50), percentile(latencies, 0.99), latencies[len(latencies)-1])
	}
	if errs > 0 {
		return fmt.Errorf("loadgen: %d of %d requests failed (first: %w)", errs, *n, firstErr)
	}
	if hitRate < *minHitRate {
		return fmt.Errorf("loadgen: hit rate %.3f below required %.3f", hitRate, *minHitRate)
	}
	return nil
}

// issueScenario posts one scenario query and classifies the response by
// its cache header. Non-200 statuses are errors: loadgen only sends
// well-formed requests, so any rejection means the server is misbehaving.
func issueScenario(ctx context.Context, base, body string) loadgenOutcome {
	//lint:ignore detrand wall-clock measures client-observed latency; it never feeds experiment results
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/scenario", strings.NewReader(body))
	if err != nil {
		return loadgenOutcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return loadgenOutcome{err: err}
	}
	//lint:ignore errdrop close of a fully-drained response body; a close error after a read-only exchange is not actionable
	defer resp.Body.Close()
	//lint:ignore errdrop draining the body only enables connection reuse; the bytes themselves are not checked here
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return loadgenOutcome{err: fmt.Errorf("status %d for %s", resp.StatusCode, body)}
	}
	return loadgenOutcome{latency: time.Since(start), status: resp.Header.Get("X-Leodivide-Cache")}
}

// waitHealthy polls /healthz until the server answers or the budget
// runs out — CI starts the server in the background and must not race
// its dataset generation.
func waitHealthy(ctx context.Context, base string, budget time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			//lint:ignore errdrop health-poll body close; only the status code matters here
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz returned %d", resp.StatusCode)
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: server at %s not healthy within %s: %w", base, budget, lastErr)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// percentile reads the q-quantile from an ascending latency slice using
// the nearest-rank definition: the smallest element with at least q of
// the samples at or below it, ceil(q*n) in 1-based rank terms. The
// previous truncating index (int(q*(n-1))) rounded the rank DOWN, which
// under-reported the tail — at n=100 it called the 99th-fastest sample
// "p99" when nearest-rank says the 99th is sorted[98]... and, worse, at
// small n it collapsed p99 onto the median (n=2: idx 0).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}
