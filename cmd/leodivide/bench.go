package main

// The bench subcommand: measure every registry experiment (plus dataset
// generation) across a worker-count sweep and emit a schema-versioned
// BENCH_*.json report (internal/benchfmt). This is the repo's
// performance trajectory: CI regenerates the report at small scale and
// validates it; BENCH_baseline.json pins the committed starting point.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"leodivide"
	"leodivide/internal/benchfmt"
	"leodivide/internal/safeio"
)

// benchExperiments returns the full coverage set: every registry
// experiment plus the "generate" pseudo-experiment.
func benchExperiments(m leodivide.Model) []string {
	names := []string{"generate"}
	for _, e := range m.Experiments() {
		names = append(names, e.Name)
	}
	return names
}

func runBench(ctx context.Context, w io.Writer, sc leodivide.ScenarioConfig, args []string) error {
	fs := flag.NewFlagSet("leodivide bench", flag.ContinueOnError)
	workersFlag := fs.String("workers", "1,2", "comma-separated worker counts to sweep (0 = all CPUs)")
	reps := fs.Int("reps", 1, "repetitions per (experiment, workers) cell")
	out := fs.String("out", "BENCH_latest.json", "output path for the JSON report")
	check := fs.String("check", "", "validate an existing report instead of benchmarking")
	filter := fs.String("experiments", "", "comma-separated subset to run (default: all; coverage validation is skipped)")
	against := fs.String("against", "", "baseline report to compare against; fail on ns/op regressions beyond -max-regress")
	maxRegress := fs.Float64("max-regress", 0.20, "allowed fractional ns/op regression per cell vs -against")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check != "" {
		return runBenchCheck(ctx, w, *check)
	}

	workers, err := parseWorkerCounts(*workersFlag)
	if err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("bench: -reps must be >= 1, got %d", *reps)
	}

	report := benchfmt.Report{
		Schema: benchfmt.Schema,
		Seed:   sc.Seed, Scale: sc.Scale, Reps: *reps,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}

	all := benchExperiments(sc.BuildModel())
	selected := all
	if *filter != "" {
		selected, err = selectExperiments(all, *filter)
		if err != nil {
			return err
		}
	}

	for _, n := range workers {
		// The scenario describes the whole bench run — knobs and
		// constellation included — with only parallelism swept per pass.
		wcfg := sc
		wcfg.Parallelism = n
		m := wcfg.BuildModel()

		// "generate" times dataset generation itself; the dataset from
		// its last rep feeds the experiment runs at this worker count.
		var ds *leodivide.Dataset
		if contains(selected, "generate") {
			res, err := measure("generate", n, *reps, func() error {
				var genErr error
				ds, genErr = wcfg.Generate(ctx)
				return genErr
			})
			if err != nil {
				return err
			}
			report.Results = append(report.Results, res)
		} else if ds, err = wcfg.Generate(ctx); err != nil {
			return err
		}

		for _, exp := range m.Experiments() {
			if !contains(selected, exp.Name) {
				continue
			}
			run := exp.Run
			res, err := measure(exp.Name, n, *reps, func() error {
				_, runErr := run(ctx, ds)
				return runErr
			})
			if err != nil {
				return fmt.Errorf("bench %s (workers=%d): %w", exp.Name, n, err)
			}
			report.Results = append(report.Results, res)
		}
		// The canonical RunConfig rendering, so bench logs name the run
		// the same way cache keys and verify lines do.
		fmt.Fprintf(w, "bench: %s done (%d experiments)\n", wcfg.RunConfig, len(selected))
	}

	// Full runs must cover every experiment at >= 2 worker counts; a
	// filtered run skips the gate (it is a spot measurement, not a
	// report CI can trust).
	if *filter == "" {
		if err := report.ValidateCoverage(all, min(2, len(workers))); err != nil {
			return err
		}
	} else if err := report.Validate(); err != nil {
		return err
	}

	if _, err := safeio.WriteFile(ctx, *out, report.Write); err != nil {
		return err
	}
	fmt.Fprintf(w, "bench: wrote %d results to %s (schema %s)\n",
		len(report.Results), *out, benchfmt.Schema)

	if *against != "" {
		base, err := readBenchReport(ctx, *against)
		if err != nil {
			return err
		}
		return compareBenchReports(w, report, base, *against, *maxRegress)
	}
	return nil
}

// readBenchReport loads and parses a bench report from disk.
func readBenchReport(ctx context.Context, path string) (benchfmt.Report, error) {
	f, err := safeio.ReadFileVerified(ctx, path, "")
	if err != nil {
		return benchfmt.Report{}, err
	}
	report, err := benchfmt.Read(strings.NewReader(string(f)))
	if err != nil {
		return benchfmt.Report{}, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return report, nil
}

// compareBenchReports gates the fresh report against a baseline: every
// (experiment, workers) cell present in BOTH reports must not regress
// ns/op by more than maxRegress (fractional). Cells only one report has
// are ignored — a filtered run compares just what it measured. Seed and
// scale must match, or the comparison is meaningless and errors out.
// Single-run wall-clock is noisy, so the threshold is a tripwire for
// step-change regressions, not a microbenchmark verdict.
func compareBenchReports(w io.Writer, fresh, base benchfmt.Report, basePath string, maxRegress float64) error {
	//lint:ignore floatcmp scale is a configuration identity (flag-parsed, JSON round-tripped), not computed arithmetic; two reports are comparable only when it matches exactly
	if fresh.Seed != base.Seed || fresh.Scale != base.Scale {
		return fmt.Errorf("bench: cannot compare against %s: seed/scale (%d, %g) vs baseline (%d, %g)",
			basePath, fresh.Seed, fresh.Scale, base.Seed, base.Scale)
	}
	type cell struct {
		exp     string
		workers int
	}
	baseNs := make(map[cell]int64, len(base.Results))
	for _, r := range base.Results {
		baseNs[cell{r.Experiment, r.Workers}] = r.NsPerOp
	}
	var regressions []string
	matched := 0
	for _, r := range fresh.Results {
		b, ok := baseNs[cell{r.Experiment, r.Workers}]
		if !ok || b <= 0 {
			continue
		}
		matched++
		ratio := float64(r.NsPerOp) / float64(b)
		fmt.Fprintf(w, "bench vs %s: %s workers=%d %.2fx (%d -> %d ns/op)\n",
			basePath, r.Experiment, r.Workers, ratio, b, r.NsPerOp)
		if ratio > 1+maxRegress {
			regressions = append(regressions, fmt.Sprintf(
				"%s workers=%d: %d -> %d ns/op (%.2fx > %.2fx allowed)",
				r.Experiment, r.Workers, b, r.NsPerOp, ratio, 1+maxRegress))
		}
	}
	if matched == 0 {
		return fmt.Errorf("bench: no (experiment, workers) cells in common with %s", basePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: %d regression(s) vs %s:\n  %s",
			len(regressions), basePath, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "bench: %d cells within %.0f%% of %s\n", matched, 100*maxRegress, basePath)
	return nil
}

// runBenchCheck validates a report on disk: schema, structure, and full
// experiment coverage at >= 2 worker counts. CI fails on any error.
func runBenchCheck(ctx context.Context, w io.Writer, path string) error {
	report, err := readBenchReport(ctx, path)
	if err != nil {
		return err
	}
	all := benchExperiments(leodivide.NewModel())
	if err := report.ValidateCoverage(all, 2); err != nil {
		return fmt.Errorf("bench check %s: %w", path, err)
	}
	fmt.Fprintf(w, "bench check: %s ok (%d results, %d experiments)\n",
		path, len(report.Results), len(all))
	return nil
}

// measure times reps runs of fn and reads allocation deltas around
// them. Mallocs/TotalAlloc are monotone, so no GC fence is needed.
// NsPerOp is the fastest rep, not the mean: on a 1-CPU runner the
// noise is additive (scheduler preemption, GC pauses land on top of
// the true cost), so min-of-reps estimates the true cost while a mean
// inflates with every blip — and a noisy baseline cell turns the
// bench-check tripwire into a coin flip.
func measure(name string, workers, reps int, fn func() error) (benchfmt.Result, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var fastest time.Duration
	for i := 0; i < reps; i++ {
		//lint:ignore detrand benchmarks measure wall-clock by definition; timings go to the bench report, never into experiment results
		start := time.Now()
		if err := fn(); err != nil {
			return benchfmt.Result{}, err
		}
		if d := time.Since(start); i == 0 || d < fastest {
			fastest = d
		}
	}
	runtime.ReadMemStats(&after)
	r := int64(reps)
	return benchfmt.Result{
		Experiment:   name,
		Workers:      workers,
		NsPerOp:      max(1, fastest.Nanoseconds()),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / r,
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / r,
		PeakRSSBytes: benchfmt.PeakRSSBytes(),
	}, nil
}

func parseWorkerCounts(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bench: bad worker count %q", part)
		}
		if seen[n] {
			return nil, fmt.Errorf("bench: duplicate worker count %d", n)
		}
		seen[n] = true
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: -workers lists no counts")
	}
	return out, nil
}

func selectExperiments(all []string, filter string) ([]string, error) {
	var out []string
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !contains(all, name) {
			return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)",
				name, strings.Join(all, ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: -experiments lists no experiments")
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
